// Package bench hosts the repository-level benchmark harness: one
// testing.B benchmark per table and figure in the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out
// (bus arbiter discipline, cache policy, page-size setting).
//
// Run everything with:
//
//	go test -bench=. -benchmem .
//
// Key reproduced values are attached to each benchmark via ReportMetric,
// so `go test -bench` output doubles as the paper-vs-measured record.
package bench

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"snic/internal/accel"
	"snic/internal/attacks"
	"snic/internal/attest"
	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/exp"
	"snic/internal/hwmodel"
	"snic/internal/lint"
	"snic/internal/nf"
	"snic/internal/obs"
	"snic/internal/pkt"
	"snic/internal/pktio"
	"snic/internal/sim"
	"snic/internal/snic"
	"snic/internal/tco"
	"snic/internal/tlb"
	"snic/internal/trace"
)

func BenchmarkTable2CoreTLBCosts(b *testing.B) {
	var m hwmodel.Metric
	for i := 0; i < b.N; i++ {
		m = hwmodel.CoreTLBCost(48, 183)
	}
	b.ReportMetric(m.AreaMM2, "mm2@48x183")
	b.ReportMetric(m.PowerW, "W@48x183")
}

func BenchmarkTable3AccelTLBCosts(b *testing.B) {
	var m hwmodel.Metric
	for i := 0; i < b.N; i++ {
		m = hwmodel.AccelTLBCost(hwmodel.DPITLB, 54, 16)
	}
	b.ReportMetric(m.AreaMM2, "mm2@dpi16")
}

func BenchmarkTable4PipeTLBCosts(b *testing.B) {
	var m hwmodel.Metric
	for i := 0; i < b.N; i++ {
		m = hwmodel.PipeTLBCost(3, 12)
	}
	b.ReportMetric(m.AreaMM2, "mm2@12vpp")
}

func BenchmarkTable5PageSizeSettings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProfiles runs the Table 6/8 profiling workload once per iteration
// at a reduced-but-structurally-complete scale.
func BenchmarkTable6And8NFProfiles(b *testing.B) {
	var profiles []exp.NFProfile
	for i := 0; i < b.N; i++ {
		var err error
		profiles, err = exp.ProfileNFs(nf.SuiteConfig{
			FirewallRules: 643, DPIPatterns: 2000, Routes: 16000, Backends: 64, Seed: 1,
		}, 20000, 60000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range profiles {
		if p.Name == "LPM" {
			b.ReportMetric(float64(p.Measured.Total())/(1<<20), "LPM-MB")
			b.ReportMetric(float64(p.Equal), "LPM-TLB-entries")
		}
	}
}

func BenchmarkTable7AcceleratorProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table7(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCO(b *testing.B) {
	var r tco.Report
	for i := 0; i < b.N; i++ {
		r = tco.Compute(tco.PaperParams())
	}
	b.ReportMetric(r.SNICPerCore, "$peSNICcore")
	b.ReportMetric(r.AdvantageKept*100, "pct-advantage-kept")
}

func BenchmarkHeadlineHardwareCost(b *testing.B) {
	var areaPct, powerPct float64
	for i := 0; i < b.N; i++ {
		_, _, areaPct, powerPct = hwmodel.Headline()
	}
	b.ReportMetric(areaPct, "area-pct")
	b.ReportMetric(powerPct, "power-pct")
}

func fig5Bench() exp.Fig5Config {
	return exp.Fig5Config{
		PoolFlows:    20000,
		WarmupInstr:  40000,
		MeasureInstr: 120000,
		Colocations:  3,
		Seed:         1,
	}
}

func BenchmarkFigure5aCacheSweep(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure5a(fig5Bench(), []uint64{64 << 10, 4 << 20})
		if err != nil {
			b.Fatal(err)
		}
		med, _ = exp.MedianAcrossNFs(rows, "4MB")
	}
	b.ReportMetric(med, "pct-degr-2NF-4MB")
}

func BenchmarkFigure5bCotenancySweep(b *testing.B) {
	var m4, m8 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure5b(fig5Bench(), []int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
		m4, _ = exp.MedianAcrossNFs(rows, "4 NFs")
		m8, _ = exp.MedianAcrossNFs(rows, "8 NFs")
	}
	b.ReportMetric(m4, "pct-degr-4NF")
	b.ReportMetric(m8, "pct-degr-8NF")
}

func BenchmarkFigure6InstructionLatency(b *testing.B) {
	var rows []exp.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.NF == "Mon" {
			b.ReportMetric(r.LaunchSHAMS, "Mon-launch-SHA-ms")
			b.ReportMetric(r.DestroyScrub, "Mon-scrub-ms")
		}
	}
}

func BenchmarkFigure7MonitorTimeSeries(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		series, err := exp.Figure7(20, 4000, 50)
		if err != nil {
			b.Fatal(err)
		}
		last = series[len(series)-1].LiveMB
	}
	b.ReportMetric(last, "final-MB")
}

func BenchmarkFigure8DPIThroughput(b *testing.B) {
	var rows []exp.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = exp.Figure8(3000)
	}
	for _, r := range rows {
		if r.Threads == 48 && r.FrameBytes == 64 {
			b.ReportMetric(r.Mpps, "Mpps-48thr-64B")
		}
		if r.Threads == 16 && r.FrameBytes == 9216 {
			b.ReportMetric(r.Mpps, "Mpps-16thr-9KB")
		}
	}
}

// --- Engine parallel-vs-serial speedup -----------------------------------

// The experiment engine must turn worker count into wall-clock speedup
// while emitting byte-identical rows (exp's TestWorkerCountInvariance
// pins the latter). Compare ns/op across the worker sub-benchmarks: on a
// machine with >= 4 cores, the 4-worker runs of these sweeps (6 jobs for
// ProfileNFs, 18 for Figure5b) are expected to be at least ~2x faster
// than 1-worker runs. On fewer cores the jobs timeslice and the ratio
// collapses toward 1x — each sub-benchmark reports its GOMAXPROCS so the
// ratio can be interpreted.

func BenchmarkEngineProfileNFs(b *testing.B) {
	cfg := nf.SuiteConfig{
		FirewallRules: 643, DPIPatterns: 2000, Routes: 16000, Backends: 64, Seed: 1,
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(workerName(w), func(b *testing.B) {
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			r := &exp.Runner{Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := r.ProfileNFs(cfg, 20000, 60000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineFigure5b(b *testing.B) {
	cfg := exp.Fig5Config{
		PoolFlows:    5000,
		WarmupInstr:  20000,
		MeasureInstr: 60000,
		Colocations:  2,
		Seed:         1,
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(workerName(w), func(b *testing.B) {
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			r := &exp.Runner{Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := r.Figure5b(cfg, []int{2, 4, 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func workerName(w int) string {
	return map[int]string{1: "1worker", 2: "2workers", 4: "4workers"}[w]
}

// --- Ablations -----------------------------------------------------------

// BenchmarkBusArbiters measures a victim's bus wait under a saturating
// attacker for each arbitration discipline (the §4.5 design choice).
func BenchmarkBusArbiters(b *testing.B) {
	disciplines := []struct {
		name string
		mk   func() bus.Arbiter
	}{
		{"FIFO", func() bus.Arbiter { return bus.NewFIFO() }},
		{"RoundRobin", func() bus.Arbiter { return bus.NewRoundRobin(2, 1024) }},
		{"Temporal", func() bus.Arbiter { return bus.NewTemporal(2, 60, 10) }},
	}
	for _, d := range disciplines {
		b.Run(d.name, func(b *testing.B) {
			var waited uint64
			for i := 0; i < b.N; i++ {
				arb := bus.NewTracker(d.mk(), 2)
				// Attacker floods...
				now := uint64(0)
				for j := 0; j < 2000; j++ {
					now = arb.Request(0, now, 8) + 8
				}
				// ...victim issues 100 spaced ops.
				vnow := uint64(0)
				for j := 0; j < 100; j++ {
					start := arb.Request(1, vnow, 8)
					vnow = start + 50
				}
				waited = arb.Stats(1).WaitCycles
			}
			b.ReportMetric(float64(waited)/100, "victim-wait-cycles/op")
		})
	}
}

// BenchmarkCachePolicies measures prime+probe leakage per policy (the
// §4.2 design choice).
func BenchmarkCachePolicies(b *testing.B) {
	for _, p := range []cache.Policy{cache.Shared, cache.Static} {
		b.Run(p.String(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				var err error
				acc, err = attacks.PrimeProbe(p, 128, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc*100, "probe-accuracy-pct")
		})
	}
}

// BenchmarkDPIClusterGranularity extends Figure 8 with the small-cluster
// configurations the paper's hardware cannot test (its parts cluster at a
// 16-thread granularity).
func BenchmarkDPIClusterGranularity(b *testing.B) {
	p := accel.DefaultDPIPerf()
	for _, threads := range []int{4, 8, 16, 32, 48} {
		b.Run(benchName(threads), func(b *testing.B) {
			var mpps float64
			for i := 0; i < b.N; i++ {
				mpps = accel.Mpps(accel.SimulateThroughput(p, threads, 1536, 3000))
			}
			b.ReportMetric(mpps, "Mpps-1.5KB")
		})
	}
}

func benchName(threads int) string {
	return map[int]string{4: "4thr", 8: "8thr", 16: "16thr", 32: "32thr", 48: "48thr"}[threads]
}

// --- Microbenchmarks of the trusted instructions --------------------------

func deviceForBench(b *testing.B) *snic.Device {
	b.Helper()
	v, err := attest.NewVendor("V", nil)
	if err != nil {
		b.Fatal(err)
	}
	d, err := snic.New(snic.Config{Cores: 8, MemBytes: 256 << 20}, v)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkNFLaunchTeardown(b *testing.B) {
	d := deviceForBench(b)
	spec := snic.LaunchSpec{
		CoreMask: 0b01, Image: make([]byte, 64<<10), MemBytes: 8 << 20, DMACore: -1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := d.Launch(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Teardown(rep.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNFAttest(b *testing.B) {
	d := deviceForBench(b)
	rep, err := d.Launch(snic.LaunchSpec{
		CoreMask: 0b01, Image: []byte("nf"), MemBytes: 1 << 20, DMACore: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	nonce := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := d.AttestNF(rep.ID, nonce); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendLocalChainHop(b *testing.B) {
	d := deviceForBench(b)
	a, err := d.Launch(snic.LaunchSpec{CoreMask: 0b01, Image: []byte("a"), MemBytes: 2 << 20, DMACore: -1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := d.Launch(snic.LaunchSpec{CoreMask: 0b10, Image: []byte("b"), MemBytes: 2 << 20, DMACore: -1})
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 1500)
	if err := d.NFWrite(a.ID, tlb.VAddr(512<<10), frame); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.SendLocal(a.ID, c.ID, tlb.VAddr(512<<10), len(frame)); err != nil {
			b.Fatal(err)
		}
		d.NF(c.ID).VPP.Pop() // drain so the ring never tail-drops
	}
}

func BenchmarkPacketSwitchDeliver(b *testing.B) {
	d := deviceForBench(b)
	_, err := d.Launch(snic.LaunchSpec{
		CoreMask: 0b01, Image: []byte("nf"), MemBytes: 2 << 20,
		Rules:   []pktio.MatchSpec{{Proto: pkt.ProtoTCP}},
		DMACore: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	frame := (&pkt.Packet{
		Tuple:   pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: pkt.ProtoTCP},
		Payload: make([]byte, 512),
	}).Marshal()
	id := snic.ID(3)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Switch().Deliver(frame); err != nil {
			b.Fatal(err)
		}
		d.NF(id).VPP.Pop()
	}
}

// --- Serverless churn ------------------------------------------------------

// BenchmarkChurnNF is the BENCH_10 trajectory benchmark: one full churn
// round — launch toward a steady-state live target, attest the
// newcomers, tear down pseudo-random victims, then drain — against a
// fresh S-NIC each iteration. A fresh device per round keeps NF ids far
// from the edge of the uint16 namespace and makes every iteration
// identical work. CHURN_FASTPATH=0 pins the paper-exact cold control
// path (record that run as the BENCH_10 "baseline" section); the
// default run enables batched attestation, the warm scrubbed-arena
// pool, and parallel teardown scrub ("post"). sim-launches-per-sec is
// the headline metric: post must hold at >= 3x baseline.
func BenchmarkChurnNF(b *testing.B) {
	fast := os.Getenv("CHURN_FASTPATH") != "0"
	const (
		events = 60
		target = 6
		batch  = 4
	)
	v, err := attest.NewVendor("V", nil)
	if err != nil {
		b.Fatal(err)
	}
	nonce := []byte("bench-churn")
	var simMS float64
	var launches uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := snic.New(snic.Config{Cores: 8, MemBytes: 256 << 20}, v)
		if err != nil {
			b.Fatal(err)
		}
		if fast {
			d.SetFastPaths(snic.FastPaths{WarmPool: true, ParallelScrub: true})
		}
		rng := sim.NewRand(0x10C)
		free := []uint{0, 1, 2, 3, 4, 5, 6, 7}
		coreOf := map[snic.ID]uint{}
		var live, pending []snic.ID
		flush := func() {
			if len(pending) == 0 {
				return
			}
			if fast {
				_, _, _, ms, err := d.AttestNFBatch(pending, nonce)
				if err != nil {
					b.Fatal(err)
				}
				simMS += ms
			} else {
				for _, id := range pending {
					_, _, ms, err := d.AttestNF(id, nonce)
					if err != nil {
						b.Fatal(err)
					}
					simMS += ms
				}
			}
			pending = pending[:0]
		}
		down := func(k int) {
			id := live[k]
			live = append(live[:k], live[k+1:]...)
			for j, p := range pending {
				if p == id {
					pending = append(pending[:j], pending[j+1:]...)
					break
				}
			}
			rep, err := d.Teardown(id)
			if err != nil {
				b.Fatal(err)
			}
			simMS += rep.TotalMS()
			free = append(free, coreOf[id])
			delete(coreOf, id)
		}
		for ev, seq := 0, 0; ev < events; ev++ {
			if len(live) < target {
				core := free[0]
				free = free[1:]
				rep, err := d.Launch(snic.LaunchSpec{
					CoreMask:   1 << core,
					Image:      []byte(fmt.Sprintf("churn fn %05d", seq)),
					MemBytes:   1 << 20,
					RXBufBytes: 32 << 10,
					TXBufBytes: 32 << 10,
					DMACore:    -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				seq++
				coreOf[rep.ID] = core
				live = append(live, rep.ID)
				pending = append(pending, rep.ID)
				launches++
				simMS += rep.TotalMS()
				if len(pending) >= batch {
					flush()
				}
			} else {
				down(rng.Intn(len(live)))
			}
		}
		flush()
		for len(live) > 0 {
			down(len(live) - 1)
		}
	}
	if simMS > 0 {
		b.ReportMetric(float64(launches)/(simMS/1e3), "sim-launches-per-sec")
	}
	b.ReportMetric(simMS/float64(b.N), "sim-ms-per-round")
}

// --- Streaming replay ------------------------------------------------------

// BenchmarkReplayCAIDA is the trajectory benchmark for the full-scale
// replay path: a scaled-down CAIDA-shaped window streamed through
// sharded Monitor models. ns/op here is what `snicbench -scale full
// -experiment replay` pays per ~150 k packets, so snicperf tracks it as
// the cost anchor for the paper-scale (1.34 G packet) run.
func BenchmarkReplayCAIDA(b *testing.B) {
	cfg := exp.ReplayConfig{Flows: 50000, PerFlow: 3, Shards: 4, Seed: 0xCA1DA}
	var res exp.ReplayResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.ReplayCAIDA(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PeakMB, "peak-MB")
	b.ReportMetric(float64(res.Packets)/float64(b.Elapsed().Nanoseconds())*float64(b.N)*1e3, "Mpps")
}

// BenchmarkPoolStreamDraw measures the steady-state per-packet cost of
// the streaming generator (zipf flow pick + payload fill over a reused
// buffer).
func BenchmarkPoolStreamDraw(b *testing.B) {
	tpl := trace.NewICTFTemplate(sim.NewRand(1), 20000)
	st := tpl.Stream(512)
	b.ReportAllocs()
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		if _, _, ok := st.Next(); !ok {
			b.Fatal("pool stream ended")
		}
	}
}

// BenchmarkCAIDAStreamDraw measures the per-packet cost of the CAIDA
// flow-arrival iterator.
func BenchmarkCAIDAStreamDraw(b *testing.B) {
	st := trace.NewCAIDABudget(sim.NewRand(2), uint64(b.N)+1, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := st.Next(); !ok {
			b.Fatal("caida stream ended")
		}
	}
}

// --- Flight recorder -------------------------------------------------------

// BenchmarkObsRecorder measures the per-span cost of the trace collector
// in both shapes: the unbounded append every traced run pays today, and
// the bounded flight recorder (cap 1024) that replaces the append with a
// ring overwrite once warm. The two must stay within noise of each
// other — if the ring ever costs measurably more per span than the
// slice it bounds, -trace-cap stops being a free memory cap.
func BenchmarkObsRecorder(b *testing.B) {
	for _, tc := range []struct {
		name string
		cap  int
	}{{"unbounded", 0}, {"cap1024", 1024}} {
		b.Run(tc.name, func(b *testing.B) {
			reg := obs.NewRegistry()
			reg.SetTraceCapacity(tc.cap)
			tr := reg.Tracer("bench")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Span("rec", "span", uint64(i), 1)
			}
		})
	}
}

// --- Lint self-analysis ----------------------------------------------------

// BenchmarkSniclintSelf measures the full sniclint gate end to end:
// discover, parse, and type-check every package in the module, then run
// the complete check registry (including waiver validation). This is
// what `make lint` and lint's TestModuleIsClean pay on every run, so a
// regression here slows every CI round and local verify; snicperf gates
// it like the simulator benchmarks. A fresh Loader per iteration is
// deliberate — load+typecheck dominates real invocations.
func BenchmarkSniclintSelf(b *testing.B) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	var findings int
	for i := 0; i < b.N; i++ {
		loader := lint.NewLoader("snic", root)
		pkgs, err := loader.LoadPatterns(nil)
		if err != nil {
			b.Fatal(err)
		}
		findings = len(lint.Run(loader.Fset, pkgs, lint.Registry()))
	}
	b.ReportMetric(float64(findings), "findings")
}

// TestSteadyStateDrawAllocations pins the satellite claim behind the
// streaming refactor: after warm-up, drawing a packet from any of the
// three generators performs zero heap allocations. AllocsPerRun's
// warm-up run absorbs the one-time buffer growth; any per-packet slice
// regression fails here before it shows up as full-scale GC churn.
func TestSteadyStateDrawAllocations(t *testing.T) {
	pool := trace.NewICTF(sim.NewRand(3), 5000)
	if avg := testing.AllocsPerRun(200, func() {
		pool.NextPacketBuf(512)
	}); avg != 0 {
		t.Errorf("Pool.NextPacketBuf: %.1f allocs/packet, want 0", avg)
	}
	st := trace.NewICTFTemplate(sim.NewRand(4), 5000).Stream(512)
	if avg := testing.AllocsPerRun(200, func() {
		st.Next()
	}); avg != 0 {
		t.Errorf("PoolStream.Next: %.1f allocs/packet, want 0", avg)
	}
	cs := trace.NewCAIDABudget(sim.NewRand(5), 1<<40, 3)
	if avg := testing.AllocsPerRun(200, func() {
		cs.Next()
	}); avg != 0 {
		t.Errorf("CAIDAStream.Next: %.1f allocs/packet, want 0", avg)
	}
}
