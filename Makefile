GO ?= go

# Tier-1 verification: everything CI (and the next PR's author) must keep
# green. `race` exercises the experiment engine's worker pool across all
# packages; the exp tests include worker-count-invariance and golden-file
# checks, so this target is the full reproducibility gate. `lint` is the
# invariant gate: sniclint enforces the determinism, factory, seed, and
# stdlib-only rules the goldens depend on (see DESIGN.md "Enforced
# invariants").
.PHONY: verify
verify: build vet lint test race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Static invariant checks (sniclint -list describes each check ID).
.PHONY: lint
lint:
	$(GO) run ./cmd/sniclint ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: fmt
fmt:
	gofmt -w .

# Regenerate the committed golden renderings after an intentional change
# to a model constant, a workload, or a table format.
.PHONY: golden
golden:
	$(GO) test ./internal/exp -update

# Repository-level benchmarks: one per table/figure, plus ablations and
# the engine parallel-vs-serial speedup pair. The run is recorded as a
# stdlib-only JSON summary in the current PR's BENCH file (section
# "post" by convention; record a pre-change tree with
# BENCH_SECTION=baseline) and compared with `snicperf` — see
# EXPERIMENTS.md "Benchmark trajectory".
BENCH_FILE ?= BENCH_5.json
BENCH_SECTION ?= post
BENCH_PR ?= 5
BENCH_PATTERN ?= .
.PHONY: bench
bench:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem . | tee /dev/stderr | \
		$(GO) run ./cmd/snicperf -record -o $(BENCH_FILE) -section $(BENCH_SECTION) -pr $(BENCH_PR)
