GO ?= go

# Tier-1 verification: everything CI (and the next PR's author) must keep
# green. `race` exercises the experiment engine's worker pool across all
# packages; the exp tests include worker-count-invariance and golden-file
# checks, so this target is the full reproducibility gate. `lint` is the
# invariant gate: sniclint enforces the determinism, factory, seed, and
# stdlib-only rules the goldens depend on (see DESIGN.md "Enforced
# invariants").
.PHONY: verify
verify: build vet lint test race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Static invariant checks (sniclint -list describes each check ID).
.PHONY: lint
lint:
	$(GO) run ./cmd/sniclint ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: fmt
fmt:
	gofmt -w .

# Regenerate the committed golden renderings after an intentional change
# to a model constant, a workload, or a table format.
.PHONY: golden
golden:
	$(GO) test ./internal/exp -update

# Repository-level benchmarks: one per table/figure, plus ablations and
# the engine parallel-vs-serial speedup pair.
.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem .
