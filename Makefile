GO ?= go

# Tier-1 verification: everything CI (and the next PR's author) must keep
# green. `race` exercises the experiment engine's worker pool across all
# packages; the exp tests include worker-count-invariance and golden-file
# checks, so this target is the full reproducibility gate. `lint` is the
# invariant gate: sniclint builds the whole-module call graph and
# enforces the isolation-boundary, transitive-determinism,
# lock-discipline, factory, seed, and stdlib-only rules the goldens
# depend on (see DESIGN.md "Enforced invariants").
.PHONY: verify
verify: build vet lint test race fleet resume

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Static invariant checks (sniclint -list describes each check ID).
.PHONY: lint
lint:
	$(GO) run ./cmd/sniclint ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# Fleet scenario gate: the numbered end-to-end suite under the race
# detector (a live snicd API served over real HTTP per scenario), plus a
# coverage floor on the control plane. The floor is deliberately below
# the current number — it catches a PR that deletes the scenario or
# property suites, not normal drift. Regenerate scenario goldens after
# an intentional control-plane change with:
#   go test ./internal/fleet/scenarios -update
FLEET_COVER_FLOOR ?= 70
.PHONY: fleet
fleet:
	$(GO) test -race -coverprofile=fleet.cover -coverpkg=./internal/fleet/... ./internal/fleet/...
	@total=$$($(GO) tool cover -func=fleet.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f fleet.cover; \
	echo "internal/fleet coverage: $$total% (floor $(FLEET_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v floor="$(FLEET_COVER_FLOOR)" 'BEGIN { exit (t+0 < floor+0) ? 1 : 0 }' || \
		{ echo "internal/fleet coverage $$total% fell below the $(FLEET_COVER_FLOOR)% floor" >&2; exit 1; }

# Checkpoint-resume gate: run the replay experiment with a deliberate
# per-shard interrupt (-stop-after, the deterministic "kill"), expect
# exit 3 with a checkpoint saved, resume to completion from the file
# alone, and byte-compare against an uninterrupted run. Catches any
# state that fails to round-trip through a shard cursor.
.PHONY: resume
resume:
	$(GO) build -o /tmp/snicbench.resume ./cmd/snicbench
	@rm -f /tmp/snic.resume.ckpt /tmp/snic.resume.out /tmp/snic.resume.want
	/tmp/snicbench.resume -experiment replay -scale small > /tmp/snic.resume.want
	@/tmp/snicbench.resume -experiment replay -scale small \
		-checkpoint /tmp/snic.resume.ckpt -stop-after 2000 > /dev/null; \
	st=$$?; if [ $$st -ne 3 ]; then \
		echo "resume gate: interrupted run exited $$st, want 3" >&2; exit 1; fi
	@test -s /tmp/snic.resume.ckpt || \
		{ echo "resume gate: no checkpoint written" >&2; exit 1; }
	/tmp/snicbench.resume -experiment replay -scale small \
		-checkpoint /tmp/snic.resume.ckpt > /tmp/snic.resume.out
	cmp /tmp/snic.resume.want /tmp/snic.resume.out
	@rm -f /tmp/snicbench.resume /tmp/snic.resume.ckpt /tmp/snic.resume.out /tmp/snic.resume.want
	@echo "resume gate: interrupted replay resumed byte-identically"

.PHONY: fmt
fmt:
	gofmt -w .

# Regenerate the committed golden renderings after an intentional change
# to a model constant, a workload, or a table format.
.PHONY: golden
golden:
	$(GO) test ./internal/exp -update

# Repository-level benchmarks: one per table/figure, plus ablations and
# the engine parallel-vs-serial speedup pair. The run is recorded as a
# stdlib-only JSON summary in the current PR's BENCH file (section
# "post" by convention; record a pre-change tree with
# BENCH_SECTION=baseline) and compared with `snicperf` — see
# EXPERIMENTS.md "Benchmark trajectory".
BENCH_FILE ?= BENCH_10.json
BENCH_SECTION ?= post
BENCH_PR ?= 10
BENCH_PATTERN ?= .
.PHONY: bench
bench:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem . | tee /dev/stderr | \
		$(GO) run ./cmd/snicperf -record -o $(BENCH_FILE) -section $(BENCH_SECTION) -pr $(BENCH_PR)
