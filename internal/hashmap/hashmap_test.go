package hashmap

import (
	"testing"
	"testing/quick"

	"snic/internal/mem"
	"snic/internal/sim"
)

func key(i uint64) Key {
	var k Key
	for b := 0; b < 8; b++ {
		k[b] = byte(i >> (8 * b))
	}
	return k
}

func TestPutGet(t *testing.T) {
	m := New(nil, 0)
	for i := uint64(0); i < 1000; i++ {
		m.Put(key(i), i*3)
	}
	if m.Len() != 1000 {
		t.Fatalf("len = %d", m.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := m.Get(key(i))
		if !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := m.Get(key(5000)); ok {
		t.Fatal("found absent key")
	}
}

func TestPutOverwrites(t *testing.T) {
	m := New(nil, 0)
	m.Put(key(1), 10)
	m.Put(key(1), 20)
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if v, _ := m.Get(key(1)); v != 20 {
		t.Fatalf("v = %d", v)
	}
}

func TestAdd(t *testing.T) {
	m := New(nil, 0)
	for i := 0; i < 5; i++ {
		m.Add(key(7), 2)
	}
	if v, _ := m.Get(key(7)); v != 10 {
		t.Fatalf("counter = %d", v)
	}
}

func TestDelete(t *testing.T) {
	m := New(nil, 0)
	m.Put(key(1), 1)
	m.Put(key(2), 2)
	if !m.Delete(key(1)) {
		t.Fatal("delete existing failed")
	}
	if m.Delete(key(1)) {
		t.Fatal("delete absent succeeded")
	}
	if _, ok := m.Get(key(1)); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := m.Get(key(2)); !ok || v != 2 {
		t.Fatal("unrelated key damaged by delete")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestTombstoneReuse(t *testing.T) {
	m := New(nil, 0)
	for i := uint64(0); i < 100; i++ {
		m.Put(key(i), i)
	}
	for i := uint64(0); i < 100; i++ {
		m.Delete(key(i))
	}
	// Re-inserting must not blow up capacity unboundedly.
	for i := uint64(0); i < 100; i++ {
		m.Put(key(i), i+1)
	}
	for i := uint64(0); i < 100; i++ {
		if v, ok := m.Get(key(i)); !ok || v != i+1 {
			t.Fatalf("Get(%d) after tombstone churn = %d,%v", i, v, ok)
		}
	}
}

func TestGrowthDoubles(t *testing.T) {
	m := New(nil, 8)
	c0 := m.Cap()
	for i := uint64(0); i < uint64(c0); i++ {
		m.Put(key(i), i)
	}
	if m.Cap() != 2*c0 {
		t.Fatalf("cap = %d, want %d", m.Cap(), 2*c0)
	}
	if m.Resizes() == 0 {
		t.Fatal("no resize recorded")
	}
}

func TestArenaChargesResizeSpike(t *testing.T) {
	var peakDuring uint64
	a := &mem.Arena{}
	a.Samples = func(live uint64) {
		if live > peakDuring {
			peakDuring = live
		}
	}
	m := New(a, 8)
	for i := uint64(0); i < 10000; i++ {
		m.Put(key(i), i)
	}
	// During a resize both tables are live, so the observed peak must
	// exceed the steady-state footprint (Figure 7's spikes).
	if peakDuring <= m.FootprintBytes() {
		t.Fatalf("no resize spike: peak %d, steady %d", peakDuring, m.FootprintBytes())
	}
	if a.LiveIn(mem.SegHeap) != m.FootprintBytes() {
		t.Fatalf("steady-state accounting wrong: arena %d map %d",
			a.LiveIn(mem.SegHeap), m.FootprintBytes())
	}
}

func TestRange(t *testing.T) {
	m := New(nil, 0)
	for i := uint64(0); i < 50; i++ {
		m.Put(key(i), i)
	}
	seen := map[uint64]bool{}
	m.Range(func(k Key, v uint64) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 50 {
		t.Fatalf("ranged over %d entries", len(seen))
	}
	n := 0
	m.Range(func(k Key, v uint64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestReset(t *testing.T) {
	m := New(nil, 0)
	for i := uint64(0); i < 100; i++ {
		m.Put(key(i), i)
	}
	c := m.Cap()
	m.Reset()
	if m.Len() != 0 || m.Cap() != c {
		t.Fatalf("after reset: len=%d cap=%d", m.Len(), m.Cap())
	}
	if _, ok := m.Get(key(1)); ok {
		t.Fatal("entry survived reset")
	}
}

// Property: the map agrees with Go's built-in map under random operations.
func TestMatchesReferenceMap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		m := New(nil, 0)
		ref := map[Key]uint64{}
		for op := 0; op < 2000; op++ {
			k := key(uint64(rng.Intn(300)))
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Uint64()
				m.Put(k, v)
				ref[k] = v
			case 2:
				got := m.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := m.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if m.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New(nil, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Put(key(uint64(i&0xFFFF)), uint64(i))
	}
}

func BenchmarkGetHit(b *testing.B) {
	m := New(nil, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		m.Put(key(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(key(uint64(i & 0xFFFF)))
	}
}
