// Package hashmap implements an open-addressing hash table with explicit,
// deterministic memory accounting. It stands in for the Rust standard
// library HashMap the paper's NFs use: capacity doubles when the load
// factor is exceeded, and a resize transiently holds both the old and new
// tables — exactly the behaviour behind the memory spikes in Figure 7 and
// the "preallocation wastes around a third of the memory due to HashMap
// resizing" observation in Table 8.
//
// Keys and values are fixed-size (Key is a 16-byte flow key, values are
// uint64), mirroring the flow-keyed maps in Firewall, NAT, and Monitor.
package hashmap

import "snic/internal/mem"

// Key is a fixed 16-byte key, wide enough for an IPv4 5-tuple with padding.
type Key [16]byte

// entrySize is the in-memory cost we charge per slot: key + value +
// 1 control byte, rounded to what Rust's hashbrown charges per slot
// (key+value plus 1 byte of control metadata, with 87.5% max load).
const entrySize = 16 + 8 + 1

// EntrySize and MaxLoad export the table's cost model so analytical
// replicas (nf.MonitorModel tracks a Monitor's memory trajectory without
// storing any entries) charge exactly what a live Map would.
const (
	EntrySize = entrySize
	MaxLoad   = 0.875
)

// Map is an open-addressing (linear probing) hash map from Key to uint64.
type Map struct {
	arena   *mem.Arena
	keys    []Key
	vals    []uint64
	state   []uint8 // 0 empty, 1 full, 2 tombstone
	n       int     // live entries
	tombs   int
	maxLoad float64
	resizes int
}

// New creates a map with initial capacity for hint entries (rounded up to
// a power of two) charging its memory to arena. A nil arena is allowed.
func New(arena *mem.Arena, hint int) *Map {
	capacity := 8
	for capacity < hint {
		capacity *= 2
	}
	m := &Map{arena: arena, maxLoad: MaxLoad}
	m.alloc(capacity)
	return m
}

func (m *Map) alloc(capacity int) {
	m.keys = make([]Key, capacity)
	m.vals = make([]uint64, capacity)
	m.state = make([]uint8, capacity)
	if m.arena != nil {
		m.arena.Alloc(mem.SegHeap, uint64(capacity)*entrySize)
	}
}

func (m *Map) release(capacity int) {
	if m.arena != nil {
		m.arena.Free(mem.SegHeap, uint64(capacity)*entrySize)
	}
}

// Len returns the number of live entries.
func (m *Map) Len() int { return m.n }

// Cap returns the current slot capacity.
func (m *Map) Cap() int { return len(m.keys) }

// Resizes returns how many times the table has grown — each one produced
// a transient old+new memory spike.
func (m *Map) Resizes() int { return m.resizes }

// FootprintBytes returns the map's current accounted memory.
func (m *Map) FootprintBytes() uint64 { return uint64(len(m.keys)) * entrySize }

func hashKey(k Key) uint64 {
	// FNV-1a over the 16 bytes; cheap, deterministic, well-spread.
	h := uint64(1469598103934665603)
	for _, b := range k {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (m *Map) slot(k Key) (int, bool) {
	mask := len(m.keys) - 1
	i := int(hashKey(k)) & mask
	firstTomb := -1
	for {
		switch m.state[i] {
		case 0:
			if firstTomb >= 0 {
				return firstTomb, false
			}
			return i, false
		case 1:
			if m.keys[i] == k {
				return i, true
			}
		case 2:
			if firstTomb < 0 {
				firstTomb = i
			}
		}
		i = (i + 1) & mask
	}
}

// Get returns the value for k and whether it is present.
func (m *Map) Get(k Key) (uint64, bool) {
	i, ok := m.slot(k)
	if !ok {
		return 0, false
	}
	return m.vals[i], true
}

// Put inserts or updates k -> v, growing the table if needed.
func (m *Map) Put(k Key, v uint64) {
	if float64(m.n+m.tombs+1) > m.maxLoad*float64(len(m.keys)) {
		m.grow()
	}
	i, ok := m.slot(k)
	if !ok {
		if m.state[i] == 2 {
			m.tombs--
		}
		m.state[i] = 1
		m.keys[i] = k
		m.n++
	}
	m.vals[i] = v
}

// Add increments the value for k by delta, inserting it at delta if absent.
// This is the Monitor NF's per-flow packet counter fast path.
func (m *Map) Add(k Key, delta uint64) {
	if float64(m.n+m.tombs+1) > m.maxLoad*float64(len(m.keys)) {
		m.grow()
	}
	i, ok := m.slot(k)
	if !ok {
		if m.state[i] == 2 {
			m.tombs--
		}
		m.state[i] = 1
		m.keys[i] = k
		m.vals[i] = delta
		m.n++
		return
	}
	m.vals[i] += delta
}

// Delete removes k, returning whether it was present.
func (m *Map) Delete(k Key) bool {
	i, ok := m.slot(k)
	if !ok {
		return false
	}
	m.state[i] = 2
	m.tombs++
	m.n--
	return true
}

func (m *Map) grow() {
	oldKeys, oldVals, oldState := m.keys, m.vals, m.state
	oldCap := len(oldKeys)
	// Old and new tables are live simultaneously during rehash: this is
	// the transient allocation that Figure 7's spikes come from.
	m.alloc(oldCap * 2)
	m.n, m.tombs = 0, 0
	for i, st := range oldState {
		if st == 1 {
			m.reinsert(oldKeys[i], oldVals[i])
		}
	}
	m.release(oldCap)
	m.resizes++
}

func (m *Map) reinsert(k Key, v uint64) {
	mask := len(m.keys) - 1
	i := int(hashKey(k)) & mask
	for m.state[i] == 1 {
		i = (i + 1) & mask
	}
	m.state[i] = 1
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

// Range calls fn for every live entry until fn returns false.
func (m *Map) Range(fn func(k Key, v uint64) bool) {
	for i, st := range m.state {
		if st == 1 {
			if !fn(m.keys[i], m.vals[i]) {
				return
			}
		}
	}
}

// Reset drops all entries but keeps the current capacity.
func (m *Map) Reset() {
	for i := range m.state {
		m.state[i] = 0
	}
	m.n, m.tombs = 0, 0
}
