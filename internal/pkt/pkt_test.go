package pkt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"snic/internal/sim"
)

func tuple() FiveTuple {
	return FiveTuple{
		SrcIP: 0x0A000001, DstIP: 0xC0A80105,
		SrcPort: 12345, DstPort: 80, Proto: ProtoTCP,
	}
}

func TestMarshalParseTCP(t *testing.T) {
	p := Packet{
		SrcMAC:  MAC{1, 2, 3, 4, 5, 6},
		DstMAC:  MAC{7, 8, 9, 10, 11, 12},
		Tuple:   tuple(),
		Payload: []byte("GET / HTTP/1.1\r\n"),
	}
	got, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != p.Tuple || got.SrcMAC != p.SrcMAC || got.DstMAC != p.DstMAC {
		t.Fatalf("headers mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
	if got.TTL != 64 {
		t.Fatalf("default TTL = %d", got.TTL)
	}
}

func TestMarshalParseUDP(t *testing.T) {
	ft := tuple()
	ft.Proto = ProtoUDP
	ft.DstPort = 53
	p := Packet{Tuple: ft, Payload: []byte("dns query")}
	got, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != ft || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestParseDetectsCorruptedIPHeader(t *testing.T) {
	p := Packet{Tuple: tuple(), Payload: []byte("x")}
	f := p.Marshal()
	f[EthHeaderLen+16] ^= 0xFF // flip dst IP byte
	if _, err := Parse(f); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseDetectsCorruptedPayload(t *testing.T) {
	p := Packet{Tuple: tuple(), Payload: []byte("sensitive bytes")}
	f := p.Marshal()
	f[len(f)-1] ^= 0xFF
	if _, err := Parse(f); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseTruncated(t *testing.T) {
	p := Packet{Tuple: tuple(), Payload: []byte("hello")}
	f := p.Marshal()
	for _, n := range []int{0, 5, EthHeaderLen, EthHeaderLen + 10} {
		if _, err := Parse(f[:n]); err == nil {
			t.Fatalf("parsed %d-byte prefix", n)
		}
	}
}

func TestParseNonIPv4(t *testing.T) {
	f := make([]byte, 64)
	f[12], f[13] = 0x86, 0xDD // IPv6 ethertype
	if _, err := Parse(f); !errors.Is(err, ErrNotIPv4) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseBadProto(t *testing.T) {
	p := Packet{Tuple: tuple(), Payload: []byte("x")}
	f := p.Marshal()
	ip := f[EthHeaderLen:]
	ip[9] = 47 // GRE
	// refresh header checksum
	ip[10], ip[11] = 0, 0
	ck := Checksum(ip[:IPv4HeaderLen])
	ip[10], ip[11] = byte(ck>>8), byte(ck)
	if _, err := Parse(f); !errors.Is(err, ErrBadProto) {
		t.Fatalf("err = %v", err)
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	p := Packet{
		SrcMAC:  MAC{1, 1, 1, 1, 1, 1},
		DstMAC:  MAC{2, 2, 2, 2, 2, 2},
		Tuple:   tuple(),
		Payload: []byte("tenant traffic"),
		VNI:     42424,
	}
	f := p.Marshal()
	got, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.VNI != 42424 {
		t.Fatalf("VNI = %d", got.VNI)
	}
	if got.Tuple != p.Tuple || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("inner frame mismatch: %+v", got)
	}
}

func TestVXLANOuterIsUDP4789(t *testing.T) {
	p := Packet{Tuple: tuple(), VNI: 7, Payload: []byte("x")}
	f := p.Marshal()
	// Parse just the outer envelope.
	outer, err := parsePlain(f)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Tuple.Proto != ProtoUDP || outer.Tuple.DstPort != VXLANPort {
		t.Fatalf("outer = %+v", outer.Tuple)
	}
}

func TestFiveTupleKeyUniqueness(t *testing.T) {
	a, b := tuple(), tuple()
	b.SrcPort++
	if a.Key() == b.Key() {
		t.Fatal("distinct tuples share a key")
	}
	if a.Key() != tuple().Key() {
		t.Fatal("equal tuples differ in key")
	}
}

func TestFiveTupleReverse(t *testing.T) {
	a := tuple()
	r := a.Reverse()
	if r.SrcIP != a.DstIP || r.DstPort != a.SrcPort || r.Proto != a.Proto {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != a {
		t.Fatal("double reverse not identity")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style check: checksum of a buffer plus its
	// checksum folds to zero.
	b := []byte{0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06,
		0x00, 0x00, 0xac, 0x10, 0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c}
	ck := Checksum(b)
	b[10], b[11] = byte(ck>>8), byte(ck)
	if Checksum(b) != 0 {
		t.Fatal("checksum does not self-verify")
	}
}

func TestStringFormats(t *testing.T) {
	if (MAC{0xDE, 0xAD, 0, 0, 0, 1}).String() != "de:ad:00:00:00:01" {
		t.Fatal("MAC format")
	}
	if tuple().String() != "10.0.0.1:12345->192.168.1.5:80/6" {
		t.Fatalf("tuple format = %s", tuple().String())
	}
}

// Property: Marshal/Parse round-trips arbitrary payloads and tuples.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16, udp bool, vni uint32) bool {
		rng := sim.NewRand(seed)
		payload := make([]byte, int(n)%1400)
		rng.Bytes(payload)
		ft := FiveTuple{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
			Proto: ProtoTCP,
		}
		if udp {
			ft.Proto = ProtoUDP
			if ft.DstPort == VXLANPort {
				ft.DstPort++ // avoid accidental decap of garbage
			}
		}
		p := Packet{Tuple: ft, Payload: payload, VNI: vni % 2}
		got, err := Parse(p.Marshal())
		if err != nil {
			return false
		}
		if p.VNI != 0 && got.VNI != p.VNI {
			return false
		}
		return got.Tuple == ft && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single bit flip in a TCP frame is detected by a checksum
// (header or L4) or a structural check.
func TestBitFlipDetectedProperty(t *testing.T) {
	p := Packet{Tuple: tuple(), Payload: []byte("integrity matters here")}
	f0 := p.Marshal()
	rng := sim.NewRand(77)
	for i := 0; i < 200; i++ {
		f := append([]byte(nil), f0...)
		bit := rng.Intn(len(f) * 8)
		if bit < EthHeaderLen*8 {
			continue // MAC addresses are not checksummed (as in real Ethernet sans FCS)
		}
		f[bit/8] ^= 1 << (bit % 8)
		got, err := Parse(f)
		if err == nil && got.Tuple == p.Tuple && bytes.Equal(got.Payload, p.Payload) {
			t.Fatalf("undetected bit flip at %d", bit)
		}
	}
}
