// Package pkt implements the packet formats the NIC moves: Ethernet II,
// IPv4, TCP/UDP, and VXLAN encapsulation (RFC 7348), with real header
// layouts and internet checksums. Network functions parse and rewrite
// these frames exactly as they would on hardware; the VXLAN support is
// what lets an S-NIC function act as a tenant-visible Layer-2 endpoint
// (§4.4).
package pkt

import (
	"encoding/binary"
	"fmt"
)

// Protocol numbers used by the NFs.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// Header sizes in bytes.
const (
	EthHeaderLen   = 14
	IPv4HeaderLen  = 20
	TCPHeaderLen   = 20
	UDPHeaderLen   = 8
	VXLANHeaderLen = 8
	// VXLANPort is the IANA-assigned VXLAN UDP port.
	VXLANPort uint16 = 4789
	// EtherTypeIPv4 identifies IPv4 payloads in the Ethernet header.
	EtherTypeIPv4 uint16 = 0x0800
)

// MAC is an Ethernet address.
type MAC [6]byte

// String renders the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// FiveTuple is the flow identifier every switching rule and NF keys on.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Key packs the tuple into a fixed 16-byte key for flow tables.
func (ft FiveTuple) Key() [16]byte {
	var k [16]byte
	binary.BigEndian.PutUint32(k[0:], ft.SrcIP)
	binary.BigEndian.PutUint32(k[4:], ft.DstIP)
	binary.BigEndian.PutUint16(k[8:], ft.SrcPort)
	binary.BigEndian.PutUint16(k[10:], ft.DstPort)
	k[12] = ft.Proto
	return k
}

// Reverse returns the tuple of the opposite direction.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: ft.DstIP, DstIP: ft.SrcIP,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

// String renders "src:port -> dst:port/proto".
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d",
		ipString(ft.SrcIP), ft.SrcPort, ipString(ft.DstIP), ft.DstPort, ft.Proto)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Packet is a parsed frame.
type Packet struct {
	SrcMAC  MAC
	DstMAC  MAC
	Tuple   FiveTuple
	TTL     uint8
	Payload []byte // L4 payload
	VNI     uint32 // VXLAN network identifier of the inner frame; 0 if none
}

// Checksum computes the RFC 1071 internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header partial sum.
func pseudoHeaderSum(src, dst uint32, proto uint8, l4len int) uint32 {
	var sum uint32
	sum += src >> 16
	sum += src & 0xFFFF
	sum += dst >> 16
	sum += dst & 0xFFFF
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

func finish(sum uint32, b []byte) uint16 {
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// Marshal serializes p as an Ethernet/IPv4/{TCP,UDP} frame with correct
// lengths and checksums. If p.VNI != 0 the frame is VXLAN-encapsulated:
// the inner frame is built first, then wrapped in an outer
// Ethernet/IPv4/UDP(4789)/VXLAN envelope reusing the same addresses (the
// datacenter underlay would rewrite the outer header in transit).
func (p *Packet) Marshal() []byte {
	inner := marshalPlain(p)
	if p.VNI == 0 {
		return inner
	}
	return EncapVXLAN(p.VNI, inner, p.SrcMAC, p.DstMAC, p.Tuple.SrcIP, p.Tuple.DstIP)
}

func marshalPlain(p *Packet) []byte {
	l4hdr := TCPHeaderLen
	if p.Tuple.Proto == ProtoUDP {
		l4hdr = UDPHeaderLen
	}
	total := EthHeaderLen + IPv4HeaderLen + l4hdr + len(p.Payload)
	f := make([]byte, total)
	// Ethernet.
	copy(f[0:6], p.DstMAC[:])
	copy(f[6:12], p.SrcMAC[:])
	binary.BigEndian.PutUint16(f[12:], EtherTypeIPv4)
	// IPv4.
	ip := f[EthHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(IPv4HeaderLen+l4hdr+len(p.Payload)))
	ttl := p.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = p.Tuple.Proto
	binary.BigEndian.PutUint32(ip[12:], p.Tuple.SrcIP)
	binary.BigEndian.PutUint32(ip[16:], p.Tuple.DstIP)
	binary.BigEndian.PutUint16(ip[10:], 0)
	binary.BigEndian.PutUint16(ip[10:], Checksum(ip[:IPv4HeaderLen]))
	// L4.
	l4 := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(l4[0:], p.Tuple.SrcPort)
	binary.BigEndian.PutUint16(l4[2:], p.Tuple.DstPort)
	l4len := l4hdr + len(p.Payload)
	if p.Tuple.Proto == ProtoUDP {
		binary.BigEndian.PutUint16(l4[4:], uint16(l4len))
		copy(l4[UDPHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(l4[6:], 0)
		ck := finish(pseudoHeaderSum(p.Tuple.SrcIP, p.Tuple.DstIP, ProtoUDP, l4len), l4[:l4len])
		binary.BigEndian.PutUint16(l4[6:], ck)
	} else {
		l4[12] = 5 << 4 // data offset
		copy(l4[TCPHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(l4[16:], 0)
		ck := finish(pseudoHeaderSum(p.Tuple.SrcIP, p.Tuple.DstIP, p.Tuple.Proto, l4len), l4[:l4len])
		binary.BigEndian.PutUint16(l4[16:], ck)
	}
	return f
}

// Errors returned by Parse.
var (
	ErrTruncated   = fmt.Errorf("pkt: truncated frame")
	ErrNotIPv4     = fmt.Errorf("pkt: not an IPv4 frame")
	ErrBadChecksum = fmt.Errorf("pkt: bad checksum")
	ErrBadProto    = fmt.Errorf("pkt: unsupported L4 protocol")
)

// Parse decodes a frame produced by Marshal (or hand-built by a test or
// attacker). VXLAN frames are decapsulated one level, with the VNI
// recorded on the returned packet. Checksums are verified.
func Parse(f []byte) (Packet, error) {
	p, err := parsePlain(f)
	if err != nil {
		return Packet{}, err
	}
	if p.Tuple.Proto == ProtoUDP && p.Tuple.DstPort == VXLANPort {
		if len(p.Payload) < VXLANHeaderLen {
			return Packet{}, ErrTruncated
		}
		vni := binary.BigEndian.Uint32(p.Payload[4:]) >> 8
		inner, err := parsePlain(p.Payload[VXLANHeaderLen:])
		if err != nil {
			return Packet{}, fmt.Errorf("pkt: inner frame: %w", err)
		}
		inner.VNI = vni
		return inner, nil
	}
	return p, nil
}

func parsePlain(f []byte) (Packet, error) {
	var p Packet
	if len(f) < EthHeaderLen+IPv4HeaderLen {
		return p, ErrTruncated
	}
	copy(p.DstMAC[:], f[0:6])
	copy(p.SrcMAC[:], f[6:12])
	if binary.BigEndian.Uint16(f[12:]) != EtherTypeIPv4 {
		return p, ErrNotIPv4
	}
	ip := f[EthHeaderLen:]
	if ip[0]>>4 != 4 {
		return p, ErrNotIPv4
	}
	ihl := int(ip[0]&0xF) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return p, ErrTruncated
	}
	if Checksum(ip[:ihl]) != 0 {
		return p, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:]))
	if totalLen < ihl || len(ip) < totalLen {
		return p, ErrTruncated
	}
	p.TTL = ip[8]
	p.Tuple.Proto = ip[9]
	p.Tuple.SrcIP = binary.BigEndian.Uint32(ip[12:])
	p.Tuple.DstIP = binary.BigEndian.Uint32(ip[16:])
	l4 := ip[ihl:totalLen]
	switch p.Tuple.Proto {
	case ProtoTCP:
		if len(l4) < TCPHeaderLen {
			return p, ErrTruncated
		}
		doff := int(l4[12]>>4) * 4
		if doff < TCPHeaderLen || len(l4) < doff {
			return p, ErrTruncated
		}
		if finish(pseudoHeaderSum(p.Tuple.SrcIP, p.Tuple.DstIP, ProtoTCP, len(l4)), l4) != 0 {
			return p, fmt.Errorf("%w: TCP", ErrBadChecksum)
		}
		p.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:])
		p.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:])
		p.Payload = l4[doff:]
	case ProtoUDP:
		if len(l4) < UDPHeaderLen {
			return p, ErrTruncated
		}
		if ck := binary.BigEndian.Uint16(l4[6:]); ck != 0 {
			if finish(pseudoHeaderSum(p.Tuple.SrcIP, p.Tuple.DstIP, ProtoUDP, len(l4)), l4) != 0 {
				return p, fmt.Errorf("%w: UDP", ErrBadChecksum)
			}
		}
		p.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:])
		p.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:])
		p.Payload = l4[UDPHeaderLen:]
	default:
		return p, ErrBadProto
	}
	return p, nil
}

// EncapVXLAN wraps an inner Ethernet frame in Ethernet/IPv4/UDP/VXLAN.
func EncapVXLAN(vni uint32, inner []byte, srcMAC, dstMAC MAC, srcIP, dstIP uint32) []byte {
	outer := Packet{
		SrcMAC: srcMAC,
		DstMAC: dstMAC,
		Tuple: FiveTuple{
			SrcIP: srcIP, DstIP: dstIP,
			// Source port derived from inner frame hash for ECMP spread,
			// as RFC 7348 recommends.
			SrcPort: 49152 + uint16(fnv32(inner)%16384),
			DstPort: VXLANPort,
			Proto:   ProtoUDP,
		},
		Payload: make([]byte, VXLANHeaderLen+len(inner)),
	}
	outer.Payload[0] = 0x08 // flags: valid VNI
	binary.BigEndian.PutUint32(outer.Payload[4:], vni<<8)
	copy(outer.Payload[VXLANHeaderLen:], inner)
	return marshalPlain(&outer)
}

func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}
