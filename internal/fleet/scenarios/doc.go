// Package scenarios is the fleet's numbered end-to-end suite. Each
// subdirectory NN-name holds one scenario script (scenario.json) plus
// the golden snapshots (golden/) its run must reproduce byte-for-byte:
//
//	01-smoke/
//	  scenario.json   the northbound API script
//	  golden/
//	    transcript.txt  step-by-step status log
//	    oper.json       final /v1/oper snapshot
//	    metrics.txt     final /v1/metrics dump
//	    trace.txt       final /v1/trace dump
//
// The test harness starts a live snicd server (the same fleet.API
// handler cmd/snicd serves), drives the script over real HTTP, and
// compares the four snapshots against the goldens. Regenerate after an
// intentional behavior change with:
//
//	go test ./internal/fleet/scenarios -update
//
// Every scenario must be byte-identical at any -workers count; the
// invariance test re-runs the suite at 1, 4, and 16 workers.
package scenarios
