package scenarios

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"snic/internal/fleet"
	"snic/internal/obs"
)

var update = flag.Bool("update", false, "rewrite scenario goldens")

// scenarioDirs lists the numbered scenario directories in order.
func scenarioDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			if _, err := os.Stat(filepath.Join(e.Name(), "scenario.json")); err == nil {
				dirs = append(dirs, e.Name())
			}
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no scenario directories found")
	}
	return dirs
}

// run executes one scenario against a live snicd server (the same
// fleet.API handler cmd/snicd serves) at the given worker count.
func run(t *testing.T, dir string, workers int) *fleet.Snapshot {
	t.Helper()
	sc, err := fleet.LoadScenario(filepath.Join(dir, "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != dir {
		t.Fatalf("scenario name %q != directory %q", sc.Name, dir)
	}
	m, err := fleet.NewManager(fleet.Config{
		Seed:    sc.Seed,
		Policy:  sc.Policy,
		Workers: workers,
		Obs:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fleet.NewAPI(m))
	defer srv.Close()
	snap, err := fleet.RunScenario(srv.Client(), srv.URL, sc)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// artifacts maps golden file names to snapshot fields.
func artifacts(snap *fleet.Snapshot) map[string]string {
	return map[string]string{
		"transcript.txt": snap.Transcript,
		"oper.json":      snap.Oper,
		"metrics.txt":    snap.Metrics,
		"trace.txt":      snap.Trace,
	}
}

// golden compares got against dir/golden/name, rewriting under -update.
func golden(t *testing.T, dir, name, got string) {
	t.Helper()
	path := filepath.Join(dir, "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}

// TestScenarios drives every numbered scenario against a live server
// and pins all four snapshots.
func TestScenarios(t *testing.T) {
	for _, dir := range scenarioDirs(t) {
		t.Run(dir, func(t *testing.T) {
			snap := run(t, dir, 4)
			for name, got := range artifacts(snap) {
				golden(t, dir, name, got)
			}
		})
	}
}

// TestScenarioWorkerInvariance is the fleet's determinism gate: every
// scenario must produce byte-identical snapshots — transcript, oper
// state, metric dump, and trace — at 1, 4, and 16 workers. Bursts fan
// out one engine job per device, so any shared mutable state between
// devices or scheduling-dependent randomness shows up here.
func TestScenarioWorkerInvariance(t *testing.T) {
	for _, dir := range scenarioDirs(t) {
		t.Run(dir, func(t *testing.T) {
			base := artifacts(run(t, dir, 1))
			for _, w := range []int{4, 16} {
				got := artifacts(run(t, dir, w))
				for name := range base {
					if got[name] != base[name] {
						t.Errorf("%s with %d workers differs from serial run", name, w)
					}
				}
			}
		})
	}
}
