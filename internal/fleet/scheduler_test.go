package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"snic/internal/device"
	"snic/internal/obs"
	"snic/internal/sim"
)

var propModels = []string{"snic", "bluefield", "agilio", "liquidio-ses", "liquidio-seum"}

// buildRandomFleet constructs a manager with rng-chosen devices and
// tenants and applies a random place/remove history. It returns the
// manager and the number of operations that succeeded.
func buildRandomFleet(t *testing.T, seed uint64, policy string, ops int) *Manager {
	t.Helper()
	rng := sim.DeriveRand(seed, "fleet/prop", policy)
	m, err := NewManager(Config{Seed: seed, Policy: policy, Workers: 2, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	nDev := 2 + rng.Intn(3)
	for i := 0; i < nDev; i++ {
		spec := DeviceSpec{
			Name:  fmt.Sprintf("dev-%02d", i),
			Model: propModels[rng.Intn(len(propModels))],
		}
		if rng.Intn(2) == 0 {
			spec.Cores = 2 + rng.Intn(7)
		}
		if err := m.AddDevice(spec); err != nil {
			t.Fatalf("add %+v: %v", spec, err)
		}
	}
	nTen := 2 + rng.Intn(2)
	for i := 0; i < nTen; i++ {
		var quota ResourceSpec
		if rng.Intn(2) == 0 {
			quota = ResourceSpec{Cores: 2 + rng.Intn(6), MemMB: 4 + uint64(rng.Intn(16))}
		}
		if err := m.Admit(fmt.Sprintf("ten-%02d", i), quota); err != nil {
			t.Fatal(err)
		}
	}
	next := 0
	live := []string{} // "tenant nf" pairs for removal picks
	for i := 0; i < ops; i++ {
		tn := fmt.Sprintf("ten-%02d", rng.Intn(nTen))
		if rng.Intn(10) < 7 || len(live) == 0 {
			spec := NFSpec{
				Name:  fmt.Sprintf("nf-%03d", next),
				MemMB: 1 + uint64(rng.Intn(3)),
				Cores: 1 + rng.Intn(2),
			}
			next++
			if _, err := m.Place(tn, spec); err != nil {
				// Quota and capacity rejections are expected outcomes of
				// a random workload; anything else is a bug.
				if !errors.Is(err, ErrQuota) && !errors.Is(err, ErrNoCapacity) {
					t.Fatalf("place %s/%s: %v", tn, spec.Name, err)
				}
				continue
			}
			live = append(live, tn+" "+spec.Name)
		} else {
			k := rng.Intn(len(live))
			var ten, nf string
			fmt.Sscanf(live[k], "%s %s", &ten, &nf)
			if err := m.Remove(ten, nf); err != nil {
				t.Fatalf("remove %s/%s: %v", ten, nf, err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
	return m
}

// checkAccounting asserts the scheduler's core invariants on a
// snapshot: no device overcommitted on any axis, every used vector
// equal to the sum of its placement demands, and the device and tenant
// views describing the same set of placements.
func checkAccounting(t *testing.T, st OperState) {
	t.Helper()
	devPlacements := map[string]device.Resources{}
	total := 0
	for _, d := range st.Devices {
		if !d.Capacity.Fits(d.Used) {
			t.Errorf("device %s overcommitted: used %v > capacity %v", d.Name, d.Used, d.Capacity)
		}
		var sum device.Resources
		for _, pl := range d.Placements {
			sum = sum.Add(pl.Demand)
			devPlacements[pl.Tenant+"/"+pl.NF] = pl.Demand
		}
		if sum != d.Used {
			t.Errorf("device %s used %v != placement sum %v", d.Name, d.Used, sum)
		}
		if len(d.Placements) != d.LiveNFs {
			t.Errorf("device %s live_nfs %d != %d placements", d.Name, d.LiveNFs, len(d.Placements))
		}
		total += len(d.Placements)
	}
	seen := 0
	for _, tn := range st.Tenants {
		var sum device.Resources
		for _, pl := range tn.NFs {
			sum = sum.Add(pl.Demand)
			want, ok := devPlacements[pl.Tenant+"/"+pl.NF]
			if !ok {
				t.Errorf("tenant %s placement %s/%s missing from its device", tn.Name, pl.Tenant, pl.NF)
			} else if want != pl.Demand {
				t.Errorf("tenant/device demand mismatch for %s/%s", pl.Tenant, pl.NF)
			}
			seen++
		}
		if sum != tn.Used {
			t.Errorf("tenant %s used %v != placement sum %v", tn.Name, tn.Used, sum)
		}
	}
	if seen != total {
		t.Errorf("tenant view has %d placements, device view %d", seen, total)
	}
}

// TestPropertyNoOvercommit drives randomized workloads through every
// policy and asserts the accounting invariants hold at the end of each
// history (and that random histories only ever fail with quota or
// capacity errors).
func TestPropertyNoOvercommit(t *testing.T) {
	for _, policy := range []string{"bestfit", "firstfit", "spread"} {
		t.Run(policy, func(t *testing.T) {
			for seed := uint64(1); seed <= 12; seed++ {
				m := buildRandomFleet(t, seed, policy, 40)
				checkAccounting(t, m.Oper())
			}
		})
	}
}

// TestPropertyPlacementDeterminism re-runs identical random histories
// and requires byte-identical oper state: placement must be a pure
// function of (seed, policy, event order), never of map iteration or
// scheduling.
func TestPropertyPlacementDeterminism(t *testing.T) {
	for _, policy := range []string{"bestfit", "firstfit", "spread"} {
		for seed := uint64(1); seed <= 6; seed++ {
			a, err := json.Marshal(buildRandomFleet(t, seed, policy, 30).Oper())
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(buildRandomFleet(t, seed, policy, 30).Oper())
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("policy %s seed %d: same history, different oper state", policy, seed)
			}
		}
	}
}

// TestPropertyDrainNeverLoses is the drain contract: for any random
// fleet and any device, Drain either relocates every NF (device left
// empty) or fails with ErrNoCapacity — and in both cases no NF is ever
// lost, the total placement count is preserved, and the accounting
// invariants still hold (make-before-break: an NF without a new home
// stays live on the source).
func TestPropertyDrainNeverLoses(t *testing.T) {
	for _, policy := range []string{"bestfit", "firstfit", "spread"} {
		for seed := uint64(1); seed <= 8; seed++ {
			m := buildRandomFleet(t, seed, policy, 40)
			before := m.Oper()
			total := 0
			for _, d := range before.Devices {
				total += len(d.Placements)
			}
			for _, d := range before.Devices {
				err := m.Drain(d.Name)
				if err != nil && !errors.Is(err, ErrNoCapacity) {
					t.Fatalf("drain %s: %v", d.Name, err)
				}
				after := m.Oper()
				checkAccounting(t, after)
				got := 0
				for _, ad := range after.Devices {
					got += len(ad.Placements)
					if err == nil && ad.Name == d.Name && len(ad.Placements) != 0 {
						t.Fatalf("drained device %s still hosts %d NFs", d.Name, len(ad.Placements))
					}
				}
				if got != total {
					t.Fatalf("drain of %s lost NFs: %d -> %d", d.Name, total, got)
				}
				if after.Stats.LostNFs != 0 {
					t.Fatalf("drain of %s counted %d lost NFs", d.Name, after.Stats.LostNFs)
				}
				if err == nil {
					// Reset for the next device: undrain restores capacity.
					if err := m.Undrain(d.Name); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// TestStrategyFor pins the policy registry and its error path.
func TestStrategyFor(t *testing.T) {
	for want, policy := range map[string]string{
		"bestfit":  "",
		"firstfit": "firstfit",
		"spread":   "spread",
	} {
		st, err := strategyFor(policy)
		if err != nil || st.name() != want {
			t.Errorf("strategyFor(%q) = %v, %v; want %s", policy, st, err, want)
		}
	}
	if _, err := NewManager(Config{Policy: "random"}); err == nil {
		t.Error("unknown policy accepted")
	}
}
