package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// API is the fleet's northbound handler: a stdlib net/http mux serving
// config, oper state, control verbs, and observability exports as JSON
// (and the canonical text formats for metrics/traces). The handler
// itself holds no state — every request delegates to the Manager, whose
// single mutex serializes the event order the goldens pin.
//
// Routes:
//
//	GET  /v1/config            declarative state (devices, tenants)
//	GET  /v1/oper              operational snapshot (placements, stats)
//	GET  /v1/oper/stats        scheduler counters only
//	POST /v1/devices           add a device           {DeviceSpec}
//	POST /v1/devices/<n>/drain drain (atomic migrate-away)
//	POST /v1/devices/<n>/undrain
//	POST /v1/devices/<n>/fail  failover (best-effort re-place)
//	POST /v1/tenants           admit a tenant         {name, quota}
//	DELETE /v1/tenants/<n>     evict (tears down its NFs)
//	POST /v1/tenants/<n>/nfs   place an NF            {NFSpec}
//	DELETE /v1/tenants/<n>/nfs/<nf>  remove one placement
//	POST /v1/burst             drive one traffic burst {WorkloadSpec}
//	POST /v1/churn             drive one serverless-churn run {ChurnSpec}
//	POST /v1/advance           advance the clock       {"cycles": n}
//	GET  /v1/metrics           obs metric dump (text, "# snic-metrics v1";
//	                           ?format=prom for Prometheus exposition)
//	GET  /v1/trace             obs trace (text)
//	GET  /v1/progress          live run telemetry (JSON snapshot)
type API struct {
	m   *Manager
	mux *http.ServeMux
}

// NewAPI builds the northbound handler over m.
func NewAPI(m *Manager) *API {
	a := &API{m: m, mux: http.NewServeMux()}
	a.mux.HandleFunc("/v1/config", a.getOnly(a.handleConfig))
	a.mux.HandleFunc("/v1/oper", a.getOnly(a.handleOper))
	a.mux.HandleFunc("/v1/oper/stats", a.getOnly(a.handleStats))
	a.mux.HandleFunc("/v1/devices", a.postOnly(a.handleAddDevice))
	a.mux.HandleFunc("/v1/devices/", a.handleDeviceVerb)
	a.mux.HandleFunc("/v1/tenants", a.postOnly(a.handleAdmit))
	a.mux.HandleFunc("/v1/tenants/", a.handleTenantSub)
	a.mux.HandleFunc("/v1/burst", a.postOnly(a.handleBurst))
	a.mux.HandleFunc("/v1/churn", a.postOnly(a.handleChurn))
	a.mux.HandleFunc("/v1/advance", a.postOnly(a.handleAdvance))
	a.mux.HandleFunc("/v1/metrics", a.getOnly(a.handleMetrics))
	a.mux.HandleFunc("/v1/trace", a.getOnly(a.handleTrace))
	a.mux.HandleFunc("/v1/progress", a.getOnly(a.handleProgress))
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

// apiError is the uniform error envelope.
type apiError struct {
	Error string `json:"error"`
}

// status maps manager errors onto HTTP codes: unknown names are 404,
// conflicts (duplicates, quota, capacity, state) are 409, malformed
// requests are 400.
func status(err error) int {
	switch {
	case errors.Is(err, ErrNoTenant), errors.Is(err, ErrNoDevice), errors.Is(err, ErrNoNF):
		return http.StatusNotFound
	case errors.Is(err, ErrExists), errors.Is(err, ErrQuota),
		errors.Is(err, ErrNoCapacity), errors.Is(err, ErrDeviceState):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(buf, '\n'))
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, status(err), apiError{Error: err.Error()})
}

// decode strictly parses the request body into v (unknown fields are
// errors, so typos in scenario scripts fail loudly as 400s).
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("fleet: bad request body: %w", err)
	}
	return nil
}

func (a *API) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "GET only"})
			return
		}
		h(w, r)
	}
}

func (a *API) postOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST only"})
			return
		}
		h(w, r)
	}
}

func (a *API) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.Configured())
}

func (a *API) handleOper(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.Oper())
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.StatsView())
}

func (a *API) handleAddDevice(w http.ResponseWriter, r *http.Request) {
	var spec DeviceSpec
	if err := decode(r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	if err := a.m.AddDevice(spec); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, spec)
}

// handleDeviceVerb routes POST /v1/devices/<name>/{drain,undrain,fail}.
func (a *API) handleDeviceVerb(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST only"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/devices/")
	name, verb, ok := strings.Cut(rest, "/")
	if !ok || name == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "want /v1/devices/<name>/<verb>"})
		return
	}
	var err error
	switch verb {
	case "drain":
		err = a.m.Drain(name)
	case "undrain":
		err = a.m.Undrain(name)
	case "fail":
		err = a.m.Fail(name)
	default:
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown device verb " + verb})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"device": name, "verb": verb})
}

// admitReq is the POST /v1/tenants body.
type admitReq struct {
	Name  string       `json:"name"`
	Quota ResourceSpec `json:"quota"`
}

func (a *API) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req admitReq
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := a.m.Admit(req.Name, req.Quota); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, req)
}

// handleTenantSub routes everything under /v1/tenants/<name>:
// DELETE <name>, POST <name>/nfs, DELETE <name>/nfs/<nf>.
func (a *API) handleTenantSub(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
	name, sub, hasSub := strings.Cut(rest, "/")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "want /v1/tenants/<name>"})
		return
	}
	switch {
	case !hasSub && r.Method == http.MethodDelete:
		if err := a.m.Evict(name); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"evicted": name})
	case sub == "nfs" && r.Method == http.MethodPost:
		var spec NFSpec
		if err := decode(r, &spec); err != nil {
			writeErr(w, err)
			return
		}
		pl, err := a.m.Place(name, spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, placementOper(pl))
	case strings.HasPrefix(sub, "nfs/") && r.Method == http.MethodDelete:
		nf := strings.TrimPrefix(sub, "nfs/")
		if err := a.m.Remove(name, nf); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"removed": name + "/" + nf})
	default:
		writeJSON(w, http.StatusMethodNotAllowed,
			apiError{Error: "unsupported method or path under /v1/tenants/"})
	}
}

func (a *API) handleBurst(w http.ResponseWriter, r *http.Request) {
	var spec WorkloadSpec
	if err := decode(r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	res, err := a.m.Burst(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *API) handleChurn(w http.ResponseWriter, r *http.Request) {
	var spec ChurnSpec
	if err := decode(r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	res, err := a.m.Churn(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// advanceReq is the POST /v1/advance body.
type advanceReq struct {
	Cycles uint64 `json:"cycles"`
}

func (a *API) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceReq
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	clock := a.m.Advance(req.Cycles)
	writeJSON(w, http.StatusOK, map[string]uint64{"clock": clock})
}

// handleMetrics serves the registry's canonical sorted text dump — the
// worker-invariant "# snic-metrics v1" format the scenario suite pins —
// or, with ?format=prom, the Prometheus text exposition so a stock
// scrape config can point at a live snicd.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// The northbound export endpoint is the sanctioned reader: it runs
		// on the API path, never inside the simulation.
		//lint:allow transitive-determinism northbound metrics export endpoint, not a simulation-path reader
		fmt.Fprint(w, a.m.cfg.Obs.DumpMetrics())
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:allow transitive-determinism northbound metrics export endpoint, not a simulation-path reader
		fmt.Fprint(w, a.m.cfg.Obs.PromText())
	default:
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: "unknown metrics format " + r.URL.Query().Get("format")})
	}
}

// handleTrace serves the registry's deterministic text trace.
func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//lint:allow transitive-determinism northbound trace export endpoint, not a simulation-path reader
	fmt.Fprint(w, a.m.cfg.Obs.TraceText())
}

// handleProgress serves the live-run telemetry snapshot. Unlike the
// deterministic exports above, this payload is wall-clock-fed and
// changes between identical runs — it exists for humans and watchers
// (snicstat -watch), never for goldens.
func (a *API) handleProgress(w http.ResponseWriter, r *http.Request) {
	//lint:allow transitive-determinism northbound progress endpoint reads the quarantined live plane, not a simulation-path reader
	snap := a.m.cfg.Progress.Snapshot()
	writeJSON(w, http.StatusOK, snap)
}
