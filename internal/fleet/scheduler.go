package fleet

import (
	"fmt"

	"snic/internal/device"
)

// strategy is a placement policy: given the active devices in sorted
// name order, pick the one to host spec. Every strategy is a pure
// function of the candidate list (name, free vector, live count) with
// sorted-name tie-breaking, so placement order — and therefore every
// oper-state golden — is independent of map iteration and scheduling.
type strategy interface {
	name() string
	// pick chooses among the live free vectors.
	pick(cands []*managedDevice, spec NFSpec) (string, device.Resources, error)
	// pickScratch chooses against an externally maintained free table —
	// the drain planner's all-or-nothing simulation.
	pickScratch(cands []*managedDevice, free map[string]device.Resources, spec NFSpec) (string, device.Resources, error)
}

// strategyFor resolves a policy name ("" selects bestfit).
func strategyFor(policy string) (strategy, error) {
	switch policy {
	case "", "bestfit":
		return bestFit{}, nil
	case "firstfit":
		return firstFit{}, nil
	case "spread":
		return spread{}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q (have bestfit, firstfit, spread)", policy)
	}
}

// fitOn computes the effective demand of spec on device d (TLB-entry
// demand depends on d's ownership frame size) and whether it fits in
// free.
func fitOn(d *managedDevice, free device.Resources, spec NFSpec) (device.Resources, bool) {
	demand := spec.demandOn(d.nic.FrameSize())
	return demand, free.Fits(demand)
}

// less orders two free vectors lexicographically by (cores, mem, TLB,
// ways, clusters) — the shared comparison bestFit and spread invert.
func lessFree(a, b device.Resources) bool {
	if a.Cores != b.Cores {
		return a.Cores < b.Cores
	}
	if a.MemBytes != b.MemBytes {
		return a.MemBytes < b.MemBytes
	}
	if a.TLBEntries != b.TLBEntries {
		return a.TLBEntries < b.TLBEntries
	}
	if a.CacheWays != b.CacheWays {
		return a.CacheWays < b.CacheWays
	}
	return a.AccelClusters < b.AccelClusters
}

// firstFit places on the first (lowest-name) device with room — the
// λ-NIC-style latency-first policy: no scoring pass, stable fronts.
type firstFit struct{}

func (firstFit) name() string { return "firstfit" }

func (f firstFit) pick(cands []*managedDevice, spec NFSpec) (string, device.Resources, error) {
	return f.pickScratch(cands, nil, spec)
}

func (firstFit) pickScratch(cands []*managedDevice, free map[string]device.Resources, spec NFSpec) (string, device.Resources, error) {
	for _, d := range cands {
		fr := d.free()
		if free != nil {
			fr = free[d.name]
		}
		if demand, ok := fitOn(d, fr, spec); ok {
			return d.name, demand, nil
		}
	}
	return "", device.Resources{}, fmt.Errorf("%w: %s", ErrNoCapacity, spec.Name)
}

// bestFit packs tightly: among fitting devices, choose the one whose
// remaining free vector after placement is smallest — classic bin
// packing, maximizing whole-device headroom for future large tenants
// (and emptying the fewest bins for drains).
type bestFit struct{}

func (bestFit) name() string { return "bestfit" }

func (b bestFit) pick(cands []*managedDevice, spec NFSpec) (string, device.Resources, error) {
	return b.pickScratch(cands, nil, spec)
}

func (bestFit) pickScratch(cands []*managedDevice, free map[string]device.Resources, spec NFSpec) (string, device.Resources, error) {
	bestName := ""
	var bestDemand, bestRem device.Resources
	for _, d := range cands {
		fr := d.free()
		if free != nil {
			fr = free[d.name]
		}
		demand, ok := fitOn(d, fr, spec)
		if !ok {
			continue
		}
		rem := fr.Sub(demand)
		if bestName == "" || lessFree(rem, bestRem) {
			bestName, bestDemand, bestRem = d.name, demand, rem
		}
	}
	if bestName == "" {
		return "", device.Resources{}, fmt.Errorf("%w: %s", ErrNoCapacity, spec.Name)
	}
	return bestName, bestDemand, nil
}

// spread balances: among fitting devices, choose the one with the
// fewest live NFs, then the largest remaining free vector — the
// blast-radius-minimizing policy for failover experiments.
type spread struct{}

func (spread) name() string { return "spread" }

func (s spread) pick(cands []*managedDevice, spec NFSpec) (string, device.Resources, error) {
	return s.pickScratch(cands, nil, spec)
}

func (spread) pickScratch(cands []*managedDevice, free map[string]device.Resources, spec NFSpec) (string, device.Resources, error) {
	bestName := ""
	bestLive := 0
	var bestDemand, bestRem device.Resources
	for _, d := range cands {
		fr := d.free()
		if free != nil {
			fr = free[d.name]
		}
		demand, ok := fitOn(d, fr, spec)
		if !ok {
			continue
		}
		rem := fr.Sub(demand)
		better := bestName == "" ||
			len(d.placed) < bestLive ||
			(len(d.placed) == bestLive && lessFree(bestRem, rem))
		if better {
			bestName, bestLive, bestDemand, bestRem = d.name, len(d.placed), demand, rem
		}
	}
	if bestName == "" {
		return "", device.Resources{}, fmt.Errorf("%w: %s", ErrNoCapacity, spec.Name)
	}
	return bestName, bestDemand, nil
}
