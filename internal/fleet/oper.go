package fleet

import (
	"sort"

	"snic/internal/device"
)

// PlacementOper is one placement in an oper-state dump.
type PlacementOper struct {
	Tenant string           `json:"tenant"`
	NF     string           `json:"nf"`
	Device string           `json:"device"`
	FuncID device.FuncID    `json:"func_id"`
	Port   uint16           `json:"port"`
	Demand device.Resources `json:"demand"`
}

// DeviceOper is one device's operational state.
type DeviceOper struct {
	Name       string           `json:"name"`
	Model      string           `json:"model"`
	State      string           `json:"state"`
	Capacity   device.Resources `json:"capacity"`
	Used       device.Resources `json:"used"`
	Free       device.Resources `json:"free"`
	LiveNFs    int              `json:"live_nfs"`
	Placements []PlacementOper  `json:"placements,omitempty"`
}

// TenantOper is one tenant's operational state.
type TenantOper struct {
	Name  string           `json:"name"`
	Quota ResourceSpec     `json:"quota"`
	Used  device.Resources `json:"used"`
	NFs   []PlacementOper  `json:"nfs,omitempty"`
}

// OperState is the fleet's full operational snapshot: what /v1/oper
// serves and what the scenario suite pins as goldens. Every slice is
// sorted and every field is a pure function of (seed, event history) —
// deliberately no worker count, no wall time, no metric reads.
type OperState struct {
	Seed    uint64       `json:"seed"`
	Policy  string       `json:"policy"`
	Clock   uint64       `json:"clock"`
	Bursts  uint64       `json:"bursts"`
	Devices []DeviceOper `json:"devices"`
	Tenants []TenantOper `json:"tenants"`
	Stats   Stats        `json:"stats"`
}

// ConfigState is the declarative half: what was asked for, not what
// happened. /v1/config serves it.
type ConfigState struct {
	Seed    uint64         `json:"seed"`
	Policy  string         `json:"policy"`
	Devices []DeviceSpec   `json:"devices"`
	Tenants []TenantConfig `json:"tenants"`
}

// TenantConfig is one tenant's declarative entry.
type TenantConfig struct {
	Name  string       `json:"name"`
	Quota ResourceSpec `json:"quota"`
}

func placementOper(pl *Placement) PlacementOper {
	return PlacementOper{
		Tenant: pl.Tenant,
		NF:     pl.NF,
		Device: pl.Device,
		FuncID: pl.Func,
		Port:   pl.Port,
		Demand: pl.Demand,
	}
}

// Oper snapshots the fleet's operational state.
func (m *Manager) Oper() OperState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := OperState{
		Seed:    m.cfg.Seed,
		Policy:  m.cfg.Policy,
		Clock:   m.clock,
		Bursts:  m.bursts,
		Devices: []DeviceOper{},
		Tenants: []TenantOper{},
		Stats:   m.stats,
	}
	for _, name := range m.sortedDeviceNames() {
		md := m.devices[name]
		d := DeviceOper{
			Name:     md.name,
			Model:    md.spec.Model,
			State:    string(md.state),
			Capacity: md.capacity,
			Used:     md.used,
			Free:     md.free(),
			LiveNFs:  len(md.placed),
		}
		for _, k := range md.sortedPlacementKeys() {
			d.Placements = append(d.Placements, placementOper(md.placed[k]))
		}
		st.Devices = append(st.Devices, d)
	}
	for _, name := range m.sortedTenantNames() {
		tn := m.tenants[name]
		t := TenantOper{Name: tn.name, Quota: tn.quota, Used: tn.used}
		nfs := make([]string, 0, len(tn.placed))
		for nf := range tn.placed {
			nfs = append(nfs, nf)
		}
		sort.Strings(nfs)
		for _, nf := range nfs {
			t.NFs = append(t.NFs, placementOper(tn.placed[nf]))
		}
		st.Tenants = append(st.Tenants, t)
	}
	return st
}

// Configured snapshots the declarative state.
func (m *Manager) Configured() ConfigState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := ConfigState{
		Seed:    m.cfg.Seed,
		Policy:  m.cfg.Policy,
		Devices: []DeviceSpec{},
		Tenants: []TenantConfig{},
	}
	for _, name := range m.sortedDeviceNames() {
		st.Devices = append(st.Devices, m.devices[name].spec)
	}
	for _, name := range m.sortedTenantNames() {
		tn := m.tenants[name]
		st.Tenants = append(st.Tenants, TenantConfig{Name: tn.name, Quota: tn.quota})
	}
	return st
}

func (m *Manager) sortedDeviceNames() []string {
	names := make([]string, 0, len(m.devices))
	for n := range m.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (m *Manager) sortedTenantNames() []string {
	names := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
