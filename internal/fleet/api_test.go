package fleet

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snic/internal/obs"
)

var update = flag.Bool("update", false, "rewrite goldens")

// newTestServer builds a manager with a small populated fleet and a
// live API server over it.
func newTestServer(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := NewManager(Config{Seed: 42, Workers: 2, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(m))
	t.Cleanup(srv.Close)
	return m, srv
}

// do issues one request and returns the response status and body.
func do(t *testing.T, srv *httptest.Server, method, path, body string) (int, string) {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// seedFleet populates the standard test fleet: two devices, one tenant
// with a two-core quota, one placement.
func seedFleet(t *testing.T, srv *httptest.Server) {
	t.Helper()
	for _, step := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/devices", `{"name":"nic-a","model":"snic"}`, 201},
		{"POST", "/v1/devices", `{"name":"nic-b","model":"bluefield"}`, 201},
		{"POST", "/v1/tenants", `{"name":"acme","quota":{"cores":2}}`, 201},
		{"POST", "/v1/tenants/acme/nfs", `{"name":"fw"}`, 201},
	} {
		if got, body := do(t, srv, step.method, step.path, step.body); got != step.want {
			t.Fatalf("seed %s %s = %d, want %d\n%s", step.method, step.path, got, step.want, body)
		}
	}
}

// TestAPIStatusCodes is the northbound contract: malformed bodies are
// 400, unknown names are 404, conflicts are 409, wrong methods are 405.
func TestAPIStatusCodes(t *testing.T) {
	_, srv := newTestServer(t)
	seedFleet(t, srv)

	cases := []struct {
		name         string
		method, path string
		body         string
		want         int
	}{
		{"bad JSON body", "POST", "/v1/devices", `{"name":`, 400},
		{"unknown field", "POST", "/v1/devices", `{"name":"x","model":"snic","flavor":"large"}`, 400},
		{"device without model", "POST", "/v1/devices", `{"name":"x"}`, 400},
		{"unknown model", "POST", "/v1/devices", `{"name":"x","model":"martian"}`, 400},
		{"tenant without name", "POST", "/v1/tenants", `{}`, 400},
		{"bad burst body", "POST", "/v1/burst", `[]`, 400},
		{"bad advance body", "POST", "/v1/advance", `{"cycles":"soon"}`, 400},
		{"nf without name", "POST", "/v1/tenants/acme/nfs", `{}`, 400},

		{"place on unknown tenant", "POST", "/v1/tenants/ghost/nfs", `{"name":"fw"}`, 404},
		{"evict unknown tenant", "DELETE", "/v1/tenants/ghost", "", 404},
		{"remove unknown nf", "DELETE", "/v1/tenants/acme/nfs/nope", "", 404},
		{"drain unknown device", "POST", "/v1/devices/ghost/drain", "", 404},
		{"fail unknown device", "POST", "/v1/devices/ghost/fail", "", 404},
		{"unknown device verb", "POST", "/v1/devices/nic-a/explode", "", 404},

		{"double admit", "POST", "/v1/tenants", `{"name":"acme"}`, 409},
		{"double add device", "POST", "/v1/devices", `{"name":"nic-a","model":"snic"}`, 409},
		{"double place", "POST", "/v1/tenants/acme/nfs", `{"name":"fw"}`, 409},
		{"undrain active device", "POST", "/v1/devices/nic-a/undrain", "", 409},

		{"POST on oper", "POST", "/v1/oper", "", 405},
		{"GET on burst", "GET", "/v1/burst", "", 405},
		{"PUT on tenants", "PUT", "/v1/tenants", `{}`, 405},
		{"GET on tenant sub", "GET", "/v1/tenants/acme/nfs", "", 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, body := do(t, srv, tc.method, tc.path, tc.body)
			if got != tc.want {
				t.Errorf("%s %s = %d, want %d\n%s", tc.method, tc.path, got, tc.want, body)
			}
			if !strings.Contains(body, "{") {
				t.Errorf("response is not a JSON envelope: %q", body)
			}
		})
	}
}

// TestAPIQuotaAndCapacity drives the two placement conflicts end to
// end: the tenant's two-core quota rejects the third NF, and a fresh
// unlimited tenant eventually exhausts device capacity.
func TestAPIQuotaAndCapacity(t *testing.T) {
	_, srv := newTestServer(t)
	seedFleet(t, srv)

	if got, body := do(t, srv, "POST", "/v1/tenants/acme/nfs", `{"name":"nf2"}`); got != 201 {
		t.Fatalf("second NF = %d\n%s", got, body)
	}
	got, body := do(t, srv, "POST", "/v1/tenants/acme/nfs", `{"name":"nf3"}`)
	if got != 409 || !strings.Contains(body, "quota") {
		t.Fatalf("quota overrun = %d, want 409 quota error\n%s", got, body)
	}

	if got, _ := do(t, srv, "POST", "/v1/tenants", `{"name":"greedy"}`); got != 201 {
		t.Fatalf("admit greedy = %d", got)
	}
	placed := 0
	for i := 0; i < 64; i++ {
		got, body := do(t, srv, "POST", "/v1/tenants/greedy/nfs",
			`{"name":"nf`+string(rune('a'+i))+`"}`)
		if got == 201 {
			placed++
			continue
		}
		if got != 409 || !strings.Contains(body, "capacity") {
			t.Fatalf("placement %d = %d, want 409 capacity error\n%s", i, got, body)
		}
		break
	}
	if placed == 0 || placed >= 64 {
		t.Fatalf("capacity never exhausted (placed %d)", placed)
	}
}

// TestAPIOperGoldenRoundTrip pins the oper-state wire format: the
// /v1/oper response must unmarshal into OperState and re-marshal to the
// identical bytes (no unknown fields, no float drift, stable order),
// and the whole dump must match the golden.
func TestAPIOperGoldenRoundTrip(t *testing.T) {
	_, srv := newTestServer(t)
	seedFleet(t, srv)
	if got, body := do(t, srv, "POST", "/v1/burst", `{"packets":4,"accel_ops":1,"bus_ops":1}`); got != 200 {
		t.Fatalf("burst = %d\n%s", got, body)
	}

	got, body := do(t, srv, "GET", "/v1/oper", "")
	if got != 200 {
		t.Fatalf("GET /v1/oper = %d", got)
	}

	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	var st OperState
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("oper dump does not round-trip into OperState: %v", err)
	}
	re, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(re)+"\n" != body {
		t.Errorf("re-marshaled oper state differs from wire bytes:\n%s\n--- wire ---\n%s", re, body)
	}

	path := filepath.Join("testdata", "oper_roundtrip.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if body != string(want) {
		t.Errorf("oper dump differs from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, body, want)
	}
}

// TestAPIExports sanity-checks the observability endpoints: canonical
// headers, text content type.
func TestAPIExports(t *testing.T) {
	_, srv := newTestServer(t)
	seedFleet(t, srv)
	if got, body := do(t, srv, "GET", "/v1/metrics", ""); got != 200 ||
		!strings.HasPrefix(body, "# snic-metrics v1\n") {
		t.Errorf("metrics export = %d, %q...", got, body[:min(40, len(body))])
	}
	if got, body := do(t, srv, "GET", "/v1/trace", ""); got != 200 ||
		!strings.HasPrefix(body, "# snic-trace v1\n") {
		t.Errorf("trace export = %d, %q...", got, body[:min(40, len(body))])
	}
}

// TestAPIMetricsPromFormat: ?format=prom serves Prometheus exposition
// that passes the in-repo validator; unknown formats are 400.
func TestAPIMetricsPromFormat(t *testing.T) {
	_, srv := newTestServer(t)
	seedFleet(t, srv)
	if _, body := do(t, srv, "POST", "/v1/burst", `{"packets":64}`); body == "" {
		t.Fatal("burst failed")
	}
	got, body := do(t, srv, "GET", "/v1/metrics?format=prom", "")
	if got != 200 {
		t.Fatalf("prom export = %d\n%s", got, body)
	}
	if !strings.Contains(body, "# TYPE snic_") {
		t.Fatalf("prom export carries no snic_ families:\n%s", body)
	}
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("prom export fails validator: %v\n%s", err, body)
	}
	if got, _ := do(t, srv, "GET", "/v1/metrics?format=xml", ""); got != 400 {
		t.Errorf("unknown format = %d, want 400", got)
	}
	if got, body := do(t, srv, "GET", "/v1/metrics?format=text", ""); got != 200 ||
		!strings.HasPrefix(body, "# snic-metrics v1\n") {
		t.Errorf("explicit text format = %d, %q...", got, body[:min(40, len(body))])
	}
}

// TestAPIProgressShape pins the /v1/progress wire contract: a JSON
// object with every telemetry field, live against a manager with an
// attached progress collector — and a sane all-zero shape without one.
func TestAPIProgressShape(t *testing.T) {
	m, err := NewManager(Config{
		Seed: 42, Workers: 2,
		Obs:      obs.NewRegistry(),
		Progress: obs.NewProgress(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(m))
	t.Cleanup(srv.Close)
	seedFleet(t, srv)
	if got, body := do(t, srv, "POST", "/v1/burst", `{"packets":64}`); got != 200 {
		t.Fatalf("burst = %d\n%s", got, body)
	}
	got, body := do(t, srv, "GET", "/v1/progress", "")
	if got != 200 {
		t.Fatalf("progress = %d\n%s", got, body)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress is not a JSON object: %v\n%s", err, body)
	}
	for _, field := range []string{
		"experiment", "jobs_total", "jobs_done", "jobs_failed",
		"items", "items_total", "elapsed_sec", "items_per_sec",
		"eta_sec", "since_save_sec", "active",
	} {
		if _, ok := snap[field]; !ok {
			t.Errorf("progress JSON missing %q: %s", field, body)
		}
	}
	// The burst fanned out engine jobs and they all drained.
	if snap["jobs_total"].(float64) < 1 || snap["jobs_done"] != snap["jobs_total"] {
		t.Errorf("jobs = %v/%v, want all burst jobs done",
			snap["jobs_done"], snap["jobs_total"])
	}
	if got, _ := do(t, srv, "POST", "/v1/progress", ""); got != 405 {
		t.Errorf("POST /v1/progress = %d, want 405", got)
	}

	// No collector attached: still 200 with the unknown-state snapshot.
	_, bare := newTestServer(t)
	got, body = do(t, bare, "GET", "/v1/progress", "")
	if got != 200 || !strings.Contains(body, `"jobs_total": 0`) {
		t.Errorf("detached progress = %d, %s", got, body)
	}
}

// TestAPIConfigReflectsDeclarations checks /v1/config reports what was
// declared, not what happened: specs and quotas, no placements.
func TestAPIConfigReflectsDeclarations(t *testing.T) {
	_, srv := newTestServer(t)
	seedFleet(t, srv)
	got, body := do(t, srv, "GET", "/v1/config", "")
	if got != 200 {
		t.Fatalf("GET /v1/config = %d", got)
	}
	var st ConfigState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Devices) != 2 || st.Devices[0].Name != "nic-a" || st.Devices[1].Name != "nic-b" {
		t.Errorf("config devices = %+v", st.Devices)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Quota.Cores != 2 {
		t.Errorf("config tenants = %+v", st.Tenants)
	}
	if strings.Contains(body, "placements") {
		t.Errorf("config dump leaks oper state:\n%s", body)
	}
}
