// Package fleet is the datacenter control plane over the device layer: a
// deterministic, simulated-time manager that owns a fleet of registered
// device.NIC instances, admits and evicts tenants, and places tenant
// network functions on devices with a bin-packing scheduler over the
// modeled resource vector (cores, DRAM, locked-TLB entries, L2 cache
// ways, accelerator clusters — device.Resources).
//
// The paper evaluates isolation one device at a time; fleet is the layer
// that turns those one-shot runs into placement, churn, admission-
// control, drain, and failover experiments. λ-NIC-style churn (continuous
// arrival and teardown of short-lived functions) and SuperNIC-style
// scheduler-driven multi-tenancy both land here.
//
// Everything is simulated time and derived randomness:
//
//   - The fleet clock is a plain cycle counter advanced by the event
//     script (never the wall clock), so oper-state dumps are pinnable.
//   - Traffic bursts fan out one engine job per device, keyed by a
//     stable (burst, device) label, so metric dumps and traces are
//     byte-identical at any -workers count.
//   - All randomness flows through sim.DeriveRand(seed, labels...).
//
// The northbound API (api.go) serves config, oper state, and obs
// metric/trace exports over stdlib net/http + JSON; cmd/snicd is the
// daemon. The numbered end-to-end scenario suite in
// internal/fleet/scenarios drives a live server through the same API and
// pins oper-state and metric snapshots as goldens.
package fleet

import (
	"errors"

	"snic/internal/device"
)

// Errors the manager returns; api.go maps them onto HTTP status codes.
var (
	// ErrNoTenant: the named tenant was never admitted (404).
	ErrNoTenant = errors.New("fleet: no such tenant")
	// ErrNoDevice: the named device is not registered (404).
	ErrNoDevice = errors.New("fleet: no such device")
	// ErrNoNF: the tenant has no placement under that NF name (404).
	ErrNoNF = errors.New("fleet: no such NF")
	// ErrExists: admission or registration under a taken name (409).
	ErrExists = errors.New("fleet: already exists")
	// ErrQuota: the placement would exceed the tenant's quota (409).
	ErrQuota = errors.New("fleet: tenant quota exceeded")
	// ErrNoCapacity: no active device can hold the demand (409).
	ErrNoCapacity = errors.New("fleet: no device has capacity")
	// ErrDeviceState: the operation conflicts with the device's state,
	// e.g. draining an already-failed device (409).
	ErrDeviceState = errors.New("fleet: device state conflict")
)

// DeviceSpec declares one fleet device in configs and scenario scripts.
// The zero fields pick the device factory's per-model defaults.
type DeviceSpec struct {
	Name  string `json:"name"`
	Model string `json:"model"`
	Cores int    `json:"cores,omitempty"`
	MemMB uint64 `json:"mem_mb,omitempty"`
}

// ResourceSpec is the JSON-friendly quota/demand vector of configs and
// scripts (MB instead of bytes). For tenant quotas a zero axis means
// unlimited; for NF demands zeros pick defaults.
type ResourceSpec struct {
	Cores         int    `json:"cores,omitempty"`
	MemMB         uint64 `json:"mem_mb,omitempty"`
	TLBEntries    int    `json:"tlb_entries,omitempty"`
	CacheWays     int    `json:"cache_ways,omitempty"`
	AccelClusters int    `json:"accel_clusters,omitempty"`
}

// resources converts the spec to the device layer's byte-denominated
// vector.
func (s ResourceSpec) resources() device.Resources {
	return device.Resources{
		Cores:         s.Cores,
		MemBytes:      s.MemMB << 20,
		TLBEntries:    s.TLBEntries,
		CacheWays:     s.CacheWays,
		AccelClusters: s.AccelClusters,
	}
}

// allows reports whether adding add to used stays inside the quota.
// Zero quota axes are unlimited: a tenant admitted with an empty quota
// is bounded only by device capacity.
func (s ResourceSpec) allows(used, add device.Resources) bool {
	total := used.Add(add)
	if s.Cores > 0 && total.Cores > s.Cores {
		return false
	}
	if s.MemMB > 0 && total.MemBytes > s.MemMB<<20 {
		return false
	}
	if s.TLBEntries > 0 && total.TLBEntries > s.TLBEntries {
		return false
	}
	if s.CacheWays > 0 && total.CacheWays > s.CacheWays {
		return false
	}
	if s.AccelClusters > 0 && total.AccelClusters > s.AccelClusters {
		return false
	}
	return true
}

// NFSpec describes one network-function instance to place. MemMB
// defaults to 1, CacheWays and AccelClusters to 1, Cores to 1. Port is
// the UDP destination port steered to this NF; 0 auto-assigns the next
// free port so every placement in a scenario gets a unique, stable
// steering rule.
type NFSpec struct {
	Name          string `json:"name"`
	MemMB         uint64 `json:"mem_mb,omitempty"`
	Cores         int    `json:"cores,omitempty"`
	CacheWays     int    `json:"cache_ways,omitempty"`
	AccelClusters int    `json:"accel_clusters,omitempty"`
	Port          uint16 `json:"port,omitempty"`
}

func (s *NFSpec) defaults() {
	if s.MemMB == 0 {
		s.MemMB = 1
	}
	if s.Cores == 0 {
		s.Cores = 1
	}
	if s.CacheWays == 0 {
		s.CacheWays = 1
	}
	if s.AccelClusters == 0 {
		s.AccelClusters = 1
	}
}

// demandOn computes the spec's effective demand vector on a device with
// the given ownership frame size: the locked-TLB entry demand is the
// number of frames the reservation spans (§4.2 installs one mapping per
// frame at launch).
func (s NFSpec) demandOn(frameSize uint64) device.Resources {
	memBytes := s.MemMB << 20
	entries := int((memBytes + frameSize - 1) / frameSize)
	return device.Resources{
		Cores:         s.Cores,
		MemBytes:      memBytes,
		TLBEntries:    entries,
		CacheWays:     s.CacheWays,
		AccelClusters: s.AccelClusters,
	}
}

// WorkloadSpec is one traffic burst: every live placement receives
// Packets steered frames and issues AccelOps accelerator and BusOps
// interconnect operations. The burst fans out one engine job per
// device, so devices progress concurrently while each device's own
// placements stay serial (they share the device instance).
type WorkloadSpec struct {
	Packets    int `json:"packets,omitempty"`
	AccelOps   int `json:"accel_ops,omitempty"`
	BusOps     int `json:"bus_ops,omitempty"`
	FrameBytes int `json:"frame_bytes,omitempty"`
}

func (w *WorkloadSpec) defaults() {
	if w.Packets == 0 {
		w.Packets = 16
	}
	if w.FrameBytes == 0 {
		w.FrameBytes = 256
	}
}
