package fleet

import (
	"fmt"
	"sort"

	"snic/internal/device"
	"snic/internal/engine"
	"snic/internal/obs"
	"snic/internal/sim"
	"snic/internal/snic"
)

// ChurnSpec is one serverless-churn run (POST /v1/churn): every active
// device continuously launches, attests, and tears down short-lived
// ephemeral functions — λ-NIC-style workloads — without touching the
// tenant placement tables. The run is self-contained: every ephemeral
// function is torn down before it returns, so the fleet's schedulable
// state is exactly what it was, plus the clock advance and the stats.
type ChurnSpec struct {
	// Events is the number of lifecycle events per device (default 40).
	Events int `json:"events,omitempty"`
	// Target is the steady-state ephemeral-function count per device,
	// clamped to the device's free cores (default 2).
	Target int `json:"target,omitempty"`
	// Batch is the attestation batch size on S-NICs when FastPath is on
	// (default 4); the cold path always attests one quote per function.
	Batch int `json:"batch,omitempty"`
	// MemMB is the per-function reservation (default 1).
	MemMB uint64 `json:"mem_mb,omitempty"`
	// FastPath enables the S-NIC churn fast paths — batched attestation,
	// warm scrubbed-arena pool, parallel teardown scrub — for the
	// duration of the run; each device's prior configuration is restored
	// (and any parked frames drained) before the run returns.
	FastPath bool `json:"fast_path,omitempty"`
}

func (s *ChurnSpec) defaults() {
	if s.Events == 0 {
		s.Events = 40
	}
	if s.Target == 0 {
		s.Target = 2
	}
	if s.Batch == 0 {
		s.Batch = 4
	}
	if s.MemMB == 0 {
		s.MemMB = 1
	}
}

// DeviceChurn is one device's slice of a churn run — and, accumulated
// across runs, the per-device block /v1/oper/stats serves. Latency is
// simulated control-path milliseconds; commodity models carry no
// control-path cost model, so their SimMS (and launches/sec) stay zero.
type DeviceChurn struct {
	Device     string  `json:"device"`
	Launches   uint64  `json:"launches"`
	Fails      uint64  `json:"fails,omitempty"`
	Attests    uint64  `json:"attests"`
	Teardowns  uint64  `json:"teardowns"`
	PoolHits   uint64  `json:"pool_hits,omitempty"`
	PoolMisses uint64  `json:"pool_misses,omitempty"`
	SimMS      float64 `json:"sim_ms"`
	PerSec     float64 `json:"launches_per_sec"`
}

// add folds one run's slice into a cumulative accumulator, recomputing
// the throughput from the folded totals.
func (d *DeviceChurn) add(r DeviceChurn) {
	d.Launches += r.Launches
	d.Fails += r.Fails
	d.Attests += r.Attests
	d.Teardowns += r.Teardowns
	d.PoolHits += r.PoolHits
	d.PoolMisses += r.PoolMisses
	d.SimMS += r.SimMS
	d.PerSec = perSec(d.Launches, d.SimMS)
}

func perSec(launches uint64, simMS float64) float64 {
	if simMS <= 0 {
		return 0
	}
	return float64(launches) / (simMS / 1e3)
}

// ChurnResult summarizes one churn run across the fleet.
type ChurnResult struct {
	Churn     uint64        `json:"churn"`
	Devices   []DeviceChurn `json:"devices"`
	Launches  uint64        `json:"launches"`
	Fails     uint64        `json:"fails,omitempty"`
	Attests   uint64        `json:"attests"`
	Teardowns uint64        `json:"teardowns"`
	Cycles    uint64        `json:"cycles"` // clock advance: the slowest device
	Clock     uint64        `json:"clock"`  // fleet clock after the run
}

// Churn drives one churn run on every active device. Like Burst, the
// run fans out one engine job per device through fanOutLocked: each
// device cycles its own ephemeral functions from its own derived
// stream, so the result — and every golden downstream of it — is
// byte-identical at any worker count.
func (m *Manager) Churn(spec ChurnSpec) (ChurnResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	spec.defaults()

	round := m.churns
	m.churns++

	names := make([]string, 0, len(m.devices))
	for n, d := range m.devices {
		if d.state == stateActive {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	start := m.clock
	jobs := make([]engine.Job[DeviceChurn], len(names))
	for i, n := range names {
		md := m.devices[n]
		jobs[i] = engine.Job[DeviceChurn]{
			Experiment: "fleet/churn",
			Key:        fmt.Sprintf("%03d/%s", round, n),
			Run: func(rng *sim.Rand) (DeviceChurn, error) {
				return m.churnDevice(md, spec, round, start, rng)
			},
		}
	}
	results, err := fanOutLocked(m, jobs)
	if err != nil {
		return ChurnResult{}, err
	}

	out := ChurnResult{Churn: round, Devices: results}
	for i, r := range results {
		md := m.devices[names[i]]
		md.churn.Device = md.name
		md.churn.add(r)
		out.Launches += r.Launches
		out.Fails += r.Fails
		out.Attests += r.Attests
		out.Teardowns += r.Teardowns
		if c := obs.MSToCycles(r.SimMS); c > out.Cycles {
			out.Cycles = c
		}
	}
	m.clock += out.Cycles
	m.stats.ChurnRuns++
	m.stats.ChurnLaunches += out.Launches
	m.stats.ChurnFails += out.Fails
	m.stats.ChurnAttests += out.Attests
	m.stats.ChurnTeardowns += out.Teardowns
	m.event(fmt.Sprintf("churn %03d", round))
	out.Clock = m.clock
	return out, nil
}

// churnDevice runs one device's churn loop: launch ephemeral functions
// toward the steady-state target, attest them (individually, or in
// Merkle batches on the fast path), tear down rng-chosen victims at the
// target, and drain everything before returning. md is owned
// exclusively by this job (see fanOutLocked).
func (m *Manager) churnDevice(md *managedDevice, spec ChurnSpec, round, start uint64, rng *sim.Rand) (DeviceChurn, error) {
	out := DeviceChurn{Device: md.name}

	sn, isSNIC := md.nic.(*device.SNIC)
	var poolH0, poolM0 uint64
	if isSNIC {
		if spec.FastPath {
			prev := sn.Underlying().FastPathConfig()
			sn.EnableFastPaths(snic.FastPaths{WarmPool: true, ParallelScrub: true})
			// Restoring the prior configuration drains any parked frames
			// back to the free list, so later placements see the same
			// allocator the scheduler's capacity vector promises.
			defer sn.Underlying().SetFastPaths(prev)
		}
		poolH0, poolM0 = sn.Underlying().PoolStats()
	}
	batch := 1
	if isSNIC && spec.FastPath {
		batch = spec.Batch
	}

	target := spec.Target
	if free := md.nic.FreeCores(); target > free {
		target = free
	}

	var live, pending []device.FuncID
	nonce := []byte("fleet-churn")

	attestBatch := func() error {
		if len(pending) == 0 {
			return nil
		}
		if isSNIC {
			if batch > 1 {
				_, _, _, ms, err := sn.Underlying().AttestNFBatch(pending, nonce)
				if err != nil {
					return err
				}
				out.SimMS += ms
			} else {
				for _, id := range pending {
					_, _, ms, err := sn.Underlying().AttestNF(id, nonce)
					if err != nil {
						return err
					}
					out.SimMS += ms
				}
			}
			out.Attests += uint64(len(pending))
		} else {
			// Commodity models without attestation fall through with zero
			// attests; a model that grows the capability counts.
			for _, id := range pending {
				if _, err := md.nic.Attest(id, nonce); err == nil {
					out.Attests++
				}
			}
		}
		pending = pending[:0]
		return nil
	}

	doLaunch := func(seq int) bool {
		fspec := device.FuncSpec{
			Name:     fmt.Sprintf("churn-%03d-%04d", round, seq),
			MemBytes: spec.MemMB << 20,
		}
		var id device.FuncID
		var err error
		if isSNIC {
			var rep snic.LaunchReport
			id, rep, err = sn.LaunchTimed(fspec)
			if err == nil {
				out.SimMS += rep.TotalMS()
			}
		} else {
			id, err = md.nic.Launch(fspec)
		}
		if err != nil {
			// A refused launch is a model finding, not a harness error:
			// bump-only secure allocators exhaust under sustained churn.
			out.Fails++
			return false
		}
		live = append(live, id)
		pending = append(pending, id)
		out.Launches++
		return true
	}

	doTeardown := func(k int) error {
		id := live[k]
		live = append(live[:k], live[k+1:]...)
		for i, p := range pending {
			if p == id {
				pending = append(pending[:i], pending[i+1:]...)
				break
			}
		}
		if isSNIC {
			rep, err := sn.TeardownTimed(id)
			if err != nil {
				return err
			}
			out.SimMS += rep.TotalMS()
		} else if err := md.nic.Teardown(id); err != nil {
			return err
		}
		out.Teardowns++
		return nil
	}

	for ev, seq := 0, 0; target > 0 && ev < spec.Events; ev++ {
		if len(live) < target {
			ok := doLaunch(seq)
			seq++
			switch {
			case ok:
				if len(pending) >= batch {
					if err := attestBatch(); err != nil {
						return out, err
					}
				}
			case len(live) > 0:
				// Recycle a victim so a refusing device keeps exercising
				// the teardown path instead of stalling the loop.
				if err := doTeardown(rng.Intn(len(live))); err != nil {
					return out, err
				}
			}
		} else {
			if err := doTeardown(rng.Intn(len(live))); err != nil {
				return out, err
			}
		}
	}
	// Drain: quote the stragglers, then tear everything down so the
	// device leaves the run exactly as it entered (placements intact).
	if err := attestBatch(); err != nil {
		return out, err
	}
	for len(live) > 0 {
		if err := doTeardown(len(live) - 1); err != nil {
			return out, err
		}
	}

	if isSNIC {
		h, ms := sn.Underlying().PoolStats()
		out.PoolHits = h - poolH0
		out.PoolMisses = ms - poolM0
	}
	out.PerSec = perSec(out.Launches, out.SimMS)

	lbl := func(name string) obs.Label {
		return obs.Label{Device: "fleet/" + md.name, Owner: "-", Component: "churn", Name: name}
	}
	m.cfg.Obs.Counter(lbl("launches")).Add(out.Launches)
	m.cfg.Obs.Counter(lbl("attests")).Add(out.Attests)
	m.cfg.Obs.Counter(lbl("teardowns")).Add(out.Teardowns)
	m.cfg.Obs.Tracer("fleet/"+md.name+"/churn").Span(
		"churn", fmt.Sprintf("churn %03d", round), start, obs.MSToCycles(out.SimMS))
	return out, nil
}

// StatsView is what /v1/oper/stats serves: the cumulative scheduler
// counters plus, once a churn run has happened, the per-device churn
// accounting with launches/sec. The churn block is omitted while empty
// so pre-churn stats dumps are byte-identical to the plain Stats form.
type StatsView struct {
	Stats
	Churn []DeviceChurn `json:"churn,omitempty"`
}

// StatsView returns the cumulative counters plus per-device churn
// throughput.
func (m *Manager) StatsView() StatsView {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := StatsView{Stats: m.stats}
	for _, name := range m.sortedDeviceNames() {
		md := m.devices[name]
		if md.churn.Launches+md.churn.Fails == 0 {
			continue
		}
		v.Churn = append(v.Churn, md.churn)
	}
	return v
}
