package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

// Scenario is one numbered end-to-end script: an ordered list of
// northbound API calls driven against a live snicd. The scenario suite
// in internal/fleet/scenarios pins each scenario's transcript,
// oper-state dump, metric dump, and trace as goldens.
type Scenario struct {
	// Name is the scenario's directory name, e.g. "01-smoke".
	Name string `json:"name"`
	// Seed is the fleet's base seed; every golden depends on it.
	Seed uint64 `json:"seed"`
	// Policy selects the placement strategy (empty: bestfit).
	Policy string `json:"policy,omitempty"`
	// Steps are executed in order; any unexpected status aborts the run.
	Steps []Step `json:"steps"`
}

// Step is one API call of a scenario.
type Step struct {
	// Method and Path address the northbound route.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Body is sent verbatim as the request body (empty: no body).
	Body json.RawMessage `json:"body,omitempty"`
	// Want is the expected status code (0 means 200).
	Want int `json:"want,omitempty"`
	// Record includes the response body in the transcript — used for
	// burst results and error envelopes worth pinning.
	Record bool `json:"record,omitempty"`
}

// LoadScenario reads and validates a scenario script.
func LoadScenario(path string) (*Scenario, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("fleet: scenario %s: %w", path, err)
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("fleet: scenario %s: missing name", path)
	}
	if len(sc.Steps) == 0 {
		return nil, fmt.Errorf("fleet: scenario %s: no steps", path)
	}
	for i := range sc.Steps {
		st := &sc.Steps[i]
		if st.Method == "" || !strings.HasPrefix(st.Path, "/") {
			return nil, fmt.Errorf("fleet: scenario %s: step %d needs method and /path", path, i+1)
		}
		if st.Want == 0 {
			st.Want = http.StatusOK
		}
	}
	return &sc, nil
}

// Snapshot is everything a scenario run pins: the per-step transcript
// plus the server's final oper-state, metric, and trace exports, all
// fetched through the same live HTTP API the steps used.
type Snapshot struct {
	Transcript string // step-by-step text log
	Oper       string // /v1/oper JSON
	Metrics    string // /v1/metrics text
	Trace      string // /v1/trace text
}

// RunScenario drives sc against the server at baseURL and collects the
// final snapshot. The run is strict: a step whose status differs from
// Want fails immediately with the offending response in the error.
func RunScenario(client *http.Client, baseURL string, sc *Scenario) (*Snapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var tr strings.Builder
	fmt.Fprintf(&tr, "# snic-scenario %s seed=%d policy=%s\n", sc.Name, sc.Seed, sc.Policy)
	for i, st := range sc.Steps {
		status, body, err := call(client, st.Method, baseURL+st.Path, st.Body)
		if err != nil {
			return nil, fmt.Errorf("fleet: scenario %s step %d: %w", sc.Name, i+1, err)
		}
		if status != st.Want {
			return nil, fmt.Errorf("fleet: scenario %s step %d: %s %s = %d, want %d\n%s",
				sc.Name, i+1, st.Method, st.Path, status, st.Want, body)
		}
		fmt.Fprintf(&tr, "step %02d %-6s %-34s -> %d\n", i+1, st.Method, st.Path, status)
		if st.Record {
			for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
				fmt.Fprintf(&tr, "    %s\n", line)
			}
		}
	}
	snap := &Snapshot{Transcript: tr.String()}
	for _, ex := range []struct {
		path string
		dst  *string
	}{
		{"/v1/oper", &snap.Oper},
		{"/v1/metrics", &snap.Metrics},
		{"/v1/trace", &snap.Trace},
	} {
		status, body, err := call(client, http.MethodGet, baseURL+ex.path, nil)
		if err != nil {
			return nil, fmt.Errorf("fleet: scenario %s export %s: %w", sc.Name, ex.path, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("fleet: scenario %s export %s = %d", sc.Name, ex.path, status)
		}
		*ex.dst = string(body)
	}
	return snap, nil
}

// call issues one HTTP request and returns status and body.
func call(client *http.Client, method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf, nil
}
