package fleet

import (
	"fmt"
	"sort"
	"sync"

	"snic/internal/device"
	"snic/internal/obs"
	"snic/internal/pktio"
)

// deviceState is the lifecycle of a managed device.
type deviceState string

const (
	// stateActive accepts placements and serves traffic.
	stateActive deviceState = "active"
	// stateDraining holds no new placements; existing NFs have already
	// been migrated away (drain is all-or-nothing).
	stateDraining deviceState = "draining"
	// stateFailed devices are dead: their NFs were re-placed on
	// survivors where capacity allowed.
	stateFailed deviceState = "failed"
)

// managedDevice is one fleet member: the NIC instance plus the
// scheduler's capacity accounting and placement table.
type managedDevice struct {
	name     string
	spec     DeviceSpec
	nic      device.NIC
	state    deviceState
	capacity device.Resources
	used     device.Resources
	placed   map[string]*Placement // key: tenant "/" nf
	churn    DeviceChurn           // cumulative churn accounting (see churn.go)
}

func (d *managedDevice) free() device.Resources { return d.capacity.Sub(d.used) }

// sortedPlacementKeys returns the device's placement keys sorted, the
// only iteration order the manager ever exposes.
func (d *managedDevice) sortedPlacementKeys() []string {
	keys := make([]string, 0, len(d.placed))
	for k := range d.placed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Placement is one NF instance bound to one device.
type Placement struct {
	Tenant string
	NF     string
	Device string
	Func   device.FuncID
	Port   uint16
	Spec   NFSpec
	Demand device.Resources // as computed for the hosting device
}

func (p *Placement) key() string { return p.Tenant + "/" + p.NF }

// tenant is one admitted principal.
type tenant struct {
	name   string
	quota  ResourceSpec
	used   device.Resources
	placed map[string]*Placement // key: nf name
}

// Stats are the manager's cumulative scheduling counters. They are
// plain fields (not obs reads): the oper-state dump must never depend
// on a metric value.
type Stats struct {
	Admitted     uint64 `json:"admitted"`
	Evicted      uint64 `json:"evicted"`
	Placed       uint64 `json:"placed"`
	Removed      uint64 `json:"removed"`
	Rejected     uint64 `json:"rejected"`
	Migrations   uint64 `json:"migrations"`
	Drains       uint64 `json:"drains"`
	Failovers    uint64 `json:"failovers"`
	LostNFs      uint64 `json:"lost_nfs"`
	Bursts       uint64 `json:"bursts"`
	Packets      uint64 `json:"packets"`
	Drops        uint64 `json:"drops"`
	PacketBytes  uint64 `json:"packet_bytes"`
	AccelOps     uint64 `json:"accel_ops"`
	BusOps       uint64 `json:"bus_ops"`
	MemRoundtrip uint64 `json:"mem_roundtrips"`

	// Churn counters carry omitempty so every golden pinned before the
	// churn op existed stays byte-identical until a churn run happens.
	ChurnRuns      uint64 `json:"churn_runs,omitempty"`
	ChurnLaunches  uint64 `json:"churn_launches,omitempty"`
	ChurnFails     uint64 `json:"churn_fails,omitempty"`
	ChurnAttests   uint64 `json:"churn_attests,omitempty"`
	ChurnTeardowns uint64 `json:"churn_teardowns,omitempty"`
}

// Config parameterizes a Manager.
type Config struct {
	// Seed is the base of every derived stream in this fleet.
	Seed uint64
	// Policy selects the placement strategy: "bestfit" (default),
	// "firstfit", or "spread".
	Policy string
	// Workers bounds the engine pool traffic bursts fan out on; <= 0
	// selects GOMAXPROCS. Results are byte-identical for any value.
	Workers int
	// Obs, if set, collects the fleet's simulated-time metrics and
	// traces. Devices with native instrumentation (S-NIC) attach to the
	// same collector under their fleet name.
	Obs *obs.Registry
	// Progress, if set, receives live burst telemetry (jobs per burst)
	// served at the API's /v1/progress. Quarantined like obs.Wall:
	// write-only from the fleet, read only northbound.
	Progress *obs.Progress
}

// Manager is the fleet control plane. All exported methods are
// safe for concurrent use (the northbound API serializes through one
// mutex); determinism comes from the serialized event order, never from
// scheduling.
type Manager struct {
	mu       sync.Mutex
	cfg      Config
	strategy strategy
	clock    uint64
	devices  map[string]*managedDevice
	tenants  map[string]*tenant
	nextPort uint16
	bursts   uint64
	churns   uint64
	stats    Stats

	// obs write handles (nil-safe when no collector is attached).
	ctrAdmitted  *obs.Counter
	ctrEvicted   *obs.Counter
	ctrPlaced    *obs.Counter
	ctrRemoved   *obs.Counter
	ctrRejected  *obs.Counter
	ctrMigrated  *obs.Counter
	ctrLost      *obs.Counter
	ctrDrains    *obs.Counter
	ctrFailovers *obs.Counter
}

// NewManager builds an empty fleet.
func NewManager(cfg Config) (*Manager, error) {
	st, err := strategyFor(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = st.name()
	}
	m := &Manager{
		cfg:      cfg,
		strategy: st,
		devices:  make(map[string]*managedDevice),
		tenants:  make(map[string]*tenant),
		nextPort: 10000,
	}
	ctr := func(name string) *obs.Counter {
		return cfg.Obs.Counter(obs.Label{Device: "fleet", Component: "ctrl", Name: name})
	}
	m.ctrAdmitted = ctr("tenants_admitted")
	m.ctrEvicted = ctr("tenants_evicted")
	m.ctrPlaced = ctr("nfs_placed")
	m.ctrRemoved = ctr("nfs_removed")
	m.ctrRejected = ctr("placements_rejected")
	m.ctrMigrated = ctr("nfs_migrated")
	m.ctrLost = ctr("nfs_lost")
	m.ctrDrains = ctr("device_drains")
	m.ctrFailovers = ctr("device_failovers")
	return m, nil
}

// Seed returns the fleet's base seed.
func (m *Manager) Seed() uint64 { return m.cfg.Seed }

// Policy returns the active placement strategy name.
func (m *Manager) Policy() string { return m.cfg.Policy }

// Clock returns the current simulated cycle.
func (m *Manager) Clock() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// Advance moves the fleet clock forward by cycles.
func (m *Manager) Advance(cycles uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock += cycles
	return m.clock
}

// AddDevice builds the spec through the device factory and registers it
// under spec.Name. The device's serial is its fleet name, so natively
// instrumented models (S-NIC) label their metrics and trace tracks per
// fleet member.
func (m *Manager) AddDevice(spec DeviceSpec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if spec.Name == "" || spec.Model == "" {
		return fmt.Errorf("fleet: device needs name and model")
	}
	if _, dup := m.devices[spec.Name]; dup {
		return fmt.Errorf("%w: device %q", ErrExists, spec.Name)
	}
	nic, err := device.New(device.Spec{
		Model:    spec.Model,
		Cores:    spec.Cores,
		MemBytes: spec.MemMB << 20,
		Serial:   spec.Name,
	})
	if err != nil {
		return err
	}
	if sn, ok := nic.(*device.SNIC); ok && m.cfg.Obs != nil {
		sn.Underlying().Observe(m.cfg.Obs, "fleet/"+spec.Name)
	}
	md := &managedDevice{
		name:     spec.Name,
		spec:     spec,
		nic:      nic,
		state:    stateActive,
		capacity: nic.Resources(),
		placed:   make(map[string]*Placement),
	}
	m.devices[spec.Name] = md
	m.gauges(md)
	return nil
}

// gauges refreshes the per-device scheduler gauges after any accounting
// change (writes only; nil-safe without a collector).
func (m *Manager) gauges(d *managedDevice) {
	g := func(name string, v int64) {
		m.cfg.Obs.Gauge(obs.Label{
			Device: "fleet/" + d.name, Component: "sched", Name: name,
		}).Set(v)
	}
	free := d.free()
	g("live_nfs", int64(len(d.placed)))
	g("free_cores", int64(free.Cores))
	g("free_mem_bytes", int64(free.MemBytes))
	g("free_tlb_entries", int64(free.TLBEntries))
	g("free_cache_ways", int64(free.CacheWays))
	g("free_accel_clusters", int64(free.AccelClusters))
}

// event traces one control-plane action on the fleet track.
func (m *Manager) event(name string) {
	m.cfg.Obs.Tracer("fleet").Event("ctrl", name, m.clock)
}

// Admit registers a tenant under a quota (zero axes are unlimited).
func (m *Manager) Admit(name string, quota ResourceSpec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == "" {
		return fmt.Errorf("fleet: tenant needs a name")
	}
	if _, dup := m.tenants[name]; dup {
		return fmt.Errorf("%w: tenant %q", ErrExists, name)
	}
	m.tenants[name] = &tenant{
		name:   name,
		quota:  quota,
		placed: make(map[string]*Placement),
	}
	m.stats.Admitted++
	m.ctrAdmitted.Inc()
	m.event("admit " + name)
	return nil
}

// Evict tears down every placement of the tenant and removes it.
func (m *Manager) Evict(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tn, ok := m.tenants[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	nfs := make([]string, 0, len(tn.placed))
	for nf := range tn.placed {
		nfs = append(nfs, nf)
	}
	sort.Strings(nfs)
	for _, nf := range nfs {
		if err := m.removeLocked(tn, nf); err != nil {
			return err
		}
	}
	delete(m.tenants, name)
	m.stats.Evicted++
	m.ctrEvicted.Inc()
	m.event("evict " + name)
	return nil
}

// Place admits one NF instance for the tenant and binds it to the
// device the strategy picks. Placement is atomic: on any launch error
// nothing is accounted.
func (m *Manager) Place(tenantName string, spec NFSpec) (*Placement, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tn, ok := m.tenants[tenantName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTenant, tenantName)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("fleet: NF needs a name")
	}
	if _, dup := tn.placed[spec.Name]; dup {
		m.reject()
		return nil, fmt.Errorf("%w: NF %q of tenant %q", ErrExists, spec.Name, tenantName)
	}
	spec.defaults()
	if spec.Port == 0 {
		spec.Port = m.nextPort
		m.nextPort++
	}
	pl, err := m.placeLocked(tn, spec, true)
	if err != nil {
		m.reject()
		return nil, err
	}
	m.stats.Placed++
	m.ctrPlaced.Inc()
	m.event("place " + pl.key() + " on " + pl.Device)
	return pl, nil
}

func (m *Manager) reject() {
	m.stats.Rejected++
	m.ctrRejected.Inc()
}

// placeLocked runs quota check, strategy pick, and launch. Callers hold
// the lock and have defaulted the spec. checkQuota is false for
// migrations: the NF already counts against its tenant, so relocating
// it must not fail the quota.
//
// A device can refuse a launch for modeled reasons outside the vector —
// switch-port buffer reservations, or a commodity allocator that never
// reclaims — so a launch failure marks that device full for this
// attempt and the strategy re-picks among the rest. Placement fails
// with ErrNoCapacity only when every candidate has refused.
func (m *Manager) placeLocked(tn *tenant, spec NFSpec, checkQuota bool) (*Placement, error) {
	excluded := make(map[string]bool)
	var lastLaunch error
	for {
		cands := m.candidates()
		if len(excluded) > 0 {
			kept := cands[:0]
			for _, c := range cands {
				if !excluded[c.name] {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		devName, demand, err := m.strategy.pick(cands, spec)
		if err != nil {
			if lastLaunch != nil {
				return nil, fmt.Errorf("%w: %s (last device refusal: %v)",
					ErrNoCapacity, spec.Name, lastLaunch)
			}
			return nil, err
		}
		// The demand vector depends on the picked device's frame size,
		// so the quota check sits after the pick.
		if checkQuota && !tn.quota.allows(tn.used, demand) {
			return nil, fmt.Errorf("%w: tenant %q placing %q", ErrQuota, tn.name, spec.Name)
		}
		md := m.devices[devName]
		id, err := md.nic.Launch(device.FuncSpec{
			Name:     tn.name + "/" + spec.Name,
			MemBytes: spec.MemMB << 20,
			Rules: []pktio.MatchSpec{{
				Proto: 17, DstPortLo: spec.Port, DstPortHi: spec.Port, // UDP
			}},
		})
		if err != nil {
			excluded[devName] = true
			lastLaunch = err
			continue
		}
		pl := &Placement{
			Tenant: tn.name,
			NF:     spec.Name,
			Device: devName,
			Func:   id,
			Port:   spec.Port,
			Spec:   spec,
			Demand: demand,
		}
		md.used = md.used.Add(demand)
		md.placed[pl.key()] = pl
		tn.used = tn.used.Add(demand)
		tn.placed[spec.Name] = pl
		m.gauges(md)
		return pl, nil
	}
}

// candidates returns the active devices in sorted-name order.
func (m *Manager) candidates() []*managedDevice {
	names := make([]string, 0, len(m.devices))
	for n, d := range m.devices {
		if d.state == stateActive {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]*managedDevice, len(names))
	for i, n := range names {
		out[i] = m.devices[n]
	}
	return out
}

// Remove tears down one NF placement.
func (m *Manager) Remove(tenantName, nfName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tn, ok := m.tenants[tenantName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTenant, tenantName)
	}
	return m.removeLocked(tn, nfName)
}

func (m *Manager) removeLocked(tn *tenant, nfName string) error {
	pl, ok := tn.placed[nfName]
	if !ok {
		return fmt.Errorf("%w: %q of tenant %q", ErrNoNF, nfName, tn.name)
	}
	md := m.devices[pl.Device]
	if md.state != stateFailed {
		if err := md.nic.Teardown(pl.Func); err != nil {
			return fmt.Errorf("fleet: teardown %s on %s: %w", pl.key(), md.name, err)
		}
	}
	md.used = md.used.Sub(pl.Demand)
	delete(md.placed, pl.key())
	tn.used = tn.used.Sub(pl.Demand)
	delete(tn.placed, nfName)
	m.stats.Removed++
	m.ctrRemoved.Inc()
	m.event("remove " + pl.key())
	m.gauges(md)
	return nil
}

// Drain migrates every NF off the device, then marks it draining.
// The drain is all-or-nothing: migrations are planned against a copy of
// the remaining-capacity accounting first, and if any NF has no home
// the drain fails with ErrNoCapacity, leaving the fleet untouched —
// a drain never loses an NF.
func (m *Manager) Drain(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	md, ok := m.devices[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDevice, name)
	}
	if md.state != stateActive {
		return fmt.Errorf("%w: %s is %s", ErrDeviceState, name, md.state)
	}
	md.state = stateDraining // excluded from its own migration targets
	if err := m.planAndMove(md, true); err != nil {
		md.state = stateActive
		return err
	}
	m.stats.Drains++
	m.ctrDrains.Inc()
	m.event("drain " + name)
	m.gauges(md)
	return nil
}

// Undrain returns a drained device to service.
func (m *Manager) Undrain(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	md, ok := m.devices[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDevice, name)
	}
	if md.state != stateDraining {
		return fmt.Errorf("%w: %s is %s", ErrDeviceState, name, md.state)
	}
	md.state = stateActive
	m.event("undrain " + name)
	return nil
}

// Fail marks the device dead and re-places its NFs on the survivors
// (HA failover). Unlike Drain, failover is not atomic — the device is
// already gone — so NFs that fit nowhere are lost and counted.
func (m *Manager) Fail(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	md, ok := m.devices[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDevice, name)
	}
	if md.state == stateFailed {
		return fmt.Errorf("%w: %s is already failed", ErrDeviceState, name)
	}
	md.state = stateFailed
	if err := m.planAndMove(md, false); err != nil {
		return err
	}
	m.stats.Failovers++
	m.ctrFailovers.Inc()
	m.event("fail " + name)
	m.gauges(md)
	return nil
}

// planAndMove relocates every placement of md onto other active
// devices.
//
// Drain (atomic): the whole move is first planned against a scratch
// copy of the free-capacity table; if any NF has no home by the vector
// model the drain aborts untouched with ErrNoCapacity. Execution is
// make-before-break — the replacement launches on a survivor before the
// source instance is torn down — so even if a device refuses a planned
// launch for sub-vector reasons (port buffers, allocator exhaustion),
// the NF stays live on the draining source and the drain reports
// ErrNoCapacity. A drain never loses an NF.
//
// Failover (!atomic): the source device is dead, so there is nothing to
// tear down and nothing to keep serving; each NF is re-placed
// best-effort and the homeless are lost and counted.
func (m *Manager) planAndMove(md *managedDevice, atomic bool) error {
	keys := md.sortedPlacementKeys()
	if atomic {
		scratch := make(map[string]device.Resources)
		for _, c := range m.candidates() {
			scratch[c.name] = c.free()
		}
		for _, k := range keys {
			pl := md.placed[k]
			target, demand, err := m.strategy.pickScratch(m.candidates(), scratch, pl.Spec)
			if err != nil {
				return fmt.Errorf("%w: draining %s, %s has no home", ErrNoCapacity, md.name, pl.key())
			}
			scratch[target] = scratch[target].Sub(demand)
		}
	}
	var firstErr error
	for _, k := range keys {
		pl := md.placed[k]
		tn := m.tenants[pl.Tenant]
		if atomic {
			// Make before break. placeLocked overwrites tn.placed[NF]
			// with the new home; the old instance's accounting is
			// released only after the new one is live.
			moved, err := m.placeLocked(tn, pl.Spec, false)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: draining %s, %s has no home (%v)",
						ErrNoCapacity, md.name, pl.key(), err)
				}
				continue
			}
			if terr := md.nic.Teardown(pl.Func); terr != nil {
				return fmt.Errorf("fleet: drain teardown %s: %w", pl.key(), terr)
			}
			md.used = md.used.Sub(pl.Demand)
			delete(md.placed, k)
			tn.used = tn.used.Sub(pl.Demand)
			m.stats.Migrations++
			m.ctrMigrated.Inc()
			m.event("migrate " + pl.key() + " " + md.name + ">" + moved.Device)
			continue
		}
		// Failover: release the dead instance, then re-place.
		md.used = md.used.Sub(pl.Demand)
		delete(md.placed, k)
		tn.used = tn.used.Sub(pl.Demand)
		delete(tn.placed, pl.NF)
		moved, err := m.placeLocked(tn, pl.Spec, false)
		if err != nil {
			m.stats.LostNFs++
			m.ctrLost.Inc()
			m.event("lost " + pl.key())
			continue
		}
		m.stats.Migrations++
		m.ctrMigrated.Inc()
		m.event("migrate " + pl.key() + " " + md.name + ">" + moved.Device)
	}
	m.gauges(md)
	return firstErr
}

// Stats returns a copy of the cumulative scheduler counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
