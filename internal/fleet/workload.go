package fleet

import (
	"fmt"
	"sort"

	"snic/internal/engine"
	"snic/internal/obs"
	"snic/internal/sim"
	"snic/internal/trace"
)

// pktCycles is the modeled per-frame ingress cost a burst charges the
// device clock, on top of the bus and accelerator delays the device
// models itself.
const pktCycles = 12

// BurstResult summarizes one traffic burst across the fleet. Every
// field is a pure function of (seed, event history) — byte-identical at
// any worker count.
type BurstResult struct {
	Burst         uint64 `json:"burst"`
	Devices       int    `json:"devices"`
	Placements    int    `json:"placements"`
	Packets       uint64 `json:"packets"`
	Drops         uint64 `json:"drops"`
	PacketBytes   uint64 `json:"packet_bytes"`
	AccelOps      uint64 `json:"accel_ops"`
	BusOps        uint64 `json:"bus_ops"`
	MemRoundtrips uint64 `json:"mem_roundtrips"`
	Cycles        uint64 `json:"cycles"` // clock advance: the slowest device
	Clock         uint64 `json:"clock"`  // fleet clock after the burst
}

// fanOutLocked is the manager's single seam onto the engine pool: every
// op that parallelizes across devices (traffic bursts, churn runs)
// funnels through this call while holding m.mu.
//
// Holding mu across the fan-out is the determinism contract, not an
// oversight: the lock is what gives each engine job exclusive ownership
// of its devices for the whole op, and the jobs never re-enter the
// manager. Serializing fan-outs against control-plane mutations is
// exactly the semantics the scenario goldens pin.
func fanOutLocked[T any](m *Manager, jobs []engine.Job[T]) ([]T, error) {
	//lint:allow lock-discipline fan-out jobs own their devices exclusively under mu and never re-enter the manager; serialization is the determinism contract
	results, _, err := engine.Run(engine.Config{
		Workers:  m.cfg.Workers,
		Seed:     m.cfg.Seed,
		Progress: m.cfg.Progress,
	}, jobs)
	return results, err
}

// deviceBurst is one engine job's result: the burst as seen by a single
// device.
type deviceBurst struct {
	packets, drops, bytes    uint64
	accelOps, busOps, roundt uint64
	cycles                   uint64
}

func (a deviceBurst) add(b deviceBurst) deviceBurst {
	a.packets += b.packets
	a.drops += b.drops
	a.bytes += b.bytes
	a.accelOps += b.accelOps
	a.busOps += b.busOps
	a.roundt += b.roundt
	if b.cycles > a.cycles {
		a.cycles = b.cycles
	}
	return a
}

// Burst drives one traffic burst through every live placement: each NF
// receives spec.Packets steered UDP frames (plus a few rng-chosen stray
// frames that match no rule and drop), performs a memory round-trip per
// retrieved frame, and issues spec.AccelOps accelerator and spec.BusOps
// interconnect operations.
//
// The burst fans out one engine job per device. Devices are independent
// instances, so jobs run concurrently without sharing mutable state;
// each job's randomness derives from (seed, "fleet/burst", burst/device)
// and results merge in sorted-device order, which keeps every counter,
// trace, and golden worker-count invariant. The fleet clock advances by
// the slowest device's burst time.
func (m *Manager) Burst(spec WorkloadSpec) (BurstResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	spec.defaults()

	burst := m.bursts
	m.bursts++

	names := make([]string, 0, len(m.devices))
	for n, d := range m.devices {
		if d.state == stateActive && len(d.placed) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	start := m.clock
	jobs := make([]engine.Job[deviceBurst], len(names))
	for i, n := range names {
		md := m.devices[n]
		jobs[i] = engine.Job[deviceBurst]{
			Experiment: "fleet/burst",
			Key:        fmt.Sprintf("%03d/%s", burst, n),
			Run: func(rng *sim.Rand) (deviceBurst, error) {
				return m.burstDevice(md, spec, burst, start, rng)
			},
		}
	}
	results, err := fanOutLocked(m, jobs)
	if err != nil {
		return BurstResult{}, err
	}

	var total deviceBurst
	placements := 0
	for i, r := range results {
		total = total.add(r)
		placements += len(m.devices[names[i]].placed)
	}
	m.clock += total.cycles
	m.stats.Bursts++
	m.stats.Packets += total.packets
	m.stats.Drops += total.drops
	m.stats.PacketBytes += total.bytes
	m.stats.AccelOps += total.accelOps
	m.stats.BusOps += total.busOps
	m.stats.MemRoundtrip += total.roundt
	m.event(fmt.Sprintf("burst %03d", burst))
	return BurstResult{
		Burst:         burst,
		Devices:       len(names),
		Placements:    placements,
		Packets:       total.packets,
		Drops:         total.drops,
		PacketBytes:   total.bytes,
		AccelOps:      total.accelOps,
		BusOps:        total.busOps,
		MemRoundtrips: total.roundt,
		Cycles:        total.cycles,
		Clock:         m.clock,
	}, nil
}

// burstDevice runs one device's share of a burst. It is the body of one
// engine job: md is owned exclusively by this job for the duration (the
// manager lock is held across the whole burst, and each device appears
// in exactly one job).
func (m *Manager) burstDevice(md *managedDevice, spec WorkloadSpec, burst, start uint64, rng *sim.Rand) (deviceBurst, error) {
	var out deviceBurst
	// One streaming synthesizer per device job: frames are drawn one at a
	// time over a reused payload buffer (Marshal copies it into the wire
	// frame, which VPP rings may retain), so burst size never shows up in
	// the job's memory footprint. The synth's draw order matches the
	// pre-streaming inline code, pinning the scenario goldens.
	synth := trace.NewFrameSynth(rng, spec.FrameBytes)
	for pi, key := range md.sortedPlacementKeys() {
		pl := md.placed[key]
		now := start
		var got uint64

		// Steered frames: unique five-tuples per (burst, placement),
		// rng-filled payloads, delivered through the device's real
		// classifier and retrieved from the NF's own receive ring.
		for p := 0; p < spec.Packets; p++ {
			pk := synth.Steered(0x0a800000|uint32(pi), pl.Port)
			frame := pk.Marshal()
			out.bytes += uint64(len(frame))
			if _, err := md.nic.Inject(frame); err != nil {
				out.drops++
				continue
			}
			now += pktCycles
		}
		// Stray frames: no placement matches UDP port 1, so these
		// exercise the drop path (and the drop counters in goldens).
		for s := synth.StrayCount(spec.Packets); s > 0; s-- {
			pk := synth.Stray()
			frame := pk.Marshal()
			out.bytes += uint64(len(frame))
			if _, err := md.nic.Inject(frame); err != nil {
				out.drops++
			}
		}

		// Drain the receive ring; one memory round-trip per frame
		// (write the frame back into the NF's reservation and read it
		// out, touching the device's real ownership checks).
		for {
			buf, err := md.nic.Retrieve(pl.Func)
			if err != nil {
				break
			}
			got++
			if werr := md.nic.Write(pl.Func, 0, buf); werr == nil {
				if rerr := md.nic.Read(pl.Func, 0, buf); rerr == nil {
					out.roundt++
				}
			}
		}
		out.packets += got

		for a := 0; a < spec.AccelOps; a++ {
			done, _ := md.nic.AcceleratorOp(pl.Func, now)
			now = done
			out.accelOps++
		}
		client := pi % md.nic.Cores()
		for b := 0; b < spec.BusOps; b++ {
			done, err := md.nic.BusOp(client, now)
			if err != nil {
				return out, fmt.Errorf("fleet: bus op on %s for %s: %w", md.name, pl.key(), err)
			}
			now = done
			out.busOps++
		}
		if d := now - start; d > out.cycles {
			out.cycles = d
		}

		lbl := func(name string) obs.Label {
			return obs.Label{
				Device: "fleet/" + md.name, Owner: pl.Tenant,
				Component: "wl", Name: name,
			}
		}
		m.cfg.Obs.Counter(lbl("packets")).Add(got)
		m.cfg.Obs.Counter(lbl("accel_ops")).Add(uint64(spec.AccelOps))
		m.cfg.Obs.Counter(lbl("bus_ops")).Add(uint64(spec.BusOps))
		m.cfg.Obs.Histogram(lbl("burst_cycles")).Observe(now - start)
	}
	m.cfg.Obs.Tracer("fleet/"+md.name+"/wl").Span(
		"wl", fmt.Sprintf("burst %03d", burst), start, out.cycles)
	return out, nil
}
