// Package bus models the smart NIC's internal IO bus and the arbitration
// disciplines compared in the paper:
//
//   - FIFO: the commodity baseline — first-come-first-served with no
//     trusted arbiter. A hostile client can saturate the bus (the Agilio
//     DoS attack of §3.3) and any client can sense others' load through
//     its own queueing delay (a timing side channel).
//   - RoundRobin: work-conserving fair sharing. Fixes starvation but still
//     leaks: a client's grant time depends on whether other domains are
//     requesting.
//   - Temporal: S-NIC's choice (§4.5) — time is divided into fixed epochs
//     owned by one security domain each, with a "dead time" tail in which
//     no new operation may issue so in-flight operations drain before the
//     epoch boundary. Grant times depend only on the requester's own
//     history, eliminating bus-contention side channels at the price of
//     idle slots (the <5% computational slowdown cited from Wang et al.).
//
// Arbiters are driven in simulated cycle time by the CPU/accelerator
// models: Request(domain, now, dur) returns the cycle at which the
// transaction may begin; it completes at start+dur.
package bus

import (
	"fmt"
	"strconv"

	"snic/internal/obs"
)

// Arbiter grants bus access.
type Arbiter interface {
	// Request asks for the bus on behalf of domain at cycle now for a
	// transaction lasting dur cycles. It returns the start cycle
	// (>= now). Implementations must be monotone in now per domain.
	Request(domain int, now uint64, dur uint64) uint64
	// Reset clears internal state (e.g. between warmup and measurement).
	Reset()
	// Name identifies the discipline for reports.
	Name() string
}

// Stats tracks per-domain bus usage.
type Stats struct {
	Transactions uint64
	BusyCycles   uint64
	WaitCycles   uint64
}

// Tracker wraps an Arbiter with per-domain statistics.
type Tracker struct {
	Arbiter
	stats []Stats
	// temporal caches the comma-ok downcast done once at construction, so
	// the dead-time accounting below can never panic on a non-Temporal
	// arbiter with observability attached. Arbiter must not be swapped
	// after NewTracker.
	temporal *Temporal
	// obs handles, indexed by domain; nil until Observe attaches a
	// collector. dead is populated only when the wrapped arbiter is
	// *Temporal (dead time is that discipline's defining cost).
	obsGrants, obsBusy, obsStall, obsDead []*obs.Counter
}

// NewTracker wraps arb, tracking domains many domains.
func NewTracker(arb Arbiter, domains int) *Tracker {
	t := &Tracker{Arbiter: arb, stats: make([]Stats, domains)}
	t.temporal, _ = arb.(*Temporal)
	return t
}

// Observe attaches per-domain grant/busy/stall counters to reg under
// the given device label (component "bus/<discipline>"). When the
// wrapped arbiter is *Temporal, a dead_time_cycles counter additionally
// charges each stall for the share spent inside dead-time tails. A nil
// reg leaves the tracker detached.
func (t *Tracker) Observe(reg *obs.Registry, device string) {
	if reg == nil {
		return
	}
	component := "bus/" + t.Arbiter.Name()
	n := len(t.stats)
	t.obsGrants = make([]*obs.Counter, n)
	t.obsBusy = make([]*obs.Counter, n)
	t.obsStall = make([]*obs.Counter, n)
	temporal := t.temporal != nil
	if temporal {
		t.obsDead = make([]*obs.Counter, n)
	}
	for d := 0; d < n; d++ {
		owner := "dom" + strconv.Itoa(d)
		t.obsGrants[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "grants"})
		t.obsBusy[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "busy_cycles"})
		t.obsStall[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "stall_cycles"})
		if temporal {
			t.obsDead[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "dead_time_cycles"})
		}
	}
}

// Request forwards to the wrapped arbiter and records wait/busy cycles.
func (t *Tracker) Request(domain int, now, dur uint64) uint64 {
	start := t.Arbiter.Request(domain, now, dur)
	s := &t.stats[domain]
	s.Transactions++
	s.BusyCycles += dur
	s.WaitCycles += start - now
	if t.obsGrants != nil {
		t.obsGrants[domain].Inc()
		t.obsBusy[domain].Add(dur)
		t.obsStall[domain].Add(start - now)
		if t.obsDead != nil {
			t.obsDead[domain].Add(t.temporal.DeadOverlap(now, start))
		}
	}
	return start
}

// Stats returns the accumulated statistics for domain.
func (t *Tracker) Stats(domain int) Stats { return t.stats[domain] }

// Reset clears arbiter state and statistics.
func (t *Tracker) Reset() {
	t.Arbiter.Reset()
	for i := range t.stats {
		t.stats[i] = Stats{}
	}
}

// ---------------------------------------------------------------------------

// FIFO is the unarbitrated baseline: one shared queue, no reservations.
type FIFO struct {
	nextFree uint64
}

// NewFIFO returns a FIFO arbiter.
func NewFIFO() *FIFO { return &FIFO{} }

// Request implements Arbiter.
func (f *FIFO) Request(_ int, now, dur uint64) uint64 {
	start := now
	if f.nextFree > start {
		start = f.nextFree
	}
	f.nextFree = start + dur
	return start
}

// Reset implements Arbiter.
func (f *FIFO) Reset() { f.nextFree = 0 }

// Name implements Arbiter.
func (f *FIFO) Name() string { return "fifo" }

// ---------------------------------------------------------------------------

// RoundRobin is budgeted fair sharing: bus time is divided into accounting
// windows, and within each window a domain may consume at most its 1/N
// share of cycles. Excess demand spills into later windows. This stops the
// §3.3 bus-DoS attack (no domain can starve the others), but unlike
// temporal partitioning it is still leaky: a domain's start offset within
// a window depends on how much the other domains have already used it.
type RoundRobin struct {
	domains int
	window  uint64
	wins    map[uint64]*winState
}

type winState struct {
	total uint64   // cycles committed in this window
	used  []uint64 // per-domain cycles committed
}

// NewRoundRobin returns a budgeted round-robin arbiter over n domains with
// the given accounting window (cycles).
func NewRoundRobin(n int, window uint64) *RoundRobin {
	if n <= 0 || window == 0 {
		panic("bus: bad round-robin config")
	}
	return &RoundRobin{domains: n, window: window, wins: make(map[uint64]*winState)}
}

func (r *RoundRobin) win(idx uint64) *winState {
	ws, ok := r.wins[idx]
	if !ok {
		ws = &winState{used: make([]uint64, r.domains)}
		r.wins[idx] = ws
	}
	return ws
}

// Request implements Arbiter.
func (r *RoundRobin) Request(domain int, now, dur uint64) uint64 {
	share := r.window / uint64(r.domains)
	if dur > share {
		panic(fmt.Sprintf("bus: transaction of %d cycles exceeds per-window share %d", dur, share))
	}
	for w := now / r.window; ; w++ {
		ws := r.win(w)
		if ws.used[domain]+dur > share {
			continue // this domain's budget here is spent
		}
		offset := ws.total
		if w == now/r.window && now%r.window > offset {
			// The bus was idle between the last commitment and now.
			offset = now % r.window
		}
		if offset+dur > r.window {
			continue // window is full
		}
		ws.total = offset + dur
		ws.used[domain] += dur
		return w*r.window + offset
	}
}

// Reset implements Arbiter.
func (r *RoundRobin) Reset() { r.wins = make(map[uint64]*winState) }

// Name implements Arbiter.
func (r *RoundRobin) Name() string { return "round-robin" }

// ---------------------------------------------------------------------------

// Temporal implements the temporal-partitioning arbiter of §4.5 (after
// Wang et al. [119]): fixed epochs assigned round-robin to domains; a
// domain may only issue in its own epoch, and only during the first
// (Epoch - DeadTime) cycles so every transaction drains before the next
// epoch begins.
type Temporal struct {
	domains  int
	epoch    uint64
	deadTime uint64
	// nextFree is tracked per domain: transactions never cross epochs and
	// epochs have a single owner, so the only serialization a domain ever
	// experiences is against its own earlier transactions. This is the
	// mechanism behind the non-interference guarantee.
	nextFree []uint64
}

// NewTemporal builds a temporal-partitioning arbiter. epoch is the slot
// length in cycles; deadTime is the no-new-issue tail. deadTime must be
// shorter than epoch and at least as long as the longest transaction the
// callers will issue (otherwise a transaction could cross its epoch
// boundary; Request panics if it would).
func NewTemporal(domains int, epoch, deadTime uint64) *Temporal {
	if domains <= 0 || epoch == 0 || deadTime >= epoch {
		panic(fmt.Sprintf("bus: bad temporal config domains=%d epoch=%d dead=%d",
			domains, epoch, deadTime))
	}
	return &Temporal{domains: domains, epoch: epoch, deadTime: deadTime,
		nextFree: make([]uint64, domains)}
}

// epochOwner returns the domain owning the epoch containing cycle t.
func (tp *Temporal) epochOwner(t uint64) int {
	return int((t / tp.epoch) % uint64(tp.domains))
}

// Request implements Arbiter.
func (tp *Temporal) Request(domain int, now, dur uint64) uint64 {
	if dur > tp.deadTime {
		panic(fmt.Sprintf("bus: transaction of %d cycles exceeds dead time %d", dur, tp.deadTime))
	}
	t := now
	if tp.nextFree[domain] > t {
		t = tp.nextFree[domain]
	}
	for {
		epochStart := (t / tp.epoch) * tp.epoch
		issueDeadline := epochStart + tp.epoch - tp.deadTime
		// New operations may only issue before the dead-time tail; since
		// dur <= deadTime, anything issued by then also completes inside
		// the epoch, which is the whole point of the dead time.
		if tp.epochOwner(t) == domain && t < issueDeadline {
			tp.nextFree[domain] = t + dur
			return t
		}
		// Jump to the start of this domain's next epoch.
		cur := t / tp.epoch
		owner := int(cur % uint64(tp.domains))
		delta := (uint64(domain) + uint64(tp.domains) - uint64(owner)) % uint64(tp.domains)
		if delta == 0 {
			delta = uint64(tp.domains)
		}
		t = (cur + delta) * tp.epoch
	}
}

// Reset implements Arbiter.
func (tp *Temporal) Reset() {
	for i := range tp.nextFree {
		tp.nextFree[i] = 0
	}
}

// Name implements Arbiter.
func (tp *Temporal) Name() string { return "temporal" }

// DeadOverlap returns how many cycles of the half-open interval
// [from, to) fall inside dead-time tails — the part of a stall that is
// the discipline's enforced idle rather than queueing behind work.
func (tp *Temporal) DeadOverlap(from, to uint64) uint64 {
	var total uint64
	for e := from / tp.epoch; ; e++ {
		tailStart := e*tp.epoch + tp.epoch - tp.deadTime
		if tailStart >= to {
			return total
		}
		lo, hi := tailStart, (e+1)*tp.epoch
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
}

// Epoch returns the epoch length in cycles.
func (tp *Temporal) Epoch() uint64 { return tp.epoch }

// DeadTime returns the no-issue tail length in cycles.
func (tp *Temporal) DeadTime() uint64 { return tp.deadTime }
