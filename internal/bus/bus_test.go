package bus

import (
	"testing"
	"testing/quick"
)

func TestFIFOSerializes(t *testing.T) {
	f := NewFIFO()
	if got := f.Request(0, 0, 10); got != 0 {
		t.Fatalf("first grant at %d", got)
	}
	if got := f.Request(1, 0, 10); got != 10 {
		t.Fatalf("second grant at %d", got)
	}
	if got := f.Request(0, 100, 10); got != 100 {
		t.Fatalf("idle grant at %d", got)
	}
}

func TestFIFOStarvation(t *testing.T) {
	// An attacker issuing back-to-back keeps the victim waiting ~forever:
	// this is the §3.3 Agilio DoS.
	f := NewFIFO()
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		start := f.Request(0, now, 10)
		now = start // attacker re-requests the moment it is granted
	}
	victimStart := f.Request(1, 5, 10)
	if victimStart < 9000 {
		t.Fatalf("victim granted too early (%d): FIFO should not protect it", victimStart)
	}
}

func TestRoundRobinBoundsAttacker(t *testing.T) {
	// Budgeted RR gives the victim service within ~one window even under
	// a saturating attacker.
	r := NewRoundRobin(2, 1000)
	now := uint64(0)
	for i := 0; i < 200; i++ {
		start := r.Request(0, now, 10)
		now = start + 10
	}
	victimStart := r.Request(1, 0, 10)
	if victimStart > 2000 {
		t.Fatalf("victim starved until %d despite budgets", victimStart)
	}
}

func TestRoundRobinWorkConservingWhenAlone(t *testing.T) {
	r := NewRoundRobin(4, 1000)
	// A lone domain under its budget gets back-to-back service.
	s1 := r.Request(0, 0, 10)
	s2 := r.Request(0, 10, 10)
	if s1 != 0 || s2 != 10 {
		t.Fatalf("grants at %d,%d", s1, s2)
	}
}

func TestTemporalOwnEpochImmediate(t *testing.T) {
	tp := NewTemporal(2, 100, 20)
	// Cycle 0 belongs to domain 0.
	if got := tp.Request(0, 0, 10); got != 0 {
		t.Fatalf("grant at %d", got)
	}
	// Domain 1 must wait for its epoch at cycle 100.
	if got := tp.Request(1, 0, 10); got != 100 {
		t.Fatalf("grant at %d", got)
	}
}

func TestTemporalDeadTime(t *testing.T) {
	tp := NewTemporal(2, 100, 20)
	// Issue deadline for epoch [0,100) is cycle 80; a request at 85 rolls
	// to domain 0's next epoch at 200.
	if got := tp.Request(0, 85, 10); got != 200 {
		t.Fatalf("grant at %d", got)
	}
}

func TestTemporalTransactionsFitEpoch(t *testing.T) {
	tp := NewTemporal(4, 100, 20)
	for now := uint64(0); now < 10000; now += 37 {
		for d := 0; d < 4; d++ {
			start := tp.Request(d, now, 15)
			epochStart := (start / 100) * 100
			if int((start/100)%4) != d {
				t.Fatalf("domain %d granted in foreign epoch at %d", d, start)
			}
			if start+15 > epochStart+100 {
				t.Fatalf("transaction crosses epoch boundary: start %d", start)
			}
		}
	}
}

func TestTemporalRejectsOversizedTransaction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized transaction accepted")
		}
	}()
	NewTemporal(2, 100, 20).Request(0, 0, 21)
}

func TestTemporalBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	NewTemporal(2, 100, 100)
}

// The central security property: under temporal partitioning, a domain's
// grant schedule is a pure function of its own request history, regardless
// of what other domains do.
func TestTemporalNonInterference(t *testing.T) {
	run := func(attacker bool) []uint64 {
		tp := NewTemporal(2, 100, 20)
		var grants []uint64
		now := uint64(0)
		for i := 0; i < 500; i++ {
			if attacker {
				// Domain 1 saturates its own epochs.
				an := uint64(0)
				for j := 0; j < 4; j++ {
					an = tp.Request(1, an, 19) + 19
				}
			}
			g := tp.Request(0, now, 10)
			grants = append(grants, g)
			now = g + 10
		}
		return grants
	}
	quiet := run(false)
	noisy := run(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("grant %d moved from %d to %d due to attacker", i, quiet[i], noisy[i])
		}
	}
}

// FIFO, by contrast, must leak: the victim's grants shift when the
// attacker is active. (This is the observable the §3.3 DoS and timing
// side channels build on.)
func TestFIFOInterferes(t *testing.T) {
	run := func(attacker bool) []uint64 {
		f := NewFIFO()
		var grants []uint64
		now := uint64(0)
		for i := 0; i < 50; i++ {
			if attacker {
				f.Request(1, now, 10)
			}
			g := f.Request(0, now, 10)
			grants = append(grants, g)
			now = g + 10
		}
		return grants
	}
	quiet := run(false)
	noisy := run(true)
	moved := false
	for i := range quiet {
		if quiet[i] != noisy[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("FIFO unexpectedly non-interfering")
	}
}

func TestTrackerStats(t *testing.T) {
	tr := NewTracker(NewFIFO(), 2)
	tr.Request(0, 0, 10)
	tr.Request(1, 0, 10) // waits 10
	s0, s1 := tr.Stats(0), tr.Stats(1)
	if s0.Transactions != 1 || s0.BusyCycles != 10 || s0.WaitCycles != 0 {
		t.Fatalf("s0 = %+v", s0)
	}
	if s1.WaitCycles != 10 {
		t.Fatalf("s1 = %+v", s1)
	}
	tr.Reset()
	if tr.Stats(0).Transactions != 0 {
		t.Fatal("reset did not clear stats")
	}
}

// Property: all arbiters grant at or after the request time, and epoch
// ownership always holds for Temporal.
func TestGrantNeverBeforeRequest(t *testing.T) {
	f := func(seeds []uint16) bool {
		arbs := []Arbiter{NewFIFO(), NewRoundRobin(3, 512), NewTemporal(3, 128, 32)}
		for _, a := range arbs {
			now := uint64(0)
			for _, s := range seeds {
				d := int(s) % 3
				dur := uint64(s%16) + 1
				got := a.Request(d, now, dur)
				if got < now {
					return false
				}
				now = got
			}
			a.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	if NewFIFO().Name() != "fifo" ||
		NewRoundRobin(2, 100).Name() != "round-robin" ||
		NewTemporal(2, 100, 10).Name() != "temporal" {
		t.Fatal("arbiter names wrong")
	}
	tp := NewTemporal(2, 100, 10)
	if tp.Epoch() != 100 || tp.DeadTime() != 10 {
		t.Fatal("temporal accessors wrong")
	}
}
