// Package lpm implements DIR-24-8 longest-prefix matching [Gupta, Lin &
// McKeown, INFOCOM 1998] — the route-lookup structure inside the paper's
// LPM network function (§5.1). The classic layout:
//
//   - TBL24: 2^24 entries indexed by the top 24 address bits, holding
//     either a direct next hop or a pointer into a TBL8 pool.
//   - TBL8 pools: 256-entry second-level tables for prefixes longer
//     than /24.
//
// Inserts use the standard depth-tracking discipline (an entry written by
// a /n route is only overwritten by a route with length >= n), so inserts
// are incremental and order-independent. Deletes rebuild from the retained
// route set — rare in router workloads and trivially correct.
//
// The 2^24 x 4 B base table is 64 MB, which is what gives the LPM NF its
// ~68 MB heap in Table 6.
package lpm

import (
	"fmt"
	"sort"
)

const tbl24Size = 1 << 24

// Table is a DIR-24-8 lookup table. NextHop values are 16-bit.
type Table struct {
	nh24    []uint16 // direct next hop per /24 (valid if depth24 > 0)
	depth24 []uint8  // 0 = no direct route; else prefix length + 1
	pool24  []int32  // index into pools, or -1
	pools   [][]poolEntry
	routes  map[uint64]uint16 // key: prefix<<8 | length
}

type poolEntry struct {
	nh    uint16
	depth uint8 // 0 = empty; else prefix length + 1
}

// New returns an empty table.
func New() *Table {
	t := &Table{
		nh24:    make([]uint16, tbl24Size),
		depth24: make([]uint8, tbl24Size),
		pool24:  make([]int32, tbl24Size),
		routes:  make(map[uint64]uint16),
	}
	for i := range t.pool24 {
		t.pool24[i] = -1
	}
	return t
}

// Insert adds a route for prefix/length -> nexthop. Longest prefix wins on
// lookup. Re-inserting a prefix overwrites its next hop.
func (t *Table) Insert(prefix uint32, length int, nexthop uint16) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("lpm: bad prefix length %d", length)
	}
	prefix &= prefixMask(length)
	t.routes[uint64(prefix)<<8|uint64(length)] = nexthop
	t.apply(prefix, length, nexthop)
	return nil
}

func (t *Table) apply(prefix uint32, length int, nh uint16) {
	d := uint8(length + 1)
	if length <= 24 {
		span := 1 << (24 - length)
		start := int(prefix >> 8)
		for i := start; i < start+span; i++ {
			if t.depth24[i] <= d {
				t.nh24[i] = nh
				t.depth24[i] = d
			}
			if p := t.pool24[i]; p >= 0 {
				pool := t.pools[p]
				for j := range pool {
					if pool[j].depth <= d {
						pool[j] = poolEntry{nh: nh, depth: d}
					}
				}
			}
		}
		return
	}
	idx := int(prefix >> 8)
	p := t.pool24[idx]
	if p < 0 {
		// Materialize a pool inheriting the current direct route.
		pool := make([]poolEntry, 256)
		if t.depth24[idx] > 0 {
			for j := range pool {
				pool[j] = poolEntry{nh: t.nh24[idx], depth: t.depth24[idx]}
			}
		}
		t.pools = append(t.pools, pool)
		p = int32(len(t.pools) - 1)
		t.pool24[idx] = p
	}
	pool := t.pools[p]
	span := 1 << (32 - length)
	start := int(prefix & 0xFF)
	for j := start; j < start+span; j++ {
		if pool[j].depth <= d {
			pool[j] = poolEntry{nh: nh, depth: d}
		}
	}
}

// Delete removes a route, returning whether it existed. The table is
// rebuilt from the retained route set.
func (t *Table) Delete(prefix uint32, length int) bool {
	prefix &= prefixMask(length)
	k := uint64(prefix)<<8 | uint64(length)
	if _, ok := t.routes[k]; !ok {
		return false
	}
	delete(t.routes, k)
	t.rebuild()
	return true
}

func (t *Table) rebuild() {
	for i := range t.depth24 {
		t.depth24[i] = 0
		t.pool24[i] = -1
	}
	t.pools = t.pools[:0]
	type route struct {
		prefix uint32
		length int
		nh     uint16
	}
	rs := make([]route, 0, len(t.routes))
	//lint:allow map-order routes are totally ordered by unique (length, prefix) right below
	for k, nh := range t.routes {
		rs = append(rs, route{uint32(k >> 8), int(k & 0xFF), nh})
	}
	// Ascending length: depth checks then allow every replay to land.
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].length != rs[j].length {
			return rs[i].length < rs[j].length
		}
		return rs[i].prefix < rs[j].prefix
	})
	for _, r := range rs {
		t.apply(r.prefix, r.length, r.nh)
	}
}

// Lookup returns the next hop for addr and whether any route matched. The
// fast path is one memory access; /25+ prefixes take two — the property
// DIR-24-8 was designed around.
func (t *Table) Lookup(addr uint32) (uint16, bool) {
	idx := addr >> 8
	if p := t.pool24[idx]; p >= 0 {
		e := t.pools[p][addr&0xFF]
		if e.depth == 0 {
			return 0, false
		}
		return e.nh, true
	}
	if t.depth24[idx] == 0 {
		return 0, false
	}
	return t.nh24[idx], true
}

// Len returns the number of installed routes.
func (t *Table) Len() int { return len(t.routes) }

// EntryBytes is the modelled per-TBL24-entry size. The paper's LPM NF
// stores 4 B per entry (64 MB base table; ~68 MB total heap in Table 6).
const EntryBytes = 4

// MemoryBytes reports the structure's modelled DRAM footprint.
func (t *Table) MemoryBytes() uint64 {
	return uint64(tbl24Size)*EntryBytes +
		uint64(len(t.pools))*256*EntryBytes +
		uint64(len(t.routes))*16
}

func prefixMask(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}
