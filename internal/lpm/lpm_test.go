package lpm

import (
	"testing"
	"testing/quick"

	"snic/internal/sim"
)

func ip(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func TestBasicLookup(t *testing.T) {
	tbl := New()
	if err := tbl.Insert(ip(10, 0, 0, 0), 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(ip(10, 1, 0, 0), 16, 2); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint32
		nh   uint16
		ok   bool
	}{
		{ip(10, 0, 0, 1), 1, true},
		{ip(10, 1, 2, 3), 2, true}, // longer prefix wins
		{ip(10, 255, 0, 1), 1, true},
		{ip(11, 0, 0, 1), 0, false},
	}
	for _, c := range cases {
		nh, ok := tbl.Lookup(c.addr)
		if ok != c.ok || (ok && nh != c.nh) {
			t.Errorf("Lookup(%x) = %d,%v want %d,%v", c.addr, nh, ok, c.nh, c.ok)
		}
	}
}

func TestLongPrefixesUseTBL8(t *testing.T) {
	tbl := New()
	tbl.Insert(ip(192, 168, 1, 0), 24, 10)
	tbl.Insert(ip(192, 168, 1, 128), 25, 20)
	tbl.Insert(ip(192, 168, 1, 200), 30, 30)
	checks := []struct {
		addr uint32
		nh   uint16
	}{
		{ip(192, 168, 1, 5), 10},
		{ip(192, 168, 1, 129), 20},
		{ip(192, 168, 1, 201), 30},
		{ip(192, 168, 1, 255), 20},
	}
	for _, c := range checks {
		nh, ok := tbl.Lookup(c.addr)
		if !ok || nh != c.nh {
			t.Errorf("Lookup(%x) = %d,%v want %d", c.addr, nh, ok, c.nh)
		}
	}
}

func TestHostRoute(t *testing.T) {
	tbl := New()
	tbl.Insert(ip(1, 2, 3, 4), 32, 7)
	if nh, ok := tbl.Lookup(ip(1, 2, 3, 4)); !ok || nh != 7 {
		t.Fatal("host route missed")
	}
	if _, ok := tbl.Lookup(ip(1, 2, 3, 5)); ok {
		t.Fatal("host route overmatched")
	}
}

func TestInsertOrderIndependence(t *testing.T) {
	a, b := New(), New()
	a.Insert(ip(10, 0, 0, 0), 8, 1)
	a.Insert(ip(10, 1, 0, 0), 16, 2)
	a.Insert(ip(10, 1, 1, 128), 25, 3)
	b.Insert(ip(10, 1, 1, 128), 25, 3)
	b.Insert(ip(10, 1, 0, 0), 16, 2)
	b.Insert(ip(10, 0, 0, 0), 8, 1)
	for _, addr := range []uint32{ip(10, 0, 5, 5), ip(10, 1, 9, 9), ip(10, 1, 1, 129), ip(10, 1, 1, 1)} {
		na, oka := a.Lookup(addr)
		nb, okb := b.Lookup(addr)
		if na != nb || oka != okb {
			t.Fatalf("order dependence at %x: %d,%v vs %d,%v", addr, na, oka, nb, okb)
		}
	}
}

func TestDeleteRestoresShorterPrefix(t *testing.T) {
	tbl := New()
	tbl.Insert(ip(10, 0, 0, 0), 8, 1)
	tbl.Insert(ip(10, 1, 0, 0), 16, 2)
	if !tbl.Delete(ip(10, 1, 0, 0), 16) {
		t.Fatal("delete failed")
	}
	if nh, ok := tbl.Lookup(ip(10, 1, 2, 3)); !ok || nh != 1 {
		t.Fatalf("shorter prefix not restored: %d,%v", nh, ok)
	}
	if tbl.Delete(ip(10, 1, 0, 0), 16) {
		t.Fatal("double delete succeeded")
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestDefaultRoute(t *testing.T) {
	tbl := New()
	tbl.Insert(0, 0, 99)
	if nh, ok := tbl.Lookup(ip(203, 0, 113, 7)); !ok || nh != 99 {
		t.Fatal("default route missed")
	}
}

func TestBadLengthRejected(t *testing.T) {
	tbl := New()
	if err := tbl.Insert(0, 33, 1); err == nil {
		t.Fatal("length 33 accepted")
	}
	if err := tbl.Insert(0, -1, 1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestReinsertOverwrites(t *testing.T) {
	tbl := New()
	tbl.Insert(ip(10, 0, 0, 0), 8, 1)
	tbl.Insert(ip(10, 0, 0, 0), 8, 5)
	if nh, _ := tbl.Lookup(ip(10, 9, 9, 9)); nh != 5 {
		t.Fatalf("nh = %d", nh)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestMemoryBytesDominatedByTBL24(t *testing.T) {
	tbl := New()
	if tbl.MemoryBytes() < (1<<24)*EntryBytes {
		t.Fatal("TBL24 not accounted")
	}
}

// naive reference: linear scan for the longest matching prefix.
type refRoute struct {
	prefix uint32
	length int
	nh     uint16
}

func refLookup(routes []refRoute, addr uint32) (uint16, bool) {
	best := -1
	var nh uint16
	for _, r := range routes {
		if addr&prefixMask(r.length) == r.prefix&prefixMask(r.length) && r.length > best {
			best = r.length
			nh = r.nh
		}
	}
	return nh, best >= 0
}

// Property: DIR-24-8 agrees with the naive longest-prefix scan.
func TestMatchesNaiveProperty(t *testing.T) {
	tbl := New() // reuse one table; rebuild per trial would allocate 96MB each
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		// Random routes clustered so overlaps actually happen.
		n := 1 + rng.Intn(20)
		routes := make([]refRoute, 0, n)
		fresh := New()
		*tbl = *fresh
		for i := 0; i < n; i++ {
			length := rng.Intn(33)
			prefix := (uint32(rng.Intn(4))<<24 | uint32(rng.Uint32())&0x00FFFFFF) & prefixMask(length)
			nh := uint16(rng.Intn(100))
			// Deduplicate prefixes in the reference the same way Insert does.
			replaced := false
			for j := range routes {
				if routes[j].prefix == prefix && routes[j].length == length {
					routes[j].nh = nh
					replaced = true
					break
				}
			}
			if !replaced {
				routes = append(routes, refRoute{prefix, length, nh})
			}
			if err := tbl.Insert(prefix, length, nh); err != nil {
				return false
			}
		}
		for trial := 0; trial < 200; trial++ {
			addr := uint32(rng.Intn(4))<<24 | uint32(rng.Uint32())&0x00FFFFFF
			wantNH, wantOK := refLookup(routes, addr)
			gotNH, gotOK := tbl.Lookup(addr)
			if wantOK != gotOK || (wantOK && wantNH != gotNH) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl := New()
	rng := sim.NewRand(1)
	for i := 0; i < 16000; i++ {
		length := 8 + rng.Intn(25)
		tbl.Insert(rng.Uint32()&prefixMask(length), length, uint16(rng.Intn(256)))
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i&1023])
	}
}
