// Package enclave models host-level attested execution environments (SGX
// enclaves / TrustZone worlds) for the secure-constellation use case of
// §4.7 and Figure 4b. Per DESIGN.md's substitution table, what the
// constellation needs from the host side is (1) an identity that can be
// attested under some hardware root and (2) the same quote/DH surface the
// S-NIC exposes — both of which this in-process model provides, built on
// the identical attest package primitives.
package enclave

import (
	"fmt"
	"math/big"

	"snic/internal/attest"
)

// Enclave is one host-level secure computation.
type Enclave struct {
	Name string
	hw   *attest.Device
	hash [32]byte
}

// New creates an enclave whose CPU is endorsed by vendor (e.g. Intel for
// SGX) and whose initial code/data measurement covers image.
func New(vendor *attest.Vendor, name string, image []byte) (*Enclave, error) {
	hw, err := attest.NewDevice(vendor, "CPU-"+name)
	if err != nil {
		return nil, err
	}
	var lh attest.LaunchHash
	lh.Add("enclave-image", image)
	lh.Add("enclave-name", []byte(name))
	return &Enclave{Name: name, hw: hw, hash: lh.Sum()}, nil
}

// Measurement returns the enclave's launch measurement (what verifiers
// must expect).
func (e *Enclave) Measurement() [32]byte { return e.hash }

// Attest produces a quote over the enclave measurement for a verifier
// nonce, plus the DH secret for completing the key exchange.
func (e *Enclave) Attest(nonce []byte) (attest.Quote, *big.Int, error) {
	return e.hw.Attest(e.hash, nonce)
}

// Pair mutually attests two endpoints that can each produce quotes, and
// returns an encrypted channel pair keyed by the DH exchange. It is the
// constellation-building primitive: S-NIC functions and enclaves both
// satisfy Attester.
type Attester interface {
	Attest(nonce []byte) (attest.Quote, *big.Int, error)
}

// attesterFunc adapts a closure to Attester.
type attesterFunc func(nonce []byte) (attest.Quote, *big.Int, error)

func (f attesterFunc) Attest(n []byte) (attest.Quote, *big.Int, error) { return f(n) }

// AttesterFunc wraps fn as an Attester (used to adapt snic.Device.AttestNF).
func AttesterFunc(fn func(nonce []byte) (attest.Quote, *big.Int, error)) Attester {
	return attesterFunc(fn)
}

// Pair performs the pairwise attestation of §4.7: a attests to b's
// verifier and vice versa, each under its own vendor root and expected
// measurement, then both derive one shared key (from a's exchange) and
// open channels over it.
func Pair(a Attester, aVendor *attest.Vendor, aHash [32]byte,
	b Attester, bVendor *attest.Vendor, bHash [32]byte,
	nonceA, nonceB []byte) (chanA, chanB *attest.Channel, err error) {

	// b verifies a.
	qa, xa, err := a.Attest(nonceA)
	if err != nil {
		return nil, nil, fmt.Errorf("enclave: a attest: %w", err)
	}
	if err := attest.Verify(aVendor.PublicKey(), qa, aHash, nonceA); err != nil {
		return nil, nil, fmt.Errorf("enclave: verify a: %w", err)
	}
	// a verifies b.
	qb, _, err := b.Attest(nonceB)
	if err != nil {
		return nil, nil, fmt.Errorf("enclave: b attest: %w", err)
	}
	if err := attest.Verify(bVendor.PublicKey(), qb, bHash, nonceB); err != nil {
		return nil, nil, fmt.Errorf("enclave: verify b: %w", err)
	}
	// Complete the DH exchange on a's quote: b plays verifier.
	bPub, bKey, err := attest.VerifierExchange(qa)
	if err != nil {
		return nil, nil, err
	}
	aKey := attest.CompleteExchange(bPub, xa)
	if aKey != bKey {
		return nil, nil, fmt.Errorf("enclave: key agreement failed")
	}
	chanA, err = attest.NewChannel(aKey)
	if err != nil {
		return nil, nil, err
	}
	chanB, err = attest.NewChannel(bKey)
	if err != nil {
		return nil, nil, err
	}
	return chanA, chanB, nil
}
