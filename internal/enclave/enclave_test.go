package enclave

import (
	"bytes"
	"testing"

	"snic/internal/attest"
)

func TestEnclaveAttests(t *testing.T) {
	intel, err := attest.NewVendor("Intel", nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(intel, "db-shard-0", []byte("enclave binary"))
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("n0")
	q, _, err := e.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.Verify(intel.PublicKey(), q, e.Measurement(), nonce); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementDependsOnImage(t *testing.T) {
	intel, _ := attest.NewVendor("Intel", nil)
	a, _ := New(intel, "x", []byte("image-a"))
	b, _ := New(intel, "x", []byte("image-b"))
	if a.Measurement() == b.Measurement() {
		t.Fatal("different images measure equal")
	}
}

func TestPairEstablishesChannel(t *testing.T) {
	intel, _ := attest.NewVendor("Intel", nil)
	nicVendor, _ := attest.NewVendor("SNIC Vendor", nil)
	e, _ := New(intel, "host-side", []byte("host image"))
	n, _ := New(nicVendor, "nic-side", []byte("nf image")) // stands in for an S-NIC NF

	ca, cb, err := Pair(
		e, intel, e.Measurement(),
		n, nicVendor, n.Measurement(),
		[]byte("nonce-a"), []byte("nonce-b"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cross-constellation payload")
	pt, err := cb.Open(ca.Seal(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("channel mismatch")
	}
}

func TestPairRejectsWrongMeasurement(t *testing.T) {
	intel, _ := attest.NewVendor("Intel", nil)
	nicVendor, _ := attest.NewVendor("SNIC Vendor", nil)
	e, _ := New(intel, "a", []byte("good"))
	n, _ := New(nicVendor, "b", []byte("good"))
	var wrong [32]byte
	if _, _, err := Pair(e, intel, wrong, n, nicVendor, n.Measurement(),
		[]byte("x"), []byte("y")); err == nil {
		t.Fatal("wrong measurement accepted")
	}
}

func TestPairRejectsForeignVendor(t *testing.T) {
	intel, _ := attest.NewVendor("Intel", nil)
	mallory, _ := attest.NewVendor("Mallory", nil)
	nicVendor, _ := attest.NewVendor("SNIC Vendor", nil)
	e, _ := New(intel, "a", []byte("i"))
	n, _ := New(nicVendor, "b", []byte("j"))
	if _, _, err := Pair(e, mallory, e.Measurement(), n, nicVendor, n.Measurement(),
		[]byte("x"), []byte("y")); err == nil {
		t.Fatal("foreign vendor accepted")
	}
}

func TestAttesterFuncAdapter(t *testing.T) {
	intel, _ := attest.NewVendor("Intel", nil)
	e, _ := New(intel, "a", []byte("i"))
	wrapped := AttesterFunc(e.Attest)
	q, _, err := wrapped.Attest([]byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.Verify(intel.PublicKey(), q, e.Measurement(), []byte("n")); err != nil {
		t.Fatal(err)
	}
}
