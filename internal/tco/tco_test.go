package tco

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestPaperNumbers(t *testing.T) {
	r := Compute(PaperParams())
	approx(t, "NIC $/core", r.NICPerCore, 38.97, 0.05)
	approx(t, "host $/core", r.HostPerCore, 163.56, 0.35)
	approx(t, "S-NIC $/core", r.SNICPerCore, 42.53, 0.06)
	approx(t, "advantage loss", r.AdvantageLoss, 0.0837, 0.002)
	approx(t, "advantage kept", r.AdvantageKept, 0.916, 0.002)
}

func TestZeroOverheadKeepsEverything(t *testing.T) {
	p := PaperParams()
	p.AreaOverheadPct = 0
	p.PowerOverheadPct = 0
	r := Compute(p)
	if r.AdvantageLoss != 0 || r.SNICPerCore != r.NICPerCore {
		t.Fatalf("zero-overhead report: %+v", r)
	}
}

func TestMoreOverheadCostsMore(t *testing.T) {
	lo := PaperParams()
	hi := PaperParams()
	hi.AreaOverheadPct *= 2
	hi.PowerOverheadPct *= 2
	if Compute(hi).AdvantageLoss <= Compute(lo).AdvantageLoss {
		t.Fatal("loss not monotone in overhead")
	}
}

func TestElectricityScalesEnergyOnly(t *testing.T) {
	p := PaperParams()
	base := Compute(p)
	p.ElectricityPerKWH *= 2
	r := Compute(p)
	if r.NICPerCore <= base.NICPerCore || r.HostPerCore <= base.HostPerCore {
		t.Fatal("electricity price ignored")
	}
	// Purchase share is unaffected: doubling $/kWh must not double TCO.
	if r.NICPerCore >= 2*base.NICPerCore {
		t.Fatal("TCO doubled — purchase cost lost")
	}
}
