// Package tco reproduces the paper's total-cost-of-ownership analysis
// (§5.2): three-year per-core TCO of a LiquidIO-class smart NIC vs. a
// host Xeon, and how S-NIC's +8.89% area (→ purchase price) and +11.45%
// power draw shrink — but mostly preserve — the NIC's TCO advantage.
package tco

// Params are the published inputs.
type Params struct {
	Years             float64
	ElectricityPerKWH float64 // $/kWh (US datacenter average)

	NICWatts float64 // LiquidIO peak draw
	NICPrice float64
	NICCores int

	HostWatts float64 // Intel E5-2680 v3
	HostPrice float64
	HostCores int

	AreaOverheadPct  float64 // S-NIC chip-area increase (price proxy)
	PowerOverheadPct float64 // S-NIC power increase
}

// PaperParams returns the §5.2 inputs.
func PaperParams() Params {
	return Params{
		Years:             3,
		ElectricityPerKWH: 0.0733,
		NICWatts:          24.7,
		NICPrice:          420,
		NICCores:          12,
		HostWatts:         113,
		HostPrice:         1745,
		HostCores:         12,
		AreaOverheadPct:   8.89,
		PowerOverheadPct:  11.45,
	}
}

// Report is the computed analysis.
type Report struct {
	NICPerCore    float64 // $/core over the period (baseline NIC)
	HostPerCore   float64
	SNICPerCore   float64
	AdvantageLoss float64 // fraction of the NIC's TCO advantage S-NIC gives up
	AdvantageKept float64 // fraction preserved (the 91.6% headline)
}

func perCore(price, watts, years, rate float64, cores int) float64 {
	hours := years * 365 * 24
	energy := watts * hours / 1000 * rate
	return (price + energy) / float64(cores)
}

// Compute runs the analysis.
func Compute(p Params) Report {
	nic := perCore(p.NICPrice, p.NICWatts, p.Years, p.ElectricityPerKWH, p.NICCores)
	host := perCore(p.HostPrice, p.HostWatts, p.Years, p.ElectricityPerKWH, p.HostCores)
	snicPrice := p.NICPrice * (1 + p.AreaOverheadPct/100)
	snicWatts := p.NICWatts * (1 + p.PowerOverheadPct/100)
	snicCore := perCore(snicPrice, snicWatts, p.Years, p.ElectricityPerKWH, p.NICCores)
	// The paper expresses the NIC's advantage as the host/NIC TCO ratio;
	// the loss is 1 - ratioSNIC/ratioNIC = 1 - nic/snic.
	loss := 1 - nic/snicCore
	return Report{
		NICPerCore:    nic,
		HostPerCore:   host,
		SNICPerCore:   snicCore,
		AdvantageLoss: loss,
		AdvantageKept: 1 - loss,
	}
}
