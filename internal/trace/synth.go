package trace

import (
	"snic/internal/pkt"
	"snic/internal/sim"
)

// FrameSynth is the streaming load-generator behind fleet traffic
// bursts: it draws steered and stray frames one at a time from a single
// RNG with one reused payload buffer, so a burst of any size synthesizes
// in O(1) memory. The draw order per packet — payload bytes, then source
// IP, then source port — is pinned by the fleet scenario goldens, so it
// must never change.
//
// The returned packet's Payload aliases the synth's buffer; marshal or
// consume it before the next draw (pkt.Packet.Marshal copies).
type FrameSynth struct {
	rng     *sim.Rand
	payload []byte
}

// NewFrameSynth builds a synthesizer drawing from rng with payloadBytes
// of pseudorandom payload per frame.
func NewFrameSynth(rng *sim.Rand, payloadBytes int) *FrameSynth {
	return &FrameSynth{rng: rng, payload: make([]byte, payloadBytes)}
}

// Steered returns the next load packet aimed at (dstIP, dstPort): a
// unique-ish random source endpoint in 10.0.0.0/16 over UDP, TTL 64.
func (s *FrameSynth) Steered(dstIP uint32, dstPort uint16) pkt.Packet {
	s.rng.Bytes(s.payload)
	return pkt.Packet{
		Tuple: pkt.FiveTuple{
			SrcIP:   0x0a000000 | s.rng.Uint32()&0xFFFF,
			DstIP:   dstIP,
			SrcPort: uint16(40000 + s.rng.Intn(20000)),
			DstPort: dstPort,
			Proto:   pkt.ProtoUDP,
		},
		TTL:     64,
		Payload: s.payload,
	}
}

// Stray returns the next frame that matches no steering rule (UDP port
// 1), exercising receiver drop paths.
func (s *FrameSynth) Stray() pkt.Packet {
	s.rng.Bytes(s.payload)
	return pkt.Packet{
		Tuple: pkt.FiveTuple{
			SrcIP: 0x0a000001, DstIP: 0x0a800001,
			SrcPort: 7, DstPort: 1, Proto: pkt.ProtoUDP,
		},
		TTL:     64,
		Payload: s.payload,
	}
}

// StrayCount draws how many stray frames accompany a burst of n steered
// packets (up to a quarter of the burst).
func (s *FrameSynth) StrayCount(n int) int {
	return s.rng.Intn(n/4 + 1)
}
