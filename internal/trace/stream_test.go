package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"snic/internal/sim"
)

// TestPoolStreamMatchesPoolFixedLen pins the streaming generator to the
// materialized Pool draw-for-draw: same flow indices, tuples, MACs, and
// payload bytes for a fixed payload length.
func TestPoolStreamMatchesPoolFixedLen(t *testing.T) {
	tmpl := NewICTFTemplate(sim.NewRand(21), 300)
	pool := tmpl.Pool()
	st := tmpl.Stream(64).Limit(2000)
	n := 0
	for {
		si, sp, ok := st.Next()
		if !ok {
			break
		}
		pi, pp := pool.NextPacket(64)
		if si != pi {
			t.Fatalf("draw %d: flow %d vs %d", n, si, pi)
		}
		if sp.Tuple != pp.Tuple || sp.SrcMAC != pp.SrcMAC || sp.DstMAC != pp.DstMAC {
			t.Fatalf("draw %d: header mismatch", n)
		}
		if !bytes.Equal(sp.Payload, pp.Payload) {
			t.Fatalf("draw %d: payload mismatch", n)
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("stream yielded %d packets, want 2000", n)
	}
}

// TestPoolStreamMatchesFrames pins IMIX mode to Pool.Frames, where the
// length draw and payload bytes interleave on one RNG stream.
func TestPoolStreamMatchesFrames(t *testing.T) {
	tmpl := NewICTFTemplate(sim.NewRand(22), 200)
	frames := tmpl.Pool().Frames(500)
	st := tmpl.Stream(0).Limit(500)
	for i, want := range frames {
		_, p, ok := st.Next()
		if !ok {
			t.Fatalf("stream exhausted at %d", i)
		}
		if got := p.Marshal(); !bytes.Equal(got, want) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

// TestNextPacketBufMatchesNextPacket pins the buffer-reusing variant to
// the allocating one.
func TestNextPacketBufMatchesNextPacket(t *testing.T) {
	tmpl := NewICTFTemplate(sim.NewRand(23), 100)
	a, b := tmpl.Pool(), tmpl.Pool()
	for i := 0; i < 1000; i++ {
		l := IMIXLen(sim.NewRand(uint64(i + 1)))
		ai, ap := a.NextPacket(l)
		bi, bp := b.NextPacketBuf(l)
		if ai != bi || ap.Tuple != bp.Tuple || !bytes.Equal(ap.Payload, bp.Payload) {
			t.Fatalf("draw %d diverges", i)
		}
	}
}

// TestPoolStreamCursorResume checks that Seek(Cursor()) — including a
// JSON round-trip, as a checkpoint file would do — resumes the stream
// byte-identically mid-window.
func TestPoolStreamCursorResume(t *testing.T) {
	tmpl := NewICTFTemplate(sim.NewRand(24), 150)
	full := tmpl.Stream(0).Limit(1000)
	var wantFrames [][]byte
	cut := 437
	var cur Cursor
	for i := 0; i < 1000; i++ {
		if i == cut {
			cur = full.Cursor()
		}
		_, p, ok := full.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if i >= cut {
			wantFrames = append(wantFrames, p.Marshal())
		}
	}

	raw, err := json.Marshal(cur)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Cursor
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	resumed := tmpl.Stream(0).Limit(1000)
	if err := resumed.Seek(decoded); err != nil {
		t.Fatal(err)
	}
	if resumed.Pos() != uint64(cut) {
		t.Fatalf("pos = %d, want %d", resumed.Pos(), cut)
	}
	for i, want := range wantFrames {
		_, p, ok := resumed.Next()
		if !ok {
			t.Fatalf("resumed stream exhausted at %d", i)
		}
		if !bytes.Equal(p.Marshal(), want) {
			t.Fatalf("resumed frame %d differs", i)
		}
	}
	if _, _, ok := resumed.Next(); ok {
		t.Fatal("resumed stream ignored the limit")
	}
}

// TestCAIDACursorResume resumes a budget stream mid-flow (the cursor
// carries the in-flight tuple and its remaining repeats).
func TestCAIDACursorResume(t *testing.T) {
	mk := func() *CAIDAStream { return NewCAIDABudget(sim.NewRand(25), 500, 3) }
	full := mk()
	cut := 700 // not a multiple of perFlow: cuts inside a flow
	var cur Cursor
	type rec struct {
		idx int
		tup [16]byte
	}
	var want []rec
	for i := 0; ; i++ {
		if i == cut {
			cur = full.Cursor()
		}
		idx, p, ok := full.Next()
		if !ok {
			break
		}
		if i >= cut {
			want = append(want, rec{idx, p.Tuple.Key()})
		}
	}

	raw, err := json.Marshal(cur)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Cursor
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	resumed := mk()
	if err := resumed.Seek(decoded); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		idx, p, ok := resumed.Next()
		if !ok {
			t.Fatalf("resumed exhausted at %d", i)
		}
		if idx != w.idx || p.Tuple.Key() != w.tup {
			t.Fatalf("resumed packet %d diverges", i)
		}
	}
	if _, _, ok := resumed.Next(); ok {
		t.Fatal("resumed stream overran the budget")
	}
	if resumed.TotalFlows() != full.TotalFlows() || resumed.Pos() != full.Pos() {
		t.Fatal("resumed counters diverge")
	}
}

func TestCursorKindMismatch(t *testing.T) {
	tmpl := NewICTFTemplate(sim.NewRand(26), 50)
	ps := tmpl.Stream(64)
	cs := NewCAIDABudget(sim.NewRand(26), 10, 1)
	if err := ps.Seek(cs.Cursor()); err == nil {
		t.Fatal("pool stream accepted a caida cursor")
	}
	if err := cs.Seek(ps.Cursor()); err == nil {
		t.Fatal("caida stream accepted a pool cursor")
	}
	bad := ps.Cursor()
	bad.Version = 99
	if err := ps.Seek(bad); err == nil {
		t.Fatal("accepted unknown cursor version")
	}
}

// TestPoolShards: shard streams are pure functions of (base, label,
// index) — rebuilt shards replay identically — and distinct shards draw
// decorrelated payload/sampling streams over the shared flow set.
func TestPoolShards(t *testing.T) {
	tmpl := NewICTFTemplate(sim.NewRand(27), 120)
	a := tmpl.Shards(7, "sweep", 4, 64)
	b := tmpl.Shards(7, "sweep", 4, 64)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("shard counts %d/%d", len(a), len(b))
	}
	for s := range a {
		for i := 0; i < 200; i++ {
			ai, ap, _ := a[s].Next()
			bi, bp, _ := b[s].Next()
			if ai != bi || !bytes.Equal(ap.Payload, bp.Payload) {
				t.Fatalf("shard %d not reproducible at draw %d", s, i)
			}
		}
	}
	// Distinct shards must not replay each other's sampling stream.
	x := tmpl.Shards(7, "sweep", 2, 64)
	identical := 0
	for i := 0; i < 200; i++ {
		xi, _, _ := x[0].Next()
		yi, _, _ := x[1].Next()
		if xi == yi {
			identical++
		}
	}
	if identical == 200 {
		t.Fatal("shards 0 and 1 sample identically")
	}
}
