package trace

import (
	"fmt"

	"snic/internal/sim"
)

// FirewallRule is a 5-tuple predicate with wildcards, in the style of the
// Emerging Threats firewall rulesets the paper configures (643 rules).
type FirewallRule struct {
	SrcIP, SrcMask uint32
	DstIP, DstMask uint32
	SrcPortLo      uint16
	SrcPortHi      uint16
	DstPortLo      uint16
	DstPortHi      uint16
	Proto          uint8 // 0 = any
	Drop           bool
}

// Matches reports whether the rule matches the tuple fields.
func (r FirewallRule) Matches(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) bool {
	if r.Proto != 0 && r.Proto != proto {
		return false
	}
	if srcIP&r.SrcMask != r.SrcIP&r.SrcMask {
		return false
	}
	if dstIP&r.DstMask != r.DstIP&r.DstMask {
		return false
	}
	if srcPort < r.SrcPortLo || srcPort > r.SrcPortHi {
		return false
	}
	return dstPort >= r.DstPortLo && dstPort <= r.DstPortHi
}

// FirewallRules synthesizes n rules with a realistic mix of prefix widths
// and port ranges. Roughly 70% are drop rules, like public threat lists.
func FirewallRules(rng *sim.Rand, n int) []FirewallRule {
	rules := make([]FirewallRule, n)
	for i := range rules {
		srcLen := []int{0, 8, 16, 24, 32}[rng.Intn(5)]
		dstLen := []int{0, 16, 24, 32}[rng.Intn(4)]
		r := FirewallRule{
			SrcIP: rng.Uint32(), SrcMask: maskOf(srcLen),
			DstIP: rng.Uint32(), DstMask: maskOf(dstLen),
			SrcPortLo: 0, SrcPortHi: 65535,
			Drop: rng.Intn(10) < 7,
		}
		if rng.Intn(2) == 0 {
			p := uint16(rng.Intn(1024))
			r.DstPortLo, r.DstPortHi = p, p
		} else {
			r.DstPortLo, r.DstPortHi = 0, 65535
		}
		if rng.Intn(3) != 0 {
			r.Proto = 6
		}
		rules[i] = r
	}
	return rules
}

func maskOf(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

// DPIPatterns synthesizes n byte patterns with the length distribution of
// public IDS content strings (most 4–24 bytes, a tail to ~64). The paper
// extracts 33,471 patterns from six open-source rulesets; rule *content*
// doesn't affect any reported number, only count and size do.
func DPIPatterns(rng *sim.Rand, n int) [][]byte {
	out := make([][]byte, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		l := 4 + rng.Intn(21)
		if rng.Intn(10) == 0 {
			l = 24 + rng.Intn(41)
		}
		p := make([]byte, l)
		for j := range p {
			// Mostly printable, as real content strings are.
			p[j] = byte(0x20 + rng.Intn(95))
		}
		s := string(p)
		if seen[s] {
			i--
			continue
		}
		seen[s] = true
		out[i] = p
	}
	return out
}

// Route is an LPM route.
type Route struct {
	Prefix  uint32
	Length  int
	NextHop uint16
}

// Routes synthesizes n routes the way the NetBricks LPM benchmark does
// ("we generate 16,000 random rules to construct the lookup table"),
// biased toward the /16–/24 range of real tables.
func Routes(rng *sim.Rand, n int) []Route {
	out := make([]Route, n)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		length := 8 + rng.Intn(17) // 8..24
		if rng.Intn(8) == 0 {
			length = 25 + rng.Intn(8) // 25..32
		}
		prefix := rng.Uint32() & maskOf(length)
		k := uint64(prefix)<<8 | uint64(length)
		if seen[k] {
			i--
			continue
		}
		seen[k] = true
		out[i] = Route{Prefix: prefix, Length: length, NextHop: uint16(rng.Intn(256))}
	}
	return out
}

// Backends names n load-balancer backends.
func Backends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.64.%d.%d:8080", i/256, i%256)
	}
	return out
}
