// Package trace synthesizes the workloads the paper evaluates with:
//
//   - an ICTF-like pool: 100,000 flows sampled with Zipf skewness 1.1
//     (§5.3 — the paper itself reduces the 2010 iCTF trace to exactly this
//     distribution), and
//   - a CAIDA-like stream: tens of millions of flows with heavy-tailed
//     packet counts arriving over time, which drives the Monitor NF's
//     memory growth (Table 6, Figure 7).
//
// The real traces are access-restricted; per DESIGN.md's substitution
// table the experiments only depend on flow counts, popularity skew, and
// packet sizes, all of which these generators reproduce deterministically
// from a seed.
package trace

import (
	"snic/internal/pkt"
	"snic/internal/sim"
)

// Pool is a fixed set of flows with a popularity distribution.
type Pool struct {
	flows []pkt.FiveTuple
	zipf  *sim.Zipf
	rng   *sim.Rand
	buf   []byte // NextPacketBuf's reused payload buffer
}

// NewPool creates n random flows with Zipf(skew) popularity.
func NewPool(rng *sim.Rand, n int, skew float64) *Pool {
	return NewPoolTemplate(rng, n, skew).Pool()
}

// PoolTemplate is the expensive, immutable part of a Pool — the flow set
// and the Zipf CDF — captured together with the seeds of the sampler and
// payload streams. Building a template costs the same as NewPool, but
// Pool() then stamps out independent, identically-seeded Pools in O(1):
// the flows slice and CDF are shared read-only while each Pool gets its
// own mutable RNGs. The experiment harness memoizes templates per
// (seed, size) so repeated sweep points stop rebuilding identical pools.
type PoolTemplate struct {
	flows    []pkt.FiveTuple
	zipf     *sim.Zipf // template sampler; every Pool re-arms it WithRand
	zipfSeed uint64
	rngSeed  uint64
}

// NewPoolTemplate builds the template with exactly NewPool's derivation:
// the flow loop consumes rng first, then the sampler and payload seeds
// are forked in the same order NewPool forks its sub-streams.
func NewPoolTemplate(rng *sim.Rand, n int, skew float64) *PoolTemplate {
	flows := make([]pkt.FiveTuple, n)
	seen := make(map[[16]byte]bool, n)
	for i := range flows {
		for {
			ft := randomTuple(rng)
			k := ft.Key()
			if !seen[k] {
				seen[k] = true
				flows[i] = ft
				break
			}
		}
	}
	zipfSeed := rng.ForkSeed()
	rngSeed := rng.ForkSeed()
	return &PoolTemplate{
		flows:    flows,
		zipf:     sim.NewZipf(sim.NewRand(zipfSeed), n, skew),
		zipfSeed: zipfSeed,
		rngSeed:  rngSeed,
	}
}

// NumFlows returns the template's pool size.
func (t *PoolTemplate) NumFlows() int { return len(t.flows) }

// Pool instantiates a fresh Pool from the template. Every call returns a
// Pool whose sampling and payload streams start from the same seeds, so
// all instances are byte-identical to each other and to the Pool that
// NewPool(rng, n, skew) would have built from the template's rng.
func (t *PoolTemplate) Pool() *Pool {
	return &Pool{
		flows: t.flows,
		zipf:  t.zipf.WithRand(sim.NewRand(t.zipfSeed)),
		rng:   sim.NewRand(t.rngSeed),
	}
}

// NewICTF builds the paper's ICTF-like pool: 100 k flows, skew 1.1.
// Pass a smaller n to scale the experiment down (tests do).
func NewICTF(rng *sim.Rand, n int) *Pool {
	return NewICTFTemplate(rng, n).Pool()
}

// NewICTFTemplate is the template form of NewICTF, for callers that
// instantiate the same pool many times.
func NewICTFTemplate(rng *sim.Rand, n int) *PoolTemplate {
	if n <= 0 {
		n = 100000
	}
	return NewPoolTemplate(rng, n, 1.1)
}

func randomTuple(rng *sim.Rand) pkt.FiveTuple {
	proto := pkt.ProtoTCP
	if rng.Intn(5) == 0 {
		proto = pkt.ProtoUDP
	}
	return pkt.FiveTuple{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: 1024 + uint16(rng.Intn(64000)),
		DstPort: wellKnownPort(rng),
		Proto:   proto,
	}
}

func wellKnownPort(rng *sim.Rand) uint16 {
	ports := []uint16{80, 443, 53, 22, 25, 8080, 3306, 6379}
	if rng.Intn(4) == 0 {
		return 1024 + uint16(rng.Intn(64000))
	}
	return ports[rng.Intn(len(ports))]
}

// NumFlows returns the pool size.
func (p *Pool) NumFlows() int { return len(p.flows) }

// Flow returns flow i's tuple.
func (p *Pool) Flow(i int) pkt.FiveTuple { return p.flows[i] }

// NextFlow samples a flow index by popularity.
func (p *Pool) NextFlow() int { return p.zipf.Next() }

// NextPacket samples a flow and builds a packet of the given payload size
// (payload content is pseudorandom but deterministic).
func (p *Pool) NextPacket(payloadLen int) (int, pkt.Packet) {
	i := p.zipf.Next()
	payload := make([]byte, payloadLen)
	p.rng.Bytes(payload)
	return i, pkt.Packet{
		SrcMAC:  pkt.MAC{0x02, 0, 0, 0, byte(i >> 8), byte(i)},
		DstMAC:  pkt.MAC{0x02, 0, 0, 0, 0xFF, 0xFE},
		Tuple:   p.flows[i],
		Payload: payload,
	}
}

// NextPacketBuf is NextPacket with a pool-owned payload buffer: draw
// order and payload bytes are identical, but the returned packet's
// Payload aliases an internal buffer that the next NextPacketBuf call
// overwrites. Hot loops that consume the packet before drawing the next
// one (profiling, frame recording — Marshal copies) use this to avoid a
// per-packet allocation; callers that retain payloads use NextPacket.
func (p *Pool) NextPacketBuf(payloadLen int) (int, pkt.Packet) {
	i := p.zipf.Next()
	if cap(p.buf) < payloadLen {
		p.buf = make([]byte, payloadLen)
	}
	payload := p.buf[:payloadLen]
	p.rng.Bytes(payload)
	return i, pkt.Packet{
		SrcMAC:  pkt.MAC{0x02, 0, 0, 0, byte(i >> 8), byte(i)},
		DstMAC:  pkt.MAC{0x02, 0, 0, 0, 0xFF, 0xFE},
		Tuple:   p.flows[i],
		Payload: payload,
	}
}

// IMIXLen samples a payload length from a simple IMIX-like mix
// (~58% small, 33% medium, 9% large), matching typical datacenter blends.
func IMIXLen(rng *sim.Rand) int {
	switch v := rng.Intn(12); {
	case v < 7:
		return 26 // -> 64 B minimum frame once headers are added
	case v < 11:
		return 536
	default:
		return 1400
	}
}

// CAIDAStream models the one-hour CAIDA-like trace as an arrival process:
// new flows appear continuously, and packets are drawn from live flows
// with heavy-tailed per-flow packet counts (mean ~50, like 1.34 G packets
// over 26.7 M flows). It is a constant-memory iterator: Advance (or
// AdvanceFlows) extends the generation horizon without materializing
// anything, and Next yields one packet at a time — the flow keys appear
// in exactly the order the old slice-returning Advance emitted them
// (each new flow's tuple repeated perFlow consecutive times), so a drain
// loop over Next is draw-for-draw identical to ranging over the slice.
type CAIDAStream struct {
	rng        *sim.Rand
	flowRate   float64 // new flows per simulated second
	elapsed    float64 // seconds
	target     uint64  // flows the horizon covers; Next stops when reached
	totalFlows uint64  // distinct flows emitted so far
	perFlow    int     // packets per flow within the current horizon
	remaining  int     // packets left for the current flow
	cur        pkt.FiveTuple
	curIdx     int    // flow index of cur (0-based arrival order)
	pos        uint64 // packets yielded over the stream's lifetime
}

// NewCAIDA creates a stream introducing flowRate new flows per second.
// The paper's trace has 26.7 M flows/hour ≈ 7417 flows/s.
func NewCAIDA(rng *sim.Rand, flowRate float64) *CAIDAStream {
	if flowRate <= 0 {
		flowRate = 26.7e6 / 3600
	}
	return &CAIDAStream{rng: rng, flowRate: flowRate}
}

// NewCAIDABudget creates a stream with an explicit flow budget instead of
// an arrival rate: exactly flows distinct flows, perFlow packets each.
// Shard replay uses this form — each shard owns a fixed slice of the
// window's flow population rather than a slice of simulated time.
func NewCAIDABudget(rng *sim.Rand, flows uint64, perFlow int) *CAIDAStream {
	if perFlow < 1 {
		perFlow = 1
	}
	return &CAIDAStream{rng: rng, flowRate: 1, target: flows, perFlow: perFlow}
}

// Advance moves simulated time forward by dt seconds, extending the
// horizon Next generates toward. perFlowPackets sets how many packets
// each newly arrived flow contributes (the trace's ~50:1 packet:flow
// ratio). It allocates nothing; call Next to drain the interval.
func (c *CAIDAStream) Advance(dt float64, perFlowPackets int) {
	if perFlowPackets < 1 {
		perFlowPackets = 1
	}
	c.elapsed += dt
	c.target = uint64(c.elapsed * c.flowRate)
	c.perFlow = perFlowPackets
}

// AdvanceFlows extends the horizon by an explicit number of new flows,
// for callers that think in flow budgets rather than simulated seconds.
func (c *CAIDAStream) AdvanceFlows(flows uint64, perFlowPackets int) {
	if perFlowPackets < 1 {
		perFlowPackets = 1
	}
	c.target += flows
	c.perFlow = perFlowPackets
}

// Next yields the next packet inside the advanced horizon: the flow's
// 0-based arrival index, a packet carrying its five-tuple, and false once
// the horizon is drained (Advance again to continue). The tuple draw
// order matches the pre-streaming implementation exactly: one randomTuple
// per new flow, repeated perFlow consecutive times.
func (c *CAIDAStream) Next() (int, pkt.Packet, bool) {
	if c.remaining == 0 {
		if c.totalFlows >= c.target {
			return 0, pkt.Packet{}, false
		}
		c.cur = randomTuple(c.rng)
		c.curIdx = int(c.totalFlows)
		c.totalFlows++
		c.remaining = c.perFlow
	}
	c.remaining--
	c.pos++
	return c.curIdx, pkt.Packet{Tuple: c.cur}, true
}

// Pos returns the number of packets the stream has yielded.
func (c *CAIDAStream) Pos() uint64 { return c.pos }

// TotalFlows returns the number of distinct flows generated so far.
func (c *CAIDAStream) TotalFlows() uint64 { return c.totalFlows }
