package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"snic/internal/pkt"
	"snic/internal/sim"
)

func TestPoolFlowsDistinct(t *testing.T) {
	p := NewPool(sim.NewRand(1), 1000, 1.1)
	seen := map[[16]byte]bool{}
	for i := 0; i < p.NumFlows(); i++ {
		k := p.Flow(i).Key()
		if seen[k] {
			t.Fatal("duplicate flow in pool")
		}
		seen[k] = true
	}
}

func TestPoolZipfSkew(t *testing.T) {
	p := NewICTF(sim.NewRand(2), 10000)
	counts := make([]int, p.NumFlows())
	for i := 0; i < 200000; i++ {
		counts[p.NextFlow()]++
	}
	if counts[0] < 10*counts[999] {
		t.Fatalf("skew too weak: rank0=%d rank999=%d", counts[0], counts[999])
	}
}

func TestICTFDefaultSize(t *testing.T) {
	p := NewICTF(sim.NewRand(3), 0)
	if p.NumFlows() != 100000 {
		t.Fatalf("default pool = %d flows", p.NumFlows())
	}
}

func TestNextPacketParsable(t *testing.T) {
	p := NewICTF(sim.NewRand(4), 100)
	for i := 0; i < 50; i++ {
		idx, pk := p.NextPacket(IMIXLen(sim.NewRand(uint64(i + 1))))
		if idx < 0 || idx >= p.NumFlows() {
			t.Fatalf("flow index %d", idx)
		}
		got, err := pkt.Parse(pk.Marshal())
		if err != nil {
			t.Fatalf("packet %d unparsable: %v", i, err)
		}
		if got.Tuple != p.Flow(idx) {
			t.Fatal("packet tuple mismatch")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewICTF(sim.NewRand(7), 500)
	b := NewICTF(sim.NewRand(7), 500)
	for i := 0; i < 100; i++ {
		if a.NextFlow() != b.NextFlow() {
			t.Fatal("pools diverge under same seed")
		}
	}
}

// drain exhausts the advanced horizon and returns the packet count.
func drain(c *CAIDAStream) int {
	n := 0
	for {
		if _, _, ok := c.Next(); !ok {
			return n
		}
		n++
	}
}

func TestCAIDAFlowRate(t *testing.T) {
	c := NewCAIDA(sim.NewRand(5), 1000)
	c.Advance(10, 1)
	drain(c)
	if c.TotalFlows() != 10000 {
		t.Fatalf("flows = %d, want 10000", c.TotalFlows())
	}
}

func TestCAIDADefaultRate(t *testing.T) {
	c := NewCAIDA(sim.NewRand(5), 0)
	c.Advance(60, 1) // one minute at the CAIDA-like default rate
	drain(c)
	got := float64(c.TotalFlows())
	if got < 26.7e6/60*0.99 || got > 26.7e6/60*1.01 {
		t.Fatalf("minute of flows = %v, want ~445k", got)
	}
}

func TestCAIDAPerFlowPackets(t *testing.T) {
	c := NewCAIDA(sim.NewRand(6), 100)
	c.Advance(1, 3)
	if got := drain(c); got != 300 {
		t.Fatalf("packets = %d", got)
	}
	if c.Pos() != 300 {
		t.Fatalf("pos = %d", c.Pos())
	}
}

func TestCAIDAIncrementalAdvanceMatchesOneShot(t *testing.T) {
	// Draining in many small Advance steps must yield the same tuple
	// sequence as one big step: the horizon only controls when Next stops,
	// never what it generates.
	one := NewCAIDA(sim.NewRand(9), 500)
	one.Advance(10, 2)
	inc := NewCAIDA(sim.NewRand(9), 500)
	for step := 0; step < 100; step++ {
		inc.Advance(0.1, 2)
		for {
			wantIdx, wantPkt, ok := inc.Next()
			if !ok {
				break
			}
			gotIdx, gotPkt, ok := one.Next()
			if !ok {
				t.Fatal("one-shot stream exhausted early")
			}
			if gotIdx != wantIdx || gotPkt.Tuple != wantPkt.Tuple {
				t.Fatalf("diverged at pos %d", one.Pos())
			}
		}
	}
	if one.Pos() != inc.Pos() || one.TotalFlows() != inc.TotalFlows() {
		t.Fatalf("pos %d vs %d, flows %d vs %d", one.Pos(), inc.Pos(), one.TotalFlows(), inc.TotalFlows())
	}
}

func TestCAIDABudgetShares(t *testing.T) {
	var sum uint64
	for i := 0; i < 7; i++ {
		c := CAIDAShard(42, "window", i, 7, 1000, 3)
		c.AdvanceFlows(0, 3) // no-op extension must not change the budget
		if got := drain(c); got != int(ShardShare(1000, i, 7))*3 {
			t.Fatalf("shard %d drained %d packets", i, got)
		}
		sum += c.TotalFlows()
	}
	if sum != 1000 {
		t.Fatalf("shards cover %d flows, want 1000", sum)
	}
}

func TestCAIDAShardsAreDecorrelated(t *testing.T) {
	a := CAIDAShard(42, "window", 0, 4, 400, 1)
	b := CAIDAShard(42, "window", 1, 4, 400, 1)
	same := 0
	for {
		_, pa, ok := a.Next()
		if !ok {
			break
		}
		_, pb, ok := b.Next()
		if !ok {
			break
		}
		if pa.Tuple == pb.Tuple {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d identical tuples across shards", same)
	}
}

func TestFirewallRulesShape(t *testing.T) {
	rules := FirewallRules(sim.NewRand(8), 643)
	if len(rules) != 643 {
		t.Fatalf("%d rules", len(rules))
	}
	drops := 0
	for _, r := range rules {
		if r.Drop {
			drops++
		}
	}
	if drops < 300 || drops > 600 {
		t.Fatalf("drop mix = %d/643", drops)
	}
}

func TestFirewallRuleMatching(t *testing.T) {
	r := FirewallRule{
		SrcIP: 0x0A000000, SrcMask: 0xFF000000,
		DstIP: 0, DstMask: 0,
		SrcPortLo: 0, SrcPortHi: 65535,
		DstPortLo: 80, DstPortHi: 80,
		Proto: 6,
	}
	if !r.Matches(0x0A010203, 0x01020304, 1234, 80, 6) {
		t.Fatal("expected match")
	}
	if r.Matches(0x0B010203, 0x01020304, 1234, 80, 6) {
		t.Fatal("src prefix ignored")
	}
	if r.Matches(0x0A010203, 0x01020304, 1234, 81, 6) {
		t.Fatal("dst port ignored")
	}
	if r.Matches(0x0A010203, 0x01020304, 1234, 80, 17) {
		t.Fatal("proto ignored")
	}
}

func TestDPIPatternsShape(t *testing.T) {
	pats := DPIPatterns(sim.NewRand(9), 2000)
	if len(pats) != 2000 {
		t.Fatalf("%d patterns", len(pats))
	}
	seen := map[string]bool{}
	for _, p := range pats {
		if len(p) < 4 || len(p) > 64 {
			t.Fatalf("pattern length %d", len(p))
		}
		if seen[string(p)] {
			t.Fatal("duplicate pattern")
		}
		seen[string(p)] = true
	}
}

func TestRoutesShape(t *testing.T) {
	routes := Routes(sim.NewRand(10), 16000)
	if len(routes) != 16000 {
		t.Fatalf("%d routes", len(routes))
	}
	seen := map[uint64]bool{}
	for _, r := range routes {
		if r.Length < 8 || r.Length > 32 {
			t.Fatalf("length %d", r.Length)
		}
		if r.Prefix&^maskOf(r.Length) != 0 {
			t.Fatal("prefix has host bits set")
		}
		k := uint64(r.Prefix)<<8 | uint64(r.Length)
		if seen[k] {
			t.Fatal("duplicate route")
		}
		seen[k] = true
	}
}

func TestBackends(t *testing.T) {
	b := Backends(300)
	if len(b) != 300 || b[0] == b[299] {
		t.Fatal("backend naming broken")
	}
}

func TestIMIXLenValues(t *testing.T) {
	rng := sim.NewRand(11)
	small, med, large := 0, 0, 0
	for i := 0; i < 10000; i++ {
		switch IMIXLen(rng) {
		case 26:
			small++
		case 536:
			med++
		case 1400:
			large++
		default:
			t.Fatal("unexpected IMIX length")
		}
	}
	if small < med || med < large {
		t.Fatalf("IMIX mix off: %d/%d/%d", small, med, large)
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	pool := NewICTF(sim.NewRand(21), 200)
	frames := pool.Frames(500)
	var buf bytes.Buffer
	if err := SaveFrames(&buf, frames); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("replayed %d frames", len(got))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
	// Replayed frames still parse.
	for _, f := range got[:20] {
		if _, err := pkt.Parse(f); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadFramesRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOTATRACE"),
		append(append([]byte{}, recMagic[:]...), 0xFF, 0xFF, 0xFF, 0xFF), // count, no data
	}
	for i, c := range cases {
		if _, err := LoadFrames(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Oversized frame length rejected.
	var buf bytes.Buffer
	buf.Write(recMagic[:])
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], 1)
	buf.Write(n[:])
	binary.LittleEndian.PutUint32(n[:], 1<<30)
	buf.Write(n[:])
	if _, err := LoadFrames(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestSaveFramesRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveFrames(&buf, [][]byte{make([]byte, maxFrame+1)}); err == nil {
		t.Fatal("oversized frame saved")
	}
}

func TestSaveEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveFrames(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrames(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %d frames, %v", len(got), err)
	}
}
