// Streaming trace generation. A Stream yields (flowIdx, packet) pairs
// one at a time in O(1) memory, and its position is a serializable
// Cursor: Seek(Cursor()) restores the generator exactly, so a replay can
// be checkpointed mid-window and resumed byte-identically (the engine's
// sharded runner builds on this). PoolStream is the streaming form of
// Pool — draw-for-draw identical to NextPacket/Frames — and CAIDAStream
// implements the same interface for the arrival-process trace.
package trace

import (
	"encoding/json"
	"fmt"

	"snic/internal/pkt"
	"snic/internal/sim"
)

// Stream is a deterministic packet generator with a seekable position.
// Next yields the next packet's flow index and the packet itself,
// returning false when the stream is exhausted (or, for horizon-based
// streams like CAIDAStream, drained up to the advanced horizon). Pos
// counts packets yielded. Cursor captures the full generator position;
// Seek restores it on a stream constructed with the same parameters.
type Stream interface {
	Next() (int, pkt.Packet, bool)
	Pos() uint64
	Cursor() Cursor
	Seek(Cursor) error
}

// CursorVersion is the serialization version stamped into every Cursor.
const CursorVersion = 1

// Cursor is a serializable stream position. Version and Kind guard
// against resuming a checkpoint onto a different generator; Data holds
// the kind-specific state (RNG states, counters, the in-flight tuple).
// Everything round-trips through JSON without loss — all fields are
// integers or exact-round-trip structs — so a decoded cursor resumes the
// stream byte-identically.
type Cursor struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Pos     uint64          `json:"pos"`
	Data    json.RawMessage `json:"data"`
}

func (c Cursor) check(kind string) error {
	if c.Version != CursorVersion {
		return fmt.Errorf("trace: cursor version %d, want %d", c.Version, CursorVersion)
	}
	if c.Kind != kind {
		return fmt.Errorf("trace: cursor kind %q, want %q", c.Kind, kind)
	}
	return nil
}

func makeCursor(kind string, pos uint64, data any) Cursor {
	raw, err := json.Marshal(data)
	if err != nil {
		// All cursor payloads are plain structs of integers; Marshal
		// cannot fail on them. Panic rather than return a corrupt cursor.
		panic("trace: cursor marshal: " + err.Error())
	}
	return Cursor{Version: CursorVersion, Kind: kind, Pos: pos, Data: raw}
}

// PoolStream draws packets from a PoolTemplate's flow set exactly like a
// Pool, but as a bounded, seekable Stream with a reused payload buffer.
// With a fixed payload length it reproduces Pool.NextPacket's draw order;
// in IMIX mode (fixedLen 0) it reproduces Pool.Frames' order, where the
// length draw and the payload bytes share one RNG stream. The returned
// packet's Payload aliases an internal buffer overwritten by the next
// Next call.
type PoolStream struct {
	flows    []pkt.FiveTuple
	zipf     *sim.Zipf
	zipfRng  *sim.Rand
	rng      *sim.Rand // payload bytes, and IMIX lengths when fixedLen == 0
	fixedLen int
	limit    uint64 // packets to yield; 0 = unbounded
	pos      uint64
	buf      []byte
}

// Stream instantiates the template as a PoolStream whose draws match the
// template's Pool() instances. fixedLen > 0 fixes every payload length
// (NextPacket order); fixedLen == 0 draws IMIX lengths (Frames order).
func (t *PoolTemplate) Stream(fixedLen int) *PoolStream {
	return t.streamSeeded(t.zipfSeed, t.rngSeed, fixedLen)
}

// Shards splits the template into k independent PoolStreams over the same
// flow set. Shard seeds come from sim.DeriveSeed(base, label, "s<i>", …),
// so each shard's sampling and payload streams are pure functions of
// (base, label, shard index) — independent of worker scheduling — and a
// deterministic merge in shard order is reproducible anywhere.
func (t *PoolTemplate) Shards(base uint64, label string, k, fixedLen int) []*PoolStream {
	shards := make([]*PoolStream, k)
	for i := range shards {
		sid := fmt.Sprintf("s%03d", i)
		shards[i] = t.streamSeeded(
			sim.DeriveSeed(base, label, sid, "zipf"),
			sim.DeriveSeed(base, label, sid, "payload"),
			fixedLen,
		)
	}
	return shards
}

func (t *PoolTemplate) streamSeeded(zipfSeed, rngSeed uint64, fixedLen int) *PoolStream {
	zr := sim.NewRand(zipfSeed)
	return &PoolStream{
		flows:    t.flows,
		zipf:     t.zipf.WithRand(zr),
		zipfRng:  zr,
		rng:      sim.NewRand(rngSeed),
		fixedLen: fixedLen,
	}
}

// Limit bounds the stream to n packets total and returns it (builder
// style). Zero means unbounded.
func (s *PoolStream) Limit(n uint64) *PoolStream {
	s.limit = n
	return s
}

// Next yields the next packet, or false once the Limit is reached.
func (s *PoolStream) Next() (int, pkt.Packet, bool) {
	if s.limit > 0 && s.pos >= s.limit {
		return 0, pkt.Packet{}, false
	}
	n := s.fixedLen
	if n == 0 {
		n = IMIXLen(s.rng)
	}
	i := s.zipf.Next()
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	payload := s.buf[:n]
	s.rng.Bytes(payload)
	s.pos++
	return i, pkt.Packet{
		SrcMAC:  pkt.MAC{0x02, 0, 0, 0, byte(i >> 8), byte(i)},
		DstMAC:  pkt.MAC{0x02, 0, 0, 0, 0xFF, 0xFE},
		Tuple:   s.flows[i],
		Payload: payload,
	}, true
}

// Pos returns the number of packets yielded.
func (s *PoolStream) Pos() uint64 { return s.pos }

type poolCursor struct {
	ZipfState    uint64 `json:"zipf_state"`
	PayloadState uint64 `json:"payload_state"`
}

// Cursor captures the stream position: both RNG states plus the packet
// count. The flow set and CDF are construction parameters, not position,
// so a resuming process rebuilds the stream from the same template and
// Seeks.
func (s *PoolStream) Cursor() Cursor {
	return makeCursor("pool", s.pos, poolCursor{
		ZipfState:    s.zipfRng.State(),
		PayloadState: s.rng.State(),
	})
}

// Seek restores a position captured by Cursor on a stream built from the
// same template (and shard seed — the cursor carries the RNG states, so
// mismatched construction shows up as divergent draws, not an error).
func (s *PoolStream) Seek(c Cursor) error {
	if err := c.check("pool"); err != nil {
		return err
	}
	var pc poolCursor
	if err := json.Unmarshal(c.Data, &pc); err != nil {
		return fmt.Errorf("trace: pool cursor: %w", err)
	}
	s.zipfRng.SetState(pc.ZipfState)
	s.rng.SetState(pc.PayloadState)
	s.pos = c.Pos
	return nil
}

type caidaCursor struct {
	RngState   uint64        `json:"rng_state"`
	Elapsed    float64       `json:"elapsed"`
	Target     uint64        `json:"target"`
	TotalFlows uint64        `json:"total_flows"`
	PerFlow    int           `json:"per_flow"`
	Remaining  int           `json:"remaining"`
	CurIdx     int           `json:"cur_idx"`
	Cur        pkt.FiveTuple `json:"cur"`
}

// Cursor captures the arrival process mid-flow: RNG state, horizon,
// counters, and the in-flight tuple with its remaining repeat count.
func (c *CAIDAStream) Cursor() Cursor {
	return makeCursor("caida", c.pos, caidaCursor{
		RngState:   c.rng.State(),
		Elapsed:    c.elapsed,
		Target:     c.target,
		TotalFlows: c.totalFlows,
		PerFlow:    c.perFlow,
		Remaining:  c.remaining,
		CurIdx:     c.curIdx,
		Cur:        c.cur,
	})
}

// Seek restores a position captured by Cursor: the next Next call yields
// exactly the packet the captured stream would have yielded.
func (c *CAIDAStream) Seek(cur Cursor) error {
	if err := cur.check("caida"); err != nil {
		return err
	}
	var cc caidaCursor
	if err := json.Unmarshal(cur.Data, &cc); err != nil {
		return fmt.Errorf("trace: caida cursor: %w", err)
	}
	c.rng.SetState(cc.RngState)
	c.elapsed = cc.Elapsed
	c.target = cc.Target
	c.totalFlows = cc.TotalFlows
	c.perFlow = cc.PerFlow
	c.remaining = cc.Remaining
	c.curIdx = cc.CurIdx
	c.cur = cc.Cur
	c.pos = cur.Pos
	return nil
}

// CAIDAShard returns shard i of k over a CAIDA window of totalFlows
// flows: an independent budget stream covering this shard's slice of the
// flow population (flows split as evenly as possible, earlier shards
// taking the remainder), seeded with sim.DeriveSeed(base, label, "s<i>")
// so the shard's draws depend only on its identity, never on scheduling.
func CAIDAShard(base uint64, label string, i, k int, totalFlows uint64, perFlow int) *CAIDAStream {
	if k < 1 || i < 0 || i >= k {
		panic("trace: CAIDAShard index out of range")
	}
	return NewCAIDABudget(
		sim.DeriveRand(base, label, fmt.Sprintf("s%03d", i)),
		ShardShare(totalFlows, i, k),
		perFlow,
	)
}

// ShardShare returns shard i's flow count when total flows are split
// across k shards: total/k each, with the first total%k shards taking
// one extra so every flow is covered exactly once.
func ShardShare(total uint64, i, k int) uint64 {
	share := total / uint64(k)
	if uint64(i) < total%uint64(k) {
		share++
	}
	return share
}

// Compile-time interface checks: both generators are Streams.
var (
	_ Stream = (*PoolStream)(nil)
	_ Stream = (*CAIDAStream)(nil)
)
