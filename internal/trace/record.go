package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Record/replay: experiments can persist the exact frame sequence they
// generated (a stand-in for the pcap workflows used with real traces) and
// replay it byte-identically later. The format is deliberately minimal:
//
//	magic "SNICTRC1" | uint32 count | count x (uint32 len | frame bytes)
//
// all little-endian.

var recMagic = [8]byte{'S', 'N', 'I', 'C', 'T', 'R', 'C', '1'}

// maxFrame bounds a single recorded frame (jumbo + encap headroom).
const maxFrame = 64 << 10

// SaveFrames writes frames to w.
func SaveFrames(w io.Writer, frames [][]byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(recMagic[:]); err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(frames)))
	if _, err := bw.Write(n[:]); err != nil {
		return err
	}
	for i, f := range frames {
		if len(f) > maxFrame {
			return fmt.Errorf("trace: frame %d is %d bytes (max %d)", i, len(f), maxFrame)
		}
		binary.LittleEndian.PutUint32(n[:], uint32(len(f)))
		if _, err := bw.Write(n[:]); err != nil {
			return err
		}
		if _, err := bw.Write(f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFrames reads a trace written by SaveFrames.
func LoadFrames(r io.Reader) ([][]byte, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if magic != recMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var n [4]byte
	if _, err := io.ReadFull(br, n[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(n[:])
	// Don't trust the header for preallocation: a corrupt count would
	// otherwise allocate gigabytes before the first frame read fails.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	frames := make([][]byte, 0, capHint)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return nil, fmt.Errorf("trace: frame %d length: %w", i, err)
		}
		l := binary.LittleEndian.Uint32(n[:])
		if l > maxFrame {
			return nil, fmt.Errorf("trace: frame %d claims %d bytes", i, l)
		}
		f := make([]byte, l)
		if _, err := io.ReadFull(br, f); err != nil {
			return nil, fmt.Errorf("trace: frame %d body: %w", i, err)
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// Frames generates n marshaled wire frames from the pool (convenience for
// recording and for feeding pktio.Switch.Deliver in examples/benches).
func (p *Pool) Frames(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		// Marshal copies the payload into the frame, so the pool's
		// reused buffer never escapes.
		_, pk := p.NextPacketBuf(IMIXLen(p.rng))
		out[i] = pk.Marshal()
	}
	return out
}
