package obs

import (
	"sort"
	"sync"
)

// Record is one trace entry: a span (Dur cycles starting at Start) or an
// instant event (Instant, Dur 0). Stamps are simulated cycles from the
// track's Clock, never wall time.
type Record struct {
	Component string
	Name      string
	Start     uint64
	Dur       uint64
	Instant   bool
}

// Tracer collects the records of one track. A track models one serial
// activity (a device's trusted-instruction stream, one engine job), so
// records append in a well-defined order even when many tracks are
// populated concurrently.
//
// A Tracer is also the flight recorder: with a capacity set (via
// Registry.SetTraceCapacity or SetCapacity), the track retains only its
// most recent cap records in a ring, evicting the oldest. Retention is
// deterministic — which records survive is a pure function of the
// track's append sequence, never of scheduling — so bounded traces stay
// byte-identical at any worker count, and exports are unchanged from
// the unbounded form whenever capacity was never exceeded. Evictions
// are counted and surfaced as a dropped_spans counter per track in the
// metric dump and as annotations on the trace exports, so truncation is
// always visible.
type Tracer struct {
	mu      sync.Mutex
	track   string
	cap     int      // 0 = unbounded
	recs    []Record // ring once len(recs) == cap and cap > 0
	next    int      // ring write index, meaningful once wrapped
	dropped uint64   // records evicted by the ring
}

// Track returns the track name ("-" placeholder on a nil tracer).
func (t *Tracer) Track() string {
	if t == nil {
		return "-"
	}
	return t.track
}

// SetCapacity bounds the track to keep-last-n records (0 restores
// unbounded collection). If more than n records are already retained,
// the oldest are evicted immediately and counted as dropped.
func (t *Tracer) SetCapacity(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	recs := t.orderedLocked()
	if n > 0 && len(recs) > n {
		t.dropped += uint64(len(recs) - n)
		recs = recs[len(recs)-n:]
	}
	t.cap = n
	t.recs = recs
	t.next = 0
	if n > 0 && len(t.recs) == n {
		t.next = 0 // ring full: next append overwrites the oldest slot
	}
}

// append adds one record, evicting the oldest when the ring is full.
func (t *Tracer) append(rec Record) {
	t.mu.Lock()
	if t.cap > 0 && len(t.recs) == t.cap {
		t.recs[t.next] = rec
		t.next++
		if t.next == t.cap {
			t.next = 0
		}
		t.dropped++
	} else {
		t.recs = append(t.recs, rec)
	}
	t.mu.Unlock()
}

// Span records a completed span of dur cycles starting at start. Safe on
// a nil handle.
func (t *Tracer) Span(component, name string, start, dur uint64) {
	if t == nil {
		return
	}
	t.append(Record{
		Component: sanitize(component),
		Name:      sanitize(name),
		Start:     start,
		Dur:       dur,
	})
}

// Event records an instant event at cycle at. Safe on a nil handle.
func (t *Tracer) Event(component, name string, at uint64) {
	if t == nil {
		return
	}
	t.append(Record{
		Component: sanitize(component),
		Name:      sanitize(name),
		Start:     at,
		Instant:   true,
	})
}

// orderedLocked reconstructs append order from the ring. Callers hold
// t.mu; the returned slice is freshly allocated.
func (t *Tracer) orderedLocked() []Record {
	out := make([]Record, 0, len(t.recs))
	if t.cap > 0 && len(t.recs) == t.cap {
		out = append(out, t.recs[t.next:]...)
		out = append(out, t.recs[:t.next]...)
		return out
	}
	return append(out, t.recs...)
}

// Records returns a fresh copy of the track's retained records, ordered
// by cycle stamp first and insertion order second (a stable sort, so
// records sharing a start cycle keep their append order). For the
// monotone clocks every instrumented component uses, this is exactly
// append order; the guarantee makes concurrent callers and resumable
// tooling independent of how the copy was assembled. Reader API: tools
// and tests only.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.orderedLocked()
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped returns how many records the flight recorder has evicted from
// this track (0 while unbounded or below capacity). Reader API: tools
// and tests only.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// retained reports the number of records currently held, for the
// capacity-pinned tests.
func (t *Tracer) retained() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// CyclesPerMS converts the simulator's millisecond-denominated rate
// model to the 1.2 GHz cycle domain the timing cores use
// (cpu.DefaultLatencies), so span stamps and Figure 6 rows are two views
// of the same quantity.
const CyclesPerMS = 1_200_000

// MSToCycles converts a simulated-milliseconds duration to cycles,
// rounding half away from zero.
func MSToCycles(ms float64) uint64 {
	if ms <= 0 {
		return 0
	}
	return uint64(ms*CyclesPerMS + 0.5)
}

// Clock is a simulated cycle counter for stamping trace records. The
// zero value reads cycle zero; devices advance it by each modeled
// latency. A nil *Clock reads zero and ignores advances, matching the
// detached-collector convention.
type Clock struct{ cycle uint64 }

// Now returns the current cycle.
func (c *Clock) Now() uint64 {
	if c == nil {
		return 0
	}
	return c.cycle
}

// Tick advances the clock by dur cycles and returns the cycle the
// interval started at — the natural shape for "this phase just took
// dur": Span(component, name, clk.Tick(dur), dur).
func (c *Clock) Tick(dur uint64) uint64 {
	if c == nil {
		return 0
	}
	start := c.cycle
	c.cycle += dur
	return start
}
