package obs

import "sync"

// Record is one trace entry: a span (Dur cycles starting at Start) or an
// instant event (Instant, Dur 0). Stamps are simulated cycles from the
// track's Clock, never wall time.
type Record struct {
	Component string
	Name      string
	Start     uint64
	Dur       uint64
	Instant   bool
}

// Tracer collects the records of one track. A track models one serial
// activity (a device's trusted-instruction stream, one engine job), so
// records append in a well-defined order even when many tracks are
// populated concurrently.
type Tracer struct {
	mu    sync.Mutex
	track string
	recs  []Record
}

// Track returns the track name ("-" placeholder on a nil tracer).
func (t *Tracer) Track() string {
	if t == nil {
		return "-"
	}
	return t.track
}

// Span records a completed span of dur cycles starting at start. Safe on
// a nil handle.
func (t *Tracer) Span(component, name string, start, dur uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recs = append(t.recs, Record{
		Component: sanitize(component),
		Name:      sanitize(name),
		Start:     start,
		Dur:       dur,
	})
	t.mu.Unlock()
}

// Event records an instant event at cycle at. Safe on a nil handle.
func (t *Tracer) Event(component, name string, at uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recs = append(t.recs, Record{
		Component: sanitize(component),
		Name:      sanitize(name),
		Start:     at,
		Instant:   true,
	})
	t.mu.Unlock()
}

// Records returns a copy of the track's records in append order (reader
// API: tools and tests only).
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.recs))
	copy(out, t.recs)
	return out
}

// CyclesPerMS converts the simulator's millisecond-denominated rate
// model to the 1.2 GHz cycle domain the timing cores use
// (cpu.DefaultLatencies), so span stamps and Figure 6 rows are two views
// of the same quantity.
const CyclesPerMS = 1_200_000

// MSToCycles converts a simulated-milliseconds duration to cycles,
// rounding half away from zero.
func MSToCycles(ms float64) uint64 {
	if ms <= 0 {
		return 0
	}
	return uint64(ms*CyclesPerMS + 0.5)
}

// Clock is a simulated cycle counter for stamping trace records. The
// zero value reads cycle zero; devices advance it by each modeled
// latency. A nil *Clock reads zero and ignores advances, matching the
// detached-collector convention.
type Clock struct{ cycle uint64 }

// Now returns the current cycle.
func (c *Clock) Now() uint64 {
	if c == nil {
		return 0
	}
	return c.cycle
}

// Tick advances the clock by dur cycles and returns the cycle the
// interval started at — the natural shape for "this phase just took
// dur": Span(component, name, clk.Tick(dur), dur).
func (c *Clock) Tick(dur uint64) uint64 {
	if c == nil {
		return 0
	}
	start := c.cycle
	c.cycle += dur
	return start
}
