package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ChromeEvent is one entry of the Chrome trace-event format (the
// chrome://tracing and Perfetto JSON schema). Spans use Ph "X" with
// TS/Dur, instant events Ph "i", and track names ride on Ph "M"
// process_name metadata. TS and Dur are simulated cycles, not
// microseconds; the file's otherData says so.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceFile is the object form of a Chrome trace-event file.
type TraceFile struct {
	TraceEvents []ChromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// trackSnapshot pairs a track name with a copy of its records, taken in
// name order so exports never depend on map iteration or on which
// worker populated a track first. dropped carries the flight recorder's
// eviction count so truncated exports announce themselves.
type trackSnapshot struct {
	track   string
	recs    []Record
	dropped uint64
}

func (r *Registry) snapshotTracks() []trackSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := r.sortedTracks()
	tracers := make([]*Tracer, len(names))
	for i, n := range names {
		tracers[i] = r.tracers[n]
	}
	r.mu.Unlock()
	out := make([]trackSnapshot, len(names))
	for i, n := range names {
		out[i] = trackSnapshot{track: n, recs: tracers[i].Records(), dropped: tracers[i].Dropped()}
	}
	return out
}

// ChromeTrace exports every track as Chrome trace-event JSON: one pid
// per track (in name order), a process_name metadata event carrying the
// track name, then the track's records in append order. Byte-identical
// for identical record sets (reader API: tools and tests only).
func (r *Registry) ChromeTrace() ([]byte, error) {
	tf := TraceFile{
		TraceEvents: []ChromeEvent{},
		OtherData: map[string]string{
			"format":   "snic-trace v1",
			"timeUnit": fmt.Sprintf("cycles (%d cycles per simulated ms)", CyclesPerMS),
		},
	}
	for i, ts := range r.snapshotTracks() {
		pid := i + 1
		meta := ChromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]string{"name": ts.track},
		}
		if ts.dropped > 0 {
			meta.Args["dropped_spans"] = fmt.Sprintf("%d", ts.dropped)
		}
		tf.TraceEvents = append(tf.TraceEvents, meta)
		for _, rec := range ts.recs {
			ev := ChromeEvent{
				Name: rec.Name,
				Cat:  rec.Component,
				Ph:   "X",
				TS:   rec.Start,
				Dur:  rec.Dur,
				PID:  pid,
				TID:  1,
			}
			if rec.Instant {
				ev.Ph = "i"
				ev.S = "t"
				ev.Dur = 0
			}
			tf.TraceEvents = append(tf.TraceEvents, ev)
		}
	}
	return json.MarshalIndent(tf, "", "  ")
}

// TraceText renders every track as plain text, one indented line per
// record: spans as "[start +dur]", instants as "@ at". Same ordering
// guarantees as ChromeTrace (reader API: tools and tests only).
func (r *Registry) TraceText() string {
	var b strings.Builder
	b.WriteString("# snic-trace v1\n")
	for _, ts := range r.snapshotTracks() {
		if ts.dropped > 0 {
			fmt.Fprintf(&b, "track %s (flight recorder dropped %d)\n", ts.track, ts.dropped)
		} else {
			fmt.Fprintf(&b, "track %s\n", ts.track)
		}
		for _, rec := range ts.recs {
			if rec.Instant {
				fmt.Fprintf(&b, "  @ %10d           %s %s\n", rec.Start, rec.Component, rec.Name)
				continue
			}
			fmt.Fprintf(&b, "  [ %10d +%8d] %s %s\n", rec.Start, rec.Dur, rec.Component, rec.Name)
		}
	}
	return b.String()
}
