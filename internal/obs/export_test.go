package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// populate fills a registry with two tracks; order controls which track
// is interned first, which must not show in exports.
func populate(r *Registry, reverse bool) {
	tracks := []string{"fig6/DPI", "fig6/FW"}
	if reverse {
		tracks = []string{"fig6/FW", "fig6/DPI"}
	}
	for _, name := range tracks {
		tr := r.Tracer(name)
		var clk Clock
		tr.Span("snic", "launch/tlb_setup", clk.Tick(1200), 1200)
		tr.Span("snic", "launch/sha_digest", clk.Tick(4800), 4800)
		tr.Event("snic", "nf_live", clk.Now())
	}
}

// TestChromeTraceRoundTrip: the export is valid JSON in the Chrome
// trace-event schema — json.Unmarshal recovers every span and instant
// with its cycle stamps — and is byte-identical regardless of the order
// tracks were interned in.
func TestChromeTraceRoundTrip(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	populate(a, false)
	populate(b, true)
	dataA, err := a.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	dataB, err := b.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dataA, dataB) {
		t.Fatal("trace bytes depend on track interning order")
	}

	var tf TraceFile
	if err := json.Unmarshal(dataA, &tf); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v", err)
	}
	if tf.OtherData["format"] != "snic-trace v1" {
		t.Fatalf("otherData.format = %q", tf.OtherData["format"])
	}
	// Two tracks × (1 metadata + 2 spans + 1 instant).
	if len(tf.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(tf.TraceEvents))
	}
	// Tracks export in name order: DPI before FW.
	meta := tf.TraceEvents[0]
	if meta.Ph != "M" || meta.PID != 1 || meta.Args["name"] != "fig6/DPI" {
		t.Fatalf("first event = %+v, want pid-1 process_name fig6/DPI", meta)
	}
	span := tf.TraceEvents[1]
	if span.Ph != "X" || span.Name != "launch/tlb_setup" || span.Cat != "snic" ||
		span.TS != 0 || span.Dur != 1200 || span.PID != 1 || span.TID != 1 {
		t.Fatalf("first span = %+v", span)
	}
	instant := tf.TraceEvents[3]
	if instant.Ph != "i" || instant.S != "t" || instant.TS != 6000 || instant.Dur != 0 {
		t.Fatalf("instant = %+v", instant)
	}
	if tf.TraceEvents[4].Args["name"] != "fig6/FW" || tf.TraceEvents[4].PID != 2 {
		t.Fatalf("second track metadata = %+v", tf.TraceEvents[4])
	}
}

// TestTraceText pins the plain-text rendering byte for byte.
func TestTraceText(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer("fig6/FW")
	tr.Span("snic", "launch/denylist", 100, 250)
	tr.Event("snic", "nf_live", 350)
	want := "# snic-trace v1\n" +
		"track fig6/FW\n" +
		"  [        100 +     250] snic launch/denylist\n" +
		"  @        350           snic nf_live\n"
	if got := r.TraceText(); got != want {
		t.Fatalf("TraceText:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
