package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestProgressNilSafe: a detached progress collector no-ops every
// writer and snapshots to the unknown state, matching the obs handle
// convention.
func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Begin("x", 4, 100)
	p.JobDone(false)
	p.Pos(0, 10)
	p.Saved()
	s := p.Snapshot()
	if s.JobsTotal != 0 || s.Items != 0 || s.Active {
		t.Fatalf("nil progress accumulated state: %+v", s)
	}
	if s.EtaSec != -1 || s.SinceSaveSec != -1 {
		t.Fatalf("nil snapshot unknowns = %v/%v, want -1/-1", s.EtaSec, s.SinceSaveSec)
	}
}

// TestProgressSnapshot drives a run against a fake wall (10 ms per
// read) and checks the derived rates, ETA, and save lag.
func TestProgressSnapshot(t *testing.T) {
	p := NewProgress(NewWall(fakeClock(10)))
	p.Begin("replay", 4, 1000)
	p.Pos(0, 100)
	p.Pos(1, 150)
	p.Pos(0, 200) // positions are absolute, not deltas
	p.JobDone(false)
	p.JobDone(true)
	p.Saved()
	s := p.Snapshot()
	if s.Experiment != "replay" || s.JobsTotal != 4 || s.JobsDone != 2 || s.JobsFailed != 1 {
		t.Fatalf("job counts: %+v", s)
	}
	if s.Items != 350 || s.ItemsTotal != 1000 {
		t.Fatalf("items = %d/%d, want 350/1000", s.Items, s.ItemsTotal)
	}
	if !s.Active {
		t.Fatal("run with pending jobs not active")
	}
	// Begin and Saved each consumed one clock step; Snapshot reads two
	// more (elapsed, save lag): elapsed = 2 steps = 20 ms at snapshot.
	if s.ElapsedSec <= 0 || s.ItemsPerSec <= 0 {
		t.Fatalf("rates not derived: %+v", s)
	}
	if s.EtaSec <= 0 {
		t.Fatalf("eta = %v, want > 0 with a target and a rate", s.EtaSec)
	}
	if s.SinceSaveSec < 0 {
		t.Fatalf("save lag = %v, want >= 0 after Saved", s.SinceSaveSec)
	}
	// Out-of-range positions are dropped, not panics.
	p.Pos(-1, 5)
	p.Pos(99, 5)
	if got := p.Snapshot().Items; got != 350 {
		t.Fatalf("out-of-range Pos changed items: %d", got)
	}
	// Finishing every job deactivates the run.
	p.JobDone(false)
	p.JobDone(false)
	if s := p.Snapshot(); s.Active {
		t.Fatal("finished run still active")
	}
}

// TestProgressSnapshotJSON pins the wire shape the snicd /v1/progress
// endpoint serves.
func TestProgressSnapshotJSON(t *testing.T) {
	p := NewProgress(NewWall(fakeClock(10)))
	p.Begin("replay", 2, 100)
	raw, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"experiment"`, `"jobs_total"`, `"jobs_done"`, `"jobs_failed"`,
		`"items"`, `"items_total"`, `"elapsed_sec"`, `"items_per_sec"`,
		`"eta_sec"`, `"since_save_sec"`, `"active"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("snapshot JSON missing %s: %s", field, raw)
		}
	}
}

// TestProgressString: the -progress line includes the load-bearing
// numbers and renders something sane with no target.
func TestProgressString(t *testing.T) {
	p := NewProgress(NewWall(fakeClock(10)))
	p.Begin("replay", 4, 1000)
	p.Pos(0, 350)
	p.JobDone(false)
	line := p.Snapshot().String()
	for _, want := range []string{"replay", "1/4", "350/1000", "eta"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	if got := (ProgressSnapshot{}).String(); !strings.HasPrefix(got, "progress -: jobs 0/0") {
		t.Errorf("zero snapshot line = %q", got)
	}
	// Begin resets everything for the next sweep.
	p.Begin("fig5a", 2, 0)
	if s := p.Snapshot(); s.Items != 0 || s.JobsDone != 0 || s.Experiment != "fig5a" {
		t.Fatalf("Begin did not reset: %+v", s)
	}
}
