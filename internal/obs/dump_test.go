package obs

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestParseDumpRoundTrip: DumpMetrics → ParseDump is lossless for every
// metric kind, including histogram expansion.
func TestParseDumpRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label{Device: "nic0", Owner: "nf0", Component: "tlb", Name: "fills"}).Add(42)
	r.Gauge(Label{Device: "nic0", Owner: "-", Component: "accel/DPI", Name: "bound_clusters"}).Set(-3)
	h := r.Histogram(Label{Device: "nic0", Owner: "nf0", Component: "pktio", Name: "frame_bytes"})
	h.Observe(64)
	h.Observe(1500)

	got, err := ParseDump(strings.NewReader(r.DumpMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"counter nic0 nf0 tlb fills":                   42,
		"gauge nic0 - accel/DPI bound_clusters":        -3,
		"hist_count nic0 nf0 pktio frame_bytes":        2,
		"hist_sum nic0 nf0 pktio frame_bytes":          1564,
		"hist_bucket nic0 nf0 pktio frame_bytes/bit07": 1, // 64 → bit length 7
		"hist_bucket nic0 nf0 pktio frame_bytes/bit11": 1, // 1500 → bit length 11
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip = %v, want %v", got, want)
	}
}

// TestParseDumpErrors: snicstat exits 2 on malformed input rather than
// mis-diffing, so each malformation must be an error, and each error
// must name the offending line so a corrupted multi-megabyte dump is
// debuggable.
func TestParseDumpErrors(t *testing.T) {
	for _, tc := range []struct {
		name    string
		in      string
		wantErr string
	}{
		{"empty", "", "empty input"},
		{"bad header", "# not-metrics v9\ncounter a b c d 1\n", "bad header"},
		{"short line", "# snic-metrics v1\ncounter a b c 1\n", "line 2: want 6 fields"},
		{"long line", "# snic-metrics v1\ncounter a b c d 1 extra\n", "line 2: want 6 fields"},
		{"bad kind", "# snic-metrics v1\nhist a b c d 1\n", "line 2: unknown sample kind"},
		{"bad value", "# snic-metrics v1\ncounter a b c d xyz\n", "line 2: bad value"},
		{"float value", "# snic-metrics v1\ncounter a b c d 1.5\n", "line 2: bad value"},
		{"duplicate", "# snic-metrics v1\ncounter a b c d 1\n\ncounter a b c d 2\n", "line 4: duplicate series"},
		{"late error", "# snic-metrics v1\ncounter a b c d 1\ngauge a b c d 2\nbogus a b c d 3\n", "line 4: unknown sample kind"},
	} {
		_, err := ParseDump(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ParseDump accepted %q", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	// Comments and blank lines beyond the header are tolerated.
	ok := "# snic-metrics v1\n\n# a comment\ncounter a b c d 1\n"
	if m, err := ParseDump(strings.NewReader(ok)); err != nil || len(m) != 1 {
		t.Fatalf("ParseDump with comments = %v, %v", m, err)
	}
}

// TestDiffGolden pins the snicstat rendering: sorted union of series,
// "-" on missing sides, signed deltas, and the changed count. The
// golden covers -all mode; the focused mode must be its subset.
func TestDiffGolden(t *testing.T) {
	old := map[string]int64{
		"counter nic0 nf0 cache/L2 hits":   100,
		"counter nic0 nf0 cache/L2 misses": 7,
		"counter nic0 nf1 tlb fills":       3,
	}
	new := map[string]int64{
		"counter nic0 nf0 cache/L2 hits":   100,
		"counter nic0 nf0 cache/L2 misses": 12,
		"gauge nic0 - snic live_nfs":       2,
	}

	all, changedAll := Diff(old, new, true)
	focused, changed := Diff(old, new, false)
	if changedAll != changed || changed != 3 {
		t.Fatalf("changed = %d/%d, want 3 (miss delta, one removed, one added)", changedAll, changed)
	}
	for _, line := range strings.Split(strings.TrimSuffix(focused, "\n"), "\n")[1:] {
		if !strings.Contains(all, line) {
			t.Errorf("focused line %q missing from -all rendering", line)
		}
	}
	if strings.Contains(focused, "hits") {
		t.Error("focused diff rendered an unchanged series")
	}

	goldenPath := filepath.Join("testdata", "diff.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(all), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if all != string(want) {
		t.Errorf("diff rendering diverges from golden\n--- got ---\n%s--- want ---\n%s", all, want)
	}
}

// TestDiffIdentical: no differences renders no data rows and reports
// zero changed.
func TestDiffIdentical(t *testing.T) {
	m := map[string]int64{"counter a b c d": 1}
	out, changed := Diff(m, m, false)
	if changed != 0 {
		t.Fatalf("changed = %d, want 0", changed)
	}
	if lines := strings.Count(out, "\n"); lines != 1 {
		t.Fatalf("focused identical diff = %q, want header only", out)
	}
}
