package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// promName maps a series name into the Prometheus metric-name charset
// ([a-zA-Z0-9_:], no leading digit) under the repo-wide snic_ prefix.
// The mapping is injective enough in practice: dump names use the same
// [/._-] separators, which all become underscores.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("snic_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders a Label as an exposition label set with the keys
// in alphabetical order (component, device, owner). extra, when
// non-empty, is appended verbatim as a final pair — the histogram le
// label. The rendering is a pure function of the label, which is what
// keeps the exposition byte-stable.
func promLabels(l Label, extra string) string {
	var b strings.Builder
	b.WriteByte('{')
	fmt.Fprintf(&b, "component=%q,device=%q,owner=%q",
		promEscape(l.Component), promEscape(l.Device), promEscape(l.Owner))
	if extra != "" {
		b.WriteByte(',')
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// promFamily is one metric family during rendering: its TYPE, a HELP
// line, and the series lines in a deterministic order.
type promFamily struct {
	typ   string
	help  string
	lines []string
}

// bucketUpper returns the inclusive upper bound of power-of-two bucket
// k: 0 for the zero bucket, 2^k-1 otherwise (wrapping to MaxUint64 for
// k=64 — exactly the largest representable sample).
func bucketUpper(k int) uint64 {
	if k == 0 {
		return 0
	}
	return (uint64(1) << uint(k)) - 1
}

// PromText renders every registered series in the Prometheus text
// exposition format (text/plain; version=0.0.4): counters as
// <name>_total, gauges bare, and power-of-two histograms as cumulative
// <name>_bucket{le=...}/<name>_sum/<name>_count, with bucket upper
// bounds 0, 1, 3, 7, ... 2^k-1. Families sort by metric name and series
// within a family by label, so output is byte-identical for identical
// aggregate values regardless of worker count or registration order.
// Flight-recorder truncation shows up as snic_dropped_spans_total, one
// series per truncated track. A nil registry renders nothing. (Reader
// API: tools and tests only.)
func (r *Registry) PromText() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counterLabels := r.sortedCounterLabels()
	gaugeLabels := r.sortedGaugeLabels()
	histLabels := r.sortedHistLabels()
	tracks := r.sortedTracks()
	counters := make([]*Counter, len(counterLabels))
	for i, l := range counterLabels {
		counters[i] = r.counters[l]
	}
	gauges := make([]*Gauge, len(gaugeLabels))
	for i, l := range gaugeLabels {
		gauges[i] = r.gauges[l]
	}
	hists := make([]*Histogram, len(histLabels))
	for i, l := range histLabels {
		hists[i] = r.hists[l]
	}
	tracers := make([]*Tracer, len(tracks))
	for i, n := range tracks {
		tracers[i] = r.tracers[n]
	}
	r.mu.Unlock()

	fams := make(map[string]*promFamily)
	family := func(name, typ, origin string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ, help: fmt.Sprintf("snic %s %s", typ, origin)}
			fams[name] = f
		}
		return f
	}
	for i, l := range counterLabels {
		f := family(promName(l.Name)+"_total", "counter", l.Name)
		f.lines = append(f.lines, fmt.Sprintf("%s%s %d",
			promName(l.Name)+"_total", promLabels(l, ""), counters[i].Value()))
	}
	for i, l := range gaugeLabels {
		f := family(promName(l.Name), "gauge", l.Name)
		f.lines = append(f.lines, fmt.Sprintf("%s%s %d",
			promName(l.Name), promLabels(l, ""), gauges[i].Value()))
	}
	for i, l := range histLabels {
		name := promName(l.Name)
		f := family(name, "histogram", l.Name)
		b := hists[i].Buckets()
		var cum uint64
		for k := 0; k < histBuckets; k++ {
			if b[k] == 0 {
				continue
			}
			cum += b[k]
			le := strconv.FormatUint(bucketUpper(k), 10)
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
				name, promLabels(l, `le="`+le+`"`), cum))
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
			name, promLabels(l, `le="+Inf"`), hists[i].Count()))
		f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %d", name, promLabels(l, ""), hists[i].Sum()))
		f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", name, promLabels(l, ""), hists[i].Count()))
	}
	for i, track := range tracks {
		d := tracers[i].Dropped()
		if d == 0 {
			continue
		}
		l := Label{Device: "trace", Owner: "-", Component: track, Name: "dropped_spans"}
		f := family("snic_dropped_spans_total", "counter", "dropped_spans")
		f.lines = append(f.lines, fmt.Sprintf("snic_dropped_spans_total%s %d", promLabels(l, ""), d))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var out strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&out, "# HELP %s %s\n# TYPE %s %s\n", n, f.help, n, f.typ)
		// Histogram series keep their per-label emission order (buckets
		// ascending, then sum, then count); scalar families sort.
		if f.typ != "histogram" {
			sort.Strings(f.lines)
		}
		for _, line := range f.lines {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}
