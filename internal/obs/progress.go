package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Progress is the live-run telemetry collector: a quarantined,
// wall-clock-fed view of how far a sweep has gotten, for humans
// watching a long replay — never for the simulation. Like Wall (whose
// readings it aggregates) it lives outside every deterministic export:
// nothing in a metrics dump, trace file, or experiment result derives
// from it, and the sniclint transitive-determinism check forbids
// simulation-path code from calling the Snapshot reader.
//
// Writers (Begin, JobDone, Pos, Saved) are nil-safe no-ops like every
// other obs handle, so the engine publishes unconditionally and pays
// one branch when no one is watching.
type Progress struct {
	mu         sync.Mutex
	wall       *Wall
	experiment string
	jobsTotal  int
	jobsDone   int
	jobsFailed int
	target     uint64 // expected total items (0 = unknown)
	pos        []uint64
	start      time.Time
	lastSave   time.Time
	active     bool
}

// NewProgress returns a collector reading wall time from w (inject a
// fake in tests; production callers pass engine.DefaultWall so no new
// time.Now site appears).
func NewProgress(w *Wall) *Progress {
	return &Progress{wall: w}
}

// Begin (re)arms the collector for a run of jobs total jobs expected to
// draw target items (0 when unknown). Safe on a nil handle.
func (p *Progress) Begin(experiment string, jobs int, target uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.experiment = experiment
	p.jobsTotal = jobs
	p.jobsDone, p.jobsFailed = 0, 0
	p.target = target
	p.pos = make([]uint64, jobs)
	p.start = p.wall.Start()
	p.lastSave = time.Time{}
	p.active = true
}

// JobDone records one finished job. Safe on a nil handle.
func (p *Progress) JobDone(failed bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.jobsDone++
	if failed {
		p.jobsFailed++
	}
	if p.jobsDone >= p.jobsTotal {
		p.active = false
	}
}

// Pos records job's current item position (for replay shards, the
// stream position: packets drawn). Positions are absolute, so calling
// with the same value twice is idempotent. Safe on a nil handle.
func (p *Progress) Pos(job int, pos uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if job >= 0 && job < len(p.pos) {
		p.pos[job] = pos
	}
}

// Saved records a checkpoint save, so watchers can see how much work a
// kill would lose. Safe on a nil handle.
func (p *Progress) Saved() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastSave = p.wall.Start()
}

// ProgressSnapshot is one observation of a run, shaped for the snicd
// /v1/progress JSON response and the snicbench -progress line. Items
// counts only this process's draws (a resumed sweep skips finished
// shards), so ItemsPerSec reflects live throughput while EtaSec can
// overestimate right after a resume. EtaSec and SinceSaveSec are -1
// when unknown (no target / no rate / no save yet).
type ProgressSnapshot struct {
	Experiment   string  `json:"experiment"`
	JobsTotal    int     `json:"jobs_total"`
	JobsDone     int     `json:"jobs_done"`
	JobsFailed   int     `json:"jobs_failed"`
	Items        uint64  `json:"items"`
	ItemsTotal   uint64  `json:"items_total"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	ItemsPerSec  float64 `json:"items_per_sec"`
	EtaSec       float64 `json:"eta_sec"`
	SinceSaveSec float64 `json:"since_save_sec"`
	Active       bool    `json:"active"`
}

// Snapshot returns the current observation (reader API: tools, the
// fleet API handler, and tests only — never the simulation path).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{EtaSec: -1, SinceSaveSec: -1}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Experiment:   p.experiment,
		JobsTotal:    p.jobsTotal,
		JobsDone:     p.jobsDone,
		JobsFailed:   p.jobsFailed,
		ItemsTotal:   p.target,
		EtaSec:       -1,
		SinceSaveSec: -1,
		Active:       p.active,
	}
	for _, v := range p.pos {
		s.Items += v
	}
	if !p.start.IsZero() {
		s.ElapsedSec = p.wall.Since(p.start).Seconds()
	}
	if s.ElapsedSec > 0 {
		s.ItemsPerSec = float64(s.Items) / s.ElapsedSec
	}
	if p.target > 0 && s.ItemsPerSec > 0 && s.Items < p.target {
		s.EtaSec = float64(p.target-s.Items) / s.ItemsPerSec
	}
	if !p.lastSave.IsZero() {
		s.SinceSaveSec = p.wall.Since(p.lastSave).Seconds()
	}
	return s
}

// String renders the snapshot as the one-line form snicbench -progress
// prints: pure formatting of already-read values, usable anywhere.
func (s ProgressSnapshot) String() string {
	var b strings.Builder
	name := s.Experiment
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(&b, "progress %s: jobs %d/%d", name, s.JobsDone, s.JobsTotal)
	if s.JobsFailed > 0 {
		fmt.Fprintf(&b, " (%d failed)", s.JobsFailed)
	}
	if s.ItemsTotal > 0 {
		fmt.Fprintf(&b, " items %d/%d (%.1f%%)", s.Items, s.ItemsTotal,
			100*float64(s.Items)/float64(s.ItemsTotal))
	} else if s.Items > 0 {
		fmt.Fprintf(&b, " items %d", s.Items)
	}
	if s.ItemsPerSec > 0 {
		fmt.Fprintf(&b, " %.0f/s", s.ItemsPerSec)
	}
	if s.EtaSec >= 0 {
		fmt.Fprintf(&b, " eta %s", (time.Duration(s.EtaSec * float64(time.Second))).Round(time.Second))
	}
	if s.SinceSaveSec >= 0 {
		fmt.Fprintf(&b, " saved %.1fs ago", s.SinceSaveSec)
	}
	if !s.Active && s.JobsTotal > 0 && s.JobsDone >= s.JobsTotal {
		b.WriteString(" done")
	}
	return b.String()
}
