package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// dumpHeader versions the metric dump format; snicstat refuses files it
// does not recognise rather than mis-diffing them.
const dumpHeader = "# snic-metrics v1"

// sample is one rendered dump line: a kind tag, the series label, and a
// single integer value. Histograms expand to several samples (count,
// sum, and one per populated bucket) so every line stays independently
// diffable.
type sample struct {
	kind  string
	label Label
	value int64
}

func (s sample) key() string {
	return s.kind + " " + s.label.Device + " " + s.label.Owner + " " +
		s.label.Component + " " + s.label.Name
}

// snapshot collects every registered series under the registry lock and
// returns the dump lines fully sorted. Map iteration only ever gathers
// keys; ordering comes from the sort.
func (r *Registry) snapshot() []sample {
	r.mu.Lock()
	counters := r.sortedCounterLabels()
	gauges := r.sortedGaugeLabels()
	hists := r.sortedHistLabels()
	var out []sample
	for _, l := range counters {
		out = append(out, sample{"counter", l, int64(r.counters[l].Value())})
	}
	for _, l := range gauges {
		out = append(out, sample{"gauge", l, r.gauges[l].Value()})
	}
	for _, l := range hists {
		h := r.hists[l]
		out = append(out, sample{"hist_count", l, int64(h.Count())})
		out = append(out, sample{"hist_sum", l, int64(h.Sum())})
		b := h.Buckets()
		for bit, n := range b {
			if n == 0 {
				continue
			}
			bl := l
			bl.Name = fmt.Sprintf("%s/bit%02d", l.Name, bit)
			out = append(out, sample{"hist_bucket", bl, int64(n)})
		}
	}
	// Flight-recorder truncation: any track that evicted records dumps a
	// dropped_spans counter, so a bounded run can never silently pass as
	// a complete trace. Tracks that dropped nothing emit nothing, keeping
	// the dump byte-identical to the unbounded form below capacity.
	tracks := r.sortedTracks()
	tracers := make([]*Tracer, len(tracks))
	for i, name := range tracks {
		tracers[i] = r.tracers[name]
	}
	r.mu.Unlock()
	for i, name := range tracks {
		if d := tracers[i].Dropped(); d > 0 {
			out = append(out, sample{"counter", Label{
				Device: "trace", Owner: "-", Component: name, Name: "dropped_spans",
			}, int64(d)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// DumpMetrics renders every registered series as sorted
// "<kind> <device> <owner> <component> <name> <value>" lines under a
// versioned header. The rendering is byte-identical for identical
// aggregate values regardless of worker count or registration order
// (reader API: tools and tests only). A nil registry dumps the bare
// header.
func (r *Registry) DumpMetrics() string {
	var b strings.Builder
	b.WriteString(dumpHeader)
	b.WriteByte('\n')
	if r == nil {
		return b.String()
	}
	for _, s := range r.snapshot() {
		fmt.Fprintf(&b, "%s %d\n", s.key(), s.value)
	}
	return b.String()
}

// ParseDump reads a DumpMetrics rendering back into a map from series
// key ("kind device owner component name") to value. Comment lines
// beyond the required version header are ignored.
func ParseDump(rd io.Reader) (map[string]int64, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("empty input: want %q header", dumpHeader)
	}
	if first := strings.TrimSpace(sc.Text()); first != dumpHeader {
		return nil, fmt.Errorf("bad header %q: want %q", first, dumpHeader)
	}
	out := make(map[string]int64)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 6 {
			return nil, fmt.Errorf("line %d: want 6 fields, got %d", line, len(fields))
		}
		switch fields[0] {
		case "counter", "gauge", "hist_count", "hist_sum", "hist_bucket":
		default:
			return nil, fmt.Errorf("line %d: unknown sample kind %q", line, fields[0])
		}
		v, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", line, fields[5], err)
		}
		key := strings.Join(fields[:5], " ")
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", line, key)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Diff renders the change from an old dump to a new one (both as
// ParseDump maps) and reports how many series differ. Series only in
// one dump show "-" on the missing side. With all set, unchanged series
// render too; otherwise only differences appear.
func Diff(old, new map[string]int64, all bool) (string, int) {
	var keys []string
	for k := range old {
		keys = append(keys, k)
	}
	for k := range new {
		if _, ok := old[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "series\told\tnew\tdelta\t\n")
	changed := 0
	for _, k := range keys {
		ov, inOld := old[k]
		nv, inNew := new[k]
		same := inOld && inNew && ov == nv
		if !same {
			changed++
		}
		if same && !all {
			continue
		}
		oldCol, newCol, deltaCol := "-", "-", "-"
		if inOld {
			oldCol = strconv.FormatInt(ov, 10)
		}
		if inNew {
			newCol = strconv.FormatInt(nv, 10)
		}
		if inOld && inNew {
			deltaCol = fmt.Sprintf("%+d", nv-ov)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t\n", k, oldCol, newCol, deltaCol)
	}
	tw.Flush()
	return b.String(), changed
}
