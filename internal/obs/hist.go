package obs

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// HistBuckets is a plain power-of-two bucket array — the same shape a
// Histogram accumulates, but a pure value with no collector behind it.
// Simulation code that needs a percentile of samples it just generated
// (the churn experiment's per-phase latency summaries) folds them into
// a job-local HistBuckets and queries it directly: the result is a pure
// function of the samples, so the obs-reader ban (no collected-state
// readback on the simulation path) does not apply. HistQuantile
// delegates here, keeping dump-side and job-local interpolation
// bit-identical.
type HistBuckets [histBuckets]uint64

// Observe folds one sample into its power-of-two bucket, mirroring
// Histogram.Observe.
func (b *HistBuckets) Observe(v uint64) {
	b[bits.Len64(v)]++
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimate Prometheus' histogram_quantile computes. Bucket k spans
// [2^(k-1), 2^k-1] (bucket 0 is exactly zero), so the estimate is off
// by at most the bucket width — good enough for the order-of-magnitude
// reading percentile summaries exist for. Returns 0 on an empty
// histogram.
func (b HistBuckets) Quantile(q float64) float64 {
	var total uint64
	for _, n := range b {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for k := 0; k < histBuckets; k++ {
		if b[k] == 0 {
			continue
		}
		prev := cum
		cum += float64(b[k])
		if cum < target {
			continue
		}
		lower, upper := float64(0), float64(0)
		if k > 0 {
			lower = float64(uint64(1) << uint(k-1))
			upper = float64(bucketUpper(k))
		}
		frac := 0.0
		if b[k] > 0 {
			frac = (target - prev) / float64(b[k])
		}
		return lower + frac*(upper-lower)
	}
	return float64(bucketUpper(histBuckets - 1))
}

// HistQuantile estimates the q-quantile of a dumped bucket array.
// (Reader API: tools and tests only — simulation code uses a job-local
// HistBuckets instead.)
func HistQuantile(buckets [histBuckets]uint64, q float64) float64 {
	return HistBuckets(buckets).Quantile(q)
}

// HistSummary is one histogram series reconstructed from a metrics
// dump, with interpolated percentile estimates.
type HistSummary struct {
	Series        string // "device owner component name"
	Count         uint64
	Sum           uint64
	P50, P90, P99 float64
}

// HistSummaries reconstructs every histogram in a ParseDump map (the
// hist_count/hist_sum/hist_bucket triples DumpMetrics renders) and
// returns percentile summaries sorted by series. Non-histogram samples
// are ignored, so any valid dump works. (Reader API: tools and tests
// only.)
func HistSummaries(dump map[string]int64) []HistSummary {
	type acc struct {
		count, sum uint64
		buckets    [histBuckets]uint64
	}
	hists := make(map[string]*acc)
	get := func(series string) *acc {
		a, ok := hists[series]
		if !ok {
			a = &acc{}
			hists[series] = a
		}
		return a
	}
	for key, v := range dump {
		fields := strings.Fields(key)
		if len(fields) != 5 {
			continue
		}
		kind, series := fields[0], strings.Join(fields[1:], " ")
		switch kind {
		case "hist_count":
			get(series).count = uint64(v)
		case "hist_sum":
			get(series).sum = uint64(v)
		case "hist_bucket":
			// The bucket index rides on the name as a "/bitNN" suffix.
			name := fields[4]
			i := strings.LastIndex(name, "/bit")
			if i < 0 {
				continue
			}
			bit, err := strconv.Atoi(name[i+4:])
			if err != nil || bit < 0 || bit >= histBuckets {
				continue
			}
			base := strings.Join(fields[1:4], " ") + " " + name[:i]
			get(base).buckets[bit] = uint64(v)
		}
	}
	series := make([]string, 0, len(hists))
	for s := range hists {
		series = append(series, s)
	}
	sort.Strings(series)
	out := make([]HistSummary, 0, len(series))
	for _, s := range series {
		a := hists[s]
		out = append(out, HistSummary{
			Series: s,
			Count:  a.count,
			Sum:    a.sum,
			P50:    HistQuantile(a.buckets, 0.50),
			P90:    HistQuantile(a.buckets, 0.90),
			P99:    HistQuantile(a.buckets, 0.99),
		})
	}
	return out
}
