package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic time source advancing stepMS per
// read, standing in for time.Now in Wall tests.
func fakeClock(stepMS int) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Duration(stepMS) * time.Millisecond)
		return t
	}
}

// TestNilSafety pins the detached-collector contract: a nil registry
// hands out nil handles, and every operation on a nil handle is a
// no-op. Instrumented components rely on this to stay always-on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	l := Label{Device: "d", Owner: "o", Component: "c", Name: "n"}
	c := r.Counter(l)
	g := r.Gauge(l)
	h := r.Histogram(l)
	tr := r.Tracer("t")
	if c != nil || g != nil || h != nil || tr != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Add(5)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(9)
	tr.Span("c", "n", 0, 10)
	tr.Event("c", "n", 3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated values")
	}
	if b := h.Buckets(); b != ([histBuckets]uint64{}) {
		t.Fatal("nil histogram has populated buckets")
	}
	if tr.Track() != "-" || tr.Records() != nil {
		t.Fatal("nil tracer not inert")
	}
	var clk *Clock
	if clk.Now() != 0 || clk.Tick(100) != 0 || clk.Now() != 0 {
		t.Fatal("nil clock advanced")
	}
	var w *Wall
	if !w.Start().IsZero() || w.Since(w.Start()) != 0 {
		t.Fatal("nil wall read a clock")
	}
	if got := r.DumpMetrics(); got != dumpHeader+"\n" {
		t.Fatalf("nil registry dump = %q, want bare header", got)
	}
	if _, err := r.ChromeTrace(); err != nil {
		t.Fatalf("nil registry ChromeTrace: %v", err)
	}
	if got := r.TraceText(); got != "# snic-trace v1\n" {
		t.Fatalf("nil registry TraceText = %q", got)
	}
}

// TestInterning: one label, one handle — writes through separately
// interned handles land on the same series.
func TestInterning(t *testing.T) {
	r := NewRegistry()
	l := Label{Device: "d", Owner: "o", Component: "c", Name: "n"}
	a, b := r.Counter(l), r.Counter(l)
	if a != b {
		t.Fatal("same label interned two counters")
	}
	a.Add(2)
	b.Add(3)
	if a.Value() != 5 {
		t.Fatalf("counter = %d, want 5", a.Value())
	}
	if r.Tracer("x") != r.Tracer("x") {
		t.Fatal("same track interned two tracers")
	}
	if r.Counter(Label{Name: "other"}) == a {
		t.Fatal("distinct labels shared a counter")
	}
}

// TestLabelSanitize: whitespace would corrupt the space-separated dump
// format, so label fields are cleaned at interning time and empty
// fields become "-".
func TestLabelSanitize(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label{Device: "dev 1", Owner: "", Component: "a\tb", Name: "n\nx"}).Inc()
	dump := r.DumpMetrics()
	want := "counter dev_1 - a_b n_x 1\n"
	if !strings.Contains(dump, want) {
		t.Fatalf("dump %q missing sanitized line %q", dump, want)
	}
	// Sanitized and pre-sanitized forms intern to the same series.
	if r.Counter(Label{Device: "dev 1", Component: "a\tb", Name: "n\nx"}) !=
		r.Counter(Label{Device: "dev_1", Owner: "-", Component: "a_b", Name: "n_x"}) {
		t.Fatal("sanitization did not canonicalize interning")
	}
}

// TestHistogramBuckets pins the power-of-two bucketing: bucket k holds
// samples of bit length k, bucket 0 holds zeros.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 1024} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1030 {
		t.Fatalf("count/sum = %d/%d, want 5/1030", h.Count(), h.Sum())
	}
	b := h.Buckets()
	for bit, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 11: 1} {
		if b[bit] != want {
			t.Errorf("bucket %d = %d, want %d", bit, b[bit], want)
		}
	}
}

// TestMSToCycles pins the ms→cycle conversion the Figure 6 cross-check
// depends on.
func TestMSToCycles(t *testing.T) {
	for ms, want := range map[float64]uint64{
		0:      0,
		-1:     0,
		0.001:  1200,
		1:      1_200_000,
		1.5:    1_800_000,
		2287.1: 2_744_520_000, // Fig. 6 DPI launch total
	} {
		if got := MSToCycles(ms); got != want {
			t.Errorf("MSToCycles(%v) = %d, want %d", ms, got, want)
		}
	}
}

// TestClock: Tick returns the interval's start and advances by its
// duration, the shape span emission uses.
func TestClock(t *testing.T) {
	var c Clock
	if start := c.Tick(100); start != 0 {
		t.Fatalf("first Tick start = %d, want 0", start)
	}
	if start := c.Tick(50); start != 100 {
		t.Fatalf("second Tick start = %d, want 100", start)
	}
	if c.Now() != 150 {
		t.Fatalf("Now = %d, want 150", c.Now())
	}
}

// TestDumpWorkerInvariance is the layer's core promise in miniature:
// two registries fed the same aggregate writes under different
// interleavings and registration orders render byte-identical dumps.
func TestDumpWorkerInvariance(t *testing.T) {
	labels := []Label{
		{Device: "nic0", Owner: "nf0", Component: "cache/L2", Name: "hits"},
		{Device: "nic0", Owner: "nf1", Component: "cache/L2", Name: "hits"},
		{Device: "nic1", Owner: "-", Component: "bus", Name: "grants"},
	}
	serial := NewRegistry()
	for i, l := range labels {
		serial.Counter(l).Add(uint64(100 * (i + 1)))
		serial.Histogram(l).Observe(uint64(i) * 7)
		serial.Gauge(l).Set(int64(i))
	}
	concurrent := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Reverse label order, interleaved increments.
			for i := len(labels) - 1; i >= 0; i-- {
				l := labels[i]
				for n := 0; n < 100*(i+1)/8; n++ {
					concurrent.Counter(l).Inc()
				}
				concurrent.Gauge(l).Set(int64(i))
			}
		}(w)
	}
	wg.Wait()
	for i, l := range labels {
		concurrent.Counter(l).Add(uint64(100 * (i + 1) % 8)) // remainder of the split
		concurrent.Histogram(l).Observe(uint64(i) * 7)
	}
	if a, b := serial.DumpMetrics(), concurrent.DumpMetrics(); a != b {
		t.Fatalf("dumps diverge across interleavings\n--- serial ---\n%s--- concurrent ---\n%s", a, b)
	}
}

// TestWallFake: the quarantined wall-clock collector is injectable, so
// engine timing tests can be deterministic.
func TestWallFake(t *testing.T) {
	w := NewWall(fakeClock(10))
	t0 := w.Start()
	if d := w.Since(t0); d != 10e6 { // one 10ms step between the two reads
		t.Fatalf("Since = %v, want 10ms", d)
	}
}
