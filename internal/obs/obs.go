// Package obs is the simulator's deterministic observability layer:
// always-on metrics and cycle-stamped traces that live entirely in
// simulated time.
//
// Every number the experiment harness reports is a final aggregate; obs
// exists so a moved sweep can be explained without printf debugging.
// Three rules keep observation free:
//
//   - Simulated time only. Metric values and trace stamps derive from
//     the simulation's own cycle/byte accounting, never the wall clock,
//     so dumps and trace files are byte-identical across -workers
//     counts and pinnable as goldens. The single exception, Wall, is
//     quarantined: its readings feed -v progress output only and are
//     excluded from every deterministic export.
//
//   - Nil-safe and cheap. Instrumented components hold handle pointers
//     (Counter, Gauge, Histogram, Tracer). With no collector attached
//     the handles are nil and every operation is a no-op behind one
//     branch, so instrumentation stays on permanently.
//
//   - Write-only from the simulation. Results must never depend on a
//     metric value: the sniclint transitive-determinism check forbids
//     simulation-path code from reaching the reader APIs (Value,
//     Records, DumpMetrics, ...) through any call chain. Only cmd/
//     tools and tests read.
//
// Series are keyed by a stable (device, owner, component, name) Label.
// Exports sort by label, so registration order — which varies with
// worker scheduling — never shows.
package obs

import (
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label identifies one metric series. Device names the simulated device
// instance (or experiment scope), Owner the principal charged (an NF id,
// a cache/bus domain, "mgmt", or "-"), Component the hardware module,
// and Name the series. Fields must be stable across runs: labels become
// dump and trace identity.
type Label struct {
	Device    string
	Owner     string
	Component string
	Name      string
}

// sanitize makes a label field safe for the space-separated dump format.
func sanitize(s string) string {
	if s == "" {
		return "-"
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r':
			return '_'
		}
		return r
	}, s)
}

func (l Label) clean() Label {
	return Label{
		Device:    sanitize(l.Device),
		Owner:     sanitize(l.Owner),
		Component: sanitize(l.Component),
		Name:      sanitize(l.Name),
	}
}

// less orders labels for rendering: device, owner, component, name.
func (l Label) less(o Label) bool {
	if l.Device != o.Device {
		return l.Device < o.Device
	}
	if l.Owner != o.Owner {
		return l.Owner < o.Owner
	}
	if l.Component != o.Component {
		return l.Component < o.Component
	}
	return l.Name < o.Name
}

// Counter is a monotonically increasing uint64. Increments are atomic,
// so concurrent engine jobs sharing a label merge commutatively and the
// final value is worker-count invariant.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter. Safe on a nil handle (no collector).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (reader API: tools and tests only).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (occupancy-style values).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil handle.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. Safe on a nil handle.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (reader API).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: one power-of-two bucket per
// possible bit length of a uint64 sample (bucket k holds samples whose
// bit length is k, i.e. v in [2^(k-1), 2^k)), plus bucket 0 for zero.
const histBuckets = 65

// Histogram accumulates uint64 samples into power-of-two buckets. Like
// Counter it is atomic and commutative, so concurrent observation is
// deterministic in aggregate.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample. Safe on a nil handle.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of samples (reader API).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (reader API).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the per-bit-length sample counts (reader API).
func (h *Histogram) Buckets() [histBuckets]uint64 {
	var out [histBuckets]uint64
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry is the collector: it interns metric series by label and
// tracers by track name. A nil *Registry is the detached state — every
// method returns a nil handle whose operations no-op — so components
// attach unconditionally and pay nothing until a collector exists.
type Registry struct {
	mu       sync.Mutex
	counters map[Label]*Counter
	gauges   map[Label]*Gauge
	hists    map[Label]*Histogram
	tracers  map[string]*Tracer
	traceCap int // flight-recorder capacity applied to every track; 0 = unbounded
}

// NewRegistry returns an empty collector.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Label]*Counter),
		gauges:   make(map[Label]*Gauge),
		hists:    make(map[Label]*Histogram),
		tracers:  make(map[string]*Tracer),
	}
}

// Counter interns the counter for l (nil on a nil registry).
func (r *Registry) Counter(l Label) *Counter {
	if r == nil {
		return nil
	}
	l = l.clean()
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[l]
	if !ok {
		c = &Counter{}
		r.counters[l] = c
	}
	return c
}

// Gauge interns the gauge for l (nil on a nil registry).
func (r *Registry) Gauge(l Label) *Gauge {
	if r == nil {
		return nil
	}
	l = l.clean()
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[l]
	if !ok {
		g = &Gauge{}
		r.gauges[l] = g
	}
	return g
}

// Histogram interns the histogram for l (nil on a nil registry).
func (r *Registry) Histogram(l Label) *Histogram {
	if r == nil {
		return nil
	}
	l = l.clean()
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[l]
	if !ok {
		h = &Histogram{}
		r.hists[l] = h
	}
	return h
}

// Tracer interns the tracer for track (nil on a nil registry). Distinct
// concurrent activities (engine jobs, devices) must use distinct track
// names: records within one track keep append order, and exports order
// tracks by name, so uniqueness per job is what makes trace files
// worker-count invariant.
func (r *Registry) Tracer(track string) *Tracer {
	if r == nil {
		return nil
	}
	track = sanitize(track)
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tracers[track]
	if !ok {
		t = &Tracer{track: track, cap: r.traceCap}
		r.tracers[track] = t
	}
	return t
}

// SetTraceCapacity turns the registry's tracers into a flight recorder:
// every track — existing and future — retains at most n records
// (keep-last-n per track; 0 restores unbounded collection). Retention is
// deterministic per track, so bounded exports stay worker-count
// invariant, and exports are byte-identical to the unbounded form
// whenever no track exceeded n. Call it once right after NewRegistry:
// capacity is part of the run's configuration, not something to toggle
// mid-sweep.
func (r *Registry) SetTraceCapacity(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.mu.Lock()
	r.traceCap = n
	tracks := make([]string, 0, len(r.tracers))
	for track := range r.tracers {
		tracks = append(tracks, track)
	}
	sort.Strings(tracks)
	tracers := make([]*Tracer, 0, len(tracks))
	for _, track := range tracks {
		tracers = append(tracers, r.tracers[track])
	}
	r.mu.Unlock()
	for _, t := range tracers {
		t.SetCapacity(n)
	}
}

// sortedCounterLabels returns the registered counter labels in render
// order (keys are collected first, then sorted: map order never leaks).
func (r *Registry) sortedCounterLabels() []Label {
	var ls []Label
	for l := range r.counters {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].less(ls[j]) })
	return ls
}

func (r *Registry) sortedGaugeLabels() []Label {
	var ls []Label
	for l := range r.gauges {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].less(ls[j]) })
	return ls
}

func (r *Registry) sortedHistLabels() []Label {
	var ls []Label
	for l := range r.hists {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].less(ls[j]) })
	return ls
}

func (r *Registry) sortedTracks() []string {
	var ts []string
	for t := range r.tracers {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}
