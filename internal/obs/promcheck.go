package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-exposition payload with
// the stdlib only (the repo bans promtool along with every other
// dependency): metric-name and label syntax, float values, TYPE
// declared before and at most once per family, no duplicate series,
// and for histogram families cumulative buckets that are non-decreasing
// in ascending le order with a +Inf bucket equal to the family's
// _count. Errors carry the offending line number. It validates format,
// not meaning — values are not compared against any registry.
func ValidateExposition(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	types := make(map[string]string)   // family -> declared TYPE
	seen := make(map[string]int)       // canonical series -> first line
	hist := make(map[string]*histSpec) // family|labels-sans-le -> bucket spec
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := checkComment(text, types); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			continue
		}
		name, labels, value, err := parseSeries(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		fam := familyOf(name, types)
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("line %d: series %q has no preceding # TYPE %s", line, name, fam)
		}
		key := name + canonicalLabels(labels)
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("line %d: duplicate series %q (first at line %d)", line, key, prev)
		}
		seen[key] = line
		if types[fam] == "histogram" {
			recordHistSample(hist, fam, name, labels, value, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, spec := range hist {
		if err := spec.check(); err != nil {
			return fmt.Errorf("histogram %s: %v", key, err)
		}
	}
	return nil
}

// checkComment validates # HELP / # TYPE lines and records TYPEs. Other
// comments pass through.
func checkComment(text string, types map[string]string) error {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", text)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %q", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// parseSeries splits "name{l1="v1",...} value" into its parts. The
// label block is optional; the value must parse as a float (+Inf, -Inf
// and NaN included).
func parseSeries(text string) (name string, labels map[string]string, value float64, err error) {
	rest := text
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("series %q has no value", text)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if rest[0] == '{' {
		rest, err = parseLabelBlock(rest, labels)
		if err != nil {
			return "", nil, 0, err
		}
	}
	valueText := strings.TrimSpace(rest)
	if f := strings.Fields(valueText); len(f) == 2 {
		// Optional trailing timestamp.
		if _, terr := strconv.ParseInt(f[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", f[1])
		}
		valueText = f[0]
	} else if len(f) != 1 {
		return "", nil, 0, fmt.Errorf("want 'value [timestamp]', got %q", valueText)
	}
	value, err = strconv.ParseFloat(valueText, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", valueText, err)
	}
	return name, labels, value, nil
}

// parseLabelBlock consumes a {name="value",...} block (escapes \\ \" \n
// honored) and returns the remainder of the line.
func parseLabelBlock(s string, labels map[string]string) (string, error) {
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " ")
		if s == "" {
			return "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '=' near %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return "", fmt.Errorf("invalid label name %q", lname)
		}
		s = strings.TrimLeft(s[eq+1:], " ")
		if s == "" || s[0] != '"' {
			return "", fmt.Errorf("label %q value is not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return "", fmt.Errorf("unterminated value for label %q", lname)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return "", fmt.Errorf("dangling escape in label %q", lname)
				}
				switch s[0] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("bad escape \\%c in label %q", s[0], lname)
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := labels[lname]; dup {
			return "", fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = val.String()
		s = strings.TrimLeft(s, " ")
		if s != "" && s[0] == ',' {
			s = s[1:]
		}
	}
}

// familyOf strips the histogram/summary sample suffixes when the base
// name has a declared TYPE, so x_bucket lines attach to family x.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// histSpec accumulates one histogram series (a family under one
// non-le label set) for the cumulative-bucket checks.
type histSpec struct {
	les      []float64
	counts   []float64
	count    float64
	hasCount bool
}

func recordHistSample(hist map[string]*histSpec, fam, name string, labels map[string]string, value float64, line int) {
	rest := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			rest[k] = v
		}
	}
	key := fam + canonicalLabels(rest)
	spec, ok := hist[key]
	if !ok {
		spec = &histSpec{}
		hist[key] = spec
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le := math.Inf(1)
		if s, ok := labels["le"]; ok && s != "+Inf" {
			le, _ = strconv.ParseFloat(s, 64)
		}
		spec.les = append(spec.les, le)
		spec.counts = append(spec.counts, value)
	case strings.HasSuffix(name, "_count"):
		spec.count = value
		spec.hasCount = true
	}
}

func (h *histSpec) check() error {
	if len(h.les) == 0 {
		return fmt.Errorf("no _bucket series")
	}
	idx := make([]int, len(h.les))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.les[idx[a]] < h.les[idx[b]] })
	prev := math.Inf(-1)
	prevCount := -1.0
	for _, i := range idx {
		if h.les[i] == prev {
			return fmt.Errorf("duplicate le bound %v", prev)
		}
		if h.counts[i] < prevCount {
			return fmt.Errorf("bucket counts not cumulative at le=%v (%v < %v)",
				h.les[i], h.counts[i], prevCount)
		}
		prev, prevCount = h.les[i], h.counts[i]
	}
	last := idx[len(idx)-1]
	if !math.IsInf(h.les[last], 1) {
		return fmt.Errorf("missing le=\"+Inf\" bucket")
	}
	if h.hasCount && h.counts[last] != h.count {
		return fmt.Errorf("+Inf bucket %v != _count %v", h.counts[last], h.count)
	}
	return nil
}
