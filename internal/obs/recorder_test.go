package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fill appends n spans to track with start cycles base, base+1, ... so
// retention tests can tell exactly which records survived.
func fill(tr *Tracer, base, n int) {
	for i := 0; i < n; i++ {
		tr.Span("c", fmt.Sprintf("s%03d", base+i), uint64(base+i), 1)
	}
}

// TestRecorderKeepLastN: a capacity-n track retains exactly its n most
// recent records in append order and counts every eviction.
func TestRecorderKeepLastN(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(4)
	tr := r.Tracer("ring")
	fill(tr, 0, 10)
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("s%03d", 6+i); rec.Name != want {
			t.Errorf("record %d = %s, want %s", i, rec.Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

// TestRecorderBelowCapacity: a track that never exceeds capacity is
// indistinguishable from an unbounded one — same records, zero dropped,
// byte-identical exports.
func TestRecorderBelowCapacity(t *testing.T) {
	bounded, unbounded := NewRegistry(), NewRegistry()
	bounded.SetTraceCapacity(16)
	for _, r := range []*Registry{bounded, unbounded} {
		fill(r.Tracer("a"), 0, 8)
		fill(r.Tracer("b"), 100, 16)
		r.Counter(Label{Device: "d", Name: "n"}).Add(3)
	}
	if bounded.Tracer("a").Dropped() != 0 || bounded.Tracer("b").Dropped() != 0 {
		t.Fatal("dropped nonzero below capacity")
	}
	if a, b := bounded.TraceText(), unbounded.TraceText(); a != b {
		t.Fatalf("TraceText diverges below capacity\n--- bounded ---\n%s--- unbounded ---\n%s", a, b)
	}
	bc, err := bounded.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	uc, err := unbounded.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(bc) != string(uc) {
		t.Fatal("ChromeTrace diverges below capacity")
	}
	if a, b := bounded.DumpMetrics(), unbounded.DumpMetrics(); a != b {
		t.Fatalf("DumpMetrics diverges below capacity\n%s\nvs\n%s", a, b)
	}
}

// TestRecorderCapacityPinned: memory is bounded — after an arbitrarily
// long append stream the track holds at most cap records.
func TestRecorderCapacityPinned(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(32)
	tr := r.Tracer("long")
	fill(tr, 0, 100_000)
	if got := tr.retained(); got > 32 {
		t.Fatalf("retained %d records, capacity 32", got)
	}
	if tr.Dropped() != 100_000-32 {
		t.Fatalf("dropped = %d, want %d", tr.Dropped(), 100_000-32)
	}
}

// TestRecorderTruncationVisible: a truncated track announces itself in
// all three exports — the TraceText header, the ChromeTrace metadata,
// and a dropped_spans counter in the metric dump.
func TestRecorderTruncationVisible(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(2)
	fill(r.Tracer("hot"), 0, 5)
	fill(r.Tracer("cold"), 0, 2)
	txt := r.TraceText()
	if !strings.Contains(txt, "track hot (flight recorder dropped 3)\n") {
		t.Fatalf("TraceText missing truncation note:\n%s", txt)
	}
	if !strings.Contains(txt, "track cold\n") {
		t.Fatalf("untruncated track gained an annotation:\n%s", txt)
	}
	ct, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ct), `"dropped_spans": "3"`) {
		t.Fatalf("ChromeTrace missing dropped_spans metadata:\n%s", ct)
	}
	dump := r.DumpMetrics()
	if !strings.Contains(dump, "counter trace - hot dropped_spans 3\n") {
		t.Fatalf("dump missing dropped_spans counter:\n%s", dump)
	}
	if strings.Contains(dump, "counter trace - cold") {
		t.Fatalf("untruncated track emitted a dropped_spans counter:\n%s", dump)
	}
	// The dump round-trips through its own parser.
	if _, err := ParseDump(strings.NewReader(dump)); err != nil {
		t.Fatalf("truncated dump does not parse: %v", err)
	}
}

// TestSetCapacityTrimsExisting: lowering capacity on a populated track
// evicts the oldest records immediately and counts them.
func TestSetCapacityTrimsExisting(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer("late")
	fill(tr, 0, 10)
	r.SetTraceCapacity(3)
	recs := tr.Records()
	if len(recs) != 3 || recs[0].Name != "s007" || recs[2].Name != "s009" {
		t.Fatalf("after trim: %+v", recs)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	// New tracers interned after the call inherit the capacity.
	fresh := r.Tracer("fresh")
	fill(fresh, 0, 10)
	if got := fresh.retained(); got != 3 {
		t.Fatalf("fresh tracer retained %d, want 3", got)
	}
	// Zero restores unbounded collection (retained records survive).
	r.SetTraceCapacity(0)
	fill(tr, 100, 10)
	if got := tr.retained(); got != 13 {
		t.Fatalf("after unbounding retained %d, want 13", got)
	}
}

// TestRecordsIsACopy: mutating the returned slice must not corrupt the
// tracer's retained records.
func TestRecordsIsACopy(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer("copy")
	fill(tr, 0, 3)
	got := tr.Records()
	got[0].Name = "mutated"
	if again := tr.Records(); again[0].Name != "s000" {
		t.Fatalf("Records leaked internal storage: %+v", again)
	}
}

// TestRecordsOrdering pins the documented guarantee: cycle stamp first,
// insertion order second (stable for ties).
func TestRecordsOrdering(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer("order")
	tr.Span("c", "late", 50, 1)
	tr.Event("c", "tie-a", 10)
	tr.Event("c", "tie-b", 10)
	tr.Span("c", "early", 5, 1)
	var names []string
	for _, rec := range tr.Records() {
		names = append(names, rec.Name)
	}
	want := "early tie-a tie-b late"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

// TestConcurrentSpanRecords is the -race regression for the reader APIs:
// readers (Records, Dropped, exports) race against writers on the same
// track and the run must be clean.
func TestConcurrentSpanRecords(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(64)
	tr := r.Tracer("race")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Span("c", "s", uint64(i), 1)
				tr.Event("c", "e", uint64(i))
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = tr.Records()
				_ = tr.Dropped()
				_ = r.TraceText()
			}
		}()
	}
	wg.Wait()
	if got := tr.retained(); got > 64 {
		t.Fatalf("retained %d, capacity 64", got)
	}
	total := uint64(tr.retained()) + tr.Dropped()
	if total != 4*500*2 {
		t.Fatalf("retained+dropped = %d, want %d", total, 4*500*2)
	}
}
