package obs

import "time"

// Wall is the simulator's single sanctioned wall-clock collector. The
// determinism rule bans wall time from the simulated path because it
// varies run to run; progress reporting (-v) still legitimately wants
// it. Wall quarantines that want: the clock function is injected at the
// one waived construction site (internal/engine), readings are plain
// wall durations handed straight to stderr reporting, and nothing Wall
// produces ever enters a metric dump, trace file, or experiment result.
//
// A nil *Wall reads the zero time and zero duration, so timing code
// needs no collector-presence branches.
type Wall struct {
	now func() time.Time
}

// NewWall wraps a wall-clock source, conventionally time.Now at the
// single waived site. Tests inject a fake for deterministic durations.
func NewWall(now func() time.Time) *Wall {
	return &Wall{now: now}
}

// Start returns the current wall time as an opaque mark for Since.
func (w *Wall) Start() time.Time {
	if w == nil || w.now == nil {
		return time.Time{}
	}
	return w.now()
}

// Since returns the wall time elapsed from a Start mark.
func (w *Wall) Since(start time.Time) time.Duration {
	if w == nil || w.now == nil {
		return 0
	}
	return w.now().Sub(start)
}
