package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// promTestRegistry builds a registry exercising every exposition
// feature: counters, gauges, a multi-bucket histogram, label
// characters needing name-mapping, and a truncated flight-recorder
// track.
func promTestRegistry() *Registry {
	r := NewRegistry()
	r.SetTraceCapacity(2)
	r.Counter(Label{Device: "nic0", Owner: "nf0", Component: "cache/L2", Name: "hits"}).Add(100)
	r.Counter(Label{Device: "nic0", Owner: "nf1", Component: "cache/L2", Name: "hits"}).Add(7)
	r.Gauge(Label{Device: "nic0", Owner: "-", Component: "snic", Name: "live_nfs"}).Set(2)
	h := r.Histogram(Label{Device: "nic0", Owner: "nf0", Component: "pktio", Name: "frame_bytes"})
	for _, v := range []uint64{0, 64, 64, 1500, 9000} {
		h.Observe(v)
	}
	fill(r.Tracer("fig6/FW"), 0, 5)
	return r
}

// TestPromTextGolden pins the exposition rendering byte-for-byte.
func TestPromTextGolden(t *testing.T) {
	got := promTestRegistry().PromText()
	goldenPath := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("PromText diverges from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromTextValidates: the renderer's output passes the in-repo
// exposition validator — the same check CI runs against a live snicd.
func TestPromTextValidates(t *testing.T) {
	out := promTestRegistry().PromText()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("PromText fails own validator: %v\n%s", err, out)
	}
	if (*Registry)(nil).PromText() != "" {
		t.Fatal("nil registry rendered output")
	}
}

// TestPromTextStable: like the dump, the exposition must be
// byte-identical regardless of registration order and write
// interleaving.
func TestPromTextStable(t *testing.T) {
	serial := promTestRegistry()
	concurrent := NewRegistry()
	concurrent.SetTraceCapacity(2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			concurrent.Counter(Label{Device: "nic0", Owner: "nf0", Component: "cache/L2", Name: "hits"}).Add(25)
			if w == 0 {
				concurrent.Counter(Label{Device: "nic0", Owner: "nf1", Component: "cache/L2", Name: "hits"}).Add(7)
				concurrent.Gauge(Label{Device: "nic0", Owner: "-", Component: "snic", Name: "live_nfs"}).Set(2)
				h := concurrent.Histogram(Label{Device: "nic0", Owner: "nf0", Component: "pktio", Name: "frame_bytes"})
				for _, v := range []uint64{0, 64, 64, 1500, 9000} {
					h.Observe(v)
				}
				fill(concurrent.Tracer("fig6/FW"), 0, 5)
			}
		}(w)
	}
	wg.Wait()
	if a, b := serial.PromText(), concurrent.PromText(); a != b {
		t.Fatalf("exposition diverges across interleavings\n--- serial ---\n%s--- concurrent ---\n%s", a, b)
	}
}

// TestValidateExposition is the table of malformed payloads the
// validator must reject (and well-formed ones it must accept) — the
// stdlib stand-in for promtool.
func TestValidateExposition(t *testing.T) {
	for _, tc := range []struct {
		name    string
		in      string
		wantErr string // "" = must validate
	}{
		{"minimal counter", "# TYPE x_total counter\nx_total{a=\"b\"} 1\n", ""},
		{"no labels", "# TYPE x gauge\nx 1.5\n", ""},
		{"timestamp", "# TYPE x gauge\nx 2 1700000000\n", ""},
		{"escapes", "# TYPE x gauge\nx{a=\"q\\\"u\\\\o\\nte\"} 1\n", ""},
		{"untyped series", "x 1\n", "no preceding # TYPE"},
		{"bad name", "# TYPE 9x gauge\n", "malformed TYPE"},
		{"bad type", "# TYPE x widget\n", "unknown metric type"},
		{"duplicate type", "# TYPE x gauge\n# TYPE x gauge\n", "duplicate TYPE"},
		{"bad value", "# TYPE x gauge\nx notafloat\n", "bad value"},
		{"no value", "# TYPE x gauge\nx\n", "no value"},
		{"unterminated labels", "# TYPE x gauge\nx{a=\"b\" 1\n", "label"},
		{"unclosed block", "# TYPE x gauge\nx{a=\"b\",\n", "unterminated label block"},
		{"unquoted label", "# TYPE x gauge\nx{a=b} 1\n", "not quoted"},
		{"duplicate label", "# TYPE x gauge\nx{a=\"1\",a=\"2\"} 1\n", "duplicate label"},
		{"bad escape", "# TYPE x gauge\nx{a=\"\\t\"} 1\n", "bad escape"},
		{"colon label", "# TYPE x gauge\nx{a:b=\"1\"} 1\n", "invalid label name"},
		{"duplicate series", "# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate series"},
		{
			"label order insensitive dup",
			"# TYPE x gauge\nx{a=\"1\",b=\"2\"} 1\nx{b=\"2\",a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"histogram ok",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
			"",
		},
		{
			"histogram not cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"not cumulative",
		},
		{
			"histogram missing inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 5\n",
			"+Inf",
		},
		{
			"histogram count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\n",
			"!= _count",
		},
	} {
		err := ValidateExposition(strings.NewReader(tc.in))
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: rejected valid payload: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestHistQuantile: the interpolated estimate lands inside the right
// bucket and hits exact values on degenerate shapes.
func TestHistQuantile(t *testing.T) {
	var empty [histBuckets]uint64
	if q := HistQuantile(empty, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	var zeros [histBuckets]uint64
	zeros[0] = 10 // ten zero samples
	if q := HistQuantile(zeros, 0.99); q != 0 {
		t.Fatalf("all-zero quantile = %v, want 0", q)
	}
	// 100 samples in bucket 7 ([64,127]): every quantile stays in range.
	var one [histBuckets]uint64
	one[7] = 100
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		v := HistQuantile(one, q)
		if v < 64 || v > 127 {
			t.Errorf("q=%v → %v, want within [64,127]", q, v)
		}
	}
	// 90 small + 10 large: p50 in the small bucket, p99 in the large.
	var split [histBuckets]uint64
	split[3] = 90  // [4,7]
	split[11] = 10 // [1024,2047]
	if v := HistQuantile(split, 0.5); v < 4 || v > 7 {
		t.Errorf("p50 = %v, want within [4,7]", v)
	}
	if v := HistQuantile(split, 0.99); v < 1024 || v > 2047 {
		t.Errorf("p99 = %v, want within [1024,2047]", v)
	}
	if v := HistQuantile(split, 0.5); HistQuantile(split, 0.9) < v {
		t.Error("quantiles not monotone")
	}
}

// TestHistSummaries: summaries reconstructed from a dump match the
// histogram they came from.
func TestHistSummaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Label{Device: "nic0", Owner: "nf0", Component: "pktio", Name: "frame_bytes"})
	for i := 0; i < 90; i++ {
		h.Observe(64)
	}
	for i := 0; i < 10; i++ {
		h.Observe(9000)
	}
	r.Counter(Label{Device: "nic0", Owner: "-", Component: "snic", Name: "noise"}).Inc()
	dump, err := ParseDump(strings.NewReader(r.DumpMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	sums := HistSummaries(dump)
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1: %+v", len(sums), sums)
	}
	s := sums[0]
	if s.Series != "nic0 nf0 pktio frame_bytes" {
		t.Fatalf("series = %q", s.Series)
	}
	if s.Count != 100 || s.Sum != 90*64+10*9000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.P50 < 64 || s.P50 > 127 {
		t.Errorf("p50 = %v, want in [64,127]", s.P50)
	}
	if s.P99 < 8192 || s.P99 > 16383 {
		t.Errorf("p99 = %v, want in [8192,16383]", s.P99)
	}
	if math.IsNaN(s.P90) {
		t.Error("p90 is NaN")
	}
}
