// Package hwmodel is the McPAT stand-in: an analytical area/power model
// for the TLB structures S-NIC adds, calibrated to the McPAT (28 nm,
// 2 GHz, Cortex-A9 baseline) outputs the paper publishes in Tables 2–5.
//
// Fully-associative TLBs are CAM+SRAM structures whose area/power grow
// roughly linearly in entry count with (a) a floor for peripheral logic —
// visible in the paper where 2- and 3-entry banks cost the same, and a
// 5-entry RAID bank costs as much as a 13-entry core bank — and (b) a
// superlinear knee at large sizes from match-line/sense-amp scaling. We
// encode that as piecewise-linear curves through the published
// calibration points; inside the published range the model reproduces the
// paper bit-for-bit, and sweeps interpolate the same surface.
package hwmodel

import "sort"

// Metric is an area/power estimate.
type Metric struct {
	AreaMM2 float64
	PowerW  float64
}

// Add returns m + o.
func (m Metric) Add(o Metric) Metric {
	return Metric{m.AreaMM2 + o.AreaMM2, m.PowerW + o.PowerW}
}

// Scale returns m scaled by k (e.g. per-core -> per-chip).
func (m Metric) Scale(k float64) Metric {
	return Metric{m.AreaMM2 * k, m.PowerW * k}
}

type calPoint struct {
	entries int
	m       Metric
}

// Curve is a piecewise-linear cost curve over TLB entry count with a
// floor below the smallest calibration point.
type Curve struct {
	pts []calPoint
}

// NewCurve builds a curve from calibration points (any order).
func NewCurve(pts map[int]Metric) Curve {
	var out []calPoint
	//lint:allow map-order collected points are fully sorted by unique entry count below
	for e, m := range pts {
		out = append(out, calPoint{e, m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].entries < out[j].entries })
	return Curve{pts: out}
}

// At evaluates the curve at the given entry count.
func (c Curve) At(entries int) Metric {
	if len(c.pts) == 0 {
		return Metric{}
	}
	// Floor: peripheral logic dominates tiny structures.
	if entries <= c.pts[0].entries {
		return c.pts[0].m
	}
	last := c.pts[len(c.pts)-1]
	if entries >= last.entries {
		if len(c.pts) == 1 {
			// Single-point curve: extrapolate linearly through origin-
			// offset slope (entry-proportional beyond the point).
			k := float64(entries) / float64(last.entries)
			return last.m.Scale(k)
		}
		// Extrapolate with the final segment's slope.
		prev := c.pts[len(c.pts)-2]
		return lerp(prev, last, entries)
	}
	for i := 1; i < len(c.pts); i++ {
		if entries <= c.pts[i].entries {
			return lerp(c.pts[i-1], c.pts[i], entries)
		}
	}
	return last.m
}

func lerp(a, b calPoint, entries int) Metric {
	f := float64(entries-a.entries) / float64(b.entries-a.entries)
	return Metric{
		AreaMM2: a.m.AreaMM2 + f*(b.m.AreaMM2-a.m.AreaMM2),
		PowerW:  a.m.PowerW + f*(b.m.PowerW-a.m.PowerW),
	}
}

// Calibration: per-unit (per-core / per-cluster / per-pipeline) costs
// derived from the paper's 48-core and 16-cluster columns, which carry
// the most significant digits.
var (
	// CoreTLB covers programmable-core TLBs (Tables 2 and 5).
	CoreTLB = NewCurve(map[int]Metric{
		13:  {0.150 / 48, 0.069 / 48},
		51:  {0.214 / 48, 0.106 / 48},
		183: {0.538 / 48, 0.311 / 48},
		256: {0.718 / 48, 0.416 / 48},
		512: {1.956 / 48, 1.052 / 48},
	})
	// DPITLB/ZIPTLB/RAIDTLB are the per-cluster banks of Table 3.
	DPITLB  = NewCurve(map[int]Metric{54: {0.074 / 16, 0.037 / 16}})
	ZIPTLB  = NewCurve(map[int]Metric{70: {0.091 / 16, 0.044 / 16}})
	RAIDTLB = NewCurve(map[int]Metric{5: {0.050 / 16, 0.023 / 16}})
	// PipeTLB covers the VPP and DMA banks of Table 4 (2 and 3 entries
	// cost the same: the floor).
	PipeTLB = NewCurve(map[int]Metric{3: {0.037 / 12, 0.017 / 12}})
)

// A9Baseline returns the 4-core Cortex-A9 totals McPAT reports when the
// baseline design carries per-core TLBs of the given size (the "4-core A9
// Total" column of Table 2). Published points: 183->4.984/1.909,
// 256->4.999/1.913, 512->5.102/1.971.
func A9Baseline(entriesPerCore int) Metric {
	c := NewCurve(map[int]Metric{
		183: {4.984, 1.909},
		256: {4.999, 1.913},
		512: {5.102, 1.971},
	})
	return c.At(entriesPerCore)
}

// CoreTLBCost returns the added cost of S-NIC core TLBs for a NIC with
// the given core count and per-core entry requirement (Table 2's body).
func CoreTLBCost(cores, entriesPerCore int) Metric {
	return CoreTLB.At(entriesPerCore).Scale(float64(cores))
}

// AccelTLBCost returns the added cost of virtualized-accelerator TLB
// banks (Table 3's body) for the given accelerator curve and cluster
// count.
func AccelTLBCost(curve Curve, perClusterEntries, clusters int) Metric {
	return curve.At(perClusterEntries).Scale(float64(clusters))
}

// PipeTLBCost returns the Table 4 cost for `units` VPPs (or DMA banks)
// with the given per-unit entries.
func PipeTLBCost(entries, units int) Metric {
	return PipeTLB.At(entries).Scale(float64(units))
}

// Headline aggregates the paper's summary claim: relative to a 4-core A9
// with 512-entry baseline TLBs, S-NIC's added TLBs cost +8.89% area and
// +11.45% power. Components: 4 core TLBs (512 entries), 16 clusters each
// of DPI/ZIP/RAID, and 12 VPP + 12 DMA banks.
func Headline() (added Metric, base Metric, areaPct, powerPct float64) {
	base = A9Baseline(512)
	added = CoreTLBCost(4, 512).
		Add(AccelTLBCost(DPITLB, 54, 16)).
		Add(AccelTLBCost(ZIPTLB, 70, 16)).
		Add(AccelTLBCost(RAIDTLB, 5, 16)).
		Add(PipeTLBCost(3, 12)). // VPPs
		Add(PipeTLBCost(2, 12))  // DMA banks
	areaPct = added.AreaMM2 / base.AreaMM2 * 100
	powerPct = added.PowerW / base.PowerW * 100
	return added, base, areaPct, powerPct
}
