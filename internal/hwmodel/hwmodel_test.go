package hwmodel

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// Table 2's published body, reproduced from the calibrated curves.
func TestTable2Reproduction(t *testing.T) {
	cases := []struct {
		entries, cores int
		area, power    float64
	}{
		{183, 4, 0.045, 0.026},
		{183, 8, 0.090, 0.052},
		{183, 16, 0.179, 0.104},
		{183, 48, 0.538, 0.311},
		{256, 4, 0.060, 0.035},
		{256, 48, 0.718, 0.416},
		{512, 4, 0.163, 0.088},
		{512, 16, 0.652, 0.351},
		{512, 48, 1.956, 1.052},
	}
	for _, c := range cases {
		m := CoreTLBCost(c.cores, c.entries)
		approx(t, "area", m.AreaMM2, c.area, 0.002)
		approx(t, "power", m.PowerW, c.power, 0.002)
	}
}

// Table 3: accelerator TLB banks.
func TestTable3Reproduction(t *testing.T) {
	cases := []struct {
		curve       Curve
		entries     int
		clusters    int
		area, power float64
	}{
		{DPITLB, 54, 16, 0.074, 0.037},
		{DPITLB, 54, 8, 0.037, 0.019},
		{DPITLB, 54, 4, 0.019, 0.009},
		{ZIPTLB, 70, 16, 0.091, 0.044},
		{ZIPTLB, 70, 8, 0.046, 0.022},
		{RAIDTLB, 5, 16, 0.050, 0.023},
		{RAIDTLB, 5, 4, 0.012, 0.006},
	}
	for _, c := range cases {
		m := AccelTLBCost(c.curve, c.entries, c.clusters)
		approx(t, "area", m.AreaMM2, c.area, 0.002)
		approx(t, "power", m.PowerW, c.power, 0.002)
	}
}

// Table 4: VPP and DMA banks — and the caption's note that 2 and 3
// entries cost the same (the structure floor).
func TestTable4Reproduction(t *testing.T) {
	for _, c := range []struct {
		units       int
		area, power float64
	}{{12, 0.037, 0.017}, {6, 0.019, 0.009}, {3, 0.009, 0.004}} {
		vpp := PipeTLBCost(3, c.units)
		dmac := PipeTLBCost(2, c.units)
		approx(t, "vpp area", vpp.AreaMM2, c.area, 0.002)
		approx(t, "vpp power", vpp.PowerW, c.power, 0.002)
		if vpp != dmac {
			t.Fatalf("2-entry and 3-entry banks should cost the same (floor)")
		}
	}
}

// Table 5: page-size settings at 48 cores.
func TestTable5Reproduction(t *testing.T) {
	for _, c := range []struct {
		entries     int
		area, power float64
	}{{183, 0.538, 0.311}, {51, 0.214, 0.106}, {13, 0.150, 0.069}} {
		m := CoreTLBCost(48, c.entries)
		approx(t, "area", m.AreaMM2, c.area, 0.002)
		approx(t, "power", m.PowerW, c.power, 0.002)
	}
}

func TestHeadlineMatchesPaper(t *testing.T) {
	_, _, areaPct, powerPct := Headline()
	approx(t, "area %", areaPct, 8.89, 0.25)
	approx(t, "power %", powerPct, 11.45, 0.35)
}

func TestA9BaselinePoints(t *testing.T) {
	for _, c := range []struct {
		entries     int
		area, power float64
	}{{183, 4.984, 1.909}, {256, 4.999, 1.913}, {512, 5.102, 1.971}} {
		m := A9Baseline(c.entries)
		approx(t, "A9 area", m.AreaMM2, c.area, 0.001)
		approx(t, "A9 power", m.PowerW, c.power, 0.001)
	}
}

func TestCurveMonotoneAndFloored(t *testing.T) {
	prev := Metric{}
	for e := 1; e <= 1024; e += 7 {
		m := CoreTLB.At(e)
		if m.AreaMM2 < prev.AreaMM2 || m.PowerW < prev.PowerW {
			t.Fatalf("curve not monotone at %d entries", e)
		}
		prev = m
	}
	if CoreTLB.At(1) != CoreTLB.At(13) {
		t.Fatal("floor not applied")
	}
	// Extrapolation beyond 512 continues the final slope.
	if CoreTLB.At(1024).AreaMM2 <= CoreTLB.At(512).AreaMM2 {
		t.Fatal("no extrapolation")
	}
}

func TestSinglePointCurveScales(t *testing.T) {
	m1 := DPITLB.At(54)
	m2 := DPITLB.At(108)
	approx(t, "2x entries", m2.AreaMM2, 2*m1.AreaMM2, 1e-9)
}

func TestMetricOps(t *testing.T) {
	m := Metric{1, 2}.Add(Metric{3, 4}).Scale(2)
	if m.AreaMM2 != 8 || m.PowerW != 12 {
		t.Fatalf("metric math: %+v", m)
	}
}

func TestEmptyCurve(t *testing.T) {
	if (Curve{}).At(10) != (Metric{}) {
		t.Fatal("empty curve should be zero")
	}
}
