package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBuildsOncePerKey(t *testing.T) {
	var c Cache[int, int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				v := c.Get(k, func() int {
					builds.Add(1)
					return k * 10
				})
				if v != k*10 {
					t.Errorf("Get(%d) = %d, want %d", k, v, k*10)
				}
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 8 {
		t.Errorf("build ran %d times, want 8 (once per key)", got)
	}
	if c.Len() != 8 {
		t.Errorf("Len() = %d, want 8", c.Len())
	}
}

func TestGetSharesPointerValues(t *testing.T) {
	var c Cache[string, *[]int]
	build := func() *[]int { s := []int{1, 2, 3}; return &s }
	a := c.Get("k", build)
	b := c.Get("k", build)
	if a != b {
		t.Error("same key returned distinct values")
	}
}

func TestPeek(t *testing.T) {
	var c Cache[string, int]
	if _, ok := c.Peek("missing"); ok {
		t.Error("Peek on an empty cache reported a value")
	}
	c.Get("k", func() int { return 7 })
	v, ok := c.Peek("k")
	if !ok || v != 7 {
		t.Errorf("Peek(k) = %d, %v; want 7, true", v, ok)
	}
	// Peek never builds: the key it probed must not appear as an entry.
	if _, ok := c.Peek("other"); ok {
		t.Error("Peek built a value")
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d after Peek, want 1", c.Len())
	}
}

// TestPeekDoesNotObserveInFlightBuilds pins the lock-free contract: a
// Peek racing a slow build reports absent rather than blocking on the
// once or returning a half-written value.
func TestPeekDoesNotObserveInFlightBuilds(t *testing.T) {
	var c Cache[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	donec := make(chan struct{})
	go func() {
		defer close(donec)
		c.Get("k", func() int {
			close(started)
			<-release
			return 42
		})
	}()
	<-started
	if _, ok := c.Peek("k"); ok {
		t.Error("Peek observed an in-flight build")
	}
	close(release)
	<-donec
	if v, ok := c.Peek("k"); !ok || v != 42 {
		t.Errorf("Peek after build = %d, %v; want 42, true", v, ok)
	}
}
