package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBuildsOncePerKey(t *testing.T) {
	var c Cache[int, int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				v := c.Get(k, func() int {
					builds.Add(1)
					return k * 10
				})
				if v != k*10 {
					t.Errorf("Get(%d) = %d, want %d", k, v, k*10)
				}
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 8 {
		t.Errorf("build ran %d times, want 8 (once per key)", got)
	}
	if c.Len() != 8 {
		t.Errorf("Len() = %d, want 8", c.Len())
	}
}

func TestGetSharesPointerValues(t *testing.T) {
	var c Cache[string, *[]int]
	build := func() *[]int { s := []int{1, 2, 3}; return &s }
	a := c.Get("k", build)
	b := c.Get("k", build)
	if a != b {
		t.Error("same key returned distinct values")
	}
}
