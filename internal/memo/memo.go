// Package memo provides a tiny keyed build-once cache for immutable
// simulation inputs. The experiment harness runs many jobs that would
// otherwise rebuild identical artifacts — NF tables from the same suite
// config, workload-pool templates from the same seed — so sweeps pay the
// construction cost once and share the result read-only.
//
// Determinism contract: Get's build function must be a pure function of
// the key (the sniclint determinism check covers this package like the
// rest of the simulation path). Under that contract, caching is
// invisible: whichever job reaches a key first builds the same value any
// other job would have, so results stay byte-identical for any worker
// count and any scheduling order. Values handed out are shared across
// goroutines and must never be mutated; mutable per-run state (RNGs,
// cursors) belongs in cheap instantiations derived from the cached
// value, not in the value itself.
package memo

import (
	"sync"
	"sync/atomic"
)

// entry pairs a value slot with the once that fills it; done flips only
// after the build completes, so lock-free readers (Peek) can tell a
// built value from an in-flight or never-requested one.
type entry[V any] struct {
	once sync.Once
	done atomic.Bool
	v    V
}

// Cache is a concurrency-safe map of build-once values. The zero value
// is ready to use.
type Cache[K comparable, V any] struct {
	m sync.Map // K -> *entry[V]
}

// Get returns the value for key, invoking build at most once per key
// across all goroutines. Concurrent callers for the same key block until
// the single build completes and then share its result.
func (c *Cache[K, V]) Get(key K, build func() V) V {
	e, ok := c.m.Load(key)
	if !ok {
		e, _ = c.m.LoadOrStore(key, new(entry[V]))
	}
	en := e.(*entry[V])
	en.once.Do(func() {
		en.v = build()
		en.done.Store(true)
	})
	return en.v
}

// Peek returns the built value for key without building anything. The
// second result is false if the key has never been requested or its
// build has not completed yet. Tests use it to assert reuse — that a
// code path hit the cache rather than rebuilding — without perturbing
// the cache the way a Get with a counting build func would.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	var zero V
	e, ok := c.m.Load(key)
	if !ok {
		return zero, false
	}
	en := e.(*entry[V])
	if !en.done.Load() {
		return zero, false
	}
	return en.v, true
}

// Len reports how many keys have an entry (built or building), for tests
// and diagnostics.
func (c *Cache[K, V]) Len() int {
	n := 0
	c.m.Range(func(any, any) bool { n++; return true })
	return n
}
