package tlb

import (
	"fmt"

	"snic/internal/mem"
	"snic/internal/obs"
)

// Denylist is the hardware-private page table that records physical frames
// the management core must not map (§4.2). The list itself lives in
// hardware-private memory; the NIC OS cannot read or modify it. Only the
// trusted instructions (nf_launch / nf_teardown) mutate it.
type Denylist struct {
	frameSize uint64
	denied    map[uint64]mem.Owner // frame index -> NF that owns it
}

// NewDenylist creates an empty denylist at the given frame granularity.
func NewDenylist(frameSize uint64) *Denylist {
	if frameSize == 0 {
		panic("tlb: zero denylist frame size")
	}
	return &Denylist{frameSize: frameSize, denied: make(map[uint64]mem.Owner)}
}

// Deny records that the byte range [pa, pa+n) belongs to owner and must be
// invisible to the management core.
func (d *Denylist) Deny(pa mem.Addr, n uint64, owner mem.Owner) {
	first := uint64(pa) / d.frameSize
	last := (uint64(pa) + n - 1) / d.frameSize
	for f := first; f <= last; f++ {
		d.denied[f] = owner
	}
}

// Allow removes the byte range [pa, pa+n) from the denylist (the
// "allowlisting" step of nf_destroy in Figure 6).
func (d *Denylist) Allow(pa mem.Addr, n uint64) {
	first := uint64(pa) / d.frameSize
	last := (uint64(pa) + n - 1) / d.frameSize
	for f := first; f <= last; f++ {
		delete(d.denied, f)
	}
}

// AllowOwner removes every frame recorded for owner, returning how many
// frames were allowlisted.
func (d *Denylist) AllowOwner(owner mem.Owner) int {
	n := 0
	for f, o := range d.denied {
		if o == owner {
			delete(d.denied, f)
			n++
		}
	}
	return n
}

// Denied reports whether any byte of [pa, pa+n) is denylisted.
func (d *Denylist) Denied(pa mem.Addr, n uint64) bool {
	if n == 0 {
		n = 1
	}
	first := uint64(pa) / d.frameSize
	last := (uint64(pa) + n - 1) / d.frameSize
	for f := first; f <= last; f++ {
		if _, ok := d.denied[f]; ok {
			return true
		}
	}
	return false
}

// Len returns the number of denylisted frames.
func (d *Denylist) Len() int { return len(d.denied) }

// GuardedBank wraps a normal (software-managed) TLB bank with a denylist
// dual-walk: this is the management core's MMU. The NIC OS may install
// whatever mappings it likes — except ones whose physical target is
// denylisted, which the trusted hardware rejects at fill time.
type GuardedBank struct {
	Bank     *Bank
	Denylist *Denylist
	// obsDenied counts denylist rejections (fill-time and use-time); nil
	// until Observe attaches a collector.
	obsDenied *obs.Counter
}

// NewGuardedBank builds the management-core MMU.
func NewGuardedBank(capacity int, d *Denylist) *GuardedBank {
	return &GuardedBank{Bank: NewBank(capacity), Denylist: d}
}

// Observe attaches the inner bank's counters plus a deny_rejections
// counter to reg. A nil reg leaves the MMU detached.
func (g *GuardedBank) Observe(reg *obs.Registry, device, owner string) {
	if reg == nil {
		return
	}
	g.Bank.Observe(reg, device, owner)
	g.obsDenied = reg.Counter(obs.Label{Device: device, Owner: owner, Component: "tlb", Name: "deny_rejections"})
}

// Install dual-walks the denylist before accepting the mapping, exactly as
// §4.2 describes: "When the management core tries to install a
// virtual-to-physical mapping, the trusted hardware uses the physical
// address in the new mapping to walk the denylist page table."
func (g *GuardedBank) Install(e Entry) error {
	if g.Denylist.Denied(e.PA, e.Size) {
		g.obsDenied.Inc()
		return fmt.Errorf("%w: PA [%#x,+%#x)", ErrDenied, e.PA, e.Size)
	}
	return g.Bank.Install(e)
}

// Translate resolves va. A translation that was legal at install time but
// whose target has since been denylisted (a live NF now owns it) is also
// refused: the trusted hardware re-checks on use, closing the race between
// an old mapping and a new nf_launch.
func (g *GuardedBank) Translate(va VAddr, need Perm) (mem.Addr, error) {
	pa, err := g.Bank.Translate(va, need)
	if err != nil {
		return 0, err
	}
	if g.Denylist.Denied(pa, 1) {
		g.obsDenied.Inc()
		return 0, ErrDenied
	}
	return pa, nil
}

// Evict removes the entry mapping va, modelling a software TLB flush. The
// management bank is never locked, so eviction is always allowed.
func (g *GuardedBank) Evict(va VAddr) bool {
	for i, e := range g.Bank.entries {
		if e.contains(va) {
			g.Bank.entries = append(g.Bank.entries[:i], g.Bank.entries[i+1:]...)
			return true
		}
	}
	return false
}
