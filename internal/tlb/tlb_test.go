package tlb

import (
	"errors"
	"testing"
	"testing/quick"

	"snic/internal/mem"
	"snic/internal/sim"
)

const page = 1 << 17 // 128 KB

func entry(vaPage, paPage int, perm Perm) Entry {
	return Entry{
		VA:   VAddr(vaPage * page),
		PA:   mem.Addr(paPage * page),
		Size: page,
		Perm: perm,
	}
}

func TestInstallAndTranslate(t *testing.T) {
	b := NewBank(4)
	if err := b.Install(entry(0, 10, PermRW)); err != nil {
		t.Fatal(err)
	}
	if err := b.Install(entry(1, 20, PermRead)); err != nil {
		t.Fatal(err)
	}
	pa, err := b.Translate(VAddr(100), PermRead)
	if err != nil || pa != mem.Addr(10*page+100) {
		t.Fatalf("translate = %#x, %v", pa, err)
	}
	pa, err = b.Translate(VAddr(page+5), PermRead)
	if err != nil || pa != mem.Addr(20*page+5) {
		t.Fatalf("translate = %#x, %v", pa, err)
	}
}

func TestTranslateMiss(t *testing.T) {
	b := NewBank(2)
	b.Install(entry(0, 1, PermRW))
	if _, err := b.Translate(VAddr(5*page), PermRead); !errors.Is(err, ErrMiss) {
		t.Fatalf("err = %v", err)
	}
	if b.Misses() != 1 {
		t.Fatalf("misses = %d", b.Misses())
	}
}

func TestTranslatePermission(t *testing.T) {
	b := NewBank(2)
	b.Install(entry(0, 1, PermRead))
	if _, err := b.Translate(0, PermWrite); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v", err)
	}
	// A permission violation is not a miss.
	if b.Misses() != 0 {
		t.Fatal("permission fault counted as miss")
	}
}

func TestLockPreventsInstall(t *testing.T) {
	b := NewBank(2)
	b.Install(entry(0, 1, PermRW))
	b.Lock()
	if err := b.Install(entry(1, 2, PermRW)); !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v", err)
	}
	if !b.Locked() {
		t.Fatal("not locked")
	}
	// Translation still works when locked.
	if _, err := b.Translate(0, PermRead); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	b := NewBank(1)
	b.Install(entry(0, 1, PermRW))
	if err := b.Install(entry(1, 2, PermRW)); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectMalformedEntries(t *testing.T) {
	b := NewBank(4)
	bad := []Entry{
		{VA: 0, PA: 0, Size: 0, Perm: PermRW},    // zero size
		{VA: 5, PA: 0, Size: page, Perm: PermRW}, // unaligned VA
		{VA: 0, PA: 5, Size: page, Perm: PermRW}, // unaligned PA
		{VA: 0, PA: 0, Size: page, Perm: 0},      // no perms
	}
	for i, e := range bad {
		if err := b.Install(e); !errors.Is(err, ErrBadEntry) {
			t.Errorf("bad entry %d accepted: %v", i, err)
		}
	}
}

func TestRejectOverlap(t *testing.T) {
	b := NewBank(4)
	b.Install(Entry{VA: 0, PA: 0, Size: 4 * page, Perm: PermRW})
	overlap := Entry{VA: 2 * page, PA: mem.Addr(8 * page), Size: page, Perm: PermRW}
	if err := b.Install(overlap); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("overlap accepted: %v", err)
	}
}

func TestVariablePageSizes(t *testing.T) {
	b := NewBank(3)
	sizes := []uint64{128 << 10, 2 << 20, 32 << 20}
	va := uint64(0)
	pa := uint64(1 << 30)
	for _, s := range sizes {
		va = (va + s - 1) / s * s
		pa = (pa + s - 1) / s * s
		if err := b.Install(Entry{VA: VAddr(va), PA: mem.Addr(pa), Size: s, Perm: PermRW}); err != nil {
			t.Fatalf("size %d: %v", s, err)
		}
		got, err := b.Translate(VAddr(va+s-1), PermRead)
		if err != nil || got != mem.Addr(pa+s-1) {
			t.Fatalf("size %d: translate last byte = %#x, %v", s, got, err)
		}
		va += s
		pa += s
	}
	if b.TotalMapped() != (128<<10)+(2<<20)+(32<<20) {
		t.Fatalf("TotalMapped = %d", b.TotalMapped())
	}
}

func TestDenylistDeniesAndAllows(t *testing.T) {
	d := NewDenylist(page)
	d.Deny(mem.Addr(4*page), 2*page, mem.FirstNF)
	if !d.Denied(mem.Addr(4*page), 1) || !d.Denied(mem.Addr(5*page+10), 1) {
		t.Fatal("denied range not detected")
	}
	if d.Denied(mem.Addr(3*page), page) {
		t.Fatal("false positive below range")
	}
	// Straddling access touches a denied frame.
	if !d.Denied(mem.Addr(3*page+page/2), page) {
		t.Fatal("straddling access not detected")
	}
	d.Allow(mem.Addr(4*page), 2*page)
	if d.Denied(mem.Addr(4*page), 2*page) {
		t.Fatal("allow did not clear")
	}
}

func TestDenylistAllowOwner(t *testing.T) {
	d := NewDenylist(page)
	d.Deny(0, 2*page, mem.FirstNF)
	d.Deny(mem.Addr(10*page), page, mem.FirstNF+1)
	if n := d.AllowOwner(mem.FirstNF); n != 2 {
		t.Fatalf("allowlisted %d frames", n)
	}
	if d.Denied(0, 2*page) {
		t.Fatal("owner frames still denied")
	}
	if !d.Denied(mem.Addr(10*page), 1) {
		t.Fatal("other owner's frames cleared")
	}
}

func TestGuardedBankRejectsDeniedFill(t *testing.T) {
	d := NewDenylist(page)
	d.Deny(mem.Addr(8*page), page, mem.FirstNF)
	g := NewGuardedBank(8, d)
	// Mapping to an NF-owned physical page must be rejected at fill time.
	err := g.Install(entry(0, 8, PermRW))
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("denied fill accepted: %v", err)
	}
	// A mapping to free memory is fine.
	if err := g.Install(entry(0, 2, PermRW)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Translate(0, PermRead); err != nil {
		t.Fatal(err)
	}
}

func TestGuardedBankRevokesStaleMapping(t *testing.T) {
	d := NewDenylist(page)
	g := NewGuardedBank(8, d)
	if err := g.Install(entry(0, 3, PermRW)); err != nil {
		t.Fatal(err)
	}
	// The OS held a valid mapping; then an NF launched over that memory.
	d.Deny(mem.Addr(3*page), page, mem.FirstNF)
	if _, err := g.Translate(0, PermRead); !errors.Is(err, ErrDenied) {
		t.Fatalf("stale mapping still usable: %v", err)
	}
}

func TestGuardedBankEvict(t *testing.T) {
	d := NewDenylist(page)
	g := NewGuardedBank(8, d)
	g.Install(entry(0, 3, PermRW))
	if !g.Evict(VAddr(10)) {
		t.Fatal("evict failed")
	}
	if g.Evict(VAddr(10)) {
		t.Fatal("double evict succeeded")
	}
	if _, err := g.Translate(0, PermRead); !errors.Is(err, ErrMiss) {
		t.Fatalf("err = %v", err)
	}
}

func TestEntriesReturnsCopy(t *testing.T) {
	b := NewBank(2)
	b.Install(entry(0, 1, PermRW))
	es := b.Entries()
	es[0].PA = 0xDEAD0000
	if pa, _ := b.Translate(0, PermRead); pa == 0xDEAD0000 {
		t.Fatal("Entries exposed internal state")
	}
}

// Property: for any set of non-overlapping entries, every address inside
// a mapping translates to the right physical byte, and every address
// outside all mappings misses.
func TestTranslationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		b := NewBank(16)
		type m struct {
			va   uint64
			pa   uint64
			size uint64
		}
		var installed []m
		va := uint64(0)
		for i := 0; i < 8; i++ {
			size := uint64(1) << (12 + rng.Intn(8)) // 4KB..512KB
			va = (va + size - 1) / size * size
			if rng.Intn(3) == 0 {
				va += size // leave a hole
			}
			pa := (uint64(rng.Intn(1<<12)) << 20) / size * size
			if err := b.Install(Entry{VA: VAddr(va), PA: mem.Addr(pa), Size: size, Perm: PermRW}); err != nil {
				return false
			}
			installed = append(installed, m{va, pa, size})
			va += size
		}
		for trial := 0; trial < 200; trial++ {
			q := uint64(rng.Intn(int(va + 1<<20)))
			var want *m
			for i := range installed {
				e := &installed[i]
				if q >= e.va && q < e.va+e.size {
					want = e
					break
				}
			}
			got, err := b.Translate(VAddr(q), PermRead)
			if want == nil {
				if err == nil {
					return false
				}
				continue
			}
			if err != nil || uint64(got) != want.pa+(q-want.va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
