// Package tlb models the translation hardware S-NIC places in front of
// programmable cores, accelerator clusters, packet schedulers, and DMA
// banks (§4.2–§4.4 of the paper).
//
// Two mechanisms matter for isolation:
//
//   - Locked TLB banks. nf_launch installs a small number of
//     variable-page-size entries covering exactly the NF's memory, then
//     locks the bank read-only. Any later miss is treated as a fatal NF
//     bug ("any subsequent TLB misses represent a bug in the network
//     function, and cause S-NIC to destroy the function").
//
//   - Denylist page tables. The management core keeps its normal page
//     table, but every attempt to install a virtual→physical mapping is
//     dual-walked (EPT-style) against a hardware-private denylist; if the
//     physical page belongs to a live NF, the fill is rejected. This is
//     how the untrusted NIC OS is excluded from NF memory without
//     trusting the NIC OS's own paging code.
package tlb

import (
	"fmt"
	"sort"

	"snic/internal/mem"
	"snic/internal/obs"
)

// Perm is a permission bitmask for a mapping.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
	PermRW = PermRead | PermWrite
)

// VAddr is a virtual address in an NF's (or device's) address space.
type VAddr uint64

// Entry maps a contiguous virtual page to a physical page.
type Entry struct {
	VA   VAddr    // virtual base, aligned to Size
	PA   mem.Addr // physical base, aligned to Size
	Size uint64   // page size in bytes (variable: 128 KB .. 128 MB)
	Perm Perm
}

func (e Entry) contains(va VAddr) bool {
	return va >= e.VA && uint64(va-e.VA) < e.Size
}

// Errors returned by the TLB hardware.
var (
	ErrMiss      = fmt.Errorf("tlb: miss (fatal for a locked S-NIC bank)")
	ErrPerm      = fmt.Errorf("tlb: permission violation")
	ErrLocked    = fmt.Errorf("tlb: bank is locked")
	ErrFull      = fmt.Errorf("tlb: bank is full")
	ErrDenied    = fmt.Errorf("tlb: physical page is denylisted")
	ErrBadEntry  = fmt.Errorf("tlb: malformed entry")
	ErrNotLocked = fmt.Errorf("tlb: bank must be locked before use")
)

// Bank is a fully-associative TLB with a fixed number of entries.
// S-NIC banks are filled by nf_launch and then locked.
type Bank struct {
	capacity int
	entries  []Entry
	locked   bool
	// Misses counts failed translations; on a locked bank every miss is
	// fatal to the owning NF, so the owner watches this via the device.
	misses uint64
	// obs handles; nil until Observe attaches a collector.
	obsFills, obsMisses, obsLockedFaults *obs.Counter
}

// NewBank returns an empty bank with the given entry capacity.
func NewBank(capacity int) *Bank {
	return &Bank{capacity: capacity}
}

// Capacity returns the maximum number of entries.
func (b *Bank) Capacity() int { return b.capacity }

// Len returns the number of installed entries.
func (b *Bank) Len() int { return len(b.entries) }

// Locked reports whether the bank has been locked read-only.
func (b *Bank) Locked() bool { return b.locked }

// Misses returns the count of failed translations.
func (b *Bank) Misses() uint64 { return b.misses }

// Observe attaches fill/miss/locked-fault counters to reg under the
// given device and owner labels (component "tlb"). A nil reg leaves the
// bank detached.
func (b *Bank) Observe(reg *obs.Registry, device, owner string) {
	if reg == nil {
		return
	}
	b.obsFills = reg.Counter(obs.Label{Device: device, Owner: owner, Component: "tlb", Name: "fills"})
	b.obsMisses = reg.Counter(obs.Label{Device: device, Owner: owner, Component: "tlb", Name: "misses"})
	b.obsLockedFaults = reg.Counter(obs.Label{Device: device, Owner: owner, Component: "tlb", Name: "locked_faults"})
}

// Install adds an entry. It fails if the bank is locked, full, the entry
// is malformed, or it overlaps an existing virtual range.
func (b *Bank) Install(e Entry) error {
	if b.locked {
		return ErrLocked
	}
	if len(b.entries) >= b.capacity {
		return ErrFull
	}
	if e.Size == 0 || uint64(e.VA)%e.Size != 0 || uint64(e.PA)%e.Size != 0 || e.Perm == 0 {
		return ErrBadEntry
	}
	for _, x := range b.entries {
		if uint64(e.VA) < uint64(x.VA)+x.Size && uint64(x.VA) < uint64(e.VA)+e.Size {
			return fmt.Errorf("%w: VA overlap [%#x,+%#x)", ErrBadEntry, e.VA, e.Size)
		}
	}
	b.entries = append(b.entries, e)
	sort.Slice(b.entries, func(i, j int) bool { return b.entries[i].VA < b.entries[j].VA })
	b.obsFills.Inc()
	return nil
}

// Lock makes the bank read-only. After Lock, Install fails and misses are
// fatal errors surfaced to the device.
func (b *Bank) Lock() { b.locked = true }

// Translate resolves va with the required permission, returning the
// physical address.
func (b *Bank) Translate(va VAddr, need Perm) (mem.Addr, error) {
	// Binary search over sorted, non-overlapping entries.
	lo, hi := 0, len(b.entries)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		e := b.entries[mid]
		switch {
		case e.contains(va):
			if e.Perm&need != need {
				return 0, ErrPerm
			}
			return e.PA + mem.Addr(uint64(va-e.VA)), nil
		case va < e.VA:
			hi = mid - 1
		default:
			lo = mid + 1
		}
	}
	b.misses++
	b.obsMisses.Inc()
	if b.locked {
		// On a locked S-NIC bank a miss is a fatal fault, not a refill.
		b.obsLockedFaults.Inc()
	}
	return 0, ErrMiss
}

// Entries returns a copy of the installed entries (for attestation
// hashing and tests).
func (b *Bank) Entries() []Entry {
	return append([]Entry(nil), b.entries...)
}

// TotalMapped returns the number of virtual bytes the bank covers.
func (b *Bank) TotalMapped() uint64 {
	var n uint64
	for _, e := range b.entries {
		n += e.Size
	}
	return n
}
