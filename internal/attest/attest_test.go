package attest

import (
	"bytes"
	"errors"
	"testing"
)

func testDevice(t *testing.T) (*Vendor, *Device) {
	t.Helper()
	v, err := NewVendor("SNIC Vendor Inc", nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(v, "SN-0001")
	if err != nil {
		t.Fatal(err)
	}
	return v, d
}

func launchHashFor(code string) [32]byte {
	var lh LaunchHash
	lh.Add("code", []byte(code))
	lh.Add("rules", []byte("dstport=80"))
	return lh.Sum()
}

func TestFullAttestationFlow(t *testing.T) {
	v, d := testDevice(t)
	hash := launchHashFor("nf binary v1")
	nonce := []byte("verifier-nonce-123")

	q, x, err := d.Attest(hash, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(v.PublicKey(), q, hash, nonce); err != nil {
		t.Fatal(err)
	}
	verifierPub, verifierKey, err := VerifierExchange(q)
	if err != nil {
		t.Fatal(err)
	}
	deviceKey := CompleteExchange(verifierPub, x)
	if deviceKey != verifierKey {
		t.Fatal("DH shared keys disagree")
	}
}

func TestVerifyRejectsWrongHash(t *testing.T) {
	v, d := testDevice(t)
	nonce := []byte("n")
	q, _, _ := d.Attest(launchHashFor("genuine"), nonce)
	if err := Verify(v.PublicKey(), q, launchHashFor("tampered"), nonce); !errors.Is(err, ErrWrongHash) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	v, d := testDevice(t)
	h := launchHashFor("x")
	q, _, _ := d.Attest(h, []byte("nonce-A"))
	if err := Verify(v.PublicKey(), q, h, []byte("nonce-B")); !errors.Is(err, ErrWrongNonce) {
		t.Fatalf("err = %v", err)
	}
	if err := Verify(v.PublicKey(), q, h, nil); !errors.Is(err, ErrWrongNonce) {
		t.Fatalf("empty nonce: %v", err)
	}
}

func TestVerifyRejectsForeignVendor(t *testing.T) {
	_, d := testDevice(t)
	other, _ := NewVendor("Mallory Silicon", nil)
	h := launchHashFor("x")
	nonce := []byte("n")
	q, _, _ := d.Attest(h, nonce)
	if err := Verify(other.PublicKey(), q, h, nonce); !errors.Is(err, ErrBadVendorSig) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsTamperedQuote(t *testing.T) {
	v, d := testDevice(t)
	h := launchHashFor("x")
	nonce := []byte("n")
	q, _, _ := d.Attest(h, nonce)
	// An attacker substitutes their own DH contribution (MITM attempt).
	q.DHPub.Add(q.DHPub, Group14G)
	if err := Verify(v.PublicKey(), q, h, nonce); !errors.Is(err, ErrBadQuoteSig) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsSubstitutedAK(t *testing.T) {
	v, d := testDevice(t)
	_, d2 := testDevice(t)
	h := launchHashFor("x")
	nonce := []byte("n")
	q, _, _ := d.Attest(h, nonce)
	q2, _, _ := d2.Attest(h, nonce)
	// Splice another device's AK (signed by a different EK) into the quote.
	q.AKPub, q.AKSig = q2.AKPub, q2.AKSig
	if err := Verify(v.PublicKey(), q, h, nonce); err == nil {
		t.Fatal("spliced AK accepted")
	}
}

func TestRebootRotatesAK(t *testing.T) {
	v, d := testDevice(t)
	h := launchHashFor("x")
	q1, _, _ := d.Attest(h, []byte("n1"))
	if err := d.Reboot(); err != nil {
		t.Fatal(err)
	}
	q2, _, _ := d.Attest(h, []byte("n2"))
	if bytes.Equal(q1.AKPub, q2.AKPub) {
		t.Fatal("AK not rotated across reboot")
	}
	// Both attest chains remain valid under the same vendor root.
	if err := Verify(v.PublicKey(), q2, h, []byte("n2")); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchHashOrderAndContentSensitivity(t *testing.T) {
	var a, b, c LaunchHash
	a.Add("code", []byte("x"))
	a.Add("rules", []byte("y"))
	b.Add("rules", []byte("y"))
	b.Add("code", []byte("x"))
	c.Add("code", []byte("x"))
	c.Add("rules", []byte("z"))
	if a.Sum() == b.Sum() {
		t.Fatal("hash insensitive to component order")
	}
	if a.Sum() == c.Sum() {
		t.Fatal("hash insensitive to content")
	}
	if a.Components() != 2 {
		t.Fatalf("components = %d", a.Components())
	}
}

func TestChannelRoundTrip(t *testing.T) {
	key := [32]byte{1, 2, 3}
	a, err := NewChannel(key)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewChannel(key)
	for i := 0; i < 10; i++ {
		msg := []byte("tls keys for flow 42")
		ct := a.Seal(msg)
		pt, err := b.Open(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestChannelRejectsReplay(t *testing.T) {
	key := [32]byte{9}
	a, _ := NewChannel(key)
	b, _ := NewChannel(key)
	ct := a.Seal([]byte("m0"))
	if _, err := b.Open(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(ct); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: %v", err)
	}
}

func TestChannelRejectsTampering(t *testing.T) {
	key := [32]byte{7}
	a, _ := NewChannel(key)
	b, _ := NewChannel(key)
	ct := a.Seal([]byte("payload"))
	ct[len(ct)-1] ^= 1
	if _, err := b.Open(ct); !errors.Is(err, ErrForged) {
		t.Fatalf("tamper: %v", err)
	}
	if _, err := b.Open([]byte{1, 2}); !errors.Is(err, ErrForged) {
		t.Fatalf("short datagram: %v", err)
	}
}

func TestChannelRejectsWrongKey(t *testing.T) {
	a, _ := NewChannel([32]byte{1})
	b, _ := NewChannel([32]byte{2})
	if _, err := b.Open(a.Seal([]byte("m"))); !errors.Is(err, ErrForged) {
		t.Fatal("wrong-key datagram accepted")
	}
}
