// Package attest implements S-NIC's remote-attestation machinery
// (§4.7 and Appendix A):
//
//   - At manufacturing time a NIC receives an endorsement key pair (EK)
//     whose public half is certified by the hardware vendor.
//   - After each boot the NIC generates an attestation key pair (AK) and
//     signs AK_pub with EK_priv.
//   - nf_launch accumulates a SHA-256 hash of everything that defines the
//     launched function (code/data pages, core mask, switching rules,
//     accelerator bindings).
//   - nf_attest signs (launch hash ‖ DH parameters ‖ nonce) with AK_priv;
//     the verifier checks the chain vendor→EK→AK→quote, then completes a
//     classic Diffie–Hellman exchange (RFC 3526 group 14) yielding a
//     shared key known only to the function and the verifier.
//
// Keys are ECDSA P-256 (the hardware would use whatever its crypto block
// provides; the protocol is agnostic). Everything uses only the standard
// library.
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// Vendor is the NIC manufacturer's certificate authority.
type Vendor struct {
	Name string
	priv *ecdsa.PrivateKey
}

// NewVendor creates a vendor CA. rng may be nil (crypto/rand is used);
// tests pass a deterministic reader.
func NewVendor(name string, rng io.Reader) (*Vendor, error) {
	if rng == nil {
		rng = rand.Reader
	}
	k, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, err
	}
	return &Vendor{Name: name, priv: k}, nil
}

// PublicKey returns the vendor's root public key (distributed to
// verifiers out of band).
func (v *Vendor) PublicKey() *ecdsa.PublicKey { return &v.priv.PublicKey }

// EndorsementCert binds an EK public key to a device serial, signed by
// the vendor.
type EndorsementCert struct {
	Serial string
	EKPub  []byte // marshaled point
	Sig    []byte
}

// Endorse issues an endorsement certificate for a device EK.
func (v *Vendor) Endorse(serial string, ekPub *ecdsa.PublicKey) (EndorsementCert, error) {
	pub := elliptic.Marshal(elliptic.P256(), ekPub.X, ekPub.Y)
	digest := certDigest(serial, pub)
	sig, err := ecdsa.SignASN1(rand.Reader, v.priv, digest)
	if err != nil {
		return EndorsementCert{}, err
	}
	return EndorsementCert{Serial: serial, EKPub: pub, Sig: sig}, nil
}

func certDigest(serial string, pub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("snic-endorsement-v1"))
	h.Write([]byte(serial))
	h.Write(pub)
	return h.Sum(nil)
}

// Device is the trusted hardware's key state: EK burned in at
// manufacturing, AK regenerated per boot.
type Device struct {
	Serial string
	ekPriv *ecdsa.PrivateKey
	ekCert EndorsementCert
	akPriv *ecdsa.PrivateKey
	akSig  []byte // AK_pub signed by EK_priv
}

// NewDevice manufactures a device under the vendor and performs its first
// boot (generating an AK).
func NewDevice(v *Vendor, serial string) (*Device, error) {
	ek, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	cert, err := v.Endorse(serial, &ek.PublicKey)
	if err != nil {
		return nil, err
	}
	d := &Device{Serial: serial, ekPriv: ek, ekCert: cert}
	if err := d.Reboot(); err != nil {
		return nil, err
	}
	return d, nil
}

// Reboot regenerates the attestation key, as the paper specifies happens
// after every NIC reset.
func (d *Device) Reboot() error {
	ak, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return err
	}
	akPub := elliptic.Marshal(elliptic.P256(), ak.PublicKey.X, ak.PublicKey.Y)
	sig, err := ecdsa.SignASN1(rand.Reader, d.ekPriv, akDigest(akPub))
	if err != nil {
		return err
	}
	d.akPriv = ak
	d.akSig = sig
	return nil
}

func akDigest(akPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("snic-ak-v1"))
	h.Write(akPub)
	return h.Sum(nil)
}

// LaunchHash is the cumulative SHA-256 nf_launch builds over function
// state (§4.6).
type LaunchHash struct {
	h [32]byte
	n int
}

// Add folds a labeled component (code pages, rules, masks) into the hash.
func (l *LaunchHash) Add(label string, data []byte) {
	h := sha256.New()
	h.Write(l.h[:])
	var lb [8]byte
	binary.BigEndian.PutUint64(lb[:], uint64(len(label)))
	h.Write(lb[:])
	h.Write([]byte(label))
	h.Write(data)
	copy(l.h[:], h.Sum(nil))
	l.n++
}

// Sum returns the current cumulative hash.
func (l *LaunchHash) Sum() [32]byte { return l.h }

// Components returns how many components have been folded in.
func (l *LaunchHash) Components() int { return l.n }

// Group14P is the RFC 3526 2048-bit MODP prime; G is its generator.
var (
	Group14P, _ = new(big.Int).SetString(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"+
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"+
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"+
			"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"+
			"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"+
			"9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"+
			"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"+
			"3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF", 16)
	Group14G = big.NewInt(2)
)

// Quote is the four-part message of Appendix A: the DH contribution and
// launch hash, the AK signature over them, the EK-signed AK, and the
// vendor-signed EK certificate.
type Quote struct {
	LaunchHash [32]byte
	G, P       *big.Int
	Nonce      []byte
	DHPub      *big.Int // g^x mod p
	QuoteSig   []byte   // AK_priv over (hash ‖ g ‖ p ‖ nonce ‖ g^x)
	AKPub      []byte
	AKSig      []byte // EK_priv over AK_pub
	EKCert     EndorsementCert
}

func quoteDigest(hash [32]byte, g, p *big.Int, nonce []byte, dhPub *big.Int) []byte {
	h := sha256.New()
	h.Write([]byte("snic-quote-v1"))
	h.Write(hash[:])
	h.Write(g.Bytes())
	h.Write(p.Bytes())
	h.Write(nonce)
	h.Write(dhPub.Bytes())
	return h.Sum(nil)
}

// Attest implements nf_attest: given the launch hash of a running
// function and a verifier nonce, generate the device's DH contribution
// and sign the quote. It returns the quote plus the device-side DH secret
// x (held in hardware-private registers; callers use it with
// CompleteExchange).
func (d *Device) Attest(launch [32]byte, nonce []byte) (Quote, *big.Int, error) {
	x, err := rand.Int(rand.Reader, Group14P)
	if err != nil {
		return Quote{}, nil, err
	}
	dhPub := new(big.Int).Exp(Group14G, x, Group14P)
	sig, err := ecdsa.SignASN1(rand.Reader, d.akPriv, quoteDigest(launch, Group14G, Group14P, nonce, dhPub))
	if err != nil {
		return Quote{}, nil, err
	}
	akPub := elliptic.Marshal(elliptic.P256(), d.akPriv.PublicKey.X, d.akPriv.PublicKey.Y)
	return Quote{
		LaunchHash: launch,
		G:          Group14G, P: Group14P,
		Nonce:    append([]byte(nil), nonce...),
		DHPub:    dhPub,
		QuoteSig: sig,
		AKPub:    akPub,
		AKSig:    append([]byte(nil), d.akSig...),
		EKCert:   d.ekCert,
	}, x, nil
}

// Errors returned by Verify.
var (
	ErrBadVendorSig = fmt.Errorf("attest: EK certificate not signed by vendor")
	ErrBadAKSig     = fmt.Errorf("attest: AK not signed by endorsed EK")
	ErrBadQuoteSig  = fmt.Errorf("attest: quote signature invalid")
	ErrWrongNonce   = fmt.Errorf("attest: nonce mismatch (replay?)")
	ErrWrongHash    = fmt.Errorf("attest: launch hash does not match expected function")
	ErrBadGroup     = fmt.Errorf("attest: unexpected DH group")
)

// Verify checks the full chain of a quote against the vendor root, the
// expected launch hash, and the verifier's nonce.
func Verify(vendorPub *ecdsa.PublicKey, q Quote, expectedHash [32]byte, nonce []byte) error {
	// 1. Vendor signed the EK.
	if !ecdsa.VerifyASN1(vendorPub, certDigest(q.EKCert.Serial, q.EKCert.EKPub), q.EKCert.Sig) {
		return ErrBadVendorSig
	}
	ekX, ekY := elliptic.Unmarshal(elliptic.P256(), q.EKCert.EKPub)
	if ekX == nil {
		return ErrBadVendorSig
	}
	ekPub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: ekX, Y: ekY}
	// 2. EK signed the AK.
	if !ecdsa.VerifyASN1(ekPub, akDigest(q.AKPub), q.AKSig) {
		return ErrBadAKSig
	}
	akX, akY := elliptic.Unmarshal(elliptic.P256(), q.AKPub)
	if akX == nil {
		return ErrBadAKSig
	}
	akPub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: akX, Y: akY}
	// 3. AK signed the quote.
	if q.G.Cmp(Group14G) != 0 || q.P.Cmp(Group14P) != 0 {
		return ErrBadGroup
	}
	if !ecdsa.VerifyASN1(akPub, quoteDigest(q.LaunchHash, q.G, q.P, q.Nonce, q.DHPub), q.QuoteSig) {
		return ErrBadQuoteSig
	}
	// 4. Freshness and identity.
	if len(nonce) == 0 || len(q.Nonce) != len(nonce) || !equalBytes(q.Nonce, nonce) {
		return ErrWrongNonce
	}
	if q.LaunchHash != expectedHash {
		return ErrWrongHash
	}
	return nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

// VerifierExchange is the verifier's half of the DH exchange: given a
// verified quote it produces g^y and the shared key.
func VerifierExchange(q Quote) (dhPub *big.Int, shared [32]byte, err error) {
	y, err := rand.Int(rand.Reader, Group14P)
	if err != nil {
		return nil, shared, err
	}
	pub := new(big.Int).Exp(Group14G, y, Group14P)
	s := new(big.Int).Exp(q.DHPub, y, Group14P)
	return pub, sha256.Sum256(s.Bytes()), nil
}

// CompleteExchange derives the function side's shared key from the
// verifier's g^y and the device secret x.
func CompleteExchange(verifierPub *big.Int, x *big.Int) [32]byte {
	s := new(big.Int).Exp(verifierPub, x, Group14P)
	return sha256.Sum256(s.Bytes())
}
