package attest

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// Channel is the encrypted link two attested endpoints run over the
// untrusted datacenter network (and over the snoopable NIC/host bus) once
// the DH exchange completes: AES-256-GCM under the shared key, with a
// strictly increasing sequence number as nonce so replayed or reordered
// datagrams are rejected.
type Channel struct {
	aead    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
}

// NewChannel builds a channel from a DH-derived shared key.
func NewChannel(key [32]byte) (*Channel, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Channel{aead: aead}, nil
}

// Seal encrypts and authenticates payload, binding it to the channel's
// next send sequence number.
func (c *Channel) Seal(payload []byte) []byte {
	nonce := make([]byte, c.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], c.sendSeq)
	out := make([]byte, 8, 8+len(payload)+c.aead.Overhead())
	binary.BigEndian.PutUint64(out, c.sendSeq)
	c.sendSeq++
	return c.aead.Seal(out, nonce, payload, out[:8])
}

// Errors returned by Open.
var (
	ErrReplay = fmt.Errorf("attest: replayed or reordered datagram")
	ErrForged = fmt.Errorf("attest: authentication failed")
)

// Open authenticates and decrypts a datagram produced by the peer's Seal.
func (c *Channel) Open(datagram []byte) ([]byte, error) {
	if len(datagram) < 8 {
		return nil, ErrForged
	}
	seq := binary.BigEndian.Uint64(datagram[:8])
	if seq < c.recvSeq {
		return nil, ErrReplay
	}
	nonce := make([]byte, c.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], seq)
	pt, err := c.aead.Open(nil, nonce, datagram[8:], datagram[:8])
	if err != nil {
		return nil, ErrForged
	}
	c.recvSeq = seq + 1
	return pt, nil
}
