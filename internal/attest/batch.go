// Batched attestation: one crypto pass over N pending launches.
//
// Under serverless churn (λ-NIC-style workloads) nf_attest dominates the
// control path: every quote costs a fresh 2048-bit DH contribution and
// an AK signature. A batch quote amortizes both — the device builds a
// Merkle tree over the N launch hashes, draws one DH secret, and signs
// (root ‖ DH params ‖ nonce) once. Each function then carries a compact
// inclusion proof, and a verifier that trusts the batch root trusts
// every member. The single-NF Attest path above is untouched, so
// existing quotes stay bit-identical.
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
)

// BatchQuote is the batched analogue of Quote: the Merkle root of N
// launch hashes stands where the single launch hash stood, and the AK
// signature covers (root ‖ leaves ‖ g ‖ p ‖ nonce ‖ g^x).
type BatchQuote struct {
	Root    [32]byte
	Leaves  int
	G, P    *big.Int
	Nonce   []byte
	DHPub   *big.Int // g^x mod p, shared by the whole batch
	RootSig []byte   // AK_priv over the batch digest
	AKPub   []byte
	AKSig   []byte // EK_priv over AK_pub
	EKCert  EndorsementCert
}

// BatchProof is one function's membership proof: its leaf index and the
// sibling hashes from leaf to root.
type BatchProof struct {
	LaunchHash [32]byte
	Index      int
	Path       [][32]byte
}

// Domain-separated Merkle hashing: leaves and interior nodes use
// distinct prefixes so a leaf can never be reinterpreted as a node.
func merkleLeaf(h [32]byte) [32]byte {
	s := sha256.New()
	s.Write([]byte("snic-batch-leaf-v1"))
	s.Write(h[:])
	var out [32]byte
	copy(out[:], s.Sum(nil))
	return out
}

func merkleNode(l, r [32]byte) [32]byte {
	s := sha256.New()
	s.Write([]byte("snic-batch-node-v1"))
	s.Write(l[:])
	s.Write(r[:])
	var out [32]byte
	copy(out[:], s.Sum(nil))
	return out
}

// merkleTree builds the tree bottom-up and returns the root plus one
// sibling path per leaf. An odd tail node is paired with itself, the
// usual padding rule.
func merkleTree(hashes [][32]byte) ([32]byte, [][][32]byte) {
	n := len(hashes)
	paths := make([][][32]byte, n)
	level := make([][32]byte, n)
	for i, h := range hashes {
		level[i] = merkleLeaf(h)
	}
	// pos[i] tracks leaf i's node index in the current level.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for j := 0; j < len(level); j += 2 {
			l := level[j]
			r := l
			if j+1 < len(level) {
				r = level[j+1]
			}
			next = append(next, merkleNode(l, r))
		}
		for i := range pos {
			j := pos[i]
			sib := j ^ 1
			if sib >= len(level) {
				sib = j // odd tail: self-paired
			}
			paths[i] = append(paths[i], level[sib])
			pos[i] = j / 2
		}
		level = next
	}
	return level[0], paths
}

func batchDigest(root [32]byte, leaves int, g, p *big.Int, nonce []byte, dhPub *big.Int) []byte {
	h := sha256.New()
	h.Write([]byte("snic-batch-quote-v1"))
	h.Write(root[:])
	var lb [8]byte
	binary.BigEndian.PutUint64(lb[:], uint64(leaves))
	h.Write(lb[:])
	h.Write(g.Bytes())
	h.Write(p.Bytes())
	h.Write(nonce)
	h.Write(dhPub.Bytes())
	return h.Sum(nil)
}

// AttestBatch quotes N pending launch hashes in one crypto pass: one DH
// contribution and one AK signature over the Merkle root, with a
// per-function inclusion proof. It returns the quote, the proofs (one
// per hash, in input order), and the device-side DH secret x, exactly
// as Attest does for one function.
func (d *Device) AttestBatch(hashes [][32]byte, nonce []byte) (BatchQuote, []BatchProof, *big.Int, error) {
	if len(hashes) == 0 {
		return BatchQuote{}, nil, nil, fmt.Errorf("attest: empty batch")
	}
	root, paths := merkleTree(hashes)
	x, err := rand.Int(rand.Reader, Group14P)
	if err != nil {
		return BatchQuote{}, nil, nil, err
	}
	dhPub := new(big.Int).Exp(Group14G, x, Group14P)
	sig, err := ecdsa.SignASN1(rand.Reader, d.akPriv,
		batchDigest(root, len(hashes), Group14G, Group14P, nonce, dhPub))
	if err != nil {
		return BatchQuote{}, nil, nil, err
	}
	akPub := elliptic.Marshal(elliptic.P256(), d.akPriv.PublicKey.X, d.akPriv.PublicKey.Y)
	proofs := make([]BatchProof, len(hashes))
	for i, h := range hashes {
		proofs[i] = BatchProof{LaunchHash: h, Index: i, Path: paths[i]}
	}
	return BatchQuote{
		Root:   root,
		Leaves: len(hashes),
		G:      Group14G, P: Group14P,
		Nonce:   append([]byte(nil), nonce...),
		DHPub:   dhPub,
		RootSig: sig,
		AKPub:   akPub,
		AKSig:   append([]byte(nil), d.akSig...),
		EKCert:  d.ekCert,
	}, proofs, x, nil
}

// Batch verification errors.
var (
	ErrBadBatchSig = fmt.Errorf("attest: batch root signature invalid")
	ErrBadProof    = fmt.Errorf("attest: Merkle inclusion proof does not reach the batch root")
)

// VerifyBatch checks one function's membership in a batch quote: the
// vendor→EK→AK chain and root signature (as Verify checks a single
// quote), then the Merkle path from the expected launch hash to the
// signed root.
func VerifyBatch(vendorPub *ecdsa.PublicKey, q BatchQuote, p BatchProof, expectedHash [32]byte, nonce []byte) error {
	// 1. Vendor signed the EK.
	if !ecdsa.VerifyASN1(vendorPub, certDigest(q.EKCert.Serial, q.EKCert.EKPub), q.EKCert.Sig) {
		return ErrBadVendorSig
	}
	ekX, ekY := elliptic.Unmarshal(elliptic.P256(), q.EKCert.EKPub)
	if ekX == nil {
		return ErrBadVendorSig
	}
	ekPub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: ekX, Y: ekY}
	// 2. EK signed the AK.
	if !ecdsa.VerifyASN1(ekPub, akDigest(q.AKPub), q.AKSig) {
		return ErrBadAKSig
	}
	akX, akY := elliptic.Unmarshal(elliptic.P256(), q.AKPub)
	if akX == nil {
		return ErrBadAKSig
	}
	akPub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: akX, Y: akY}
	// 3. AK signed the batch root.
	if q.G.Cmp(Group14G) != 0 || q.P.Cmp(Group14P) != 0 {
		return ErrBadGroup
	}
	if !ecdsa.VerifyASN1(akPub, batchDigest(q.Root, q.Leaves, q.G, q.P, q.Nonce, q.DHPub), q.RootSig) {
		return ErrBadBatchSig
	}
	// 4. Freshness.
	if len(nonce) == 0 || len(q.Nonce) != len(nonce) || !equalBytes(q.Nonce, nonce) {
		return ErrWrongNonce
	}
	// 5. The expected hash is a member: walk the proof to the root.
	if p.LaunchHash != expectedHash {
		return ErrWrongHash
	}
	node := merkleLeaf(p.LaunchHash)
	idx := p.Index
	if idx < 0 || idx >= q.Leaves {
		return ErrBadProof
	}
	for _, sib := range p.Path {
		if idx%2 == 0 {
			node = merkleNode(node, sib)
		} else {
			node = merkleNode(sib, node)
		}
		idx /= 2
	}
	if node != q.Root {
		return ErrBadProof
	}
	return nil
}
