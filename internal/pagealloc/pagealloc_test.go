package pagealloc

import (
	"testing"
	"testing/quick"
)

// mbf converts a (possibly fractional) MB count to bytes.
func mbf(mb float64) uint64 { return uint64(mb * float64(uint64(1)<<20)) }

func TestValidate(t *testing.T) {
	cases := []struct {
		ps PageSet
		ok bool
	}{
		{Equal, true},
		{FlexLow, true},
		{FlexHigh, true},
		{PageSet{}, false},
		{PageSet{0}, false},
		{PageSet{2 * MB, 2 * MB}, false},
		{PageSet{2 * MB, 128 * KB}, false},   // not ascending
		{PageSet{128 * KB, 192 * KB}, false}, // 192K not multiple of 128K
		{PageSet{4 * KB, 2 * MB, 1 << 30}, true},
	}
	for _, c := range cases {
		err := c.ps.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", c.ps, err, c.ok)
		}
	}
}

func TestPlanSegmentZero(t *testing.T) {
	p, err := PlanSegment(0, Equal)
	if err != nil || p.Entries != 0 || p.Allocated != 0 {
		t.Fatalf("zero segment: %+v err=%v", p, err)
	}
}

func TestPlanSegmentEqualPages(t *testing.T) {
	// 13.75 MB under 2MB-only pages needs ceil(13.75/2)=7 entries.
	p, err := PlanSegment(13*MB+768*KB, Equal)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entries != 7 || p.Allocated != 14*MB {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlanSegmentGreedyMix(t *testing.T) {
	// 357.15 MB under {2,32,128} MB: alloc 358 MB = 2x128 + 3x32 + 3x2 = 8 entries.
	used := mbf(357.15)
	p, err := PlanSegment(used, FlexHigh)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entries != 8 {
		t.Fatalf("entries = %d, want 8 (plan %+v)", p.Entries, p.Pages)
	}
	if p.Allocated != 358*MB {
		t.Fatalf("allocated = %d", p.Allocated)
	}
}

// The paper's Table 6 numbers, recomputed from its own memory profiles.
// Segment sizes are the paper's published MB values.
func paperSegs(text, data, code, heap float64) []uint64 {
	return []uint64{mbf(text), mbf(data), mbf(code), mbf(heap)}
}

func TestTable6EntryCounts(t *testing.T) {
	cases := []struct {
		name                     string
		segs                     []uint64
		equal, flexLow, flexHigh int
	}{
		{"FW", paperSegs(0.87, 0.08, 2.50, 13.75), 11, 34, 11},
		{"DPI", paperSegs(1.34, 0.56, 2.59, 46.65), 28, 51, 13},
		{"NAT", paperSegs(0.86, 0.05, 2.49, 40.48), 25, 37, 10},
		{"LB", paperSegs(0.86, 0.05, 2.49, 10.40), 10, 22, 10},
		{"LPM", paperSegs(0.86, 0.06, 2.51, 64.90), 37, 23, 7},
		{"Mon", paperSegs(0.85, 0.05, 2.48, 357.15), 183, 46, 12},
	}
	for _, c := range cases {
		for _, cfg := range []struct {
			ps   PageSet
			want int
		}{{Equal, c.equal}, {FlexLow, c.flexLow}, {FlexHigh, c.flexHigh}} {
			got, err := EntriesFor(c.segs, cfg.ps)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			// The paper reports sizes rounded to 0.01 MB, so allow ±1 entry
			// of rounding slack on the small-page settings.
			slack := 0
			if len(cfg.ps) > 1 {
				slack = 1
			}
			if diff := got - cfg.want; diff < -slack || diff > slack {
				t.Errorf("%s under %v: entries = %d, want %d", c.name, cfg.ps, got, cfg.want)
			}
		}
	}
}

func TestTable7AcceleratorEntries(t *testing.T) {
	// Each accelerator buffer is a separate mapping; 2MB pages (§5.2).
	dpi := []uint64{256 * KB, 128 * KB, 2 * MB, 2 * MB, 256 * KB, mbf(97.28)}
	zip := []uint64{64 * KB, 128 * KB, 2 * MB, 24 * KB, 2 * MB, 128 * MB, 32 * KB}
	raid := []uint64{4 * MB, 128 * KB, 2 * MB, 2 * MB}
	for _, c := range []struct {
		name string
		segs []uint64
		want int
	}{{"DPI", dpi, 54}, {"ZIP", zip, 70}, {"RAID", raid, 5}} {
		got, err := EntriesFor(c.segs, Equal)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s accelerator: entries = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestVPPAndDMAEntries(t *testing.T) {
	// VPP: PB 2MB + PDB 128KB + ODB 1MB => 3 entries (§5.2).
	if got, _ := EntriesFor([]uint64{2 * MB, 128 * KB, 1 * MB}, Equal); got != 3 {
		t.Errorf("VPP entries = %d, want 3", got)
	}
	// DMA: PB 2MB + IQ 256KB => 2 entries.
	if got, _ := EntriesFor([]uint64{2 * MB, 256 * KB}, Equal); got != 2 {
		t.Errorf("DMA entries = %d, want 2", got)
	}
}

func TestWasteIsMinimal(t *testing.T) {
	// The plan must never waste a full base page.
	f := func(raw uint32) bool {
		used := uint64(raw)%(512*MB) + 1
		for _, ps := range []PageSet{Equal, FlexLow, FlexHigh} {
			p, err := PlanSegment(used, ps)
			if err != nil {
				return false
			}
			if p.Waste() >= ps[0] {
				return false
			}
			if p.Allocated < used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesNeverWorseThanBasePages(t *testing.T) {
	// Using more page sizes must never need more entries than base-only.
	f := func(raw uint32) bool {
		used := uint64(raw)%(512*MB) + 1
		flex, err := PlanSegment(used, FlexLow)
		if err != nil {
			return false
		}
		baseOnly, err := PlanSegment(used, PageSet{FlexLow[0]})
		if err != nil {
			return false
		}
		return flex.Entries <= baseOnly.Entries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSegmentsSums(t *testing.T) {
	p, err := PlanSegments([]uint64{MB, 3 * MB}, Equal)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 2 || p.Entries != 3 || p.Used != 4*MB || p.Allocated != 6*MB {
		t.Fatalf("plan = %+v", p)
	}
}
