// Package pagealloc plans how an NF's (or accelerator's) address space is
// covered by locked TLB entries under a given set of supported page sizes.
//
// The planner implements the policy the paper states for Tables 5 and 6:
// "When allocating pages for a function's code, static data, heap, and
// stack regions, we try to minimize the amount of wasted memory." So for
// each segment it first fixes the allocation to the smallest multiple of
// the smallest supported page that covers the segment (minimum waste),
// then decomposes that allocation greedily from the largest page downward
// (minimum entries at that waste level). This reproduces the published
// entry counts exactly — e.g. DPI under {128 KB, 2 MB, 64 MB} needs 51
// entries, and Monitor under {2 MB, 32 MB, 128 MB} needs 12.
package pagealloc

import (
	"fmt"
	"sort"
)

// KB, MB: byte units used throughout the sizing tables.
const (
	KB uint64 = 1 << 10
	MB uint64 = 1 << 20
)

// PageSet is an ordered (ascending) list of supported page sizes.
type PageSet []uint64

// The three page-size settings evaluated in §5.2 (naming follows the §5.2
// prose; the caption of the paper's Table 5 transposes the two Flex
// labels, which we note in EXPERIMENTS.md).
var (
	Equal    = PageSet{2 * MB}                    // 2 MB only
	FlexLow  = PageSet{128 * KB, 2 * MB, 64 * MB} // small pages available
	FlexHigh = PageSet{2 * MB, 32 * MB, 128 * MB} // big pages available
)

// Validate checks that the set is non-empty, strictly ascending, and that
// every page size is a multiple of the smallest (required for the greedy
// decomposition to tile exactly).
func (ps PageSet) Validate() error {
	if len(ps) == 0 {
		return fmt.Errorf("pagealloc: empty page set")
	}
	if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i] < ps[j] }) {
		return fmt.Errorf("pagealloc: page set not ascending: %v", ps)
	}
	for i, s := range ps {
		if s == 0 {
			return fmt.Errorf("pagealloc: zero page size")
		}
		if i > 0 && ps[i] == ps[i-1] {
			return fmt.Errorf("pagealloc: duplicate page size %d", s)
		}
		if s%ps[0] != 0 {
			return fmt.Errorf("pagealloc: page size %d not a multiple of base %d", s, ps[0])
		}
	}
	return nil
}

// Mapping is one planned TLB entry: a page of the given size.
type Mapping struct {
	PageSize uint64
	Count    int
}

// SegmentPlan is the coverage plan for one contiguous segment.
type SegmentPlan struct {
	Used      uint64 // bytes the segment actually needs
	Allocated uint64 // bytes the plan reserves (>= Used)
	Entries   int    // TLB entries consumed
	Pages     []Mapping
}

// Waste returns allocated-but-unused bytes.
func (s SegmentPlan) Waste() uint64 { return s.Allocated - s.Used }

// PlanSegment covers a segment of `used` bytes with pages from ps.
func PlanSegment(used uint64, ps PageSet) (SegmentPlan, error) {
	if err := ps.Validate(); err != nil {
		return SegmentPlan{}, err
	}
	if used == 0 {
		return SegmentPlan{Used: 0, Allocated: 0, Entries: 0}, nil
	}
	base := ps[0]
	target := ((used + base - 1) / base) * base // minimum-waste allocation
	plan := SegmentPlan{Used: used, Allocated: target}
	rem := target
	for i := len(ps) - 1; i >= 0; i-- {
		n := rem / ps[i]
		if n > 0 {
			plan.Pages = append(plan.Pages, Mapping{PageSize: ps[i], Count: int(n)})
			plan.Entries += int(n)
			rem -= n * ps[i]
		}
	}
	if rem != 0 {
		return SegmentPlan{}, fmt.Errorf("pagealloc: %d bytes left uncovered", rem)
	}
	return plan, nil
}

// Plan covers a multi-segment address space; each segment gets its own
// pages (segments are not packed together, matching how text/data/code/
// heap regions have distinct permissions and placement).
type Plan struct {
	Segments  []SegmentPlan
	Entries   int
	Used      uint64
	Allocated uint64
}

// PlanSegments plans every segment and sums the totals.
func PlanSegments(used []uint64, ps PageSet) (Plan, error) {
	var p Plan
	for _, u := range used {
		sp, err := PlanSegment(u, ps)
		if err != nil {
			return Plan{}, err
		}
		p.Segments = append(p.Segments, sp)
		p.Entries += sp.Entries
		p.Used += sp.Used
		p.Allocated += sp.Allocated
	}
	return p, nil
}

// EntriesFor is a convenience returning just the TLB entry count for the
// given segment sizes under ps.
func EntriesFor(used []uint64, ps PageSet) (int, error) {
	p, err := PlanSegments(used, ps)
	if err != nil {
		return 0, err
	}
	return p.Entries, nil
}
