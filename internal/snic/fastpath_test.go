package snic

import (
	"bytes"
	"testing"

	"snic/internal/attest"
	"snic/internal/mem"
	"snic/internal/sim"
	"snic/internal/tlb"
)

// TestTeardownZeroPagesIsFree pins the 0-cost edge case: tearing down
// an NF whose pages were already released reports ScrubMS of exactly
// zero (0 bytes / 6.6 GB/s), so TotalMS is the allowlist cost alone —
// by assertion, not by trusting float division to behave.
func TestTeardownZeroPagesIsFree(t *testing.T) {
	d := newDevice(t)
	rep, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Release the reservation out from under the NF (the experiment
	// harness's raw path), leaving zero mapped pages to scrub.
	if got := d.Memory().ReleaseAll(rep.ID); got == 0 {
		t.Fatal("expected a nonzero reservation to release")
	}
	tr, err := d.Teardown(rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ScrubMS != 0 {
		t.Errorf("ScrubMS = %v, want exactly 0 for zero mapped pages", tr.ScrubMS)
	}
	if tr.TotalMS() != tr.AllowlistMS {
		t.Errorf("TotalMS = %v, want AllowlistMS %v alone", tr.TotalMS(), tr.AllowlistMS)
	}
}

// TestDefaultPathReportsUnchanged pins the bit-identity contract: a
// device with the zero-value FastPaths must produce exactly the
// paper-calibrated reports, hit no pool, and scrub serially.
func TestDefaultPathReportsUnchanged(t *testing.T) {
	d := newDevice(t)
	spec := basicSpec()
	rep, err := d.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	rates := DefaultRates()
	if want := float64(spec.MemBytes) / rates.DigestBytesPerSec * 1e3; rep.DigestMS != want {
		t.Errorf("DigestMS = %v, want %v", rep.DigestMS, want)
	}
	if rep.PoolHit {
		t.Error("default path reported a pool hit")
	}
	tr, err := d.Teardown(rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	scrubbed := mem.AlignUp(spec.MemBytes, d.Memory().FrameSize())
	if want := float64(scrubbed) / rates.ScrubBytesPerSec * 1e3; tr.ScrubMS != want {
		t.Errorf("ScrubMS = %v, want serial %v", tr.ScrubMS, want)
	}
	if hits, misses := d.PoolStats(); hits != 0 || misses != 0 {
		t.Errorf("default path touched the pool: hits=%d misses=%d", hits, misses)
	}
}

// TestWarmPoolIndistinguishableFromFresh is the arena invariant: after
// a teardown parks frames, every pooled frame must read back as zero
// through the raw port — a pool-hit launch gets memory bitwise
// identical to a fresh allocation.
func TestWarmPoolIndistinguishableFromFresh(t *testing.T) {
	d := newDevice(t)
	d.SetFastPaths(FastPaths{WarmPool: true})
	spec := basicSpec()
	rep, err := d.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the whole reservation so a scrub failure cannot hide
	// behind never-backed frames.
	v := d.NF(rep.ID)
	junk := bytes.Repeat([]byte{0xAB}, int(spec.MemBytes))
	if err := d.NFWrite(rep.ID, 0, junk); err != nil {
		t.Fatal(err)
	}
	region := v.Mem
	if _, err := d.Teardown(rep.ID); err != nil {
		t.Fatal(err)
	}
	pm := d.Memory()
	if pm.PoolFrames() == 0 {
		t.Fatal("teardown parked nothing in the warm arena")
	}
	fs := pm.FrameSize()
	buf := make([]byte, fs)
	zero := make([]byte, fs)
	for f := uint64(region.Start) / fs; f < uint64(region.End(fs))/fs; f++ {
		if pm.FrameOwner(f) != mem.Pooled {
			continue
		}
		if err := pm.Read(mem.Addr(f*fs), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, zero) {
			t.Fatalf("pooled frame %d is not scrubbed", f)
		}
	}
}

// TestPoolHitMatchesColdLaunch is the property test behind the warm
// pool: across randomized specs, a launch served from the arena yields
// an NF whose launch hash AND full memory contents are byte-identical
// to the same launch on a never-pooled device. The fast path may only
// change latency accounting, never function state.
func TestPoolHitMatchesColdLaunch(t *testing.T) {
	rng := sim.NewRand(0xC0FFEE)
	vend, err := attest.NewVendor("TestVendor", nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		imgLen := 1 + rng.Intn(4096)
		img := make([]byte, imgLen)
		rng.Bytes(img)
		spec := LaunchSpec{
			CoreMask: 0b01,
			Image:    img,
			MemBytes: uint64(1+rng.Intn(8)) << 18,
			DMACore:  -1,
		}
		if spec.MemBytes < uint64(imgLen) {
			spec.MemBytes = uint64(imgLen)
		}

		cold, err := New(Config{Cores: 8, MemBytes: 64 << 20}, vend)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := New(Config{Cores: 8, MemBytes: 64 << 20}, vend)
		if err != nil {
			t.Fatal(err)
		}
		warm.SetFastPaths(FastPaths{WarmPool: true, ParallelScrub: true})
		// Prime the arena: launch and tear down once so the next
		// launch is served from parked frames.
		pre, err := warm.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := warm.Teardown(pre.ID); err != nil {
			t.Fatal(err)
		}

		coldRep, err := cold.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		warmRep, err := warm.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !warmRep.PoolHit {
			t.Fatalf("trial %d: primed launch missed the pool", trial)
		}
		cv, wv := cold.NF(coldRep.ID), warm.NF(warmRep.ID)
		if cv.Hash != wv.Hash {
			t.Fatalf("trial %d: launch hash diverged between cold and pool-hit launch", trial)
		}
		cbuf := make([]byte, spec.MemBytes)
		wbuf := make([]byte, spec.MemBytes)
		if err := cold.NFRead(coldRep.ID, tlb.VAddr(0), cbuf); err != nil {
			t.Fatal(err)
		}
		if err := warm.NFRead(warmRep.ID, tlb.VAddr(0), wbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cbuf, wbuf) {
			t.Fatalf("trial %d: NF memory diverged between cold and pool-hit launch", trial)
		}
		if warmRep.DigestMS > coldRep.DigestMS {
			t.Fatalf("trial %d: pool hit digested more than cold (%v > %v)",
				trial, warmRep.DigestMS, coldRep.DigestMS)
		}
	}
}

// TestParallelScrubScalesWithIdleCores checks the striping model: with
// every other core idle, the scrub rate scales by the idle count; with
// the device fully booked it stays serial.
func TestParallelScrubScalesWithIdleCores(t *testing.T) {
	d := newDevice(t) // 8 cores
	d.SetFastPaths(FastPaths{ParallelScrub: true})
	spec := basicSpec() // two cores
	rep, err := d.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Teardown(rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	rates := DefaultRates()
	scrubbed := mem.AlignUp(spec.MemBytes, d.Memory().FrameSize())
	serial := float64(scrubbed) / rates.ScrubBytesPerSec * 1e3
	if want := serial / 8; tr.ScrubMS != want {
		t.Errorf("ScrubMS = %v, want %v (8-way stripe: all cores idle post-teardown)", tr.ScrubMS, want)
	}
}

// TestBatchAttestRoundTrip runs the batched quote end to end on the
// device: N launches, one AttestNFBatch, and a per-function VerifyBatch
// against the vendor root — plus the negative cases (foreign hash,
// truncated batch).
func TestBatchAttestRoundTrip(t *testing.T) {
	vend, err := attest.NewVendor("TestVendor", nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Cores: 8, MemBytes: 64 << 20}, vend)
	if err != nil {
		t.Fatal(err)
	}
	var ids []ID
	for i := 0; i < 5; i++ {
		rep, err := d.Launch(LaunchSpec{
			CoreMask:   1 << uint(i),
			Image:      []byte{byte(i), 1, 2, 3},
			MemBytes:   1 << 18,
			RXBufBytes: 32 << 10,
			TXBufBytes: 32 << 10,
			DMACore:    -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rep.ID)
	}
	nonce := []byte("batch-nonce")
	q, proofs, x, totalMS, err := d.AttestNFBatch(ids, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if x == nil || totalMS <= 0 {
		t.Fatalf("bad batch outputs: x=%v totalMS=%v", x, totalMS)
	}
	rates := DefaultRates()
	if want := rates.AttestSHASec*1e3*5 + rates.RSASignSec*1e3; totalMS != want {
		t.Errorf("batch latency = %v, want one signature amortized: %v", totalMS, want)
	}
	for i, id := range ids {
		if err := attest.VerifyBatch(vend.PublicKey(), q, proofs[i], d.NF(id).Hash, nonce); err != nil {
			t.Errorf("member %d failed verification: %v", i, err)
		}
	}
	// A hash outside the batch must not verify under any proof.
	var evil [32]byte
	evil[0] = 0xEE
	if err := attest.VerifyBatch(vend.PublicKey(), q, proofs[0], evil, nonce); err == nil {
		t.Error("foreign hash verified against the batch")
	}
	// A member's proof must not vouch for a different member.
	swapped := proofs[1]
	swapped.LaunchHash = d.NF(ids[0]).Hash
	if err := attest.VerifyBatch(vend.PublicKey(), q, swapped, d.NF(ids[0]).Hash, nonce); err == nil {
		t.Error("member 0's hash verified under member 1's path")
	}
	// Wrong nonce is a replay.
	if err := attest.VerifyBatch(vend.PublicKey(), q, proofs[2], d.NF(ids[2]).Hash, []byte("other")); err != attest.ErrWrongNonce {
		t.Errorf("wrong nonce: got %v, want ErrWrongNonce", err)
	}
}
