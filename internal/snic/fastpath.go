// Control-path fast paths for serverless NF churn (λ-NIC-style
// workloads: thousands of short-lived functions per NIC). All three are
// strictly opt-in — the zero-value FastPaths leaves every trusted
// instruction bit-identical to the paper-calibrated model — because the
// paper's Figure 6 numbers are the goldens everything else is pinned
// against.
//
//   - Warm pool: nf_teardown scrubs as always but parks the zeroed
//     frames in a per-device arena (mem.Pooled); the next nf_launch
//     that fits serves from the arena and digests only the image, since
//     the scrubbed remainder is already attested-zero (the digest of a
//     zero page is a constant the security coprocessor caches).
//   - Parallel scrub: the teardown scrub stripes across the device's
//     currently-idle programmable cores, scaling the ~6.6 GB/s rate by
//     the stripe count.
//   - Batched attestation: AttestNFBatch quotes N pending launches in
//     one crypto pass (see attest.AttestBatch) — one DH contribution
//     and one AK signature amortized over the batch.
package snic

import (
	"fmt"
	"math/big"

	"snic/internal/attest"
	"snic/internal/mem"
	"snic/internal/obs"
)

// FastPaths selects the churn optimizations. The zero value is the
// paper-exact device.
type FastPaths struct {
	WarmPool      bool   // park scrubbed frames for reuse
	PoolFrames    uint64 // arena bound in frames; 0 = a quarter of DRAM
	ParallelScrub bool   // stripe teardown scrub across idle cores
}

// SetFastPaths reconfigures the device's fast paths. Disabling the warm
// pool drains any parked frames back to the free list.
func (d *Device) SetFastPaths(fp FastPaths) {
	if fp.WarmPool {
		frames := fp.PoolFrames
		if frames == 0 {
			frames = d.pm.NumFrames() / 4
		}
		d.pm.SetPoolCapacity(frames)
	} else {
		d.pm.SetPoolCapacity(0)
	}
	d.fp = fp
	d.ensureFastPathObs()
}

// FastPathConfig returns the active fast-path selection.
func (d *Device) FastPathConfig() FastPaths { return d.fp }

// PoolStats returns how many launches were served from the warm arena
// (hits) versus the general allocator (misses) since the device was
// built. Both are zero unless the warm pool was ever enabled.
func (d *Device) PoolStats() (hits, misses uint64) { return d.poolHits, d.poolMisses }

// ensureFastPathObs interns the pool hit/miss counters. They are
// created only once a collector is attached AND the warm pool is
// enabled: interned series render in metric dumps even at zero, and the
// default-path goldens must not see them.
func (d *Device) ensureFastPathObs() {
	if d.obsReg == nil || !d.fp.WarmPool || d.ctrPoolHit != nil {
		return
	}
	d.ctrPoolHit = d.obsReg.Counter(obs.Label{Device: d.cfg.Serial, Owner: "-", Component: "snic", Name: "pool_hit"})
	d.ctrPoolMiss = d.obsReg.Counter(obs.Label{Device: d.cfg.Serial, Owner: "-", Component: "snic", Name: "pool_miss"})
}

// allocNFBytes reserves an NF's DRAM, serving from the warm arena when
// the fast path is on. The returned hit flag is false on the default
// path, where the allocation is exactly the seed allocator's.
func (d *Device) allocNFBytes(id ID, n uint64) (mem.Range, bool, error) {
	if !d.fp.WarmPool {
		r, err := d.pm.AllocBytes(id, n)
		return r, false, err
	}
	r, hit, err := d.pm.AllocBytesPooled(id, n)
	if err != nil {
		return r, false, err
	}
	if hit {
		d.poolHits++
		d.ctrPoolHit.Add(1)
	} else {
		d.poolMisses++
		d.ctrPoolMiss.Add(1)
	}
	return r, hit, nil
}

// digestMS models the launch-hash digest latency. A pool hit digests
// only the image: the remainder of the reservation came scrubbed out of
// the arena, and the coprocessor substitutes its cached zero-page
// digest instead of streaming zeroes at 470 MB/s.
func (d *Device) digestMS(spec LaunchSpec, poolHit bool) float64 {
	bytes := spec.MemBytes
	if poolHit {
		bytes = uint64(len(spec.Image))
	}
	return float64(bytes) / d.rates.DigestBytesPerSec * 1e3
}

// scrubStripes returns how many ways the teardown scrub is striped:
// one (serial, the paper model) unless ParallelScrub is on, in which
// case every currently-idle programmable core carries a stripe. Called
// after the dying NF's cores are freed, so a single-tenant device
// scrubs at full width.
func (d *Device) scrubStripes() int {
	if !d.fp.ParallelScrub {
		return 1
	}
	if idle := d.FreeCores(); idle > 1 {
		return idle
	}
	return 1
}

// releaseNFMem scrubs and frees an NF's DRAM, parking the frames in the
// warm arena when the fast path is on. Bytes scrubbed are identical
// either way — pooling changes where the zeroed frames wait, not
// whether they are zeroed.
func (d *Device) releaseNFMem(id ID) uint64 {
	if !d.fp.WarmPool {
		return d.pm.ReleaseAll(id)
	}
	scrubbed, _ := d.pm.ReleaseAllPooled(id)
	return scrubbed
}

// AttestNFBatch is batched nf_attest: one quote covering every id, with
// a per-function Merkle inclusion proof (verify with
// attest.VerifyBatch). It returns the batch quote, the proofs in id
// order, the device-side DH secret, and the total simulated latency in
// milliseconds: one RSA signature amortized across the batch plus one
// hash fold per function.
func (d *Device) AttestNFBatch(ids []ID, nonce []byte) (attest.BatchQuote, []attest.BatchProof, *big.Int, float64, error) {
	if len(ids) == 0 {
		return attest.BatchQuote{}, nil, nil, 0, fmt.Errorf("snic: empty attestation batch")
	}
	hashes := make([][32]byte, len(ids))
	for i, id := range ids {
		v, ok := d.nfs[id]
		if !ok {
			return attest.BatchQuote{}, nil, nil, 0, fmt.Errorf("snic: no NF %d", id)
		}
		hashes[i] = v.Hash
	}
	q, proofs, x, err := d.hw.AttestBatch(hashes, nonce)
	if err != nil {
		return attest.BatchQuote{}, nil, nil, 0, err
	}
	shaMS := d.rates.AttestSHASec * 1e3 * float64(len(ids))
	signMS := d.rates.RSASignSec * 1e3
	d.span("attest/batch_sha", shaMS)
	d.span("attest/batch_rsa_sign", signMS)
	return q, proofs, x, shaMS + signMS, nil
}
