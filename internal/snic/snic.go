// Package snic implements the paper's primary contribution: the S-NIC
// device, whose trusted instructions bind network functions to virtual
// smart NICs (§4, Table 1).
//
//   - nf_launch (Device.Launch) atomically reserves cores, single-owner
//     RAM, RX/TX buffer space, accelerator clusters, and a DMA bank;
//     installs and locks every TLB bank; denylists the function's pages
//     against the management core; accumulates the launch hash; and
//     returns the function id.
//   - nf_attest (Device.AttestNF) signs the launch hash into an
//     Appendix-A quote.
//   - nf_teardown (Device.Teardown) atomically releases everything,
//     scrubbing RAM, registers, and cache lines so nothing leaks to the
//     next tenant.
//
// The device also carries the calibrated instruction-latency model that
// regenerates Figure 6 (§C): SHA digesting at ~470 MB/s on the security
// coprocessor dominates nf_launch; memory scrubbing at ~6.6 GB/s
// dominates nf_destroy; nf_attest is a fixed ~5.6 ms RSA signature.
package snic

import (
	"fmt"
	"math/big"

	"snic/internal/accel"
	"snic/internal/attest"
	"snic/internal/cache"
	"snic/internal/dma"
	"snic/internal/mem"
	"snic/internal/obs"
	"snic/internal/pagealloc"
	"snic/internal/pktio"
	"snic/internal/tlb"
)

// Config describes the physical NIC being built.
type Config struct {
	Cores         int    // programmable cores (the management core is separate)
	MemBytes      uint64 // general-purpose DRAM
	FrameSize     uint64 // ownership granularity (default 128 KB)
	RXBufBytes    uint64 // physical RX port buffer (default 2 MB)
	TXBufBytes    uint64 // physical TX port buffer (default 1 MB)
	DPIThreads    int    // hardware threads per accelerator (default 64)
	ZIPThreads    int
	RAIDThreads   int
	CryptoThreads int
	ClusterSize   int // threads per cluster (default 16)
	Serial        string
}

func (c *Config) defaults() {
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.MemBytes == 0 {
		c.MemBytes = 1 << 30
	}
	if c.FrameSize == 0 {
		c.FrameSize = 128 << 10
	}
	if c.RXBufBytes == 0 {
		c.RXBufBytes = 2 << 20
	}
	if c.TXBufBytes == 0 {
		c.TXBufBytes = 1 << 20
	}
	if c.DPIThreads == 0 {
		c.DPIThreads = 64
	}
	if c.ZIPThreads == 0 {
		c.ZIPThreads = 64
	}
	if c.RAIDThreads == 0 {
		c.RAIDThreads = 64
	}
	if c.CryptoThreads == 0 {
		c.CryptoThreads = 64
	}
	if c.ClusterSize == 0 {
		c.ClusterSize = 16
	}
	if c.Serial == "" {
		c.Serial = "SNIC-SIM-0"
	}
}

// Rates is the Figure 6 latency calibration (seconds-denominated).
type Rates struct {
	DigestBytesPerSec float64 // security-coprocessor SHA-256
	ScrubBytesPerSec  float64 // teardown memory zeroing
	TLBSetupSec       float64 // TLB setup + config reading
	DenylistSec       float64 // denylist install
	AllowlistSec      float64 // allowlist (teardown)
	RSASignSec        float64 // nf_attest signing
	AttestSHASec      float64 // nf_attest hash
}

// DefaultRates returns the Appendix-C calibration.
func DefaultRates() Rates {
	return Rates{
		DigestBytesPerSec: 470e6,
		ScrubBytesPerSec:  6.6e9,
		TLBSetupSec:       0.0196e-3,
		DenylistSec:       0.0044e-3,
		AllowlistSec:      0.0038e-3,
		RSASignSec:        5.596e-3,
		AttestSHASec:      0.004e-3,
	}
}

// ID names a launched network function.
type ID = mem.Owner

// LaunchSpec is the argument block of nf_launch (Table 1): core mask,
// initial state, packet-pipeline config, and accelerator reservations.
type LaunchSpec struct {
	CoreMask uint64 // bitmask over programmable cores
	Image    []byte // initial code+data, staged into NIC RAM by the NIC OS
	MemBytes uint64 // total DRAM reservation (>= len(Image))
	PageSet  pagealloc.PageSet

	// Packet pipeline (pkt_pipeline_config).
	RXBufBytes uint64
	TXBufBytes uint64
	Rules      []pktio.MatchSpec
	RingSlots  int
	RingSlot   int // slot size in bytes

	// Accelerator reservations (accel_mask).
	DPIClusters    int
	ZIPClusters    int
	RAIDClusters   int
	CryptoClusters int

	// DMACore, if >= 0, binds that core's DMA bank with the given
	// host-sanctioned window.
	DMACore   int
	DMAWindow *dma.HostRegion
}

// LaunchReport breaks down the simulated nf_launch latency (Figure 6).
// PoolHit records whether the reservation was served from the warm
// arena (always false on the default path).
type LaunchReport struct {
	ID         ID
	TLBSetupMS float64
	DenylistMS float64
	DigestMS   float64
	PoolHit    bool
}

// TotalMS sums the phases.
func (r LaunchReport) TotalMS() float64 { return r.TLBSetupMS + r.DenylistMS + r.DigestMS }

// TeardownReport breaks down nf_destroy latency (Figure 6).
type TeardownReport struct {
	AllowlistMS float64
	ScrubMS     float64
}

// TotalMS sums the phases.
func (r TeardownReport) TotalMS() float64 { return r.AllowlistMS + r.ScrubMS }

// VirtualNIC is the per-function resource bundle.
type VirtualNIC struct {
	ID      ID
	Cores   []int
	Mem     mem.Range
	TLB     *tlb.Bank // locked core-side TLB
	VPP     *pktio.VPP
	DPI     []*accel.Cluster
	ZIP     []*accel.Cluster
	RAIDs   []*accel.Cluster
	Crypto  []*accel.Cluster
	DMABank *dma.Bank
	Hash    [32]byte
}

// Device is the S-NIC.
type Device struct {
	cfg    Config
	pm     *mem.Physical
	deny   *tlb.Denylist
	mgmt   *tlb.GuardedBank
	sw     *pktio.Switch
	dmaC   *dma.Controller
	dpi    *accel.Accelerator
	zip    *accel.Accelerator
	raid   *accel.Accelerator
	crypto *accel.Accelerator
	hw     *attest.Device
	rates  Rates

	coreOwner []ID // mem.Free = unallocated
	nfs       map[ID]*VirtualNIC
	nextID    ID

	// SharedCaches lists caches whose per-domain lines must be flushed at
	// teardown (wired up by experiments that attach a timing model).
	SharedCaches []*cache.Cache
	// DomainOf maps an NF id to its cache/bus domain index.
	DomainOf func(ID) int

	// obs state; zero until Observe attaches a collector. The clock
	// advances by each trusted instruction's modeled latency, so span
	// stamps are pure functions of the instruction stream.
	obsReg  *obs.Registry
	obsTr   *obs.Tracer
	obsClk  obs.Clock
	obsLive *obs.Gauge

	// Churn fast paths (fastpath.go); all off by default so the
	// trusted-instruction model stays bit-identical to the paper
	// calibration.
	fp          FastPaths
	poolHits    uint64
	poolMisses  uint64
	ctrPoolHit  *obs.Counter
	ctrPoolMiss *obs.Counter
}

// Observe attaches the device to a collector: trusted instructions
// (nf_launch, nf_attest, nf_teardown) emit cycle-stamped phase spans on
// the given trace track, matching the Figure 6 breakdown, and the
// switch, management MMU, accelerators, and per-NF TLB banks gain
// metric counters under the device serial. Concurrent devices must use
// distinct tracks (and serials, if their metrics should stay separate).
// A nil reg leaves the device detached.
func (d *Device) Observe(reg *obs.Registry, track string) {
	if reg == nil {
		return
	}
	d.obsReg = reg
	d.obsTr = reg.Tracer(track)
	d.obsLive = reg.Gauge(obs.Label{Device: d.cfg.Serial, Owner: "-", Component: "snic", Name: "live_nfs"})
	d.sw.Observe(reg, d.cfg.Serial)
	d.mgmt.Observe(reg, d.cfg.Serial, "mgmt")
	d.dpi.Observe(reg, d.cfg.Serial)
	d.zip.Observe(reg, d.cfg.Serial)
	d.raid.Observe(reg, d.cfg.Serial)
	d.crypto.Observe(reg, d.cfg.Serial)
	d.ensureFastPathObs()
}

// span stamps one trusted-instruction phase of ms simulated
// milliseconds onto the trace, advancing the device's cycle clock.
func (d *Device) span(name string, ms float64) {
	if d.obsTr == nil {
		return
	}
	dur := obs.MSToCycles(ms)
	d.obsTr.Span("snic", name, d.obsClk.Tick(dur), dur)
}

// New builds an S-NIC, manufacturing its attestation identity under
// vendor.
func New(cfg Config, vendor *attest.Vendor) (*Device, error) {
	cfg.defaults()
	pm, err := mem.NewPhysical(cfg.MemBytes, cfg.FrameSize)
	if err != nil {
		return nil, err
	}
	mkAccel := func(kind accel.Kind, threads int) (*accel.Accelerator, error) {
		return accel.New(kind, threads, cfg.ClusterSize)
	}
	dpiA, err := mkAccel(accel.DPI, cfg.DPIThreads)
	if err != nil {
		return nil, err
	}
	zipA, err := mkAccel(accel.ZIP, cfg.ZIPThreads)
	if err != nil {
		return nil, err
	}
	raidA, err := mkAccel(accel.RAID, cfg.RAIDThreads)
	if err != nil {
		return nil, err
	}
	cryptoA, err := mkAccel(accel.CRYPTO, cfg.CryptoThreads)
	if err != nil {
		return nil, err
	}
	hw, err := attest.NewDevice(vendor, cfg.Serial)
	if err != nil {
		return nil, err
	}
	deny := tlb.NewDenylist(cfg.FrameSize)
	return &Device{
		cfg:       cfg,
		pm:        pm,
		deny:      deny,
		mgmt:      tlb.NewGuardedBank(1024, deny),
		sw:        pktio.NewSwitch(pm, cfg.RXBufBytes, cfg.TXBufBytes),
		dmaC:      dma.NewController(cfg.Cores),
		dpi:       dpiA,
		zip:       zipA,
		raid:      raidA,
		crypto:    cryptoA,
		hw:        hw,
		rates:     DefaultRates(),
		coreOwner: make([]ID, cfg.Cores),
		nfs:       make(map[ID]*VirtualNIC),
		nextID:    mem.FirstNF,
	}, nil
}

// Memory exposes the physical DRAM (for experiment harnesses; NF and OS
// access paths go through the TLB-checked methods below).
func (d *Device) Memory() *mem.Physical { return d.pm }

// Switch exposes the packet input/output module.
func (d *Device) Switch() *pktio.Switch { return d.sw }

// Denylist exposes the hardware-private denylist (read-only use in tests).
func (d *Device) Denylist() *tlb.Denylist { return d.deny }

// NF returns a launched function's virtual NIC.
func (d *Device) NF(id ID) *VirtualNIC { return d.nfs[id] }

// Cores returns the number of programmable cores.
func (d *Device) Cores() int { return d.cfg.Cores }

// AccelClusters sums the reservable clusters across the device's four
// accelerators (§4.4) — the per-function reservation budget a
// fleet-level placer packs against.
func (d *Device) AccelClusters() int {
	return d.dpi.NumClusters() + d.zip.NumClusters() +
		d.raid.NumClusters() + d.crypto.NumClusters()
}

// FreeCores counts unallocated programmable cores.
func (d *Device) FreeCores() int {
	n := 0
	for _, o := range d.coreOwner {
		if o == mem.Free {
			n++
		}
	}
	return n
}

// SetRates overrides the latency calibration.
func (d *Device) SetRates(r Rates) { d.rates = r }

// Launch is nf_launch. It validates every reservation, then installs the
// function atomically: on any failure all partial state is rolled back
// and an error is returned.
func (d *Device) Launch(spec LaunchSpec) (LaunchReport, error) {
	if spec.CoreMask == 0 {
		return LaunchReport{}, fmt.Errorf("snic: empty core mask")
	}
	if spec.MemBytes < uint64(len(spec.Image)) || spec.MemBytes == 0 {
		return LaunchReport{}, fmt.Errorf("snic: memory reservation %d < image %d", spec.MemBytes, len(spec.Image))
	}
	if len(spec.PageSet) == 0 {
		spec.PageSet = pagealloc.PageSet{d.cfg.FrameSize}
	}
	if spec.RingSlots == 0 {
		spec.RingSlots = 64
	}
	if spec.RingSlot == 0 {
		spec.RingSlot = 2048
	}
	// 1. Cores: requested cores must exist and be unassigned.
	var cores []int
	for i := 0; i < 64; i++ {
		if spec.CoreMask&(1<<i) == 0 {
			continue
		}
		if i >= d.cfg.Cores {
			return LaunchReport{}, fmt.Errorf("snic: core %d does not exist", i)
		}
		if d.coreOwner[i] != mem.Free {
			return LaunchReport{}, fmt.Errorf("snic: core %d already bound to NF %d", i, d.coreOwner[i])
		}
		cores = append(cores, i)
	}
	id := d.nextID

	// Rollback bookkeeping: each completed step appends an undo.
	var undo []func()
	fail := func(err error) (LaunchReport, error) {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		return LaunchReport{}, err
	}

	// 2. Memory: single-owner frames, image copied in. With the warm
	// pool on, the reservation is served from the scrubbed arena when a
	// parked run fits.
	region, poolHit, err := d.allocNFBytes(id, spec.MemBytes)
	if err != nil {
		return fail(fmt.Errorf("snic: %w", err))
	}
	undo = append(undo, func() { d.pm.ReleaseAll(id) })
	if err := d.pm.Write(region.Start, spec.Image); err != nil {
		return fail(err)
	}

	// 3. Core TLB: variable-page-size entries covering exactly the
	// reservation, then locked.
	plan, err := pagealloc.PlanSegment(spec.MemBytes, spec.PageSet)
	if err != nil {
		return fail(err)
	}
	bank := tlb.NewBank(plan.Entries + 1)
	if d.obsReg != nil {
		bank.Observe(d.obsReg, d.cfg.Serial, fmt.Sprintf("nf%d", id))
	}
	va := uint64(0)
	for _, m := range plan.Pages {
		for i := 0; i < m.Count; i++ {
			e := tlb.Entry{
				VA:   tlb.VAddr(va),
				PA:   region.Start + mem.Addr(va),
				Size: m.PageSize,
				Perm: tlb.PermRW | tlb.PermExec,
			}
			if err := bank.Install(e); err != nil {
				return fail(fmt.Errorf("snic: core TLB: %w", err))
			}
			va += m.PageSize
		}
	}
	bank.Lock()

	// 4. Denylist the function's pages against the management core.
	d.deny.Deny(region.Start, region.Frames*d.cfg.FrameSize, id)
	undo = append(undo, func() { d.deny.AllowOwner(id) })

	// 5. Virtual packet pipeline + switching rules.
	ringBase := tlb.VAddr(0) // ring lives at the start of the NF's memory
	schedEntries := []tlb.Entry{{
		VA:   ringBase,
		PA:   region.Start,
		Size: mem.AlignUp(uint64(spec.RingSlots*spec.RingSlot), d.cfg.FrameSize),
		Perm: tlb.PermRW,
	}}
	if uint64(spec.RingSlots*spec.RingSlot) > spec.MemBytes {
		return fail(fmt.Errorf("snic: packet ring larger than NF memory"))
	}
	rxb := spec.RXBufBytes
	if rxb == 0 {
		rxb = 256 << 10
	}
	txb := spec.TXBufBytes
	if txb == 0 {
		txb = 256 << 10
	}
	vpp, err := d.sw.CreateVPP(id, rxb, txb, schedEntries, ringBase, spec.RingSlots, spec.RingSlot)
	if err != nil {
		return fail(err)
	}
	undo = append(undo, func() { d.sw.DestroyVPP(id) })
	for _, specRule := range spec.Rules {
		if err := d.sw.AddRule(pktio.Rule{Spec: specRule, Target: id}); err != nil {
			return fail(err)
		}
	}

	// 6. Accelerator clusters, each behind the NF's own mappings.
	acEntries := bank.Entries()
	var dpiCl, zipCl, raidCl, cryptoCl []*accel.Cluster
	if spec.DPIClusters > 0 {
		if dpiCl, err = d.dpi.Alloc(id, spec.DPIClusters, acEntries); err != nil {
			return fail(err)
		}
		undo = append(undo, func() { d.dpi.Release(id) })
	}
	if spec.ZIPClusters > 0 {
		if zipCl, err = d.zip.Alloc(id, spec.ZIPClusters, acEntries); err != nil {
			return fail(err)
		}
		undo = append(undo, func() { d.zip.Release(id) })
	}
	if spec.RAIDClusters > 0 {
		if raidCl, err = d.raid.Alloc(id, spec.RAIDClusters, acEntries); err != nil {
			return fail(err)
		}
		undo = append(undo, func() { d.raid.Release(id) })
	}
	if spec.CryptoClusters > 0 {
		if cryptoCl, err = d.crypto.Alloc(id, spec.CryptoClusters, acEntries); err != nil {
			return fail(err)
		}
		undo = append(undo, func() { d.crypto.Release(id) })
	}

	// 7. DMA bank.
	var bankDMA *dma.Bank
	if spec.DMAWindow != nil {
		if spec.DMACore < 0 || spec.DMACore >= d.cfg.Cores || spec.CoreMask&(1<<spec.DMACore) == 0 {
			return fail(fmt.Errorf("snic: DMA core %d not in the function's core mask", spec.DMACore))
		}
		bankDMA = d.dmaC.Bank(spec.DMACore)
		if err := bankDMA.Bind(id, acEntries, spec.DMAWindow); err != nil {
			return fail(err)
		}
		undo = append(undo, func() { bankDMA.Unbind() })
	}

	// 8. Cumulative launch hash over everything that defines the function.
	var lh attest.LaunchHash
	lh.Add("image", spec.Image)
	lh.Add("coremask", u64bytes(spec.CoreMask))
	lh.Add("membytes", u64bytes(spec.MemBytes))
	for _, r := range spec.Rules {
		lh.Add("rule", []byte(fmt.Sprintf("%+v", r)))
	}
	lh.Add("accel", []byte(fmt.Sprintf("dpi=%d zip=%d raid=%d crypto=%d",
		spec.DPIClusters, spec.ZIPClusters, spec.RAIDClusters, spec.CryptoClusters)))

	// Commit: bind cores last (nothing below can fail).
	for _, c := range cores {
		d.coreOwner[c] = id
	}
	v := &VirtualNIC{
		ID: id, Cores: cores, Mem: region, TLB: bank, VPP: vpp,
		DPI: dpiCl, ZIP: zipCl, RAIDs: raidCl, Crypto: cryptoCl,
		DMABank: bankDMA,
		Hash:    lh.Sum(),
	}
	d.nfs[id] = v
	d.nextID++

	r := LaunchReport{
		ID:         id,
		TLBSetupMS: d.rates.TLBSetupSec * 1e3,
		DenylistMS: d.rates.DenylistSec * 1e3,
		DigestMS:   d.digestMS(spec, poolHit),
		PoolHit:    poolHit,
	}
	// The trace mirrors the report phase for phase; the cross-check test
	// in internal/exp holds the two accountings together.
	d.span("launch/tlb_setup", r.TLBSetupMS)
	d.span("launch/denylist", r.DenylistMS)
	d.span("launch/sha_digest", r.DigestMS)
	d.obsLive.Set(int64(len(d.nfs)))
	return r, nil
}

// Teardown is nf_teardown: atomically destroy the NF, scrubbing all its
// state.
func (d *Device) Teardown(id ID) (TeardownReport, error) {
	v, ok := d.nfs[id]
	if !ok {
		return TeardownReport{}, fmt.Errorf("snic: no NF %d", id)
	}
	for _, c := range v.Cores {
		d.coreOwner[c] = mem.Free
	}
	d.sw.DestroyVPP(id)
	d.dpi.Release(id)
	d.zip.Release(id)
	d.raid.Release(id)
	d.crypto.Release(id)
	if v.DMABank != nil {
		v.DMABank.Unbind()
	}
	scrubbed := d.releaseNFMem(id) // zeroes pages (parking them if the warm pool is on)
	d.deny.AllowOwner(id)
	// Zero cache lines (the microarchitectural half of the scrub).
	if d.DomainOf != nil {
		for _, c := range d.SharedCaches {
			c.FlushDomain(d.DomainOf(id))
		}
	}
	delete(d.nfs, id)
	scrubMS := float64(scrubbed) / d.rates.ScrubBytesPerSec * 1e3
	if stripes := d.scrubStripes(); stripes > 1 {
		scrubMS /= float64(stripes)
	}
	r := TeardownReport{
		AllowlistMS: d.rates.AllowlistSec * 1e3,
		ScrubMS:     scrubMS,
	}
	d.span("teardown/allowlist", r.AllowlistMS)
	d.span("teardown/scrub", r.ScrubMS)
	d.obsLive.Set(int64(len(d.nfs)))
	return r, nil
}

// AttestNF is nf_attest: sign the function's launch hash with the device
// attestation key. It returns the quote, the device-side DH secret
// (complete the exchange with attest.CompleteExchange), and the simulated
// instruction latency in milliseconds.
func (d *Device) AttestNF(id ID, nonce []byte) (attest.Quote, *big.Int, float64, error) {
	v, ok := d.nfs[id]
	if !ok {
		return attest.Quote{}, nil, 0, fmt.Errorf("snic: no NF %d", id)
	}
	q, x, err := d.hw.Attest(v.Hash, nonce)
	if err != nil {
		return attest.Quote{}, nil, 0, err
	}
	d.span("attest/sha", d.rates.AttestSHASec*1e3)
	d.span("attest/rsa_sign", d.rates.RSASignSec*1e3)
	latency := (d.rates.RSASignSec + d.rates.AttestSHASec) * 1e3
	return q, x, latency, nil
}

// NFRead reads the function's memory at va through its locked TLB — the
// path NF code itself uses. Other principals have no such path.
func (d *Device) NFRead(id ID, va tlb.VAddr, buf []byte) error {
	v, ok := d.nfs[id]
	if !ok {
		return fmt.Errorf("snic: no NF %d", id)
	}
	pa, err := v.TLB.Translate(va, tlb.PermRead)
	if err != nil {
		return err
	}
	// The last byte must translate too: an access spanning past the
	// locked mapping is a fatal miss, never a window onto the next frame.
	if len(buf) > 1 {
		if _, err := v.TLB.Translate(va+tlb.VAddr(len(buf)-1), tlb.PermRead); err != nil {
			return err
		}
	}
	return d.pm.Read(pa, buf)
}

// NFWrite writes the function's memory at va through its locked TLB.
func (d *Device) NFWrite(id ID, va tlb.VAddr, data []byte) error {
	v, ok := d.nfs[id]
	if !ok {
		return fmt.Errorf("snic: no NF %d", id)
	}
	pa, err := v.TLB.Translate(va, tlb.PermWrite)
	if err != nil {
		return err
	}
	if len(data) > 1 {
		if _, err := v.TLB.Translate(va+tlb.VAddr(len(data)-1), tlb.PermWrite); err != nil {
			return err
		}
	}
	return d.pm.Write(pa, data)
}

// MgmtMap asks the management core's MMU to map a physical range; the
// dual-walk against the denylist rejects NF-owned memory (§4.2).
func (d *Device) MgmtMap(va tlb.VAddr, pa mem.Addr, size uint64) error {
	return d.mgmt.Install(tlb.Entry{VA: va, PA: pa, Size: size, Perm: tlb.PermRW})
}

// MgmtRead reads through the management core's MMU.
func (d *Device) MgmtRead(va tlb.VAddr, buf []byte) error {
	pa, err := d.mgmt.Translate(va, tlb.PermRead)
	if err != nil {
		return err
	}
	return d.pm.Read(pa, buf)
}

// MgmtUnmap flushes the management-core mapping covering va (a software
// TLB shootdown; the management bank is never locked).
func (d *Device) MgmtUnmap(va tlb.VAddr) bool { return d.mgmt.Evict(va) }

// MgmtWrite writes through the management core's MMU.
func (d *Device) MgmtWrite(va tlb.VAddr, data []byte) error {
	pa, err := d.mgmt.Translate(va, tlb.PermWrite)
	if err != nil {
		return err
	}
	return d.pm.Write(pa, data)
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b[:]
}

// SendLocal implements the §4.8 "extended version of S-NIC" for function
// chaining: NFs in different virtual NICs exchange data via localhost
// networking, with trusted hardware moving the message directly between
// the side-channel-isolated VPPs. No memory is ever shared: the source
// frame is read through the sender's locked TLB and written into the
// receiver's ring through the receiver's scheduler TLB, so the only
// information that crosses the boundary is the overt message content and
// its timing — exactly the residual channel the paper accepts for chains.
func (d *Device) SendLocal(from, to ID, va tlb.VAddr, n int) error {
	src, ok := d.nfs[from]
	if !ok {
		return fmt.Errorf("snic: no NF %d", from)
	}
	dst, ok := d.nfs[to]
	if !ok {
		return fmt.Errorf("snic: no NF %d", to)
	}
	if n <= 0 {
		return fmt.Errorf("snic: empty local send")
	}
	frame := make([]byte, n)
	off := 0
	for off < n {
		chunk := n - off
		if chunk > 1024 {
			chunk = 1024
		}
		pa, err := src.TLB.Translate(va+tlb.VAddr(off), tlb.PermRead)
		if err != nil {
			return fmt.Errorf("snic: sender fault: %w", err)
		}
		if _, err := src.TLB.Translate(va+tlb.VAddr(off+chunk-1), tlb.PermRead); err != nil {
			return fmt.Errorf("snic: sender fault: %w", err)
		}
		if err := d.pm.Read(pa, frame[off:off+chunk]); err != nil {
			return err
		}
		off += chunk
	}
	return dst.VPP.PushLocal(d.pm, frame)
}

// Reboot power-cycles the NIC: every live function is torn down (with
// full scrubbing) and the attestation key is regenerated, exactly as
// Appendix A specifies ("After a reboot, the NIC generates a random
// asymmetric key pair known as the attestation key pair"). Quotes signed
// before the reboot no longer chain to the device's current AK.
func (d *Device) Reboot() error {
	for id := range d.nfs {
		if _, err := d.Teardown(id); err != nil {
			return err
		}
	}
	d.pm.DrainPool() // a power cycle forgets the warm arena
	d.nextID = mem.FirstNF
	return d.hw.Reboot()
}

// LiveNFs returns the number of running functions.
func (d *Device) LiveNFs() int { return len(d.nfs) }
