package snic

import (
	"bytes"
	"errors"
	"testing"

	"snic/internal/attest"
	"snic/internal/dma"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/pktio"
	"snic/internal/sim"
	"snic/internal/tlb"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	v, err := attest.NewVendor("TestVendor", nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Cores: 8, MemBytes: 64 << 20}, v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func basicSpec() LaunchSpec {
	return LaunchSpec{
		CoreMask: 0b0011,
		Image:    []byte("nf code and data"),
		MemBytes: 1 << 20,
		Rules:    []pktio.MatchSpec{{DstPortLo: 80, DstPortHi: 80}},
		DMACore:  -1,
	}
}

func TestLaunchBindsResources(t *testing.T) {
	d := newDevice(t)
	rep, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := d.NF(rep.ID)
	if v == nil {
		t.Fatal("no virtual NIC")
	}
	if len(v.Cores) != 2 || d.FreeCores() != 6 {
		t.Fatalf("cores: %v free %d", v.Cores, d.FreeCores())
	}
	if !v.TLB.Locked() {
		t.Fatal("core TLB not locked")
	}
	if v.VPP == nil {
		t.Fatal("no VPP")
	}
	if v.Hash == ([32]byte{}) {
		t.Fatal("no launch hash")
	}
	// The image is readable through the NF's own TLB.
	buf := make([]byte, 16)
	if err := d.NFRead(rep.ID, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("nf code and data")) {
		t.Fatalf("image = %q", buf)
	}
}

func TestLaunchRejectsCoreConflicts(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Launch(basicSpec()); err != nil {
		t.Fatal(err)
	}
	spec := basicSpec()
	spec.CoreMask = 0b0110 // overlaps core 1
	if _, err := d.Launch(spec); err == nil {
		t.Fatal("core conflict accepted")
	}
	spec.CoreMask = 1 << 20 // nonexistent core
	if _, err := d.Launch(spec); err == nil {
		t.Fatal("nonexistent core accepted")
	}
	spec.CoreMask = 0
	if _, err := d.Launch(spec); err == nil {
		t.Fatal("empty mask accepted")
	}
}

func TestLaunchRollbackOnFailure(t *testing.T) {
	d := newDevice(t)
	spec := basicSpec()
	spec.DPIClusters = 100 // cannot be satisfied
	if _, err := d.Launch(spec); err == nil {
		t.Fatal("impossible accelerator demand accepted")
	}
	// Everything must have been rolled back.
	if d.FreeCores() != 8 {
		t.Fatal("cores leaked")
	}
	if d.Denylist().Len() != 0 {
		t.Fatal("denylist entries leaked")
	}
	if d.Memory().OwnedBytes(mem.FirstNF) != 0 {
		t.Fatal("memory leaked")
	}
	// A follow-up launch works and reuses the resources.
	if _, err := d.Launch(basicSpec()); err != nil {
		t.Fatal(err)
	}
}

func TestManagementCoreDeniedNFMemory(t *testing.T) {
	d := newDevice(t)
	rep, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := d.NF(rep.ID)
	// The NIC OS tries to map the NF's physical pages: dual-walk refuses.
	err = d.MgmtMap(0, v.Mem.Start, 128<<10)
	if !errors.Is(err, tlb.ErrDenied) {
		t.Fatalf("management map of NF memory: %v", err)
	}
	// Mapping free memory is fine.
	free, _ := d.Memory().AllocBytes(mem.NICOS, 128<<10)
	if err := d.MgmtMap(0, free.Start, 128<<10); err != nil {
		t.Fatal(err)
	}
	if err := d.MgmtWrite(0, []byte("os data")); err != nil {
		t.Fatal(err)
	}
}

func TestStaleManagementMappingRevoked(t *testing.T) {
	d := newDevice(t)
	// The OS maps a free region first...
	region, _ := d.Memory().AllocBytes(mem.NICOS, 256<<10)
	if err := d.MgmtMap(0, region.Start, 256<<10); err != nil {
		t.Fatal(err)
	}
	// ...then releases it and an NF launches over it.
	d.Memory().ReleaseAll(mem.NICOS)
	rep, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := d.NF(rep.ID)
	if v.Mem.Start != region.Start {
		t.Skip("allocator did not reuse the region; nothing to test")
	}
	var b [8]byte
	if err := d.MgmtRead(0, b[:]); !errors.Is(err, tlb.ErrDenied) {
		t.Fatalf("stale mapping usable: %v", err)
	}
}

func TestNFCannotReachBeyondItsTLB(t *testing.T) {
	d := newDevice(t)
	repA, _ := d.Launch(basicSpec())
	specB := basicSpec()
	specB.CoreMask = 0b1100
	repB, err := d.Launch(specB)
	if err != nil {
		t.Fatal(err)
	}
	_ = repB
	// NF A's VA space covers only its 1 MB; everything else misses, so
	// there is no address NF A can use to reach NF B.
	var b [8]byte
	if err := d.NFRead(repA.ID, tlb.VAddr(2<<20), b[:]); !errors.Is(err, tlb.ErrMiss) {
		t.Fatalf("out-of-reservation read: %v", err)
	}
}

func TestTeardownScrubsAndReleases(t *testing.T) {
	d := newDevice(t)
	rep, _ := d.Launch(basicSpec())
	v := d.NF(rep.ID)
	secret := []byte("flow table secrets")
	if err := d.NFWrite(rep.ID, 4096, secret); err != nil {
		t.Fatal(err)
	}
	start := v.Mem.Start
	tr, err := d.Teardown(rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ScrubMS <= 0 {
		t.Fatal("no scrub time")
	}
	if d.NF(rep.ID) != nil {
		t.Fatal("NF still registered")
	}
	if d.FreeCores() != 8 || d.Denylist().Len() != 0 {
		t.Fatal("resources not released")
	}
	// Raw DRAM shows zeroes where the secret was.
	got := make([]byte, len(secret))
	d.Memory().Read(start+4096, got)
	if !bytes.Equal(got, make([]byte, len(secret))) {
		t.Fatalf("teardown residue: %q", got)
	}
	// Teardown of a dead NF fails.
	if _, err := d.Teardown(rep.ID); err == nil {
		t.Fatal("double teardown accepted")
	}
}

func TestLaunchLatencyScalesWithMemory(t *testing.T) {
	d := newDevice(t)
	small := basicSpec()
	small.MemBytes = 1 << 20
	big := basicSpec()
	big.CoreMask = 0b1100
	big.MemBytes = 32 << 20
	rs, err := d.Launch(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := d.Launch(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.DigestMS <= rs.DigestMS*16 {
		t.Fatalf("digest latency not proportional: %v vs %v", rb.DigestMS, rs.DigestMS)
	}
	// Calibration sanity: 13.8 MB should digest in ~29.6 ms.
	r := DefaultRates()
	ms := 13.8 * 1e6 / r.DigestBytesPerSec * 1e3
	if ms < 25 || ms > 35 {
		t.Fatalf("digest calibration off: 13.8MB -> %.2fms", ms)
	}
}

func TestAttestEndToEnd(t *testing.T) {
	vend, _ := attest.NewVendor("V", nil)
	d, err := New(Config{Cores: 4, MemBytes: 16 << 20}, vend)
	if err != nil {
		t.Fatal(err)
	}
	spec := basicSpec()
	spec.CoreMask = 0b0001
	rep, err := d.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("fresh-nonce")
	q, x, latency, err := d.AttestNF(rep.ID, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if latency < 5 || latency > 7 {
		t.Fatalf("attest latency %.2fms, want ~5.6", latency)
	}
	if err := attest.Verify(vend.PublicKey(), q, d.NF(rep.ID).Hash, nonce); err != nil {
		t.Fatal(err)
	}
	pub, key, err := attest.VerifierExchange(q)
	if err != nil {
		t.Fatal(err)
	}
	if attest.CompleteExchange(pub, x) != key {
		t.Fatal("shared keys disagree")
	}
	// A verifier expecting different initial state rejects the quote:
	// this is how clients detect a NIC OS that mis-staged the image.
	wrong := d.NF(rep.ID).Hash
	wrong[0] ^= 1
	if err := attest.Verify(vend.PublicKey(), q, wrong, nonce); err == nil {
		t.Fatal("wrong state accepted")
	}
}

func TestPacketPathEndToEnd(t *testing.T) {
	d := newDevice(t)
	rep, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	frame := (&pkt.Packet{
		Tuple: pkt.FiveTuple{
			SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: pkt.ProtoTCP,
		},
		Payload: []byte("to the NF"),
	}).Marshal()
	owner, err := d.Switch().Deliver(frame)
	if err != nil {
		t.Fatal(err)
	}
	if owner != rep.ID {
		t.Fatalf("delivered to %d", owner)
	}
	v := d.NF(rep.ID)
	desc, ok := v.VPP.Pop()
	if !ok {
		t.Fatal("no descriptor")
	}
	// The NF reads the frame through its own TLB.
	raw := make([]byte, desc.Len)
	if err := d.NFRead(rep.ID, desc.VA, raw); err != nil {
		t.Fatal(err)
	}
	got, err := pkt.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "to the NF" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestDMABinding(t *testing.T) {
	d := newDevice(t)
	spec := basicSpec()
	spec.DMACore = 0
	spec.DMAWindow = dma.NewHostRegion(64 << 10)
	rep, err := d.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := d.NF(rep.ID)
	if v.DMABank == nil || v.DMABank.Owner() != rep.ID {
		t.Fatal("DMA bank not bound")
	}
	// Move data NF -> host.
	d.NFWrite(rep.ID, 8192, []byte("results"))
	if err := v.DMABank.ToHost(d.Memory(), 8192, 7, 0); err != nil {
		t.Fatal(err)
	}
	if string(spec.DMAWindow.Bytes()[:7]) != "results" {
		t.Fatal("DMA to host failed")
	}
	// DMA core outside the mask is rejected.
	spec2 := basicSpec()
	spec2.CoreMask = 0b1100
	spec2.DMACore = 0 // not in mask
	spec2.DMAWindow = dma.NewHostRegion(1024)
	if _, err := d.Launch(spec2); err == nil {
		t.Fatal("DMA core outside mask accepted")
	}
}

func TestAcceleratorBindingThroughLaunch(t *testing.T) {
	d := newDevice(t)
	spec := basicSpec()
	spec.DPIClusters = 2
	spec.ZIPClusters = 1
	rep, err := d.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := d.NF(rep.ID)
	if len(v.DPI) != 2 || len(v.ZIP) != 1 {
		t.Fatalf("clusters: dpi=%d zip=%d", len(v.DPI), len(v.ZIP))
	}
	for _, c := range v.DPI {
		if c.Owner() != rep.ID || !c.TLB.Locked() {
			t.Fatal("DPI cluster not bound/locked")
		}
	}
	if _, err := d.Teardown(rep.ID); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchHashDependsOnEverything(t *testing.T) {
	d := newDevice(t)
	a, _ := d.Launch(basicSpec())
	specB := basicSpec()
	specB.CoreMask = 0b1100
	specB.Image = []byte("nf code and datX") // one byte differs
	b, _ := d.Launch(specB)
	if d.NF(a.ID).Hash == d.NF(b.ID).Hash {
		t.Fatal("different images hash equal")
	}
}

func TestLaunchRejectsOversizedRing(t *testing.T) {
	d := newDevice(t)
	spec := basicSpec()
	spec.MemBytes = 128 << 10
	spec.RingSlots = 1024
	spec.RingSlot = 2048 // 2 MB ring > 128 KB memory
	if _, err := d.Launch(spec); err == nil {
		t.Fatal("oversized ring accepted")
	}
}

func TestSendLocalChainsFunctions(t *testing.T) {
	d := newDevice(t)
	a, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	specB := basicSpec()
	specB.CoreMask = 0b1100
	b, err := d.Launch(specB)
	if err != nil {
		t.Fatal(err)
	}
	// NF A builds a frame in its own memory (beyond its ring) and chains
	// it to NF B over the localhost path.
	frame := (&pkt.Packet{
		Tuple:   pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: pkt.ProtoTCP},
		Payload: []byte("chained hop"),
	}).Marshal()
	if err := d.NFWrite(a.ID, tlb.VAddr(256<<10), frame); err != nil {
		t.Fatal(err)
	}
	if err := d.SendLocal(a.ID, b.ID, tlb.VAddr(256<<10), len(frame)); err != nil {
		t.Fatal(err)
	}
	desc, ok := d.NF(b.ID).VPP.Pop()
	if !ok {
		t.Fatal("no descriptor at receiver")
	}
	raw := make([]byte, desc.Len)
	if err := d.NFRead(b.ID, desc.VA, raw); err != nil {
		t.Fatal(err)
	}
	got, err := pkt.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "chained hop" {
		t.Fatalf("payload = %q", got.Payload)
	}
	// The sender cannot source a message from memory it does not map.
	span := d.NF(a.ID).TLB.TotalMapped()
	if err := d.SendLocal(a.ID, b.ID, tlb.VAddr(span), 64); err == nil {
		t.Fatal("out-of-mapping local send accepted")
	}
	// Unknown endpoints fail.
	if err := d.SendLocal(99, b.ID, 0, 8); err == nil {
		t.Fatal("unknown sender accepted")
	}
	if err := d.SendLocal(a.ID, 99, 0, 8); err == nil {
		t.Fatal("unknown receiver accepted")
	}
	if err := d.SendLocal(a.ID, b.ID, 0, 0); err == nil {
		t.Fatal("empty send accepted")
	}
}

// Fuzz-style lifecycle test: a random interleaving of launches and
// teardowns must never violate the resource invariants — no core owned
// twice, denylist exactly covering live NF frames, memory ownership
// consistent, and every live NF still able to read its own image.
func TestLifecycleChurnInvariants(t *testing.T) {
	v, _ := attest.NewVendor("V", nil)
	d, err := New(Config{Cores: 6, MemBytes: 48 << 20}, v)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(0xC0FFEE)
	live := map[ID]byte{} // id -> image tag
	var ids []ID
	for step := 0; step < 300; step++ {
		if rng.Intn(2) == 0 && len(live) < 4 {
			tag := byte(rng.Intn(256))
			mask := uint64(0)
			for b := 0; b < 6 && mask == 0; b++ {
				c := rng.Intn(6)
				if d.coreOwner[c] == mem.Free {
					mask = 1 << c
				}
			}
			if mask == 0 {
				continue
			}
			rep, err := d.Launch(LaunchSpec{
				CoreMask: mask,
				Image:    []byte{tag, tag, tag, tag},
				MemBytes: uint64(1+rng.Intn(4)) << 20,
				DMACore:  -1,
			})
			if err != nil {
				continue // resource exhaustion is fine; state must stay sane
			}
			live[rep.ID] = tag
			ids = append(ids, rep.ID)
		} else if len(ids) > 0 {
			id := ids[rng.Intn(len(ids))]
			if _, ok := live[id]; !ok {
				continue
			}
			if _, err := d.Teardown(id); err != nil {
				t.Fatalf("step %d: teardown(%d): %v", step, id, err)
			}
			delete(live, id)
		}
		// Invariants.
		owned := map[int]ID{}
		for c, o := range d.coreOwner {
			if o == mem.Free {
				continue
			}
			if _, ok := live[o]; !ok {
				t.Fatalf("step %d: core %d owned by dead NF %d", step, c, o)
			}
			owned[c] = o
		}
		for id, tag := range live {
			var img [4]byte
			if err := d.NFRead(id, 0, img[:]); err != nil {
				t.Fatalf("step %d: NF %d cannot read image: %v", step, id, err)
			}
			if img[0] != tag {
				t.Fatalf("step %d: NF %d image corrupted (%d != %d)", step, id, img[0], tag)
			}
			vn := d.NF(id)
			if !d.Denylist().Denied(vn.Mem.Start, 1) {
				t.Fatalf("step %d: NF %d memory not denylisted", step, id)
			}
		}
		if d.FreeCores()+len(owned) != 6 {
			t.Fatalf("step %d: core accounting broken", step)
		}
	}
}

// The §4.1 example provisioning: three cores, 40 MB of RAM, two
// cryptographic accelerators, and a compression accelerator.
func TestPaperExampleProvisioning(t *testing.T) {
	v, _ := attest.NewVendor("V", nil)
	d, err := New(Config{Cores: 8, MemBytes: 256 << 20}, v)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Launch(LaunchSpec{
		CoreMask:       0b0111,
		Image:          []byte("wan-optimizer"),
		MemBytes:       40 << 20,
		CryptoClusters: 2,
		ZIPClusters:    1,
		DMACore:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	vn := d.NF(rep.ID)
	if len(vn.Cores) != 3 || len(vn.Crypto) != 2 || len(vn.ZIP) != 1 {
		t.Fatalf("provisioning: cores=%d crypto=%d zip=%d",
			len(vn.Cores), len(vn.Crypto), len(vn.ZIP))
	}
	if _, err := d.Teardown(rep.ID); err != nil {
		t.Fatal(err)
	}
}

func TestRebootTearsDownAndRotatesAK(t *testing.T) {
	vend, _ := attest.NewVendor("V", nil)
	d, err := New(Config{Cores: 4, MemBytes: 16 << 20}, vend)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	q1, _, _, err := d.AttestNF(rep.ID, []byte("n1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Reboot(); err != nil {
		t.Fatal(err)
	}
	if d.LiveNFs() != 0 || d.FreeCores() != 4 {
		t.Fatal("reboot left residue")
	}
	// Relaunch; the new quote carries a different AK.
	rep2, err := d.Launch(basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	q2, _, _, err := d.AttestNF(rep2.ID, []byte("n2"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(q1.AKPub, q2.AKPub) {
		t.Fatal("attestation key not rotated across reboot")
	}
	if err := attest.Verify(vend.PublicKey(), q2, d.NF(rep2.ID).Hash, []byte("n2")); err != nil {
		t.Fatal(err)
	}
}
