package device

import (
	"snic/internal/baseline"
	"snic/internal/mem"
)

func init() {
	Register("bluefield", func(spec Spec) (NIC, error) { return newBlueField(spec) })
}

// blueField adapts the TrustZone model. Function state lives in
// secure-world trustlets: the normal world (and so any co-tenant
// function issuing raw-physical probes) is blocked by the address-space
// controller, but the secure-world management OS reads everything —
// the §3.2 asymmetry. The Linux kernel demand-pages normal-world
// processes, so the controlled-channel prerequisite holds.
type blueField struct {
	commBase
	b *baseline.BlueField
}

func newBlueField(spec Spec) (*blueField, error) {
	b, err := baseline.NewBlueField(spec.MemBytes, spec.SecureBytes)
	if err != nil {
		return nil, err
	}
	d := &blueField{
		commBase: newCommBase("bluefield", SingleOwnerRAM|DemandPaging, spec.Cores),
		b:        b,
	}
	d.res = commodityResources(spec.Cores, d.MemBytes())
	return d, nil
}

func (d *blueField) Launch(spec FuncSpec) (FuncID, error) {
	spec.defaults()
	mask, err := d.cores.pick(spec.CoreMask)
	if err != nil {
		return 0, err
	}
	region, err := d.b.CreateTrustlet(d.nextID, spec.MemBytes)
	if err != nil {
		return 0, err
	}
	if err := d.b.SecureWrite(region.Start, spec.Image); err != nil {
		return 0, err
	}
	return d.register(spec, region, mask)
}

func (d *blueField) Teardown(id FuncID) error {
	// OP-TEE frees the trustlet's pages but nothing scrubs them; the
	// secure allocator here is bump-only, like the baseline model.
	return d.unregister(id)
}

func (d *blueField) Read(id FuncID, off uint64, buf []byte) error {
	f, err := d.checkAccess(id, off, len(buf))
	if err != nil {
		return err
	}
	return d.b.SecureRead(f.region.Start+mem.Addr(off), buf)
}

func (d *blueField) Write(id FuncID, off uint64, data []byte) error {
	f, err := d.checkAccess(id, off, len(data))
	if err != nil {
		return err
	}
	return d.b.SecureWrite(f.region.Start+mem.Addr(off), data)
}

func (d *blueField) Inject(frame []byte) (FuncID, error) {
	id, err := d.steerFrame(frame)
	if err != nil || id == 0 {
		return 0, err
	}
	f := d.funcs[id]
	off := f.bytes/2 + f.frameOff
	if off+uint64(len(frame)) > f.bytes {
		return 0, ErrNoFrame
	}
	addr := f.region.Start + mem.Addr(off)
	if err := d.b.SecureWrite(addr, frame); err != nil {
		return 0, err
	}
	f.frameOff += mem.AlignUp(uint64(len(frame)), 64)
	f.frames = append(f.frames, frameRef{addr: addr, n: len(frame)})
	return id, nil
}

func (d *blueField) Retrieve(id FuncID) ([]byte, error) {
	fr, err := d.popFrame(id)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fr.n)
	if err := d.b.SecureRead(fr.addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ProbeRead: a malicious co-tenant function runs in the normal world,
// and the TrustZone address-space controller blocks it from secure
// memory — BlueField's one isolation property that holds.
func (d *blueField) ProbeRead(id FuncID, pa mem.Addr, buf []byte) error {
	if _, ok := d.funcs[id]; !ok {
		return ErrNoFunc
	}
	return d.b.NormalRead(pa, buf)
}

func (d *blueField) ProbeWrite(id FuncID, pa mem.Addr, data []byte) error {
	if _, ok := d.funcs[id]; !ok {
		return ErrNoFunc
	}
	return d.b.NormalWrite(pa, data)
}

// MgmtRead: the secure-world management OS reads anything, including
// every trustlet — the hole S-NIC's denylist closes.
func (d *blueField) MgmtRead(pa mem.Addr, buf []byte) error {
	return d.b.SecureRead(pa, buf)
}

func (d *blueField) MemBytes() uint64  { return d.b.Memory().Size() }
func (d *blueField) FrameSize() uint64 { return d.b.Memory().FrameSize() }
