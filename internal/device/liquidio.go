package device

import (
	"fmt"
	"math"

	"snic/internal/baseline"
	"snic/internal/mem"
)

func init() {
	// SE-S: bootloader-installed NFs, all privileged, xkphys everywhere.
	Register("liquidio-ses", func(spec Spec) (NIC, error) {
		return newLiquidIO(spec, "liquidio-ses", baseline.SES, 0)
	})
	// SE-UM: NFs are Linux processes. xkphys stays enabled (the §3.3
	// attack configuration), and the kernel demand-pages the processes —
	// which is the controlled-channel prerequisite.
	Register("liquidio-seum", func(spec Spec) (NIC, error) {
		return newLiquidIO(spec, "liquidio-seum", baseline.SEUM, DemandPaging)
	})
}

// liquidIO adapts the Cavium model. Function memory comes from the
// shared buffer allocator, so every reservation is visible in the
// DRAM-resident metadata table — the state the §3.3 scans walk.
type liquidIO struct {
	commBase
	l *baseline.LiquidIO
}

func newLiquidIO(spec Spec, model string, mode baseline.Mode, extraCaps Capability) (*liquidIO, error) {
	l, err := baseline.NewLiquidIO(spec.MemBytes, mode, true)
	if err != nil {
		return nil, err
	}
	d := &liquidIO{
		commBase: newCommBase(model, extraCaps, spec.Cores),
		l:        l,
	}
	d.res = commodityResources(spec.Cores, d.MemBytes())
	return d, nil
}

func (d *liquidIO) Launch(spec FuncSpec) (FuncID, error) {
	spec.defaults()
	if spec.MemBytes > math.MaxUint32 {
		return 0, fmt.Errorf("device: %s reservation too large", d.model)
	}
	mask, err := d.cores.pick(spec.CoreMask)
	if err != nil {
		return 0, err
	}
	addr, err := d.l.AllocBuf(d.nextID, uint32(spec.MemBytes), baseline.TagGeneric)
	if err != nil {
		return 0, err
	}
	if err := d.l.Memory().Write(addr, spec.Image); err != nil {
		return 0, err
	}
	fs := d.l.Memory().FrameSize()
	region := mem.Range{Start: addr, Frames: (spec.MemBytes + fs - 1) / fs}
	return d.register(spec, region, mask)
}

func (d *liquidIO) Teardown(id FuncID) error {
	// The shared allocator has no free(): metadata lingers and the heap
	// only grows, so a torn-down function's bytes stay in DRAM for the
	// next scan — faithfully non-scrubbing.
	return d.unregister(id)
}

func (d *liquidIO) Read(id FuncID, off uint64, buf []byte) error {
	f, err := d.checkAccess(id, off, len(buf))
	if err != nil {
		return err
	}
	return d.l.Memory().Read(f.region.Start+mem.Addr(off), buf)
}

func (d *liquidIO) Write(id FuncID, off uint64, data []byte) error {
	f, err := d.checkAccess(id, off, len(data))
	if err != nil {
		return err
	}
	return d.l.Memory().Write(f.region.Start+mem.Addr(off), data)
}

func (d *liquidIO) Inject(frame []byte) (FuncID, error) {
	id, err := d.steerFrame(frame)
	if err != nil || id == 0 {
		return 0, err
	}
	// Packet buffers come from the shared pool, tagged in the metadata
	// table like the real allocator's.
	addr, err := d.l.AllocBuf(id, uint32(len(frame)), baseline.TagPacket)
	if err != nil {
		return 0, err
	}
	if err := d.l.Memory().Write(addr, frame); err != nil {
		return 0, err
	}
	d.funcs[id].frames = append(d.funcs[id].frames, frameRef{addr: addr, n: len(frame)})
	return id, nil
}

func (d *liquidIO) Retrieve(id FuncID) ([]byte, error) {
	fr, err := d.popFrame(id)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fr.n)
	if err := d.l.Memory().Read(fr.addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ProbeRead: xkphys exposes all of physical memory to every core (§3.2).
func (d *liquidIO) ProbeRead(id FuncID, pa mem.Addr, buf []byte) error {
	if _, ok := d.funcs[id]; !ok {
		return ErrNoFunc
	}
	return d.l.XkphysRead(id, pa, buf)
}

func (d *liquidIO) ProbeWrite(id FuncID, pa mem.Addr, data []byte) error {
	if _, ok := d.funcs[id]; !ok {
		return ErrNoFunc
	}
	return d.l.XkphysWrite(id, pa, data)
}

// MgmtRead: privileged software sees plain DRAM.
func (d *liquidIO) MgmtRead(pa mem.Addr, buf []byte) error {
	return d.l.Memory().Read(pa, buf)
}

func (d *liquidIO) MemBytes() uint64  { return d.l.Memory().Size() }
func (d *liquidIO) FrameSize() uint64 { return d.l.Memory().FrameSize() }
