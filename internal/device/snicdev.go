package device

import (
	"fmt"

	"snic/internal/attest"
	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/mem"
	"snic/internal/snic"
	"snic/internal/tlb"
)

func init() {
	Register("snic", func(spec Spec) (NIC, error) { return newSNIC(spec) })
}

// SNIC adapts the paper's device (internal/snic) to the device.NIC
// interface. It is exported (unlike the commodity adapters) because the
// richer examples and Figure 6 need the underlying *snic.Device — VPP
// access, SendLocal, launch reports — after building it through the
// registry.
type SNIC struct {
	dev    *snic.Device
	vendor *attest.Vendor
	cores  *corePool
	bus    *busSim
	mgmtVA tlb.VAddr
	// Private per-function accelerator clusters: each function queues
	// only behind itself (§4.4), so the contention channel is silent.
	accelFree map[FuncID]uint64
}

func newSNIC(spec Spec) (*SNIC, error) {
	vendor := spec.Vendor
	if vendor == nil {
		var err error
		vendor, err = attest.NewVendor("SNIC Vendor", nil)
		if err != nil {
			return nil, err
		}
	}
	cfg := snic.Config{
		Cores:     spec.Cores,
		MemBytes:  spec.MemBytes,
		FrameSize: spec.FrameSize,
		Serial:    spec.Serial,
	}
	dev, err := snic.New(cfg, vendor)
	if err != nil {
		return nil, err
	}
	if spec.Rates != nil {
		dev.SetRates(*spec.Rates)
	}
	return &SNIC{
		dev:       dev,
		vendor:    vendor,
		cores:     newCorePool(dev.Cores()),
		bus:       newBusSim(bus.NewTemporal(max(2, dev.Cores()), 60, 10), dev.Cores()),
		accelFree: make(map[FuncID]uint64),
	}, nil
}

// Underlying returns the wrapped S-NIC device for callers that need the
// full §4 API (VPPs, SendLocal, launch reports, reboot).
func (s *SNIC) Underlying() *snic.Device { return s.dev }

// Vendor returns the attestation root the device was manufactured under.
func (s *SNIC) Vendor() *attest.Vendor { return s.vendor }

func (s *SNIC) Model() string { return "snic" }

func (s *SNIC) Caps() Capability {
	c := SingleOwnerRAM | ArbitratedBus | LockedTLB | PartitionedCache |
		PrivateAccel | MgmtIsolated | Attestation
	if s.dev.FastPathConfig().WarmPool {
		c |= WarmPool
	}
	return c
}

// EnableFastPaths turns the churn fast paths on (or off, with the zero
// value) on the underlying S-NIC. A warm pool left unsized by the
// caller is bounded from the device's capacity vector — see
// WarmPoolFrames — so fleet code can enable pooling without knowing the
// DRAM geometry.
func (s *SNIC) EnableFastPaths(fp snic.FastPaths) {
	if fp.WarmPool && fp.PoolFrames == 0 {
		fp.PoolFrames = WarmPoolFrames(s.Resources(), s.FrameSize())
	}
	s.dev.SetFastPaths(fp)
}

func (s *SNIC) Launch(spec FuncSpec) (FuncID, error) {
	spec.defaults()
	mask, err := s.cores.pick(spec.CoreMask)
	if err != nil {
		return 0, err
	}
	rep, err := s.dev.Launch(snic.LaunchSpec{
		CoreMask: mask,
		Image:    spec.Image,
		MemBytes: mem.AlignUp(spec.MemBytes, s.dev.Memory().FrameSize()),
		Rules:    spec.Rules,
		DMACore:  -1,
	})
	if err != nil {
		return 0, err
	}
	if _, err := s.cores.claim(rep.ID, mask); err != nil {
		return 0, fmt.Errorf("device: core table out of sync: %w", err)
	}
	return rep.ID, nil
}

// LaunchTimed launches like Launch but also returns the §4.2 per-phase
// launch report, and reserves only small per-function port buffers
// (32 KB per direction): churn workloads cycle many short-lived
// functions through the switch ports, where the default 256 KB
// reservations would exhaust the physical TX buffer at a handful of
// live functions.
func (s *SNIC) LaunchTimed(spec FuncSpec) (FuncID, snic.LaunchReport, error) {
	spec.defaults()
	mask, err := s.cores.pick(spec.CoreMask)
	if err != nil {
		return 0, snic.LaunchReport{}, err
	}
	rep, err := s.dev.Launch(snic.LaunchSpec{
		CoreMask:   mask,
		Image:      spec.Image,
		MemBytes:   mem.AlignUp(spec.MemBytes, s.dev.Memory().FrameSize()),
		Rules:      spec.Rules,
		RXBufBytes: 32 << 10,
		TXBufBytes: 32 << 10,
		DMACore:    -1,
	})
	if err != nil {
		return 0, snic.LaunchReport{}, err
	}
	if _, err := s.cores.claim(rep.ID, mask); err != nil {
		return 0, snic.LaunchReport{}, fmt.Errorf("device: core table out of sync: %w", err)
	}
	return rep.ID, rep, nil
}

// TeardownTimed tears down like Teardown but also returns the §4.2
// per-phase teardown report.
func (s *SNIC) TeardownTimed(id FuncID) (snic.TeardownReport, error) {
	if err := s.live(id); err != nil {
		return snic.TeardownReport{}, err
	}
	rep, err := s.dev.Teardown(id)
	if err != nil {
		return snic.TeardownReport{}, err
	}
	s.cores.release(id)
	delete(s.accelFree, id)
	return rep, nil
}

// live normalizes "no such NF" to the interface error.
func (s *SNIC) live(id FuncID) error {
	if s.dev.NF(id) == nil {
		return ErrNoFunc
	}
	return nil
}

func (s *SNIC) Teardown(id FuncID) error {
	if err := s.live(id); err != nil {
		return err
	}
	if _, err := s.dev.Teardown(id); err != nil {
		return err
	}
	s.cores.release(id)
	delete(s.accelFree, id)
	return nil
}

func (s *SNIC) Attest(id FuncID, nonce []byte) (attest.Quote, error) {
	if err := s.live(id); err != nil {
		return attest.Quote{}, err
	}
	q, _, _, err := s.dev.AttestNF(id, nonce)
	return q, err
}

func (s *SNIC) Read(id FuncID, off uint64, buf []byte) error {
	if err := s.live(id); err != nil {
		return err
	}
	return s.dev.NFRead(id, tlb.VAddr(off), buf)
}

func (s *SNIC) Write(id FuncID, off uint64, data []byte) error {
	if err := s.live(id); err != nil {
		return err
	}
	return s.dev.NFWrite(id, tlb.VAddr(off), data)
}

func (s *SNIC) Inject(frame []byte) (FuncID, error) {
	return s.dev.Switch().Deliver(frame)
}

func (s *SNIC) Retrieve(id FuncID) ([]byte, error) {
	v := s.dev.NF(id)
	if v == nil {
		return nil, ErrNoFunc
	}
	desc, ok := v.VPP.Pop()
	if !ok {
		return nil, ErrNoFrame
	}
	buf := make([]byte, desc.Len)
	if err := s.dev.NFRead(id, desc.VA, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ProbeRead is the attacker's address-guessing attempt. S-NIC cores have
// no physical addressing: the only addresses a function can issue go
// through its locked TLB, so "physical address" pa is just another VA —
// it resolves inside the function's own reservation or faults.
func (s *SNIC) ProbeRead(id FuncID, pa mem.Addr, buf []byte) error {
	if err := s.live(id); err != nil {
		return err
	}
	return s.dev.NFRead(id, tlb.VAddr(pa), buf)
}

func (s *SNIC) ProbeWrite(id FuncID, pa mem.Addr, data []byte) error {
	if err := s.live(id); err != nil {
		return err
	}
	return s.dev.NFWrite(id, tlb.VAddr(pa), data)
}

// MgmtRead maps a frame-aligned scratch window over [pa, pa+len) through
// the management core's guarded MMU and reads through it. The denylist
// dual-walk rejects the mapping whenever the target belongs to a live
// function (§4.2), which is exactly the property the snooping attack
// tests.
func (s *SNIC) MgmtRead(pa mem.Addr, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	fs := s.dev.Memory().FrameSize()
	base := uint64(pa) / fs * fs
	span := mem.AlignUp(uint64(pa)+uint64(len(buf)), fs) - base
	va := s.mgmtVA
	s.mgmtVA += tlb.VAddr(span)
	mapped := uint64(0)
	unmap := func() {
		for off := uint64(0); off < mapped; off += fs {
			s.dev.MgmtUnmap(va + tlb.VAddr(off))
		}
	}
	for off := uint64(0); off < span; off += fs {
		if err := s.dev.MgmtMap(va+tlb.VAddr(off), mem.Addr(base+off), fs); err != nil {
			unmap()
			return err
		}
		mapped += fs
	}
	err := s.dev.MgmtRead(va+tlb.VAddr(uint64(pa)-base), buf)
	unmap()
	return err
}

func (s *SNIC) Region(id FuncID) (mem.Range, bool) {
	v := s.dev.NF(id)
	if v == nil {
		return mem.Range{}, false
	}
	return v.Mem, true
}

// Resources: S-NIC reservations are hardware-enforced — locked per-core
// TLB banks, statically partitioned L2 ways, and private accelerator
// clusters summed across the four on-NIC accelerators.
func (s *SNIC) Resources() Resources {
	return Resources{
		Cores:         s.dev.Cores(),
		MemBytes:      s.dev.Memory().Size(),
		TLBEntries:    s.dev.Cores() * TLBEntriesPerCore,
		CacheWays:     DefaultCacheWays,
		AccelClusters: s.dev.AccelClusters(),
	}
}

func (s *SNIC) MemBytes() uint64  { return s.dev.Memory().Size() }
func (s *SNIC) FrameSize() uint64 { return s.dev.Memory().FrameSize() }
func (s *SNIC) Cores() int        { return s.dev.Cores() }
func (s *SNIC) FreeCores() int    { return s.dev.FreeCores() }
func (s *SNIC) Live() int         { return s.dev.LiveNFs() }

func (s *SNIC) CachePolicy() cache.Policy { return cache.Static }

func (s *SNIC) NewBusArbiter(clients int) bus.Arbiter {
	return bus.NewTemporal(clients, 60, 10)
}

func (s *SNIC) BusOp(client int, now uint64) (uint64, error) {
	return s.bus.op(client, now)
}

func (s *SNIC) AcceleratorOp(id FuncID, now uint64) (done, waited uint64) {
	start := now
	if f := s.accelFree[id]; f > start {
		start = f
	}
	s.accelFree[id] = start + accelOpCost
	return start + accelOpCost, 0 // private cluster: no cross-tenant queueing
}
