package device

import (
	"fmt"
	"sort"
)

// builders maps model name -> constructor. Adapters register themselves
// at init time, so Models() is the authoritative list the CLIs and the
// attack matrix sweep over.
var builders = map[string]func(Spec) (NIC, error){}

// Register installs a model constructor. Duplicate names are a
// programming error.
func Register(model string, build func(Spec) (NIC, error)) {
	if _, dup := builders[model]; dup {
		panic("device: duplicate model " + model)
	}
	builders[model] = build
}

// Models returns the registered model names, sorted.
func Models() []string {
	out := make([]string, 0, len(builders))
	for m := range builders {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// New builds a device from spec via the registry.
func New(spec Spec) (NIC, error) {
	build, ok := builders[spec.Model]
	if !ok {
		return nil, fmt.Errorf("device: unknown model %q (have %v)", spec.Model, Models())
	}
	spec.defaults()
	return build(spec)
}
