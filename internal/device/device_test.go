package device

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"snic/internal/pkt"
	"snic/internal/pktio"
)

func testSpec(model string) Spec {
	return Spec{Model: model, Cores: 2, MemBytes: 16 << 20}
}

func build(t *testing.T, model string) NIC {
	t.Helper()
	dev, err := New(testSpec(model))
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestRegistry(t *testing.T) {
	models := Models()
	for _, want := range []string{"snic", "liquidio-ses", "liquidio-seum", "agilio", "bluefield"} {
		found := false
		for _, m := range models {
			if m == want {
				found = true
			}
		}
		if !found {
			t.Errorf("model %q not registered (have %v)", want, models)
		}
	}
	if !sortedStrings(models) {
		t.Errorf("Models() not sorted: %v", models)
	}
	_, err := New(Spec{Model: "connectx"})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	if !strings.Contains(err.Error(), "snic") {
		t.Errorf("unknown-model error does not list registered models: %v", err)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestConformanceLifecycle: every model launches up to core exhaustion,
// tears down, and relaunches on the freed core.
func TestConformanceLifecycle(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			dev := build(t, model)
			if dev.Model() != model {
				t.Fatalf("Model() = %q", dev.Model())
			}
			if dev.Cores() != 2 || dev.FreeCores() != 2 || dev.Live() != 0 {
				t.Fatalf("fresh device: cores=%d free=%d live=%d",
					dev.Cores(), dev.FreeCores(), dev.Live())
			}
			a, err := dev.Launch(FuncSpec{Name: "a", MemBytes: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			b, err := dev.Launch(FuncSpec{Name: "b", MemBytes: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			if a == b {
				t.Fatal("duplicate function IDs")
			}
			if dev.FreeCores() != 0 || dev.Live() != 2 {
				t.Fatalf("after 2 launches: free=%d live=%d", dev.FreeCores(), dev.Live())
			}
			if _, err := dev.Launch(FuncSpec{Name: "c", MemBytes: 256 << 10}); err == nil {
				t.Fatal("launch beyond core count succeeded")
			}
			if err := dev.Teardown(a); err != nil {
				t.Fatal(err)
			}
			if err := dev.Teardown(a); !errors.Is(err, ErrNoFunc) {
				t.Fatalf("double teardown: %v", err)
			}
			if dev.FreeCores() != 1 || dev.Live() != 1 {
				t.Fatalf("after teardown: free=%d live=%d", dev.FreeCores(), dev.Live())
			}
			if _, err := dev.Launch(FuncSpec{Name: "c", MemBytes: 256 << 10}); err != nil {
				t.Fatalf("relaunch on freed core: %v", err)
			}
		})
	}
}

// TestConformanceOwnerAccess: owner-scoped Read/Write round-trips and
// is bounds-checked on every model.
func TestConformanceOwnerAccess(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			dev := build(t, model)
			id, err := dev.Launch(FuncSpec{Name: "nf", MemBytes: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			want := []byte("owner-scoped state")
			if err := dev.Write(id, 9000, want); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			if err := dev.Read(id, 9000, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("roundtrip: got %q", got)
			}
			if err := dev.Write(id, (256<<10)-4, want); err == nil {
				t.Fatal("write past reservation succeeded")
			}
			if err := dev.Read(FuncID(250), 0, got); !errors.Is(err, ErrNoFunc) {
				t.Fatalf("read from unknown function: %v", err)
			}
			if _, ok := dev.Region(id); !ok {
				t.Fatal("no region for live function")
			}
		})
	}
}

// TestConformanceIsolation: whether a co-tenant probe or a management
// read reaches a victim's memory must match the capability flags.
func TestConformanceIsolation(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			dev := build(t, model)
			victim, err := dev.Launch(FuncSpec{Name: "victim", MemBytes: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			attacker, err := dev.Launch(FuncSpec{Name: "attacker", MemBytes: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			secret := []byte("victim flow table")
			const off = 12288
			if err := dev.Write(victim, off, secret); err != nil {
				t.Fatal(err)
			}
			region, ok := dev.Region(victim)
			if !ok {
				t.Fatal("victim has no region")
			}

			probe := make([]byte, len(secret))
			probed := dev.ProbeRead(attacker, region.Start+off, probe) == nil &&
				bytes.Equal(probe, secret)
			if want := !dev.Caps().Has(SingleOwnerRAM); probed != want {
				t.Errorf("co-tenant probe reached victim=%v, capability says %v", probed, want)
			}

			mgmt := make([]byte, len(secret))
			snooped := dev.MgmtRead(region.Start+off, mgmt) == nil &&
				bytes.Equal(mgmt, secret)
			if want := !dev.Caps().Has(MgmtIsolated); snooped != want {
				t.Errorf("management read reached victim=%v, capability says %v", snooped, want)
			}
		})
	}
}

// TestConformanceSteering: frames steer by the launch rules and round-
// trip unmodified through every model's RX path.
func TestConformanceSteering(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			dev := build(t, model)
			id, err := dev.Launch(FuncSpec{
				Name: "web", MemBytes: 256 << 10,
				Rules: []pktio.MatchSpec{{Proto: pkt.ProtoTCP, DstPortLo: 443, DstPortHi: 443}},
			})
			if err != nil {
				t.Fatal(err)
			}
			frame := (&pkt.Packet{
				Tuple:   pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 9, DstPort: 443, Proto: pkt.ProtoTCP},
				Payload: []byte("tls client hello"),
			}).Marshal()
			to, err := dev.Inject(frame)
			if err != nil {
				t.Fatal(err)
			}
			if to != id {
				t.Fatalf("frame steered to %d, want %d", to, id)
			}
			got, err := dev.Retrieve(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, frame) {
				t.Fatal("frame modified in flight")
			}
			if _, err := dev.Retrieve(id); !errors.Is(err, ErrNoFrame) {
				t.Fatalf("retrieve from empty queue: %v", err)
			}
		})
	}
}

// TestConformanceAttest: attestation works exactly where the capability
// flag says it does.
func TestConformanceAttest(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			dev := build(t, model)
			id, err := dev.Launch(FuncSpec{Name: "nf", MemBytes: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			_, err = dev.Attest(id, []byte("nonce"))
			if dev.Caps().Has(Attestation) {
				if err != nil {
					t.Fatalf("attestation failed on attesting device: %v", err)
				}
			} else if !errors.Is(err, ErrUnsupported) {
				t.Fatalf("attest on non-attesting device: %v", err)
			}
		})
	}
}

// TestConformanceDeterminism: equal Specs build devices that assign the
// same IDs and regions for the same launch sequence.
func TestConformanceDeterminism(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			d1, d2 := build(t, model), build(t, model)
			for i := 0; i < 2; i++ {
				id1, err1 := d1.Launch(FuncSpec{Name: "nf", MemBytes: 256 << 10})
				id2, err2 := d2.Launch(FuncSpec{Name: "nf", MemBytes: 256 << 10})
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("launch %d diverged: %v vs %v", i, err1, err2)
				}
				if id1 != id2 {
					t.Fatalf("launch %d: ids %d vs %d", i, id1, id2)
				}
				r1, _ := d1.Region(id1)
				r2, _ := d2.Region(id2)
				if r1 != r2 {
					t.Fatalf("launch %d: regions %+v vs %+v", i, r1, r2)
				}
			}
		})
	}
}

func TestCapabilityString(t *testing.T) {
	if Capability(0).String() != "none" {
		t.Fatalf("zero caps = %q", Capability(0).String())
	}
	s := (SingleOwnerRAM | LockedTLB).String()
	if !strings.Contains(s, "single-owner-ram") || !strings.Contains(s, "locked-tlb") {
		t.Fatalf("caps string = %q", s)
	}
	if SingleOwnerRAM.Has(LockedTLB) {
		t.Fatal("Has() broken")
	}
	if !(SingleOwnerRAM | LockedTLB).Has(LockedTLB) {
		t.Fatal("Has() broken")
	}
}

func TestSpecString(t *testing.T) {
	s := testSpec("snic")
	if s.String() == "" {
		t.Fatal("empty spec render")
	}
}

func TestConformanceResources(t *testing.T) {
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			dev := build(t, model)
			r := dev.Resources()
			if r.Cores != dev.Cores() {
				t.Fatalf("Resources().Cores = %d, Cores() = %d", r.Cores, dev.Cores())
			}
			if r.MemBytes != dev.MemBytes() {
				t.Fatalf("Resources().MemBytes = %d, MemBytes() = %d", r.MemBytes, dev.MemBytes())
			}
			if r.TLBEntries != dev.Cores()*TLBEntriesPerCore {
				t.Fatalf("Resources().TLBEntries = %d", r.TLBEntries)
			}
			if r.CacheWays != DefaultCacheWays {
				t.Fatalf("Resources().CacheWays = %d", r.CacheWays)
			}
			if r.AccelClusters <= 0 {
				t.Fatalf("Resources().AccelClusters = %d", r.AccelClusters)
			}
		})
	}
}

func TestResourcesVector(t *testing.T) {
	cap := Resources{Cores: 4, MemBytes: 1 << 20, TLBEntries: 64, CacheWays: 16, AccelClusters: 8}
	d := Resources{Cores: 1, MemBytes: 1 << 10, TLBEntries: 8, CacheWays: 2, AccelClusters: 1}
	if !cap.Fits(d) {
		t.Fatal("demand should fit")
	}
	if cap.Fits(Resources{Cores: 5}) {
		t.Fatal("core overcommit should not fit")
	}
	rem := cap.Sub(d)
	if rem.Cores != 3 || rem.TLBEntries != 56 || rem.CacheWays != 14 {
		t.Fatalf("Sub wrong: %+v", rem)
	}
	if back := rem.Add(d); back != cap {
		t.Fatalf("Add(Sub) != identity: %+v", back)
	}
	if !(Resources{}).IsZero() || d.IsZero() {
		t.Fatal("IsZero wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sub underflow should panic")
		}
	}()
	_ = d.Sub(cap)
}
