package device

import (
	"snic/internal/attest"
	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/mem"
	"snic/internal/pktio"
)

// commFunc is the per-function bookkeeping the commodity adapters keep
// in software (there is no trusted hardware tracking it, which is rather
// the point).
type commFunc struct {
	name     string
	region   mem.Range
	bytes    uint64
	rules    []pktio.MatchSpec
	frames   []frameRef
	frameOff uint64 // next free slot in the region's RX staging area
}

// frameRef locates one delivered frame in device memory.
type frameRef struct {
	addr mem.Addr
	n    int
}

// commBase carries the bookkeeping all three commodity adapters share:
// function table, launch order (steering precedence), core pool, and the
// shared bus/accelerator substrates. The adapters embed it and override
// what their architecture does differently.
type commBase struct {
	model  string
	caps   Capability
	cores  *corePool
	funcs  map[FuncID]*commFunc
	order  []FuncID
	nextID FuncID
	bus    *busSim
	accel  sharedAccel
	res    Resources // schedulable capacity, fixed at construction
}

func newCommBase(model string, caps Capability, cores int) commBase {
	return commBase{
		model:  model,
		caps:   caps,
		cores:  newCorePool(cores),
		funcs:  make(map[FuncID]*commFunc),
		nextID: mem.FirstNF,
		bus:    newBusSim(bus.NewFIFO(), cores),
	}
}

func (c *commBase) Model() string        { return c.model }
func (c *commBase) Caps() Capability     { return c.caps }
func (c *commBase) Resources() Resources { return c.res }
func (c *commBase) Cores() int           { return len(c.cores.owner) }
func (c *commBase) FreeCores() int       { return c.cores.free() }
func (c *commBase) Live() int            { return len(c.funcs) }

// Attest: commodity models have no launch measurement to sign.
func (c *commBase) Attest(FuncID, []byte) (attest.Quote, error) {
	return attest.Quote{}, ErrUnsupported
}

func (c *commBase) Region(id FuncID) (mem.Range, bool) {
	f, ok := c.funcs[id]
	if !ok {
		return mem.Range{}, false
	}
	return f.region, true
}

// CachePolicy: one L2, no partitioning.
func (c *commBase) CachePolicy() cache.Policy { return cache.Shared }

// NewBusArbiter: first-come-first-served, no reservations (§3.3).
func (c *commBase) NewBusArbiter(int) bus.Arbiter { return bus.NewFIFO() }

func (c *commBase) BusOp(client int, now uint64) (uint64, error) {
	return c.bus.op(client, now)
}

// AcceleratorOp: one shared unit; the queueing delay leaks co-tenant
// activity (§3.2).
func (c *commBase) AcceleratorOp(_ FuncID, now uint64) (done, waited uint64) {
	return c.accel.op(now)
}

// register files a launched function under the next id.
func (c *commBase) register(spec FuncSpec, region mem.Range, mask uint64) (FuncID, error) {
	id := c.nextID
	if _, err := c.cores.claim(id, mask); err != nil {
		return 0, err
	}
	c.funcs[id] = &commFunc{
		name:   spec.Name,
		region: region,
		bytes:  spec.MemBytes,
		rules:  spec.Rules,
	}
	c.order = append(c.order, id)
	c.nextID++
	return id, nil
}

// unregister removes a function (no scrubbing: commodity teardown just
// frees the bookkeeping, which is itself one of the §3.2 gaps).
func (c *commBase) unregister(id FuncID) error {
	if _, ok := c.funcs[id]; !ok {
		return ErrNoFunc
	}
	c.cores.release(id)
	delete(c.funcs, id)
	for i, o := range c.order {
		if o == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

// checkAccess bounds-checks an owner-scoped access.
func (c *commBase) checkAccess(id FuncID, off uint64, n int) (*commFunc, error) {
	f, ok := c.funcs[id]
	if !ok {
		return nil, ErrNoFunc
	}
	if off+uint64(n) > f.bytes {
		return nil, mem.ErrOutOfRange
	}
	return f, nil
}

// steerFrame picks the receiving function for a frame.
func (c *commBase) steerFrame(frame []byte) (FuncID, error) {
	rules := make(map[FuncID][]pktio.MatchSpec, len(c.funcs))
	for id, f := range c.funcs {
		rules[id] = f.rules
	}
	return steer(c.order, rules, frame)
}

// popFrame dequeues the next pending frame reference.
func (c *commBase) popFrame(id FuncID) (frameRef, error) {
	f, ok := c.funcs[id]
	if !ok {
		return frameRef{}, ErrNoFunc
	}
	if len(f.frames) == 0 {
		return frameRef{}, ErrNoFrame
	}
	fr := f.frames[0]
	f.frames = f.frames[1:]
	return fr, nil
}
