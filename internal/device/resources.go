package device

import "fmt"

// Resources is the schedulable capacity vector of a device — the axes a
// fleet-level placer bin-packs tenant functions against. Every axis is
// something the models already meter individually: programmable cores
// (corePool), DRAM bytes (mem.Physical), locked-TLB entries installed at
// launch (§4.2), shared-L2 ways (§4.5 static partitioning), and
// accelerator clusters (§4.4 reservations).
//
// Capacities are reported uniformly across models so one scheduler can
// pack a mixed fleet: on commodity NICs the cache-way and cluster axes
// are admission-control budgets the *operator* enforces (the hardware
// shares them best-effort), while on S-NIC the same reservation is what
// the hardware actually partitions.
type Resources struct {
	Cores         int    `json:"cores"`
	MemBytes      uint64 `json:"mem_bytes"`
	TLBEntries    int    `json:"tlb_entries"`
	CacheWays     int    `json:"cache_ways"`
	AccelClusters int    `json:"accel_clusters"`
}

// Per-core locked-TLB entry budget every model reports. The S-NIC
// launch plan sizes each function's bank to exactly its mapping count,
// so the fleet-level budget bounds the *sum* of per-function banks.
const TLBEntriesPerCore = 64

// DefaultCacheWays is the shared-L2 associativity the Figure 5 sweeps
// model (exp.Fig5Config builds 16-way caches); the way axis is what
// SecDCP/static partitioning carves up.
const DefaultCacheWays = 16

// WarmPoolFrames sizes a device's warm scrubbed-arena pool from its
// capacity vector: a quarter of DRAM, in frames. Large enough that a
// churn workload's steady-state working set stays warm, small enough
// that parked frames never starve cold allocations — the general
// allocator always keeps three quarters of the device to itself.
func WarmPoolFrames(r Resources, frameSize uint64) uint64 {
	if frameSize == 0 {
		return 0
	}
	return r.MemBytes / 4 / frameSize
}

// Fits reports whether d fits inside the remaining capacity r.
func (r Resources) Fits(d Resources) bool {
	return d.Cores <= r.Cores &&
		d.MemBytes <= r.MemBytes &&
		d.TLBEntries <= r.TLBEntries &&
		d.CacheWays <= r.CacheWays &&
		d.AccelClusters <= r.AccelClusters
}

// Add returns r with d added axis-wise.
func (r Resources) Add(d Resources) Resources {
	r.Cores += d.Cores
	r.MemBytes += d.MemBytes
	r.TLBEntries += d.TLBEntries
	r.CacheWays += d.CacheWays
	r.AccelClusters += d.AccelClusters
	return r
}

// Sub returns r with d removed axis-wise. It panics if any axis would go
// negative: accounting bugs must not round to zero silently.
func (r Resources) Sub(d Resources) Resources {
	if !r.Fits(d) {
		panic(fmt.Sprintf("device: resource underflow: %v - %v", r, d))
	}
	r.Cores -= d.Cores
	r.MemBytes -= d.MemBytes
	r.TLBEntries -= d.TLBEntries
	r.CacheWays -= d.CacheWays
	r.AccelClusters -= d.AccelClusters
	return r
}

// IsZero reports whether every axis is zero.
func (r Resources) IsZero() bool { return r == Resources{} }

func (r Resources) String() string {
	return fmt.Sprintf("cores=%d mem=%dKB tlb=%d ways=%d clusters=%d",
		r.Cores, r.MemBytes>>10, r.TLBEntries, r.CacheWays, r.AccelClusters)
}

// commodityResources is the capacity vector every commBase-backed
// adapter reports: per-core TLB budget, the modeled 16-way L2, and one
// time-shared accelerator context per core (there is a single FCFS
// unit, so "cluster" reservations on commodity models are operator
// admission control, not hardware).
func commodityResources(cores int, memBytes uint64) Resources {
	return Resources{
		Cores:         cores,
		MemBytes:      memBytes,
		TLBEntries:    cores * TLBEntriesPerCore,
		CacheWays:     DefaultCacheWays,
		AccelClusters: cores,
	}
}
