package device

import (
	"snic/internal/baseline"
	"snic/internal/mem"
)

func init() {
	Register("agilio", func(spec Spec) (NIC, error) { return newAgilio(spec) })
}

// agilio adapts the Netronome model: raw physical addressing from every
// island, an unarbitrated bus with a hard-crash watchdog, and one shared
// crypto accelerator. Bus and accelerator calls delegate to the baseline
// model so its watchdog/crash state stays authoritative.
type agilio struct {
	commBase
	a *baseline.Agilio
}

func newAgilio(spec Spec) (*agilio, error) {
	a, err := baseline.NewAgilio(spec.MemBytes, spec.Islands)
	if err != nil {
		return nil, err
	}
	d := &agilio{
		commBase: newCommBase("agilio", 0, spec.Cores),
		a:        a,
	}
	d.res = commodityResources(spec.Cores, d.MemBytes())
	return d, nil
}

func (d *agilio) Launch(spec FuncSpec) (FuncID, error) {
	spec.defaults()
	mask, err := d.cores.pick(spec.CoreMask)
	if err != nil {
		return 0, err
	}
	region, err := d.a.Memory().AllocBytes(d.nextID, spec.MemBytes)
	if err != nil {
		return 0, err
	}
	if err := d.a.Memory().Write(region.Start, spec.Image); err != nil {
		return 0, err
	}
	return d.register(spec, region, mask)
}

func (d *agilio) Teardown(id FuncID) error {
	if err := d.unregister(id); err != nil {
		return err
	}
	d.a.Memory().ReleaseAll(id)
	return nil
}

func (d *agilio) Read(id FuncID, off uint64, buf []byte) error {
	f, err := d.checkAccess(id, off, len(buf))
	if err != nil {
		return err
	}
	return d.a.Memory().Read(f.region.Start+mem.Addr(off), buf)
}

func (d *agilio) Write(id FuncID, off uint64, data []byte) error {
	f, err := d.checkAccess(id, off, len(data))
	if err != nil {
		return err
	}
	return d.a.Memory().Write(f.region.Start+mem.Addr(off), data)
}

func (d *agilio) Inject(frame []byte) (FuncID, error) {
	id, err := d.steerFrame(frame)
	if err != nil || id == 0 {
		return 0, err
	}
	addr, err := d.stageFrame(id, frame)
	if err != nil {
		return 0, err
	}
	d.funcs[id].frames = append(d.funcs[id].frames, frameRef{addr: addr, n: len(frame)})
	return id, nil
}

// stageFrame copies a delivered frame into the upper half of the
// receiver's region (a simple per-function RX area; the memory is still
// plain shared DRAM, which is what the corruption attack exploits).
func (d *agilio) stageFrame(id FuncID, frame []byte) (mem.Addr, error) {
	f := d.funcs[id]
	off := f.bytes/2 + f.frameOff
	if off+uint64(len(frame)) > f.bytes {
		return 0, ErrNoFrame
	}
	addr := f.region.Start + mem.Addr(off)
	if err := d.a.Memory().Write(addr, frame); err != nil {
		return 0, err
	}
	f.frameOff += mem.AlignUp(uint64(len(frame)), 64)
	return addr, nil
}

func (d *agilio) Retrieve(id FuncID) ([]byte, error) {
	fr, err := d.popFrame(id)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fr.n)
	if err := d.a.Memory().Read(fr.addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ProbeRead: islands address the shared memory banks physically, with no
// per-function check (§3.2).
func (d *agilio) ProbeRead(id FuncID, pa mem.Addr, buf []byte) error {
	if _, ok := d.funcs[id]; !ok {
		return ErrNoFunc
	}
	return d.a.Memory().Read(pa, buf)
}

func (d *agilio) ProbeWrite(id FuncID, pa mem.Addr, data []byte) error {
	if _, ok := d.funcs[id]; !ok {
		return ErrNoFunc
	}
	return d.a.Memory().Write(pa, data)
}

func (d *agilio) MgmtRead(pa mem.Addr, buf []byte) error {
	return d.a.Memory().Read(pa, buf)
}

func (d *agilio) MemBytes() uint64  { return d.a.Memory().Size() }
func (d *agilio) FrameSize() uint64 { return d.a.Memory().FrameSize() }

// BusOp delegates to the baseline model's unarbitrated bus and its
// watchdog/crash state.
func (d *agilio) BusOp(client int, now uint64) (uint64, error) {
	return d.a.BusOp(client, now)
}

// AcceleratorOp delegates to the baseline's single shared crypto unit.
func (d *agilio) AcceleratorOp(_ FuncID, now uint64) (done, waited uint64) {
	return d.a.CryptoOp(now)
}
