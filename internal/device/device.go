// Package device is the seam between the evaluation harness and the NIC
// models. It defines one interface — device.NIC — that the S-NIC device
// (internal/snic) and the three commodity baselines (internal/baseline)
// all implement through thin adapters, plus a registry that builds any
// model from a declarative Spec.
//
// The interface deliberately exposes both the legitimate paths (launch,
// owner-scoped read/write, packet injection) and the illegitimate ones
// the §3.3 attacks need (raw physical probes from a malicious function,
// management/secure-world reads, the shared-bus and shared-accelerator
// substrates). Each model answers those probes according to its
// architecture, and Caps() declares which §4 defenses it implements —
// so the attack suite (internal/attacks) is written once against
// device.NIC and predicts its own outcomes from the capability flags.
package device

import (
	"errors"
	"fmt"
	"strings"

	"snic/internal/attest"
	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/mem"
	"snic/internal/pktio"
	"snic/internal/snic"
)

// Capability is a bitmask of isolation properties a NIC model provides.
// Attacks declare the capability they exploit the *absence* of; a device
// holding the capability blocks the attack.
type Capability uint32

// Isolation capabilities (§4 defenses) plus architecture properties that
// gate attack applicability.
const (
	// SingleOwnerRAM: DRAM frames have exactly one owner and no function
	// can name another function's physical memory (§4.2 locked TLBs +
	// ownership map). Its absence is the xkphys / raw-island hole.
	SingleOwnerRAM Capability = 1 << iota
	// ArbitratedBus: the interconnect gives every client a guaranteed
	// share (§4.5 temporal partitioning). Its absence allows the bus DoS
	// and flow watermarking.
	ArbitratedBus
	// LockedTLB: translations are installed at launch and locked; no
	// runtime fault ever reaches an OS (§4.2). Its absence (with demand
	// paging) enables controlled-channel attacks.
	LockedTLB
	// PartitionedCache: shared caches are statically partitioned per
	// tenant (§4.5). Its absence enables prime+probe.
	PartitionedCache
	// PrivateAccel: accelerator clusters are reserved per function
	// (§4.4). Its absence enables contention side channels.
	PrivateAccel
	// MgmtIsolated: the management principal cannot read function memory
	// (§4.2 denylist). Its absence is the BlueField secure-world hole.
	MgmtIsolated
	// Attestation: the device signs launch measurements (§4.6).
	Attestation
	// DemandPaging marks an architecture property, not a defense: the
	// OS handles runtime translation faults for functions. It is the
	// prerequisite the controlled-channel attack needs.
	DemandPaging
	// WarmPool marks an *active* churn fast path, not a static model
	// property: teardown parks scrubbed frames in a per-device arena
	// for reuse by the next launch. Devices advertise it only while the
	// fast path is enabled (see SNIC.EnableFastPaths), so the attack
	// matrix and placement logic see exactly the configuration they run
	// against.
	WarmPool
)

// Has reports whether c contains every bit of f.
func (c Capability) Has(f Capability) bool { return c&f == f }

var capNames = []struct {
	bit  Capability
	name string
}{
	{SingleOwnerRAM, "single-owner-ram"},
	{ArbitratedBus, "arbitrated-bus"},
	{LockedTLB, "locked-tlb"},
	{PartitionedCache, "partitioned-cache"},
	{PrivateAccel, "private-accel"},
	{MgmtIsolated, "mgmt-isolated"},
	{Attestation, "attestation"},
	{DemandPaging, "demand-paging"},
	{WarmPool, "warm-pool"},
}

func (c Capability) String() string {
	var parts []string
	for _, cn := range capNames {
		if c.Has(cn.bit) {
			parts = append(parts, cn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// FuncID names a function launched on a device. It is the same principal
// namespace as mem.Owner (and snic.ID), so adapters pass it straight to
// the underlying models.
type FuncID = mem.Owner

// FuncSpec describes one function to launch, model-independently.
type FuncSpec struct {
	Name     string
	Image    []byte            // initial code+data (default: Name bytes)
	MemBytes uint64            // memory reservation (default 1 MB)
	CoreMask uint64            // cores to bind; 0 = auto-pick one free core
	Rules    []pktio.MatchSpec // ingress steering predicates
}

func (s *FuncSpec) defaults() {
	if s.Name == "" {
		s.Name = "nf"
	}
	if len(s.Image) == 0 {
		s.Image = []byte(s.Name + " image")
	}
	if s.MemBytes == 0 {
		s.MemBytes = 1 << 20
	}
}

// Errors shared by the adapters.
var (
	// ErrUnsupported is returned for operations the model does not
	// implement (e.g. Attest on a commodity NIC).
	ErrUnsupported = errors.New("device: operation unsupported by this model")
	// ErrNoFrame is returned by Retrieve when no frame is pending.
	ErrNoFrame = errors.New("device: no pending frame")
	// ErrNoFunc is returned for an unknown FuncID.
	ErrNoFunc = errors.New("device: no such function")
	// ErrNoCores is returned when Launch cannot find a free core.
	ErrNoCores = errors.New("device: no free cores")
)

// NIC is the model-independent device interface. The first block is the
// legitimate tenant/operator API; the second block exposes the attack
// surface each architecture actually has, so the polymorphic attack
// suite can issue the same illegal access everywhere and observe which
// hardware refuses it.
type NIC interface {
	// Model returns the registry name this device was built under.
	Model() string
	// Caps returns the isolation capabilities the model implements.
	Caps() Capability

	// Launch starts a function and returns its id.
	Launch(spec FuncSpec) (FuncID, error)
	// Teardown destroys a function, releasing (and, where the model
	// supports it, scrubbing) its resources.
	Teardown(id FuncID) error
	// Attest signs the function's launch measurement. Models without
	// the Attestation capability return ErrUnsupported.
	Attest(id FuncID, nonce []byte) (attest.Quote, error)

	// Read and Write access a function's own memory at a byte offset
	// into its reservation — the path the function's own code uses.
	Read(id FuncID, off uint64, buf []byte) error
	Write(id FuncID, off uint64, data []byte) error

	// Inject delivers a wire frame to the device's ingress; the return
	// is the function it was steered to (0 if no rule matched).
	Inject(frame []byte) (FuncID, error)
	// Retrieve pops the next pending frame from a function's receive
	// path, re-reading its bytes from device memory (so corruption that
	// happened after Inject is visible).
	Retrieve(id FuncID) ([]byte, error)

	// ProbeRead / ProbeWrite are a *malicious function's* attempt to
	// access an arbitrary physical address (xkphys-style). Models with
	// SingleOwnerRAM refuse anything outside the prober's reservation.
	ProbeRead(id FuncID, pa mem.Addr, buf []byte) error
	ProbeWrite(id FuncID, pa mem.Addr, data []byte) error
	// MgmtRead is the management principal's read path: the NIC OS on
	// S-NIC (denylist-checked), privileged software on LiquidIO/Agilio,
	// the secure-world OS on BlueField.
	MgmtRead(pa mem.Addr, buf []byte) error

	// Region reports where a function's reservation lives in DRAM.
	Region(id FuncID) (mem.Range, bool)
	// Resources reports the device's schedulable capacity vector — what
	// a fleet-level placer bin-packs tenant functions against.
	Resources() Resources
	MemBytes() uint64
	FrameSize() uint64
	Cores() int
	FreeCores() int
	// Live returns the number of running functions.
	Live() int

	// CachePolicy returns the shared-L2 partitioning policy the model
	// uses — the substrate prime+probe and the co-tenancy sweeps run on.
	CachePolicy() cache.Policy
	// NewBusArbiter builds the model's interconnect arbiter for the
	// given number of clients (FIFO on commodity NICs, temporal
	// partitioning on S-NIC).
	NewBusArbiter(clients int) bus.Arbiter
	// BusOp issues one bus transaction from a client at local time now,
	// returning the completion cycle. A wait past the watchdog
	// hard-crashes the NIC (§3.3), and every later op fails.
	BusOp(client int, now uint64) (uint64, error)
	// AcceleratorOp runs one operation on the model's crypto
	// accelerator at local time now, returning (completion, queueing
	// delay). The delay is the §3.2 side channel on shared units; with
	// PrivateAccel it is always zero.
	AcceleratorOp(id FuncID, now uint64) (done, waited uint64)
}

// Spec declaratively describes a device to build. Model selects the
// registered builder; the remaining fields parameterize it, with zero
// values picking per-model defaults.
type Spec struct {
	Model       string
	Cores       int
	MemBytes    uint64
	FrameSize   uint64 // ownership granularity (models that have one)
	SecureBytes uint64 // bluefield: secure-world carve-out (default MemBytes/4)
	Islands     int    // agilio: bus clients (default Cores)

	// S-NIC extras.
	Rates  *snic.Rates // Figure 6 latency calibration override
	Serial string
	Vendor *attest.Vendor // attestation root (default: a fresh vendor)
}

func (s *Spec) defaults() {
	if s.Cores == 0 {
		s.Cores = 4
	}
	if s.MemBytes == 0 {
		s.MemBytes = 64 << 20
	}
	if s.SecureBytes == 0 {
		s.SecureBytes = s.MemBytes / 4
	}
	if s.Islands == 0 {
		s.Islands = s.Cores
	}
	if s.Serial == "" {
		s.Serial = "SNIC-SIM-0"
	}
}

// String summarizes the spec for error messages.
func (s Spec) String() string {
	return fmt.Sprintf("%s{cores=%d mem=%dMB}", s.Model, s.Cores, s.MemBytes>>20)
}
