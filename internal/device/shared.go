package device

import (
	"fmt"

	"snic/internal/bus"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/pktio"
)

// Shared model constants, matching the Agilio baseline's calibration so
// the bus-DoS and contention numbers are comparable across models.
const (
	busOpCost      = 8
	watchdogCycles = 1 << 20
	accelOpCost    = 2000
)

// busSim gives every adapter Agilio-style watchdog semantics over its
// own arbiter: a request that waits past the watchdog hard-crashes the
// NIC, and every later op fails. Under a FIFO arbiter a flooding client
// starves the victim past the watchdog; under temporal partitioning no
// client can push another past it.
type busSim struct {
	tr      *bus.Tracker
	crashed bool
}

func newBusSim(arb bus.Arbiter, clients int) *busSim {
	if clients < 2 {
		clients = 2
	}
	return &busSim{tr: bus.NewTracker(arb, clients)}
}

func (b *busSim) op(client int, now uint64) (uint64, error) {
	if b.crashed {
		return 0, fmt.Errorf("device: NIC crashed; power cycle required")
	}
	start := b.tr.Request(client, now, busOpCost)
	if start-now > watchdogCycles {
		b.crashed = true
		return 0, fmt.Errorf("device: bus watchdog expired (waited %d cycles)", start-now)
	}
	return start + busOpCost, nil
}

// sharedAccel is a single accelerator unit with FIFO service — the
// commodity configuration whose queueing delay leaks co-tenant activity.
type sharedAccel struct {
	free uint64
}

func (s *sharedAccel) op(now uint64) (done, waited uint64) {
	start := now
	if s.free > start {
		start = s.free
	}
	s.free = start + accelOpCost
	return start + accelOpCost, start - now
}

// corePool hands out cores to launched functions. The commodity adapters
// use it directly; the snic adapter mirrors the device's own core table
// through the same auto-assignment logic.
type corePool struct {
	owner []FuncID
}

func newCorePool(n int) *corePool { return &corePool{owner: make([]FuncID, n)} }

// pick validates mask against the pool (or, for mask 0, selects the
// lowest free core) without binding anything.
func (p *corePool) pick(mask uint64) (uint64, error) {
	if mask == 0 {
		for i := range p.owner {
			if p.owner[i] == mem.Free {
				mask = 1 << uint(i)
				break
			}
		}
		if mask == 0 {
			return 0, ErrNoCores
		}
	}
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if i >= len(p.owner) {
			return 0, fmt.Errorf("device: core %d does not exist", i)
		}
		if p.owner[i] != mem.Free {
			return 0, fmt.Errorf("device: core %d already bound to function %d", i, p.owner[i])
		}
	}
	return mask, nil
}

// claim binds the cores in mask (or, for mask 0, the lowest free core)
// to id, returning the mask actually bound.
func (p *corePool) claim(id FuncID, mask uint64) (uint64, error) {
	mask, err := p.pick(mask)
	if err != nil {
		return 0, err
	}
	for i := 0; i < len(p.owner); i++ {
		if mask&(1<<uint(i)) != 0 {
			p.owner[i] = id
		}
	}
	return mask, nil
}

func (p *corePool) release(id FuncID) {
	for i := range p.owner {
		if p.owner[i] == id {
			p.owner[i] = mem.Free
		}
	}
}

func (p *corePool) free() int {
	n := 0
	for _, o := range p.owner {
		if o == mem.Free {
			n++
		}
	}
	return n
}

// steer picks the first function (in launch order) whose rules match the
// frame — the software analogue of the S-NIC switch, used by the
// commodity adapters that have no hardware steering.
func steer(order []FuncID, rules map[FuncID][]pktio.MatchSpec, frame []byte) (FuncID, error) {
	p, err := pkt.Parse(frame)
	if err != nil {
		return 0, err
	}
	for _, id := range order {
		for _, r := range rules[id] {
			if r.Matches(&p) {
				return id, nil
			}
		}
	}
	return 0, nil
}
