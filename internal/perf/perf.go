// Package perf records and compares benchmark results. It parses the
// text output of `go test -bench -benchmem` into a stable JSON summary
// (the committed BENCH_<pr>.json trajectory files) and diffs two
// summaries with a regression threshold, so a perf PR carries its own
// before/after evidence and CI can refuse silent slowdowns.
//
// File format, version 1:
//
//	{
//	  "snicperf": 1,
//	  "pr": 5,
//	  "sections": {
//	    "baseline": { "goos": ..., "benchmarks": [ ... ] },
//	    "post":     { ... }
//	  }
//	}
//
// A file holds named sections; by convention a perf PR commits the
// pre-change run as "baseline" and the post-change run as "post". When
// comparing two different files (the cross-PR trajectory), "post" is
// each file's representative section.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Version is the file-format version written by this package.
const Version = 1

// Benchmark is one parsed benchmark line. Metrics holds the custom
// b.ReportMetric units (e.g. "pct-degr-4NF") beyond the standard three.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Summary is one recorded `go test -bench` run.
type Summary struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the committed BENCH_<pr>.json shape: named sections of one
// summary each.
type File struct {
	Snicperf int                 `json:"snicperf"`
	PR       int                 `json:"pr,omitempty"`
	Sections map[string]*Summary `json:"sections"`
}

// ParseBench reads `go test -bench [-benchmem]` text output and returns
// the summary. Non-benchmark lines (goos/goarch/pkg/cpu headers, PASS,
// ok) are recognised or skipped; a benchmark that appears more than
// once (-count) keeps its last result. It is an error if no benchmark
// lines are found.
func ParseBench(r io.Reader) (*Summary, error) {
	s := &Summary{}
	index := map[string]int{} // name -> position in s.Benchmarks
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			s.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if b == nil {
				continue // a Benchmark* line without measurements
			}
			if i, ok := index[b.Name]; ok {
				s.Benchmarks[i] = *b
			} else {
				index[b.Name] = len(s.Benchmarks)
				s.Benchmarks = append(s.Benchmarks, *b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found (expected `go test -bench` output)")
	}
	return s, nil
}

// parseLine parses one "BenchmarkName-P  N  V unit  V unit ..." line.
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, nil
	}
	b := &Benchmark{Name: fields[0]}
	// Split the trailing -<procs> GOMAXPROCS suffix off the name.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b.Runs = runs
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q in %q: %v", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerS = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// ReadFile decodes a BENCH_<pr>.json document.
func ReadFile(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, err
	}
	if f.Snicperf != Version {
		return nil, fmt.Errorf("unsupported snicperf file version %d (want %d)", f.Snicperf, Version)
	}
	if len(f.Sections) == 0 {
		return nil, fmt.Errorf("file has no sections")
	}
	return &f, nil
}

// Marshal renders a file as indented JSON. encoding/json sorts map keys,
// so the output is deterministic for a given content.
func (f *File) Marshal() ([]byte, error) {
	f.Snicperf = Version
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Section returns the summary to use when a file stands for one run:
// the named section if given, else "post", else the only section. An
// empty name with several sections and no "post" is ambiguous.
func (f *File) Section(name string) (*Summary, error) {
	if name != "" {
		s := f.Sections[name]
		if s == nil {
			return nil, fmt.Errorf("no section %q (have %s)", name, strings.Join(f.sectionNames(), ", "))
		}
		return s, nil
	}
	if s := f.Sections["post"]; s != nil {
		return s, nil
	}
	if len(f.Sections) == 1 {
		for _, s := range f.Sections {
			return s, nil
		}
	}
	return nil, fmt.Errorf("ambiguous file: sections %s and no \"post\"; pick one with -section", strings.Join(f.sectionNames(), ", "))
}

func (f *File) sectionNames() []string {
	names := make([]string, 0, len(f.Sections))
	for n := range f.Sections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delta pairs one benchmark's old and new results; either side may be
// nil when the benchmark exists on only one side.
type Delta struct {
	Name     string
	Old, New *Benchmark
}

// Ratio returns new/old ns/op (1.0 = unchanged; <1 = faster). It is 0
// when either side is missing or old is zero.
func (d Delta) Ratio() float64 {
	if d.Old == nil || d.New == nil || d.Old.NsPerOp == 0 {
		return 0
	}
	return d.New.NsPerOp / d.Old.NsPerOp
}

// Diff joins two summaries by benchmark name, sorted.
func Diff(old, new *Summary) []Delta {
	byName := map[string]*Delta{}
	for i := range old.Benchmarks {
		b := &old.Benchmarks[i]
		byName[b.Name] = &Delta{Name: b.Name, Old: b}
	}
	for i := range new.Benchmarks {
		b := &new.Benchmarks[i]
		if d, ok := byName[b.Name]; ok {
			d.New = b
		} else {
			byName[b.Name] = &Delta{Name: b.Name, New: b}
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Delta, len(names))
	for i, n := range names {
		out[i] = *byName[n]
	}
	return out
}

// Regressions counts deltas whose ns/op grew by more than thresholdPct
// percent. Benchmarks present on only one side never count.
func Regressions(deltas []Delta, thresholdPct float64) int {
	n := 0
	for _, d := range deltas {
		if r := d.Ratio(); r > 0 && r > 1+thresholdPct/100 {
			n++
		}
	}
	return n
}
