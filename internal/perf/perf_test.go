package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: snic
cpu: Fake CPU @ 2.0GHz
BenchmarkFigure5aCacheSweep-8         	       2	 512345678 ns/op	        12.34 pct-degr-2NF-4MB	41234567 B/op	  123456 allocs/op
BenchmarkFigure6InstructionLatency-8  	     100	  10123456 ns/op	        0.4550 Mon-launch-SHA-ms	  204800 B/op	    2048 allocs/op
BenchmarkEngineFigure5b/4workers-8    	       1	1934567890 ns/op	       3 gomaxprocs	98765432 B/op	  765432 allocs/op
PASS
ok  	snic	12.345s
`

func parseSample(t *testing.T) *Summary {
	t.Helper()
	s, err := ParseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseBench(t *testing.T) {
	s := parseSample(t)
	if s.GOOS != "linux" || s.GOARCH != "amd64" || s.Pkg != "snic" || s.CPU != "Fake CPU @ 2.0GHz" {
		t.Errorf("header mis-parsed: %+v", s)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(s.Benchmarks))
	}
	b := s.Benchmarks[0]
	if b.Name != "Figure5aCacheSweep" || b.Procs != 8 || b.Runs != 2 {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.NsPerOp != 512345678 || b.BPerOp != 41234567 || b.AllocsPerOp != 123456 {
		t.Errorf("std units mis-parsed: %+v", b)
	}
	if b.Metrics["pct-degr-2NF-4MB"] != 12.34 {
		t.Errorf("custom metric mis-parsed: %v", b.Metrics)
	}
	if sub := s.Benchmarks[2]; sub.Name != "EngineFigure5b/4workers" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
}

func TestParseBenchRepeatKeepsLast(t *testing.T) {
	two := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 20 90 ns/op\n"
	s, err := ParseBench(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].NsPerOp != 90 {
		t.Fatalf("repeat handling: %+v", s.Benchmarks)
	}
}

func TestParseBenchEmptyIsError(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("PASS\nok snic 1s\n")); err == nil {
		t.Fatal("no benchmarks accepted")
	}
}

func TestFileRoundtrip(t *testing.T) {
	s := parseSample(t)
	f := &File{PR: 5, Sections: map[string]*Summary{"baseline": s, "post": s}}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.PR != 5 || len(got.Sections) != 2 {
		t.Fatalf("roundtrip lost data: %+v", got)
	}
	if got.Sections["post"].Benchmarks[0].Metrics["pct-degr-2NF-4MB"] != 12.34 {
		t.Error("metrics lost in roundtrip")
	}
	// Marshal is deterministic: same content, same bytes.
	data2, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("marshal not deterministic")
	}
}

func TestSectionSelection(t *testing.T) {
	s := parseSample(t)
	f := &File{Sections: map[string]*Summary{"post": s, "baseline": s}}
	if _, err := f.Section(""); err != nil {
		t.Errorf("default to post: %v", err)
	}
	if _, err := f.Section("baseline"); err != nil {
		t.Errorf("named section: %v", err)
	}
	if _, err := f.Section("nope"); err == nil {
		t.Error("unknown section accepted")
	}
	only := &File{Sections: map[string]*Summary{"smoke": s}}
	if _, err := only.Section(""); err != nil {
		t.Errorf("single section should be unambiguous: %v", err)
	}
	two := &File{Sections: map[string]*Summary{"a": s, "b": s}}
	if _, err := two.Section(""); err == nil {
		t.Error("ambiguous sections accepted")
	}
}

func mkSummary(pairs ...interface{}) *Summary {
	s := &Summary{}
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Benchmarks = append(s.Benchmarks, Benchmark{
			Name: pairs[i].(string), Runs: 1, NsPerOp: pairs[i+1].(float64), AllocsPerOp: 7,
		})
	}
	return s
}

func TestDiffAndRegressions(t *testing.T) {
	old := mkSummary("A", 100.0, "B", 100.0, "Gone", 50.0)
	cur := mkSummary("A", 50.0, "B", 130.0, "New", 10.0)
	deltas := Diff(old, cur)
	if len(deltas) != 4 {
		t.Fatalf("%d deltas, want 4 (union)", len(deltas))
	}
	// Sorted by name: A, B, Gone, New.
	if deltas[0].Name != "A" || deltas[0].Ratio() != 0.5 {
		t.Errorf("A delta: %+v ratio %v", deltas[0], deltas[0].Ratio())
	}
	if deltas[2].New != nil || deltas[3].Old != nil {
		t.Errorf("one-sided deltas mis-joined: %+v %+v", deltas[2], deltas[3])
	}
	if n := Regressions(deltas, 10); n != 1 {
		t.Errorf("Regressions(10%%) = %d, want 1 (only B)", n)
	}
	if n := Regressions(deltas, 50); n != 0 {
		t.Errorf("Regressions(50%%) = %d, want 0", n)
	}

	text := RenderDiff(deltas, 10)
	for _, want := range []string{"A", "-50.0%", "+30.0% !", "new", "gone"} {
		if !strings.Contains(text, want) {
			t.Errorf("RenderDiff missing %q in:\n%s", want, text)
		}
	}
	// Self-diff: no regressions, all zero deltas.
	self := Diff(cur, cur)
	if n := Regressions(self, 0); n != 0 {
		t.Errorf("self-diff regressions = %d", n)
	}
}

func TestRenderDiffJSON(t *testing.T) {
	old := mkSummary("A", 100.0, "B", 100.0, "Gone", 50.0)
	cur := mkSummary("A", 50.0, "B", 130.0, "New", 10.0)
	deltas := Diff(old, cur)
	out, err := RenderDiffJSON(deltas, 10)
	if err != nil {
		t.Fatal(err)
	}
	var doc DiffJSON
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if doc.ThresholdPct != 10 || doc.Regressions != 1 || len(doc.Benchmarks) != 4 {
		t.Fatalf("verdict header: %+v", doc)
	}
	byName := map[string]DeltaJSON{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}
	if a := byName["A"]; a.Status != "ok" || a.Ratio != 0.5 || a.DeltaPct != -50 {
		t.Errorf("A row: %+v", a)
	}
	if b := byName["B"]; b.Status != "regressed" {
		t.Errorf("B row: %+v", b)
	}
	if g := byName["Gone"]; g.Status != "gone" || g.NewNsPerOp != 0 || g.OldNsPerOp != 50 {
		t.Errorf("Gone row: %+v", g)
	}
	if n := byName["New"]; n.Status != "new" || n.NewNsPerOp != 10 {
		t.Errorf("New row: %+v", n)
	}
	// Deterministic for the same input.
	again, err := RenderDiffJSON(deltas, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Error("RenderDiffJSON not deterministic")
	}
}
