package perf

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
)

// RenderDiff formats a delta list as an aligned table: ns/op, the
// old/new ratio (delta percent), and allocs/op movement. Benchmarks on
// one side only are marked new/gone. Rows whose ns/op regressed beyond
// thresholdPct are flagged with a trailing '!'.
func RenderDiff(deltas []Delta, thresholdPct float64) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\t")
	for _, d := range deltas {
		switch {
		case d.Old == nil:
			fmt.Fprintf(w, "%s\t-\t%s\tnew\t-\t%s\t\n", d.Name, ns(d.New.NsPerOp), allocs(d.New))
		case d.New == nil:
			fmt.Fprintf(w, "%s\t%s\t-\tgone\t%s\t-\t\n", d.Name, ns(d.Old.NsPerOp), allocs(d.Old))
		default:
			flag := ""
			if r := d.Ratio(); r > 0 && r > 1+thresholdPct/100 {
				flag = " !"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%+.1f%%%s\t%s\t%s\t\n",
				d.Name, ns(d.Old.NsPerOp), ns(d.New.NsPerOp),
				(d.Ratio()-1)*100, flag, allocs(d.Old), allocs(d.New))
		}
	}
	w.Flush()
	return b.String()
}

// DeltaJSON is one benchmark's movement in the -format json diff.
// Status is "ok", "regressed" (ns/op grew past the threshold), "new"
// (present only on the new side), or "gone".
type DeltaJSON struct {
	Name        string  `json:"name"`
	Status      string  `json:"status"`
	OldNsPerOp  float64 `json:"old_ns_per_op,omitempty"`
	NewNsPerOp  float64 `json:"new_ns_per_op,omitempty"`
	Ratio       float64 `json:"ratio,omitempty"`     // new/old; <1 = faster
	DeltaPct    float64 `json:"delta_pct,omitempty"` // (ratio-1)*100
	OldAllocsOp float64 `json:"old_allocs_per_op,omitempty"`
	NewAllocsOp float64 `json:"new_allocs_per_op,omitempty"`
}

// DiffJSON is the machine-readable diff document: everything the table
// shows plus the regression verdict, so CI tooling can consume the gate
// without scraping tabwriter output.
type DiffJSON struct {
	ThresholdPct float64     `json:"threshold_pct"`
	Regressions  int         `json:"regressions"`
	Benchmarks   []DeltaJSON `json:"benchmarks"`
}

// RenderDiffJSON formats a delta list as indented JSON, mirroring
// RenderDiff's rows and the Regressions verdict.
func RenderDiffJSON(deltas []Delta, thresholdPct float64) (string, error) {
	doc := DiffJSON{
		ThresholdPct: thresholdPct,
		Regressions:  Regressions(deltas, thresholdPct),
		Benchmarks:   make([]DeltaJSON, 0, len(deltas)),
	}
	for _, d := range deltas {
		row := DeltaJSON{Name: d.Name, Status: "ok"}
		switch {
		case d.Old == nil:
			row.Status = "new"
			row.NewNsPerOp = d.New.NsPerOp
			row.NewAllocsOp = d.New.AllocsPerOp
		case d.New == nil:
			row.Status = "gone"
			row.OldNsPerOp = d.Old.NsPerOp
			row.OldAllocsOp = d.Old.AllocsPerOp
		default:
			row.OldNsPerOp = d.Old.NsPerOp
			row.NewNsPerOp = d.New.NsPerOp
			row.OldAllocsOp = d.Old.AllocsPerOp
			row.NewAllocsOp = d.New.AllocsPerOp
			if r := d.Ratio(); r > 0 {
				row.Ratio = r
				row.DeltaPct = (r - 1) * 100
				if r > 1+thresholdPct/100 {
					row.Status = "regressed"
				}
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, row)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// ns prints a ns/op value the way `go test -bench` does: integers for
// whole values, two decimals otherwise.
func ns(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func allocs(b *Benchmark) string {
	return fmt.Sprintf("%d", int64(b.AllocsPerOp))
}
