package perf

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// RenderDiff formats a delta list as an aligned table: ns/op, the
// old/new ratio (delta percent), and allocs/op movement. Benchmarks on
// one side only are marked new/gone. Rows whose ns/op regressed beyond
// thresholdPct are flagged with a trailing '!'.
func RenderDiff(deltas []Delta, thresholdPct float64) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\t")
	for _, d := range deltas {
		switch {
		case d.Old == nil:
			fmt.Fprintf(w, "%s\t-\t%s\tnew\t-\t%s\t\n", d.Name, ns(d.New.NsPerOp), allocs(d.New))
		case d.New == nil:
			fmt.Fprintf(w, "%s\t%s\t-\tgone\t%s\t-\t\n", d.Name, ns(d.Old.NsPerOp), allocs(d.Old))
		default:
			flag := ""
			if r := d.Ratio(); r > 0 && r > 1+thresholdPct/100 {
				flag = " !"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%+.1f%%%s\t%s\t%s\t\n",
				d.Name, ns(d.Old.NsPerOp), ns(d.New.NsPerOp),
				(d.Ratio()-1)*100, flag, allocs(d.Old), allocs(d.New))
		}
	}
	w.Flush()
	return b.String()
}

// ns prints a ns/op value the way `go test -bench` does: integers for
// whole values, two decimals otherwise.
func ns(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func allocs(b *Benchmark) string {
	return fmt.Sprintf("%d", int64(b.AllocsPerOp))
}
