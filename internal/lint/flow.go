package lint

// flow.go is the reachability/dataflow layer over the call graph:
// forward reachability ("which functions can a simulation-path entry
// point ever run?") and shortest explanatory paths ("how does this
// sink get reached?"). Both traversals are plain BFS in deterministic
// edge order, so the call path printed in a diagnostic is stable — the
// goldens pin it.

// Reachable returns the set of nodes reachable from roots by following
// call edges forward (the roots themselves included).
func (g *Graph) Reachable(roots []*Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var queue []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// PathFromRoot walks the reverse edges from target and returns the
// shortest chain root → … → target where root is the nearest node
// satisfying isRoot. When target itself is a root the path is just
// [target]; when nothing upstream qualifies it returns [target] too,
// so callers always get a non-empty chain ending at the sink's
// enclosing function. Ties at equal depth resolve in the graph's
// deterministic reverse-edge order.
func (g *Graph) PathFromRoot(target *Node, isRoot func(*Node) bool) []*Node {
	if target == nil {
		return nil
	}
	if isRoot(target) {
		return []*Node{target}
	}
	next := map[*Node]*Node{target: nil} // node -> successor toward target
	queue := []*Node{target}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.In {
			from := e.From
			if _, ok := next[from]; ok {
				continue
			}
			next[from] = n
			if isRoot(from) {
				path := []*Node{}
				for cur := from; cur != nil; cur = next[cur] {
					path = append(path, cur)
				}
				return path
			}
			queue = append(queue, from)
		}
	}
	return []*Node{target}
}

// CallPath renders a node chain plus a final callee as the display
// strings a Diagnostic carries: ["fleet.Manager.Advance", "engine.Run",
// "time.Now"].
func CallPath(chain []*Node, sink *Node) []string {
	out := make([]string, 0, len(chain)+1)
	for _, n := range chain {
		out = append(out, n.Name)
	}
	if sink != nil {
		out = append(out, sink.Name)
	}
	return out
}
