package lint

import (
	"os"
	"testing"
)

// TestModuleIsClean runs the full check registry against the real
// module and asserts zero unwaived diagnostics. This is the invariant
// gate itself, exercised by `go test ./...`, so the build stays honest
// even where CI configuration drifts: a refactor that reintroduces
// wall-clock reads, map-ordered output, factory bypasses, literal
// seeds, or an external import fails the ordinary test run.
func TestModuleIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader("snic", root)
	pkgs, err := loader.LoadPatterns(nil) // ./...
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages; discovery is broken", len(pkgs))
	}
	diags := Run(loader.Fset, pkgs, Registry())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d unwaived finding(s); fix them or add //lint:allow <check> <reason> at the site", len(diags))
	}
}
