package lint

import (
	"os"
	"testing"
)

// TestModuleIsClean runs the full check registry against the real
// module and asserts zero unwaived diagnostics. This is the invariant
// gate itself, exercised by `go test ./...`, so the build stays honest
// even where CI configuration drifts: a refactor that reintroduces
// wall-clock reads, map-ordered output, factory bypasses, literal
// seeds, or an external import fails the ordinary test run.
func TestModuleIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader("snic", root)
	pkgs, err := loader.LoadPatterns(nil) // ./...
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages; discovery is broken", len(pkgs))
	}
	diags := Run(loader.Fset, pkgs, Registry())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d unwaived finding(s); fix them or add //lint:allow <check> <reason> at the site", len(diags))
	}

	// The waiver budget: suppressions in production code are debt, and
	// the interprocedural checks exist to shrink it, not grow it. Every
	// waiver that survives here is also known-used (the stale-waiver
	// detector above would have flagged it otherwise).
	known := make(map[string]bool)
	for _, c := range Registry() {
		known[c.Name()] = true
	}
	production := 0
	for _, p := range pkgs {
		ws, _ := parseWaivers(loader.Fset, p, known)
		for _, w := range ws {
			if !w.test {
				production++
				t.Logf("production waiver: %s [%s]", w.pos, w.check)
			}
		}
	}
	const waiverBudget = 9
	if production >= waiverBudget {
		t.Errorf("%d production waivers, budget is < %d: fix violations instead of waiving them", production, waiverBudget)
	}
}
