package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// obsPath is the import path of the observability package the check
// polices.
const obsPath = "snic/internal/obs"

// obsReaderFuncs are the package-level obs functions that read collected
// data back out. Conversion helpers (MSToCycles) and constructors
// (NewRegistry, NewWall) are not readers: they carry no collected state.
var obsReaderFuncs = map[string]bool{
	"ParseDump": true,
	"Diff":      true,
}

// obsReaderMethods are the methods on obs types that read collected data
// back out. Writers (Add, Inc, Set, Observe, Span, Event, Tick) and the
// quarantined wall-clock pair (Wall.Start, Wall.Since) are deliberately
// absent: simulation-path code may feed the collector and may time its
// own -v progress output, but must never branch on what was collected.
var obsReaderMethods = map[string]bool{
	"Value":       true, // Counter, Gauge
	"Count":       true, // Histogram
	"Sum":         true, // Histogram
	"Buckets":     true, // Histogram
	"Records":     true, // Tracer
	"DumpMetrics": true, // Registry
	"ChromeTrace": true, // Registry
	"TraceText":   true, // Registry
}

// ObsDiscipline enforces the observability layer's write-only contract:
// simulation-path packages may create obs handles and write to them, but
// only exporters outside the simulated path (cmd/snicbench, cmd/snicstat,
// tests) may read collected values back. A simulation that branches on
// its own metrics stops being a pure function of its seed — the metric
// becomes an input — so every reader call inside snic/internal/ is a
// finding. The obs package itself is held to a stricter bar: it must
// pass every check with zero //lint:allow waivers, so any waiver comment
// in its non-test files is also a finding.
type ObsDiscipline struct{}

func (ObsDiscipline) Name() string { return "obs-discipline" }

func (ObsDiscipline) Doc() string {
	return "forbid reading obs metrics/traces from simulation-path packages; keep internal/obs waiver-free"
}

func (c ObsDiscipline) Run(p *Pass) []Diagnostic {
	if !simulationPath(p.Pkg.Path) {
		return nil
	}
	if p.Pkg.Path == obsPath {
		return c.checkObsItself(p)
	}
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue // tests read collectors to assert on them; that is their job
		}
		obsName := importLocalName(f.AST, obsPath)
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Package-level reader: obs.ParseDump, obs.Diff.
			if id, ok := sel.X.(*ast.Ident); ok && obsReaderFuncs[sel.Sel.Name] {
				if p.pkgRef(id, obsPath, obsName) {
					diags = append(diags, p.diag(c.Name(), sel,
						"obs.%s reads collected metrics in the simulation path: obs is write-only here; read dumps from cmd/ or tests",
						sel.Sel.Name))
					return true
				}
			}
			// Method reader on an obs type: counter.Value(), reg.DumpMetrics(), ...
			if p.Pkg.TypesInfo == nil || !obsReaderMethods[sel.Sel.Name] {
				return true
			}
			if s, ok := p.Pkg.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if fn := s.Obj(); fn.Pkg() != nil && fn.Pkg().Path() == obsPath {
					diags = append(diags, p.diag(c.Name(), sel,
						"obs reader %s.%s in the simulation path: simulation writes metrics, never reads them back",
						recvTypeName(fn), sel.Sel.Name))
				}
			}
			return true
		})
	}
	return diags
}

// checkObsItself flags every //lint:allow comment in obs's non-test
// files: the collector everything trusts must pass the full registry on
// its own merits. (The module's single sanctioned wall-clock waiver
// lives in internal/engine, on the variable that injects obs.Wall.)
func (c ObsDiscipline) checkObsItself(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		for _, cg := range f.AST.Comments {
			for _, cm := range cg.List {
				if strings.HasPrefix(cm.Text, "//lint:allow") {
					diags = append(diags, p.diag(c.Name(), cm,
						"waiver inside internal/obs: the observability package must pass every check with zero waivers"))
				}
			}
		}
	}
	return diags
}

// recvTypeName renders the receiver type of a method for messages, e.g.
// "Counter" for func (c *Counter) Value().
func recvTypeName(fn types.Object) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "obs"
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "obs"
}
