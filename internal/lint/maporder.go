package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags range loops over maps whose bodies build ordered
// output — appending map values to a slice, writing to an io.Writer or
// strings.Builder, or printing. Go randomizes map iteration order, so
// any such loop makes output depend on the iteration seed and breaks
// byte-identical golden files.
//
// The one sanctioned map-range idiom stays legal: collecting only the
// keys into a slice (to sort before a second, ordered pass) is not
// flagged, because the append involves neither the map's values nor an
// index into the map.
type MapOrder struct{}

func (MapOrder) Name() string { return "map-order" }

func (MapOrder) Doc() string {
	return "forbid building ordered output while ranging over a map"
}

func (c MapOrder) Run(p *Pass) []Diagnostic {
	if p.Pkg.TypesInfo == nil {
		return nil
	}
	info := p.Pkg.TypesInfo
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderedOutput(info, rng); reason != "" {
				diags = append(diags, p.diag(c.Name(), rng,
					"map iteration %s: map order is randomized; iterate over sorted keys instead", reason))
			}
			return true
		})
	}
	return diags
}

// orderedOutput reports how (if at all) the loop body turns map
// iteration order into observable output order.
func orderedOutput(info *types.Info, rng *ast.RangeStmt) string {
	valueObj := rangeVarObj(info, rng.Value)
	keyObj := rangeVarObj(info, rng.Key)
	reason := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && isBuiltin(info, fun) && orderDependentAppend(info, call, keyObj, valueObj) {
				reason = "appends order-dependent elements"
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			switch {
			case strings.HasPrefix(name, "Write"):
				// io.Writer, strings.Builder, bytes.Buffer, bufio.Writer.
				reason = "writes to a writer"
			case strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint"):
				reason = "prints"
			}
		}
		return true
	})
	return reason
}

// rangeVarObj resolves a range variable expression to its object, so
// references to it inside the body can be recognized.
func rangeVarObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id] // "for k, v = range m" assigns to existing vars
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	if obj, ok := info.Uses[id]; ok {
		_, builtin := obj.(*types.Builtin)
		return builtin
	}
	return true // unresolved (fixture with type errors): assume builtin
}

// orderDependentAppend reports whether any appended element depends on
// the map's values — it mentions the range value variable, indexes a
// map, or is a composite that embeds the key alongside other data. A
// bare key-collection append (keys = append(keys, k)) is order-safe
// because the caller sorts before use.
func orderDependentAppend(info *types.Info, call *ast.CallExpr, keyObj, valueObj types.Object) bool {
	for _, arg := range call.Args[1:] {
		if id, ok := arg.(*ast.Ident); ok && keyObj != nil && info.Uses[id] == keyObj {
			continue // appending the key alone: the sanctioned sort-later idiom
		}
		dependent := false
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if valueObj != nil && info.Uses[n] == valueObj {
					dependent = true
				}
			case *ast.IndexExpr:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						dependent = true
					}
				}
			case *ast.CompositeLit:
				dependent = true // a row built during map iteration is ordered output
			}
			return !dependent
		})
		if dependent {
			return true
		}
	}
	return false
}
