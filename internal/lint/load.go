package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file of a package. Test files participate in
// the syntactic checks (imports, waivers) but are excluded from the
// type-checked unit, so external test packages and test-only imports
// never create artificial import cycles.
type File struct {
	Name string // absolute path on disk
	AST  *ast.File
	Test bool // *_test.go
}

// Package is one loaded, parsed, and (for its non-test files)
// type-checked package.
type Package struct {
	Path       string // import path, e.g. "snic/internal/sim"
	Dir        string
	Files      []*File
	Types      *types.Package // nil when the package has only test files
	TypesInfo  *types.Info    // nil when Types is nil
	TypeErrors []error        // type-check problems (tolerated: build gates them)
}

// TestOnly reports whether the package consists solely of _test.go files
// (e.g. a repository-root benchmark package).
func (p *Package) TestOnly() bool {
	for _, f := range p.Files {
		if !f.Test {
			return false
		}
	}
	return true
}

// Loader discovers, parses, and type-checks packages. Imports beginning
// with Module resolve against Roots in order (the lint tests put a
// fixture tree first and the real module second); everything else is
// delegated to the compiler's stdlib importer. The loader is the whole
// reason this framework needs no golang.org/x/tools: the module layout
// is plain enough — module path + relative directory — that go/parser
// and go/types cover it.
type Loader struct {
	Fset   *token.FileSet
	Module string   // module path, e.g. "snic"
	Roots  []string // directories searched in order for module-relative paths

	stdlib  types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // cycle guard
}

// NewLoader returns a loader for the module rooted at the given
// directories (searched in order).
func NewLoader(module string, roots ...string) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		Module:  module,
		Roots:   roots,
		stdlib:  importer.Default(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// FindModuleRoot walks upward from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Discover walks root and returns the import paths of every package
// beneath it, in sorted order. Directories named testdata, hidden
// directories, and _-prefixed directories are skipped, matching the go
// tool's convention.
func (l *Loader) Discover(root string) ([]string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	base, err := l.rootFor(root)
	if err != nil {
		return nil, err
	}
	var paths []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(base, filepath.Dir(path))
		if err != nil {
			return err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	uniq := paths[:0]
	for i, p := range paths {
		if i == 0 || p != paths[i-1] {
			uniq = append(uniq, p)
		}
	}
	return uniq, nil
}

// rootFor returns the configured root that contains dir, so Discover can
// compute import paths relative to the right tree.
func (l *Loader) rootFor(dir string) (string, error) {
	for _, r := range l.Roots {
		abs, err := filepath.Abs(r)
		if err != nil {
			return "", err
		}
		if dir == abs || strings.HasPrefix(dir+string(filepath.Separator), abs+string(filepath.Separator)) {
			return abs, nil
		}
	}
	return "", fmt.Errorf("lint: %s is outside the loader roots", dir)
}

// Load parses and type-checks the package with the given import path.
// Results are memoized, so loading many packages shares their common
// dependencies.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		astf, err := parser.ParseFile(l.Fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, &File{
			Name: fname,
			AST:  astf,
			Test: strings.HasSuffix(e.Name(), "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	l.typeCheck(pkg)
	l.pkgs[path] = pkg
	return pkg, nil
}

// dirFor maps a module-relative import path to the first root that
// provides it.
func (l *Loader) dirFor(path string) (string, error) {
	rel := ""
	switch {
	case path == l.Module:
	case strings.HasPrefix(path, l.Module+"/"):
		rel = strings.TrimPrefix(path, l.Module+"/")
	default:
		return "", fmt.Errorf("lint: %s is not in module %s", path, l.Module)
	}
	for _, root := range l.Roots {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		if entries, err := os.ReadDir(dir); err == nil {
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					return dir, nil
				}
			}
		}
	}
	return "", fmt.Errorf("lint: no package %s under any root", path)
}

// typeCheck runs go/types over the package's non-test files. Errors are
// accumulated, not fatal: fixtures deliberately import unresolvable
// paths, and the real build (go build ./...) is the gate for type
// correctness. Checks that need types degrade to syntax when Info is
// absent.
func (l *Loader) typeCheck(pkg *Package) {
	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		return
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) { return l.doImport(path) }),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := cfg.Check(pkg.Path, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
}

// doImport resolves an import for the type checker: module-internal
// paths recurse through Load, "unsafe" maps to types.Unsafe (so the
// stdlib-only check, not a resolution failure, reports it), and
// everything else goes to the stdlib importer.
func (l *Loader) doImport(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s has no non-test files", path)
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadPatterns expands go-style package patterns ("./...", "./internal/...",
// "./cmd/sniclint") relative to the first root and loads every match.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var paths []string
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./..." || pat == "...":
			ps, err := l.Discover(l.Roots[0])
			if err != nil {
				return nil, err
			}
			paths = append(paths, ps...)
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(l.Roots[0], filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			ps, err := l.Discover(dir)
			if err != nil {
				return nil, err
			}
			paths = append(paths, ps...)
		default:
			rel := filepath.ToSlash(filepath.Clean(pat))
			rel = strings.TrimPrefix(rel, "./")
			ip := l.Module
			if rel != "." {
				ip = l.Module + "/" + rel
			}
			paths = append(paths, ip)
		}
	}
	sort.Strings(paths)
	var pkgs []*Package
	seen := make(map[string]bool)
	for _, p := range paths {
		if seen[p] {
			continue
		}
		seen[p] = true
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
