package lint

import (
	"strings"
)

// StdlibOnly enforces the repo's dependency rule: the module imports
// nothing but the Go standard library and itself, and never unsafe or
// cgo. The rule is what keeps the artifact reproducible from a bare
// toolchain — no module proxy, no vendoring, no native code — and it is
// why this lint framework itself is built on go/parser and go/types
// rather than golang.org/x/tools.
type StdlibOnly struct{}

func (StdlibOnly) Name() string { return "stdlib-only" }

func (StdlibOnly) Doc() string {
	return "reject imports outside the standard library and the snic module; forbid unsafe and cgo"
}

func (c StdlibOnly) Run(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		// Test files are held to the same rule: a test-only external
		// dependency still breaks the bare-toolchain build.
		for _, imp := range f.AST.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch {
			case path == "unsafe":
				diags = append(diags, p.diag(c.Name(), imp,
					"import of unsafe is forbidden everywhere in this module"))
			case path == "C":
				diags = append(diags, p.diag(c.Name(), imp,
					"cgo is forbidden: the simulator must build from a bare Go toolchain"))
			case path == "snic" || strings.HasPrefix(path, "snic/"):
				// module-internal
			case !stdlibPath(path):
				diags = append(diags, p.diag(c.Name(), imp,
					"import %q is outside the standard library: this module is stdlib-only", path))
			}
		}
	}
	return diags
}

// stdlibPath reports whether path names a standard-library package: its
// first element carries no dot, the property that distinguishes GOROOT
// packages from any fetchable module path (which must start with a
// dotted domain).
func stdlibPath(path string) bool {
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}
