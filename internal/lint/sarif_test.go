package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRenderSARIF asserts the SARIF log is well-formed JSON with the
// shape scanners require: 2.1.0 version, every result's ruleId resolved
// by ruleIndex into the declared rules, slash-separated relative URIs,
// and the call path carried in the message text.
func TestRenderSARIF(t *testing.T) {
	loader, pkgs := loadFixtures(t)
	diags := Run(loader.Fset, pkgs, Registry())
	if len(diags) == 0 {
		t.Fatal("fixture tree produced no findings")
	}
	out, err := RenderSARIF(diags, "")
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sniclint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != len(diags) {
		t.Errorf("results = %d, want one per diagnostic (%d)", len(run.Results), len(diags))
	}
	pathSeen := false
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("ruleIndex %d out of range", r.RuleIndex)
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, result says %q", r.RuleIndex, got, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("URI %q must be slash-separated", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("startLine %d < 1 in %s", loc.Region.StartLine, loc.ArtifactLocation.URI)
		}
		if strings.Contains(r.Message.Text, "(path: ") {
			pathSeen = true
		}
	}
	if !pathSeen {
		t.Error("no result message carries a call path; interprocedural findings must keep their chains")
	}
}
