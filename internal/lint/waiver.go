package lint

import (
	"go/token"
	"strings"
)

// waiverPrefix is the comment directive that suppresses a finding:
//
//	//lint:allow <check-id> <reason>
//
// Directive comments carry no space after "//", matching the Go
// convention for machine-readable comments (//go:build, //go:generate).
const waiverPrefix = "//lint:allow"

// waiver is one parsed //lint:allow directive. It covers its own line
// and the line immediately below, for exactly the check it names.
type waiver struct {
	file  string
	line  int
	check string
}

// parseWaivers extracts every //lint:allow directive from the package's
// comments. Malformed directives — no check name, a check name outside
// the known set, or a missing reason — are returned as diagnostics with
// the "waiver" check ID, so a typo cannot silently disable enforcement.
func parseWaivers(fset *token.FileSet, pkg *Package, known map[string]bool) ([]waiver, []Diagnostic) {
	var ws []waiver
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not our directive
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{
						Check: "waiver", Pos: pos,
						Message: "malformed waiver: want //lint:allow <check-id> <reason>",
					})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{
						Check: "waiver", Pos: pos,
						Message: "waiver names unknown check " + quote(fields[0]),
					})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{
						Check: "waiver", Pos: pos,
						Message: "waiver for " + quote(fields[0]) + " has no reason; every waiver must say why",
					})
				default:
					ws = append(ws, waiver{file: pos.Filename, line: pos.Line, check: fields[0]})
				}
			}
		}
	}
	return ws, bad
}

func quote(s string) string { return `"` + s + `"` }

// suppressed reports whether d is covered by a waiver: same file, same
// check, on d's line or the line directly above.
func suppressed(d Diagnostic, ws []waiver) bool {
	if d.Check == "waiver" {
		return false
	}
	for _, w := range ws {
		if w.check == d.Check && w.file == d.Pos.Filename &&
			(w.line == d.Pos.Line || w.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}
