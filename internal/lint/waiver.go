package lint

import (
	"go/token"
	"strings"
)

// waiverPrefix is the comment directive that suppresses a finding:
//
//	//lint:allow <check-id> <reason>
//
// Directive comments carry no space after "//", matching the Go
// convention for machine-readable comments (//go:build, //go:generate).
const waiverPrefix = "//lint:allow"

// waiver is one parsed //lint:allow directive. It covers its own line
// and the line immediately below, for exactly the check it names. The
// framework marks it used when it suppresses a finding; a production
// waiver that suppresses nothing is reported as stale.
type waiver struct {
	pos   token.Position
	check string
	test  bool // found in a _test.go file
	used  bool
}

// parseWaivers extracts every //lint:allow directive from the package's
// comments. Malformed directives — no check name, a check name outside
// the known set, or a missing reason — are returned as diagnostics with
// the "waiver" check ID, so a typo cannot silently disable enforcement.
//
// The observability package is held to a stricter bar: the collector
// everything trusts must pass the full registry on its own merits, so
// any waiver in internal/obs's non-test files is itself a finding (the
// module's single sanctioned wall-clock waiver lives in internal/engine,
// on the variable that injects obs.Wall).
func parseWaivers(fset *token.FileSet, pkg *Package, known map[string]bool) ([]*waiver, []Diagnostic) {
	var ws []*waiver
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not our directive
				}
				if pkg.Path == obsPath && !f.Test {
					bad = append(bad, Diagnostic{
						Check: "waiver", Pos: pos,
						Message: "waiver inside internal/obs: the observability package must pass every check with zero waivers",
					})
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{
						Check: "waiver", Pos: pos,
						Message: "malformed waiver: want //lint:allow <check-id> <reason>",
					})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{
						Check: "waiver", Pos: pos,
						Message: "waiver names unknown check " + quote(fields[0]),
					})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{
						Check: "waiver", Pos: pos,
						Message: "waiver for " + quote(fields[0]) + " has no reason; every waiver must say why",
					})
				default:
					ws = append(ws, &waiver{pos: pos, check: fields[0], test: f.Test})
				}
			}
		}
	}
	return ws, bad
}

func quote(s string) string { return `"` + s + `"` }

// coveringWaiver returns the waiver that suppresses d — same file, same
// check, on d's line or the line directly above — or nil.
func coveringWaiver(d Diagnostic, ws []*waiver) *waiver {
	if d.Check == "waiver" {
		return nil
	}
	for _, w := range ws {
		if w.check == d.Check && w.pos.Filename == d.Pos.Filename &&
			(w.pos.Line == d.Pos.Line || w.pos.Line == d.Pos.Line-1) {
			return w
		}
	}
	return nil
}
