package lint

import (
	"go/ast"
	"strings"
)

// simulationPath reports whether an import path is part of the simulated
// path, where wall-clock time and ambient randomness are forbidden:
// everything under internal/ (the simulation kernel, device models, NFs,
// experiments, and the engine that schedules them), plus cmd/snicd — the
// fleet daemon promises byte-identical replays of any request history,
// so it is held to the same bar as the packages it wraps. Other commands
// and examples sit outside — they may time their own progress output —
// though the two wall-clock sites the engine needs for -v metrics still
// require explicit waivers because the engine itself is simulation-path.
func simulationPath(path string) bool {
	return strings.HasPrefix(path, "snic/internal/") || path == "snic/cmd/snicd"
}

// forbiddenTimeFuncs are the package-time functions that read or depend
// on the wall clock. time.Duration arithmetic and the unit constants
// remain fine: they are plain numbers.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Determinism enforces DESIGN.md's "no time.Now in the simulated path"
// promise: simulation-path packages must not consult the wall clock or
// math/rand. Simulated time is cycles and bytes over calibrated rates,
// and all randomness flows through sim.Rand so every experiment is a
// pure function of its seed.
type Determinism struct{}

func (Determinism) Name() string { return "determinism" }

func (Determinism) Doc() string {
	return "forbid time.Now/time.Since and math/rand in simulation-path packages"
}

func (c Determinism) Run(p *Pass) []Diagnostic {
	if !simulationPath(p.Pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue // tests may time themselves; goldens catch nondeterminism
		}
		for _, imp := range f.AST.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				diags = append(diags, p.diag(c.Name(), imp,
					"import of %s in simulation path: use snic/internal/sim (DeriveSeed/DeriveRand)",
					strings.Trim(imp.Path.Value, `"`)))
			}
		}
		timeName := importLocalName(f.AST, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !forbiddenTimeFuncs[sel.Sel.Name] {
				return true
			}
			if p.pkgRef(id, "time", timeName) {
				diags = append(diags, p.diag(c.Name(), sel,
					"wall-clock call time.%s in simulation path: simulated time is cycles, not the clock",
					sel.Sel.Name))
			}
			return true
		})
	}
	return diags
}
