package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadImportCycle pins the loader's cycle behavior: an import cycle
// inside the module must not hang or crash the loader. The cycle guard
// turns the re-entrant Load into an importer error, the type checker
// records it as an ordinary type error, and both packages still come
// back parsed — the build, not the linter, is the gate that rejects
// cyclic programs.
func TestLoadImportCycle(t *testing.T) {
	loader := NewLoader("cyclemod", filepath.Join("testdata", "loader"))
	a, err := loader.Load("cyclemod/a")
	if err != nil {
		t.Fatalf("Load(cyclemod/a) = %v; cycles must degrade to type errors, not load failures", err)
	}
	b, err := loader.Load("cyclemod/b")
	if err != nil {
		t.Fatalf("Load(cyclemod/b) = %v", err)
	}
	cycleSeen := false
	for _, p := range []*Package{a, b} {
		for _, e := range p.TypeErrors {
			if strings.Contains(e.Error(), "cycle") {
				cycleSeen = true
			}
		}
	}
	if !cycleSeen {
		t.Errorf("no type error mentions the import cycle: a=%v b=%v", a.TypeErrors, b.TypeErrors)
	}
	// The packages must still be usable for syntactic checks.
	if len(a.Files) == 0 || len(b.Files) == 0 {
		t.Errorf("cycle members lost their parsed files: a=%d b=%d", len(a.Files), len(b.Files))
	}
}

// TestLoadParseError asserts a syntactically broken file fails the Load
// of its package with an error naming the file, and leaves every other
// package loadable through the same loader. The fixture is written at
// runtime: a committed .go file with a syntax error would trip the
// repository-wide gofmt gate.
func TestLoadParseError(t *testing.T) {
	root := t.TempDir()
	good := filepath.Join(root, "ok")
	bad := filepath.Join(root, "broken")
	for _, d := range []string{good, bad} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(good, "ok.go"),
		[]byte("package ok\n\nfunc Fine() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "broken.go"),
		[]byte("package broken\n\nfunc Oops( { return\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	loader := NewLoader("tmpmod", root)
	if _, err := loader.Load("tmpmod/broken"); err == nil {
		t.Fatal("Load(tmpmod/broken) succeeded on a syntax error")
	} else if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("parse error does not name the file: %v", err)
	}
	if _, err := loader.Load("tmpmod/ok"); err != nil {
		t.Errorf("healthy sibling package failed to load after the parse error: %v", err)
	}
}

// TestChainedRootShadowing pins the root-chaining contract the fixture
// tests depend on: when two roots provide the same import path, the
// first root wins, and paths absent from the first root fall through to
// the later ones.
func TestChainedRootShadowing(t *testing.T) {
	first := t.TempDir()
	second := t.TempDir()
	write := func(root, dir, src string) {
		t.Helper()
		full := filepath.Join(root, dir)
		if err := os.MkdirAll(full, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(full, "p.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(first, "shadow", "package shadow\n\nconst From = \"first\"\n")
	write(second, "shadow", "package shadow\n\nconst From = \"second\"\n")
	write(second, "extra", "package extra\n\nconst Here = true\n")

	loader := NewLoader("m", first, second)
	sh, err := loader.Load("m/shadow")
	if err != nil {
		t.Fatalf("Load(m/shadow) = %v", err)
	}
	if !strings.HasPrefix(sh.Dir, first) {
		t.Errorf("m/shadow resolved to %s; the first root must shadow later ones", sh.Dir)
	}
	ft, err := loader.Load("m/extra")
	if err != nil {
		t.Fatalf("Load(m/extra) = %v; missing paths must fall through to later roots", err)
	}
	if !strings.HasPrefix(ft.Dir, second) {
		t.Errorf("m/extra resolved to %s, want a directory under the second root", ft.Dir)
	}
	// Outside-the-module and missing paths are loud, not silent.
	if _, err := loader.Load("other/pkg"); err == nil {
		t.Error("Load(other/pkg) succeeded outside the module")
	}
	if _, err := loader.Load("m/nowhere"); err == nil {
		t.Error("Load(m/nowhere) succeeded for a path no root provides")
	}
}
