package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// RenderSARIF formats diagnostics as a SARIF 2.1.0 log — the
// interchange format code-scanning UIs ingest — with one run, one rule
// per registered check, and one result per finding. Interprocedural
// call paths are appended to the message text exactly as RenderText
// prints them, so the chain survives viewers that ignore code flows.
func RenderSARIF(ds []Diagnostic, trimPrefix string) (string, error) {
	type text struct {
		Text string `json:"text"`
	}
	type rule struct {
		ID               string `json:"id"`
		ShortDescription text   `json:"shortDescription"`
	}
	type artifactLocation struct {
		URI string `json:"uri"`
	}
	type region struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
	type physicalLocation struct {
		ArtifactLocation artifactLocation `json:"artifactLocation"`
		Region           region           `json:"region"`
	}
	type location struct {
		PhysicalLocation physicalLocation `json:"physicalLocation"`
	}
	type result struct {
		RuleID    string     `json:"ruleId"`
		RuleIndex int        `json:"ruleIndex"`
		Level     string     `json:"level"`
		Message   text       `json:"message"`
		Locations []location `json:"locations"`
	}
	type driver struct {
		Name  string `json:"name"`
		Rules []rule `json:"rules"`
	}
	type tool struct {
		Driver driver `json:"driver"`
	}
	type run struct {
		Tool    tool     `json:"tool"`
		Results []result `json:"results"`
	}
	type log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []run  `json:"runs"`
	}

	var rules []rule
	index := make(map[string]int)
	addRule := func(id, doc string) {
		index[id] = len(rules)
		rules = append(rules, rule{ID: id, ShortDescription: text{Text: doc}})
	}
	for _, c := range Registry() {
		addRule(c.Name(), c.Doc())
	}
	addRule("waiver", "malformed, stale, or forbidden //lint:allow directives")

	results := make([]result, 0, len(ds))
	for _, d := range ds {
		idx, ok := index[d.Check]
		if !ok {
			addRule(d.Check, "")
			idx = index[d.Check]
		}
		msg := d.Message
		if len(d.Path) > 0 {
			msg += " (path: " + strings.Join(d.Path, " → ") + ")"
		}
		uri := filepath.ToSlash(strings.TrimPrefix(d.Pos.Filename, trimPrefix))
		results = append(results, result{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "error",
			Message:   text{Text: msg},
			Locations: []location{{PhysicalLocation: physicalLocation{
				ArtifactLocation: artifactLocation{URI: uri},
				Region:           region{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}

	out, err := json.MarshalIndent(log{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []run{{
			Tool:    tool{Driver: driver{Name: "sniclint", Rules: rules}},
			Results: results,
		}},
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
