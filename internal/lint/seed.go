package lint

import (
	"go/ast"
	"go/token"
)

// Seed enforces the engine's splittable-seeding discipline: outside
// tests, sim.NewRand must not be fed a bare integer literal. A literal
// seed creates a stream whose identity is a magic number, which
// collides silently and ties results to call order. Streams must be
// derived — sim.DeriveSeed(base, labels...) / sim.DeriveRand — so every
// component's randomness is a pure function of the experiment seed plus
// a stable label, byte-identical at any -workers count.
type Seed struct{}

func (Seed) Name() string { return "seed-discipline" }

func (Seed) Doc() string {
	return "forbid integer-literal seeds to sim.NewRand outside tests (use DeriveSeed/DeriveRand)"
}

func (c Seed) Run(p *Pass) []Diagnostic {
	if p.Pkg.Path == "snic/internal/sim" {
		return nil // DeriveRand itself calls NewRand; internal uses are unqualified anyway
	}
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		simName := importLocalName(f.AST, "snic/internal/sim")
		if simName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NewRand" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !p.pkgRef(id, "snic/internal/sim", simName) {
				return true
			}
			if isIntLiteral(call.Args[0]) {
				diags = append(diags, p.diag(c.Name(), call,
					"literal seed to sim.NewRand: derive streams with sim.DeriveSeed/DeriveRand(base, labels...)"))
			}
			return true
		})
	}
	return diags
}

// isIntLiteral unwraps parens, signs, and single-argument conversions
// (uint64(42)) down to an integer literal.
func isIntLiteral(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.ParenExpr:
		return isIntLiteral(e.X)
	case *ast.UnaryExpr:
		return (e.Op == token.SUB || e.Op == token.ADD || e.Op == token.XOR) && isIntLiteral(e.X)
	case *ast.CallExpr:
		return len(e.Args) == 1 && isIntLiteral(e.Args[0])
	}
	return false
}
