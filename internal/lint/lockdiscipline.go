package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// fleetPath is the package whose lock discipline the check enforces.
const fleetPath = "snic/internal/fleet"

// LockDiscipline enforces the fleet manager's concurrency contract
// around Manager.mu, the one lock in the control plane:
//
//  1. No deadlock: a function that acquires mu must not transitively
//     call another mu-acquiring function — with defer-Unlock bodies and
//     a non-reentrant sync.Mutex that is a guaranteed self-deadlock.
//  2. Exported mutators lock: an exported Manager method that
//     transitively writes guarded state (Manager fields and the fleet
//     structs hanging off them) without acquiring mu hands callers a
//     data race.
//  3. No blocking fan-out under the lock: a mu-holding function must
//     not transitively enter engine.Run* or net/http handler code —
//     the burst fan-out and the northbound API are exactly the places
//     a held manager lock turns into fleet-wide head-of-line blocking,
//     so any such chain must be explicitly waived with its ownership
//     argument.
//
// All three rules are interprocedural: the violating call can hide any
// number of helpers deep, and the diagnostic prints the chain.
type LockDiscipline struct{}

func (LockDiscipline) Name() string { return "lock-discipline" }

func (LockDiscipline) Doc() string {
	return "enforce fleet.Manager.mu discipline: exported mutators lock, no transitive double-lock, no engine/http fan-out under the lock"
}

func (c LockDiscipline) RunProgram(prog *Program) []Diagnostic {
	var fleet *Package
	for _, pkg := range prog.Pkgs {
		if pkg.Path == fleetPath {
			fleet = pkg
		}
	}
	if fleet == nil || fleet.Types == nil {
		return nil // no fleet package in this tree (partial loads)
	}
	manager := managerType(fleet)
	if manager == nil {
		return nil
	}
	g := prog.Graph()

	guarded := guardedTypes(fleet, manager)
	locks := make(map[*Node]bool)
	writes := make(map[*Node]bool)
	for _, n := range g.Nodes {
		if n.Pkg != fleet || n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		if acquiresMu(fleet.TypesInfo, n.Decl.Body, manager) {
			locks[n] = true
		}
		if writesGuarded(fleet.TypesInfo, n.Decl.Body, guarded) {
			writes[n] = true
		}
	}

	var diags []Diagnostic
	diags = append(diags, c.checkUnlockedMutators(g, manager, locks, writes)...)
	seen := make(map[token.Position]bool)
	for _, n := range g.Nodes {
		if !locks[n] {
			continue
		}
		diags = append(diags, c.checkUnderLock(n, locks, seen)...)
	}
	return diags
}

// checkUnlockedMutators is rule 2: every exported Manager method that
// transitively reaches a guarded-state write without passing through a
// mu-acquiring function must itself lock.
func (c LockDiscipline) checkUnlockedMutators(g *Graph, manager *types.Named, locks, writes map[*Node]bool) []Diagnostic {
	var diags []Diagnostic
	for _, n := range g.Nodes {
		if !isManagerMethod(n, manager) || !n.Fn.Exported() || locks[n] {
			continue
		}
		chain := findChain(n, locks, func(m *Node) bool { return writes[m] })
		if chain == nil {
			continue
		}
		diags = append(diags, Diagnostic{
			Check: c.Name(), Pos: n.Pos,
			Message: "exported method fleet.Manager." + n.Fn.Name() +
				" mutates guarded state without acquiring m.mu: exported mutators must lock",
			Path: CallPath(chain, nil),
		})
	}
	return diags
}

// checkUnderLock covers rules 1 and 3 for one mu-acquiring function:
// starting from its callees, any path that reaches another mu-acquiring
// function (deadlock) or a blocking fan-out sink (engine.Run*,
// net/http) without first passing through a different lock acquisition
// is a finding, reported at the final call site so the waiver sits
// where the ownership argument belongs.
func (c LockDiscipline) checkUnderLock(start *Node, locks map[*Node]bool, seen map[token.Position]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(e *CallEdge, chain []*Node, msg string) {
		if seen[e.Pos] {
			return
		}
		seen[e.Pos] = true
		diags = append(diags, Diagnostic{
			Check: c.Name(), Pos: e.Pos, Message: msg, Path: CallPath(chain, e.To),
		})
	}
	visited := map[*Node]bool{start: true}
	parent := map[*Node]*CallEdge{}
	queue := []*Node{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			to := e.To
			if visited[to] {
				continue
			}
			chain := chainTo(start, n, parent)
			switch {
			case locks[to]:
				report(e, chain, "calls mu-acquiring "+to.Name+" while holding fleet.Manager.mu: sync.Mutex is not reentrant, this self-deadlocks")
				continue // do not descend past the second acquisition
			case blockingSink(to):
				report(e, chain, "enters "+to.Name+" while holding fleet.Manager.mu: blocking fan-out under the manager lock stalls the whole fleet")
				continue
			}
			visited[to] = true
			parent[to] = e
			queue = append(queue, to)
		}
	}
	return diags
}

// chainTo reconstructs the BFS chain start → … → n from the parent map.
func chainTo(start, n *Node, parent map[*Node]*CallEdge) []*Node {
	var rev []*Node
	for cur := n; cur != start; {
		rev = append(rev, cur)
		cur = parent[cur].From
	}
	rev = append(rev, start)
	chain := make([]*Node, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		chain = append(chain, rev[i])
	}
	return chain
}

// findChain BFS-walks from n (inclusive) over call edges, refusing to
// descend into mu-acquiring functions (they are internally consistent),
// and returns the chain to the first node satisfying hit, or nil.
func findChain(n *Node, locks map[*Node]bool, hit func(*Node) bool) []*Node {
	if hit(n) {
		return []*Node{n}
	}
	visited := map[*Node]bool{n: true}
	parent := map[*Node]*CallEdge{}
	queue := []*Node{n}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Out {
			to := e.To
			if visited[to] || locks[to] {
				continue
			}
			visited[to] = true
			parent[to] = e
			if hit(to) {
				return chainTo(n, to, parent)
			}
			queue = append(queue, to)
		}
	}
	return nil
}

// blockingSink reports whether entering n while holding the manager
// lock serializes the fleet: the engine's job fan-out, or any net/http
// code (a handler blocked on the lock blocks the northbound API).
func blockingSink(n *Node) bool {
	if n.Fn == nil || n.Fn.Pkg() == nil {
		return false
	}
	switch {
	case n.Fn.Pkg().Path() == "snic/internal/engine" && strings.HasPrefix(n.Fn.Name(), "Run"):
		return true
	case n.Fn.Pkg().Path() == "net/http":
		return true
	}
	return false
}

// managerType resolves fleet.Manager and verifies it guards state with
// a sync.Mutex field named mu; nil disables the check (fixture trees
// without a realistic Manager).
func managerType(fleet *Package) *types.Named {
	tn, ok := fleet.Types.Scope().Lookup("Manager").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "mu" {
			continue
		}
		if ft, ok := f.Type().(*types.Named); ok &&
			ft.Obj().Pkg() != nil && ft.Obj().Pkg().Path() == "sync" && ft.Obj().Name() == "Mutex" {
			return named
		}
	}
	return nil
}

// isManagerMethod reports whether n is a method declared on Manager.
func isManagerMethod(n *Node, manager *types.Named) bool {
	if n.Fn == nil {
		return false
	}
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == manager.Obj()
}

// guardedTypes collects Manager plus every named struct type in fleet
// reachable from its fields (managedDevice, tenant, Placement, Stats,
// …): writing any of them is mutating manager-guarded state.
func guardedTypes(fleet *Package, manager *types.Named) map[*types.TypeName]bool {
	guarded := map[*types.TypeName]bool{manager.Obj(): true}
	queue := []*types.Named{manager}
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			for _, fn := range fieldNamed(st.Field(i).Type()) {
				obj := fn.Obj()
				if obj.Pkg() == nil || obj.Pkg().Path() != fleetPath || guarded[obj] {
					continue
				}
				if _, isStruct := fn.Underlying().(*types.Struct); !isStruct {
					continue
				}
				guarded[obj] = true
				queue = append(queue, fn)
			}
		}
	}
	return guarded
}

// fieldNamed unwraps pointers, slices, arrays, and maps down to the
// named types a field can reference.
func fieldNamed(t types.Type) []*types.Named {
	switch tt := t.(type) {
	case *types.Named:
		return []*types.Named{tt}
	case *types.Pointer:
		return fieldNamed(tt.Elem())
	case *types.Slice:
		return fieldNamed(tt.Elem())
	case *types.Array:
		return fieldNamed(tt.Elem())
	case *types.Map:
		return append(fieldNamed(tt.Key()), fieldNamed(tt.Elem())...)
	}
	return nil
}

// acquiresMu reports whether body contains a call of the form
// <expr of type Manager>.mu.Lock().
func acquiresMu(info *types.Info, body *ast.BlockStmt, manager *types.Named) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "mu" {
			return true
		}
		if isManagerExpr(info, inner.X, manager) {
			found = true
		}
		return !found
	})
	return found
}

// writesGuarded reports whether body assigns through a selector whose
// base is a guarded fleet type: m.clock = …, md.placed[k] = …,
// delete(m.devices, k), tn.used.Cores++ and the like. Writes to plain
// locals (even of guarded value types' copies) still count — exported
// methods operating on copies are rare enough here that the
// conservative answer is the safe one.
func writesGuarded(info *types.Info, body *ast.BlockStmt, guarded map[*types.TypeName]bool) bool {
	found := false
	mark := func(target ast.Expr) {
		if guardedTarget(info, target, guarded) {
			found = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "delete" && len(s.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					mark(s.Args[0])
				}
			}
		}
		return !found
	})
	return found
}

// guardedTarget reports whether the assignment target writes into a
// guarded type: the target (unwrapped of indexing and derefs) must be
// a field selection on an expression of guarded type.
func guardedTarget(info *types.Info, target ast.Expr, guarded map[*types.TypeName]bool) bool {
	for {
		switch t := target.(type) {
		case *ast.ParenExpr:
			target = t.X
		case *ast.IndexExpr:
			target = t.X
		case *ast.StarExpr:
			target = t.X
		case *ast.SelectorExpr:
			return guardedExprType(info, t.X, guarded)
		default:
			return false
		}
	}
}

// guardedExprType reports whether expr's type (behind pointers) is one
// of the guarded named types.
func guardedExprType(info *types.Info, expr ast.Expr, guarded map[*types.TypeName]bool) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && guarded[named.Obj()]
}

// isManagerExpr reports whether expr's type (behind pointers) is the
// Manager type itself.
func isManagerExpr(info *types.Info, expr ast.Expr, manager *types.Named) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == manager.Obj()
}

var _ ProgramCheck = LockDiscipline{}
