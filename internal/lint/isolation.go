package lint

import (
	"go/types"
)

// isolationTrusted is the set of packages that legitimately sit below
// the TLB line: the physical-memory arena itself, the device models
// that implement translation, and the hardware blocks (DMA engines,
// accelerators, packet pipelines) whose job is to model owner-checked
// access. Everything else — experiments, NFs, the fleet control plane,
// commands, examples — must reach NF backing memory only through the
// owner-checked entry points (snic NFRead/NFWrite/MgmtRead/MgmtWrite or
// the device.NIC API), never by grabbing the raw arena.
var isolationTrusted = map[string]bool{
	"snic/internal/mem":      true,
	"snic/internal/snic":     true,
	"snic/internal/device":   true,
	"snic/internal/baseline": true,
	"snic/internal/pktio":    true,
	"snic/internal/accel":    true,
	"snic/internal/dma":      true,
}

// physicalPorts are the mem.Physical methods that move or claim bytes:
// the raw data ports and the ownership operations. Geometry readers
// (Size, FrameSize, NumFrames, OwnerOf) are not sinks — they leak no
// tenant data — but note that obtaining the *Physical handle at all is
// already flagged, so untrusted code cannot reach them either.
var physicalPorts = map[string]bool{
	"Read":       true,
	"Write":      true,
	"ReadU64":    true,
	"WriteU64":   true,
	"Alloc":      true,
	"AllocBytes": true,
	"Release":    true,
	"ReleaseAll": true,
}

// memoryAccessors are the packages whose Memory() methods hand out the
// raw *mem.Physical backing store.
var memoryAccessors = map[string]bool{
	"snic/internal/snic":     true,
	"snic/internal/baseline": true,
}

// IsolationBoundary is the static analogue of the paper's DMA/TLB
// isolation argument: on real S-NIC hardware an NF physically cannot
// address another tenant's frames, because every access goes through
// the per-NF locked TLB. In the simulator the arena is one Go object,
// so nothing but discipline stops a harness from reaching around the
// translation path — this check is that discipline. Any call chain
// from untrusted code that obtains Device.Memory() or touches a
// mem.Physical data/ownership port is a finding, with the chain
// printed, so the bypass is visible even when it hides behind three
// helpers.
type IsolationBoundary struct{}

func (IsolationBoundary) Name() string { return "isolation-boundary" }

func (IsolationBoundary) Doc() string {
	return "forbid raw backing-memory access (Device.Memory, mem.Physical ports) outside the trusted device layer"
}

func (c IsolationBoundary) RunProgram(prog *Program) []Diagnostic {
	g := prog.Graph()
	isRoot := func(n *Node) bool {
		return n.Pkg != nil && !isolationTrusted[n.Pkg.Path] && n.Exported()
	}
	var diags []Diagnostic
	for _, n := range g.Nodes {
		if n.Pkg == nil || isolationTrusted[n.Pkg.Path] {
			continue
		}
		for _, e := range n.Out {
			msg := c.sinkMessage(e)
			if msg == "" {
				continue
			}
			diags = append(diags, Diagnostic{
				Check: c.Name(), Pos: e.Pos, Message: msg,
				Path: CallPath(g.PathFromRoot(n, isRoot), e.To),
			})
		}
	}
	return diags
}

// sinkMessage classifies edge e: a non-empty return is the finding's
// message.
func (IsolationBoundary) sinkMessage(e *CallEdge) string {
	fn := e.To.Fn
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	switch {
	case fn.Pkg().Path() == "snic/internal/mem" &&
		namedRecvName(sig.Recv().Type()) == "Physical" && physicalPorts[fn.Name()]:
		return "raw memory port " + e.To.Name +
			" outside the trusted device layer: NF frames are only legal through owner-checked NFRead/NFWrite/MgmtRead/MgmtWrite"
	case memoryAccessors[fn.Pkg().Path()] && fn.Name() == "Memory":
		return "obtains the raw backing store via " + e.To.Name +
			" outside the trusted device layer: use the owner-checked snic entry points or the device.NIC API"
	}
	return ""
}

var _ ProgramCheck = IsolationBoundary{}
