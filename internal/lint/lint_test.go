package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic file")

const fixtureRoot = "testdata/src"

// loadFixtures loads every package in the fixture tree with the full
// registry's view of the world.
func loadFixtures(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	loader := NewLoader("snic", fixtureRoot)
	paths, err := loader.Discover(fixtureRoot)
	if err != nil {
		t.Fatalf("discover fixtures: %v", err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return loader, pkgs
}

// TestGoldenDiagnostics runs the full registry over the fixture tree and
// compares the rendered findings against the committed golden file.
// Regenerate with: go test ./internal/lint -update
func TestGoldenDiagnostics(t *testing.T) {
	loader, pkgs := loadFixtures(t)
	diags := Run(loader.Fset, pkgs, Registry())

	abs, err := filepath.Abs(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	got := RenderText(diags, abs+string(os.PathSeparator))
	got = filepath.ToSlash(got)

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEachCheckFiresOnItsFixture pins the demonstration the lint gate
// rests on: every registered check reports at least one finding in the
// fixture package built to violate it, and nothing else fires there.
func TestEachCheckFiresOnItsFixture(t *testing.T) {
	fixtureFor := map[string]string{
		"transitive-determinism": "internal/transfix",
		"map-order":              "internal/mapfix",
		"factory-discipline":     "internal/factoryfix",
		"isolation-boundary":     "internal/isofix",
		"lock-discipline":        "internal/fleet",
		"seed-discipline":        "internal/seedfix",
		"stdlib-only":            "internal/importfix",
	}
	loader, pkgs := loadFixtures(t)
	diags := Run(loader.Fset, pkgs, Registry())

	for _, c := range Registry() {
		dir, ok := fixtureFor[c.Name()]
		if !ok {
			t.Errorf("check %s has no fixture package; add one under %s", c.Name(), fixtureRoot)
			continue
		}
		n := 0
		for _, d := range diags {
			in := strings.Contains(filepath.ToSlash(d.Pos.Filename), dir+"/")
			if in && d.Check == c.Name() {
				n++
			}
			if in && d.Check != c.Name() {
				t.Errorf("%s: unexpected %s finding in %s fixture: %s", d.Pos, d.Check, c.Name(), d.Message)
			}
		}
		if n == 0 {
			t.Errorf("check %s produced no findings on its fixture %s", c.Name(), dir)
		}
	}
}

// TestWaiverScoping asserts //lint:allow suppresses exactly its named
// check: valid waivers silence their site, while wrong-check,
// reasonless, and unknown-check waivers leave the finding standing (and
// the malformed ones are findings themselves).
func TestWaiverScoping(t *testing.T) {
	loader, pkgs := loadFixtures(t)
	var waived *Package
	for _, p := range pkgs {
		if p.Path == "snic/internal/waivedfix" {
			waived = p
		}
	}
	if waived == nil {
		t.Fatal("waivedfix fixture not loaded")
	}
	diags := Run(loader.Fset, []*Package{waived}, Registry())

	byCheck := map[string][]int{}
	for _, d := range diags {
		byCheck[d.Check] = append(byCheck[d.Check], d.Pos.Line)
	}
	// Five time.Now sites; the two correctly waived ones are silent.
	if got := len(byCheck["transitive-determinism"]); got != 3 {
		t.Errorf("transitive-determinism findings = %d (%v), want 3: only the valid waivers suppress",
			got, byCheck["transitive-determinism"])
	}
	// The reasonless and unknown-check waivers are findings of their own,
	// and so is the wrong-check waiver: it suppressed nothing, so it is
	// reported stale.
	if got := len(byCheck["waiver"]); got != 3 {
		t.Errorf("waiver findings = %d (%v), want 3", got, byCheck["waiver"])
	}
	// The valid waivers' lines must not appear among the findings.
	src, err := os.ReadFile(filepath.Join(fixtureRoot, "internal/waivedfix/waivedfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "demonstrating a") { // the two valid waivers
			for _, l := range byCheck["transitive-determinism"] {
				if l == i+1 || l == i+2 {
					t.Errorf("line %d: finding survived a valid waiver", l)
				}
			}
		}
	}
}

// TestSelect covers the -checks plumbing: named subsets run alone,
// unknown IDs are usage errors, empty input means everything.
func TestSelect(t *testing.T) {
	cs, err := Select([]string{"transitive-determinism", "stdlib-only"})
	if err != nil || len(cs) != 2 {
		t.Fatalf("Select two = %v, %v", cs, err)
	}
	if _, err := Select([]string{"bogus"}); err == nil {
		t.Fatal("Select(bogus) succeeded, want unknown-check error")
	}
	cs, err = Select([]string{""})
	if err != nil || len(cs) != len(Registry()) {
		t.Fatalf("Select empty = %d checks, %v; want full registry", len(cs), err)
	}
}

// TestSelectedCheckIsolation asserts -checks runs only the named check:
// the determfix fixture yields zero findings under a seed-discipline-only
// run.
func TestSelectedCheckIsolation(t *testing.T) {
	loader, pkgs := loadFixtures(t)
	only, err := Select([]string{"seed-discipline"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(loader.Fset, pkgs, only) {
		if d.Check != "seed-discipline" && d.Check != "waiver" {
			t.Errorf("selected run leaked %s finding at %s", d.Check, d.Pos)
		}
	}
}
