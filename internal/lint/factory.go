package lint

import (
	"go/ast"
	"strings"
)

// Factory enforces the device-construction discipline established by the
// unified device abstraction: every NIC model is built through the
// internal/device registry (device.New over a declarative Spec), so
// capability flags, conformance coverage, and the attack matrix see
// every device the same way. Direct snic.New / baseline.New* calls
// outside internal/device bypass that and are forbidden (tests may
// still construct models directly to probe internals).
type Factory struct{}

func (Factory) Name() string { return "factory-discipline" }

func (Factory) Doc() string {
	return "forbid snic.New/baseline.New* outside internal/device and tests"
}

// factoryPkgs maps a constructor-owning package to a predicate over
// selector names that are reserved for the factory.
var factoryPkgs = map[string]func(string) bool{
	"snic/internal/snic":     func(name string) bool { return name == "New" },
	"snic/internal/baseline": func(name string) bool { return strings.HasPrefix(name, "New") },
}

func (c Factory) Run(p *Pass) []Diagnostic {
	if p.Pkg.Path == "snic/internal/device" {
		return nil // the factory itself is the one sanctioned call site
	}
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		local := make(map[string]string, len(factoryPkgs)) // import path -> local name
		for path := range factoryPkgs {
			if name := importLocalName(f.AST, path); name != "" {
				local[path] = name
			}
		}
		if len(local) == 0 {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			for path, reserved := range factoryPkgs {
				if reserved(sel.Sel.Name) && p.pkgRef(id, path, local[path]) {
					diags = append(diags, p.diag(c.Name(), sel,
						"direct constructor %s.%s outside internal/device: build devices via device.New(device.Spec{...})",
						id.Name, sel.Sel.Name))
				}
			}
			return true
		})
	}
	return diags
}
