// Command snicd here is the fixture stub proving the determinism check
// reaches cmd/snicd: the real daemon promises byte-identical replays, so
// unlike the other commands it may not consult the wall clock or
// math/rand. Each forbidden form below must appear in golden.txt.
package main

import (
	"math/rand"
	"time"
)

// uptime trips the wall-clock entry points: a daemon that stamps its
// responses with real time can never replay a request history
// byte-identically.
func uptime() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// jitter trips the ambient-randomness ban: listen-port or backoff
// jitter must come from the fleet's seeded streams, not math/rand.
func jitter() int {
	return rand.Intn(100)
}

func main() {
	_ = uptime()
	_ = jitter()
}
