// Package importfix deliberately violates the stdlib-only check: an
// import outside the standard library plus the forbidden unsafe.
package importfix

import (
	_ "unsafe"

	_ "github.com/fake/dep"
)

// Placeholder keeps the package non-empty.
const Placeholder = true
