// Package obsfix deliberately violates the obs read-back rule of transitive-determinism: a
// simulation-path package reading back the metrics it collects. Writing
// (Add, Inc, interning handles) is legal everywhere; reading makes the
// metric a simulation input and breaks seed-purity.
package obsfix

import "snic/internal/obs"

// Hot writes a metric — legal, and must not fire.
func Hot(c *obs.Counter) { c.Inc() }

// Intern creates a handle — also legal.
func Intern(r *obs.Registry) *obs.Counter {
	return r.Counter(obs.Label{Device: "d", Name: "n"})
}

// Throttle branches on a counter's value: the forbidden method reader.
func Throttle(c *obs.Counter) bool { return c.Value() > 1000 }

// Snapshot reads the whole registry back inside the simulated path.
func Snapshot(r *obs.Registry) string { return r.DumpMetrics() }

// Compare round-trips dumps through the package-level readers.
func Compare(a, b string) int {
	_, n := obs.Diff(obs.ParseDump(a), obs.ParseDump(b), false)
	return n
}
