// Package waivedfix exercises waiver semantics: a well-formed waiver
// suppresses exactly its named check; wrong-check, reasonless, and
// unknown-check waivers suppress nothing.
package waivedfix

import "time"

// Allowed is suppressed: the waiver names the firing check with a reason.
func Allowed() time.Time {
	return time.Now() //lint:allow transitive-determinism fixture demonstrating a valid waiver
}

// AllowedAbove is suppressed by a standalone waiver on the line above.
func AllowedAbove() time.Time {
	//lint:allow transitive-determinism fixture demonstrating a standalone waiver
	return time.Now()
}

// WrongCheck still fires: the waiver names a different check.
func WrongCheck() time.Time {
	return time.Now() //lint:allow map-order wrong check on purpose
}

// NoReason still fires, and the reasonless waiver is itself a finding.
func NoReason() time.Time {
	return time.Now() //lint:allow transitive-determinism
}

// UnknownCheck still fires, and the bogus check ID is itself a finding.
func UnknownCheck() time.Time {
	return time.Now() //lint:allow nonsense some reason
}
