// Package sim is a minimal stub of the real simulation kernel, just
// enough for the seed-discipline fixtures to type-check without
// coupling the lint tests to the real package's API. The loader's
// root-ordering resolves "snic/internal/sim" here first when the
// fixture tree is the leading root.
package sim

// Rand mirrors the real deterministic PRNG's identity.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// DeriveSeed hashes a base seed plus labels into a stable seed.
func DeriveSeed(base uint64, labels ...string) uint64 {
	h := base
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h = h*1099511628211 ^ uint64(l[i])
		}
	}
	return h
}

// DeriveRand returns a generator seeded with DeriveSeed(base, labels...).
func DeriveRand(base uint64, labels ...string) *Rand {
	return NewRand(DeriveSeed(base, labels...))
}
