// Package baseline is a minimal stub of the real baseline-NIC package
// for the factory-discipline fixtures.
package baseline

// Agilio stands in for one baseline model.
type Agilio struct{ memBytes uint64 }

// NewAgilio matches the reserved New* constructor shape.
func NewAgilio(memBytes uint64) (*Agilio, error) { return &Agilio{memBytes: memBytes}, nil }

// NewBlueField matches the reserved New* constructor shape.
func NewBlueField(memBytes uint64) (*Agilio, error) { return &Agilio{memBytes: memBytes}, nil }
