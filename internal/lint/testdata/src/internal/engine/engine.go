// Package engine stubs the experiment engine's fan-out entry point for
// the lock-discipline fixtures: entering Run while holding the fleet
// manager's lock is the blocking pattern rule 3 forbids.
package engine

// Run stands in for the engine's job fan-out.
func Run(jobs int) int { return jobs }
