// Package progfix deliberately violates the obs read-back rule with the
// live-telemetry and flight-recorder APIs: a simulation-path package
// that feeds the progress plane (legal) and then reads it back through
// helper chains (forbidden). The findings must carry the full call path
// from the exported entry point, proving the rule is interprocedural
// for the new readers too.
package progfix

import "snic/internal/obs"

// Publish feeds the progress plane — writes only, must not fire.
func Publish(p *obs.Progress, shard int, pos uint64) {
	p.Pos(shard, pos)
	p.JobDone(false)
}

// Record appends a span to a flight recorder — a write, must not fire.
func Record(t *obs.Tracer) { t.Span("step", 0, 1) }

// Pace branches on the live telemetry two helpers deep: the simulation
// throttling itself on its own progress readback.
func Pace(p *obs.Progress) bool { return behind(p) }

func behind(p *obs.Progress) bool { return lag(p) > 0 }

func lag(p *obs.Progress) int { return 10 - p.Snapshot().JobsDone }

// Refill branches on the recorder's eviction count through a helper.
func Refill(t *obs.Tracer) bool { return evicted(t) > 0 }

func evicted(t *obs.Tracer) uint64 { return t.Dropped() }

// Scrape renders the Prometheus exposition inside the simulated path.
func Scrape(r *obs.Registry) string { return r.PromText() }

// Percentiles round-trips a dump through the histogram reader.
func Percentiles(dump string) []obs.HistSummary {
	return obs.HistSummaries(obs.ParseDump(dump))
}
