// Package obs is a miniature stub of the real snic/internal/obs, giving
// the fixture tree the types the obs read-back rule resolves reader
// methods against. Its own body also demonstrates the check's second
// rule: any //lint:allow comment inside obs is a finding, because the
// collector the whole module trusts must pass every check unwaived.
package obs

// Label keys one metric series.
type Label struct{ Device, Owner, Component, Name string }

// Counter is a write-mostly cumulative metric.
type Counter struct{ v int64 }

// Add and Inc write — legal from any package.
func (c *Counter) Add(n uint64) { c.v += int64(n) }

// Inc bumps the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the count back — forbidden in the simulation path.
func (c *Counter) Value() int64 { return c.v }

// Registry interns metric handles by label.
type Registry struct{ counters map[Label]*Counter }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{counters: map[Label]*Counter{}} }

// Counter interns a handle — a write-side operation, legal anywhere.
func (r *Registry) Counter(l Label) *Counter {
	c, ok := r.counters[l]
	if !ok {
		c = &Counter{}
		r.counters[l] = c
	}
	return c
}

// DumpMetrics renders every series — a reader.
func (r *Registry) DumpMetrics() string { return "" }

// PromText renders the registry in Prometheus exposition format — a
// reader, same as DumpMetrics.
func (r *Registry) PromText() string { return "" }

// Tracer records spans on one named track, optionally as a bounded
// flight recorder.
type Tracer struct {
	spans   []string
	dropped uint64
}

// Span appends a record — a write, legal anywhere.
func (t *Tracer) Span(name string, start, dur uint64) { t.spans = append(t.spans, name) }

// Dropped reads the flight recorder's eviction count back — forbidden
// in the simulation path.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Progress is the live run-telemetry plane: writers feed it from the
// engine, readers surface it outside the simulation.
type Progress struct {
	done int
	pos  []uint64
}

// JobDone and Pos write — legal from the simulation path.
func (p *Progress) JobDone(failed bool) { p.done++ }

// Pos publishes one shard's absolute position — also a write.
func (p *Progress) Pos(shard int, pos uint64) {}

// ProgressSnapshot is the read-side view of a Progress.
type ProgressSnapshot struct{ JobsDone int }

// Snapshot reads the telemetry back — forbidden in the simulation path.
func (p *Progress) Snapshot() ProgressSnapshot { return ProgressSnapshot{JobsDone: p.done} }

// ParseDump parses a rendered dump — a reader.
func ParseDump(data string) map[string]int64 { return map[string]int64{} }

// Diff compares two parsed dumps — a reader.
func Diff(old, new map[string]int64, all bool) (string, int) { return "", 0 }

// HistSummary is one histogram's percentile summary.
type HistSummary struct{ Series string }

// HistSummaries reconstructs percentile summaries from a parsed dump —
// a reader.
func HistSummaries(dump map[string]int64) []HistSummary { return nil }

// Even a well-formed waiver is a finding inside obs:
//
//lint:allow transitive-determinism fixture demonstrating the zero-waiver rule
var _ = 0
