// Package mapfix deliberately violates the map-order check in the three
// recognized forms, and exercises the two idioms that must stay legal.
package mapfix

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

type row struct {
	name string
	v    int
}

// Rows appends value-bearing rows in map order: violation.
func Rows(m map[string]int) []row {
	var rows []row
	for k, v := range m {
		rows = append(rows, row{k, v})
	}
	return rows
}

// Render writes to a strings.Builder in map order: violation.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

// Dump prints in map order: violation.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// SortedKeys is the sanctioned idiom — collect only the keys, sort,
// iterate the sorted slice — and must not be flagged.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum aggregates order-insensitively and must not be flagged.
func Sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
