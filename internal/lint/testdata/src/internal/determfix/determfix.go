// Package determfix deliberately violates the determinism check: a
// simulation-path package reading the wall clock and math/rand.
package determfix

import (
	"math/rand"
	"time"
)

// Elapsed trips all three forbidden forms.
func Elapsed() time.Duration {
	t0 := time.Now()
	_ = rand.Int()
	return time.Since(t0)
}

// Budget shows that plain time.Duration arithmetic stays legal: only
// the wall-clock entry points are forbidden.
func Budget(d time.Duration) time.Duration { return 2 * d }
