// Package determfix deliberately violates the determinism check: a
// simulation-path package reading the wall clock and math/rand.
package determfix

import (
	"math/rand"
	"time"

	"snic/internal/memo"
)

// Elapsed trips all three forbidden forms.
func Elapsed() time.Duration {
	t0 := time.Now()
	_ = rand.Int()
	return time.Since(t0)
}

// Budget shows that plain time.Duration arithmetic stays legal: only
// the wall-clock entry points are forbidden.
func Budget(d time.Duration) time.Duration { return 2 * d }

// memoCache demonstrates the check reaching inside a memo.Cache build
// closure: memoizing a nondeterministic build would freeze one
// wall-clock read into every later hit, which is worse than calling it
// each time — so build funcs are simulation path like any other code
// and must stay pure functions of the key.
var memoCache memo.Cache[string, int64]

// Memoized trips the check from within the build closure.
func Memoized() int64 {
	return memoCache.Get("now", func() int64 {
		return time.Now().UnixNano()
	})
}

// cursor mimics a streaming checkpoint cursor: position plus a stamp.
type cursor struct {
	Pos     uint64
	Stamped int64
}

// Save trips the check inside checkpoint/cursor code: stamping a
// wall-clock time into a cursor makes the saved bytes differ between an
// interrupted and an uninterrupted run, so resume can never be
// byte-identical. Cursor state must be a pure function of stream
// position.
func Save(pos uint64) cursor {
	return cursor{Pos: pos, Stamped: time.Now().UnixNano()}
}

// Shuffle trips the check in a stream-sharding shape: picking the next
// shard by math/rand makes the merge order scheduling-dependent.
func Shuffle(shards int) int {
	return rand.Intn(shards)
}
