// Package transfix deliberately violates the transitive-determinism
// check through helper chains: no forbidden call appears directly in an
// exported simulation-path function, yet every chain below reaches one.
// The per-file determinism check of earlier revisions saw nothing here.
package transfix

import (
	"snic/internal/obs"
	"snic/util/timing"
)

// Epoch looks innocent: the wall-clock read hides two calls away, in a
// package outside internal/ that a per-file check never examines.
func Epoch() int64 { return mark() }

func mark() int64 { return timing.Stamp() }

// Reseed pulls ambient randomness through the same helper package.
func Reseed() int { return timing.Jitter() }

// Snapshot reads collected metrics back through an unexported helper:
// the sink is local, and the printed path names the exported entry
// point that makes it reachable.
func Snapshot(r *obs.Registry) string { return export(r) }

func export(r *obs.Registry) string { return r.DumpMetrics() }
