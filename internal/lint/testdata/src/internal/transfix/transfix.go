// Package transfix deliberately violates the transitive-determinism
// check through helper chains: no forbidden call appears directly in an
// exported simulation-path function, yet every chain below reaches one.
// The per-file determinism check of earlier revisions saw nothing here.
package transfix

import (
	"snic/internal/obs"
	"snic/util/timing"
)

// Epoch looks innocent: the wall-clock read hides two calls away, in a
// package outside internal/ that a per-file check never examines.
func Epoch() int64 { return mark() }

func mark() int64 { return timing.Stamp() }

// Reseed pulls ambient randomness through the same helper package.
func Reseed() int { return timing.Jitter() }

// Snapshot reads collected metrics back through an unexported helper:
// the sink is local, and the printed path names the exported entry
// point that makes it reachable.
func Snapshot(r *obs.Registry) string { return export(r) }

func export(r *obs.Registry) string { return r.DumpMetrics() }

// --- Warm-pool shapes ------------------------------------------------------
//
// The churn fast paths put pool bookkeeping helpers on the simulation
// path (park, reclaim, hit accounting). These chains pin the two shapes
// such helpers must never take: wall-clock frame age and mid-run
// read-back of the pool counters.

// PoolAge decides parked-frame freshness by wall-clock age instead of
// simulated cycles; the read hides three pool helpers away.
func PoolAge() int64 { return poolStamp() }

func poolStamp() int64 { return parkedAt() }

func parkedAt() int64 { return timing.Parked() }

// PoolPressure steers eviction by reading the pool-hit counter back
// mid-simulation: pool counters are write-only on the simulation path.
func PoolPressure(r *obs.Registry) int64 { return poolStats(r) }

func poolStats(r *obs.Registry) int64 { return hits(r) }

func hits(r *obs.Registry) int64 {
	return r.Counter(obs.Label{Component: "snic", Name: "pool_hit"}).Value()
}
