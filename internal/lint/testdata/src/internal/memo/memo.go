// Package memo is the fixture stub of snic/internal/memo: the same
// build-once Cache API, present so the determfix fixture can demonstrate
// that the determinism check reaches inside memoized build closures. The
// stub itself is clean — a cache is only as deterministic as what it is
// asked to build.
package memo

import "sync"

type entry[V any] struct {
	once sync.Once
	v    V
}

// Cache mirrors the real build-once cache's API.
type Cache[K comparable, V any] struct {
	m sync.Map
}

// Get returns the value for key, invoking build at most once per key.
func (c *Cache[K, V]) Get(key K, build func() V) V {
	e, ok := c.m.Load(key)
	if !ok {
		e, _ = c.m.LoadOrStore(key, new(entry[V]))
	}
	en := e.(*entry[V])
	en.once.Do(func() { en.v = build() })
	return en.v
}
