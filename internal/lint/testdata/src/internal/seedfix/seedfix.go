// Package seedfix deliberately violates the seed-discipline check:
// integer-literal seeds fed to sim.NewRand outside tests.
package seedfix

import "snic/internal/sim"

// Bad seeds a stream with a magic number: violation.
func Bad() *sim.Rand { return sim.NewRand(42) }

// BadConversion hides the literal behind a conversion: still a violation.
func BadConversion() *sim.Rand { return sim.NewRand(uint64(7)) }

// Threaded passes a caller-provided seed through: legal.
func Threaded(seed uint64) *sim.Rand { return sim.NewRand(seed) }

// Derived uses the sanctioned derivation entry point: legal.
func Derived(base uint64) *sim.Rand { return sim.DeriveRand(base, "seedfix") }
