// Package factoryfix deliberately violates the factory-discipline
// check: direct snic.New and baseline.New* calls outside
// internal/device.
package factoryfix

import (
	"snic/internal/baseline"
	"snic/internal/snic"
)

// Build constructs devices behind the factory's back: two violations.
func Build() error {
	if _, err := snic.New(4); err != nil {
		return err
	}
	_, err := baseline.NewAgilio(1 << 20)
	return err
}

// Reference shows the check also catches taking the constructor as a
// value, not just calling it.
var Reference = baseline.NewBlueField
