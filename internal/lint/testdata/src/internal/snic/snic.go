// Package snic is a minimal stub of the real device package for the
// factory-discipline and isolation-boundary fixtures.
package snic

import "snic/internal/mem"

// Device stands in for the real S-NIC model.
type Device struct{ cores int }

// New is the constructor the factory-discipline check reserves for
// internal/device.
func New(cores int) (*Device, error) { return &Device{cores: cores}, nil }

// Memory exposes the raw backing store — legal only inside the trusted
// device layer.
func (d *Device) Memory() *mem.Physical { return &mem.Physical{} }

// NFWrite is the owner-checked data port untrusted code must use.
func (d *Device) NFWrite(id int, va uint64, data []byte) error { return nil }
