// Package snic is a minimal stub of the real device package for the
// factory-discipline fixtures.
package snic

// Device stands in for the real S-NIC model.
type Device struct{ cores int }

// New is the constructor the factory-discipline check reserves for
// internal/device.
func New(cores int) (*Device, error) { return &Device{cores: cores}, nil }
