// Package fleet deliberately violates the lock-discipline check in all
// three ways: an exported mutator that never locks (directly and
// through a helper), a transitive double-acquisition of the
// non-reentrant mutex, and an engine fan-out entered while holding the
// lock. Advance and Stats show the clean pattern and must not fire.
package fleet

import (
	"sync"

	"snic/internal/engine"
)

// Manager mirrors the real control plane's shape: one mutex guarding
// every mutable field.
type Manager struct {
	mu      sync.Mutex
	clock   uint64
	devices map[string]*managedDevice
}

type managedDevice struct{ placed int }

// Advance is the clean pattern: lock, mutate, unlock.
func (m *Manager) Advance(c uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock += c
	return m.clock
}

// Stats locks to read a consistent snapshot.
func (m *Manager) Stats() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// SetClock violates rule 2 directly: an exported mutator with no lock.
func (m *Manager) SetClock(c uint64) { m.clock = c }

// Evict violates rule 2 transitively: the unguarded write hides in a
// helper, where a per-function check would never connect it.
func (m *Manager) Evict(name string) { m.drop(name) }

func (m *Manager) drop(name string) { delete(m.devices, name) }

// Rebalance violates rule 1 transitively: it holds mu and reaches the
// mu-acquiring Stats through a helper — a guaranteed self-deadlock on
// the non-reentrant sync.Mutex.
func (m *Manager) Rebalance() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.repack()
}

func (m *Manager) repack() uint64 { return m.Stats() }

// Burst violates rule 3: engine fan-out while holding the lock.
func (m *Manager) Burst(jobs int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return engine.Run(jobs)
}
