// Package isofix deliberately violates the isolation-boundary check: a
// simulation harness reaching around the owner-checked translation path
// to the raw backing arena. On real S-NIC hardware the per-NF locked
// TLB makes this physically impossible; in the simulator only the check
// stands between a helper function and another tenant's frames.
package isofix

import (
	"snic/internal/mem"
	"snic/internal/snic"
)

// Drain obtains the raw arena from the device — the first finding —
// and hands it to a helper, hiding the actual write one call deeper.
func Drain(d *snic.Device) error {
	pm := d.Memory()
	return scribble(pm)
}

// scribble writes through the raw port, bypassing NFWrite: the second
// finding, whose printed path names Drain as the entry point.
func scribble(pm *mem.Physical) error {
	return pm.Write(0, []byte{0xFF})
}

// Sanctioned shows the legal alternative: the owner-checked entry point
// is fine from anywhere and must not fire.
func Sanctioned(d *snic.Device) error {
	return d.NFWrite(1, 0, []byte{0xFF})
}
