// Package mem is a miniature stub of the real snic/internal/mem, giving
// the fixture tree the Physical arena type the isolation-boundary check
// resolves raw-port calls against.
package mem

// Addr is a physical byte address.
type Addr uint64

// Physical stands in for the raw backing arena.
type Physical struct{ size uint64 }

// Size is a geometry reader — deliberately not a sink (it leaks no
// tenant data), though untrusted code cannot reach it anyway without
// first obtaining the handle, which is flagged.
func (p *Physical) Size() uint64 { return p.size }

// Read is a raw data port — a sink outside the trusted layer.
func (p *Physical) Read(pa Addr, buf []byte) error { return nil }

// Write is a raw data port — a sink outside the trusted layer.
func (p *Physical) Write(pa Addr, data []byte) error { return nil }

// Release is an ownership operation — a sink outside the trusted layer.
func (p *Physical) Release(owner int) {}
