// Package timing sits outside the simulated path — not under internal/,
// not cmd/snicd — so nothing here fires on its own: commands may time
// their own progress output. The transfix package drags it into the
// simulation path through the call graph, and each sink below is then
// reported with the chain that reaches it.
package timing

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock — fine for a CLI, fatal once a simulation
// helper can call it.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter draws ambient randomness outside any seeded stream.
func Jitter() int { return rand.Intn(1000) }

// Parked timestamps a pooled frame at park time — wall-clock age, the
// exact field a warm-pool eviction policy must never consult.
func Parked() int64 { return time.Now().Unix() }
