// Package a is half of a deliberate import cycle for the loader tests.
// The go tool never builds testdata, so the cycle is only ever seen by
// the lint loader, which must survive it.
package a

import "cyclemod/b"

// Ping bounces through the cycle's other half.
func Ping() int { return b.Pong() }
