// Package b is the other half of the loader-test import cycle.
package b

import "cyclemod/a"

// Pong bounces back through package a.
func Pong() int { return a.Ping() }
