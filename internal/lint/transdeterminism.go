package lint

import (
	"go/types"
	"strings"
)

// simulationPath reports whether an import path is part of the simulated
// path, where wall-clock time and ambient randomness are forbidden:
// everything under internal/ (the simulation kernel, device models, NFs,
// experiments, and the engine that schedules them), plus cmd/snicd — the
// fleet daemon promises byte-identical replays of any request history,
// so it is held to the same bar as the packages it wraps. Other commands
// and examples sit outside — they may time their own progress output —
// unless a simulation-path function can reach them through the call
// graph, in which case they are held to the same bar transitively.
func simulationPath(path string) bool {
	return strings.HasPrefix(path, "snic/internal/") || path == "snic/cmd/snicd"
}

// forbiddenTimeFuncs are the package-time functions that read or depend
// on the wall clock. time.Duration arithmetic and the unit constants
// remain fine: they are plain numbers.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// obsPath is the import path of the observability package whose
// write-only contract the check enforces.
const obsPath = "snic/internal/obs"

// obsReaderFuncs are the package-level obs functions that read collected
// data back out. Conversion helpers (MSToCycles) and constructors
// (NewRegistry, NewWall) are not readers: they carry no collected state.
var obsReaderFuncs = map[string]bool{
	"ParseDump":     true,
	"Diff":          true,
	"HistSummaries": true,
	"HistQuantile":  true,
}

// obsReaderMethods are the methods on obs types that read collected data
// back out. Writers (Add, Inc, Set, Observe, Span, Event, Tick, and the
// Progress writers Begin/JobDone/Pos/Saved) and the quarantined
// wall-clock pair (Wall.Start, Wall.Since) are deliberately absent:
// simulation-path code may feed the collector and may time its own -v
// progress output, but must never branch on what was collected.
var obsReaderMethods = map[string]bool{
	"Value":       true, // Counter, Gauge
	"Count":       true, // Histogram
	"Sum":         true, // Histogram
	"Buckets":     true, // Histogram
	"Records":     true, // Tracer
	"Dropped":     true, // Tracer (flight-recorder eviction count)
	"DumpMetrics": true, // Registry
	"ChromeTrace": true, // Registry
	"TraceText":   true, // Registry
	"PromText":    true, // Registry
	"Snapshot":    true, // Progress (live telemetry readback)
}

// TransDeterminism enforces DESIGN.md's determinism promise through the
// whole call graph: no function that simulation-path code can reach —
// directly, through helpers, through function values, or through
// interface dispatch — may read the wall clock, draw from math/rand, or
// read collected obs metrics back. Simulated time is cycles and bytes
// over calibrated rates, all randomness flows through sim.Rand, and a
// simulation that branches on its own metrics stops being a pure
// function of its seed. It subsumes the per-file determinism and
// obs-discipline checks of earlier revisions: a helper package outside
// internal/ is held to the same bar the moment a simulation-path
// function can call into it.
type TransDeterminism struct{}

func (TransDeterminism) Name() string { return "transitive-determinism" }

func (TransDeterminism) Doc() string {
	return "forbid wall-clock, math/rand, and obs reads reachable from simulation-path code, through any call chain"
}

// Run is the syntactic half: importing math/rand in a simulation-path
// package is flagged at the import site even before any call is made.
func (c TransDeterminism) Run(p *Pass) []Diagnostic {
	if !simulationPath(p.Pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue // tests may time themselves; goldens catch nondeterminism
		}
		for _, imp := range f.AST.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				diags = append(diags, p.diag(c.Name(), imp,
					"import of %s in simulation path: use snic/internal/sim (DeriveSeed/DeriveRand)",
					strings.Trim(imp.Path.Value, `"`)))
			}
		}
	}
	return diags
}

// RunProgram is the interprocedural half: every call or function-value
// reference whose target is a forbidden sink is flagged when its
// enclosing function is simulation-path or reachable from it, with the
// call chain from the nearest exported simulation-path entry point.
func (c TransDeterminism) RunProgram(prog *Program) []Diagnostic {
	g := prog.Graph()
	var simNodes []*Node
	for _, n := range g.Nodes {
		if n.Pkg != nil && simulationPath(n.Pkg.Path) {
			simNodes = append(simNodes, n)
		}
	}
	reach := g.Reachable(simNodes)
	isRoot := func(n *Node) bool {
		return n.Pkg != nil && simulationPath(n.Pkg.Path) && n.Exported()
	}

	var diags []Diagnostic
	for _, n := range g.Nodes {
		if n.Pkg == nil {
			continue // out-of-module leaves have no analyzable body
		}
		if !simulationPath(n.Pkg.Path) && !reach[n] {
			continue // outside the simulated path and never reached from it
		}
		for _, e := range n.Out {
			msg := c.sinkMessage(n, e)
			if msg == "" {
				continue
			}
			diags = append(diags, Diagnostic{
				Check: c.Name(), Pos: e.Pos, Message: msg,
				Path: CallPath(g.PathFromRoot(n, isRoot), e.To),
			})
		}
	}
	return diags
}

// sinkMessage classifies edge e out of caller n: a non-empty return is
// the finding's message.
func (TransDeterminism) sinkMessage(n *Node, e *CallEdge) string {
	fn := e.To.Fn
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	verb := "call"
	if e.Ref {
		verb = "reference"
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[name] {
			return "wall-clock " + verb + " time." + name +
				" reached from the simulation path: simulated time is cycles, not the clock"
		}
	case "math/rand", "math/rand/v2":
		return "math/rand " + verb + " " + e.To.Name +
			" reached from the simulation path: use snic/internal/sim (DeriveSeed/DeriveRand)"
	case obsPath:
		if n.Pkg.Path == obsPath {
			return "" // the collector reading its own state is its job
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if obsReaderMethods[name] {
				return "obs reader " + recvTypeName(fn) + "." + name +
					" reached from the simulation path: simulation writes metrics, never reads them back"
			}
		} else if obsReaderFuncs[name] {
			return "obs." + name +
				" reads collected metrics in the simulation path: obs is write-only here; read dumps from cmd/ or tests"
		}
	}
	return ""
}

// recvTypeName renders the receiver type of a method for messages, e.g.
// "Counter" for func (c *Counter) Value().
func recvTypeName(fn types.Object) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "obs"
	}
	if name := namedRecvName(sig.Recv().Type()); name != "" {
		return name
	}
	return "obs"
}

// Assert the double dispatch: TransDeterminism runs both per-package
// (imports) and whole-program (reachability).
var (
	_ PackageCheck = TransDeterminism{}
	_ ProgramCheck = TransDeterminism{}
)
