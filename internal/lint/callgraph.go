package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program call graph the interprocedural
// checks (transitive-determinism, isolation-boundary, lock-discipline)
// query. It works from the packages the Loader has already parsed and
// type-checked — no extra passes over the source — and stays strictly
// stdlib: method calls resolve through types.Selections, generic
// functions collapse to their origin object, and anything the type
// checker could not resolve (fixtures import stubs on purpose) is
// skipped rather than guessed.
//
// Precision choices, all deliberately conservative (over-approximate
// the edges, never under-approximate):
//
//   - Function literals are collapsed into their enclosing declaration:
//     a call made inside a closure is an edge out of the function that
//     owns the closure. This loses "the closure may never run" but
//     keeps every chain a closure can trigger.
//   - A reference to a function in non-call position (obs.NewWall(
//     time.Now), handler tables, engine jobs) adds a "ref" edge: the
//     callee may run whenever the enclosing function has run.
//   - Calls through an interface method add one edge per concrete
//     module type implementing the interface (plus nothing for stdlib
//     implementors, which have no bodies to analyze anyway).
//   - Package-level var initializers hang off a synthetic per-package
//     "init" node, so `var w = obs.NewWall(time.Now)` is reachable the
//     moment the package is.
//
// Functions outside the module (time.Now, rand.Intn, net/http) appear
// as leaf nodes: they have no analyzed body, but checks match on them
// as sinks.

// Node is one function in the call graph: a declared function or
// method (Fn != nil), a synthetic package initializer (Fn == nil,
// Name "<pkg>.init"), or an out-of-module leaf.
type Node struct {
	Fn   *types.Func   // nil for synthetic package-init nodes
	Pkg  *Package      // owning module package; nil for out-of-module leaves
	Decl *ast.FuncDecl // declaration body, when the node is module code
	Name string        // display name, e.g. "fleet.Manager.Advance"
	Pos  token.Position

	Out []*CallEdge // call sites in this node, in source order
	In  []*CallEdge // reverse edges, deterministic order
}

// Exported reports whether the node is an entry point a sibling
// package can reach directly: an exported function/method, or main.
func (n *Node) Exported() bool {
	if n.Fn == nil {
		return false
	}
	return n.Fn.Exported() || n.Fn.Name() == "main"
}

// CallEdge is one resolved call (or function-value reference) from
// From's body to To.
type CallEdge struct {
	From, To *Node
	Pos      token.Position // the callee expression's position
	Ref      bool           // non-call reference (function value, handler table)
	Dynamic  bool           // devirtualized interface call
}

// Graph is the whole-program call graph over a set of loaded packages.
type Graph struct {
	Nodes []*Node // every node, sorted (package path, name, position)

	byFn   map[*types.Func]*Node
	byInit map[string]*Node // synthetic init nodes by package path
}

// NodeOf returns the node for fn (normalized to its generic origin),
// or nil if fn never appears in the program.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFn[fn.Origin()]
}

// buildGraph constructs the call graph for pkgs. Test files are
// excluded — they are not type-checked and not part of the shipped
// program.
func buildGraph(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		byFn:   make(map[*types.Func]*Node),
		byInit: make(map[string]*Node),
	}
	b := &graphBuilder{fset: fset, g: g}
	b.collectNamedTypes(pkgs)
	for _, pkg := range pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					from := b.declNode(pkg, d)
					if from != nil && d.Body != nil {
						b.addEdges(pkg, from, d.Body)
					}
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							b.addEdges(pkg, b.initNode(pkg, v), v)
						}
					}
				}
			}
		}
	}
	g.finalize()
	return g
}

type graphBuilder struct {
	fset  *token.FileSet
	g     *Graph
	named []*types.Named // every named (non-interface) type in the program, sorted
}

// collectNamedTypes gathers the concrete named types of every loaded
// package, the candidate set for interface-call devirtualization.
func (b *graphBuilder) collectNamedTypes(pkgs []*Package) {
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.named = append(b.named, named)
		}
	}
	sort.Slice(b.named, func(i, j int) bool {
		a, c := b.named[i].Obj(), b.named[j].Obj()
		ap, cp := "", ""
		if a.Pkg() != nil {
			ap = a.Pkg().Path()
		}
		if c.Pkg() != nil {
			cp = c.Pkg().Path()
		}
		if ap != cp {
			return ap < cp
		}
		return a.Name() < c.Name()
	})
}

// declNode returns (creating if needed) the node for a declared
// function or method, attaching the package and declaration.
func (b *graphBuilder) declNode(pkg *Package, d *ast.FuncDecl) *Node {
	obj := pkg.TypesInfo.Defs[d.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	n := b.funcNode(fn)
	n.Pkg = pkg
	n.Decl = d
	n.Pos = b.fset.Position(d.Pos())
	return n
}

// initNode returns the synthetic initializer node for pkg, positioned
// at the first initializer expression seen.
func (b *graphBuilder) initNode(pkg *Package, at ast.Node) *Node {
	if n, ok := b.g.byInit[pkg.Path]; ok {
		return n
	}
	n := &Node{
		Pkg:  pkg,
		Name: displayPkg(pkg.Path) + ".init",
		Pos:  b.fset.Position(at.Pos()),
	}
	b.g.byInit[pkg.Path] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// funcNode returns (creating if needed) the node for fn, normalized to
// its generic origin. Out-of-module functions become leaf nodes.
func (b *graphBuilder) funcNode(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := b.g.byFn[fn]; ok {
		return n
	}
	n := &Node{
		Fn:   fn,
		Name: funcDisplayName(fn),
		Pos:  b.fset.Position(fn.Pos()),
	}
	b.g.byFn[fn] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// addEdges walks body and records every call and function-value
// reference as an edge out of from. Function literals inside body are
// walked as part of it (closure collapsing).
func (b *graphBuilder) addEdges(pkg *Package, from *Node, body ast.Node) {
	if from == nil {
		return
	}
	info := pkg.TypesInfo
	// Callee expressions already consumed as the Fun of a call, so the
	// reference pass below does not double-count them.
	inCall := make(map[ast.Expr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(e.Fun)
			markConsumed(fun, inCall)
			if fn := calleeOf(info, fun); fn != nil {
				b.edge(from, fn, fun.Pos(), false, false)
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				b.devirtualize(info, from, sel)
			}
		case *ast.Ident:
			if inCall[e] {
				return true
			}
			if fn, ok := info.Uses[e].(*types.Func); ok {
				b.edge(from, fn, e.Pos(), true, false)
			}
		case *ast.SelectorExpr:
			if inCall[e] {
				return true
			}
			// Method value used as a function value: d.NFWrite passed
			// around. Package-qualified references (time.Now) resolve
			// through the Sel identifier on a later visit.
			if s, ok := info.Selections[e]; ok && s.Kind() == types.MethodVal {
				if fn, ok := s.Obj().(*types.Func); ok {
					inCall[e.Sel] = true // avoid a duplicate via Uses[Sel]
					b.edge(from, fn, e.Pos(), true, false)
				}
			}
		}
		return true
	})
}

// markConsumed records the callee expression and the identifiers inside
// it, so the reference pass does not re-count a call's own callee as a
// function-value reference.
func markConsumed(fun ast.Expr, inCall map[ast.Expr]bool) {
	inCall[fun] = true
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		inCall[f.Sel] = true
	case *ast.IndexExpr:
		markConsumed(ast.Unparen(f.X), inCall)
	case *ast.IndexListExpr:
		markConsumed(ast.Unparen(f.X), inCall)
	}
}

// calleeOf resolves the statically-known callee of a call expression:
// a plain function, a package-qualified function, or a method call.
// Conversions, builtins, and calls through variables return nil.
func calleeOf(info *types.Info, fun ast.Expr) *types.Func {
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[f]; ok {
			if s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr {
				fn, _ := s.Obj().(*types.Func)
				return fn
			}
			return nil // field access; a call through it is dynamic
		}
		// Package-qualified: time.Now, engine.Run.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // explicit instantiation: engine.Run[T](...)
		return calleeOf(info, ast.Unparen(f.X))
	case *ast.IndexListExpr:
		return calleeOf(info, ast.Unparen(f.X))
	}
	return nil
}

// devirtualize adds one dynamic edge per concrete module type that
// implements the interface a method call dispatches through.
func (b *graphBuilder) devirtualize(info *types.Info, from *Node, sel *ast.SelectorExpr) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, named := range b.named {
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, fn.Pkg(), fn.Name())
		impl, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		b.edge(from, impl, sel.Pos(), false, true)
	}
}

// edge appends one edge from -> fn at pos.
func (b *graphBuilder) edge(from *Node, fn *types.Func, pos token.Pos, ref, dynamic bool) {
	to := b.funcNode(fn)
	if to == from {
		return // self-recursion adds nothing to reachability
	}
	from.Out = append(from.Out, &CallEdge{
		From: from, To: to,
		Pos:     b.fset.Position(pos),
		Ref:     ref,
		Dynamic: dynamic,
	})
}

// finalize sorts nodes deterministically, dedupes identical edges, and
// fills the reverse-edge lists in that order, so every traversal (and
// therefore every diagnostic path) is stable run to run.
func (g *Graph) finalize() {
	sort.Slice(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i], g.Nodes[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	for _, n := range g.Nodes {
		seen := make(map[[2]any]bool, len(n.Out))
		kept := n.Out[:0]
		for _, e := range n.Out {
			key := [2]any{e.To, e.Pos}
			if seen[key] {
				continue
			}
			seen[key] = true
			kept = append(kept, e)
		}
		n.Out = kept
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			e.To.In = append(e.To.In, e)
		}
	}
}

// displayPkg shortens an import path for diagnostics: the last path
// element ("snic/internal/fleet" -> "fleet", "math/rand" -> "rand").
func displayPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcDisplayName renders a function for call-path diagnostics:
// "time.Now", "engine.Run", "fleet.Manager.Advance".
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = displayPkg(fn.Pkg().Path()) + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv := namedRecvName(sig.Recv().Type()); recv != "" {
			return pkg + recv + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// namedRecvName extracts the receiver's named-type name, or "" for
// interface receivers and other unnamed forms.
func namedRecvName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
