// Package lint is a stdlib-only static-analysis framework that enforces
// the simulator's determinism, isolation, and purity invariants at
// build time. It loads every package in the module with go/parser and
// type-checks it with go/types (no golang.org/x/tools), then runs a
// registry of named checks, each producing position-tagged diagnostics
// with machine-readable check IDs.
//
// Checks come in two shapes. A PackageCheck inspects one package at a
// time (imports, literals, map iteration). A ProgramCheck sees the
// whole loaded program at once through a call graph (callgraph.go) and
// a reachability layer (flow.go), so it can follow an invariant through
// any helper chain; its diagnostics carry the full call path, rendered
// as "fleet.Manager.Advance → engine.Run → time.Now".
//
// The invariants guarded are the ones the reproduction's credibility
// rests on: simulated time never reads the wall clock, all randomness
// flows through sim.DeriveSeed/DeriveRand so golden files are
// byte-identical at any -workers count, NF backing memory is only
// touched through owner-checked entry points, the fleet manager's lock
// discipline holds, devices are built only through the internal/device
// factory, and the module stays pure stdlib.
//
// A finding can be waived at a specific site with a comment:
//
//	//lint:allow <check-id> <reason>
//
// The waiver suppresses exactly the named check on its own line and on
// the line immediately below (so it works both as a trailing comment and
// as a standalone comment above the offending statement). A waiver with
// no reason, naming an unknown check, or suppressing nothing is itself
// a diagnostic — stale allows cannot accumulate.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a check ID, a source position, a
// human-readable message, and — for interprocedural findings — the
// call chain from the nearest entry point to the sink.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
	Path    []string // root → … → sink; empty for syntactic findings
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	if len(d.Path) > 0 {
		fmt.Fprintf(&b, " (path: %s)", strings.Join(d.Path, " → "))
	}
	fmt.Fprintf(&b, " [%s]", d.Check)
	return b.String()
}

// Check is one named invariant. Every check also implements
// PackageCheck or ProgramCheck (or both); the framework dispatches on
// which.
type Check interface {
	Name() string // machine-readable ID, e.g. "transitive-determinism"
	Doc() string  // one-line description for -list output and docs
}

// PackageCheck inspects a single package and returns its findings;
// waiver filtering is applied by the framework, so checks report every
// violation unconditionally.
type PackageCheck interface {
	Check
	Run(p *Pass) []Diagnostic
}

// ProgramCheck inspects the whole loaded program at once, with the
// call graph available through prog.Graph().
type ProgramCheck interface {
	Check
	RunProgram(prog *Program) []Diagnostic
}

// Pass hands one loaded package to a package check.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
}

// Program hands the whole loaded package set to a program check. The
// call graph is built once, on first use, and shared by every check in
// the run.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	graph *Graph
}

// Graph returns the whole-program call graph, building it on first use.
func (prog *Program) Graph() *Graph {
	if prog.graph == nil {
		prog.graph = buildGraph(prog.Fset, prog.Pkgs)
	}
	return prog.graph
}

// diag constructs a Diagnostic for node at its position.
func (p *Pass) diag(check string, node ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Check:   check,
		Pos:     p.Fset.Position(node.Pos()),
		Message: fmt.Sprintf(format, args...),
	}
}

// pkgRef reports whether id refers to the package imported as path.
// When type information is available it resolves the identifier
// properly (alias- and shadowing-aware); otherwise it falls back to
// comparing against the file's local import name.
func (p *Pass) pkgRef(id *ast.Ident, path, localName string) bool {
	if p.Pkg.TypesInfo != nil {
		if obj, ok := p.Pkg.TypesInfo.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pn.Imported().Path() == path
		}
	}
	return localName != "" && id.Name == localName
}

// importLocalName returns the identifier under which f imports path
// ("" if f does not import it). An explicit alias wins; otherwise the
// last path element is assumed (the convention every package in this
// module follows).
func importLocalName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// Registry returns the full check set in stable (sorted) order.
func Registry() []Check {
	checks := []Check{
		MapOrder{},
		Factory{},
		Seed{},
		StdlibOnly{},
		TransDeterminism{},
		IsolationBoundary{},
		LockDiscipline{},
	}
	sort.Slice(checks, func(i, j int) bool { return checks[i].Name() < checks[j].Name() })
	return checks
}

// Select filters the registry down to the named checks. It returns an
// error naming the first unknown ID, so callers can exit with a usage
// error rather than silently running nothing.
func Select(names []string) ([]Check, error) {
	all := Registry()
	byName := make(map[string]Check, len(all))
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []Check
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(all))
			for _, c := range all {
				known = append(known, c.Name())
			}
			return nil, fmt.Errorf("unknown check %q (known: %s)", n, strings.Join(known, ", "))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return all, nil
	}
	return out, nil
}

// Run executes checks over pkgs, applies //lint:allow waivers, validates
// the waivers themselves (including flagging waivers that suppressed
// nothing), and returns the surviving diagnostics sorted by position.
// The returned slice is empty (not nil) on a clean tree so callers can
// len() it without nil checks.
func Run(fset *token.FileSet, pkgs []*Package, checks []Check) []Diagnostic {
	known := make(map[string]bool)
	for _, c := range Registry() {
		known[c.Name()] = true
	}
	running := make(map[string]bool, len(checks))
	for _, c := range checks {
		running[c.Name()] = true
	}

	diags := []Diagnostic{}
	var waivers []*waiver
	for _, pkg := range pkgs {
		pass := &Pass{Fset: fset, Pkg: pkg}
		for _, c := range checks {
			if pc, ok := c.(PackageCheck); ok {
				diags = append(diags, pc.Run(pass)...)
			}
		}
		w, bad := parseWaivers(fset, pkg, known)
		waivers = append(waivers, w...)
		diags = append(diags, bad...)
	}

	prog := &Program{Fset: fset, Pkgs: pkgs}
	for _, c := range checks {
		if pc, ok := c.(ProgramCheck); ok {
			diags = append(diags, pc.RunProgram(prog)...)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if w := coveringWaiver(d, waivers); w != nil {
			w.used = true
		} else {
			kept = append(kept, d)
		}
	}
	// A waiver that suppressed nothing under the checks actually run is
	// stale: either the violation was fixed (delete the comment) or the
	// comment sits on the wrong line (move it).
	for _, w := range waivers {
		if !w.used && !w.test && running[w.check] {
			kept = append(kept, Diagnostic{
				Check: "waiver", Pos: w.pos,
				Message: "waiver for " + quote(w.check) + " suppresses nothing: fix the line or delete the stale allow",
			})
		}
	}
	sortDiagnostics(kept)
	return kept
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// RenderText formats diagnostics one per line, the way compilers do.
// Paths are printed as recorded in the file set; pass trimPrefix to
// shorten them (e.g. the module root plus "/").
func RenderText(ds []Diagnostic, trimPrefix string) string {
	var b strings.Builder
	for _, d := range ds {
		d.Pos.Filename = strings.TrimPrefix(d.Pos.Filename, trimPrefix)
		fmt.Fprintln(&b, d.String())
	}
	return b.String()
}

// RenderJSON formats diagnostics as a JSON array of objects with check,
// file, line, col, message, and (for interprocedural findings) path
// fields.
func RenderJSON(ds []Diagnostic, trimPrefix string) (string, error) {
	type rec struct {
		Check   string   `json:"check"`
		File    string   `json:"file"`
		Line    int      `json:"line"`
		Col     int      `json:"col"`
		Message string   `json:"message"`
		Path    []string `json:"path,omitempty"`
	}
	recs := make([]rec, 0, len(ds))
	for _, d := range ds {
		recs = append(recs, rec{
			Check:   d.Check,
			File:    strings.TrimPrefix(d.Pos.Filename, trimPrefix),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
			Path:    d.Path,
		})
	}
	out, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
