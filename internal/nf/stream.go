package nf

import (
	"snic/internal/cpu"
	"snic/internal/mem"
	"snic/internal/sim"
	"snic/internal/trace"
)

// touch describes one memory reference a packet handler makes.
type touch struct {
	addr  mem.Addr
	store bool
}

// packetCost is the per-packet work an NF's stream generator emits.
type packetCost struct {
	parseInstr uint32  // header parse + bookkeeping compute
	touches    []touch // table/state references
	tailInstr  uint32  // verdict/rewrite compute
}

// costFn computes the cost of one packet given the sampled flow and a
// per-NF scratch RNG.
type costFn func(flow int, payloadLen int, rng *sim.Rand) packetCost

// pktStream converts per-packet costs into a cpu.Stream: for every packet
// it emits a few loads to the packet buffer (headers live in the NF's
// packet region), the NF-specific table touches, and the compute bursts
// around them. This mirrors how the paper's gem5 setup "fed packets
// directly into RAM and rewrote functions to directly access packets in
// memory" (§5.3).
type pktStream struct {
	pool    *trace.Pool
	rng     *sim.Rand
	cost    costFn
	pktBase mem.Addr // packet-buffer region (reused ring)
	pktRing uint64
	pktIdx  uint64

	queue []cpu.Op
	qi    int
}

const pktSlot = 2048 // bytes per packet-buffer slot

func newPktStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr, cost costFn) *pktStream {
	return &pktStream{
		pool:    pool,
		rng:     rng,
		cost:    cost,
		pktBase: base,
		pktRing: 64, // 64-slot RX ring, like a LiquidIO PB of 2 MB/32 KB
	}
}

// refill regenerates the op queue for the next packet. One packet's RNG
// draws happen atomically here, so batch and single-op consumers observe
// the same draw order.
func (s *pktStream) refill() {
	s.queue = s.queue[:0]
	s.qi = 0
	flow := s.pool.NextFlow()
	payloadLen := trace.IMIXLen(s.rng)
	c := s.cost(flow, payloadLen, s.rng)

	// Packet arrival: read the descriptor + first lines of the packet.
	slot := s.pktBase + mem.Addr((s.pktIdx%s.pktRing)*pktSlot)
	s.pktIdx++
	s.queue = append(s.queue,
		cpu.Op{Kind: cpu.Load, Addr: slot},
		cpu.Op{Kind: cpu.Load, Addr: slot + 64},
		cpu.Op{Kind: cpu.Compute, N: c.parseInstr},
	)
	for _, t := range c.touches {
		k := cpu.Load
		if t.store {
			k = cpu.Store
		}
		s.queue = append(s.queue, cpu.Op{Kind: k, Addr: t.addr})
	}
	if c.tailInstr > 0 {
		s.queue = append(s.queue, cpu.Op{Kind: cpu.Compute, N: c.tailInstr})
	}
	// Egress: write the rewritten header back to the packet buffer.
	s.queue = append(s.queue, cpu.Op{Kind: cpu.Store, Addr: slot})
}

// Next implements cpu.Stream.
func (s *pktStream) Next() (cpu.Op, bool) {
	if s.qi >= len(s.queue) {
		s.refill()
	}
	op := s.queue[s.qi]
	s.qi++
	return op, true
}

// NextBatch implements cpu.BatchStream. It hands out at most the rest
// of the current packet: the workload pool is shared between co-located
// streams, so drawing the next packet's flow any earlier than Next would
// (i.e. before the current packet is consumed) would reorder the pool's
// RNG draws across cores and change the simulation. One packet per call
// still amortizes the per-op interface call across the packet's ops.
func (s *pktStream) NextBatch(buf []cpu.Op) int {
	if s.qi >= len(s.queue) {
		s.refill()
	}
	n := copy(buf, s.queue[s.qi:])
	s.qi += n
	return n
}

// flowOffset spreads a flow's state across a region of the given size,
// aligned to cache lines, deterministically per flow.
func flowOffset(flow int, region uint64) uint64 {
	h := uint64(flow+1) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return (h % (region / 64)) * 64
}
