package nf

import (
	"snic/internal/cpu"
	"snic/internal/hashmap"
	"snic/internal/maglev"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// LB is the Maglev software load balancer of §5.1: flows are spread over
// backends with consistent hashing, with a connection table pinning
// in-flight flows to their backend across table rebuilds.
type LB struct {
	arena    *mem.Arena
	table    *maglev.Table
	conns    *hashmap.Map
	backends []uint32 // backend VIP destinations

	// Stats.
	Balanced uint64
}

// NewLB builds a load balancer over the named backends.
func NewLB(backendNames []string) (*LB, error) {
	a := &mem.Arena{}
	chargeImage(a)
	t, err := maglev.New(backendNames, maglev.DefaultTableSize)
	if err != nil {
		return nil, err
	}
	a.Alloc(mem.SegHeap, t.MemoryBytes())
	ips := make([]uint32, len(t.Backends()))
	for i := range ips {
		ips[i] = 0x0A400000 | uint32(i) // 10.64.x.x service pool
	}
	return &LB{arena: a, table: t, conns: hashmap.New(a, 1024), backends: ips}, nil
}

// Name implements NF.
func (l *LB) Name() string { return "LB" }

// Arena implements NF.
func (l *LB) Arena() *mem.Arena { return l.arena }

// Backend returns the backend name a tuple maps to.
func (l *LB) Backend(t pkt.FiveTuple) string {
	return l.table.Lookup(tupleHash(t))
}

func tupleHash(t pkt.FiveTuple) uint64 {
	k := t.Key()
	h := uint64(14695981039346656037)
	for _, b := range k {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Process implements NF: rewrite the destination to the selected backend.
func (l *LB) Process(p *pkt.Packet) Verdict {
	key := hashmap.Key(p.Tuple.Key())
	idx, ok := l.conns.Get(key)
	if !ok {
		idx = uint64(l.table.LookupIndex(tupleHash(p.Tuple)))
		l.conns.Put(key, idx)
	}
	p.Tuple.DstIP = l.backends[idx]
	l.Balanced++
	return Modified
}

// Connections returns the connection-table size.
func (l *LB) Connections() int { return l.conns.Len() }

// WorkingSet implements NF.
func (l *LB) WorkingSet() uint64 {
	return l.table.MemoryBytes() + l.conns.FootprintBytes()
}

// NewStream implements NF: one Maglev slot load plus connection-table
// probe; the Maglev table is small and hot, which is why LB shows the
// least cache sensitivity in Figure 5.
func (l *LB) NewStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr) cpu.Stream {
	tblRegion := l.table.MemoryBytes()
	connRegion := l.conns.FootprintBytes()
	if connRegion < 1<<20 {
		connRegion = 1 << 20
	}
	tblBase := base + mem.Addr(pktSlot*64)
	connBase := tblBase + mem.Addr(tblRegion)
	seen := make(map[int]bool)
	return newPktStream(rng, pool, base, func(flow, payloadLen int, r *sim.Rand) packetCost {
		slot := (tupleHash(pool.Flow(flow)) % (tblRegion / 64)) * 64
		off := flowOffset(flow, connRegion)
		c := packetCost{
			parseInstr: 80,
			touches: []touch{
				{addr: connBase + mem.Addr(off)},
				{addr: tblBase + mem.Addr(slot)},
			},
			tailInstr: 60,
		}
		if !seen[flow] {
			seen[flow] = true
			c.touches = append(c.touches, touch{addr: connBase + mem.Addr(off), store: true})
		}
		return c
	})
}
