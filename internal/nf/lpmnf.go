package nf

import (
	"snic/internal/cpu"
	"snic/internal/lpm"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// LPM is the longest-prefix-match router of §5.1: DIR-24-8 lookups over a
// 16,000-route table generated the way NetBricks does.
type LPM struct {
	arena *mem.Arena
	table *lpm.Table

	// Stats.
	Routed  uint64
	NoRoute uint64
	LastHop uint16
}

// NewLPM builds the router and installs routes.
func NewLPM(routes []trace.Route) (*LPM, error) {
	a := &mem.Arena{}
	chargeImage(a)
	t := lpm.New()
	for _, r := range routes {
		if err := t.Insert(r.Prefix, r.Length, r.NextHop); err != nil {
			return nil, err
		}
	}
	a.Alloc(mem.SegHeap, t.MemoryBytes())
	return &LPM{arena: a, table: t}, nil
}

// Name implements NF.
func (l *LPM) Name() string { return "LPM" }

// Arena implements NF.
func (l *LPM) Arena() *mem.Arena { return l.arena }

// Table exposes the routing table.
func (l *LPM) Table() *lpm.Table { return l.table }

// Process implements NF: look up the destination; drop when unroutable.
func (l *LPM) Process(p *pkt.Packet) Verdict {
	nh, ok := l.table.Lookup(p.Tuple.DstIP)
	if !ok {
		l.NoRoute++
		return Drop
	}
	l.LastHop = nh
	l.Routed++
	// Rewrite the destination MAC toward the next hop, as a router would.
	p.DstMAC = pkt.MAC{0x02, 0x4E, 0x48, 0, byte(nh >> 8), byte(nh)}
	p.TTL--
	return Modified
}

// WorkingSet implements NF. The TBL24 is 64 MB but per-packet touches are
// 1–2 lines addressed by destination IP: a big, cold region.
func (l *LPM) WorkingSet() uint64 { return l.table.MemoryBytes() }

// NewStream implements NF.
func (l *LPM) NewStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr) cpu.Stream {
	region := l.table.MemoryBytes()
	tblBase := base + mem.Addr(pktSlot*64)
	return newPktStream(rng, pool, base, func(flow, payloadLen int, r *sim.Rand) packetCost {
		dst := pool.Flow(flow).DstIP
		// TBL24 index = top 24 bits; 4 B entries.
		off := (uint64(dst>>8) * lpm.EntryBytes) % region
		c := packetCost{
			parseInstr: 80,
			touches:    []touch{{addr: tblBase + mem.Addr(off&^63)}},
			tailInstr:  60,
		}
		if dst&0xFF < 32 { // a fraction of lookups continue into a TBL8 pool
			c.touches = append(c.touches,
				touch{addr: tblBase + mem.Addr((region/2+uint64(dst&0xFF)*64)%region)})
		}
		return c
	})
}
