package nf

import "snic/internal/hashmap"

// MonitorModel tracks the memory trajectory a real Monitor would have —
// image charge, the DPDK staging spike, and hashmap growth including the
// transient old+new resize peaks of Figure 7 — in O(1) state, without
// storing a single flow entry. Full-scale CAIDA replay (26.7 M flows)
// uses it so a shard's entire progress fits in a checkpoint cursor: the
// model's state is four integers, where a real Monitor's would be the
// hash table itself. TestMonitorModelMatchesMonitor pins the model to
// the real NF sample-for-sample at small n.
//
// The one behavioural input per packet is whether the flow is new. The
// growth check mirrors hashmap.Add exactly: it runs before the lookup,
// so even a duplicate flow's packet can trigger a resize at the load
// threshold. The Monitor never deletes, so tombstones stay zero.
type MonitorModel struct {
	heapLive uint64
	heapPeak uint64
	flows    uint64
	capSlots uint64
	resizes  uint64
}

// imageBytes is what chargeImage adds across the text/data/code
// segments; those segments never change after construction, so their
// live and peak values are both this constant.
const imageBytes = textBytes + dataBytes + codeBytes

// stagingBytes mirrors NewMonitor's transient DPDK hugepage staging
// block: allocated, copied, freed — Figure 7's first spike.
const stagingBytes = 24 << 20

// NewMonitorModel replays NewMonitor's construction sequence: image
// charge, staging alloc/free, initial 1024-slot table.
func NewMonitorModel() *MonitorModel {
	m := &MonitorModel{capSlots: 1024}
	m.heapAlloc(stagingBytes)
	m.heapFree(stagingBytes)
	m.heapAlloc(m.capSlots * hashmap.EntrySize)
	return m
}

func (m *MonitorModel) heapAlloc(n uint64) {
	m.heapLive += n
	if m.heapLive > m.heapPeak {
		m.heapPeak = m.heapLive
	}
}

func (m *MonitorModel) heapFree(n uint64) { m.heapLive -= n }

// Observe accounts one Monitor.Process call. newFlow says whether the
// packet's tuple has been seen by this monitor before.
func (m *MonitorModel) Observe(newFlow bool) {
	if float64(m.flows+1) > hashmap.MaxLoad*float64(m.capSlots) {
		// grow(): the doubled table is allocated while the old one is
		// still live, then the old one is released.
		m.heapAlloc(2 * m.capSlots * hashmap.EntrySize)
		m.heapFree(m.capSlots * hashmap.EntrySize)
		m.capSlots *= 2
		m.resizes++
	}
	if newFlow {
		m.flows++
	}
}

// Live returns what Arena.Live would report: image plus current heap.
func (m *MonitorModel) Live() uint64 { return imageBytes + m.heapLive }

// Peak returns what Arena.Peak would report: the image segments never
// shrink, and all churn is in the heap segment, so the sum of
// per-segment peaks is image plus the heap peak.
func (m *MonitorModel) Peak() uint64 { return imageBytes + m.heapPeak }

// Flows returns the distinct flows observed.
func (m *MonitorModel) Flows() uint64 { return m.flows }

// Resizes returns how many table growths have occurred.
func (m *MonitorModel) Resizes() uint64 { return m.resizes }

// MonitorModelState is the model's complete serializable state, small
// enough to ride inside a per-shard checkpoint cursor.
type MonitorModelState struct {
	HeapLive uint64 `json:"heap_live"`
	HeapPeak uint64 `json:"heap_peak"`
	Flows    uint64 `json:"flows"`
	CapSlots uint64 `json:"cap_slots"`
	Resizes  uint64 `json:"resizes"`
}

// State captures the model for checkpointing.
func (m *MonitorModel) State() MonitorModelState {
	return MonitorModelState{
		HeapLive: m.heapLive,
		HeapPeak: m.heapPeak,
		Flows:    m.flows,
		CapSlots: m.capSlots,
		Resizes:  m.resizes,
	}
}

// RestoreMonitorModel rebuilds a model from a captured state; the next
// Observe behaves exactly as it would have on the captured model.
func RestoreMonitorModel(st MonitorModelState) *MonitorModel {
	return &MonitorModel{
		heapLive: st.HeapLive,
		heapPeak: st.HeapPeak,
		flows:    st.Flows,
		capSlots: st.CapSlots,
		resizes:  st.Resizes,
	}
}
