package nf

import (
	"testing"

	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// TestMonitorModelMatchesMonitor pins the analytical model to the real
// NF: driving both with the same mixed new/duplicate flow sequence, the
// model's live and peak bytes must equal the arena's after every single
// packet — including across several resizes and the duplicate-triggered
// grow at the load threshold.
func TestMonitorModelMatchesMonitor(t *testing.T) {
	mon := NewMonitor(nil)
	model := NewMonitorModel()
	if got, want := model.Live(), mon.Arena().Live(); got != want {
		t.Fatalf("initial live: model %d, arena %d", got, want)
	}
	if got, want := model.Peak(), mon.Arena().Peak(); got != want {
		t.Fatalf("initial peak: model %d, arena %d", got, want)
	}

	rng := sim.NewRand(11)
	c := trace.NewCAIDA(rng.Fork(), 1)
	c.AdvanceFlows(9000, 1)
	seen := make(map[pkt.FiveTuple]bool)
	var tuples []pkt.FiveTuple
	for {
		_, p, ok := c.Next()
		if !ok {
			break
		}
		tuples = append(tuples, p.Tuple)
	}
	// Interleave duplicates so the model's newFlow=false path (and the
	// grow-before-lookup edge) gets exercised: every third packet repeats
	// an earlier tuple.
	for i, ft := range tuples {
		if i%3 == 2 {
			ft = tuples[rng.Intn(i)]
		}
		p := pkt.Packet{Tuple: ft}
		mon.Process(&p)
		model.Observe(!seen[ft])
		seen[ft] = true
		if model.Live() != mon.Arena().Live() {
			t.Fatalf("packet %d: live model %d, arena %d", i, model.Live(), mon.Arena().Live())
		}
		if model.Peak() != mon.Arena().Peak() {
			t.Fatalf("packet %d: peak model %d, arena %d", i, model.Peak(), mon.Arena().Peak())
		}
	}
	if int(model.Flows()) != mon.Flows() {
		t.Fatalf("flows: model %d, monitor %d", model.Flows(), mon.Flows())
	}
	if int(model.Resizes()) != mon.counts.Resizes() {
		t.Fatalf("resizes: model %d, map %d", model.Resizes(), mon.counts.Resizes())
	}
	if model.Resizes() == 0 {
		t.Fatal("test never resized; grow paths unexercised")
	}

	// A state round-trip must be transparent: restoring mid-run and
	// continuing yields the same trajectory.
	restored := RestoreMonitorModel(model.State())
	restored.Observe(true)
	model.Observe(true)
	if restored.Live() != model.Live() || restored.Peak() != model.Peak() ||
		restored.Flows() != model.Flows() || restored.Resizes() != model.Resizes() {
		t.Fatal("restored model diverges from original")
	}
}
