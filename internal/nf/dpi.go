package nf

import (
	"snic/internal/ac"
	"snic/internal/cpu"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// DPI is the pattern-matching NF of §5.1: an Aho–Corasick automaton over
// an IDS-style ruleset (the paper uses 33,471 patterns from six open
// rulesets). A payload that matches any pattern is reported (and, in
// blocking mode, dropped).
type DPI struct {
	arena    *mem.Arena
	auto     *ac.Automaton
	blocking bool

	// Stats.
	Scanned  uint64
	Matches  uint64
	Alerts   []ac.Match
	keepLast int
}

// NewDPI compiles patterns into a DPI engine. blocking selects drop-on-
// match (IPS) vs report-only (IDS).
func NewDPI(patterns [][]byte, blocking bool) (*DPI, error) {
	a := &mem.Arena{}
	chargeImage(a)
	auto, err := ac.Compile(patterns)
	if err != nil {
		return nil, err
	}
	a.Alloc(mem.SegHeap, auto.MemoryBytes())
	return &DPI{arena: a, auto: auto, blocking: blocking, keepLast: 1024}, nil
}

// Name implements NF.
func (d *DPI) Name() string { return "DPI" }

// Arena implements NF.
func (d *DPI) Arena() *mem.Arena { return d.arena }

// Automaton exposes the compiled graph (the accelerator model and the
// ruleset-stealing attack demo both need its size/content).
func (d *DPI) Automaton() *ac.Automaton { return d.auto }

// Process implements NF.
func (d *DPI) Process(p *pkt.Packet) Verdict {
	d.Scanned++
	ms := d.auto.Scan(p.Payload, nil)
	if len(ms) == 0 {
		return Pass
	}
	d.Matches += uint64(len(ms))
	if len(d.Alerts) < d.keepLast {
		d.Alerts = append(d.Alerts, ms...)
	}
	if d.blocking {
		return Drop
	}
	return Pass
}

// WorkingSet implements NF.
func (d *DPI) WorkingSet() uint64 { return d.auto.MemoryBytes() }

// NewStream implements NF. Each payload byte walks one graph row; the walk
// is concentrated near the automaton root (shallow states) with a tail of
// deep-state references, which is what makes DPI cache-hungry but not
// uniformly random.
func (d *DPI) NewStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr) cpu.Stream {
	region := d.auto.MemoryBytes()
	if region == 0 {
		region = 64
	}
	graphBase := base + mem.Addr(pktSlot*64)
	// Zipf over graph rows: hot rows = states near the root.
	rows := int(region / 64)
	if rows < 1 {
		rows = 1
	}
	if rows > 1<<16 {
		rows = 1 << 16 // sampling grid; scaled below
	}
	z := sim.NewZipf(rng.Fork(), rows, 1.2)
	scale := (region / 64) / uint64(rows)
	if scale == 0 {
		scale = 1
	}
	return newPktStream(rng, pool, base, func(flow, payloadLen int, r *sim.Rand) packetCost {
		// One graph-row reference per byte scanned; cap the emitted loads
		// and fold the rest into compute (SIMD batches in the crate).
		nloads := payloadLen / 2
		if nloads > 24 {
			nloads = 24
		}
		if nloads < 4 {
			nloads = 4
		}
		c := packetCost{parseInstr: 70, tailInstr: uint32(payloadLen) * 3}
		for i := 0; i < nloads; i++ {
			row := uint64(z.Next()) * scale
			c.touches = append(c.touches, touch{addr: graphBase + mem.Addr(row*64)})
		}
		return c
	})
}
