package nf

import (
	"bytes"
	"sort"

	"snic/internal/cpu"
	"snic/internal/hashmap"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// Monitor is the flow monitor of §5.1: a hash map from 5-tuple to packet
// count. Its memory grows with the number of distinct flows observed,
// which is why it dominates Table 6 (361 MB over a five-minute CAIDA
// window) and why its time series (Figure 7) shows resize spikes.
type Monitor struct {
	arena  *mem.Arena
	counts *hashmap.Map

	// Stats.
	Packets uint64
}

// NewMonitor builds an empty monitor. If samples is non-nil it receives
// the live heap size after every allocation change (Figure 7's series).
func NewMonitor(samples func(live uint64)) *Monitor {
	a := &mem.Arena{Samples: samples}
	chargeImage(a)
	// Model the DPDK hugepage staging the paper observes at startup: a
	// temporary normal-memory block is allocated, copied into hugepages,
	// and freed — the first spike in Figure 7.
	const staging = 24 << 20
	a.Alloc(mem.SegHeap, staging)
	a.Free(mem.SegHeap, staging)
	return &Monitor{arena: a, counts: hashmap.New(a, 1024)}
}

// Name implements NF.
func (m *Monitor) Name() string { return "Mon" }

// Arena implements NF.
func (m *Monitor) Arena() *mem.Arena { return m.arena }

// Process implements NF.
func (m *Monitor) Process(p *pkt.Packet) Verdict {
	m.Packets++
	m.counts.Add(hashmap.Key(p.Tuple.Key()), 1)
	return Pass
}

// Count returns the packet count recorded for a tuple.
func (m *Monitor) Count(t pkt.FiveTuple) uint64 {
	v, _ := m.counts.Get(hashmap.Key(t.Key()))
	return v
}

// Flows returns the number of distinct flows observed.
func (m *Monitor) Flows() int { return m.counts.Len() }

// HeavyHitter is one entry of a TopK report.
type HeavyHitter struct {
	Key   [16]byte
	Count uint64
}

// TopK returns the k heaviest flows (ties broken by key bytes for
// determinism) — the UnivMon-style query a monitor exists to answer.
func (m *Monitor) TopK(k int) []HeavyHitter {
	if k <= 0 {
		return nil
	}
	var all []HeavyHitter
	m.counts.Range(func(key hashmap.Key, v uint64) bool {
		all = append(all, HeavyHitter{Key: key, Count: v})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return bytes.Compare(all[i].Key[:], all[j].Key[:]) < 0
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// WorkingSet implements NF.
func (m *Monitor) WorkingSet() uint64 { return m.counts.FootprintBytes() }

// NewStream implements NF: a counter upsert per packet over a large,
// flow-indexed region.
func (m *Monitor) NewStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr) cpu.Stream {
	region := m.counts.FootprintBytes()
	if region < 1<<20 {
		region = 1 << 20
	}
	tblBase := base + mem.Addr(pktSlot*64)
	return newPktStream(rng, pool, base, func(flow, payloadLen int, r *sim.Rand) packetCost {
		off := flowOffset(flow, region)
		return packetCost{
			parseInstr: 70,
			touches: []touch{
				{addr: tblBase + mem.Addr(off)},
				{addr: tblBase + mem.Addr(off), store: true},
			},
			tailInstr: 50,
		}
	})
}
