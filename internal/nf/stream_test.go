package nf

import (
	"testing"

	"snic/internal/cpu"
	"snic/internal/mem"
	"snic/internal/sim"
	"snic/internal/trace"
)

// TestPktStreamNextBatchMatchesNext drives two identically-seeded
// packet streams — one through Next, one through NextBatch at awkward
// buffer sizes — and demands the exact same op sequence. Each stream
// gets its own pool built from the same seed, because the pool's RNG
// draws are part of the sequence under test: batching must not move a
// packet's flow draw earlier or later than Next would.
func TestPktStreamNextBatchMatchesNext(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			cfg := SuiteConfig{Seed: 7}
			cfg.defaults()
			mkStream := func() cpu.Stream {
				f, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				pool := trace.NewICTF(sim.NewRand(99), 2000)
				return f.NewStream(sim.NewRand(3), pool, mem.Addr(1)<<32)
			}
			ref := mkStream()
			bat, ok := mkStream().(cpu.BatchStream)
			if !ok {
				t.Fatalf("%s stream does not implement cpu.BatchStream", name)
			}
			buf := make([]cpu.Op, 5) // smaller than most packets' op count
			var stash []cpu.Op
			for i := 0; i < 5000; i++ {
				if len(stash) == 0 {
					n := bat.NextBatch(buf)
					if n == 0 {
						t.Fatalf("op %d: NextBatch returned 0 from an infinite stream", i)
					}
					stash = append(stash, buf[:n]...)
				}
				want, ok := ref.Next()
				if !ok {
					t.Fatalf("op %d: Next ended on an infinite stream", i)
				}
				if got := stash[0]; got != want {
					t.Fatalf("%s op %d: batch %+v != next %+v", name, i, got, want)
				}
				stash = stash[1:]
			}
		})
	}
}

// TestPktStreamBatchStopsAtPacketBoundary pins the shared-pool safety
// property the batch path relies on: one NextBatch call never spans a
// packet boundary, so the pool's next flow draw happens no earlier than
// it would under Next.
func TestPktStreamBatchStopsAtPacketBoundary(t *testing.T) {
	cfg := SuiteConfig{Seed: 7}
	cfg.defaults()
	f, err := New("FW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := trace.NewICTF(sim.NewRand(99), 2000)
	s, ok := f.NewStream(sim.NewRand(3), pool, mem.Addr(1)<<32).(*pktStream)
	if !ok {
		t.Fatal("Firewall stream is not a pktStream")
	}
	buf := make([]cpu.Op, 4096) // far larger than any packet's op count
	for i := 0; i < 200; i++ {
		n := s.NextBatch(buf)
		if n == 0 {
			t.Fatal("NextBatch returned 0")
		}
		if s.qi != len(s.queue) {
			t.Fatalf("call %d: batch of %d left %d ops of the packet behind",
				i, n, len(s.queue)-s.qi)
		}
		if n == len(buf) {
			t.Fatalf("call %d: batch filled the whole %d-op buffer: packet boundary ignored", i, n)
		}
	}
}
