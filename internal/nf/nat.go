package nf

import (
	"snic/internal/cpu"
	"snic/internal/hashmap"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// NAT is the MazuNAT-derived network address translator of §5.1: outbound
// flows are rewritten to (externalIP, allocated port); the reverse mapping
// rewrites inbound traffic back. Per the paper, "the cache only records
// the translation results of the first 65,535 flows that can be
// successfully assigned a distinct port number."
type NAT struct {
	arena    *mem.Arena
	external uint32
	out      *hashmap.Map // inside 5-tuple key -> port | lastSeenTick<<16
	back     *hashmap.Map // allocated port -> packed inside (ip, port)
	nextPort uint32
	free     []uint16 // reclaimed ports
	maxFlows int
	tick     uint64 // logical clock, advanced per packet

	// Stats.
	Translated uint64
	Exhausted  uint64
	Expired    uint64
}

// NATMaxFlows is the port-pool bound from the paper.
const NATMaxFlows = 65535

// NewNAT builds a NAT exposing externalIP.
func NewNAT(externalIP uint32) *NAT {
	a := &mem.Arena{}
	chargeImage(a)
	return &NAT{
		arena:    a,
		external: externalIP,
		out:      hashmap.New(a, 1024),
		back:     hashmap.New(a, 1024),
		nextPort: 1024,
		maxFlows: NATMaxFlows,
	}
}

// Name implements NF.
func (n *NAT) Name() string { return "NAT" }

// Arena implements NF.
func (n *NAT) Arena() *mem.Arena { return n.arena }

// Flows returns the number of active translations.
func (n *NAT) Flows() int { return n.out.Len() }

// Process implements NF: outbound packets (anything not addressed to the
// external IP) get source-rewritten; packets addressed to the external IP
// are mapped back to the inside host.
func (n *NAT) Process(p *pkt.Packet) Verdict {
	if p.Tuple.DstIP == n.external {
		// Inbound: dst port carries the allocated external port.
		var k hashmap.Key
		k[0] = byte(p.Tuple.DstPort >> 8)
		k[1] = byte(p.Tuple.DstPort)
		k[2] = 0xB0 // reverse-table tag
		packed, ok := n.back.Get(k)
		if !ok {
			return Drop // no mapping: unsolicited inbound
		}
		p.Tuple.DstIP = uint32(packed >> 16)
		p.Tuple.DstPort = uint16(packed)
		n.Translated++
		return Modified
	}
	n.tick++
	key := hashmap.Key(p.Tuple.Key())
	entry, ok := n.out.Get(key)
	var port uint64
	if ok {
		port = entry & 0xFFFF
	} else {
		switch {
		case len(n.free) > 0:
			port = uint64(n.free[len(n.free)-1])
			n.free = n.free[:len(n.free)-1]
		case n.out.Len() < n.maxFlows && n.nextPort <= 65535:
			port = uint64(n.nextPort)
			n.nextPort++
		default:
			n.Exhausted++
			return Drop
		}
		var rk hashmap.Key
		rk[0] = byte(port >> 8)
		rk[1] = byte(port)
		rk[2] = 0xB0
		n.back.Put(rk, uint64(p.Tuple.SrcIP)<<16|uint64(p.Tuple.SrcPort))
	}
	n.out.Put(key, port|n.tick<<16) // refresh last-seen
	p.Tuple.SrcIP = n.external
	p.Tuple.SrcPort = uint16(port)
	n.Translated++
	return Modified
}

// Expire removes translations idle for more than maxIdle logical ticks,
// reclaiming their external ports. It returns how many flows expired.
// Real MazuNAT ages mappings the same way; the paper's fixed 65,535-flow
// cap is the no-expiry worst case.
func (n *NAT) Expire(maxIdle uint64) int {
	var dead []hashmap.Key
	var ports []uint16
	n.out.Range(func(k hashmap.Key, v uint64) bool {
		last := v >> 16
		if n.tick-last > maxIdle {
			dead = append(dead, k)
			ports = append(ports, uint16(v))
		}
		return true
	})
	for i, k := range dead {
		n.out.Delete(k)
		var rk hashmap.Key
		rk[0] = byte(ports[i] >> 8)
		rk[1] = byte(ports[i])
		rk[2] = 0xB0
		n.back.Delete(rk)
		n.free = append(n.free, ports[i])
	}
	n.Expired += uint64(len(dead))
	return len(dead)
}

// WorkingSet implements NF.
func (n *NAT) WorkingSet() uint64 {
	return n.out.FootprintBytes() + n.back.FootprintBytes()
}

// NewStream implements NF: two map probes (forward + reverse tables) and a
// header rewrite per packet, with insert traffic for new flows.
func (n *NAT) NewStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr) cpu.Stream {
	region := n.WorkingSet()
	if region < 1<<20 {
		region = 1 << 20
	}
	tblBase := base + mem.Addr(pktSlot*64)
	seen := make(map[int]bool)
	return newPktStream(rng, pool, base, func(flow, payloadLen int, r *sim.Rand) packetCost {
		off := flowOffset(flow, region/2)
		roff := flowOffset(flow+1<<20, region/2)
		c := packetCost{
			parseInstr: 90,
			touches: []touch{
				{addr: tblBase + mem.Addr(off)},
				{addr: tblBase + mem.Addr(region/2+roff)},
			},
			tailInstr: 110, // checksum-incremental header rewrite
		}
		if !seen[flow] && len(seen) < n.maxFlows {
			seen[flow] = true
			c.touches = append(c.touches,
				touch{addr: tblBase + mem.Addr(off), store: true},
				touch{addr: tblBase + mem.Addr(region/2+roff), store: true})
			c.tailInstr += 80
		}
		return c
	})
}
