package nf

import (
	"fmt"

	"snic/internal/sim"
	"snic/internal/trace"
)

// SuiteConfig sizes the standard six-NF evaluation suite. Zero values
// select the paper's parameters (§5.1).
type SuiteConfig struct {
	FirewallRules int // default 643 (Emerging Threats)
	DPIPatterns   int // default 33471 (six open rulesets)
	Routes        int // default 16000 (NetBricks)
	Backends      int // default 64
	Seed          uint64
}

func (c *SuiteConfig) defaults() {
	if c.FirewallRules == 0 {
		c.FirewallRules = 643
	}
	if c.DPIPatterns == 0 {
		c.DPIPatterns = 33471
	}
	if c.Routes == 0 {
		c.Routes = 16000
	}
	if c.Backends == 0 {
		c.Backends = 64
	}
	if c.Seed == 0 {
		c.Seed = 0x5EED
	}
}

// TestScale returns a configuration small enough for unit tests while
// preserving every code path.
func TestScale(seed uint64) SuiteConfig {
	return SuiteConfig{FirewallRules: 64, DPIPatterns: 200, Routes: 400, Backends: 8, Seed: seed}
}

// New constructs one NF by table name with the given configuration.
func New(name string, cfg SuiteConfig) (NF, error) {
	cfg.defaults()
	rng := sim.NewRand(cfg.Seed)
	switch name {
	case "FW":
		return NewFirewall(trace.FirewallRules(rng, cfg.FirewallRules)), nil
	case "DPI":
		return NewDPI(trace.DPIPatterns(rng, cfg.DPIPatterns), false)
	case "NAT":
		return NewNAT(0xC6336401), nil // 198.51.100.1
	case "LB":
		return NewLB(trace.Backends(cfg.Backends))
	case "LPM":
		return NewLPM(trace.Routes(rng, cfg.Routes))
	case "Mon":
		return NewMonitor(nil), nil
	}
	return nil, fmt.Errorf("nf: unknown NF %q", name)
}

// Suite builds all six NFs.
func Suite(cfg SuiteConfig) (map[string]NF, error) {
	out := make(map[string]NF, len(Names))
	for _, n := range Names {
		f, err := New(n, cfg)
		if err != nil {
			return nil, err
		}
		out[n] = f
	}
	return out, nil
}
