package nf

import (
	"snic/internal/cpu"
	"snic/internal/hashmap"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// Firewall is the stateful firewall of §5.1: packets are checked against a
// rule list, with recently-decided flows cached in a hash map capped at
// 200,000 entries (the Open vSwitch cached-flow limit the paper cites).
type Firewall struct {
	arena *mem.Arena
	rules []trace.FirewallRule
	cache *hashmap.Map
	// order tracks insertion order for FIFO eviction once the cache is
	// at its limit (Open vSwitch-style bounded flow cache).
	order []hashmap.Key

	// Stats.
	Dropped uint64
	Passed  uint64
	Hits    uint64
	Evicted uint64
}

// FirewallCacheLimit is the cached-flow cap (Open vSwitch's limit).
const FirewallCacheLimit = 200000

// ruleBytes is the modelled in-memory size of one parsed rule.
const ruleBytes = 64

// NewFirewall builds a firewall with the given ruleset (the paper uses
// 643 Emerging-Threats rules).
func NewFirewall(rules []trace.FirewallRule) *Firewall {
	a := &mem.Arena{}
	chargeImage(a)
	a.Alloc(mem.SegHeap, uint64(len(rules))*ruleBytes)
	return &Firewall{
		arena: a,
		rules: rules,
		cache: hashmap.New(a, 1024),
	}
}

// Name implements NF.
func (f *Firewall) Name() string { return "FW" }

// Arena implements NF.
func (f *Firewall) Arena() *mem.Arena { return f.arena }

// Process implements NF.
func (f *Firewall) Process(p *pkt.Packet) Verdict {
	key := hashmap.Key(p.Tuple.Key())
	if v, ok := f.cache.Get(key); ok {
		f.Hits++
		if v == 1 {
			f.Dropped++
			return Drop
		}
		f.Passed++
		return Pass
	}
	verdict := uint64(0)
	for _, r := range f.rules {
		if r.Matches(p.Tuple.SrcIP, p.Tuple.DstIP, p.Tuple.SrcPort, p.Tuple.DstPort, p.Tuple.Proto) {
			if r.Drop {
				verdict = 1
			}
			break
		}
	}
	if f.cache.Len() >= FirewallCacheLimit {
		// Evict the oldest cached decision to admit the new flow.
		old := f.order[0]
		f.order = f.order[1:]
		f.cache.Delete(old)
		f.Evicted++
	}
	f.cache.Put(key, verdict)
	f.order = append(f.order, key)
	if verdict == 1 {
		f.Dropped++
		return Drop
	}
	f.Passed++
	return Pass
}

// CacheLen returns the number of cached flow decisions.
func (f *Firewall) CacheLen() int { return f.cache.Len() }

// WorkingSet implements NF.
func (f *Firewall) WorkingSet() uint64 {
	return f.cache.FootprintBytes() + uint64(len(f.rules))*ruleBytes
}

// NewStream implements NF: cache probes on the hot path, a linear rule
// scan on the (rare, once-per-flow) miss path.
func (f *Firewall) NewStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr) cpu.Stream {
	cacheRegion := f.cache.FootprintBytes()
	if cacheRegion == 0 {
		cacheRegion = 64
	}
	rulesBase := base + mem.Addr(pktSlot*64) + mem.Addr(cacheRegion)
	cacheBase := base + mem.Addr(pktSlot*64)
	seenCap := FirewallCacheLimit
	seen := make(map[int]bool)
	return newPktStream(rng, pool, base, func(flow, payloadLen int, r *sim.Rand) packetCost {
		off := flowOffset(flow, cacheRegion)
		c := packetCost{
			parseInstr: 90,
			touches: []touch{
				{addr: cacheBase + mem.Addr(off)},
				{addr: cacheBase + mem.Addr(off) + 64},
			},
			tailInstr: 60,
		}
		if !seen[flow] && len(seen) < seenCap {
			seen[flow] = true
			// Miss path: scan the ruleset (~643 rules, 64 B each).
			for i := 0; i < len(f.rules)*ruleBytes/64; i += 4 {
				c.touches = append(c.touches, touch{addr: rulesBase + mem.Addr(i*64)})
			}
			c.touches = append(c.touches, touch{addr: cacheBase + mem.Addr(off), store: true})
			c.tailInstr += 200
		}
		return c
	})
}
