package nf

import (
	"testing"

	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

func testPool(seed uint64) *trace.Pool {
	return trace.NewICTF(sim.NewRand(seed), 500)
}

func mkPacket(t pkt.FiveTuple, payload string) pkt.Packet {
	return pkt.Packet{Tuple: t, Payload: []byte(payload), TTL: 64}
}

func TestSuiteBuildsAllSix(t *testing.T) {
	s, err := Suite(TestScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 6 {
		t.Fatalf("suite has %d NFs", len(s))
	}
	for _, name := range Names {
		f, ok := s[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if f.Name() != name {
			t.Fatalf("name mismatch: %s vs %s", f.Name(), name)
		}
		if f.Arena().Peak() == 0 {
			t.Fatalf("%s has no memory profile", name)
		}
		if f.WorkingSet() == 0 {
			t.Fatalf("%s has zero working set", name)
		}
	}
}

func TestUnknownNF(t *testing.T) {
	if _, err := New("bogus", TestScale(1)); err == nil {
		t.Fatal("unknown NF accepted")
	}
	if _, err := PaperProfile("bogus"); err == nil {
		t.Fatal("unknown paper profile accepted")
	}
	if _, err := PaperUsedBytes("bogus"); err == nil {
		t.Fatal("unknown used bytes accepted")
	}
}

func TestPaperProfilesMatchPublishedTotals(t *testing.T) {
	// Table 6's published totals, in MB.
	totals := map[string]float64{
		"FW": 17.20, "DPI": 51.14, "NAT": 43.88, "LB": 13.80, "LPM": 68.33, "Mon": 360.54,
	}
	for name, want := range totals {
		p, err := PaperProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		got := mem.MB(p.Total())
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%s total = %.2f MB, want %.2f", name, got, want)
		}
	}
}

func TestFirewallCachesDecisions(t *testing.T) {
	rng := sim.NewRand(2)
	fw := NewFirewall(trace.FirewallRules(rng, 64))
	p := mkPacket(pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}, "x")
	v1 := fw.Process(&p)
	if fw.CacheLen() != 1 {
		t.Fatalf("cache len = %d", fw.CacheLen())
	}
	v2 := fw.Process(&p)
	if v1 != v2 {
		t.Fatal("cached verdict differs")
	}
	if fw.Hits != 1 {
		t.Fatalf("hits = %d", fw.Hits)
	}
}

func TestFirewallDropsMatchingRule(t *testing.T) {
	rule := trace.FirewallRule{
		SrcIP: 0, SrcMask: 0, DstIP: 0, DstMask: 0,
		SrcPortLo: 0, SrcPortHi: 65535, DstPortLo: 0, DstPortHi: 65535,
		Proto: 0, Drop: true,
	}
	fw := NewFirewall([]trace.FirewallRule{rule})
	p := mkPacket(pkt.FiveTuple{Proto: 6}, "x")
	if v := fw.Process(&p); v != Drop {
		t.Fatalf("verdict = %v", v)
	}
}

func TestFirewallCacheLimit(t *testing.T) {
	fw := NewFirewall(nil)
	// With no rules everything passes; the cache must respect its cap.
	for i := 0; i < 100; i++ {
		p := mkPacket(pkt.FiveTuple{SrcIP: uint32(i), Proto: 6}, "x")
		fw.Process(&p)
	}
	if fw.CacheLen() != 100 {
		t.Fatalf("cache len = %d", fw.CacheLen())
	}
}

func TestDPIDetects(t *testing.T) {
	d, err := NewDPI([][]byte{[]byte("EVIL"), []byte("exploit")}, true)
	if err != nil {
		t.Fatal(err)
	}
	bad := mkPacket(pkt.FiveTuple{Proto: 6}, "contains EVIL bytes")
	good := mkPacket(pkt.FiveTuple{Proto: 6}, "harmless")
	if d.Process(&bad) != Drop {
		t.Fatal("attack passed")
	}
	if d.Process(&good) != Pass {
		t.Fatal("clean packet dropped")
	}
	if d.Matches != 1 || d.Scanned != 2 {
		t.Fatalf("stats: %d matches %d scanned", d.Matches, d.Scanned)
	}
}

func TestDPIReportOnlyMode(t *testing.T) {
	d, _ := NewDPI([][]byte{[]byte("EVIL")}, false)
	bad := mkPacket(pkt.FiveTuple{Proto: 6}, "EVIL")
	if d.Process(&bad) != Pass {
		t.Fatal("IDS mode dropped")
	}
	if len(d.Alerts) != 1 {
		t.Fatalf("alerts = %d", len(d.Alerts))
	}
}

func TestNATTranslatesAndReverses(t *testing.T) {
	n := NewNAT(0xC6336401)
	orig := pkt.FiveTuple{SrcIP: 0x0A000001, DstIP: 0x08080808, SrcPort: 5555, DstPort: 80, Proto: 6}
	p := mkPacket(orig, "x")
	if v := n.Process(&p); v != Modified {
		t.Fatalf("outbound verdict %v", v)
	}
	if p.Tuple.SrcIP != 0xC6336401 || p.Tuple.SrcPort == 5555 {
		t.Fatalf("not translated: %+v", p.Tuple)
	}
	extPort := p.Tuple.SrcPort

	// Reply comes back to (external, extPort).
	reply := mkPacket(pkt.FiveTuple{
		SrcIP: 0x08080808, DstIP: 0xC6336401,
		SrcPort: 80, DstPort: extPort, Proto: 6,
	}, "y")
	if v := n.Process(&reply); v != Modified {
		t.Fatalf("inbound verdict %v", v)
	}
	if reply.Tuple.DstIP != orig.SrcIP || reply.Tuple.DstPort != orig.SrcPort {
		t.Fatalf("reverse translation wrong: %+v", reply.Tuple)
	}
}

func TestNATStableMapping(t *testing.T) {
	n := NewNAT(0xC6336401)
	orig := pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	p1 := mkPacket(orig, "a")
	p2 := mkPacket(orig, "b")
	n.Process(&p1)
	n.Process(&p2)
	if p1.Tuple.SrcPort != p2.Tuple.SrcPort {
		t.Fatal("same flow mapped to different ports")
	}
	if n.Flows() != 1 {
		t.Fatalf("flows = %d", n.Flows())
	}
}

func TestNATDropsUnsolicitedInbound(t *testing.T) {
	n := NewNAT(0xC6336401)
	p := mkPacket(pkt.FiveTuple{SrcIP: 9, DstIP: 0xC6336401, SrcPort: 1, DstPort: 9999, Proto: 6}, "x")
	if v := n.Process(&p); v != Drop {
		t.Fatalf("verdict = %v", v)
	}
}

func TestNATPortExhaustion(t *testing.T) {
	n := NewNAT(0xC6336401)
	n.maxFlows = 3
	for i := 0; i < 5; i++ {
		p := mkPacket(pkt.FiveTuple{SrcIP: uint32(i + 1), DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}, "x")
		n.Process(&p)
	}
	if n.Exhausted != 2 {
		t.Fatalf("exhausted = %d", n.Exhausted)
	}
}

func TestLBStickyAndBalanced(t *testing.T) {
	l, err := NewLB(trace.Backends(8))
	if err != nil {
		t.Fatal(err)
	}
	pool := testPool(3)
	chosen := map[uint32]int{}
	for i := 0; i < pool.NumFlows(); i++ {
		p := mkPacket(pool.Flow(i), "x")
		if l.Process(&p) != Modified {
			t.Fatal("LB did not rewrite")
		}
		first := p.Tuple.DstIP
		chosen[first]++
		// Same flow again must go to the same backend (connection table).
		q := mkPacket(pool.Flow(i), "y")
		l.Process(&q)
		if q.Tuple.DstIP != first {
			t.Fatal("flow not sticky")
		}
	}
	if len(chosen) != 8 {
		t.Fatalf("only %d backends used", len(chosen))
	}
}

func TestLPMRoutesAndDrops(t *testing.T) {
	routes := []trace.Route{{Prefix: 0x0A000000, Length: 8, NextHop: 7}}
	l, err := NewLPM(routes)
	if err != nil {
		t.Fatal(err)
	}
	in := mkPacket(pkt.FiveTuple{SrcIP: 1, DstIP: 0x0A010203, Proto: 6}, "x")
	if v := l.Process(&in); v != Modified {
		t.Fatalf("verdict %v", v)
	}
	if l.LastHop != 7 || in.TTL != 63 {
		t.Fatalf("hop=%d ttl=%d", l.LastHop, in.TTL)
	}
	out := mkPacket(pkt.FiveTuple{SrcIP: 1, DstIP: 0x0B010203, Proto: 6}, "x")
	if v := l.Process(&out); v != Drop {
		t.Fatalf("unroutable verdict %v", v)
	}
}

func TestMonitorCounts(t *testing.T) {
	m := NewMonitor(nil)
	a := pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	b := pkt.FiveTuple{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8, Proto: 17}
	for i := 0; i < 5; i++ {
		p := mkPacket(a, "x")
		m.Process(&p)
	}
	p := mkPacket(b, "y")
	m.Process(&p)
	if m.Count(a) != 5 || m.Count(b) != 1 || m.Flows() != 2 {
		t.Fatalf("counts: %d %d flows %d", m.Count(a), m.Count(b), m.Flows())
	}
}

func TestMonitorMemoryGrowsWithFlows(t *testing.T) {
	var series []uint64
	m := NewMonitor(func(live uint64) { series = append(series, live) })
	base := m.Arena().Live()
	rng := sim.NewRand(4)
	for i := 0; i < 50000; i++ {
		p := mkPacket(pkt.FiveTuple{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), Proto: 6}, "x")
		m.Process(&p)
	}
	if m.Arena().Live() <= base {
		t.Fatal("no growth")
	}
	// The startup staging spike must appear in the series before growth.
	var sawSpike bool
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			sawSpike = true
			break
		}
	}
	if !sawSpike {
		t.Fatal("no transient spike in memory series")
	}
}

func TestStreamsProduceOps(t *testing.T) {
	s, err := Suite(TestScale(5))
	if err != nil {
		t.Fatal(err)
	}
	pool := testPool(6)
	for _, name := range Names {
		st := s[name].NewStream(sim.NewRand(7), pool, mem.Addr(1)<<30)
		loads, stores, computes := 0, 0, 0
		for i := 0; i < 2000; i++ {
			op, ok := st.Next()
			if !ok {
				t.Fatalf("%s stream ended", name)
			}
			switch op.Kind {
			case 1:
				loads++
			case 2:
				stores++
			default:
				computes++
			}
		}
		if loads == 0 || stores == 0 || computes == 0 {
			t.Fatalf("%s op mix: %d/%d/%d", name, loads, stores, computes)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	s1, _ := New("NAT", TestScale(9))
	s2, _ := New("NAT", TestScale(9))
	a := s1.NewStream(sim.NewRand(1), testPool(1), 0)
	b := s2.NewStream(sim.NewRand(1), testPool(1), 0)
	for i := 0; i < 5000; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatalf("streams diverge at op %d", i)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Pass.String() != "pass" || Drop.String() != "drop" || Modified.String() != "modified" {
		t.Fatal("verdict names")
	}
}

func TestFirewallEvictsOldestAtCapacity(t *testing.T) {
	fw := NewFirewall(nil)
	// Shrink the limit via direct fill: exercise eviction with 100 flows
	// over the real cap would be slow, so fill to the cap boundary using
	// the real constant only if small; instead simulate by filling then
	// checking eviction bookkeeping on overflow of a few entries.
	for i := 0; i < FirewallCacheLimit+50; i++ {
		p := mkPacket(pkt.FiveTuple{SrcIP: uint32(i), DstIP: 1, SrcPort: 2, DstPort: 3, Proto: 6}, "x")
		fw.Process(&p)
	}
	if fw.CacheLen() != FirewallCacheLimit {
		t.Fatalf("cache len = %d, want cap %d", fw.CacheLen(), FirewallCacheLimit)
	}
	if fw.Evicted != 50 {
		t.Fatalf("evicted = %d", fw.Evicted)
	}
	// The newest flows are cached; the very first is not.
	oldest := mkPacket(pkt.FiveTuple{SrcIP: 0, DstIP: 1, SrcPort: 2, DstPort: 3, Proto: 6}, "x")
	h := fw.Hits
	fw.Process(&oldest)
	if fw.Hits != h {
		t.Fatal("evicted flow still cached")
	}
}

func TestNATExpireReclaimsPorts(t *testing.T) {
	n := NewNAT(0xC6336401)
	mk := func(i uint32) pkt.Packet {
		return mkPacket(pkt.FiveTuple{SrcIP: i + 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}, "x")
	}
	p1 := mk(1)
	n.Process(&p1)
	port1 := p1.Tuple.SrcPort
	// Lots of later traffic on other flows ages flow 1 out.
	for i := uint32(2); i < 40; i++ {
		p := mk(i)
		n.Process(&p)
	}
	if got := n.Expire(37); got != 1 {
		t.Fatalf("expired %d flows", got)
	}
	// The reclaimed port is reused by the next new flow.
	pNew := mk(999)
	n.Process(&pNew)
	if pNew.Tuple.SrcPort != port1 {
		t.Fatalf("port %d not reclaimed (got %d)", port1, pNew.Tuple.SrcPort)
	}
	// Inbound to the expired mapping is now unsolicited.
	in := mkPacket(pkt.FiveTuple{SrcIP: 2, DstIP: 0xC6336401, SrcPort: 4, DstPort: port1, Proto: 6}, "y")
	// (port1 now maps to flow 999, so this is actually translated there;
	// the point is the OLD flow's mapping is gone.)
	_ = in
	if n.Flows() != 39 { // 38 survivors + flow 999
		t.Fatalf("flows = %d", n.Flows())
	}
}

func TestNATRefreshPreventsExpiry(t *testing.T) {
	n := NewNAT(0xC6336401)
	hot := mkPacket(pkt.FiveTuple{SrcIP: 7, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}, "x")
	n.Process(&hot)
	for i := uint32(0); i < 50; i++ {
		p := mkPacket(pkt.FiveTuple{SrcIP: 100 + i, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}, "x")
		n.Process(&p)
		hot2 := hot
		n.Process(&hot2) // keep the hot flow fresh
	}
	if n.Expire(60) == 0 {
		t.Fatal("nothing expired despite idle flows")
	}
	// The hot flow survived.
	probe := hot
	before := n.Flows()
	n.Process(&probe)
	if n.Flows() != before {
		t.Fatal("hot flow was expired")
	}
}

func TestMonitorTopK(t *testing.T) {
	m := NewMonitor(nil)
	heavy := pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	mid := pkt.FiveTuple{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8, Proto: 6}
	light := pkt.FiveTuple{SrcIP: 9, DstIP: 10, SrcPort: 11, DstPort: 12, Proto: 6}
	for i := 0; i < 10; i++ {
		p := mkPacket(heavy, "x")
		m.Process(&p)
	}
	for i := 0; i < 5; i++ {
		p := mkPacket(mid, "x")
		m.Process(&p)
	}
	p := mkPacket(light, "x")
	m.Process(&p)
	top := m.TopK(2)
	if len(top) != 2 || top[0].Count != 10 || top[1].Count != 5 {
		t.Fatalf("top2 = %+v", top)
	}
	if top[0].Key != heavy.Key() {
		t.Fatal("wrong heavy hitter")
	}
	if m.TopK(0) != nil {
		t.Fatal("TopK(0) should be nil")
	}
	if len(m.TopK(100)) != 3 {
		t.Fatal("TopK over-count")
	}
}
