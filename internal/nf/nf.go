// Package nf implements the six network functions the paper evaluates
// (§5.1): a stateful Firewall, an Aho–Corasick DPI, a MazuNAT-style NAT,
// Google's Maglev load balancer, DIR-24-8 LPM routing, and a per-flow
// Monitor. Each NF has:
//
//   - a real data plane (Process) operating on parsed packets,
//   - deterministic memory accounting through a mem.Arena, so Table 6/8
//     profiles and the Figure 7 time series come from actual structure
//     growth, and
//   - a cpu.Stream generator that turns its per-packet work into the
//     compute/load/store mix the timing simulator (Figure 5) executes.
//
// The four NFs the paper takes from NetBricks (FW, NAT, LB, LPM) follow
// those implementations' structure; DPI and Monitor are, as in the paper,
// our own.
package nf

import (
	"fmt"

	"snic/internal/cpu"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/trace"
)

// Verdict is the outcome of processing one packet.
type Verdict int

// Verdicts.
const (
	Pass     Verdict = iota // forward unchanged
	Drop                    // discard
	Modified                // forward with rewritten headers/payload
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Modified:
		return "modified"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// NF is a deployable network function.
type NF interface {
	// Name is the short name used in the paper's tables (FW, DPI, ...).
	Name() string
	// Process runs the data plane on one packet, possibly mutating it.
	Process(p *pkt.Packet) Verdict
	// Arena exposes the NF's memory accounting.
	Arena() *mem.Arena
	// WorkingSet returns the bytes the data plane actively touches —
	// the quantity that determines cache sensitivity in Figure 5.
	WorkingSet() uint64
	// NewStream builds the instruction stream this NF presents to the
	// timing simulator, with its memory placed at base.
	NewStream(rng *sim.Rand, pool *trace.Pool, base mem.Addr) cpu.Stream
}

// Binary-image segment sizes charged by every NF at construction: the
// paper profiles text/data/code separately from heap (Table 6); these
// model the Rust binary plus runtime libraries. Heap comes from real
// structure growth.
const (
	textBytes = 880 << 10  // ~0.86 MB
	dataBytes = 56 << 10   // ~0.05 MB
	codeBytes = 2550 << 10 // ~2.49 MB of runtime/library code
)

func chargeImage(a *mem.Arena) {
	a.Alloc(mem.SegText, textBytes)
	a.Alloc(mem.SegData, dataBytes)
	a.Alloc(mem.SegCode, codeBytes)
}

// Names lists the six NFs in the paper's table order.
var Names = []string{"FW", "DPI", "NAT", "LB", "LPM", "Mon"}

// PaperProfile returns the published Table 6 memory profile (bytes per
// segment) for an NF name. These exact values feed the TLB sizing tables
// (2 and 5) so those reproduce the paper bit-for-bit; Table 6 additionally
// reports our own measured profiles next to them.
func PaperProfile(name string) (mem.Profile, error) {
	mb := func(v float64) uint64 { return uint64(v * float64(uint64(1)<<20)) }
	switch name {
	case "FW":
		return mem.Profile{Text: mb(0.87), Data: mb(0.08), Code: mb(2.50), Heap: mb(13.75)}, nil
	case "DPI":
		return mem.Profile{Text: mb(1.34), Data: mb(0.56), Code: mb(2.59), Heap: mb(46.65)}, nil
	case "NAT":
		return mem.Profile{Text: mb(0.86), Data: mb(0.05), Code: mb(2.49), Heap: mb(40.48)}, nil
	case "LB":
		return mem.Profile{Text: mb(0.86), Data: mb(0.05), Code: mb(2.49), Heap: mb(10.40)}, nil
	case "LPM":
		return mem.Profile{Text: mb(0.86), Data: mb(0.06), Code: mb(2.51), Heap: mb(64.90)}, nil
	case "Mon":
		return mem.Profile{Text: mb(0.85), Data: mb(0.05), Code: mb(2.48), Heap: mb(357.15)}, nil
	}
	return mem.Profile{}, fmt.Errorf("nf: unknown NF %q", name)
}

// PaperUsedBytes returns the published steady-state ("Mem. used") bytes of
// Table 8 for MUR computation.
func PaperUsedBytes(name string) (uint64, error) {
	mb := func(v float64) uint64 { return uint64(v * float64(uint64(1)<<20)) }
	switch name {
	case "FW":
		return mb(17.20), nil
	case "DPI":
		return mb(51.14), nil
	case "NAT":
		return mb(31.72), nil
	case "LB":
		return mb(4.16), nil
	case "LPM":
		return mb(68.33), nil
	case "Mon":
		return mb(246.31), nil
	}
	return 0, fmt.Errorf("nf: unknown NF %q", name)
}
