package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		n := 1 + r.Intn(100)
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandFloat64Mean(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRandBytes(t *testing.T) {
	r := NewRand(5)
	for _, n := range []int{0, 1, 7, 8, 9, 31, 64, 1000} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 32 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) produced all zeros", n)
			}
		}
	}
}

func TestRandForkIndependence(t *testing.T) {
	parent := NewRand(99)
	child := parent.Fork()
	// The child stream must differ from the parent's subsequent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork stream matches parent %d/64 draws", same)
	}
}

func TestZipfRanks(t *testing.T) {
	z := NewZipf(NewRand(1), 1000, 1.1)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf rank %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must be sampled far more often than rank 999 with s=1.1.
	z := NewZipf(NewRand(2), 1000, 1.1)
	counts := make([]int, 1000)
	const n = 500000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] < 20*counts[99] {
		t.Fatalf("insufficient skew: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// Empirical frequency of rank 0 should be near its analytic probability.
	want := z.Prob(0)
	got := float64(counts[0]) / n
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("rank-0 frequency %v, want ~%v", got, want)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(NewRand(3), 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.15 {
			t.Fatalf("s=0 not uniform: rank %d count %d", i, c)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(NewRand(4), 257, 1.1)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Median != 2 || s.N != 3 || s.Mean != 2 {
		t.Fatalf("bad summary %+v", s)
	}
	if s.P1 > s.Median || s.Median > s.P99 {
		t.Fatalf("percentiles out of order: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 9 {
		t.Fatal("percentile endpoints wrong")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := Percentile(xs, p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{9, 1, 5}
	Summarize(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestDeriveSeedLabelBoundaries(t *testing.T) {
	// ("ab","c") and ("a","bc") concatenate identically; the separator
	// must still distinguish them.
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Fatal("label boundary lost")
	}
	if DeriveSeed(1, "x") == DeriveSeed(1, "x", "") {
		t.Fatal("trailing empty label lost")
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Fatal("base seed ignored")
	}
	if DeriveSeed(1, "x") != DeriveSeed(1, "x") {
		t.Fatal("derivation not stable")
	}
}

func TestDeriveRandStreamsDecorrelated(t *testing.T) {
	// Streams for adjacent job keys must not collide or track each other.
	a := DeriveRand(7, "exp", "job0")
	b := DeriveRand(7, "exp", "job1")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between sibling streams", same)
	}
}

func TestDeriveRandIndependentOfCallOrder(t *testing.T) {
	// Unlike Fork, derivation must not depend on other draws: consuming
	// one stream first cannot move a sibling's stream.
	first := DeriveRand(7, "exp", "a").Uint64()
	burn := DeriveRand(7, "exp", "b")
	for i := 0; i < 100; i++ {
		burn.Uint64()
	}
	if got := DeriveRand(7, "exp", "a").Uint64(); got != first {
		t.Fatalf("stream moved: %x != %x", got, first)
	}
}
