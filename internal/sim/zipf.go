package sim

import "math"

// Zipf samples ranks in [0, N) with probability proportional to
// 1/(rank+1)^s. The paper's ICTF workload pools 100,000 flows with a Zipf
// skewness of 1.1 (§5.3); this sampler reproduces that distribution
// deterministically via an inverted CDF.
type Zipf struct {
	cdf []float64 // cumulative, cdf[len-1] == 1
	rng *Rand
}

// NewZipf builds a sampler over n ranks with exponent s using rng.
// It panics if n <= 0 or s < 0.
func NewZipf(rng *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	if s < 0 {
		panic("sim: Zipf with negative skew")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against FP rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// WithRand returns a sampler that shares z's (immutable) CDF but draws
// from rng. The CDF is the expensive part — O(n) math.Pow calls — so
// memoized workload pools build it once and stamp out per-run samplers
// with this method.
func (z *Zipf) WithRand(rng *Rand) *Zipf { return &Zipf{cdf: z.cdf, rng: rng} }

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sampled rank in [0, N).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
