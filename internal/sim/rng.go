// Package sim provides the deterministic simulation kernel shared by every
// component of the S-NIC model: a seeded random-number generator, a Zipf
// flow-popularity sampler, and order statistics used to report experiment
// results the way the paper does (median with p1/p99 error bars).
//
// Nothing in this package (or anything built on it) consults wall-clock
// time: simulated time is counted in cycles and bytes over calibrated
// rates, so every experiment is exactly reproducible from its seed.
package sim

// Rand is a small, fast, deterministic PRNG (xorshift64* by Vigna).
// It is NOT safe for concurrent use; give each simulated component its own.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped so
// the generator never degenerates to the all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with pseudorandom bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// State returns the generator's internal state so a caller can capture
// the stream position as a plain uint64 (resumable cursors serialize
// it). SetState(State()) restores the stream exactly: the next draw
// after a restore equals the next draw the captured generator would
// have made.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state captured with State. A zero state is
// remapped the same way NewRand remaps a zero seed, so a decoded
// zero-value cursor can never wedge the generator at its fixed point.
func (r *Rand) SetState(state uint64) {
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	r.state = state
}

// ForkSeed draws the seed a Fork call would use, without building the
// child generator. It lets callers capture a fork point as a plain
// uint64 (e.g. to rebuild the identical child stream later) while
// consuming exactly one draw from r, the same as Fork.
func (r *Rand) ForkSeed() uint64 {
	// SplitMix64 step over a fresh draw decorrelates the child stream.
	z := r.Uint64() + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Fork derives an independent generator from r's stream, so components can
// be given decorrelated sub-streams without sharing mutable state.
func (r *Rand) Fork() *Rand { return NewRand(r.ForkSeed()) }

// DeriveSeed hashes a base seed plus a list of labels — conventionally
// (experiment, jobKey) — into a stable 64-bit seed. Unlike Fork, the
// derivation depends only on its inputs, never on how many draws some
// other component made first, so a job scheduled on any worker at any
// time gets exactly the stream a serial run would have given it. The
// labels are FNV-1a-folded with a separator (so ("ab","c") and ("a","bc")
// differ) and finished with the SplitMix64 avalanche so adjacent keys
// ("FW", "FW2") land in decorrelated streams.
func DeriveSeed(base uint64, labels ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(base >> (8 * i)))
		h *= prime64
	}
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= prime64
		}
		h ^= 0xFF // label separator
		h *= prime64
	}
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// DeriveRand returns a generator seeded with DeriveSeed(base, labels...).
func DeriveRand(base uint64, labels ...string) *Rand {
	return NewRand(DeriveSeed(base, labels...))
}
