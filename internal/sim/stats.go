package sim

import (
	"math"
	"sort"
)

// Summary holds the order statistics the paper reports for Figure 5:
// the median with 1st and 99th percentile error bars.
type Summary struct {
	Median float64
	P1     float64
	P99    float64
	Mean   float64
	N      int
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		Median: quantileSorted(s, 0.50),
		P1:     quantileSorted(s, 0.01),
		P99:    quantileSorted(s, 0.99),
		Mean:   sum / float64(len(s)),
		N:      len(s),
	}
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, 0.50)
}

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
