// Package cpu is the programmable-core timing model — the gem5 stand-in.
//
// A Core consumes an abstract instruction stream (compute bursts and
// memory operations) and advances a cycle counter through a two-level
// cache hierarchy and an arbitrated bus to DRAM. The model is deliberately
// simple but captures exactly the effects §5.3 measures:
//
//   - cache partitioning changes the L2 hit rate of a co-located NF
//     (smaller private slice vs. interference-prone shared cache), and
//   - bus arbitration changes the effective DRAM latency (temporal
//     partitioning adds epoch-wait and dead-time stalls).
//
// Out-of-order execution is approximated with a bounded memory-level-
// parallelism (MLP) divisor applied to stall cycles, the standard
// analytic shortcut for OoO cores that always have independent work
// available (true for packet-at-a-time NFs).
//
// Multi-core co-tenancy runs cores in small cycle quanta (Runner), so
// cross-core cache and bus contention interleave in approximately real
// time order.
package cpu

import (
	"fmt"

	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/mem"
)

// OpKind distinguishes instruction classes.
type OpKind uint8

// Instruction classes.
const (
	Compute OpKind = iota // N back-to-back ALU instructions
	Load                  // one load from Addr
	Store                 // one store to Addr
)

// Op is one unit of simulated work.
type Op struct {
	Kind OpKind
	Addr mem.Addr // physical address for Load/Store
	N    uint32   // instruction count for Compute (>=1)
}

// Stream produces the ops a core executes. Implementations must be
// deterministic; the NF models generate streams from seeded traces.
type Stream interface {
	Next() (Op, bool)
}

// BatchStream is the optional bulk fast path: NextBatch fills buf with
// the next ops and returns how many were written (0 means exhausted).
// The ops delivered must be exactly the sequence Next would have
// produced — Core.Run and Runner.RunInstr use batches to amortize the
// per-instruction interface call, and the goldens rely on the two paths
// being indistinguishable.
type BatchStream interface {
	Stream
	NextBatch(buf []Op) int
}

// SliceStream replays a fixed []Op (used by tests and microbenches).
type SliceStream struct {
	Ops []Op
	i   int
}

// Next implements Stream.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.i]
	s.i++
	return op, true
}

// NextBatch implements BatchStream.
func (s *SliceStream) NextBatch(buf []Op) int {
	n := copy(buf, s.Ops[s.i:])
	s.i += n
	return n
}

// Latencies holds the memory-hierarchy timing parameters in core cycles.
// Defaults (DefaultLatencies) follow the Marvell LiquidIO-class part the
// paper models on gem5: 1.2 GHz cores, L1 hit folded into the pipeline,
// ~12-cycle L2, ~70 ns DRAM plus bus occupancy per 64 B line.
type Latencies struct {
	L1Hit   uint64 // cycles per L1 hit (usually pipelined: 1)
	L2Hit   uint64 // additional cycles for an L1-miss/L2-hit
	DRAM    uint64 // DRAM access latency after bus grant
	BusXfer uint64 // bus occupancy per cache-line transfer
	MLP     uint64 // stall divisor approximating out-of-order overlap
}

// DefaultLatencies returns the configuration used by the Figure 5
// experiments.
func DefaultLatencies() Latencies {
	return Latencies{L1Hit: 1, L2Hit: 12, DRAM: 84, BusXfer: 8, MLP: 4}
}

// batchSize is the prefetch depth for BatchStream sources: large enough
// to amortize the interface call, small enough that a core stopping at a
// quantum horizon never holds more than a packet or two of lookahead.
const batchSize = 64

// Core executes a Stream against the hierarchy.
type Core struct {
	// Domain is the security domain (NF index) for cache and bus
	// accounting.
	Domain int
	L1     *cache.Cache // private; may be nil (no L1)
	L2     *cache.Cache // shared or partitioned; may be nil
	Bus    *bus.Tracker // arbitrated path to DRAM; may be nil (fixed DRAM)
	Lat    Latencies

	cycle   uint64
	instret uint64

	// Latency fields hoisted out of the per-access path by prepare()
	// (zero-value defaults are re-derived lazily, so direct Step callers
	// see the same behaviour as Run/RunInstr).
	l1Lat uint64
	mlp   uint64

	// Prefetch stash for BatchStream sources. Unconsumed ops survive
	// across Run/RunInstr calls (warmup then measurement reuse them), so
	// a Core is tied to one stream: handing it a different stream
	// discards any stashed lookahead from the previous one.
	batch []Op
	bi    int
	bn    int
	bsrc  Stream      // stream the stash was filled from
	bs    BatchStream // non-nil when bsrc supports batching
}

// Cycle returns the core's local cycle counter.
func (c *Core) Cycle() uint64 { return c.cycle }

// Instret returns retired instructions.
func (c *Core) Instret() uint64 { return c.instret }

// IPC returns instructions per cycle since the last ResetCounters.
func (c *Core) IPC() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.instret) / float64(c.cycle)
}

// ResetCounters zeroes instret/cycle (after warmup) without disturbing
// microarchitectural state.
func (c *Core) ResetCounters() {
	c.cycle = 0
	c.instret = 0
}

// Step executes a single op, advancing the cycle counter.
func (c *Core) Step(op Op) {
	switch op.Kind {
	case Compute:
		n := uint64(op.N)
		if n == 0 {
			n = 1
		}
		c.cycle += n
		c.instret += n
	case Load, Store:
		c.instret++
		c.cycle += c.access(op.Addr, op.Kind == Store)
	default:
		panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
	}
}

// prepare caches the clamped latency parameters so the per-access path
// stops re-reading (and re-clamping) Lat per instruction. Run and
// RunInstr call it on entry; access self-heals for direct Step callers.
// Callers that mutate Lat between Steps get the refresh on the next
// Run/RunInstr entry.
func (c *Core) prepare() {
	c.l1Lat = c.Lat.L1Hit
	if c.l1Lat == 0 {
		c.l1Lat = 1
	}
	c.mlp = c.Lat.MLP
	if c.mlp == 0 {
		c.mlp = 1
	}
}

// access returns the cycles charged for one memory operation.
func (c *Core) access(pa mem.Addr, write bool) uint64 {
	if c.mlp == 0 {
		c.prepare()
	}
	lat := c.l1Lat
	// The L1 is core-private (never shared across domains), so it is
	// always indexed as domain 0 regardless of which NF owns the core.
	if c.L1 != nil && c.L1.Access(pa, 0, write) {
		return lat
	}
	if c.L2 != nil && c.L2.Access(pa, c.Domain, write) {
		return lat + c.stall(c.Lat.L2Hit)
	}
	// DRAM: acquire the bus, then pay the access latency.
	extra := c.Lat.L2Hit + c.Lat.DRAM
	if c.Bus != nil {
		start := c.Bus.Request(c.Domain, c.cycle, c.Lat.BusXfer)
		extra = (start - c.cycle) + c.Lat.BusXfer + c.Lat.L2Hit + c.Lat.DRAM
	}
	return lat + c.stall(extra)
}

// stall divides a stall through the MLP window.
func (c *Core) stall(cycles uint64) uint64 {
	s := cycles / c.mlp
	if s == 0 && cycles > 0 {
		s = 1
	}
	return s
}

// nextOp yields the next op from s, going through the prefetch stash
// when s supports batching. The delivered sequence is exactly what
// repeated s.Next() calls would return.
func (c *Core) nextOp(s Stream) (Op, bool) {
	if c.bi < c.bn {
		op := c.batch[c.bi]
		c.bi++
		return op, true
	}
	if s != c.bsrc {
		c.bsrc = s
		c.bs, _ = s.(BatchStream)
		c.bi, c.bn = 0, 0
	}
	if c.bs == nil {
		return s.Next()
	}
	if c.batch == nil {
		c.batch = make([]Op, batchSize)
	}
	c.bn = c.bs.NextBatch(c.batch)
	if c.bn == 0 {
		return Op{}, false
	}
	c.bi = 1
	return c.batch[0], true
}

// Run executes up to maxInstr instructions from stream (or until the
// stream ends), returning the instructions actually retired.
func (c *Core) Run(stream Stream, maxInstr uint64) uint64 {
	c.prepare()
	start := c.instret
	for c.instret-start < maxInstr {
		op, ok := c.nextOp(stream)
		if !ok {
			break
		}
		c.Step(op)
	}
	return c.instret - start
}

// Runner interleaves multiple cores in cycle quanta so shared-resource
// contention happens in (approximate) time order.
type Runner struct {
	Cores   []*Core
	Streams []Stream
	Quantum uint64 // cycles per scheduling quantum
}

// RunInstr advances every core until each has retired at least perCore
// instructions (or its stream is exhausted). Cores that finish early stop;
// the rest continue with contention from the still-running cores only,
// mirroring how gem5 region-of-interest runs behave.
func (r *Runner) RunInstr(perCore uint64) {
	if len(r.Cores) != len(r.Streams) {
		panic("cpu: cores/streams length mismatch")
	}
	q := r.Quantum
	if q == 0 {
		q = 200
	}
	targets := make([]uint64, len(r.Cores))
	done := make([]bool, len(r.Cores))
	for i, c := range r.Cores {
		targets[i] = c.Instret() + perCore
		c.prepare()
	}
	for {
		allDone := true
		// The horizon advances to the minimum live core cycle + quantum,
		// so no core races far ahead of the others.
		var minCycle uint64
		first := true
		for i, c := range r.Cores {
			if !done[i] {
				allDone = false
				if first || c.cycle < minCycle {
					minCycle = c.cycle
					first = false
				}
			}
		}
		if allDone {
			return
		}
		horizon := minCycle + q
		for i, c := range r.Cores {
			if done[i] {
				continue
			}
			for c.cycle < horizon && c.instret < targets[i] {
				op, ok := c.nextOp(r.Streams[i])
				if !ok {
					done[i] = true
					break
				}
				c.Step(op)
			}
			if c.instret >= targets[i] {
				done[i] = true
			}
		}
	}
}
