package cpu

import (
	"testing"

	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/mem"
	"snic/internal/sim"
)

func newL2(t *testing.T, policy cache.Policy, domains int, size uint64) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		Name: "L2", Size: size, LineSize: 64, Ways: 16,
		Policy: policy, Domains: domains,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newL1(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		Name: "L1", Size: 32 << 10, LineSize: 64, Ways: 4, Policy: cache.Shared, Domains: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestComputeIPCIsOne(t *testing.T) {
	c := &Core{Lat: DefaultLatencies()}
	c.Step(Op{Kind: Compute, N: 1000})
	if c.IPC() != 1.0 {
		t.Fatalf("compute IPC = %v", c.IPC())
	}
}

func TestComputeZeroNCountsOne(t *testing.T) {
	c := &Core{Lat: DefaultLatencies()}
	c.Step(Op{Kind: Compute, N: 0})
	if c.Instret() != 1 || c.Cycle() != 1 {
		t.Fatalf("instret=%d cycle=%d", c.Instret(), c.Cycle())
	}
}

func TestL1HitFast(t *testing.T) {
	c := &Core{L1: newL1(t), Lat: DefaultLatencies()}
	c.Step(Op{Kind: Load, Addr: 0x1000})
	warmCycles := c.Cycle()
	c.Step(Op{Kind: Load, Addr: 0x1000})
	if c.Cycle()-warmCycles != 1 {
		t.Fatalf("L1 hit cost %d cycles", c.Cycle()-warmCycles)
	}
}

func TestMissCostsMoreThanHit(t *testing.T) {
	lat := DefaultLatencies()
	c := &Core{L1: newL1(t), L2: newL2(t, cache.Shared, 1, 1<<20), Lat: lat}
	c.Step(Op{Kind: Load, Addr: 0x4000}) // cold: L1+L2 miss -> DRAM
	cold := c.Cycle()
	c.ResetCounters()
	c.Step(Op{Kind: Load, Addr: 0x4000}) // L1 hit
	hit := c.Cycle()
	if cold <= hit {
		t.Fatalf("cold %d <= hit %d", cold, hit)
	}
}

func TestBusStallCharged(t *testing.T) {
	lat := DefaultLatencies()
	// Two cores, FIFO bus: core B's DRAM access behind core A's waits.
	tr := bus.NewTracker(bus.NewFIFO(), 2)
	mk := func(domain int) *Core {
		return &Core{Domain: domain, Bus: tr, Lat: lat}
	}
	a, b := mk(0), mk(1)
	a.Step(Op{Kind: Load, Addr: 0})
	b.Step(Op{Kind: Load, Addr: 1 << 20})
	if tr.Stats(1).WaitCycles == 0 {
		t.Fatal("no bus wait recorded for the second requester")
	}
}

func TestMLPReducesStalls(t *testing.T) {
	mkCore := func(mlp uint64) *Core {
		lat := DefaultLatencies()
		lat.MLP = mlp
		return &Core{Lat: lat}
	}
	slow := mkCore(1)
	fast := mkCore(4)
	for i := 0; i < 100; i++ {
		slow.Step(Op{Kind: Load, Addr: mem.Addr(i * 64)})
		fast.Step(Op{Kind: Load, Addr: mem.Addr(i * 64)})
	}
	if fast.Cycle() >= slow.Cycle() {
		t.Fatalf("MLP=4 (%d cycles) not faster than MLP=1 (%d)", fast.Cycle(), slow.Cycle())
	}
}

func TestRunStopsAtMaxInstr(t *testing.T) {
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = Op{Kind: Compute, N: 1}
	}
	c := &Core{Lat: DefaultLatencies()}
	n := c.Run(&SliceStream{Ops: ops}, 40)
	if n != 40 {
		t.Fatalf("ran %d instructions", n)
	}
}

func TestRunStopsAtStreamEnd(t *testing.T) {
	c := &Core{Lat: DefaultLatencies()}
	n := c.Run(&SliceStream{Ops: []Op{{Kind: Compute, N: 5}}}, 1000)
	if n != 5 {
		t.Fatalf("ran %d instructions", n)
	}
}

func TestResetCountersKeepsCacheState(t *testing.T) {
	c := &Core{L1: newL1(t), Lat: DefaultLatencies()}
	c.Step(Op{Kind: Load, Addr: 0x40})
	c.ResetCounters()
	if c.Cycle() != 0 || c.Instret() != 0 {
		t.Fatal("counters not reset")
	}
	c.Step(Op{Kind: Load, Addr: 0x40})
	if c.Cycle() != 1 {
		t.Fatal("warm line lost across ResetCounters")
	}
}

// randStream generates a Zipf-distributed pointer-chase over a working set.
type randStream struct {
	rng  *sim.Rand
	zipf *sim.Zipf
	base mem.Addr
}

func (r *randStream) Next() (Op, bool) {
	if r.rng.Intn(4) == 0 {
		return Op{Kind: Load, Addr: r.base + mem.Addr(r.zipf.Next()*64)}, true
	}
	return Op{Kind: Compute, N: 8}, true
}

func TestRunnerInterleavesFairly(t *testing.T) {
	l2 := newL2(t, cache.Shared, 2, 1<<20)
	tr := bus.NewTracker(bus.NewFIFO(), 2)
	lat := DefaultLatencies()
	rng := sim.NewRand(1)
	mk := func(d int) (*Core, Stream) {
		c := &Core{Domain: d, L1: newL1(t), L2: l2, Bus: tr, Lat: lat}
		s := &randStream{rng: rng.Fork(), zipf: sim.NewZipf(rng.Fork(), 4096, 1.1),
			base: mem.Addr(d) << 30}
		return c, s
	}
	c0, s0 := mk(0)
	c1, s1 := mk(1)
	r := &Runner{Cores: []*Core{c0, c1}, Streams: []Stream{s0, s1}, Quantum: 100}
	r.RunInstr(50000)
	if c0.Instret() < 50000 || c1.Instret() < 50000 {
		t.Fatalf("instret: %d, %d", c0.Instret(), c1.Instret())
	}
	// Both cores ran through comparable time: neither raced ahead by more
	// than ~the cycle cost of its own final quantum.
	d := int64(c0.Cycle()) - int64(c1.Cycle())
	if d < 0 {
		d = -d
	}
	if uint64(d) > c0.Cycle()/2+1000 {
		t.Fatalf("cores diverged: %d vs %d cycles", c0.Cycle(), c1.Cycle())
	}
}

// The effect Figure 5 measures: under a tiny shared L2, partitioning costs
// IPC; under a big L2, the cost shrinks. Here we check the directional
// claim that a cache-hungry stream's IPC drops when its partition halves.
func TestPartitioningCostsIPCWhenCacheTight(t *testing.T) {
	run := func(policy cache.Policy) float64 {
		l2 := newL2(t, policy, 2, 128<<10) // small L2
		lat := DefaultLatencies()
		rng := sim.NewRand(42)
		mk := func(d int, lines int) (*Core, Stream) {
			c := &Core{Domain: d, L2: l2, Lat: lat}
			s := &randStream{rng: rng.Fork(), zipf: sim.NewZipf(rng.Fork(), lines, 0.2),
				base: mem.Addr(d) << 30}
			return c, s
		}
		// Domain 0 needs ~96 KB (fits the shared 128 KB, not a 64 KB
		// half); domain 1 is nearly idle, so under sharing domain 0
		// borrows its space — the borrowing a hard partition forbids.
		c0, s0 := mk(0, 1536)
		c1, s1 := mk(1, 16)
		r := &Runner{Cores: []*Core{c0, c1}, Streams: []Stream{s0, s1}}
		r.RunInstr(20000) // warmup
		c0.ResetCounters()
		c1.ResetCounters()
		r.RunInstr(100000)
		return c0.IPC()
	}
	shared := run(cache.Shared)
	static := run(cache.Static)
	if static >= shared {
		t.Fatalf("static IPC %v >= shared IPC %v under cache pressure", static, shared)
	}
}

func TestRunnerMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Runner{Cores: []*Core{{}}, Streams: nil}).RunInstr(1)
}

func TestRunnerHandlesExhaustedStreams(t *testing.T) {
	// One stream ends early; the other must still reach its target.
	short := &SliceStream{Ops: []Op{{Kind: Compute, N: 10}}}
	long := &SliceStream{Ops: make([]Op, 1000)}
	for i := range long.Ops {
		long.Ops[i] = Op{Kind: Compute, N: 1}
	}
	a := &Core{Lat: DefaultLatencies()}
	b := &Core{Lat: DefaultLatencies()}
	r := &Runner{Cores: []*Core{a, b}, Streams: []Stream{short, long}}
	r.RunInstr(500)
	if a.Instret() != 10 {
		t.Fatalf("short stream ran %d", a.Instret())
	}
	if b.Instret() < 500 {
		t.Fatalf("long stream ran %d", b.Instret())
	}
}

// nextOnly hides a stream's NextBatch so a Core is forced down the
// unbatched path, for batched-vs-unbatched equivalence tests.
type nextOnly struct{ s Stream }

func (n nextOnly) Next() (Op, bool) { return n.s.Next() }

// mixedOps builds a deterministic op sequence touching loads, stores,
// and computes over a working set big enough to miss in L1.
func mixedOps(n int) []Op {
	rng := sim.DeriveRand(0xBA7C, "cpu-batch-equiv")
	ops := make([]Op, n)
	for i := range ops {
		switch rng.Intn(4) {
		case 0:
			ops[i] = Op{Kind: Compute, N: uint32(1 + rng.Intn(8))}
		case 1:
			ops[i] = Op{Kind: Store, Addr: mem.Addr(rng.Uint64() % (256 << 10))}
		default:
			ops[i] = Op{Kind: Load, Addr: mem.Addr(rng.Uint64() % (256 << 10))}
		}
	}
	return ops
}

// TestNextBatchMatchesNext pins the BatchStream contract on SliceStream:
// batched delivery (at any buffer size) is the exact Next sequence.
func TestNextBatchMatchesNext(t *testing.T) {
	ops := mixedOps(500)
	for _, bufSize := range []int{1, 3, 64, 1000} {
		ref := &SliceStream{Ops: ops}
		bat := &SliceStream{Ops: ops}
		buf := make([]Op, bufSize)
		var got []Op
		for {
			n := bat.NextBatch(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		for i := 0; ; i++ {
			op, ok := ref.Next()
			if !ok {
				if i != len(got) {
					t.Fatalf("buf %d: batch delivered %d ops, Next delivered %d", bufSize, len(got), i)
				}
				break
			}
			if i >= len(got) || got[i] != op {
				t.Fatalf("buf %d: op %d diverges", bufSize, i)
			}
		}
	}
}

// TestRunBatchedMatchesUnbatched runs the identical stream through a
// batching Core and a Core whose stream hides NextBatch, across multiple
// Run calls (so the prefetch stash must survive a warmup/measure split),
// asserting identical retired-instruction and cycle counts.
func TestRunBatchedMatchesUnbatched(t *testing.T) {
	ops := mixedOps(4000)
	mk := func() *Core {
		return &Core{L1: newL1(t), L2: newL2(t, cache.Static, 2, 256<<10), Lat: DefaultLatencies()}
	}
	batched, plain := mk(), mk()
	bs, ps := &SliceStream{Ops: ops}, nextOnly{&SliceStream{Ops: ops}}
	// Split the run at an instruction count that lands mid-batch.
	for _, chunk := range []uint64{37, 963, 100000} {
		batched.Run(bs, chunk)
		plain.Run(ps, chunk)
		if batched.Instret() != plain.Instret() || batched.Cycle() != plain.Cycle() {
			t.Fatalf("after chunk %d: batched (instret %d, cycle %d) != plain (instret %d, cycle %d)",
				chunk, batched.Instret(), batched.Cycle(), plain.Instret(), plain.Cycle())
		}
	}
	if bs.i != len(ops) {
		t.Fatalf("consumed %d of %d ops", bs.i, len(ops))
	}
}

// TestRunnerBatchedMatchesUnbatched repeats the equivalence under the
// Runner's quantum-horizon interleaving with a shared L2 and bus, where
// any lookahead-induced reordering across cores would shift cycle
// counts.
func TestRunnerBatchedMatchesUnbatched(t *testing.T) {
	opsA, opsB := mixedOps(3000), mixedOps(3000)
	run := func(batch bool) (uint64, uint64, uint64, uint64) {
		l2 := newL2(t, cache.Shared, 2, 128<<10)
		tr := bus.NewTracker(bus.NewFIFO(), 2)
		lat := DefaultLatencies()
		a := &Core{Domain: 0, L1: newL1(t), L2: l2, Bus: tr, Lat: lat}
		b := &Core{Domain: 1, L1: newL1(t), L2: l2, Bus: tr, Lat: lat}
		var sa, sb Stream = &SliceStream{Ops: opsA}, &SliceStream{Ops: opsB}
		if !batch {
			sa, sb = nextOnly{sa}, nextOnly{sb}
		}
		r := &Runner{Cores: []*Core{a, b}, Streams: []Stream{sa, sb}, Quantum: 100}
		r.RunInstr(1000) // warmup
		a.ResetCounters()
		b.ResetCounters()
		r.RunInstr(1500)
		return a.Instret(), a.Cycle(), b.Instret(), b.Cycle()
	}
	ai, ac, bi, bc := run(true)
	pai, pac, pbi, pbc := run(false)
	if ai != pai || ac != pac || bi != pbi || bc != pbc {
		t.Fatalf("batched (%d,%d,%d,%d) != unbatched (%d,%d,%d,%d)",
			ai, ac, bi, bc, pai, pac, pbi, pbc)
	}
}

// TestStepDoesNotAllocate pins the steady-state Step path (L1+L2+bus
// attached) at zero allocations per instruction.
func TestStepDoesNotAllocate(t *testing.T) {
	c := &Core{
		L1: newL1(t), L2: newL2(t, cache.Static, 2, 128<<10),
		Bus: bus.NewTracker(bus.NewFIFO(), 2), Lat: DefaultLatencies(),
	}
	ops := mixedOps(256)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		c.Step(ops[i%len(ops)])
		i++
	}); avg != 0 {
		t.Errorf("Step allocates %.1f times per call, want 0", avg)
	}
}

// TestRunDoesNotAllocate pins the batched Run path at zero steady-state
// allocations: the prefetch buffer is allocated once on first use and
// reused afterwards.
func TestRunDoesNotAllocate(t *testing.T) {
	c := &Core{L1: newL1(t), L2: newL2(t, cache.Static, 2, 128<<10), Lat: DefaultLatencies()}
	s := &SliceStream{Ops: mixedOps(4096)}
	c.Run(s, 64) // warm the stash buffer
	if avg := testing.AllocsPerRun(100, func() {
		s.i = 0
		c.Run(s, 32)
	}); avg != 0 {
		t.Errorf("Run allocates %.1f times per call, want 0", avg)
	}
}

func TestIPCZeroBeforeRun(t *testing.T) {
	c := &Core{Lat: DefaultLatencies()}
	if c.IPC() != 0 {
		t.Fatal("IPC nonzero before any work")
	}
}

func TestUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op accepted")
		}
	}()
	(&Core{Lat: DefaultLatencies()}).Step(Op{Kind: 99})
}
