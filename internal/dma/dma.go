// Package dma models S-NIC's multi-bank DMA controller (§4.2): one bank
// per programmable core, each with locked TLB entries for the upstream
// (NIC→host) and downstream (host→NIC) directions. "The host should only
// be able to transfer data to a specific on-NIC RAM location that is owned
// by the function; the function should only be able to transfer data to a
// host-sanctioned region in host RAM" — both constraints are enforced
// here, in the style of SR-IOV DMA engines.
package dma

import (
	"fmt"

	"snic/internal/mem"
	"snic/internal/tlb"
)

// HostRegion is a host-sanctioned window of host RAM (the host side pins
// and grants this region when the function is created).
type HostRegion struct {
	buf []byte
}

// NewHostRegion allocates an n-byte sanctioned host window.
func NewHostRegion(n int) *HostRegion { return &HostRegion{buf: make([]byte, n)} }

// Len returns the window size.
func (h *HostRegion) Len() int { return len(h.buf) }

// Bytes exposes the window (host-side software view).
func (h *HostRegion) Bytes() []byte { return h.buf }

// Bank is one per-core DMA engine.
type Bank struct {
	Core int
	// nicTLB maps the device-visible VA space onto the owning NF's NIC
	// DRAM (2 entries per Table 4: packet buffer + instruction queue).
	nicTLB *tlb.Bank
	host   *HostRegion
	owner  mem.Owner
}

// Controller is the multi-bank DMA engine.
type Controller struct {
	banks []*Bank
}

// NewController builds one bank per core.
func NewController(cores int) *Controller {
	c := &Controller{}
	for i := 0; i < cores; i++ {
		c.banks = append(c.banks, &Bank{Core: i, nicTLB: tlb.NewBank(2)})
	}
	return c
}

// Bank returns the bank for a core.
func (c *Controller) Bank(core int) *Bank { return c.banks[core] }

// Bind configures a bank for owner: TLB entries covering the NF's DMA-
// visible NIC memory, plus the host-sanctioned region. The TLB locks
// immediately (nf_launch semantics).
func (b *Bank) Bind(owner mem.Owner, entries []tlb.Entry, host *HostRegion) error {
	if b.owner != mem.Free {
		return fmt.Errorf("dma: bank %d already bound to %d", b.Core, b.owner)
	}
	// Hardware sizes this bank at 2 entries under 2 MB pages (Table 4);
	// the simulator may run with smaller frames, so size to the mapping.
	capEntries := len(entries)
	if capEntries < 2 {
		capEntries = 2
	}
	bank := tlb.NewBank(capEntries)
	for _, e := range entries {
		if err := bank.Install(e); err != nil {
			return err
		}
	}
	bank.Lock()
	b.nicTLB = bank
	b.host = host
	b.owner = owner
	return nil
}

// Unbind clears the bank (nf_teardown semantics).
func (b *Bank) Unbind() {
	b.owner = mem.Free
	b.host = nil
	b.nicTLB = tlb.NewBank(2)
}

// Owner returns the bound NF.
func (b *Bank) Owner() mem.Owner { return b.owner }

// ToHost copies n bytes from the NF's NIC memory at nicVA into the
// sanctioned host window at hostOff.
func (b *Bank) ToHost(pm *mem.Physical, nicVA tlb.VAddr, n int, hostOff int) error {
	if b.owner == mem.Free {
		return fmt.Errorf("dma: bank %d unbound", b.Core)
	}
	if hostOff < 0 || hostOff+n > len(b.host.buf) {
		return fmt.Errorf("dma: host window violation [%d,+%d) of %d", hostOff, n, len(b.host.buf))
	}
	tmp := make([]byte, n)
	off := 0
	for off < n {
		chunk := min(n-off, 1024)
		pa, err := b.nicTLB.Translate(nicVA+tlb.VAddr(off), tlb.PermRead)
		if err != nil {
			return fmt.Errorf("dma: NIC-side fault: %w", err)
		}
		if _, err := b.nicTLB.Translate(nicVA+tlb.VAddr(off+chunk-1), tlb.PermRead); err != nil {
			return fmt.Errorf("dma: NIC-side fault: %w", err)
		}
		if err := pm.Read(pa, tmp[off:off+chunk]); err != nil {
			return err
		}
		off += chunk
	}
	copy(b.host.buf[hostOff:], tmp)
	return nil
}

// FromHost copies n bytes from the sanctioned host window at hostOff into
// the NF's NIC memory at nicVA.
func (b *Bank) FromHost(pm *mem.Physical, hostOff int, n int, nicVA tlb.VAddr) error {
	if b.owner == mem.Free {
		return fmt.Errorf("dma: bank %d unbound", b.Core)
	}
	if hostOff < 0 || hostOff+n > len(b.host.buf) {
		return fmt.Errorf("dma: host window violation [%d,+%d) of %d", hostOff, n, len(b.host.buf))
	}
	off := 0
	for off < n {
		chunk := min(n-off, 1024)
		pa, err := b.nicTLB.Translate(nicVA+tlb.VAddr(off), tlb.PermWrite)
		if err != nil {
			return fmt.Errorf("dma: NIC-side fault: %w", err)
		}
		if _, err := b.nicTLB.Translate(nicVA+tlb.VAddr(off+chunk-1), tlb.PermWrite); err != nil {
			return fmt.Errorf("dma: NIC-side fault: %w", err)
		}
		if err := pm.Write(pa, b.host.buf[hostOff+off:hostOff+off+chunk]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
