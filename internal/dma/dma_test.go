package dma

import (
	"bytes"
	"testing"

	"snic/internal/mem"
	"snic/internal/sim"
	"snic/internal/tlb"
)

const page = 128 << 10

func setup(t *testing.T) (*mem.Physical, *Controller, mem.Range, *HostRegion) {
	t.Helper()
	pm, err := mem.NewPhysical(16<<20, page)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(4)
	r, err := pm.AllocBytes(mem.FirstNF, page)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHostRegion(64 << 10)
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	if err := c.Bank(0).Bind(mem.FirstNF, entries, host); err != nil {
		t.Fatal(err)
	}
	return pm, c, r, host
}

func TestRoundTrip(t *testing.T) {
	pm, c, r, host := setup(t)
	data := make([]byte, 8000)
	sim.NewRand(1).Bytes(data)
	pm.Write(r.Start+100, data)

	b := c.Bank(0)
	if err := b.ToHost(pm, 100, len(data), 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(host.Bytes()[500:500+len(data)], data) {
		t.Fatal("ToHost mismatch")
	}
	// Mutate on host, pull back down.
	host.Bytes()[500] ^= 0xFF
	if err := b.FromHost(pm, 500, len(data), 20000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	pm.Read(r.Start+20000, got)
	if got[0] != data[0]^0xFF || !bytes.Equal(got[1:], data[1:]) {
		t.Fatal("FromHost mismatch")
	}
}

func TestHostWindowEnforced(t *testing.T) {
	pm, c, _, host := setup(t)
	b := c.Bank(0)
	if err := b.ToHost(pm, 0, 128, host.Len()-64); err == nil {
		t.Fatal("host window overrun accepted")
	}
	if err := b.FromHost(pm, -1, 64, 0); err == nil {
		t.Fatal("negative host offset accepted")
	}
}

func TestNICSideTLBEnforced(t *testing.T) {
	pm, c, _, _ := setup(t)
	b := c.Bank(0)
	// VA beyond the single mapped page faults: the host cannot reach
	// arbitrary NIC memory through the function's bank.
	if err := b.FromHost(pm, 0, 64, tlb.VAddr(2*page)); err == nil {
		t.Fatal("out-of-mapping NIC write accepted")
	}
	if err := b.ToHost(pm, tlb.VAddr(2*page), 64, 0); err == nil {
		t.Fatal("out-of-mapping NIC read accepted")
	}
}

func TestUnboundBankRefuses(t *testing.T) {
	pm, c, _, _ := setup(t)
	b := c.Bank(1)
	if err := b.ToHost(pm, 0, 8, 0); err == nil {
		t.Fatal("unbound bank transferred")
	}
}

func TestDoubleBindRejected(t *testing.T) {
	pm, c, r, host := setup(t)
	_ = pm
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	if err := c.Bank(0).Bind(mem.FirstNF+1, entries, host); err == nil {
		t.Fatal("double bind accepted")
	}
}

func TestUnbindThenRebind(t *testing.T) {
	pm, c, r, host := setup(t)
	b := c.Bank(0)
	b.Unbind()
	if b.Owner() != mem.Free {
		t.Fatal("owner not cleared")
	}
	if err := b.ToHost(pm, 0, 8, 0); err == nil {
		t.Fatal("unbound bank still works")
	}
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	if err := b.Bind(mem.FirstNF+2, entries, host); err != nil {
		t.Fatal(err)
	}
	if b.Owner() != mem.FirstNF+2 {
		t.Fatal("rebind failed")
	}
}
