// Package noninterference provides a reusable two-run test harness for
// the property S-NIC's hardware is designed to provide — and that the
// formal-verification work the paper cites (§6) would prove: a victim's
// observable behaviour is identical whether or not an attacker runs.
//
// A Scenario produces the victim's observation trace given an "attacker
// active" flag; Check runs it both ways and reports the first diverging
// observation. The substrate tests (cache, bus, device) instantiate it
// with hit/miss sequences, grant times, and instruction timings.
package noninterference

import "fmt"

// Scenario runs the victim workload and returns its observation trace.
// It is called twice: once with the attacker idle, once active. The
// scenario must build all mutable state inside the call so the two runs
// are independent.
type Scenario func(attackerActive bool) ([]uint64, error)

// Violation describes the first observable difference between runs.
type Violation struct {
	Index int
	Quiet uint64
	Noisy uint64
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("noninterference violated at observation %d: %d (quiet) vs %d (attacked)",
		v.Index, v.Quiet, v.Noisy)
}

// Check runs the scenario twice and compares traces. A nil return means
// the victim could not distinguish the attacker's presence.
func Check(s Scenario) error {
	quiet, err := s(false)
	if err != nil {
		return fmt.Errorf("noninterference: quiet run: %w", err)
	}
	noisy, err := s(true)
	if err != nil {
		return fmt.Errorf("noninterference: attacked run: %w", err)
	}
	if len(quiet) != len(noisy) {
		return fmt.Errorf("noninterference: trace lengths differ: %d vs %d", len(quiet), len(noisy))
	}
	for i := range quiet {
		if quiet[i] != noisy[i] {
			return &Violation{Index: i, Quiet: quiet[i], Noisy: noisy[i]}
		}
	}
	return nil
}

// MustLeak inverts Check for baseline configurations: it returns an
// error if the runs were identical (i.e. the supposedly leaky substrate
// failed to leak, indicating a broken experiment).
func MustLeak(s Scenario) error {
	err := Check(s)
	if err == nil {
		return fmt.Errorf("noninterference: expected a leak but traces were identical")
	}
	if _, ok := err.(*Violation); ok {
		return nil // diverged, as expected for the leaky baseline
	}
	return err // a real failure (scenario error, length mismatch)
}
