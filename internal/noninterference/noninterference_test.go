package noninterference

import (
	"errors"
	"testing"

	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/cpu"
	"snic/internal/mem"
	"snic/internal/sim"
)

func TestCheckDetectsDivergence(t *testing.T) {
	s := func(active bool) ([]uint64, error) {
		if active {
			return []uint64{1, 2, 99}, nil
		}
		return []uint64{1, 2, 3}, nil
	}
	err := Check(s)
	var v *Violation
	if !errors.As(err, &v) || v.Index != 2 || v.Quiet != 3 || v.Noisy != 99 {
		t.Fatalf("err = %v", err)
	}
	if err.Error() == "" {
		t.Fatal("empty violation message")
	}
	if MustLeak(s) != nil {
		t.Fatal("MustLeak rejected a leaking scenario")
	}
}

func TestCheckPassesIdenticalTraces(t *testing.T) {
	s := func(bool) ([]uint64, error) { return []uint64{5, 5, 5}, nil }
	if err := Check(s); err != nil {
		t.Fatal(err)
	}
	if MustLeak(s) == nil {
		t.Fatal("MustLeak accepted a tight scenario")
	}
}

func TestCheckLengthMismatch(t *testing.T) {
	s := func(active bool) ([]uint64, error) {
		if active {
			return []uint64{1}, nil
		}
		return []uint64{1, 2}, nil
	}
	if err := Check(s); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// cacheScenario: victim hit/miss trace on a given policy with a thrashing
// co-tenant.
func cacheScenario(policy cache.Policy) Scenario {
	return func(attackerActive bool) ([]uint64, error) {
		l2, err := cache.New(cache.Config{
			Name: "L2", Size: 64 << 10, LineSize: 64, Ways: 8,
			Policy: policy, Domains: 2,
		})
		if err != nil {
			return nil, err
		}
		victim := sim.NewRand(3)
		attacker := sim.NewRand(4)
		var trace []uint64
		for i := 0; i < 3000; i++ {
			if attackerActive {
				for j := 0; j < 2; j++ {
					l2.Access(mem.Addr(attacker.Intn(1<<22))&^63, 1, false)
				}
			}
			if l2.Access(mem.Addr(victim.Intn(1<<15))&^63, 0, false) {
				trace = append(trace, 1)
			} else {
				trace = append(trace, 0)
			}
		}
		return trace, nil
	}
}

func TestCachePolicyNoninterference(t *testing.T) {
	if err := Check(cacheScenario(cache.Static)); err != nil {
		t.Fatalf("static partition leaks: %v", err)
	}
	if err := MustLeak(cacheScenario(cache.Shared)); err != nil {
		t.Fatalf("shared cache: %v", err)
	}
}

// busScenario: victim grant times under each arbiter with a flooding
// attacker.
func busScenario(mk func() bus.Arbiter) Scenario {
	return func(attackerActive bool) ([]uint64, error) {
		arb := mk()
		var grants []uint64
		anow := uint64(0)
		vnow := uint64(0)
		for i := 0; i < 400; i++ {
			if attackerActive {
				for j := 0; j < 3; j++ {
					anow = arb.Request(1, anow, 8) + 8
				}
			}
			g := arb.Request(0, vnow, 8)
			grants = append(grants, g)
			vnow = g + 24
		}
		return grants, nil
	}
}

func TestBusArbiterNoninterference(t *testing.T) {
	if err := Check(busScenario(func() bus.Arbiter { return bus.NewTemporal(2, 60, 10) })); err != nil {
		t.Fatalf("temporal partitioning leaks: %v", err)
	}
	if err := MustLeak(busScenario(func() bus.Arbiter { return bus.NewFIFO() })); err != nil {
		t.Fatalf("FIFO: %v", err)
	}
	if err := MustLeak(busScenario(func() bus.Arbiter { return bus.NewRoundRobin(2, 512) })); err != nil {
		t.Fatalf("round-robin: %v", err)
	}
}

// coreScenario: end-to-end — a victim core's per-packet cycle timings
// through the full S-NIC hierarchy (private L1, partitioned L2, temporal
// bus) with an attacker core pounding the same shared structures.
func coreScenario(snicMode bool) Scenario {
	return func(attackerActive bool) ([]uint64, error) {
		policy := cache.Shared
		var arb bus.Arbiter = bus.NewFIFO()
		if snicMode {
			policy = cache.Static
			arb = bus.NewTemporal(2, 60, 10)
		}
		l2, err := cache.New(cache.Config{
			Name: "L2", Size: 128 << 10, LineSize: 64, Ways: 8,
			Policy: policy, Domains: 2,
		})
		if err != nil {
			return nil, err
		}
		tr := bus.NewTracker(arb, 2)
		mkCore := func(domain int) (*cpu.Core, error) {
			l1, err := cache.New(cache.Config{
				Name: "L1", Size: 8 << 10, LineSize: 64, Ways: 2, Domains: 1,
			})
			if err != nil {
				return nil, err
			}
			return &cpu.Core{Domain: domain, L1: l1, L2: l2, Bus: tr, Lat: cpu.DefaultLatencies()}, nil
		}
		victim, err := mkCore(0)
		if err != nil {
			return nil, err
		}
		attacker, err := mkCore(1)
		if err != nil {
			return nil, err
		}
		vrng := sim.NewRand(7)
		arng := sim.NewRand(8)
		var perPacket []uint64
		for p := 0; p < 300; p++ {
			if attackerActive {
				for j := 0; j < 20; j++ {
					attacker.Step(cpu.Op{Kind: cpu.Load, Addr: mem.Addr(arng.Intn(1<<24)) &^ 63})
				}
			}
			start := victim.Cycle()
			for j := 0; j < 10; j++ {
				victim.Step(cpu.Op{Kind: cpu.Load, Addr: mem.Addr(vrng.Intn(1<<16)) &^ 63})
				victim.Step(cpu.Op{Kind: cpu.Compute, N: 20})
			}
			perPacket = append(perPacket, victim.Cycle()-start)
		}
		return perPacket, nil
	}
}

func TestFullHierarchyNoninterference(t *testing.T) {
	if err := Check(coreScenario(true)); err != nil {
		t.Fatalf("S-NIC hierarchy leaks per-packet timing: %v", err)
	}
	if err := MustLeak(coreScenario(false)); err != nil {
		t.Fatalf("commodity hierarchy: %v", err)
	}
}
