package host

import (
	"testing"

	"snic/internal/attest"
	"snic/internal/snic"
)

func machine(t *testing.T) (*Machine, *attest.Vendor) {
	t.Helper()
	v, err := attest.NewVendor("V", nil)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := snic.New(snic.Config{Cores: 4, MemBytes: 32 << 20}, v)
	if err != nil {
		t.Fatal(err)
	}
	return NewMachine(dev), v
}

func upload() Upload {
	return NewUpload("fw", []byte("firewall image v1"), snic.LaunchSpec{
		CoreMask: 0b01, MemBytes: 1 << 20, DMACore: -1,
	})
}

func TestDeployHonestPath(t *testing.T) {
	m, vend := machine(t)
	u := upload()
	m.Stage(u)
	id, rep, err := m.Deploy(u)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMS() <= 0 {
		t.Fatal("no launch latency")
	}
	// The developer attests and verifies the launch hash covers the image
	// they uploaded: recompute the expected hash the way nf_launch does.
	nonce := []byte("dev-nonce")
	q, _, _, err := m.NIC.AttestNF(id, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.Verify(vend.PublicKey(), q, m.NIC.NF(id).Hash, nonce); err != nil {
		t.Fatal(err)
	}
	// Honest staging: image in NIC RAM equals the upload.
	got := make([]byte, len(u.Image))
	if err := m.NIC.NFRead(id, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(u.Image) {
		t.Fatalf("staged image mismatch: %q", got)
	}
}

func TestDeployUnstagedFails(t *testing.T) {
	m, _ := machine(t)
	if _, _, err := m.Deploy(upload()); err == nil {
		t.Fatal("deploy of unstaged image accepted")
	}
}

func TestCorruptHostOSIsDetectedByAttestation(t *testing.T) {
	honest, _ := machine(t)
	u := upload()
	honest.Stage(u)
	idH, _, err := honest.Deploy(u)
	if err != nil {
		t.Fatal(err)
	}
	expectedHash := honest.NIC.NF(idH).Hash

	evil, vend := machine(t)
	evil.Corrupt = true
	evil.Stage(u)
	idE, _, err := evil.Deploy(u)
	if err != nil {
		t.Fatal(err)
	}
	// The corrupted deployment launches fine — but its quote can never
	// verify against the hash of the developer's real function.
	nonce := []byte("n")
	q, _, _, err := evil.NIC.AttestNF(idE, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.Verify(vend.PublicKey(), q, expectedHash, nonce); err == nil {
		t.Fatal("verifier accepted a corrupted image")
	}
}

func TestHostWindow(t *testing.T) {
	m, _ := machine(t)
	u := upload()
	m.Stage(u)
	w, err := m.HostWindowFor(u, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != len(u.Image)+4096 {
		t.Fatalf("window len = %d", w.Len())
	}
	if string(w.Bytes()[:len(u.Image)]) != string(u.Image) {
		t.Fatal("window not pre-filled")
	}
	if _, err := m.HostWindowFor(NewUpload("ghost", nil, snic.LaunchSpec{}), 0); err == nil {
		t.Fatal("window for unstaged upload")
	}
}

func TestExpectedDigestTracksStaging(t *testing.T) {
	m, _ := machine(t)
	u := upload()
	m.Stage(u)
	if m.ExpectedDigest(u) != u.ImageDigest {
		t.Fatal("honest staging changed the digest")
	}
	m2, _ := machine(t)
	m2.Corrupt = true
	m2.Stage(u)
	if m2.ExpectedDigest(u) == u.ImageDigest {
		t.Fatal("corrupt staging kept the digest")
	}
}
