// Package host models the machine the S-NIC is plugged into, completing
// the §4.1 launch path: "a remote developer first uploads the function's
// initial code and data to the RAM of a datacenter host... The on-NIC OS
// uses DMA to transfer the initial function state from host RAM to on-NIC
// RAM," after which the NIC OS invokes nf_launch.
//
// The host OS is untrusted (same trust class as the NIC OS): it can stage
// the wrong image or corrupt it in host RAM — and remote attestation is
// what catches that, which the tests demonstrate end to end.
package host

import (
	"crypto/sha256"
	"fmt"

	"snic/internal/dma"
	"snic/internal/nicos"
	"snic/internal/pagealloc"
	"snic/internal/snic"
)

// Upload is a developer's staged function: image bytes plus the resource
// request and the measurement the developer expects attestation to show.
type Upload struct {
	Name        string
	Image       []byte
	Spec        snic.LaunchSpec // Image field is filled by staging
	ImageDigest [32]byte        // developer-computed, carried out of band
}

// NewUpload packages an image and spec, computing the digest the
// developer will later demand from attestation.
func NewUpload(name string, image []byte, spec snic.LaunchSpec) Upload {
	return Upload{
		Name:        name,
		Image:       append([]byte(nil), image...),
		Spec:        spec,
		ImageDigest: sha256.Sum256(image),
	}
}

// Machine is one server: host RAM regions plus the attached S-NIC and its
// management OS.
type Machine struct {
	NIC *snic.Device
	OS  *nicos.OS
	// staged holds uploads the host OS has accepted into host RAM.
	staged map[string][]byte
	// Corrupt, when set, makes the (untrusted) host OS flip a byte of
	// every staged image — the mis-staging scenario attestation detects.
	Corrupt bool
}

// NewMachine attaches dev to a fresh host.
func NewMachine(dev *snic.Device) *Machine {
	return &Machine{
		NIC:    dev,
		OS:     nicos.New(dev),
		staged: make(map[string][]byte),
	}
}

// Stage accepts a developer upload into host RAM.
func (m *Machine) Stage(u Upload) {
	img := append([]byte(nil), u.Image...)
	if m.Corrupt && len(img) > 0 {
		img[0] ^= 0xFF
	}
	m.staged[u.Name] = img
}

// Deploy runs the full §4.1 flow for a previously staged upload: the NIC
// OS pulls the image from host RAM over a DMA bank into NIC-visible
// memory, then invokes NF_create. It returns the function id and launch
// report.
func (m *Machine) Deploy(u Upload) (snic.ID, snic.LaunchReport, error) {
	img, ok := m.staged[u.Name]
	if !ok {
		return 0, snic.LaunchReport{}, fmt.Errorf("host: %q not staged", u.Name)
	}
	spec := u.Spec
	// The DMA transfer happens via the host window attached to the spec:
	// the staged bytes are what actually reach NIC RAM.
	spec.Image = img
	if spec.DMAWindow == nil {
		spec.DMACore = -1
	}
	if len(spec.PageSet) == 0 {
		spec.PageSet = pagealloc.PageSet{128 << 10}
	}
	return m.OS.NFCreate(u.Name, spec)
}

// HostWindowFor builds a host-sanctioned DMA window pre-filled with the
// staged image, for functions that also want runtime host transfers.
func (m *Machine) HostWindowFor(u Upload, extra int) (*dma.HostRegion, error) {
	img, ok := m.staged[u.Name]
	if !ok {
		return nil, fmt.Errorf("host: %q not staged", u.Name)
	}
	w := dma.NewHostRegion(len(img) + extra)
	copy(w.Bytes(), img)
	return w, nil
}

// ExpectedDigest recomputes what the launched image digest should be if
// the host staged honestly (for verifier-side checks in tests).
func (m *Machine) ExpectedDigest(u Upload) [32]byte {
	return sha256.Sum256(m.staged[u.Name])
}
