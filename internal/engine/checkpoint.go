package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// CheckpointVersion is stamped into every checkpoint file; LoadCheckpoint
// rejects other versions rather than guessing at migration.
const CheckpointVersion = 1

// ShardState is one shard's saved progress inside a Checkpoint. Until
// the shard finishes, Cursor holds the generator position its next run
// resumes from and Partial an optional caller-defined aggregate; once
// Done, Result holds the shard's final value and RunSharded skips the
// shard entirely on resume.
type ShardState struct {
	Index   int             `json:"index"`
	Done    bool            `json:"done"`
	Cursor  json.RawMessage `json:"cursor,omitempty"`
	Partial json.RawMessage `json:"partial,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// Checkpoint is the resumable state of one sharded sweep point: a
// versioned, JSON-serializable record of which shards are done (with
// their results) and where the unfinished ones left off (their stream
// cursors). The identity fields pin the checkpoint to one (experiment,
// key, seed, shard count) — resuming under any other configuration is an
// error, because the derived RNG streams would not match.
//
// All mutating methods are safe for concurrent use by the shard jobs of
// a single RunSharded call. When an autosave path is set, every save
// atomically rewrites the file (temp file + rename), so a killed process
// leaves either the previous or the new checkpoint, never a torn one.
type Checkpoint struct {
	Version    int          `json:"version"`
	Experiment string       `json:"experiment"`
	Key        string       `json:"key"`
	Seed       uint64       `json:"seed"`
	Shards     []ShardState `json:"shards"`

	mu   sync.Mutex
	path string // autosave target; empty = in-memory only
}

// NewCheckpoint creates an empty checkpoint for a sweep point with the
// given identity and shard count.
func NewCheckpoint(experiment, key string, seed uint64, shards int) *Checkpoint {
	ck := &Checkpoint{
		Version:    CheckpointVersion,
		Experiment: experiment,
		Key:        key,
		Seed:       seed,
		Shards:     make([]ShardState, shards),
	}
	for i := range ck.Shards {
		ck.Shards[i].Index = i
	}
	return ck
}

// LoadCheckpoint reads a checkpoint file written by WriteFile (or an
// autosave) and arms autosaving back to the same path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: load checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("engine: load checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("engine: checkpoint %s: version %d, want %d",
			path, ck.Version, CheckpointVersion)
	}
	ck.path = path
	return ck, nil
}

// LoadOrCreateCheckpoint resumes from path if a checkpoint exists there
// (validating it matches the requested identity) and otherwise creates a
// fresh one that will autosave to path.
func LoadOrCreateCheckpoint(path, experiment, key string, seed uint64, shards int) (*Checkpoint, error) {
	ck, err := LoadCheckpoint(path)
	if errors.Is(err, fs.ErrNotExist) {
		ck = NewCheckpoint(experiment, key, seed, shards)
		ck.path = path
		return ck, nil
	}
	if err != nil {
		return nil, err
	}
	if err := ck.compatible(experiment, key, seed, shards); err != nil {
		return nil, fmt.Errorf("engine: checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// Autosave arms (or, with an empty path, disarms) persistence: every
// subsequent save/finish atomically rewrites the file.
func (c *Checkpoint) Autosave(path string) {
	c.mu.Lock()
	c.path = path
	c.mu.Unlock()
}

// Done reports whether every shard has a final result.
func (c *Checkpoint) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.Shards {
		if !c.Shards[i].Done {
			return false
		}
	}
	return true
}

// WriteFile atomically persists the checkpoint to path.
func (c *Checkpoint) WriteFile(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeLocked(path)
}

func (c *Checkpoint) compatible(experiment, key string, seed uint64, shards int) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("checkpoint version %d, want %d", c.Version, CheckpointVersion)
	}
	if c.Experiment != experiment || c.Key != key {
		return fmt.Errorf("checkpoint is for %s/%s, want %s/%s",
			c.Experiment, c.Key, experiment, key)
	}
	if c.Seed != seed {
		return fmt.Errorf("checkpoint seed %d, want %d", c.Seed, seed)
	}
	if len(c.Shards) != shards {
		return fmt.Errorf("checkpoint has %d shards, want %d", len(c.Shards), shards)
	}
	return nil
}

func (c *Checkpoint) cursor(i int) json.RawMessage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Shards[i].Cursor
}

func (c *Checkpoint) result(i int) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Shards[i].Result, c.Shards[i].Done
}

func (c *Checkpoint) save(i int, cursor, partial any) error {
	craw, err := json.Marshal(cursor)
	if err != nil {
		return fmt.Errorf("engine: shard %d cursor: %w", i, err)
	}
	var praw json.RawMessage
	if partial != nil {
		if praw, err = json.Marshal(partial); err != nil {
			return fmt.Errorf("engine: shard %d partial: %w", i, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Shards[i].Cursor = craw
	c.Shards[i].Partial = praw
	return c.persistLocked()
}

func (c *Checkpoint) finish(i int, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("engine: shard %d result: %w", i, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Shards[i].Done = true
	c.Shards[i].Result = raw
	c.Shards[i].Cursor = nil
	c.Shards[i].Partial = nil
	return c.persistLocked()
}

func (c *Checkpoint) persistLocked() error {
	if c.path == "" {
		return nil
	}
	return c.writeLocked(c.path)
}

func (c *Checkpoint) writeLocked(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("engine: marshal checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("engine: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("engine: write checkpoint: %w", err)
	}
	return nil
}
