// Package engine executes experiment jobs on a bounded worker pool with
// deterministic seeding and deterministic result order.
//
// Every table and figure in the paper's evaluation decomposes into
// independent configuration points (one per NF, per cache size, per
// tenant count, ...). The engine runs those points concurrently while
// guaranteeing the merged output is bit-identical to a serial run:
//
//   - each job draws randomness only from a sim.Rand seeded by
//     sim.DeriveSeed(seed, job.Experiment, job.Key) — a pure function of
//     the job's identity, never of scheduling order, and
//   - results are merged back in job-index order, regardless of which
//     worker finished first.
//
// The engine also records per-job timing so `snicbench -v` can report
// progress and the slowest configuration points of a sweep. Wall-clock
// time appears only in these observability metrics, never in results —
// the simulation kernel itself stays clock-free. All timing flows
// through an obs.Wall collector: defaultWall below is the module's
// single sanctioned wall-clock site, and tests inject fakes via
// Config.Wall.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snic/internal/obs"
	"snic/internal/sim"
)

// defaultWall is the simulation path's only wall-clock source. Every
// JobStat.Duration and Metrics.Wall reading comes from here (or a
// test-injected Config.Wall); none of it ever reaches experiment
// results, metric dumps, or trace files.
//
//lint:allow transitive-determinism the single sanctioned wall-clock site; readings feed only -v observability, never results
var defaultWall = obs.NewWall(time.Now)

// DefaultWall exposes the sanctioned wall-clock collector so tools can
// build live-telemetry collectors (obs.NewProgress) without opening a
// second time.Now site. The readings stay quarantined: progress
// consumers are outside the simulation path by the same lint rule that
// guards defaultWall itself.
func DefaultWall() *obs.Wall { return defaultWall }

// Job is one independent unit of an experiment sweep. Run must be
// self-contained: it may share read-only calibration data with other
// jobs, but every piece of mutable state (NF instances, packet pools,
// devices, arenas) must be created inside Run. The rng passed to Run is
// derived from (Experiment, Key) and owned exclusively by this job.
type Job[T any] struct {
	Experiment string // sweep name, e.g. "fig5a"
	Key        string // stable point identity, e.g. "4MB/FW"
	Run        func(rng *sim.Rand) (T, error)
}

// Config controls one engine run.
type Config struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS. The pool
	// never exceeds the job count.
	Workers int
	// Seed is the base seed mixed into every job's derived stream.
	Seed uint64
	// OnJob, if set, is called after each job completes. Calls are
	// serialized by the engine but arrive in completion order, not job
	// order.
	OnJob func(JobStat)
	// Wall, if set, replaces the default wall-clock collector that times
	// jobs and the sweep (tests inject deterministic fakes).
	Wall *obs.Wall
	// Progress, if set, receives live run telemetry: Begin at sweep
	// start, JobDone per job, and — for sharded sweeps — per-shard
	// stream positions and checkpoint saves. Publishing is write-only
	// from here; nothing the engine computes reads it back.
	Progress *obs.Progress
	// ProgressTarget is the expected total item count (packets for a
	// replay) handed to Progress.Begin so watchers get percentages and
	// an ETA. Zero means unknown.
	ProgressTarget uint64
}

// JobStat records one job's execution for progress and metrics.
type JobStat struct {
	Experiment string
	Key        string
	Index      int // position in the submitted job slice
	Worker     int // worker goroutine that ran the job
	Duration   time.Duration
	Err        error
}

// Metrics summarizes an engine run.
type Metrics struct {
	Experiment string // Experiment of the first job
	Workers    int    // actual pool size used
	Started    int
	Finished   int
	Failed     int
	Wall       time.Duration
	Jobs       []JobStat // in job-index order
}

// Slowest returns the longest-running job's stat. ok is false for an
// empty run.
func (m Metrics) Slowest() (stat JobStat, ok bool) {
	for _, s := range m.Jobs {
		if !ok || s.Duration > stat.Duration {
			stat, ok = s, true
		}
	}
	return stat, ok
}

// TotalJobTime sums the per-job durations — the serial-equivalent cost,
// so TotalJobTime/Wall estimates the achieved speedup.
func (m Metrics) TotalJobTime() time.Duration {
	var t time.Duration
	for _, s := range m.Jobs {
		t += s.Duration
	}
	return t
}

// String renders a one-experiment report for snicbench -v.
func (m Metrics) String() string {
	speedup := 1.0
	if m.Wall > 0 {
		speedup = float64(m.TotalJobTime()) / float64(m.Wall)
	}
	s := fmt.Sprintf("engine: %-8s %3d jobs on %2d workers: wall %v, jobs-total %v (%.2fx)",
		m.Experiment, m.Finished, m.Workers, m.Wall.Round(time.Microsecond),
		m.TotalJobTime().Round(time.Microsecond), speedup)
	if slow, ok := m.Slowest(); ok {
		s += fmt.Sprintf(", slowest %s/%s %v", slow.Experiment, slow.Key,
			slow.Duration.Round(time.Microsecond))
	}
	if m.Failed > 0 {
		s += fmt.Sprintf(", FAILED %d", m.Failed)
	}
	return s
}

// Run executes jobs on the pool and returns their results in job-index
// order. On job failure the first error by job index is returned (a
// deterministic choice even under concurrency); the result slice still
// carries every job that succeeded. A panicking job is converted to an
// error rather than tearing down the whole sweep.
func Run[T any](cfg Config, jobs []Job[T]) ([]T, Metrics, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	m := Metrics{Workers: workers, Jobs: make([]JobStat, len(jobs))}
	if len(jobs) > 0 {
		m.Experiment = jobs[0].Experiment
	}
	results := make([]T, len(jobs))

	wall := cfg.Wall
	if wall == nil {
		wall = defaultWall
	}

	var started, finished atomic.Int64
	var cbMu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int)
	t0 := wall.Start()
	cfg.Progress.Begin(m.Experiment, len(jobs), cfg.ProgressTarget)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				job := jobs[i]
				started.Add(1)
				rng := sim.DeriveRand(cfg.Seed, job.Experiment, job.Key)
				jt := wall.Start()
				v, err := runOne(job, rng)
				stat := JobStat{
					Experiment: job.Experiment, Key: job.Key,
					Index: i, Worker: worker,
					Duration: wall.Since(jt), Err: err,
				}
				results[i] = v
				m.Jobs[i] = stat
				finished.Add(1)
				cfg.Progress.JobDone(err != nil)
				if cfg.OnJob != nil {
					cbMu.Lock()
					cfg.OnJob(stat)
					cbMu.Unlock()
				}
			}
		}(w)
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	m.Wall = wall.Since(t0)
	m.Started = int(started.Load())
	m.Finished = int(finished.Load())
	var firstErr error
	for _, s := range m.Jobs {
		if s.Err != nil {
			m.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("engine: job %s/%s: %w", s.Experiment, s.Key, s.Err)
			}
		}
	}
	return results, m, firstErr
}

func runOne[T any](job Job[T], rng *sim.Rand) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return job.Run(rng)
}
