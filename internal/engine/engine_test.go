package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"snic/internal/obs"
	"snic/internal/sim"
)

// drawJobs returns jobs whose result is their first RNG draw, so tests
// can observe exactly which stream each job was handed.
func drawJobs(n int) []Job[uint64] {
	jobs := make([]Job[uint64], n)
	for i := range jobs {
		jobs[i] = Job[uint64]{
			Experiment: "draw",
			Key:        fmt.Sprintf("job%d", i),
			Run:        func(rng *sim.Rand) (uint64, error) { return rng.Uint64(), nil },
		}
	}
	return jobs
}

func TestResultsIndependentOfWorkerCount(t *testing.T) {
	base, _, err := Run(Config{Workers: 1, Seed: 7}, drawJobs(40))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16, 0} {
		got, _, err := Run(Config{Workers: w, Seed: 7}, drawJobs(40))
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: job %d drew %x, serial drew %x", w, i, got[i], base[i])
			}
		}
	}
}

func TestJobStreamsAreDistinctAndKeyed(t *testing.T) {
	vals, _, err := Run(Config{Seed: 7}, drawJobs(40))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for i, v := range vals {
		if j, dup := seen[v]; dup {
			t.Fatalf("jobs %d and %d drew the same stream", j, i)
		}
		seen[v] = i
	}
	// A different base seed must move every stream.
	other, _, err := Run(Config{Seed: 8}, drawJobs(40))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if vals[i] == other[i] {
			t.Fatalf("job %d ignored the base seed", i)
		}
	}
}

func TestErrorSelectionIsDeterministic(t *testing.T) {
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{
			Experiment: "err", Key: fmt.Sprint(i),
			Run: func(*sim.Rand) (int, error) { return i * 10, nil },
		}
	}
	jobs[3].Run = func(*sim.Rand) (int, error) { return 0, fmt.Errorf("boom3") }
	jobs[6].Run = func(*sim.Rand) (int, error) { return 0, fmt.Errorf("boom6") }
	for _, w := range []int{1, 4, 8} {
		res, m, err := Run(Config{Workers: w}, jobs)
		if err == nil || !strings.Contains(err.Error(), "boom3") {
			t.Fatalf("workers=%d: err = %v, want lowest-index boom3", w, err)
		}
		if m.Failed != 2 {
			t.Fatalf("failed = %d", m.Failed)
		}
		if res[0] != 0 || res[7] != 70 {
			t.Fatalf("successful results not preserved: %v", res)
		}
	}
}

func TestPanicBecomesError(t *testing.T) {
	jobs := []Job[int]{{
		Experiment: "p", Key: "k",
		Run: func(*sim.Rand) (int, error) { panic("kaboom") },
	}}
	_, m, err := Run(Config{}, jobs)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
	if m.Failed != 1 {
		t.Fatalf("failed = %d", m.Failed)
	}
}

func TestMetricsAndProgress(t *testing.T) {
	var calls int
	cfg := Config{Workers: 3, OnJob: func(JobStat) { calls++ }}
	_, m, err := Run(cfg, drawJobs(10))
	if err != nil {
		t.Fatal(err)
	}
	if m.Started != 10 || m.Finished != 10 || m.Failed != 0 {
		t.Fatalf("counts: %+v", m)
	}
	if m.Workers != 3 {
		t.Fatalf("workers = %d", m.Workers)
	}
	if calls != 10 {
		t.Fatalf("OnJob calls = %d", calls)
	}
	if slow, ok := m.Slowest(); !ok || slow.Experiment != "draw" {
		t.Fatalf("slowest = %+v ok=%v", slow, ok)
	}
	if m.TotalJobTime() < 0 {
		t.Fatal("negative job time")
	}
	if s := m.String(); !strings.Contains(s, "draw") || !strings.Contains(s, "10 jobs") {
		t.Fatalf("report %q", s)
	}
	for i, s := range m.Jobs {
		if s.Index != i || s.Key != fmt.Sprintf("job%d", i) {
			t.Fatalf("stat %d out of order: %+v", i, s)
		}
	}
}

func TestWorkerClamping(t *testing.T) {
	_, m, err := Run(Config{Workers: 64}, drawJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 3 {
		t.Fatalf("pool size %d for 3 jobs", m.Workers)
	}
	res, m2, err := Run(Config{Workers: 2}, []Job[uint64]{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v %v", res, err)
	}
	if _, ok := m2.Slowest(); ok {
		t.Fatal("slowest of empty run")
	}
}

// TestInjectedWall: Config.Wall replaces the sanctioned wall-clock
// collector, making engine timing fully deterministic for tests. A fake
// stepping 1ms per reading makes every per-job duration exactly 1ms
// (two readings per job) and the sweep wall (1+2n)ms.
func TestInjectedWall(t *testing.T) {
	tick := time.Unix(0, 0)
	wall := obs.NewWall(func() time.Time {
		tick = tick.Add(time.Millisecond)
		return tick
	})
	_, m, err := Run(Config{Workers: 1, Wall: wall}, drawJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range m.Jobs {
		if s.Duration != time.Millisecond {
			t.Errorf("job %d duration = %v, want 1ms from the fake wall", i, s.Duration)
		}
	}
	if m.Wall != 7*time.Millisecond {
		t.Errorf("sweep wall = %v, want 7ms (1 start + 2 readings per job)", m.Wall)
	}
	if m.TotalJobTime() != 3*time.Millisecond {
		t.Errorf("jobs total = %v, want 3ms", m.TotalJobTime())
	}
}
