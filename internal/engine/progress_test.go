package engine

import (
	"testing"
	"time"

	"snic/internal/obs"
)

func testProgress() *obs.Progress {
	tick := time.Unix(0, 0)
	return obs.NewProgress(obs.NewWall(func() time.Time {
		tick = tick.Add(time.Millisecond)
		return tick
	}))
}

// TestRunPublishesProgress: Config.Progress sees Begin with the sweep
// identity and one JobDone per job, and the snapshot deactivates when
// the sweep drains.
func TestRunPublishesProgress(t *testing.T) {
	p := testProgress()
	_, _, err := Run(Config{Workers: 2, Progress: p, ProgressTarget: 123}, drawJobs(5))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.Experiment != "draw" || s.JobsTotal != 5 || s.JobsDone != 5 || s.JobsFailed != 0 {
		t.Fatalf("snapshot after sweep: %+v", s)
	}
	if s.ItemsTotal != 123 {
		t.Fatalf("target = %d, want 123 from ProgressTarget", s.ItemsTotal)
	}
	if s.Active {
		t.Fatal("drained sweep still active")
	}
}

// TestRunShardedPublishesPositions: Shard.Pos and Save flow into the
// progress collector, and the wiring is optional — a nil Progress runs
// identically.
func TestRunShardedPublishesPositions(t *testing.T) {
	spec := ShardedSpec[shardResult]{
		Experiment: "shardtest",
		Key:        "pos",
		Shards:     3,
		Run: func(s *Shard) (shardResult, error) {
			s.Pos(uint64(10 * (s.Index + 1)))
			if err := s.Save(shardCursor{}, nil); err != nil {
				return shardResult{}, err
			}
			return shardResult{Shard: s.Index}, nil
		},
	}
	p := testProgress()
	if _, _, err := RunSharded(Config{Workers: 2, Progress: p}, nil, spec); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.Items != 10+20+30 {
		t.Fatalf("items = %d, want 60 from the three shard positions", s.Items)
	}
	if s.SinceSaveSec < 0 {
		t.Fatal("save lag unknown despite Shard.Save calls")
	}
	if s.JobsDone != 3 {
		t.Fatalf("jobs done = %d, want 3", s.JobsDone)
	}
	// No collector attached: same spec must run without publishing.
	if _, _, err := RunSharded(Config{Workers: 2}, nil, spec); err != nil {
		t.Fatal(err)
	}
}
