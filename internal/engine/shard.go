package engine

import (
	"encoding/json"
	"errors"
	"fmt"

	"snic/internal/obs"
	"snic/internal/sim"
)

// ErrInterrupted is the sentinel a shard returns to stop a sweep on
// purpose (deliberate interruption for checkpoint testing, a packet
// budget reached, an operator stop). RunSharded reports it — wrapped, so
// test with errors.Is — only when every failing shard was interrupted;
// any real failure takes precedence. The checkpoint holds each
// interrupted shard's last saved cursor, so rerunning the same spec
// resumes byte-identically.
var ErrInterrupted = errors.New("interrupted")

// Shard is the per-shard context handed to a ShardedSpec's Run: the
// shard's index, its exclusively owned derived RNG, and access to the
// sweep's checkpoint. A resuming shard reads its saved position with
// Cursor and periodically calls Save so a later kill loses at most the
// work since the last save.
type Shard struct {
	Index int
	Rng   *sim.Rand
	ck    *Checkpoint
	prog  *obs.Progress
}

// Cursor returns the shard's saved cursor from a previous run, or nil on
// a fresh start.
func (s *Shard) Cursor() json.RawMessage { return s.ck.cursor(s.Index) }

// Save records the shard's current cursor (and an optional partial
// aggregate, for humans inspecting the checkpoint file), persisting the
// checkpoint if it has an autosave path. A successful save also stamps
// the run's progress telemetry, so watchers see checkpoint lag.
func (s *Shard) Save(cursor, partial any) error {
	if err := s.ck.save(s.Index, cursor, partial); err != nil {
		return err
	}
	s.prog.Saved()
	return nil
}

// Pos publishes the shard's current item position (a trace.Stream
// position for replay shards) to the run's progress telemetry.
// Write-only and nil-safe: shard code may call it unconditionally and
// nothing simulated ever depends on it.
func (s *Shard) Pos(pos uint64) { s.prog.Pos(s.Index, pos) }

// ShardedSpec decomposes one logical sweep point into Shards independent
// sub-jobs. Each shard's RNG is derived from (seed, Experiment,
// Key+"/s<i>"), so its stream is a pure function of the shard identity;
// results are merged in shard order regardless of scheduling, making the
// sharded run worker-count invariant like every other engine sweep.
type ShardedSpec[T any] struct {
	Experiment string
	Key        string
	Shards     int
	Run        func(s *Shard) (T, error)
}

// RunSharded executes the spec's shards on the engine pool and returns
// their results in shard order. ck carries resumable state: shards
// already Done are not re-run (their recorded results are decoded and
// merged in place — byte-identical because results round-trip JSON
// losslessly), unfinished shards see their saved cursors. A nil ck runs
// with an ephemeral in-memory checkpoint.
//
// On interruption (every failing shard returned ErrInterrupted) the
// error wraps ErrInterrupted and the checkpoint — already persisted if
// it autosaves — is what the caller reruns from. The result slice is
// only meaningful when the error is nil.
func RunSharded[T any](cfg Config, ck *Checkpoint, spec ShardedSpec[T]) ([]T, Metrics, error) {
	if spec.Shards < 1 {
		return nil, Metrics{}, fmt.Errorf("engine: sharded %s/%s: %d shards", spec.Experiment, spec.Key, spec.Shards)
	}
	if ck == nil {
		ck = NewCheckpoint(spec.Experiment, spec.Key, cfg.Seed, spec.Shards)
	}
	if err := ck.compatible(spec.Experiment, spec.Key, cfg.Seed, spec.Shards); err != nil {
		return nil, Metrics{}, fmt.Errorf("engine: sharded %s/%s: %w", spec.Experiment, spec.Key, err)
	}
	jobs := make([]Job[T], spec.Shards)
	for i := range jobs {
		i := i
		jobs[i] = Job[T]{
			Experiment: spec.Experiment,
			Key:        fmt.Sprintf("%s/s%03d", spec.Key, i),
			Run: func(rng *sim.Rand) (T, error) {
				var v T
				if raw, done := ck.result(i); done {
					if err := json.Unmarshal(raw, &v); err != nil {
						return v, fmt.Errorf("decode checkpointed result: %w", err)
					}
					return v, nil
				}
				v, err := spec.Run(&Shard{Index: i, Rng: rng, ck: ck, prog: cfg.Progress})
				if err != nil {
					return v, err
				}
				return v, ck.finish(i, v)
			},
		}
	}
	out, m, err := Run(cfg, jobs)
	if err != nil {
		// Prefer a real failure over deliberate interruption: only when
		// every failing shard was interrupted is the sweep "interrupted".
		for _, s := range m.Jobs {
			if s.Err != nil && !errors.Is(s.Err, ErrInterrupted) {
				return out, m, fmt.Errorf("engine: job %s/%s: %w", s.Experiment, s.Key, s.Err)
			}
		}
		return out, m, fmt.Errorf("engine: sharded %s/%s: %w", spec.Experiment, spec.Key, ErrInterrupted)
	}
	return out, m, nil
}
