package engine

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// shardCursor / shardResult model a resumable shard computation for the
// tests: consume a per-shard number of RNG draws, folding them into a
// sum, with the cursor carrying (items done, running sum, RNG state).
type shardCursor struct {
	Done int    `json:"done"`
	Sum  uint64 `json:"sum"`
	Rng  uint64 `json:"rng"`
}

type shardResult struct {
	Shard int    `json:"shard"`
	Sum   uint64 `json:"sum"`
}

// sumSpec builds a ShardedSpec whose shards each fold a fixed number of
// draws. stopAfter > 0 interrupts each shard after that many draws in
// one invocation (the checkpoint-resume tests' deliberate kill).
func sumSpec(shards, itemsPerShard, stopAfter int) ShardedSpec[shardResult] {
	return ShardedSpec[shardResult]{
		Experiment: "shardtest",
		Key:        "sum",
		Shards:     shards,
		Run: func(s *Shard) (shardResult, error) {
			var cur shardCursor
			if raw := s.Cursor(); raw != nil {
				if err := json.Unmarshal(raw, &cur); err != nil {
					return shardResult{}, err
				}
				s.Rng.SetState(cur.Rng)
			}
			processed := 0
			for cur.Done < itemsPerShard {
				cur.Sum += s.Rng.Uint64() % 1000
				cur.Done++
				processed++
				if cur.Done%7 == 0 {
					cur.Rng = s.Rng.State()
					if err := s.Save(cur, nil); err != nil {
						return shardResult{}, err
					}
				}
				if stopAfter > 0 && processed >= stopAfter && cur.Done < itemsPerShard {
					cur.Rng = s.Rng.State()
					if err := s.Save(cur, nil); err != nil {
						return shardResult{}, err
					}
					return shardResult{}, ErrInterrupted
				}
			}
			return shardResult{Shard: s.Index, Sum: cur.Sum}, nil
		},
	}
}

func TestRunShardedWorkerInvariance(t *testing.T) {
	var want []shardResult
	for _, workers := range []int{1, 4, 16} {
		got, _, err := RunSharded(Config{Workers: workers, Seed: 99}, nil, sumSpec(9, 40, 0))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range got {
			if r.Shard != i {
				t.Fatalf("workers=%d: result %d is shard %d (merge out of order)", workers, i, r.Shard)
			}
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

func TestRunShardedResumesByteIdentically(t *testing.T) {
	want, _, err := RunSharded(Config{Workers: 4, Seed: 7}, nil, sumSpec(5, 50, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, stopAfter := range []int{1, 13, 49} {
		path := filepath.Join(t.TempDir(), "ck.json")
		for attempt := 0; ; attempt++ {
			if attempt > 60 {
				t.Fatalf("stopAfter=%d: did not converge", stopAfter)
			}
			// A fresh checkpoint load each attempt simulates a new process
			// resuming after a kill: nothing survives but the file.
			ck, err := LoadOrCreateCheckpoint(path, "shardtest", "sum", 7, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := RunSharded(Config{Workers: 4, Seed: 7}, ck, sumSpec(5, 50, stopAfter))
			if errors.Is(err, ErrInterrupted) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stopAfter=%d: resumed results differ from uninterrupted run", stopAfter)
			}
			break
		}
	}
}

func TestRunShardedSkipsDoneShards(t *testing.T) {
	ck := NewCheckpoint("shardtest", "sum", 3, 4)
	spec := sumSpec(4, 20, 0)
	want, _, err := RunSharded(Config{Workers: 2, Seed: 3}, ck, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Done() {
		t.Fatal("checkpoint not done after full run")
	}
	spec.Run = func(*Shard) (shardResult, error) {
		t.Fatal("done shard was re-run")
		return shardResult{}, nil
	}
	got, _, err := RunSharded(Config{Workers: 2, Seed: 3}, ck, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replayed results differ from recorded ones")
	}
}

func TestRunShardedRealErrorBeatsInterrupted(t *testing.T) {
	boom := errors.New("boom")
	spec := ShardedSpec[int]{
		Experiment: "shardtest", Key: "err", Shards: 3,
		Run: func(s *Shard) (int, error) {
			if s.Index == 1 {
				return 0, boom
			}
			return 0, ErrInterrupted
		},
	}
	_, _, err := RunSharded(Config{Workers: 3, Seed: 1}, nil, spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real failure", err)
	}
	if errors.Is(err, ErrInterrupted) {
		t.Fatal("real failure misreported as interruption")
	}
}

func TestCheckpointCompatibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := NewCheckpoint("shardtest", "sum", 7, 5)
	ck.Autosave(path)
	if _, _, err := RunSharded(Config{Workers: 1, Seed: 7}, ck, sumSpec(5, 3, 0)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		exp, key string
		seed     uint64
		shards   int
	}{
		{"other", "sum", 7, 5},
		{"shardtest", "other", 7, 5},
		{"shardtest", "sum", 8, 5},
		{"shardtest", "sum", 7, 6},
	}
	for _, c := range cases {
		if _, err := LoadOrCreateCheckpoint(path, c.exp, c.key, c.seed, c.shards); err == nil {
			t.Fatalf("accepted mismatched checkpoint %+v", c)
		}
	}
	loaded, err := LoadOrCreateCheckpoint(path, "shardtest", "sum", 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Done() {
		t.Fatal("loaded checkpoint lost its results")
	}
	// The autosave must be atomic: no stale temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestCheckpointVersionGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("accepted future checkpoint version")
	}
}
