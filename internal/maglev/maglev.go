// Package maglev implements Google's Maglev consistent-hashing lookup
// table [Eisenbud et al., NSDI 2016] — the algorithm inside the paper's
// Load Balancer NF (§5.1). Each backend fills the table via its own
// permutation of preference slots; lookups are a single table index, and
// backend churn moves only ~1/N of the keys.
package maglev

import (
	"fmt"
	"sort"
)

// DefaultTableSize is a prime near the 65537 the Maglev paper uses for
// small pools. Table size must be prime and > #backends.
const DefaultTableSize = 65537

// Table is a built Maglev lookup table.
type Table struct {
	backends []string
	entries  []int32 // slot -> backend index
}

// New builds a table of size m (must be prime; DefaultTableSize works) for
// the given backend names. Backends are deduplicated and sorted so the
// table depends only on the set, not the argument order.
func New(backends []string, m int) (*Table, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("maglev: no backends")
	}
	if m <= len(backends) {
		return nil, fmt.Errorf("maglev: table size %d too small for %d backends", m, len(backends))
	}
	if !isPrime(m) {
		return nil, fmt.Errorf("maglev: table size %d is not prime", m)
	}
	uniq := map[string]bool{}
	var names []string
	for _, b := range backends {
		if !uniq[b] {
			uniq[b] = true
			names = append(names, b)
		}
	}
	sort.Strings(names)

	n := len(names)
	offsets := make([]uint64, n)
	skips := make([]uint64, n)
	for i, name := range names {
		h1 := hashString(name, 0x9E3779B97F4A7C15)
		h2 := hashString(name, 0xC2B2AE3D27D4EB4F)
		offsets[i] = h1 % uint64(m)
		skips[i] = h2%uint64(m-1) + 1
	}
	entries := make([]int32, m)
	for i := range entries {
		entries[i] = -1
	}
	nexts := make([]uint64, n)
	filled := 0
	for filled < m {
		for i := 0; i < n && filled < m; i++ {
			// Walk backend i's permutation to its next free slot.
			for {
				c := (offsets[i] + nexts[i]*skips[i]) % uint64(m)
				nexts[i]++
				if entries[c] == -1 {
					entries[c] = int32(i)
					filled++
					break
				}
			}
		}
	}
	return &Table{backends: names, entries: entries}, nil
}

// Lookup returns the backend for a flow hash.
func (t *Table) Lookup(flowHash uint64) string {
	return t.backends[t.entries[flowHash%uint64(len(t.entries))]]
}

// LookupIndex returns the backend index for a flow hash.
func (t *Table) LookupIndex(flowHash uint64) int {
	return int(t.entries[flowHash%uint64(len(t.entries))])
}

// Size returns the lookup table size (number of slots).
func (t *Table) Size() int { return len(t.entries) }

// Backends returns the (sorted, deduplicated) backend names.
func (t *Table) Backends() []string { return append([]string(nil), t.backends...) }

// MemoryBytes reports the table footprint (4 bytes/slot plus names),
// feeding the LB NF's memory profile.
func (t *Table) MemoryBytes() uint64 {
	n := uint64(len(t.entries)) * 4
	for _, b := range t.backends {
		n += uint64(len(b)) + 16
	}
	return n
}

// Disruption counts the fraction of slots that map to different backends
// between two tables (used to verify the consistent-hashing property).
func Disruption(a, b *Table) float64 {
	if a.Size() != b.Size() {
		return 1
	}
	moved := 0
	for i := range a.entries {
		if a.backends[a.entries[i]] != b.backends[b.entries[i]] {
			moved++
		}
	}
	return float64(moved) / float64(a.Size())
}

func hashString(s string, seed uint64) uint64 {
	h := seed ^ 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for i := 2; i*i <= n; i++ {
		if n%i == 0 {
			return false
		}
	}
	return true
}
