package maglev

import (
	"fmt"
	"math"
	"testing"

	"snic/internal/sim"
)

func backends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("backend-%02d", i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 65537); err == nil {
		t.Fatal("empty backends accepted")
	}
	if _, err := New(backends(3), 3); err == nil {
		t.Fatal("tiny table accepted")
	}
	if _, err := New(backends(3), 100); err == nil {
		t.Fatal("composite table size accepted")
	}
	if _, err := New(backends(3), 101); err != nil {
		t.Fatal(err)
	}
}

func TestAllSlotsFilled(t *testing.T) {
	tbl, err := New(backends(5), 65537)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.Size(); i++ {
		if tbl.LookupIndex(uint64(i)) < 0 {
			t.Fatalf("slot %d unfilled", i)
		}
	}
}

func TestBalance(t *testing.T) {
	// The Maglev paper's headline property: near-perfect balance.
	n := 7
	tbl, err := New(backends(n), 65537)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < tbl.Size(); i++ {
		counts[tbl.Lookup(uint64(i))]++
	}
	want := float64(tbl.Size()) / float64(n)
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.02 {
			t.Fatalf("imbalance: %s has %d slots, want ~%.0f", b, c, want)
		}
	}
}

func TestDeterministicAndOrderIndependent(t *testing.T) {
	a, _ := New([]string{"x", "y", "z"}, 65537)
	b, _ := New([]string{"z", "x", "y"}, 65537)
	if Disruption(a, b) != 0 {
		t.Fatal("table depends on backend order")
	}
}

func TestDuplicateBackendsDeduplicated(t *testing.T) {
	a, _ := New([]string{"x", "y", "x"}, 65537)
	if len(a.Backends()) != 2 {
		t.Fatalf("backends = %v", a.Backends())
	}
}

func TestConsistency(t *testing.T) {
	// Removing one of N backends must disrupt ~1/N of the keyspace, far
	// less than a modulo hash would (which disrupts ~ (N-1)/N).
	n := 10
	before, _ := New(backends(n), 65537)
	after, _ := New(backends(n)[:n-1], 65537)
	d := Disruption(before, after)
	if d > 0.25 {
		t.Fatalf("removal disrupted %.2f of slots", d)
	}
	if d < 0.05 {
		t.Fatalf("removal disrupted only %.3f — dead backend's slots must move", d)
	}
}

func TestLookupStability(t *testing.T) {
	tbl, _ := New(backends(4), 65537)
	rng := sim.NewRand(5)
	for i := 0; i < 1000; i++ {
		h := rng.Uint64()
		if tbl.Lookup(h) != tbl.Lookup(h) {
			t.Fatal("lookup not deterministic")
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	tbl, _ := New(backends(4), 65537)
	if tbl.MemoryBytes() < 65537*4 {
		t.Fatalf("memory = %d", tbl.MemoryBytes())
	}
}

func TestDisruptionSizeMismatch(t *testing.T) {
	a, _ := New(backends(2), 101)
	b, _ := New(backends(2), 65537)
	if Disruption(a, b) != 1 {
		t.Fatal("size mismatch should report full disruption")
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl, _ := New(backends(16), 65537)
	for i := 0; i < b.N; i++ {
		tbl.Lookup(uint64(i) * 0x9E3779B97F4A7C15)
	}
}
