// Package raidx implements the XOR parity engine behind the RAID storage
// accelerator (§5.2 / Table 7): scatter-gather parity generation and
// single-erasure reconstruction over fixed-size stripes, as a RAID-5-style
// offload would perform on behalf of a storage network function.
package raidx

import "fmt"

// Stripe computes the XOR parity of the data blocks into parity. All
// blocks must have identical lengths.
func Stripe(data [][]byte, parity []byte) error {
	for i, d := range data {
		if len(d) != len(parity) {
			return fmt.Errorf("raidx: block %d length %d != parity length %d", i, len(d), len(parity))
		}
	}
	for i := range parity {
		parity[i] = 0
	}
	for _, d := range data {
		xorInto(parity, d)
	}
	return nil
}

// Reconstruct rebuilds the block at index lost from the survivors and the
// parity, writing it into dst.
func Reconstruct(data [][]byte, parity []byte, lost int, dst []byte) error {
	if lost < 0 || lost >= len(data) {
		return fmt.Errorf("raidx: lost index %d out of range", lost)
	}
	if len(dst) != len(parity) {
		return fmt.Errorf("raidx: dst length %d != stripe length %d", len(dst), len(parity))
	}
	copy(dst, parity)
	for i, d := range data {
		if i == lost {
			continue
		}
		if len(d) != len(parity) {
			return fmt.Errorf("raidx: block %d length mismatch", i)
		}
		xorInto(dst, d)
	}
	return nil
}

// Verify checks that parity is consistent with data.
func Verify(data [][]byte, parity []byte) (bool, error) {
	check := make([]byte, len(parity))
	if err := Stripe(data, check); err != nil {
		return false, err
	}
	for i := range check {
		if check[i] != parity[i] {
			return false, nil
		}
	}
	return true, nil
}

// xorInto computes dst ^= src, 8 bytes at a time.
func xorInto(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}
