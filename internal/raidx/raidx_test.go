package raidx

import (
	"bytes"
	"testing"
	"testing/quick"

	"snic/internal/sim"
)

func blocks(t *testing.T, n, size int, seed uint64) [][]byte {
	t.Helper()
	rng := sim.NewRand(seed)
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Bytes(out[i])
	}
	return out
}

func TestStripeAndVerify(t *testing.T) {
	data := blocks(t, 4, 4096, 1)
	parity := make([]byte, 4096)
	if err := Stripe(data, parity); err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(data, parity)
	if err != nil || !ok {
		t.Fatalf("verify = %v, %v", ok, err)
	}
	// Corrupt one byte: verification must fail.
	data[2][100] ^= 0xFF
	ok, err = Verify(data, parity)
	if err != nil || ok {
		t.Fatal("corruption not detected")
	}
}

func TestReconstructEachBlock(t *testing.T) {
	data := blocks(t, 5, 1024, 2)
	parity := make([]byte, 1024)
	if err := Stripe(data, parity); err != nil {
		t.Fatal(err)
	}
	for lost := range data {
		dst := make([]byte, 1024)
		if err := Reconstruct(data, parity, lost, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, data[lost]) {
			t.Fatalf("block %d reconstruction mismatch", lost)
		}
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	data := [][]byte{make([]byte, 10), make([]byte, 11)}
	if err := Stripe(data, make([]byte, 10)); err == nil {
		t.Fatal("length mismatch accepted by Stripe")
	}
	if err := Reconstruct(data, make([]byte, 10), 0, make([]byte, 10)); err == nil {
		t.Fatal("length mismatch accepted by Reconstruct")
	}
}

func TestBadLostIndex(t *testing.T) {
	data := blocks(t, 2, 8, 3)
	parity := make([]byte, 8)
	Stripe(data, parity)
	if err := Reconstruct(data, parity, -1, make([]byte, 8)); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := Reconstruct(data, parity, 2, make([]byte, 8)); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestBadDstLength(t *testing.T) {
	data := blocks(t, 2, 8, 4)
	parity := make([]byte, 8)
	Stripe(data, parity)
	if err := Reconstruct(data, parity, 0, make([]byte, 7)); err == nil {
		t.Fatal("short dst accepted")
	}
}

func TestOddLengths(t *testing.T) {
	// Exercise the non-8-aligned tail of xorInto.
	data := blocks(t, 3, 13, 5)
	parity := make([]byte, 13)
	if err := Stripe(data, parity); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 13)
	if err := Reconstruct(data, parity, 1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[1]) {
		t.Fatal("odd-length reconstruction mismatch")
	}
}

func TestEmptyStripe(t *testing.T) {
	parity := []byte{}
	if err := Stripe(nil, parity); err != nil {
		t.Fatal(err)
	}
}

// Property: reconstruction inverts erasure for random stripes.
func TestReconstructProperty(t *testing.T) {
	f := func(seed uint64, nBlocks, size uint8) bool {
		n := 1 + int(nBlocks)%8
		sz := 1 + int(size)%512
		rng := sim.NewRand(seed)
		data := make([][]byte, n)
		for i := range data {
			data[i] = make([]byte, sz)
			rng.Bytes(data[i])
		}
		parity := make([]byte, sz)
		if err := Stripe(data, parity); err != nil {
			return false
		}
		lost := int(rng.Intn(n))
		dst := make([]byte, sz)
		if err := Reconstruct(data, parity, lost, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, data[lost])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStripe4x64K(b *testing.B) {
	rng := sim.NewRand(1)
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 64<<10)
		rng.Bytes(data[i])
	}
	parity := make([]byte, 64<<10)
	b.SetBytes(4 * 64 << 10)
	for i := 0; i < b.N; i++ {
		Stripe(data, parity)
	}
}
