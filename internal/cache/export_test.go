package cache

// SetWayAllocForTest exposes setWayAlloc so the reference-equivalence
// property test can install arbitrary allocations mid-trace, the way the
// SecDCP Resizer does.
func (c *Cache) SetWayAllocForTest(alloc [][2]int) { c.setWayAlloc(alloc) }

// Pow2ForTest reports whether the shift/mask fast path is active.
func (c *Cache) Pow2ForTest() bool { return c.pow2 }
