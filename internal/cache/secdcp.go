package cache

import "fmt"

// §4.2's second partitioning option: "if S-NIC is willing to allow side
// channels from the NIC OS to functions (but not vice versa), S-NIC can
// use SecDCP cache partitioning. In this approach, each function receives
// a minimum cache allocation. Trusted cache hardware examines utilization
// by functions and the NIC OS, and only resizes allocations in response
// to the cache behavior of the NIC OS."
//
// Resizer implements that discipline on top of a Static cache: domain 0
// is the NIC OS; NF domains own contiguous way ranges with a guaranteed
// minimum. Resize decisions consume ONLY the OS's own miss rate — the
// information-flow restriction that keeps NFs unobservable — and shrink
// or grow the OS's slice at the expense of a donation pool, never by
// inspecting (or depending on) NF behaviour. Lines in ways a domain
// loses are flushed, so no content crosses domains.

// Resizer manages dynamic way allocation over a partitioned cache.
type Resizer struct {
	c            *Cache
	minWays      []int // per-domain guaranteed minimum
	curWays      []int
	lastOSMisses uint64
}

// NewResizer wraps a Static-policy cache. minWays must sum to at most the
// cache's associativity; leftovers form the flexible pool initially owned
// by the OS (domain 0).
func NewResizer(c *Cache, minWays []int) (*Resizer, error) {
	if c.policy != Static {
		return nil, fmt.Errorf("cache: SecDCP resizing requires a Static cache")
	}
	if len(minWays) != c.domains {
		return nil, fmt.Errorf("cache: %d minimums for %d domains", len(minWays), c.domains)
	}
	sum := 0
	for _, w := range minWays {
		if w < 1 {
			return nil, fmt.Errorf("cache: every domain needs >= 1 way")
		}
		sum += w
	}
	if sum > c.ways {
		return nil, fmt.Errorf("cache: minimums (%d ways) exceed associativity (%d)", sum, c.ways)
	}
	cur := append([]int(nil), minWays...)
	// The flexible pool starts with the functions (round-robin): SecDCP
	// guarantees NF minimums and lets the OS borrow only under its own
	// demonstrated pressure.
	for extra, d := c.ways-sum, 1; extra > 0; extra-- {
		if c.domains == 1 {
			cur[0]++
			continue
		}
		cur[d]++
		d++
		if d == c.domains {
			d = 1
		}
	}
	r := &Resizer{c: c, minWays: minWays, curWays: cur}
	r.apply()
	return r, nil
}

// Ways returns the current allocation of a domain.
func (r *Resizer) Ways(domain int) int { return r.curWays[domain] }

// apply installs the current allocation as way ranges on the cache.
// setWayAlloc refreshes the precomputed range table and flushes any line
// now outside its owner's range.
func (r *Resizer) apply() {
	alloc := make([][2]int, r.c.domains)
	lo := 0
	for d, w := range r.curWays {
		alloc[d] = [2]int{lo, lo + w}
		lo += w
	}
	r.c.setWayAlloc(alloc)
}

// Tick runs one SecDCP decision epoch. It looks ONLY at the OS's own
// miss delta (domain 0): rising OS pressure grows the OS slice by one way
// (taken from the flexible share above some NF's minimum, round-robin);
// falling pressure returns a way. NF miss rates are deliberately never
// read, so nothing about NF behaviour influences — or is revealed by —
// the resize schedule.
func (r *Resizer) Tick() {
	osMisses := r.c.stats[0].Misses
	delta := osMisses - r.lastOSMisses
	r.lastOSMisses = osMisses
	const pressure = 64 // misses per epoch that count as "pressured"
	if delta > pressure {
		// Grow the OS slice from the first NF domain above its minimum.
		for d := 1; d < r.c.domains; d++ {
			if r.curWays[d] > r.minWays[d] {
				r.curWays[d]--
				r.curWays[0]++
				r.apply()
				return
			}
		}
	} else if delta < pressure/4 {
		// Relaxed: hand a way back to the most-starved NF (at minimum).
		for d := 1; d < r.c.domains; d++ {
			if r.curWays[d] == r.minWays[d] && r.curWays[0] > r.minWays[0] {
				r.curWays[0]--
				r.curWays[d]++
				r.apply()
				return
			}
		}
	}
}
