// Package cache implements the set-associative cache hierarchy used by the
// timing simulator, together with the sharing policies §4.2 evaluates:
//
//   - Shared: the commodity baseline. Every security domain competes for
//     every way; cross-domain evictions are both a performance interference
//     channel and a classic prime+probe side channel.
//   - Static: S-NIC's hard partitioning — each domain receives an equal,
//     private slice of the ways ("Static partitioning allocated 1/N of the
//     cache to each of the N functions", §5.3). No line is ever shared or
//     stolen across domains, eliminating cache side channels.
//
// The cache exposes per-domain hit/miss statistics and, deliberately, the
// per-access hit/miss outcome — that observable is what a prime+probe
// attacker measures, and the attack tests use it to demonstrate leakage on
// Shared and silence on Static.
package cache

import (
	"fmt"
	"math/bits"
	"strconv"

	"snic/internal/mem"
	"snic/internal/obs"
)

// Policy selects the sharing discipline.
type Policy int

// Sharing policies.
const (
	Shared Policy = iota // full sharing (baseline, leaky)
	Static               // hard way-partitioning per domain (S-NIC)
)

func (p Policy) String() string {
	switch p {
	case Shared:
		return "shared"
	case Static:
		return "static"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Stats counts per-domain cache outcomes.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns the miss ratio (0 if no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses())
}

// lineMeta is the bookkeeping half of a cache line. Tags live in their
// own slice (structure-of-arrays) so the way-probe loop — the hottest
// loop in the whole simulator — scans contiguous uint64s and only loads
// the metadata of a tag that matched.
type lineMeta struct {
	used   uint64 // LRU timestamp
	domain int32
	valid  bool
	dirty  bool
}

// Cache is one level of set-associative cache.
type Cache struct {
	name     string
	lineSize uint64
	sets     int
	ways     int
	policy   Policy
	domains  int
	tags     []uint64   // sets*ways, row-major by set
	meta     []lineMeta // parallel to tags
	tick     uint64
	stats    []Stats
	// pow2 indexing: when both lineSize and sets are powers of two (every
	// real configuration), set/tag extraction is a shift and a mask. The
	// div/mod slow path stays behind locate for the rest.
	pow2      bool
	lineShift uint
	setShift  uint
	setMask   uint64
	// ranges[d] is the half-open way interval domain d may occupy,
	// precomputed at construction and on every wayAlloc install instead of
	// being rebuilt per access.
	ranges [][2]int32
	// wayAlloc, when non-nil, overrides the equal static split with
	// explicit per-domain way ranges (installed by the SecDCP Resizer).
	wayAlloc [][2]int
	// obs handles, indexed by domain; nil until Observe attaches a
	// collector, so the unobserved hot path pays one nil check.
	obsHits, obsMisses, obsEvictions []*obs.Counter
}

// Config describes a cache level.
type Config struct {
	Name     string
	Size     uint64 // total bytes
	LineSize uint64 // bytes per line
	Ways     int
	Policy   Policy
	Domains  int // number of security domains sharing this cache (>=1)
}

// New builds a cache. Size must be divisible by LineSize*Ways. Under the
// Static policy, Ways must be >= Domains so each domain gets at least one
// private way.
func New(cfg Config) (*Cache, error) {
	if cfg.LineSize == 0 || cfg.Ways <= 0 || cfg.Size == 0 {
		return nil, fmt.Errorf("cache: bad config %+v", cfg)
	}
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	lines := cfg.Size / cfg.LineSize
	if lines%uint64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", lines, cfg.Ways)
	}
	sets := int(lines) / cfg.Ways
	if cfg.Policy == Static && cfg.Ways < cfg.Domains {
		return nil, fmt.Errorf("cache: %d ways cannot be partitioned across %d domains", cfg.Ways, cfg.Domains)
	}
	c := &Cache{
		name:     cfg.Name,
		lineSize: cfg.LineSize,
		sets:     sets,
		ways:     cfg.Ways,
		policy:   cfg.Policy,
		domains:  cfg.Domains,
		tags:     make([]uint64, int(lines)),
		meta:     make([]lineMeta, int(lines)),
		stats:    make([]Stats, cfg.Domains),
	}
	if cfg.LineSize&(cfg.LineSize-1) == 0 && sets&(sets-1) == 0 {
		c.pow2 = true
		c.lineShift = uint(bits.TrailingZeros64(cfg.LineSize))
		c.setShift = uint(bits.TrailingZeros64(uint64(sets)))
		c.setMask = uint64(sets) - 1
	}
	c.computeRanges()
	return c, nil
}

// locate splits a physical address into (set, tag). The pow2 fast path is
// exactly the div/mod pair below expressed as shift/mask.
func (c *Cache) locate(pa mem.Addr) (int, uint64) {
	if c.pow2 {
		block := uint64(pa) >> c.lineShift
		return int(block & c.setMask), block >> c.setShift
	}
	block := uint64(pa) / c.lineSize
	return int(block % uint64(c.sets)), block / uint64(c.sets)
}

// computeRanges rebuilds the per-domain way-range table from the policy
// and the current wayAlloc override.
func (c *Cache) computeRanges() {
	if c.ranges == nil {
		c.ranges = make([][2]int32, c.domains)
	}
	for d := 0; d < c.domains; d++ {
		if c.policy == Shared {
			c.ranges[d] = [2]int32{0, int32(c.ways)}
			continue
		}
		if c.wayAlloc != nil {
			r := c.wayAlloc[d]
			c.ranges[d] = [2]int32{int32(r[0]), int32(r[1])}
			continue
		}
		per := c.ways / c.domains
		lo := d * per
		hi := lo + per
		if d == c.domains-1 {
			hi = c.ways // last domain absorbs the remainder ways
		}
		c.ranges[d] = [2]int32{int32(lo), int32(hi)}
	}
}

// setWayAlloc installs an explicit per-domain way allocation (the SecDCP
// Resizer's mechanism), refreshes the precomputed range table, and
// flushes every line stranded outside its owner's new range: content
// must never be readable (or evictable) across a partition boundary.
func (c *Cache) setWayAlloc(alloc [][2]int) {
	c.wayAlloc = alloc
	c.computeRanges()
	for set := 0; set < c.sets; set++ {
		base := set * c.ways
		for w := 0; w < c.ways; w++ {
			m := &c.meta[base+w]
			if !m.valid {
				continue
			}
			r := c.ranges[m.domain]
			if int32(w) < r[0] || int32(w) >= r[1] {
				*m = lineMeta{}
				c.tags[base+w] = 0
			}
		}
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint64 { return c.lineSize }

// Stats returns the accumulated statistics for a domain.
func (c *Cache) Stats(domain int) Stats { return c.stats[domain] }

// Observe attaches per-domain hit/miss/eviction counters to reg under
// the given device label, one owner label per domain. A nil reg leaves
// the cache detached (instrumentation stays free).
func (c *Cache) Observe(reg *obs.Registry, device string) {
	if reg == nil {
		return
	}
	component := "cache/" + c.name
	c.obsHits = make([]*obs.Counter, c.domains)
	c.obsMisses = make([]*obs.Counter, c.domains)
	c.obsEvictions = make([]*obs.Counter, c.domains)
	for d := 0; d < c.domains; d++ {
		owner := "dom" + strconv.Itoa(d)
		c.obsHits[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "hits"})
		c.obsMisses[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "misses"})
		c.obsEvictions[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "evictions"})
	}
}

// wayRange returns the half-open way interval domain may occupy.
func (c *Cache) wayRange(domain int) (int, int) {
	r := c.ranges[domain]
	return int(r[0]), int(r[1])
}

// Access looks up the line containing pa on behalf of domain. It returns
// true on a hit. On a miss the line is filled (evicting the domain's LRU
// victim within its permitted ways) and false is returned.
func (c *Cache) Access(pa mem.Addr, domain int, write bool) bool {
	c.tick++
	set, tag := c.locate(pa)
	base := set * c.ways
	r := c.ranges[domain]
	lo, hi := base+int(r[0]), base+int(r[1])

	// Probe: under Shared a domain can hit on any way (Intel CAT-style
	// "soft" partitioning would hit across regions too — the paper notes
	// this is why CAT is insufficient). Under Static, hits can only come
	// from the domain's own ways, because no other placement ever occurs.
	// The tag compare runs over the contiguous tags slice; metadata is
	// only consulted on a candidate match.
	for i := lo; i < hi; i++ {
		m := &c.meta[i]
		if c.tags[i] == tag && m.valid && int(m.domain) == domain {
			m.used = c.tick
			m.dirty = m.dirty || write
			c.stats[domain].Hits++
			if c.obsHits != nil {
				c.obsHits[domain].Inc()
			}
			return true
		}
	}
	// Shared policy: a line brought in by another domain still serves a
	// hit (shared physical line) — this cross-domain visibility is itself
	// part of the side channel.
	if c.policy == Shared {
		for i := base; i < base+c.ways; i++ {
			m := &c.meta[i]
			if c.tags[i] == tag && m.valid {
				m.used = c.tick
				m.dirty = m.dirty || write
				c.stats[domain].Hits++
				if c.obsHits != nil {
					c.obsHits[domain].Inc()
				}
				return true
			}
		}
	}

	// Miss: fill into the LRU way of the permitted range.
	victim := lo
	for i := lo; i < hi; i++ {
		m := &c.meta[i]
		if !m.valid {
			victim = i
			break
		}
		if m.used < c.meta[victim].used {
			victim = i
		}
	}
	if c.obsMisses != nil {
		c.obsMisses[domain].Inc()
		// Evictions are charged to the domain losing the line, which is
		// where cross-domain interference shows up under Shared.
		if v := c.meta[victim]; v.valid {
			c.obsEvictions[v.domain].Inc()
		}
	}
	c.tags[victim] = tag
	c.meta[victim] = lineMeta{used: c.tick, domain: int32(domain), valid: true, dirty: write}
	c.stats[domain].Misses++
	return false
}

// Contains reports whether pa is resident (without touching LRU state or
// stats) — the observability hook used by prime+probe tests.
func (c *Cache) Contains(pa mem.Addr) bool {
	set, tag := c.locate(pa)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag && c.meta[i].valid {
			return true
		}
	}
	return false
}

// FlushDomain invalidates every line belonging to domain — the cache-line
// scrub performed by nf_teardown ("The instruction also zeroes out the
// registers and cache lines used by F", §4.6). It returns the number of
// lines flushed.
func (c *Cache) FlushDomain(domain int) int {
	n := 0
	for i := range c.meta {
		if c.meta[i].valid && int(c.meta[i].domain) == domain {
			c.meta[i] = lineMeta{}
			c.tags[i] = 0
			n++
		}
	}
	return n
}

// ResetStats zeroes the per-domain counters (e.g. after warmup).
func (c *Cache) ResetStats() {
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}

// OccupancyOf returns how many lines domain currently holds.
func (c *Cache) OccupancyOf(domain int) int {
	n := 0
	for _, m := range c.meta {
		if m.valid && int(m.domain) == domain {
			n++
		}
	}
	return n
}
