// Package cache implements the set-associative cache hierarchy used by the
// timing simulator, together with the sharing policies §4.2 evaluates:
//
//   - Shared: the commodity baseline. Every security domain competes for
//     every way; cross-domain evictions are both a performance interference
//     channel and a classic prime+probe side channel.
//   - Static: S-NIC's hard partitioning — each domain receives an equal,
//     private slice of the ways ("Static partitioning allocated 1/N of the
//     cache to each of the N functions", §5.3). No line is ever shared or
//     stolen across domains, eliminating cache side channels.
//
// The cache exposes per-domain hit/miss statistics and, deliberately, the
// per-access hit/miss outcome — that observable is what a prime+probe
// attacker measures, and the attack tests use it to demonstrate leakage on
// Shared and silence on Static.
package cache

import (
	"fmt"
	"strconv"

	"snic/internal/mem"
	"snic/internal/obs"
)

// Policy selects the sharing discipline.
type Policy int

// Sharing policies.
const (
	Shared Policy = iota // full sharing (baseline, leaky)
	Static               // hard way-partitioning per domain (S-NIC)
)

func (p Policy) String() string {
	switch p {
	case Shared:
		return "shared"
	case Static:
		return "static"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Stats counts per-domain cache outcomes.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns the miss ratio (0 if no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses())
}

type line struct {
	tag    uint64
	domain int
	valid  bool
	dirty  bool
	used   uint64 // LRU timestamp
}

// Cache is one level of set-associative cache.
type Cache struct {
	name     string
	lineSize uint64
	sets     int
	ways     int
	policy   Policy
	domains  int
	lines    []line // sets*ways, row-major by set
	tick     uint64
	stats    []Stats
	// wayAlloc, when non-nil, overrides the equal static split with
	// explicit per-domain way ranges (installed by the SecDCP Resizer).
	wayAlloc [][2]int
	// obs handles, indexed by domain; nil until Observe attaches a
	// collector, so the unobserved hot path pays one nil check.
	obsHits, obsMisses, obsEvictions []*obs.Counter
}

// Config describes a cache level.
type Config struct {
	Name     string
	Size     uint64 // total bytes
	LineSize uint64 // bytes per line
	Ways     int
	Policy   Policy
	Domains  int // number of security domains sharing this cache (>=1)
}

// New builds a cache. Size must be divisible by LineSize*Ways. Under the
// Static policy, Ways must be >= Domains so each domain gets at least one
// private way.
func New(cfg Config) (*Cache, error) {
	if cfg.LineSize == 0 || cfg.Ways <= 0 || cfg.Size == 0 {
		return nil, fmt.Errorf("cache: bad config %+v", cfg)
	}
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	lines := cfg.Size / cfg.LineSize
	if lines%uint64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", lines, cfg.Ways)
	}
	sets := int(lines) / cfg.Ways
	if cfg.Policy == Static && cfg.Ways < cfg.Domains {
		return nil, fmt.Errorf("cache: %d ways cannot be partitioned across %d domains", cfg.Ways, cfg.Domains)
	}
	return &Cache{
		name:     cfg.Name,
		lineSize: cfg.LineSize,
		sets:     sets,
		ways:     cfg.Ways,
		policy:   cfg.Policy,
		domains:  cfg.Domains,
		lines:    make([]line, int(lines)),
		stats:    make([]Stats, cfg.Domains),
	}, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint64 { return c.lineSize }

// Stats returns the accumulated statistics for a domain.
func (c *Cache) Stats(domain int) Stats { return c.stats[domain] }

// Observe attaches per-domain hit/miss/eviction counters to reg under
// the given device label, one owner label per domain. A nil reg leaves
// the cache detached (instrumentation stays free).
func (c *Cache) Observe(reg *obs.Registry, device string) {
	if reg == nil {
		return
	}
	component := "cache/" + c.name
	c.obsHits = make([]*obs.Counter, c.domains)
	c.obsMisses = make([]*obs.Counter, c.domains)
	c.obsEvictions = make([]*obs.Counter, c.domains)
	for d := 0; d < c.domains; d++ {
		owner := "dom" + strconv.Itoa(d)
		c.obsHits[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "hits"})
		c.obsMisses[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "misses"})
		c.obsEvictions[d] = reg.Counter(obs.Label{Device: device, Owner: owner, Component: component, Name: "evictions"})
	}
}

// wayRange returns the half-open way interval domain may occupy.
func (c *Cache) wayRange(domain int) (int, int) {
	if c.policy == Shared {
		return 0, c.ways
	}
	if c.wayAlloc != nil {
		r := c.wayAlloc[domain]
		return r[0], r[1]
	}
	per := c.ways / c.domains
	lo := domain * per
	hi := lo + per
	if domain == c.domains-1 {
		hi = c.ways // last domain absorbs the remainder ways
	}
	return lo, hi
}

// Access looks up the line containing pa on behalf of domain. It returns
// true on a hit. On a miss the line is filled (evicting the domain's LRU
// victim within its permitted ways) and false is returned.
func (c *Cache) Access(pa mem.Addr, domain int, write bool) bool {
	c.tick++
	set := int((uint64(pa) / c.lineSize) % uint64(c.sets))
	tag := uint64(pa) / c.lineSize / uint64(c.sets)
	base := set * c.ways
	lo, hi := c.wayRange(domain)

	// Probe: under Shared a domain can hit on any way (Intel CAT-style
	// "soft" partitioning would hit across regions too — the paper notes
	// this is why CAT is insufficient). Under Static, hits can only come
	// from the domain's own ways, because no other placement ever occurs.
	for w := lo; w < hi; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag && l.domain == domain {
			l.used = c.tick
			l.dirty = l.dirty || write
			c.stats[domain].Hits++
			if c.obsHits != nil {
				c.obsHits[domain].Inc()
			}
			return true
		}
	}
	// Shared policy: a line brought in by another domain still serves a
	// hit (shared physical line) — this cross-domain visibility is itself
	// part of the side channel.
	if c.policy == Shared {
		for w := 0; w < c.ways; w++ {
			l := &c.lines[base+w]
			if l.valid && l.tag == tag {
				l.used = c.tick
				l.dirty = l.dirty || write
				c.stats[domain].Hits++
				if c.obsHits != nil {
					c.obsHits[domain].Inc()
				}
				return true
			}
		}
	}

	// Miss: fill into the LRU way of the permitted range.
	victim := base + lo
	for w := lo; w < hi; w++ {
		l := &c.lines[base+w]
		if !l.valid {
			victim = base + w
			break
		}
		if l.used < c.lines[victim].used {
			victim = base + w
		}
	}
	if c.obsMisses != nil {
		c.obsMisses[domain].Inc()
		// Evictions are charged to the domain losing the line, which is
		// where cross-domain interference shows up under Shared.
		if v := c.lines[victim]; v.valid {
			c.obsEvictions[v.domain].Inc()
		}
	}
	c.lines[victim] = line{tag: tag, domain: domain, valid: true, dirty: write, used: c.tick}
	c.stats[domain].Misses++
	return false
}

// Contains reports whether pa is resident (without touching LRU state or
// stats) — the observability hook used by prime+probe tests.
func (c *Cache) Contains(pa mem.Addr) bool {
	set := int((uint64(pa) / c.lineSize) % uint64(c.sets))
	tag := uint64(pa) / c.lineSize / uint64(c.sets)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := c.lines[base+w]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// FlushDomain invalidates every line belonging to domain — the cache-line
// scrub performed by nf_teardown ("The instruction also zeroes out the
// registers and cache lines used by F", §4.6). It returns the number of
// lines flushed.
func (c *Cache) FlushDomain(domain int) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].domain == domain {
			c.lines[i] = line{}
			n++
		}
	}
	return n
}

// ResetStats zeroes the per-domain counters (e.g. after warmup).
func (c *Cache) ResetStats() {
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}

// OccupancyOf returns how many lines domain currently holds.
func (c *Cache) OccupancyOf(domain int) int {
	n := 0
	for _, l := range c.lines {
		if l.valid && l.domain == domain {
			n++
		}
	}
	return n
}
