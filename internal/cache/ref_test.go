package cache

import (
	"fmt"
	"testing"

	"snic/internal/mem"
	"snic/internal/sim"
)

// refCache is the pre-optimization cache model, kept verbatim as the
// oracle for the shift/mask + structure-of-arrays rewrite: per-access
// div/mod indexing, an array-of-structs line store, and a wayRange
// recomputed on every access. The property test below drives both
// implementations with identical randomized traces and demands identical
// observable behaviour — hit/miss per access, eviction victims (checked
// through residency), and statistics.
type refLine struct {
	tag    uint64
	domain int
	valid  bool
	dirty  bool
	used   uint64
}

type refCache struct {
	lineSize uint64
	sets     int
	ways     int
	policy   Policy
	domains  int
	lines    []refLine
	tick     uint64
	stats    []Stats
	wayAlloc [][2]int
}

func newRefCache(cfg Config) *refCache {
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	lines := cfg.Size / cfg.LineSize
	return &refCache{
		lineSize: cfg.LineSize,
		sets:     int(lines) / cfg.Ways,
		ways:     cfg.Ways,
		policy:   cfg.Policy,
		domains:  cfg.Domains,
		lines:    make([]refLine, int(lines)),
		stats:    make([]Stats, cfg.Domains),
	}
}

func (c *refCache) wayRange(domain int) (int, int) {
	if c.policy == Shared {
		return 0, c.ways
	}
	if c.wayAlloc != nil {
		r := c.wayAlloc[domain]
		return r[0], r[1]
	}
	per := c.ways / c.domains
	lo := domain * per
	hi := lo + per
	if domain == c.domains-1 {
		hi = c.ways
	}
	return lo, hi
}

func (c *refCache) Access(pa mem.Addr, domain int, write bool) bool {
	c.tick++
	set := int((uint64(pa) / c.lineSize) % uint64(c.sets))
	tag := uint64(pa) / c.lineSize / uint64(c.sets)
	base := set * c.ways
	lo, hi := c.wayRange(domain)

	for w := lo; w < hi; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag && l.domain == domain {
			l.used = c.tick
			l.dirty = l.dirty || write
			c.stats[domain].Hits++
			return true
		}
	}
	if c.policy == Shared {
		for w := 0; w < c.ways; w++ {
			l := &c.lines[base+w]
			if l.valid && l.tag == tag {
				l.used = c.tick
				l.dirty = l.dirty || write
				c.stats[domain].Hits++
				return true
			}
		}
	}

	victim := base + lo
	for w := lo; w < hi; w++ {
		l := &c.lines[base+w]
		if !l.valid {
			victim = base + w
			break
		}
		if l.used < c.lines[victim].used {
			victim = base + w
		}
	}
	c.lines[victim] = refLine{tag: tag, domain: domain, valid: true, dirty: write, used: c.tick}
	c.stats[domain].Misses++
	return false
}

func (c *refCache) Contains(pa mem.Addr) bool {
	set := int((uint64(pa) / c.lineSize) % uint64(c.sets))
	tag := uint64(pa) / c.lineSize / uint64(c.sets)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := c.lines[base+w]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

func (c *refCache) FlushDomain(domain int) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].domain == domain {
			c.lines[i] = refLine{}
			n++
		}
	}
	return n
}

func (c *refCache) OccupancyOf(domain int) int {
	n := 0
	for _, l := range c.lines {
		if l.valid && l.domain == domain {
			n++
		}
	}
	return n
}

func (c *refCache) setWayAlloc(alloc [][2]int) {
	c.wayAlloc = alloc
	for set := 0; set < c.sets; set++ {
		base := set * c.ways
		for w := 0; w < c.ways; w++ {
			l := &c.lines[base+w]
			if !l.valid {
				continue
			}
			rangeOf := c.wayAlloc[l.domain]
			if w < rangeOf[0] || w >= rangeOf[1] {
				*l = refLine{}
			}
		}
	}
}

// randAlloc draws a valid contiguous way allocation: every domain gets at
// least one way and the ranges tile [0, ways).
func randAlloc(rng *sim.Rand, domains, ways int) [][2]int {
	cuts := make([]int, domains)
	for i := range cuts {
		cuts[i] = 1
	}
	for extra := ways - domains; extra > 0; extra-- {
		cuts[rng.Intn(domains)]++
	}
	alloc := make([][2]int, domains)
	lo := 0
	for d, w := range cuts {
		alloc[d] = [2]int{lo, lo + w}
		lo += w
	}
	return alloc
}

// TestRewriteMatchesReference drives the optimized cache and the retained
// reference through identical randomized traces — mixed domains, reads
// and writes, mid-trace flushes and SecDCP-style reallocations — over
// both power-of-two and non-power-of-two geometries, asserting identical
// hit/miss outcomes, statistics, residency, and occupancy throughout.
// Matching residency after every access pins the eviction victims too: a
// divergent victim leaves a differently-populated set behind.
func TestRewriteMatchesReference(t *testing.T) {
	geoms := []struct {
		cfg      Config
		wantPow2 bool
	}{
		{Config{Name: "p2-shared", Size: 16 << 10, LineSize: 64, Ways: 4, Policy: Shared, Domains: 3}, true},
		{Config{Name: "p2-static", Size: 16 << 10, LineSize: 64, Ways: 8, Policy: Static, Domains: 3}, true},
		{Config{Name: "p2-1dom", Size: 8 << 10, LineSize: 32, Ways: 2, Policy: Shared, Domains: 1}, true},
		// 12 KB / 64 B / 4 ways -> 48 sets: exercises the div/mod slow path.
		{Config{Name: "np2-shared", Size: 12 << 10, LineSize: 64, Ways: 4, Policy: Shared, Domains: 2}, false},
		{Config{Name: "np2-static", Size: 24 << 10, LineSize: 64, Ways: 8, Policy: Static, Domains: 4}, false},
	}
	for gi, g := range geoms {
		t.Run(g.cfg.Name, func(t *testing.T) {
			opt, err := New(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Pow2ForTest() != g.wantPow2 {
				t.Fatalf("pow2 = %v, want %v", opt.Pow2ForTest(), g.wantPow2)
			}
			ref := newRefCache(g.cfg)
			rng := sim.DeriveRand(0xCACE, "ref-equiv", g.cfg.Name, fmt.Sprint(gi))

			// Addresses cluster in a window a few times the cache size so
			// hits, misses, and evictions all occur often.
			window := g.cfg.Size * 3
			for step := 0; step < 20000; step++ {
				switch rng.Intn(97) {
				case 0:
					d := rng.Intn(g.cfg.Domains)
					if got, want := opt.FlushDomain(d), ref.FlushDomain(d); got != want {
						t.Fatalf("step %d: FlushDomain(%d) = %d, want %d", step, d, got, want)
					}
				case 1:
					if g.cfg.Policy == Static {
						alloc := randAlloc(rng, g.cfg.Domains, g.cfg.Ways)
						opt.SetWayAllocForTest(alloc)
						ref.setWayAlloc(alloc)
					}
				default:
					pa := mem.Addr(rng.Uint64() % window)
					d := rng.Intn(g.cfg.Domains)
					write := rng.Intn(3) == 0
					got := opt.Access(pa, d, write)
					want := ref.Access(pa, d, write)
					if got != want {
						t.Fatalf("step %d: Access(%#x, dom %d, write %v) = %v, want %v",
							step, pa, d, write, got, want)
					}
				}
				if step%500 == 0 {
					pa := mem.Addr(rng.Uint64() % window)
					if got, want := opt.Contains(pa), ref.Contains(pa); got != want {
						t.Fatalf("step %d: Contains(%#x) = %v, want %v", step, pa, got, want)
					}
					for d := 0; d < g.cfg.Domains; d++ {
						if got, want := opt.OccupancyOf(d), ref.OccupancyOf(d); got != want {
							t.Fatalf("step %d: OccupancyOf(%d) = %d, want %d", step, d, got, want)
						}
					}
				}
			}
			for d := 0; d < g.cfg.Domains; d++ {
				if opt.Stats(d) != ref.stats[d] {
					t.Errorf("domain %d stats diverge: %+v vs %+v", d, opt.Stats(d), ref.stats[d])
				}
			}
		})
	}
}

// TestAccessDoesNotAllocate pins the steady-state fast path at zero
// allocations per access (with and without an observer attached the path
// is identical; the observed variant is covered by the obs tests).
func TestAccessDoesNotAllocate(t *testing.T) {
	c, err := New(Config{Name: "L2", Size: 64 << 10, LineSize: 64, Ways: 8, Policy: Static, Domains: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.DeriveRand(0xCACE, "alloc-regression")
	addrs := make([]mem.Addr, 256)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Uint64() % (128 << 10))
	}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		c.Access(addrs[i%len(addrs)], i%2, i%3 == 0)
		i++
	}); avg != 0 {
		t.Errorf("Access allocates %.1f times per call, want 0", avg)
	}
}
