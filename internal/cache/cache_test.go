package cache

import (
	"testing"

	"snic/internal/mem"
	"snic/internal/sim"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T, policy Policy, domains int) *Cache {
	return mustNew(t, Config{
		Name: "L2", Size: 8 << 10, LineSize: 64, Ways: 4,
		Policy: policy, Domains: domains,
	})
}

func TestGeometry(t *testing.T) {
	c := small(t, Shared, 1)
	if c.Sets() != 32 || c.Ways() != 4 || c.LineSize() != 64 {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineSize())
	}
}

func TestBadConfigs(t *testing.T) {
	if _, err := New(Config{Size: 0, LineSize: 64, Ways: 4}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := New(Config{Size: 1 << 10, LineSize: 64, Ways: 0}); err == nil {
		t.Fatal("zero ways accepted")
	}
	// Static with more domains than ways is impossible.
	if _, err := New(Config{Size: 8 << 10, LineSize: 64, Ways: 2, Policy: Static, Domains: 4}); err == nil {
		t.Fatal("unpartitionable config accepted")
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := small(t, Shared, 1)
	if c.Access(0x1000, 0, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, 0, false) {
		t.Fatal("warm access missed")
	}
	s := c.Stats(0)
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSameLineDifferentByte(t *testing.T) {
	c := small(t, Shared, 1)
	c.Access(0x1000, 0, false)
	if !c.Access(0x1000+63, 0, false) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1000+64, 0, false) {
		t.Fatal("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t, Shared, 1) // 32 sets, 4 ways
	setStride := uint64(32 * 64)
	// Fill one set with 4 distinct tags.
	for i := uint64(0); i < 4; i++ {
		c.Access(mem.Addr(i*setStride), 0, false)
	}
	// Touch tag 0 so tag 1 becomes LRU.
	c.Access(0, 0, false)
	// A fifth tag evicts tag 1.
	c.Access(mem.Addr(4*setStride), 0, false)
	if !c.Access(0, 0, false) {
		t.Fatal("recently used line evicted")
	}
	if c.Access(mem.Addr(1*setStride), 0, false) {
		t.Fatal("LRU line survived")
	}
}

func TestSharedCrossDomainInterference(t *testing.T) {
	c := small(t, Shared, 2)
	setStride := uint64(32 * 64)
	// Domain 0 warms 4 lines of set 0.
	for i := uint64(0); i < 4; i++ {
		c.Access(mem.Addr(i*setStride), 0, false)
	}
	// Domain 1 thrashes the same set.
	for i := uint64(10); i < 14; i++ {
		c.Access(mem.Addr(i*setStride), 1, false)
	}
	// Domain 0's lines are gone: interference (and a side channel).
	c.ResetStats()
	for i := uint64(0); i < 4; i++ {
		c.Access(mem.Addr(i*setStride), 0, false)
	}
	if c.Stats(0).Misses == 0 {
		t.Fatal("no interference under shared policy?")
	}
}

func TestStaticPartitionIsolation(t *testing.T) {
	c := small(t, Static, 2) // 4 ways -> 2 per domain
	setStride := uint64(32 * 64)
	// Domain 0 warms its 2 ways of set 0.
	c.Access(0, 0, false)
	c.Access(mem.Addr(setStride), 0, false)
	// Domain 1 thrashes the same set heavily.
	for i := uint64(10); i < 30; i++ {
		c.Access(mem.Addr(i*setStride), 1, false)
	}
	// Domain 0's lines MUST survive: hard partition.
	c.ResetStats()
	c.Access(0, 0, false)
	c.Access(mem.Addr(setStride), 0, false)
	if c.Stats(0).Misses != 0 {
		t.Fatalf("static partition leaked evictions: %+v", c.Stats(0))
	}
}

func TestStaticNoCrossDomainHits(t *testing.T) {
	c := small(t, Static, 2)
	c.Access(0x2000, 0, false)
	// Domain 1 accessing the same physical line must MISS (no shared
	// lines across partitions — that read-hit sharing is the "soft
	// partitioning" hole the paper calls out in Intel CAT).
	if c.Access(0x2000, 1, false) {
		t.Fatal("cross-domain hit under static partitioning")
	}
}

func TestSharedCrossDomainHit(t *testing.T) {
	c := small(t, Shared, 2)
	c.Access(0x2000, 0, false)
	if !c.Access(0x2000, 1, false) {
		t.Fatal("shared policy should serve cross-domain hits")
	}
}

func TestFlushDomain(t *testing.T) {
	c := small(t, Shared, 2)
	c.Access(0x0, 0, false)
	c.Access(0x40, 0, false)
	c.Access(0x80, 1, false)
	if n := c.FlushDomain(0); n != 2 {
		t.Fatalf("flushed %d lines", n)
	}
	if c.OccupancyOf(0) != 0 {
		t.Fatal("domain 0 lines survive flush")
	}
	if c.OccupancyOf(1) != 1 {
		t.Fatal("domain 1 lines damaged by flush")
	}
	if c.Contains(0x0) {
		t.Fatal("flushed line still resident")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := small(t, Shared, 1)
	c.Access(0x0, 0, false)
	before := c.Stats(0)
	c.Contains(0x0)
	c.Contains(0x999940)
	if c.Stats(0) != before {
		t.Fatal("Contains changed stats")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty miss rate not 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 || s.Accesses() != 4 {
		t.Fatalf("stats math wrong: %+v", s)
	}
}

func TestLastDomainAbsorbsRemainderWays(t *testing.T) {
	// 4 ways, 3 domains: domains get 1,1,2 ways. All must be usable.
	c := mustNew(t, Config{Size: 8 << 10, LineSize: 64, Ways: 4, Policy: Static, Domains: 3})
	setStride := uint64(32 * 64)
	c.Access(0, 2, false)
	c.Access(mem.Addr(setStride), 2, false)
	c.ResetStats()
	c.Access(0, 2, false)
	c.Access(mem.Addr(setStride), 2, false)
	if c.Stats(2).Misses != 0 {
		t.Fatal("last domain did not get remainder ways")
	}
}

// Property-style: under Static, one domain's hit/miss sequence is
// completely independent of another domain's (interleaved) activity.
func TestStaticNonInterferenceProperty(t *testing.T) {
	run := func(withAttacker bool, seed uint64) []bool {
		c := small(t, Static, 2)
		rng := sim.NewRand(seed)
		attacker := sim.NewRand(999)
		var outcomes []bool
		for i := 0; i < 4000; i++ {
			va := mem.Addr(rng.Intn(1 << 14))
			outcomes = append(outcomes, c.Access(va, 0, false))
			if withAttacker {
				for j := 0; j < 3; j++ {
					c.Access(mem.Addr(attacker.Intn(1<<16)), 1, false)
				}
			}
		}
		return outcomes
	}
	quiet := run(false, 7)
	noisy := run(true, 7)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("access %d outcome changed by co-tenant activity", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Shared.String() != "shared" || Static.String() != "static" {
		t.Fatal("policy names")
	}
}

func secdcpCache(t *testing.T) (*Cache, *Resizer) {
	t.Helper()
	c := mustNew(t, Config{Size: 16 << 10, LineSize: 64, Ways: 8, Policy: Static, Domains: 3})
	r, err := NewResizer(c, []int{2, 2, 2}) // 2 flexible ways start with the NFs
	if err != nil {
		t.Fatal(err)
	}
	return c, r
}

func TestResizerInitialAllocation(t *testing.T) {
	_, r := secdcpCache(t)
	if r.Ways(0) != 2 || r.Ways(1) != 3 || r.Ways(2) != 3 {
		t.Fatalf("allocation = %d/%d/%d", r.Ways(0), r.Ways(1), r.Ways(2))
	}
}

func TestResizerValidation(t *testing.T) {
	shared := mustNew(t, Config{Size: 8 << 10, LineSize: 64, Ways: 4, Policy: Shared, Domains: 2})
	if _, err := NewResizer(shared, []int{1, 1}); err == nil {
		t.Fatal("shared cache accepted")
	}
	static := mustNew(t, Config{Size: 8 << 10, LineSize: 64, Ways: 4, Policy: Static, Domains: 2})
	if _, err := NewResizer(static, []int{1}); err == nil {
		t.Fatal("wrong minimum count accepted")
	}
	if _, err := NewResizer(static, []int{3, 3}); err == nil {
		t.Fatal("over-subscribed minimums accepted")
	}
	if _, err := NewResizer(static, []int{0, 1}); err == nil {
		t.Fatal("zero minimum accepted")
	}
}

func TestResizerGrowsOSUnderPressure(t *testing.T) {
	c, r := secdcpCache(t)
	rng := sim.NewRand(3)
	// The OS thrashes (way beyond its slice): Tick should grow domain 0.
	for i := 0; i < 500; i++ {
		c.Access(mem.Addr(rng.Intn(1<<20))&^63, 0, false)
	}
	r.Tick()
	if r.Ways(0) != 3 {
		t.Fatalf("OS ways = %d after pressure, want 3", r.Ways(0))
	}
	// NF minimums are never violated no matter how long pressure lasts.
	for e := 0; e < 10; e++ {
		for i := 0; i < 500; i++ {
			c.Access(mem.Addr(rng.Intn(1<<20))&^63, 0, false)
		}
		r.Tick()
	}
	if r.Ways(1) < 2 || r.Ways(2) < 2 {
		t.Fatalf("NF minimums violated: %d/%d", r.Ways(1), r.Ways(2))
	}
}

func TestResizerReturnsWaysWhenRelaxed(t *testing.T) {
	c, r := secdcpCache(t)
	rng := sim.NewRand(4)
	for i := 0; i < 500; i++ {
		c.Access(mem.Addr(rng.Intn(1<<20))&^63, 0, false)
	}
	r.Tick() // grows OS to 5
	grown := r.Ways(0)
	// Quiet OS epochs: ways drift back toward NFs.
	for e := 0; e < 5; e++ {
		r.Tick()
	}
	if r.Ways(0) >= grown {
		t.Fatalf("OS kept %d ways despite being idle", r.Ways(0))
	}
}

func TestResizerFlushesStrandedLines(t *testing.T) {
	c, r := secdcpCache(t)
	rng := sim.NewRand(5)
	// NF domain 2 warms lines in its current ways.
	var addrs []mem.Addr
	for i := 0; i < 64; i++ {
		a := mem.Addr(i*64*int(c.Sets())) & ^mem.Addr(63)
		c.Access(a, 2, false)
		addrs = append(addrs, a)
	}
	// Force a reshuffle by pressuring the OS.
	for i := 0; i < 500; i++ {
		c.Access(mem.Addr(rng.Intn(1<<20))&^63, 0, false)
	}
	r.Tick()
	// No line may live outside its owner's range (checked indirectly:
	// every resident line of domain 2 must still hit for domain 2 only
	// within its new ways, and occupancy must not exceed its allocation).
	maxLines := r.Ways(2) * c.Sets()
	if c.OccupancyOf(2) > maxLines {
		t.Fatalf("domain 2 holds %d lines with only %d ways", c.OccupancyOf(2), r.Ways(2))
	}
	_ = addrs
}

// The SecDCP information-flow property: the resize schedule depends only
// on the OS's behaviour. Whatever the NFs do, the sequence of allocations
// is identical.
func TestResizerIgnoresNFBehaviour(t *testing.T) {
	run := func(nfActive bool) []int {
		c, r := secdcpCache(t)
		osRng := sim.NewRand(7)
		nfRng := sim.NewRand(8)
		var allocs []int
		for e := 0; e < 20; e++ {
			for i := 0; i < 300; i++ {
				c.Access(mem.Addr(osRng.Intn(1<<18))&^63, 0, false)
				if nfActive {
					c.Access(mem.Addr(nfRng.Intn(1<<22))&^63, 1, false)
					c.Access(mem.Addr(nfRng.Intn(1<<22))&^63, 2, true)
				}
			}
			r.Tick()
			allocs = append(allocs, r.Ways(0))
		}
		return allocs
	}
	quiet := run(false)
	noisy := run(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("epoch %d: allocation %d vs %d — NF behaviour leaked into resize",
				i, quiet[i], noisy[i])
		}
	}
}
