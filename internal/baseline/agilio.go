package baseline

import (
	"fmt"

	"snic/internal/bus"
	"snic/internal/mem"
)

// Agilio models the Netronome architecture: islands of programmable cores
// with island-private SRAM, raw physical addressing of the shared memory
// banks, shared cryptographic accelerators, and — critically for §3.3 —
// an internal bus with no bandwidth reservations.
type Agilio struct {
	pm   *mem.Physical
	bus  *bus.Tracker
	cost uint64 // bus cycles per memory transaction

	// watchdogCycles: if a single request waits longer than this, the NIC
	// "hard-crashes, requiring a power cycle to recover" (§3.3).
	watchdogCycles uint64
	crashed        bool

	// Shared crypto accelerator: one unit, FIFO service.
	cryptoFree uint64
	cryptoCost uint64
}

// NewAgilio builds the model with n bus clients (islands).
func NewAgilio(memBytes uint64, islands int) (*Agilio, error) {
	pm, err := mem.NewPhysical(memBytes, 64<<10)
	if err != nil {
		return nil, err
	}
	return &Agilio{
		pm:             pm,
		bus:            bus.NewTracker(bus.NewFIFO(), islands),
		cost:           8,
		watchdogCycles: 1 << 20,
		cryptoCost:     2000,
	}, nil
}

// Memory exposes the DRAM (raw physical addressing, like the real part).
func (a *Agilio) Memory() *mem.Physical { return a.pm }

// Crashed reports whether the bus DoS has wedged the NIC.
func (a *Agilio) Crashed() bool { return a.crashed }

// BusOp issues one memory transaction from an island at local time now,
// returning the completion cycle. A wait beyond the watchdog marks the
// NIC crashed (every subsequent op fails).
func (a *Agilio) BusOp(island int, now uint64) (uint64, error) {
	if a.crashed {
		return 0, fmt.Errorf("baseline: NIC crashed; power cycle required")
	}
	start := a.bus.Request(island, now, a.cost)
	if start-now > a.watchdogCycles {
		a.crashed = true
		return 0, fmt.Errorf("baseline: bus watchdog expired (waited %d cycles)", start-now)
	}
	return start + a.cost, nil
}

// BusStats exposes per-island bus statistics.
func (a *Agilio) BusStats(island int) bus.Stats { return a.bus.Stats(island) }

// CryptoOp models one operation on the shared crypto accelerator at local
// time now, returning (completion, queueing delay). The queueing delay is
// the §3.2 side channel: it reveals whether other cores are doing
// cryptography.
func (a *Agilio) CryptoOp(now uint64) (done, waited uint64) {
	start := now
	if a.cryptoFree > start {
		start = a.cryptoFree
	}
	a.cryptoFree = start + a.cryptoCost
	return start + a.cryptoCost, start - now
}
