package baseline

import (
	"bytes"
	"testing"

	"snic/internal/mem"
)

func TestLiquidIOAllocAndMeta(t *testing.T) {
	l, err := NewLiquidIO(8<<20, SES, false)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := l.AllocBuf(mem.FirstNF, 1024, TagPacket)
	if err != nil {
		t.Fatal(err)
	}
	m, err := l.ReadMeta(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Owner != mem.FirstNF || m.Addr != addr || m.Len != 1024 || m.Tag != TagPacket {
		t.Fatalf("meta = %+v", m)
	}
	if l.MetaLen() != 1 {
		t.Fatalf("metaLen = %d", l.MetaLen())
	}
}

func TestXkphysGivesRawAccess(t *testing.T) {
	l, _ := NewLiquidIO(8<<20, SES, false) // SES forces xkphys on
	addr, _ := l.AllocBuf(mem.FirstNF, 64, TagGeneric)
	l.Memory().Write(addr, []byte("victim data"))
	buf := make([]byte, 11)
	if err := l.XkphysRead(mem.FirstNF+1, addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("victim data")) {
		t.Fatal("raw read failed")
	}
	if err := l.XkphysWrite(mem.FirstNF+1, addr, []byte("OWNED")); err != nil {
		t.Fatal(err)
	}
}

func TestSEUMWithoutXkphysBlocksRawAccess(t *testing.T) {
	l, _ := NewLiquidIO(8<<20, SEUM, false)
	if err := l.XkphysRead(mem.FirstNF, 0, make([]byte, 8)); err == nil {
		t.Fatal("xkphys-off read allowed")
	}
	if err := l.XkphysWrite(mem.FirstNF, 0, []byte{1}); err == nil {
		t.Fatal("xkphys-off write allowed")
	}
}

func TestAgilioBusAndCrash(t *testing.T) {
	a, err := NewAgilio(8<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	done, err := a.BusOp(0, 0)
	if err != nil || done == 0 {
		t.Fatalf("op: %v", err)
	}
	// Force the watchdog: attacker floods at time 0.
	for i := 0; i < 500000 && !a.Crashed(); i++ {
		a.BusOp(0, 0)
	}
	if !a.Crashed() {
		t.Fatal("watchdog never tripped")
	}
	if _, err := a.BusOp(1, 0); err == nil {
		t.Fatal("crashed NIC served an op")
	}
}

func TestAgilioCryptoContention(t *testing.T) {
	a, _ := NewAgilio(8<<20, 2)
	_, w1 := a.CryptoOp(0)
	if w1 != 0 {
		t.Fatal("idle accelerator queued")
	}
	_, w2 := a.CryptoOp(0)
	if w2 == 0 {
		t.Fatal("contended accelerator did not queue")
	}
}

func TestBlueFieldWorlds(t *testing.T) {
	b, err := NewBlueField(8<<20, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.CreateTrustlet(mem.FirstNF, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SecureWrite(r.Start, []byte("trusted state")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 13)
	if err := b.NormalRead(r.Start, buf); err == nil {
		t.Fatal("normal world read secure memory")
	}
	if err := b.SecureRead(r.Start, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("trusted state")) {
		t.Fatal("secure read mismatch")
	}
	// Normal memory is accessible from the normal world.
	if err := b.NormalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.TrustletRange(mem.FirstNF); !ok {
		t.Fatal("trustlet not recorded")
	}
}

func TestBlueFieldValidation(t *testing.T) {
	if _, err := NewBlueField(1<<20, 2<<20); err == nil {
		t.Fatal("secure region larger than DRAM accepted")
	}
	b, _ := NewBlueField(4<<20, 1<<20)
	if _, err := b.CreateTrustlet(mem.FirstNF, 2<<20); err == nil {
		t.Fatal("oversized trustlet accepted")
	}
}
