package baseline

import (
	"fmt"

	"snic/internal/mem"
)

// BlueField models the TrustZone-based architecture: memory is split into
// a normal region and a secure region; normal-world code cannot touch
// secure memory, but secure-world code (the management OS / OP-TEE) can
// access ALL memory — including every trustlet's private state. That
// asymmetry is the §3.2 finding: "BlueField does not isolate a network
// function from the secure-world management OS."
type BlueField struct {
	pm          *mem.Physical
	secureBase  mem.Addr
	secureBytes uint64
	trustlets   map[mem.Owner]mem.Range
	nextSecure  mem.Addr
}

// NewBlueField builds the model; the top secureBytes of DRAM form the
// secure region.
func NewBlueField(memBytes, secureBytes uint64) (*BlueField, error) {
	if secureBytes >= memBytes {
		return nil, fmt.Errorf("baseline: secure region exceeds DRAM")
	}
	pm, err := mem.NewPhysical(memBytes, 64<<10)
	if err != nil {
		return nil, err
	}
	base := mem.Addr(memBytes - secureBytes)
	return &BlueField{
		pm:          pm,
		secureBase:  base,
		secureBytes: secureBytes,
		trustlets:   make(map[mem.Owner]mem.Range),
		nextSecure:  base,
	}, nil
}

// Memory exposes the DRAM.
func (b *BlueField) Memory() *mem.Physical { return b.pm }

func (b *BlueField) inSecure(pa mem.Addr, n int) bool {
	return pa >= b.secureBase && uint64(pa)+uint64(n) <= uint64(b.secureBase)+b.secureBytes
}

// CreateTrustlet places a function's trusted state in the secure world.
func (b *BlueField) CreateTrustlet(owner mem.Owner, n uint64) (mem.Range, error) {
	if uint64(b.nextSecure)+n > uint64(b.secureBase)+b.secureBytes {
		return mem.Range{}, fmt.Errorf("baseline: secure region exhausted")
	}
	r := mem.Range{Start: b.nextSecure, Frames: (n + b.pm.FrameSize() - 1) / b.pm.FrameSize()}
	b.nextSecure += mem.Addr((n + 63) &^ 63)
	b.trustlets[owner] = r
	return r, nil
}

// NormalRead is a normal-world access: the TrustZone address-space
// controller blocks secure addresses.
func (b *BlueField) NormalRead(pa mem.Addr, buf []byte) error {
	if b.inSecure(pa, len(buf)) || (pa < b.secureBase && uint64(pa)+uint64(len(buf)) > uint64(b.secureBase)) {
		return fmt.Errorf("baseline: TrustZone blocks normal-world access to secure memory")
	}
	return b.pm.Read(pa, buf)
}

// NormalWrite is a normal-world write: like NormalRead, the TrustZone
// address-space controller blocks secure addresses.
func (b *BlueField) NormalWrite(pa mem.Addr, data []byte) error {
	if b.inSecure(pa, len(data)) || (pa < b.secureBase && uint64(pa)+uint64(len(data)) > uint64(b.secureBase)) {
		return fmt.Errorf("baseline: TrustZone blocks normal-world access to secure memory")
	}
	return b.pm.Write(pa, data)
}

// SecureRead is a secure-world access: the management OS can read
// ANYTHING, including other tenants' trustlets. This is the hole S-NIC
// closes.
func (b *BlueField) SecureRead(pa mem.Addr, buf []byte) error {
	return b.pm.Read(pa, buf)
}

// SecureWrite lets the secure world modify anything.
func (b *BlueField) SecureWrite(pa mem.Addr, data []byte) error {
	return b.pm.Write(pa, data)
}

// TrustletRange returns where a trustlet's state lives (the trustlet's
// own view; other trustlets shouldn't know it, but the secure OS does).
func (b *BlueField) TrustletRange(owner mem.Owner) (mem.Range, bool) {
	r, ok := b.trustlets[owner]
	return r, ok
}
