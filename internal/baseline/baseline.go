// Package baseline models the three commodity smart-NIC architectures of
// §3.2, with exactly the weaknesses §3.3 exploits:
//
//   - LiquidIO (SE-S / SE-UM): every MIPS core can address all physical
//     memory through xkphys, and the shared packet-buffer allocator keeps
//     its metadata in ordinary DRAM — so any function can find and touch
//     any other function's buffers.
//   - Agilio: raw physical addressing from all islands, shared
//     cryptographic accelerators whose latency leaks co-tenant activity,
//     and an internal bus with no bandwidth reservations (the DoS target).
//   - BlueField: TrustZone gives normal/secure world separation, but the
//     secure-world management OS can read every function's memory, and
//     nothing isolates microarchitectural state.
//
// These models share the same substrates as the S-NIC device, so the
// attack suite (internal/attacks) can run the identical attack against
// both and show it succeed here and fail there.
package baseline

import (
	"fmt"

	"snic/internal/mem"
)

// Mode selects the LiquidIO execution model (§3.2).
type Mode int

// LiquidIO execution modes.
const (
	SES  Mode = iota // bootloader-installed NFs, all privileged, xkphys for all
	SEUM             // Linux processes; xkphys optional per configuration
)

// BufMeta is one entry of the shared buffer allocator's metadata table.
// On a real LiquidIO these records live in ordinary DRAM at well-known
// addresses, which is precisely what the packet-corruption and
// ruleset-theft attacks scan.
type BufMeta struct {
	Owner mem.Owner
	Addr  mem.Addr
	Len   uint32
	Tag   uint32 // allocator cookie ("what kind of buffer")
}

// Buffer tags used by the attack demos.
const (
	TagPacket  uint32 = 0x504B5431 // "PKT1"
	TagDPIRule uint32 = 0x52554C31 // "RUL1"
	TagGeneric uint32 = 0x42554631 // "BUF1"
)

// metaEntryBytes is the serialized size of a BufMeta record in DRAM.
const metaEntryBytes = 24

// LiquidIO is the shared-memory commodity NIC.
type LiquidIO struct {
	pm       *mem.Physical
	mode     Mode
	xkphysOn bool
	metaBase mem.Addr
	metaCap  int
	metaLen  int
	heapNext mem.Addr
}

// NewLiquidIO builds the NIC with the given DRAM size. In SES mode (and
// SEUM with xkphys enabled) every function gets raw physical access.
func NewLiquidIO(memBytes uint64, mode Mode, xkphys bool) (*LiquidIO, error) {
	pm, err := mem.NewPhysical(memBytes, 64<<10)
	if err != nil {
		return nil, err
	}
	l := &LiquidIO{
		pm: pm, mode: mode, xkphysOn: xkphys || mode == SES,
		metaBase: 0, metaCap: 1024,
		heapNext: mem.Addr(uint64(1024) * metaEntryBytes),
	}
	return l, nil
}

// Memory exposes the DRAM.
func (l *LiquidIO) Memory() *mem.Physical { return l.pm }

// AllocBuf carves a buffer for owner from the shared pool and records its
// metadata in DRAM, exactly like the buffer allocator the attacks scan.
func (l *LiquidIO) AllocBuf(owner mem.Owner, n uint32, tag uint32) (mem.Addr, error) {
	if l.metaLen >= l.metaCap {
		return 0, fmt.Errorf("baseline: allocator metadata full")
	}
	addr := l.heapNext
	if uint64(addr)+uint64(n) > l.pm.Size() {
		return 0, fmt.Errorf("baseline: out of buffer memory")
	}
	l.heapNext += mem.Addr((uint64(n) + 63) &^ 63)
	meta := BufMeta{Owner: owner, Addr: addr, Len: n, Tag: tag}
	if err := l.writeMeta(l.metaLen, meta); err != nil {
		return 0, err
	}
	l.metaLen++
	return addr, nil
}

func (l *LiquidIO) writeMeta(i int, m BufMeta) error {
	base := l.metaBase + mem.Addr(i*metaEntryBytes)
	if err := l.pm.WriteU64(base, uint64(m.Owner)); err != nil {
		return err
	}
	if err := l.pm.WriteU64(base+8, uint64(m.Addr)); err != nil {
		return err
	}
	return l.pm.WriteU64(base+16, uint64(m.Len)|uint64(m.Tag)<<32)
}

// ReadMeta decodes metadata entry i — note this needs nothing more than
// DRAM reads, so ANY core with xkphys can do it.
func (l *LiquidIO) ReadMeta(i int) (BufMeta, error) {
	base := l.metaBase + mem.Addr(i*metaEntryBytes)
	owner, err := l.pm.ReadU64(base)
	if err != nil {
		return BufMeta{}, err
	}
	addr, err := l.pm.ReadU64(base + 8)
	if err != nil {
		return BufMeta{}, err
	}
	lenTag, err := l.pm.ReadU64(base + 16)
	if err != nil {
		return BufMeta{}, err
	}
	return BufMeta{
		Owner: mem.Owner(owner),
		Addr:  mem.Addr(addr),
		Len:   uint32(lenTag),
		Tag:   uint32(lenTag >> 32),
	}, nil
}

// MetaLen returns the number of live metadata entries.
func (l *LiquidIO) MetaLen() int { return l.metaLen }

// XkphysRead lets a function read ANY physical address. This is the §3.2
// observation: "an NF can read and write arbitrary physical addresses."
func (l *LiquidIO) XkphysRead(from mem.Owner, pa mem.Addr, buf []byte) error {
	if !l.xkphysOn {
		return fmt.Errorf("baseline: xkphys disabled for functions")
	}
	return l.pm.Read(pa, buf)
}

// XkphysWrite lets a function write ANY physical address.
func (l *LiquidIO) XkphysWrite(from mem.Owner, pa mem.Addr, data []byte) error {
	if !l.xkphysOn {
		return fmt.Errorf("baseline: xkphys disabled for functions")
	}
	return l.pm.Write(pa, data)
}
