package nicos

import (
	"testing"

	"snic/internal/attest"
	"snic/internal/snic"
)

func newOS(t *testing.T) *OS {
	t.Helper()
	v, err := attest.NewVendor("V", nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := snic.New(snic.Config{Cores: 4, MemBytes: 16 << 20}, v)
	if err != nil {
		t.Fatal(err)
	}
	return New(d)
}

func spec(mask uint64) snic.LaunchSpec {
	return snic.LaunchSpec{CoreMask: mask, Image: []byte("img"), MemBytes: 1 << 20, DMACore: -1}
}

func TestCreateDestroyLifecycle(t *testing.T) {
	o := newOS(t)
	id, rep, err := o.NFCreate("firewall", spec(0b01))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMS() <= 0 || o.Running() != 1 || o.NameOf(id) != "firewall" {
		t.Fatalf("rep=%+v running=%d name=%q", rep, o.Running(), o.NameOf(id))
	}
	tr, err := o.NFDestroy(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalMS() <= 0 || o.Running() != 0 {
		t.Fatalf("tr=%+v running=%d", tr, o.Running())
	}
}

func TestCreateFailurePropagates(t *testing.T) {
	o := newOS(t)
	if _, _, err := o.NFCreate("bad", spec(0)); err == nil {
		t.Fatal("empty mask accepted")
	}
	if o.Running() != 0 {
		t.Fatal("failed create recorded")
	}
}

func TestDestroyUnknownFails(t *testing.T) {
	o := newOS(t)
	if _, err := o.NFDestroy(99); err == nil {
		t.Fatal("unknown destroy accepted")
	}
}

func TestMultiTenant(t *testing.T) {
	o := newOS(t)
	a, _, err := o.NFCreate("nf-a", spec(0b01))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := o.NFCreate("nf-b", spec(0b10))
	if err != nil {
		t.Fatal(err)
	}
	if a == b || o.Running() != 2 {
		t.Fatal("tenants collide")
	}
	// The OS cannot map tenant memory even though it created the NFs.
	vn := o.Device().NF(a)
	if err := o.Device().MgmtMap(0, vn.Mem.Start, 128<<10); err == nil {
		t.Fatal("NIC OS mapped tenant memory")
	}
}
