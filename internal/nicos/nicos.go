// Package nicos is the datacenter-provided management OS that runs on the
// S-NIC's management core. It implements the host-visible management API
// of Table 1 (NF_create / NF_destroy) on top of the trusted instructions.
//
// The NIC OS is explicitly untrusted: it stages function images and picks
// resource assignments, but once nf_launch completes it cannot read,
// write, or even map the function's memory (the denylist dual-walk
// rejects it), and remote attestation catches any image it mis-staged.
package nicos

import (
	"fmt"

	"snic/internal/snic"
)

// OS is the management software instance.
type OS struct {
	dev *snic.Device

	// Launched tracks the NFs this OS created (its own bookkeeping; the
	// authoritative state is in hardware).
	launched map[snic.ID]string
}

// New boots the NIC OS on a device.
func New(dev *snic.Device) *OS {
	return &OS{dev: dev, launched: make(map[snic.ID]string)}
}

// NFCreate implements Table 1's NF_create: stage the image from host
// memory (modelled by the spec's Image field), pick resources, and invoke
// nf_launch.
func (o *OS) NFCreate(name string, spec snic.LaunchSpec) (snic.ID, snic.LaunchReport, error) {
	rep, err := o.dev.Launch(spec)
	if err != nil {
		return 0, snic.LaunchReport{}, fmt.Errorf("nicos: NF_create(%s): %w", name, err)
	}
	o.launched[rep.ID] = name
	return rep.ID, rep, nil
}

// NFDestroy implements Table 1's NF_destroy via nf_teardown.
func (o *OS) NFDestroy(id snic.ID) (snic.TeardownReport, error) {
	rep, err := o.dev.Teardown(id)
	if err != nil {
		return snic.TeardownReport{}, fmt.Errorf("nicos: NF_destroy(%d): %w", id, err)
	}
	delete(o.launched, id)
	return rep, nil
}

// NameOf returns the OS's recorded name for an NF.
func (o *OS) NameOf(id snic.ID) string { return o.launched[id] }

// Running lists the NFs this OS believes are live.
func (o *OS) Running() int { return len(o.launched) }

// Device exposes the device for management-path operations. A *malicious*
// NIC OS (the threat the paper defends against) uses this to try to map
// and read tenant memory; the hardware refuses.
func (o *OS) Device() *snic.Device { return o.dev }
