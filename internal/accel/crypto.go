package accel

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"

	"snic/internal/mem"
	"snic/internal/tlb"
)

// CRYPTO is the cryptographic accelerator kind. The paper's launch
// example (§4.1) provisions "a virtual smart NIC with three cores, 40 MB
// of RAM, two cryptographic accelerators, and a compression accelerator";
// on the Agilio baseline the *shared* crypto units are a contention side
// channel (§3.2), which S-NIC removes by dedicating clusters.
const CRYPTO Kind = 3

// cryptoTLBEntries sizes the vCrypto bank: instruction queue, packet
// descriptor buffer, packet buffer, and output buffer under 2 MB pages
// (mirroring the DPI/ZIP inventories of Table 7, minus the big graph).
const cryptoTLBEntries = 6

func init() {
	// Extend the kind tables without touching the published Table 7 set.
	kindNames[CRYPTO] = "CRYPTO"
	kindTLB[CRYPTO] = cryptoTLBEntries
}

// VCrypto is a virtual cryptographic unit: AES-256-GCM over buffers in
// the owning NF's address space. The key is installed through the NF's
// own mapping (memory-mapped accelerator registers are "privately and
// directly mapped to a well-known location in the function's virtual
// address space", §4.3), so neither the NIC OS nor other NFs can read or
// replace it.
type VCrypto struct {
	Cluster *Cluster
	aead    cipher.AEAD
}

// NewVCrypto wraps a CRYPTO cluster with a tenant key.
func NewVCrypto(c *Cluster, key [32]byte) (*VCrypto, error) {
	if c.Kind != CRYPTO {
		return nil, fmt.Errorf("accel: cluster is %s, not CRYPTO", c.Kind)
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &VCrypto{Cluster: c, aead: aead}, nil
}

// SealBuffer encrypts n bytes at srcVA into dstVA with the given nonce
// (12 bytes), returning the ciphertext length (n + tag).
func (v *VCrypto) SealBuffer(pm *mem.Physical, srcVA tlb.VAddr, n int, nonce []byte, dstVA tlb.VAddr) (int, error) {
	if len(nonce) != v.aead.NonceSize() {
		return 0, fmt.Errorf("accel: nonce must be %d bytes", v.aead.NonceSize())
	}
	src, err := v.Cluster.read(pm, srcVA, n)
	if err != nil {
		return 0, err
	}
	ct := v.aead.Seal(nil, nonce, src, nil)
	if err := v.Cluster.write(pm, dstVA, ct); err != nil {
		return 0, err
	}
	return len(ct), nil
}

// OpenBuffer authenticates and decrypts n ciphertext bytes at srcVA into
// dstVA, returning the plaintext length. Tampered input fails.
func (v *VCrypto) OpenBuffer(pm *mem.Physical, srcVA tlb.VAddr, n int, nonce []byte, dstVA tlb.VAddr) (int, error) {
	if len(nonce) != v.aead.NonceSize() {
		return 0, fmt.Errorf("accel: nonce must be %d bytes", v.aead.NonceSize())
	}
	src, err := v.Cluster.read(pm, srcVA, n)
	if err != nil {
		return 0, err
	}
	pt, err := v.aead.Open(nil, nonce, src, nil)
	if err != nil {
		return 0, fmt.Errorf("accel: authentication failed: %w", err)
	}
	if err := v.Cluster.write(pm, dstVA, pt); err != nil {
		return 0, err
	}
	return len(pt), nil
}
