package accel

// Figure 8's timing model: a cluster's frontend scheduler dispatches
// requests to hardware threads one at a time (a serialized dispatch cost),
// and each thread then walks the DPI graph at a per-byte cost dominated by
// graph-cache misses to DRAM. Small frames saturate the dispatcher; large
// frames saturate the threads — which is exactly the crossover Figure 8
// shows ("as packet sizes grow ... a function benefits from access to
// more hardware threads").
//
// Calibration (1.2 GHz clock, matching the Marvell part the paper
// stress-tests): dispatch ≈ 1000 cycles/request; per-request setup
// ≈ 15000 cycles (graph root working set refill); scan ≈ 15.6 cycles/byte.

// PerfParams calibrates the DPI throughput model.
type PerfParams struct {
	ClockHz        float64
	DispatchCycles uint64  // serialized frontend cost per request
	SetupCycles    uint64  // per-request thread-side fixed cost
	CyclesPerByte  float64 // graph-walk cost per payload byte
}

// DefaultDPIPerf returns the Figure 8 calibration.
func DefaultDPIPerf() PerfParams {
	return PerfParams{
		ClockHz:        1.2e9,
		DispatchCycles: 1000,
		SetupCycles:    15000,
		CyclesPerByte:  15.6,
	}
}

// SimulateThroughput runs a discrete-event closed-loop simulation of one
// cluster with `threads` hardware threads processing `requests` frames of
// `frameBytes` each, returning throughput in packets/second. Work is
// always available (the 16 programmable cores of §C generate frames
// faster than the accelerator drains them).
func SimulateThroughput(p PerfParams, threads int, frameBytes int, requests int) float64 {
	if threads <= 0 || requests <= 0 {
		return 0
	}
	service := p.SetupCycles + uint64(float64(frameBytes)*p.CyclesPerByte)
	threadFree := make([]uint64, threads)
	var dispatcherFree uint64
	var finish uint64
	for r := 0; r < requests; r++ {
		// Pick the earliest-free thread.
		best := 0
		for i := 1; i < threads; i++ {
			if threadFree[i] < threadFree[best] {
				best = i
			}
		}
		start := threadFree[best]
		if dispatcherFree > start {
			start = dispatcherFree
		}
		dispatcherFree = start + p.DispatchCycles
		done := start + p.DispatchCycles + service
		threadFree[best] = done
		if done > finish {
			finish = done
		}
	}
	seconds := float64(finish) / p.ClockHz
	return float64(requests) / seconds
}

// Mpps converts packets/second to millions of packets/second.
func Mpps(pps float64) float64 { return pps / 1e6 }
