package accel

import (
	"bytes"
	"errors"
	"testing"

	"snic/internal/ac"
	"snic/internal/mem"
	"snic/internal/sim"
	"snic/internal/tlb"
)

const page = 128 << 10

func setup(t *testing.T) (*mem.Physical, *Accelerator) {
	t.Helper()
	pm, err := mem.NewPhysical(64<<20, page)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(DPI, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	return pm, a
}

// mapRegion allocates n bytes for owner and returns TLB entries mapping
// them at va 0.
func mapRegion(t *testing.T, pm *mem.Physical, owner mem.Owner, n uint64) (mem.Range, []tlb.Entry) {
	t.Helper()
	r, err := pm.AllocBytes(owner, n)
	if err != nil {
		t.Fatal(err)
	}
	var entries []tlb.Entry
	for i := uint64(0); i < r.Frames; i++ {
		entries = append(entries, tlb.Entry{
			VA:   tlb.VAddr(i * page),
			PA:   r.Start + mem.Addr(i*page),
			Size: page,
			Perm: tlb.PermRW,
		})
	}
	return r, entries
}

func TestGeometryValidation(t *testing.T) {
	if _, err := New(DPI, 64, 0); err == nil {
		t.Fatal("zero cluster size accepted")
	}
	if _, err := New(DPI, 64, 48); err == nil {
		t.Fatal("non-dividing cluster size accepted")
	}
	a, _ := New(ZIP, 64, 8)
	if a.NumClusters() != 8 || a.FreeClusters() != 8 {
		t.Fatalf("clusters = %d free = %d", a.NumClusters(), a.FreeClusters())
	}
}

func TestAllocBindsAndReleases(t *testing.T) {
	pm, a := setup(t)
	_, entries := mapRegion(t, pm, mem.FirstNF, 2*page)
	cs, err := a.Alloc(mem.FirstNF, 2, entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || a.FreeClusters() != 2 {
		t.Fatalf("bound %d, free %d", len(cs), a.FreeClusters())
	}
	for _, c := range cs {
		if c.Owner() != mem.FirstNF || !c.TLB.Locked() {
			t.Fatal("cluster not bound/locked")
		}
	}
	if n := a.Release(mem.FirstNF); n != 2 {
		t.Fatalf("released %d", n)
	}
	if a.FreeClusters() != 4 {
		t.Fatal("release did not free")
	}
}

func TestAllocInsufficientClusters(t *testing.T) {
	pm, a := setup(t)
	_, entries := mapRegion(t, pm, mem.FirstNF, page)
	if _, err := a.Alloc(mem.FirstNF, 5, entries); err == nil {
		t.Fatal("overallocation accepted")
	}
	if a.FreeClusters() != 4 {
		t.Fatal("failed alloc leaked clusters")
	}
}

func TestAllocAtomicUnwind(t *testing.T) {
	pm, a := setup(t)
	_, good := mapRegion(t, pm, mem.FirstNF, page)
	bad := append(good, tlb.Entry{VA: 12345, PA: 0, Size: page, Perm: tlb.PermRW}) // unaligned
	if _, err := a.Alloc(mem.FirstNF, 2, bad); err == nil {
		t.Fatal("bad entries accepted")
	}
	if a.FreeClusters() != 4 {
		t.Fatal("failed alloc left clusters bound")
	}
}

func TestVDPIScansOwnMemoryOnly(t *testing.T) {
	pm, a := setup(t)
	// NF A's memory holds a payload containing a signature.
	rA, entA := mapRegion(t, pm, mem.FirstNF, page)
	payload := []byte("____EVIL_SIGNATURE____")
	if err := pm.Write(rA.Start, payload); err != nil {
		t.Fatal(err)
	}
	csA, err := a.Alloc(mem.FirstNF, 1, entA)
	if err != nil {
		t.Fatal(err)
	}
	auto, _ := ac.Compile([][]byte{[]byte("EVIL_SIGNATURE")})
	v, err := NewVDPI(csA[0], auto)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := v.ScanBuffer(pm, 0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %+v", ms)
	}
	// The cluster's VA space only covers NF A's page: anything beyond
	// faults (fatal TLB miss), so NF A cannot point its vDPI at NF B.
	if _, err := v.ScanBuffer(pm, tlb.VAddr(2*page), 16); !errors.Is(err, tlb.ErrMiss) {
		t.Fatalf("cross-NF scan: %v", err)
	}
}

func TestVDPIWrongKind(t *testing.T) {
	zip, _ := New(ZIP, 16, 16)
	if _, err := NewVDPI(zip.clusters[0], nil); err == nil {
		t.Fatal("ZIP cluster accepted as vDPI")
	}
}

func TestVZIPRoundTripThroughDRAM(t *testing.T) {
	pm, _ := setup(t)
	z, err := New(ZIP, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, entries := mapRegion(t, pm, mem.FirstNF, 4*page)
	cs, err := z.Alloc(mem.FirstNF, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	vz, err := NewVZIP(cs[0])
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.Repeat([]byte("smartnic isolation "), 500)
	if err := pm.Write(r.Start, src); err != nil {
		t.Fatal(err)
	}
	compLen, err := vz.CompressBuffer(pm, 0, len(src), tlb.VAddr(page))
	if err != nil {
		t.Fatal(err)
	}
	if compLen >= len(src) {
		t.Fatalf("no compression: %d -> %d", len(src), compLen)
	}
	outLen, err := vz.DecompressBuffer(pm, tlb.VAddr(page), compLen, tlb.VAddr(2*page))
	if err != nil {
		t.Fatal(err)
	}
	if outLen != len(src) {
		t.Fatalf("decompressed %d bytes", outLen)
	}
	got := make([]byte, len(src))
	pm.Read(r.Start+mem.Addr(2*page), got)
	if !bytes.Equal(got, src) {
		t.Fatal("round trip through DRAM mismatch")
	}
}

func TestVRAIDParity(t *testing.T) {
	pm, _ := setup(t)
	ra, err := New(RAID, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, entries := mapRegion(t, pm, mem.FirstNF, 4*page)
	cs, err := ra.Alloc(mem.FirstNF, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := NewVRAID(cs[0])
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(1)
	stripe := 4096
	b0 := make([]byte, stripe)
	b1 := make([]byte, stripe)
	rng.Bytes(b0)
	rng.Bytes(b1)
	pm.Write(r.Start, b0)
	pm.Write(r.Start+mem.Addr(page), b1)
	if err := vr.ParityBuffer(pm, []tlb.VAddr{0, tlb.VAddr(page)}, stripe, tlb.VAddr(2*page)); err != nil {
		t.Fatal(err)
	}
	parity := make([]byte, stripe)
	pm.Read(r.Start+mem.Addr(2*page), parity)
	for i := range parity {
		if parity[i] != b0[i]^b1[i] {
			t.Fatalf("parity wrong at %d", i)
		}
	}
}

func TestUnboundClusterRefusesWork(t *testing.T) {
	pm, a := setup(t)
	auto, _ := ac.Compile([][]byte{[]byte("x")})
	v, err := NewVDPI(a.clusters[0], auto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ScanBuffer(pm, 0, 4); err == nil {
		t.Fatal("unbound cluster scanned memory")
	}
}

func TestThroughputModelShape(t *testing.T) {
	p := DefaultDPIPerf()
	const reqs = 2000
	// More threads help large frames.
	big16 := SimulateThroughput(p, 16, 9000, reqs)
	big48 := SimulateThroughput(p, 48, 9000, reqs)
	if big48 < 2.5*big16 {
		t.Fatalf("9KB frames: 48 threads %.0f vs 16 threads %.0f — should scale ~3x", big48, big16)
	}
	// Small frames are dispatcher-bound: threads help much less.
	small16 := SimulateThroughput(p, 16, 64, reqs)
	small48 := SimulateThroughput(p, 48, 64, reqs)
	if small48 > 1.5*small16 {
		t.Fatalf("64B frames: 48 threads %.0f vs 16 threads %.0f — dispatcher should cap", small48, small16)
	}
	// Larger frames are always slower in pps.
	if big16 >= small16 {
		t.Fatal("9KB frames faster than 64B frames?")
	}
	// Absolute calibration: 64B at 16+ threads lands near the paper's
	// ~1.1-1.2 Mpps ceiling.
	if m := Mpps(small48); m < 0.9 || m > 1.4 {
		t.Fatalf("64B/48thr = %.2f Mpps, want ~1.2", m)
	}
}

func TestThroughputDegenerate(t *testing.T) {
	p := DefaultDPIPerf()
	if SimulateThroughput(p, 0, 64, 10) != 0 || SimulateThroughput(p, 4, 64, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestKindString(t *testing.T) {
	if DPI.String() != "DPI" || ZIP.String() != "ZIP" || RAID.String() != "RAID" {
		t.Fatal("kind names")
	}
	if TLBEntriesFor(DPI) != 54 || TLBEntriesFor(ZIP) != 70 || TLBEntriesFor(RAID) != 5 {
		t.Fatal("Table 7 TLB sizes")
	}
}

func TestVCryptoSealOpenThroughDRAM(t *testing.T) {
	pm, _ := setup(t)
	ca, err := New(CRYPTO, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if CRYPTO.String() != "CRYPTO" || TLBEntriesFor(CRYPTO) == 0 {
		t.Fatal("CRYPTO kind not registered")
	}
	r, entries := mapRegion(t, pm, mem.FirstNF, 4*page)
	cs, err := ca.Alloc(mem.FirstNF, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	key := [32]byte{1, 2, 3}
	vc, err := NewVCrypto(cs[0], key)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("tenant tls record, confidential")
	pm.Write(r.Start, msg)
	nonce := make([]byte, 12)
	ctLen, err := vc.SealBuffer(pm, 0, len(msg), nonce, tlb.VAddr(page))
	if err != nil {
		t.Fatal(err)
	}
	if ctLen != len(msg)+16 {
		t.Fatalf("ciphertext length %d", ctLen)
	}
	// Ciphertext differs from plaintext in DRAM.
	ct := make([]byte, ctLen)
	pm.Read(r.Start+mem.Addr(page), ct)
	if bytes.Contains(ct, msg) {
		t.Fatal("plaintext visible in ciphertext buffer")
	}
	ptLen, err := vc.OpenBuffer(pm, tlb.VAddr(page), ctLen, nonce, tlb.VAddr(2*page))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ptLen)
	pm.Read(r.Start+mem.Addr(2*page), got)
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
	// Tampering detected.
	pm.Write(r.Start+mem.Addr(page), []byte{0xFF})
	if _, err := vc.OpenBuffer(pm, tlb.VAddr(page), ctLen, nonce, tlb.VAddr(2*page)); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
	// Wrong nonce size rejected.
	if _, err := vc.SealBuffer(pm, 0, 4, nonce[:8], tlb.VAddr(page)); err == nil {
		t.Fatal("short nonce accepted")
	}
}

func TestVCryptoWrongKind(t *testing.T) {
	dpi, _ := New(DPI, 16, 16)
	if _, err := NewVCrypto(dpi.clusters[0], [32]byte{}); err == nil {
		t.Fatal("DPI cluster accepted as vCrypto")
	}
}
