package accel

import (
	"fmt"

	"snic/internal/ac"
	"snic/internal/lz"
	"snic/internal/mem"
	"snic/internal/raidx"
	"snic/internal/tlb"
)

// VDPI is a virtual DPI unit: a DPI cluster plus the owning NF's compiled
// automaton. All payload accesses go through the cluster's locked TLB, so
// a vDPI can only scan (and a hostile NF can only point it at) memory the
// owning NF maps — the confidentiality/integrity property of Figure 3b.
type VDPI struct {
	Cluster *Cluster
	Auto    *ac.Automaton
}

// NewVDPI wraps a DPI cluster.
func NewVDPI(c *Cluster, auto *ac.Automaton) (*VDPI, error) {
	if c.Kind != DPI {
		return nil, fmt.Errorf("accel: cluster is %s, not DPI", c.Kind)
	}
	return &VDPI{Cluster: c, Auto: auto}, nil
}

// ScanBuffer scans n bytes at va in the owner's address space.
func (v *VDPI) ScanBuffer(pm *mem.Physical, va tlb.VAddr, n int) ([]ac.Match, error) {
	buf, err := v.Cluster.read(pm, va, n)
	if err != nil {
		return nil, err
	}
	return v.Auto.Scan(buf, nil), nil
}

// VZIP is a virtual compression unit.
type VZIP struct {
	Cluster *Cluster
}

// NewVZIP wraps a ZIP cluster.
func NewVZIP(c *Cluster) (*VZIP, error) {
	if c.Kind != ZIP {
		return nil, fmt.Errorf("accel: cluster is %s, not ZIP", c.Kind)
	}
	return &VZIP{Cluster: c}, nil
}

// CompressBuffer compresses n bytes at srcVA into dstVA, returning the
// compressed length. Both buffers must be mapped by the cluster's TLB.
func (v *VZIP) CompressBuffer(pm *mem.Physical, srcVA tlb.VAddr, n int, dstVA tlb.VAddr) (int, error) {
	src, err := v.Cluster.read(pm, srcVA, n)
	if err != nil {
		return 0, err
	}
	comp := lz.Compress(src)
	if err := v.Cluster.write(pm, dstVA, comp); err != nil {
		return 0, err
	}
	return len(comp), nil
}

// DecompressBuffer inverts CompressBuffer.
func (v *VZIP) DecompressBuffer(pm *mem.Physical, srcVA tlb.VAddr, n int, dstVA tlb.VAddr) (int, error) {
	src, err := v.Cluster.read(pm, srcVA, n)
	if err != nil {
		return 0, err
	}
	out, err := lz.Decompress(src)
	if err != nil {
		return 0, err
	}
	if err := v.Cluster.write(pm, dstVA, out); err != nil {
		return 0, err
	}
	return len(out), nil
}

// VRAID is a virtual parity unit.
type VRAID struct {
	Cluster *Cluster
}

// NewVRAID wraps a RAID cluster.
func NewVRAID(c *Cluster) (*VRAID, error) {
	if c.Kind != RAID {
		return nil, fmt.Errorf("accel: cluster is %s, not RAID", c.Kind)
	}
	return &VRAID{Cluster: c}, nil
}

// ParityBuffer XORs the stripe blocks at blockVAs (each stripeLen bytes)
// into parityVA — the scatter-gather operation behind Table 7's SGP
// buffers.
func (v *VRAID) ParityBuffer(pm *mem.Physical, blockVAs []tlb.VAddr, stripeLen int, parityVA tlb.VAddr) error {
	blocks := make([][]byte, len(blockVAs))
	for i, va := range blockVAs {
		b, err := v.Cluster.read(pm, va, stripeLen)
		if err != nil {
			return err
		}
		blocks[i] = b
	}
	parity := make([]byte, stripeLen)
	if err := raidx.Stripe(blocks, parity); err != nil {
		return err
	}
	return v.Cluster.write(pm, parityVA, parity)
}
