// Package accel models the smart NIC's hardware accelerators and S-NIC's
// virtualization of them (§4.3, Figure 3).
//
// A physical accelerator (DPI, ZIP, or RAID) owns a pool of hardware
// threads. S-NIC statically groups threads into clusters and places a
// locked TLB bank in front of each cluster, so a cluster bound to one
// network function can only reach that function's DRAM: its instruction
// queue, buffers, and (for DPI) automaton graph. A cluster's TLB misses
// are fatal, exactly as for programmable cores.
//
// The package also contains the dispatcher/thread timing model that
// regenerates Figure 8 (DPI throughput vs. cluster size and frame size).
package accel

import (
	"fmt"
	"strconv"

	"snic/internal/mem"
	"snic/internal/obs"
	"snic/internal/tlb"
)

// Kind identifies an accelerator type.
type Kind int

// Accelerator kinds evaluated in the paper.
const (
	DPI Kind = iota
	ZIP
	RAID
)

// kindNames and kindTLB are extensible registries so additional
// accelerator kinds (e.g. CRYPTO) can plug in without touching the
// published Table 3/7 calibration.
var (
	kindNames = map[Kind]string{DPI: "DPI", ZIP: "ZIP", RAID: "RAID"}
	kindTLB   = map[Kind]int{DPI: 54, ZIP: 70, RAID: 5}
)

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// TLBEntriesFor returns the per-cluster TLB size Table 3/7 derives from
// each accelerator's buffer inventory under 2 MB pages.
func TLBEntriesFor(k Kind) int {
	return kindTLB[k]
}

// Cluster is an allocatable group of hardware threads behind one TLB bank.
type Cluster struct {
	ID      int
	Kind    Kind
	Threads int
	TLB     *tlb.Bank
	owner   mem.Owner
}

// Owner returns the NF the cluster is bound to (mem.Free if unbound).
func (c *Cluster) Owner() mem.Owner { return c.owner }

// Accelerator is one physical accelerator: a fixed thread pool statically
// grouped into clusters ("current NICs only support clustering threads at
// a granularity of 16 threads", §C — the granularity is configurable
// here).
type Accelerator struct {
	kind     Kind
	clusters []*Cluster
	// obs state; zero until Observe attaches a collector.
	obsReg    *obs.Registry
	obsDevice string
	obsBound  *obs.Gauge
}

// New builds an accelerator with totalThreads grouped into clusters of
// threadsPerCluster. totalThreads must divide evenly.
func New(kind Kind, totalThreads, threadsPerCluster int) (*Accelerator, error) {
	if totalThreads <= 0 || threadsPerCluster <= 0 || totalThreads%threadsPerCluster != 0 {
		return nil, fmt.Errorf("accel: bad geometry %d/%d", totalThreads, threadsPerCluster)
	}
	a := &Accelerator{kind: kind}
	n := totalThreads / threadsPerCluster
	for i := 0; i < n; i++ {
		a.clusters = append(a.clusters, &Cluster{
			ID:      i,
			Kind:    kind,
			Threads: threadsPerCluster,
			TLB:     tlb.NewBank(TLBEntriesFor(kind)),
			owner:   mem.Free,
		})
	}
	return a, nil
}

// Kind returns the accelerator type.
func (a *Accelerator) Kind() Kind { return a.kind }

// Observe attaches per-owner cluster allocation counters and a
// bound-cluster gauge to reg under the given device label (component
// "accel/<kind>"). A nil reg leaves the accelerator detached.
func (a *Accelerator) Observe(reg *obs.Registry, device string) {
	if reg == nil {
		return
	}
	a.obsReg = reg
	a.obsDevice = device
	a.obsBound = reg.Gauge(obs.Label{Device: device, Owner: "-",
		Component: "accel/" + a.kind.String(), Name: "bound_clusters"})
}

// obsCounter interns a per-owner counter (nil when detached; allocation
// paths are cold, so on-demand interning is fine).
func (a *Accelerator) obsCounter(owner mem.Owner, name string) *obs.Counter {
	return a.obsReg.Counter(obs.Label{Device: a.obsDevice,
		Owner:     "nf" + strconv.Itoa(int(owner)),
		Component: "accel/" + a.kind.String(), Name: name})
}

// boundClusters counts clusters currently bound to any owner.
func (a *Accelerator) boundClusters() int64 {
	var n int64
	for _, c := range a.clusters {
		if c.owner != mem.Free {
			n++
		}
	}
	return n
}

// NumClusters returns how many clusters exist.
func (a *Accelerator) NumClusters() int { return len(a.clusters) }

// FreeClusters returns how many clusters are unbound.
func (a *Accelerator) FreeClusters() int {
	n := 0
	for _, c := range a.clusters {
		if c.owner == mem.Free {
			n++
		}
	}
	return n
}

// Alloc binds count clusters to owner, installing the given TLB entries in
// each cluster's bank and locking it. This is the accelerator half of
// nf_launch: it fails atomically (no clusters bound) if not enough are
// free or the mappings are invalid.
func (a *Accelerator) Alloc(owner mem.Owner, count int, entries []tlb.Entry) ([]*Cluster, error) {
	if owner == mem.Free {
		return nil, fmt.Errorf("accel: cannot bind to Free")
	}
	var picked []*Cluster
	for _, c := range a.clusters {
		if c.owner == mem.Free {
			picked = append(picked, c)
			if len(picked) == count {
				break
			}
		}
	}
	if len(picked) < count {
		return nil, fmt.Errorf("accel: %s has %d free clusters, need %d", a.kind, len(picked), count)
	}
	for i, c := range picked {
		// Hardware sizes these banks per Table 7 (2 MB pages); the
		// simulator may pass finer-grained mappings, so size to fit.
		capEntries := TLBEntriesFor(a.kind)
		if len(entries) > capEntries {
			capEntries = len(entries)
		}
		bank := tlb.NewBank(capEntries)
		for _, e := range entries {
			if err := bank.Install(e); err != nil {
				// Unwind everything bound so far: atomic failure.
				for _, u := range picked[:i] {
					u.owner = mem.Free
					u.TLB = tlb.NewBank(TLBEntriesFor(a.kind))
				}
				return nil, fmt.Errorf("accel: cluster %d: %w", c.ID, err)
			}
		}
		bank.Lock()
		c.TLB = bank
		c.owner = owner
	}
	if a.obsReg != nil {
		a.obsCounter(owner, "cluster_allocs").Add(uint64(count))
		a.obsBound.Set(a.boundClusters())
	}
	return picked, nil
}

// Release unbinds every cluster owned by owner, clearing TLB state (the
// accelerator half of nf_teardown). It returns how many were released.
func (a *Accelerator) Release(owner mem.Owner) int {
	n := 0
	for _, c := range a.clusters {
		if c.owner == owner {
			c.owner = mem.Free
			c.TLB = tlb.NewBank(TLBEntriesFor(a.kind))
			n++
		}
	}
	if a.obsReg != nil && n > 0 {
		a.obsCounter(owner, "cluster_releases").Add(uint64(n))
		a.obsBound.Set(a.boundClusters())
	}
	return n
}

// read translates and reads n bytes at va through the cluster's TLB.
func (c *Cluster) read(pm *mem.Physical, va tlb.VAddr, n int) ([]byte, error) {
	if c.owner == mem.Free {
		return nil, fmt.Errorf("accel: cluster %d unbound", c.ID)
	}
	buf := make([]byte, n)
	// Translate page-by-page: a buffer may span mappings.
	off := 0
	for off < n {
		chunk := n - off
		if chunk > 4096 {
			chunk = 4096
		}
		pa, err := c.TLB.Translate(va+tlb.VAddr(off), tlb.PermRead)
		if err != nil {
			return nil, err
		}
		if _, err := c.TLB.Translate(va+tlb.VAddr(off+chunk-1), tlb.PermRead); err != nil {
			return nil, err
		}
		if err := pm.Read(pa, buf[off:off+chunk]); err != nil {
			return nil, err
		}
		off += chunk
	}
	return buf, nil
}

// write translates and writes data at va through the cluster's TLB.
func (c *Cluster) write(pm *mem.Physical, va tlb.VAddr, data []byte) error {
	if c.owner == mem.Free {
		return fmt.Errorf("accel: cluster %d unbound", c.ID)
	}
	off := 0
	for off < len(data) {
		chunk := len(data) - off
		if chunk > 4096 {
			chunk = 4096
		}
		pa, err := c.TLB.Translate(va+tlb.VAddr(off), tlb.PermWrite)
		if err != nil {
			return err
		}
		if _, err := c.TLB.Translate(va+tlb.VAddr(off+chunk-1), tlb.PermWrite); err != nil {
			return err
		}
		if err := pm.Write(pa, data[off:off+chunk]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}
