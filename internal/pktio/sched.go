package pktio

import "fmt"

// §4.4: the pkt_pipeline_config "specifies ... the desired packet
// scheduling algorithm [107, 110]". This file provides the scheduler
// algorithms an NF can request for its transmit path: multiple software
// queues inside one VPP, drained in an order the NF chose at launch.
// Because the scheduler unit belongs to a single VPP, its policy affects
// only the owner's own traffic — no cross-tenant channel exists here.

// SchedAlgo selects the transmit scheduling discipline.
type SchedAlgo int

// Supported disciplines.
const (
	SchedFIFO     SchedAlgo = iota // single queue, arrival order
	SchedPriority                  // strict priority, queue 0 highest
	SchedWRR                       // weighted round-robin across queues
)

func (a SchedAlgo) String() string {
	switch a {
	case SchedFIFO:
		return "fifo"
	case SchedPriority:
		return "priority"
	case SchedWRR:
		return "wrr"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// TxItem is one queued transmit descriptor.
type TxItem struct {
	Desc  Descriptor
	Queue int
}

// TxScheduler orders an NF's outgoing descriptors across queues.
type TxScheduler struct {
	algo    SchedAlgo
	weights []int // WRR weights per queue
	queues  [][]Descriptor
	// WRR state.
	cur     int
	credits int
}

// NewTxScheduler builds a scheduler with nqueues queues. weights is only
// used by SchedWRR (defaults to equal weights); it must then have
// nqueues positive entries.
func NewTxScheduler(algo SchedAlgo, nqueues int, weights []int) (*TxScheduler, error) {
	if nqueues <= 0 {
		return nil, fmt.Errorf("pktio: need at least one tx queue")
	}
	if algo == SchedWRR {
		if weights == nil {
			weights = make([]int, nqueues)
			for i := range weights {
				weights[i] = 1
			}
		}
		if len(weights) != nqueues {
			return nil, fmt.Errorf("pktio: %d weights for %d queues", len(weights), nqueues)
		}
		for i, w := range weights {
			if w <= 0 {
				return nil, fmt.Errorf("pktio: weight %d of queue %d must be positive", w, i)
			}
		}
	}
	s := &TxScheduler{algo: algo, weights: weights, queues: make([][]Descriptor, nqueues)}
	if algo == SchedWRR {
		s.credits = weights[0]
	}
	return s, nil
}

// Algo returns the discipline.
func (s *TxScheduler) Algo() SchedAlgo { return s.algo }

// Enqueue adds a descriptor to queue q.
func (s *TxScheduler) Enqueue(q int, d Descriptor) error {
	if q < 0 || q >= len(s.queues) {
		return fmt.Errorf("pktio: queue %d out of range", q)
	}
	if s.algo == SchedFIFO && q != 0 {
		return fmt.Errorf("pktio: FIFO scheduler has a single queue")
	}
	s.queues[q] = append(s.queues[q], d)
	return nil
}

// Pending returns the total queued descriptors.
func (s *TxScheduler) Pending() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// Dequeue pops the next descriptor per the discipline.
func (s *TxScheduler) Dequeue() (TxItem, bool) {
	switch s.algo {
	case SchedFIFO:
		return s.popFrom(0)
	case SchedPriority:
		for q := range s.queues {
			if len(s.queues[q]) > 0 {
				return s.popFrom(q)
			}
		}
		return TxItem{}, false
	case SchedWRR:
		if s.Pending() == 0 {
			return TxItem{}, false
		}
		for {
			if len(s.queues[s.cur]) > 0 && s.credits > 0 {
				s.credits--
				return s.popFrom(s.cur)
			}
			s.cur = (s.cur + 1) % len(s.queues)
			s.credits = s.weights[s.cur]
		}
	}
	return TxItem{}, false
}

func (s *TxScheduler) popFrom(q int) (TxItem, bool) {
	if len(s.queues[q]) == 0 {
		return TxItem{}, false
	}
	d := s.queues[q][0]
	s.queues[q] = s.queues[q][1:]
	return TxItem{Desc: d, Queue: q}, true
}
