// Package pktio models the packet ingress/egress hardware of the NIC and
// S-NIC's virtual packet pipelines (VPPs, §4.4).
//
// A VPP bundles: reserved buffer space in the physical RX and TX ports, a
// packet-scheduler unit whose locked TLB only reaches the owning NF's
// packet-buffer ring, and the switching rules that steer matching frames
// (by 5-tuple predicate and/or VXLAN VNI) into that ring. Rules live in
// memory that nf_launch denylists, so neither other NFs nor the NIC OS can
// redirect a function's traffic after launch.
package pktio

import (
	"fmt"
	"strconv"

	"snic/internal/mem"
	"snic/internal/obs"
	"snic/internal/pkt"
	"snic/internal/tlb"
)

// MatchSpec is a switching-rule predicate over the (inner) frame.
type MatchSpec struct {
	VNI       uint32 // 0 = any
	SrcIP     uint32
	SrcMask   uint32
	DstIP     uint32
	DstMask   uint32
	Proto     uint8 // 0 = any
	DstPortLo uint16
	DstPortHi uint16 // 0,0 = any
}

// Matches reports whether p satisfies the predicate.
func (m MatchSpec) Matches(p *pkt.Packet) bool {
	if m.VNI != 0 && p.VNI != m.VNI {
		return false
	}
	if p.Tuple.SrcIP&m.SrcMask != m.SrcIP&m.SrcMask {
		return false
	}
	if p.Tuple.DstIP&m.DstMask != m.DstIP&m.DstMask {
		return false
	}
	if m.Proto != 0 && m.Proto != p.Tuple.Proto {
		return false
	}
	if m.DstPortLo == 0 && m.DstPortHi == 0 {
		return true
	}
	return p.Tuple.DstPort >= m.DstPortLo && p.Tuple.DstPort <= m.DstPortHi
}

// Rule steers matching frames to an NF's VPP.
type Rule struct {
	Spec   MatchSpec
	Target mem.Owner
}

// Descriptor records one delivered frame in a VPP's receive queue (the
// PDB of Table 7's buffer inventory).
type Descriptor struct {
	VA  tlb.VAddr // where the frame was written in the NF's address space
	Len int
}

// VPP is a virtual packet pipeline.
type VPP struct {
	Owner   mem.Owner
	RXBytes uint64
	TXBytes uint64

	sched    *tlb.Bank // scheduler-unit TLB: locked to the NF's buffers
	ringBase tlb.VAddr
	slots    int
	slotSize int
	head     int // next slot to fill
	queue    []Descriptor

	// Stats.
	Delivered   uint64
	DroppedFull uint64

	// obs handles (per-tenant packet/byte accounting); nil until the
	// owning Switch is observed.
	obsRxPkts, obsRxBytes, obsRxDrops *obs.Counter
	obsTxPkts, obsTxBytes             *obs.Counter
	obsFrameBytes                     *obs.Histogram
}

// Switch is the packet input/output module pair plus rule table.
type Switch struct {
	pm         *mem.Physical
	rxCapacity uint64
	txCapacity uint64
	rxReserved uint64
	txReserved uint64
	rules      []Rule
	vpps       map[mem.Owner]*VPP

	// Stats.
	NoMatch uint64

	// obs state; zero until Observe attaches a collector. VPPs created
	// afterwards pick up per-tenant counters in CreateVPP.
	obsReg     *obs.Registry
	obsDevice  string
	obsNoMatch *obs.Counter
}

// NewSwitch builds the ingress/egress hardware with the given physical
// RX/TX buffer capacities (LiquidIO-class parts have a few MB each).
func NewSwitch(pm *mem.Physical, rxCapacity, txCapacity uint64) *Switch {
	return &Switch{
		pm:         pm,
		rxCapacity: rxCapacity,
		txCapacity: txCapacity,
		vpps:       make(map[mem.Owner]*VPP),
	}
}

// Observe attaches per-tenant packet/byte counters to reg under the
// given device label (component "pktio"). Pipelines created after the
// call are instrumented per owner; a nil reg leaves the switch
// detached. Call before CreateVPP.
func (s *Switch) Observe(reg *obs.Registry, device string) {
	if reg == nil {
		return
	}
	s.obsReg = reg
	s.obsDevice = device
	s.obsNoMatch = reg.Counter(obs.Label{Device: device, Owner: "-", Component: "pktio", Name: "no_match"})
}

// CreateVPP reserves rx/tx buffer space and builds the scheduler unit for
// owner. schedEntries must map the NF's packet ring; they are locked
// immediately. ringBase/slots/slotSize describe the ring inside the NF's
// address space. Fails (atomically) if port space is exhausted.
func (s *Switch) CreateVPP(owner mem.Owner, rxBytes, txBytes uint64,
	schedEntries []tlb.Entry, ringBase tlb.VAddr, slots, slotSize int) (*VPP, error) {
	if _, dup := s.vpps[owner]; dup {
		return nil, fmt.Errorf("pktio: owner %d already has a VPP", owner)
	}
	if s.rxReserved+rxBytes > s.rxCapacity {
		return nil, fmt.Errorf("pktio: RX port full (%d of %d reserved)", s.rxReserved, s.rxCapacity)
	}
	if s.txReserved+txBytes > s.txCapacity {
		return nil, fmt.Errorf("pktio: TX port full (%d of %d reserved)", s.txReserved, s.txCapacity)
	}
	if slots <= 0 || slotSize <= 0 {
		return nil, fmt.Errorf("pktio: bad ring geometry %d x %d", slots, slotSize)
	}
	bank := tlb.NewBank(3) // PB + PDB + ODB, as sized in §5.2
	for _, e := range schedEntries {
		if err := bank.Install(e); err != nil {
			return nil, fmt.Errorf("pktio: scheduler TLB: %w", err)
		}
	}
	bank.Lock()
	v := &VPP{
		Owner: owner, RXBytes: rxBytes, TXBytes: txBytes,
		sched: bank, ringBase: ringBase, slots: slots, slotSize: slotSize,
	}
	if s.obsReg != nil {
		tenant := "nf" + strconv.Itoa(int(owner))
		l := func(name string) obs.Label {
			return obs.Label{Device: s.obsDevice, Owner: tenant, Component: "pktio", Name: name}
		}
		v.obsRxPkts = s.obsReg.Counter(l("rx_packets"))
		v.obsRxBytes = s.obsReg.Counter(l("rx_bytes"))
		v.obsRxDrops = s.obsReg.Counter(l("rx_dropped_full"))
		v.obsTxPkts = s.obsReg.Counter(l("tx_packets"))
		v.obsTxBytes = s.obsReg.Counter(l("tx_bytes"))
		v.obsFrameBytes = s.obsReg.Histogram(l("frame_bytes"))
	}
	s.rxReserved += rxBytes
	s.txReserved += txBytes
	s.vpps[owner] = v
	return v, nil
}

// DestroyVPP releases owner's pipeline and buffer reservations, dropping
// any queued descriptors (the memory itself is scrubbed by nf_teardown).
func (s *Switch) DestroyVPP(owner mem.Owner) bool {
	v, ok := s.vpps[owner]
	if !ok {
		return false
	}
	s.rxReserved -= v.RXBytes
	s.txReserved -= v.TXBytes
	delete(s.vpps, owner)
	// Remove the owner's switching rules too.
	rules := s.rules[:0]
	for _, r := range s.rules {
		if r.Target != owner {
			rules = append(rules, r)
		}
	}
	s.rules = rules
	return true
}

// AddRule appends a steering rule (installed by nf_launch from the
// pkt_pipeline_config argument).
func (s *Switch) AddRule(r Rule) error {
	if _, ok := s.vpps[r.Target]; !ok {
		return fmt.Errorf("pktio: rule targets owner %d with no VPP", r.Target)
	}
	s.rules = append(s.rules, r)
	return nil
}

// VPPOf returns the pipeline bound to owner.
func (s *Switch) VPPOf(owner mem.Owner) *VPP { return s.vpps[owner] }

// RXReserved returns reserved RX bytes (for utilization accounting).
func (s *Switch) RXReserved() uint64 { return s.rxReserved }

// Deliver parses a wire frame, finds the first matching rule, and copies
// the frame into the target NF's ring via the scheduler TLB. It returns
// the receiving owner (mem.Free if the frame matched no rule or was
// dropped).
func (s *Switch) Deliver(frame []byte) (mem.Owner, error) {
	p, err := pkt.Parse(frame)
	if err != nil {
		return mem.Free, err
	}
	for _, r := range s.rules {
		if !r.Spec.Matches(&p) {
			continue
		}
		v := s.vpps[r.Target]
		if v == nil {
			continue
		}
		if err := v.push(s.pm, frame); err != nil {
			return mem.Free, err
		}
		return r.Target, nil
	}
	s.NoMatch++
	s.obsNoMatch.Inc()
	return mem.Free, nil
}

func (v *VPP) push(pm *mem.Physical, frame []byte) error {
	if len(v.queue) >= v.slots {
		v.DroppedFull++
		v.obsRxDrops.Inc()
		return nil // tail drop, as hardware does
	}
	if len(frame) > v.slotSize {
		return fmt.Errorf("pktio: frame of %d bytes exceeds slot size %d", len(frame), v.slotSize)
	}
	va := v.ringBase + tlb.VAddr(v.head*v.slotSize)
	// The scheduler unit can only write where its locked TLB points.
	off := 0
	for off < len(frame) {
		chunk := len(frame) - off
		if chunk > 1024 {
			chunk = 1024
		}
		pa, err := v.sched.Translate(va+tlb.VAddr(off), tlb.PermWrite)
		if err != nil {
			return fmt.Errorf("pktio: scheduler fault: %w", err)
		}
		// The transfer must not run off the end of the mapping: check the
		// chunk's last byte as hardware would for a burst.
		if _, err := v.sched.Translate(va+tlb.VAddr(off+chunk-1), tlb.PermWrite); err != nil {
			return fmt.Errorf("pktio: scheduler fault: %w", err)
		}
		if err := pm.Write(pa, frame[off:off+chunk]); err != nil {
			return err
		}
		off += chunk
	}
	v.queue = append(v.queue, Descriptor{VA: va, Len: len(frame)})
	v.head++
	if v.head == v.slots {
		v.head = 0
	}
	v.Delivered++
	if v.obsRxPkts != nil {
		v.obsRxPkts.Inc()
		v.obsRxBytes.Add(uint64(len(frame)))
		v.obsFrameBytes.Observe(uint64(len(frame)))
	}
	return nil
}

// Pop dequeues the next received descriptor (ok=false when empty).
func (v *VPP) Pop() (Descriptor, bool) {
	if len(v.queue) == 0 {
		return Descriptor{}, false
	}
	d := v.queue[0]
	v.queue = v.queue[1:]
	return d, true
}

// Pending returns the receive-queue depth.
func (v *VPP) Pending() int { return len(v.queue) }

// ReadFrame copies a received frame out of the NF's memory through the
// scheduler TLB (what the packet-output module does on transmit).
func (v *VPP) ReadFrame(pm *mem.Physical, d Descriptor) ([]byte, error) {
	out := make([]byte, d.Len)
	off := 0
	for off < d.Len {
		chunk := d.Len - off
		if chunk > 1024 {
			chunk = 1024
		}
		pa, err := v.sched.Translate(d.VA+tlb.VAddr(off), tlb.PermRead)
		if err != nil {
			return nil, err
		}
		if _, err := v.sched.Translate(d.VA+tlb.VAddr(off+chunk-1), tlb.PermRead); err != nil {
			return nil, err
		}
		if err := pm.Read(pa, out[off:off+chunk]); err != nil {
			return nil, err
		}
		off += chunk
	}
	return out, nil
}

// Transmit reads a frame the NF placed at va and hands it to the wire
// callback, enforcing the TX reservation as flow control.
func (s *Switch) Transmit(owner mem.Owner, va tlb.VAddr, n int, wire func([]byte)) error {
	v := s.vpps[owner]
	if v == nil {
		return fmt.Errorf("pktio: owner %d has no VPP", owner)
	}
	if uint64(n) > v.TXBytes {
		return fmt.Errorf("pktio: frame of %d bytes exceeds TX reservation %d", n, v.TXBytes)
	}
	frame, err := v.ReadFrame(s.pm, Descriptor{VA: va, Len: n})
	if err != nil {
		return err
	}
	if v.obsTxPkts != nil {
		v.obsTxPkts.Inc()
		v.obsTxBytes.Add(uint64(n))
	}
	if wire != nil {
		wire(frame)
	}
	return nil
}

// PushLocal delivers a frame that arrived over the NIC-internal localhost
// path (§4.8 function chaining) rather than the wire. It uses the same
// ring, scheduler TLB, and tail-drop behaviour as wire delivery.
func (v *VPP) PushLocal(pm *mem.Physical, frame []byte) error {
	return v.push(pm, frame)
}
