package pktio

import (
	"testing"

	"snic/internal/tlb"
)

func desc(i int) Descriptor { return Descriptor{VA: tlb.VAddr(i * 2048), Len: 64} }

func TestSchedValidation(t *testing.T) {
	if _, err := NewTxScheduler(SchedFIFO, 0, nil); err == nil {
		t.Fatal("zero queues accepted")
	}
	if _, err := NewTxScheduler(SchedWRR, 2, []int{1}); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if _, err := NewTxScheduler(SchedWRR, 2, []int{1, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestFIFOOrder(t *testing.T) {
	s, err := NewTxScheduler(SchedFIFO, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(0, desc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue(1, desc(9)); err == nil {
		t.Fatal("FIFO accepted queue 1")
	}
	for i := 0; i < 5; i++ {
		it, ok := s.Dequeue()
		if !ok || it.Desc != desc(i) {
			t.Fatalf("pop %d = %+v", i, it)
		}
	}
	if _, ok := s.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestPriorityPreemptsLowQueues(t *testing.T) {
	s, _ := NewTxScheduler(SchedPriority, 3, nil)
	s.Enqueue(2, desc(20))
	s.Enqueue(1, desc(10))
	s.Enqueue(0, desc(0))
	order := []int{0, 1, 2}
	for _, q := range order {
		it, ok := s.Dequeue()
		if !ok || it.Queue != q {
			t.Fatalf("got queue %d, want %d", it.Queue, q)
		}
	}
}

func TestWRRProportions(t *testing.T) {
	s, _ := NewTxScheduler(SchedWRR, 2, []int{3, 1})
	for i := 0; i < 40; i++ {
		s.Enqueue(0, desc(i))
		s.Enqueue(1, desc(100+i))
	}
	counts := map[int]int{}
	for i := 0; i < 32; i++ {
		it, ok := s.Dequeue()
		if !ok {
			t.Fatal("ran dry early")
		}
		counts[it.Queue]++
	}
	// 3:1 service ratio.
	if counts[0] != 24 || counts[1] != 8 {
		t.Fatalf("service = %v, want 24/8", counts)
	}
}

func TestWRRWorkConserving(t *testing.T) {
	s, _ := NewTxScheduler(SchedWRR, 2, []int{1, 1})
	// Only queue 1 has traffic: it must be served continuously.
	for i := 0; i < 4; i++ {
		s.Enqueue(1, desc(i))
	}
	for i := 0; i < 4; i++ {
		it, ok := s.Dequeue()
		if !ok || it.Queue != 1 {
			t.Fatalf("pop %d from queue %d", i, it.Queue)
		}
	}
}

func TestWRRDefaultsToEqualWeights(t *testing.T) {
	s, err := NewTxScheduler(SchedWRR, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		s.Enqueue(q, desc(q))
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		it, _ := s.Dequeue()
		seen[it.Queue] = true
	}
	if len(seen) != 3 {
		t.Fatalf("equal-weight WRR starved queues: %v", seen)
	}
}

func TestEnqueueBounds(t *testing.T) {
	s, _ := NewTxScheduler(SchedPriority, 2, nil)
	if err := s.Enqueue(-1, desc(0)); err == nil {
		t.Fatal("negative queue accepted")
	}
	if err := s.Enqueue(2, desc(0)); err == nil {
		t.Fatal("out-of-range queue accepted")
	}
}

func TestAlgoString(t *testing.T) {
	if SchedFIFO.String() != "fifo" || SchedPriority.String() != "priority" || SchedWRR.String() != "wrr" {
		t.Fatal("algo names")
	}
	if SchedAlgo(99).String() != "algo(99)" {
		t.Fatal("unknown algo name")
	}
}

// TestSchedEdgeCases table-drives the scheduler corners: empty queues
// (all tenants idle), a single tenant, zero-length queues among
// populated ones, and drain-then-idle transitions.
func TestSchedEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		algo    SchedAlgo
		nqueues int
		weights []int
		enqueue map[int][]Descriptor // queue -> descriptors, enqueued in queue order
		want    []int                // expected queue of each successive Dequeue
	}{
		{
			name: "fifo all-idle", algo: SchedFIFO, nqueues: 1,
			enqueue: nil, want: nil,
		},
		{
			name: "priority all-idle", algo: SchedPriority, nqueues: 3,
			enqueue: nil, want: nil,
		},
		{
			name: "wrr all-idle", algo: SchedWRR, nqueues: 4, weights: []int{1, 2, 3, 4},
			enqueue: nil, want: nil,
		},
		{
			name: "single tenant fifo", algo: SchedFIFO, nqueues: 1,
			enqueue: map[int][]Descriptor{0: {desc(0), desc(1)}},
			want:    []int{0, 0},
		},
		{
			name: "single tenant wrr", algo: SchedWRR, nqueues: 1, weights: []int{3},
			enqueue: map[int][]Descriptor{0: {desc(0), desc(1), desc(2), desc(3)}},
			want:    []int{0, 0, 0, 0},
		},
		{
			name: "priority only low queue busy", algo: SchedPriority, nqueues: 3,
			enqueue: map[int][]Descriptor{2: {desc(0), desc(1)}},
			want:    []int{2, 2},
		},
		{
			name: "wrr zero-length queue between busy ones", algo: SchedWRR,
			nqueues: 3, weights: []int{2, 5, 1},
			enqueue: map[int][]Descriptor{0: {desc(0), desc(1)}, 2: {desc(2)}},
			// Queue 1 is empty: its credits must be skipped without
			// stalling, giving 0,0 (two credits) then 2.
			want: []int{0, 0, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewTxScheduler(tc.algo, tc.nqueues, tc.weights)
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Pending(); got != 0 {
				t.Fatalf("fresh scheduler pending = %d", got)
			}
			total := 0
			for q := 0; q < tc.nqueues; q++ {
				for _, d := range tc.enqueue[q] {
					if err := s.Enqueue(q, d); err != nil {
						t.Fatal(err)
					}
					total++
				}
			}
			if got := s.Pending(); got != total {
				t.Fatalf("pending = %d, want %d", got, total)
			}
			for i, wantQ := range tc.want {
				it, ok := s.Dequeue()
				if !ok {
					t.Fatalf("dequeue %d ran dry", i)
				}
				if it.Queue != wantQ {
					t.Fatalf("dequeue %d from queue %d, want %d", i, it.Queue, wantQ)
				}
			}
			// Drained (or never filled): every discipline must report
			// idle rather than stall or fabricate items.
			if it, ok := s.Dequeue(); ok {
				t.Fatalf("idle dequeue produced %+v", it)
			}
			if got := s.Pending(); got != 0 {
				t.Fatalf("drained scheduler pending = %d", got)
			}
		})
	}
}

// TestSchedUnknownAlgoDequeue covers the defensive default branch.
func TestSchedUnknownAlgoDequeue(t *testing.T) {
	s, err := NewTxScheduler(SchedPriority, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Enqueue(0, desc(1))
	s.algo = SchedAlgo(99)
	if _, ok := s.Dequeue(); ok {
		t.Fatal("unknown algo dequeued")
	}
}
