package pktio

import (
	"testing"

	"snic/internal/tlb"
)

func desc(i int) Descriptor { return Descriptor{VA: tlb.VAddr(i * 2048), Len: 64} }

func TestSchedValidation(t *testing.T) {
	if _, err := NewTxScheduler(SchedFIFO, 0, nil); err == nil {
		t.Fatal("zero queues accepted")
	}
	if _, err := NewTxScheduler(SchedWRR, 2, []int{1}); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if _, err := NewTxScheduler(SchedWRR, 2, []int{1, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestFIFOOrder(t *testing.T) {
	s, err := NewTxScheduler(SchedFIFO, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(0, desc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue(1, desc(9)); err == nil {
		t.Fatal("FIFO accepted queue 1")
	}
	for i := 0; i < 5; i++ {
		it, ok := s.Dequeue()
		if !ok || it.Desc != desc(i) {
			t.Fatalf("pop %d = %+v", i, it)
		}
	}
	if _, ok := s.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestPriorityPreemptsLowQueues(t *testing.T) {
	s, _ := NewTxScheduler(SchedPriority, 3, nil)
	s.Enqueue(2, desc(20))
	s.Enqueue(1, desc(10))
	s.Enqueue(0, desc(0))
	order := []int{0, 1, 2}
	for _, q := range order {
		it, ok := s.Dequeue()
		if !ok || it.Queue != q {
			t.Fatalf("got queue %d, want %d", it.Queue, q)
		}
	}
}

func TestWRRProportions(t *testing.T) {
	s, _ := NewTxScheduler(SchedWRR, 2, []int{3, 1})
	for i := 0; i < 40; i++ {
		s.Enqueue(0, desc(i))
		s.Enqueue(1, desc(100+i))
	}
	counts := map[int]int{}
	for i := 0; i < 32; i++ {
		it, ok := s.Dequeue()
		if !ok {
			t.Fatal("ran dry early")
		}
		counts[it.Queue]++
	}
	// 3:1 service ratio.
	if counts[0] != 24 || counts[1] != 8 {
		t.Fatalf("service = %v, want 24/8", counts)
	}
}

func TestWRRWorkConserving(t *testing.T) {
	s, _ := NewTxScheduler(SchedWRR, 2, []int{1, 1})
	// Only queue 1 has traffic: it must be served continuously.
	for i := 0; i < 4; i++ {
		s.Enqueue(1, desc(i))
	}
	for i := 0; i < 4; i++ {
		it, ok := s.Dequeue()
		if !ok || it.Queue != 1 {
			t.Fatalf("pop %d from queue %d", i, it.Queue)
		}
	}
}

func TestWRRDefaultsToEqualWeights(t *testing.T) {
	s, err := NewTxScheduler(SchedWRR, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		s.Enqueue(q, desc(q))
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		it, _ := s.Dequeue()
		seen[it.Queue] = true
	}
	if len(seen) != 3 {
		t.Fatalf("equal-weight WRR starved queues: %v", seen)
	}
}

func TestEnqueueBounds(t *testing.T) {
	s, _ := NewTxScheduler(SchedPriority, 2, nil)
	if err := s.Enqueue(-1, desc(0)); err == nil {
		t.Fatal("negative queue accepted")
	}
	if err := s.Enqueue(2, desc(0)); err == nil {
		t.Fatal("out-of-range queue accepted")
	}
}

func TestAlgoString(t *testing.T) {
	if SchedFIFO.String() != "fifo" || SchedPriority.String() != "priority" || SchedWRR.String() != "wrr" {
		t.Fatal("algo names")
	}
}
