package pktio

import (
	"bytes"
	"testing"

	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/tlb"
)

const page = 128 << 10

func setup(t *testing.T) (*mem.Physical, *Switch) {
	t.Helper()
	pm, err := mem.NewPhysical(32<<20, page)
	if err != nil {
		t.Fatal(err)
	}
	return pm, NewSwitch(pm, 2<<20, 1<<20)
}

// makeVPP allocates a ring for owner and creates its VPP.
func makeVPP(t *testing.T, pm *mem.Physical, s *Switch, owner mem.Owner) (*VPP, mem.Range) {
	t.Helper()
	r, err := pm.AllocBytes(owner, page)
	if err != nil {
		t.Fatal(err)
	}
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	v, err := s.CreateVPP(owner, 256<<10, 256<<10, entries, 0, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	return v, r
}

func frameFor(dstPort uint16, payload string) []byte {
	p := pkt.Packet{
		Tuple: pkt.FiveTuple{
			SrcIP: 0x0A000001, DstIP: 0x0A000002,
			SrcPort: 1111, DstPort: dstPort, Proto: pkt.ProtoTCP,
		},
		Payload: []byte(payload),
	}
	return p.Marshal()
}

func TestDeliverToMatchingVPP(t *testing.T) {
	pm, s := setup(t)
	v, r := makeVPP(t, pm, s, mem.FirstNF)
	if err := s.AddRule(Rule{
		Spec:   MatchSpec{Proto: pkt.ProtoTCP, DstPortLo: 80, DstPortHi: 80},
		Target: mem.FirstNF,
	}); err != nil {
		t.Fatal(err)
	}
	owner, err := s.Deliver(frameFor(80, "hello nf"))
	if err != nil {
		t.Fatal(err)
	}
	if owner != mem.FirstNF || v.Delivered != 1 {
		t.Fatalf("owner=%d delivered=%d", owner, v.Delivered)
	}
	d, ok := v.Pop()
	if !ok {
		t.Fatal("no descriptor")
	}
	// The frame must be present in the NF's own DRAM.
	raw := make([]byte, d.Len)
	pm.Read(r.Start+mem.Addr(uint64(d.VA)), raw)
	got, err := pkt.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "hello nf" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestNoMatchDropped(t *testing.T) {
	pm, s := setup(t)
	makeVPP(t, pm, s, mem.FirstNF)
	s.AddRule(Rule{Spec: MatchSpec{DstPortLo: 80, DstPortHi: 80}, Target: mem.FirstNF})
	owner, err := s.Deliver(frameFor(443, "x"))
	if err != nil || owner != mem.Free {
		t.Fatalf("owner=%d err=%v", owner, err)
	}
	if s.NoMatch != 1 {
		t.Fatalf("NoMatch = %d", s.NoMatch)
	}
}

func TestRuleOrderFirstMatchWins(t *testing.T) {
	pm, s := setup(t)
	vA, _ := makeVPP(t, pm, s, mem.FirstNF)
	vB, _ := makeVPP(t, pm, s, mem.FirstNF+1)
	s.AddRule(Rule{Spec: MatchSpec{DstPortLo: 80, DstPortHi: 80}, Target: mem.FirstNF})
	s.AddRule(Rule{Spec: MatchSpec{}, Target: mem.FirstNF + 1}) // catch-all
	s.Deliver(frameFor(80, "a"))
	s.Deliver(frameFor(443, "b"))
	if vA.Delivered != 1 || vB.Delivered != 1 {
		t.Fatalf("deliveries: %d, %d", vA.Delivered, vB.Delivered)
	}
}

func TestVNISteering(t *testing.T) {
	pm, s := setup(t)
	v42, _ := makeVPP(t, pm, s, mem.FirstNF)
	v43, _ := makeVPP(t, pm, s, mem.FirstNF+1)
	s.AddRule(Rule{Spec: MatchSpec{VNI: 42}, Target: mem.FirstNF})
	s.AddRule(Rule{Spec: MatchSpec{VNI: 43}, Target: mem.FirstNF + 1})
	mk := func(vni uint32) []byte {
		p := pkt.Packet{
			Tuple:   pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: pkt.ProtoTCP},
			Payload: []byte("tenant"),
			VNI:     vni,
		}
		return p.Marshal()
	}
	s.Deliver(mk(42))
	s.Deliver(mk(43))
	s.Deliver(mk(44))
	if v42.Delivered != 1 || v43.Delivered != 1 || s.NoMatch != 1 {
		t.Fatalf("deliveries %d/%d nomatch %d", v42.Delivered, v43.Delivered, s.NoMatch)
	}
}

func TestRingTailDrop(t *testing.T) {
	pm, s := setup(t)
	r, _ := pm.AllocBytes(mem.FirstNF, page)
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	v, err := s.CreateVPP(mem.FirstNF, 256<<10, 256<<10, entries, 0, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s.AddRule(Rule{Spec: MatchSpec{}, Target: mem.FirstNF})
	for i := 0; i < 5; i++ {
		s.Deliver(frameFor(80, "x"))
	}
	if v.Delivered != 2 || v.DroppedFull != 3 {
		t.Fatalf("delivered=%d dropped=%d", v.Delivered, v.DroppedFull)
	}
}

func TestBufferReservationExhaustion(t *testing.T) {
	pm, s := setup(t) // 2MB RX capacity
	r, _ := pm.AllocBytes(mem.FirstNF, page)
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	if _, err := s.CreateVPP(mem.FirstNF, 2<<20, 1<<10, entries, 0, 4, 2048); err != nil {
		t.Fatal(err)
	}
	r2, _ := pm.AllocBytes(mem.FirstNF+1, page)
	entries2 := []tlb.Entry{{VA: 0, PA: r2.Start, Size: page, Perm: tlb.PermRW}}
	if _, err := s.CreateVPP(mem.FirstNF+1, 1<<10, 1<<10, entries2, 0, 4, 2048); err == nil {
		t.Fatal("RX overcommit accepted")
	}
	// Destroying the first frees the space.
	if !s.DestroyVPP(mem.FirstNF) {
		t.Fatal("destroy failed")
	}
	if _, err := s.CreateVPP(mem.FirstNF+1, 1<<10, 1<<10, entries2, 0, 4, 2048); err != nil {
		t.Fatalf("after destroy: %v", err)
	}
}

func TestDestroyRemovesRules(t *testing.T) {
	pm, s := setup(t)
	makeVPP(t, pm, s, mem.FirstNF)
	s.AddRule(Rule{Spec: MatchSpec{}, Target: mem.FirstNF})
	s.DestroyVPP(mem.FirstNF)
	owner, err := s.Deliver(frameFor(80, "x"))
	if err != nil || owner != mem.Free {
		t.Fatalf("owner=%d err=%v", owner, err)
	}
}

func TestRuleWithoutVPPRejected(t *testing.T) {
	_, s := setup(t)
	if err := s.AddRule(Rule{Target: mem.FirstNF}); err == nil {
		t.Fatal("dangling rule accepted")
	}
}

func TestDuplicateVPPRejected(t *testing.T) {
	pm, s := setup(t)
	makeVPP(t, pm, s, mem.FirstNF)
	r, _ := pm.AllocBytes(mem.FirstNF, page)
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	if _, err := s.CreateVPP(mem.FirstNF, 1, 1, entries, 0, 4, 2048); err == nil {
		t.Fatal("duplicate VPP accepted")
	}
}

func TestTransmit(t *testing.T) {
	pm, s := setup(t)
	_, r := makeVPP(t, pm, s, mem.FirstNF)
	frame := frameFor(80, "egress")
	pm.Write(r.Start+mem.Addr(4096), frame)
	var wire []byte
	err := s.Transmit(mem.FirstNF, tlb.VAddr(4096), len(frame), func(f []byte) { wire = f })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, frame) {
		t.Fatal("transmitted frame mismatch")
	}
}

func TestTransmitEnforcesReservation(t *testing.T) {
	pm, s := setup(t)
	makeVPP(t, pm, s, mem.FirstNF)
	if err := s.Transmit(mem.FirstNF, 0, 1<<20, nil); err == nil {
		t.Fatal("oversized transmit accepted")
	}
	if err := s.Transmit(mem.FirstNF+9, 0, 64, nil); err == nil {
		t.Fatal("transmit without VPP accepted")
	}
}

func TestSchedulerTLBConfinesWrites(t *testing.T) {
	// The scheduler can only write within the mapped ring page: a ring
	// that claims to extend beyond its mapping faults rather than
	// scribbling on someone else's memory.
	pm, s := setup(t)
	r, _ := pm.AllocBytes(mem.FirstNF, page)
	entries := []tlb.Entry{{VA: 0, PA: r.Start, Size: page, Perm: tlb.PermRW}}
	_, err := s.CreateVPP(mem.FirstNF, 256<<10, 256<<10, entries, tlb.VAddr(page-1024), 8, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s.AddRule(Rule{Spec: MatchSpec{}, Target: mem.FirstNF})
	big := make([]byte, 1400) // frame crosses the mapping's last page
	for i := range big {
		big[i] = 'A'
	}
	if _, err := s.Deliver(frameFor(80, string(big))); err == nil {
		t.Fatal("out-of-mapping scheduler write succeeded")
	}
}

func TestMatchSpecWildcards(t *testing.T) {
	p := pkt.Packet{Tuple: pkt.FiveTuple{SrcIP: 0x01020304, DstIP: 0x05060708, DstPort: 443, Proto: 6}}
	if !(MatchSpec{}).Matches(&p) {
		t.Fatal("empty spec should match everything")
	}
	if !(MatchSpec{DstIP: 0x05060000, DstMask: 0xFFFF0000}).Matches(&p) {
		t.Fatal("prefix match failed")
	}
	if (MatchSpec{Proto: 17}).Matches(&p) {
		t.Fatal("proto wildcard wrong")
	}
}
