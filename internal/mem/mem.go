// Package mem models the physical memory of a smart NIC: general-purpose
// DRAM divided into frames, each with single-owner semantics (§4.2 of the
// paper). The trusted hardware tracks which frames belong to which
// principal in an ownership map — the paper's "bitmap which tracks which
// physical RAM pages have been allocated to a network function" — and
// scrubs frames on teardown so no state leaks to the next owner.
//
// Frame contents are backed lazily: a frame consumes host memory only once
// it is written, so multi-gigabyte NICs can be modelled cheaply.
package mem

import (
	"fmt"
	"sort"
)

// AlignUp rounds n up to the next multiple of a (a must be non-zero).
// Sizing calculations all over the device layer — TLB entry spans,
// launch-profile reservations, frame-aligned windows — share this one
// definition.
func AlignUp(n, a uint64) uint64 { return (n + a - 1) / a * a }

// Owner identifies a principal that can own physical frames.
type Owner uint16

// Reserved owners. NF owners are assigned from FirstNF upward.
const (
	Free    Owner = 0 // unallocated
	NICOS   Owner = 1 // the datacenter-provided management OS
	HW      Owner = 2 // hardware-private memory (denylist tables, launch records)
	FirstNF Owner = 3
)

// Addr is a physical byte address on the NIC.
type Addr uint64

// Physical models the NIC's DRAM.
type Physical struct {
	frameSize uint64
	nframes   uint64
	owner     []Owner
	frames    map[uint64][]byte // lazily allocated backing store
	freeHint  uint64

	// Warm arena pool (pool.go): scrubbed frame runs parked under the
	// Pooled owner for reuse by the next launch. Disabled (poolCap 0)
	// unless the device layer opts in.
	pool       []Range
	poolFrames uint64
	poolCap    uint64
}

// NewPhysical creates a DRAM of total bytes divided into frameSize frames.
// Both must be positive and total must be a multiple of frameSize.
func NewPhysical(total, frameSize uint64) (*Physical, error) {
	if frameSize == 0 || total == 0 || total%frameSize != 0 {
		return nil, fmt.Errorf("mem: invalid geometry total=%d frame=%d", total, frameSize)
	}
	n := total / frameSize
	return &Physical{
		frameSize: frameSize,
		nframes:   n,
		owner:     make([]Owner, n),
		frames:    make(map[uint64][]byte),
	}, nil
}

// FrameSize returns the frame granularity in bytes.
func (p *Physical) FrameSize() uint64 { return p.frameSize }

// Size returns total DRAM bytes.
func (p *Physical) Size() uint64 { return p.nframes * p.frameSize }

// NumFrames returns the number of frames.
func (p *Physical) NumFrames() uint64 { return p.nframes }

// OwnerOf returns the owner of the frame containing pa.
func (p *Physical) OwnerOf(pa Addr) Owner {
	f := uint64(pa) / p.frameSize
	if f >= p.nframes {
		return Free
	}
	return p.owner[f]
}

// FrameOwner returns the owner of frame index f.
func (p *Physical) FrameOwner(f uint64) Owner {
	if f >= p.nframes {
		return Free
	}
	return p.owner[f]
}

// Range is a contiguous run of physical frames.
type Range struct {
	Start  Addr   // first byte
	Frames uint64 // length in frames
}

// Bytes returns the length of the range in bytes given frame size fs.
func (r Range) bytes(fs uint64) uint64 { return r.Frames * fs }

// End returns one past the last byte of the range.
func (r Range) End(fs uint64) Addr { return r.Start + Addr(r.Frames*fs) }

// Alloc finds nframes contiguous free frames, assigns them to owner, and
// returns the range. It fails if no contiguous run exists.
func (p *Physical) Alloc(owner Owner, nframes uint64) (Range, error) {
	if owner == Free {
		return Range{}, fmt.Errorf("mem: cannot allocate to Free")
	}
	if nframes == 0 || nframes > p.nframes {
		return Range{}, fmt.Errorf("mem: bad allocation size %d", nframes)
	}
	start, run := p.freeHint, uint64(0)
	scanned := uint64(0)
	i := p.freeHint
	for scanned <= p.nframes+nframes {
		if i >= p.nframes {
			i, start, run = 0, 0, 0
			scanned++
			continue
		}
		if p.owner[i] == Free {
			if run == 0 {
				start = i
			}
			run++
			if run == nframes {
				for f := start; f < start+nframes; f++ {
					p.owner[f] = owner
				}
				p.freeHint = start + nframes
				return Range{Start: Addr(start * p.frameSize), Frames: nframes}, nil
			}
		} else {
			run = 0
		}
		i++
		scanned++
	}
	return Range{}, fmt.Errorf("mem: no contiguous run of %d frames", nframes)
}

// AllocBytes allocates enough frames to hold n bytes.
func (p *Physical) AllocBytes(owner Owner, n uint64) (Range, error) {
	frames := (n + p.frameSize - 1) / p.frameSize
	if frames == 0 {
		frames = 1
	}
	return p.Alloc(owner, frames)
}

// Release frees the frames of r (which must all be owned by owner),
// scrubbing their contents first so nothing leaks to the next owner.
// This is the memory half of nf_teardown.
func (p *Physical) Release(owner Owner, r Range) error {
	first := uint64(r.Start) / p.frameSize
	for f := first; f < first+r.Frames; f++ {
		if f >= p.nframes || p.owner[f] != owner {
			return fmt.Errorf("mem: release of frame %d not owned by %d", f, owner)
		}
	}
	for f := first; f < first+r.Frames; f++ {
		delete(p.frames, f) // scrub: lazily-backed frames read back as zero
		p.owner[f] = Free
	}
	if first < p.freeHint {
		p.freeHint = first
	}
	return nil
}

// ReleaseAll scrubs and frees every frame owned by owner, returning the
// number of bytes scrubbed (the quantity that dominates nf_destroy latency
// in Figure 6).
func (p *Physical) ReleaseAll(owner Owner) uint64 {
	var n uint64
	for f := uint64(0); f < p.nframes; f++ {
		if p.owner[f] == owner {
			delete(p.frames, f)
			p.owner[f] = Free
			n += p.frameSize
			if f < p.freeHint {
				p.freeHint = f
			}
		}
	}
	return n
}

// OwnedBytes returns the number of bytes currently owned by owner.
func (p *Physical) OwnedBytes(owner Owner) uint64 {
	var n uint64
	for _, o := range p.owner {
		if o == owner {
			n += p.frameSize
		}
	}
	return n
}

// OwnedRanges returns the contiguous ranges owned by owner, sorted by
// address. Useful for building page tables covering an NF's memory.
func (p *Physical) OwnedRanges(owner Owner) []Range {
	var out []Range
	var run uint64
	var start uint64
	for f := uint64(0); f <= p.nframes; f++ {
		if f < p.nframes && p.owner[f] == owner {
			if run == 0 {
				start = f
			}
			run++
			continue
		}
		if run > 0 {
			out = append(out, Range{Start: Addr(start * p.frameSize), Frames: run})
			run = 0
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func (p *Physical) frame(f uint64, create bool) []byte {
	b, ok := p.frames[f]
	if !ok && create {
		b = make([]byte, p.frameSize)
		p.frames[f] = b
	}
	return b
}

// ErrOutOfRange is returned for accesses past the end of DRAM.
var ErrOutOfRange = fmt.Errorf("mem: physical address out of range")

// Write stores data at physical address pa with no access control: this is
// the raw DRAM port. Access-control checks (TLBs, denylists) live above
// this layer — which is exactly why commodity NICs that expose raw
// physical addressing (xkphys, Agilio islands) are attackable.
func (p *Physical) Write(pa Addr, data []byte) error {
	if uint64(pa)+uint64(len(data)) > p.Size() {
		return ErrOutOfRange
	}
	off := uint64(pa)
	for len(data) > 0 {
		f := off / p.frameSize
		fo := off % p.frameSize
		n := p.frameSize - fo
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		copy(p.frame(f, true)[fo:fo+n], data[:n])
		data = data[n:]
		off += n
	}
	return nil
}

// Read loads len(buf) bytes from pa into buf. Unbacked frames read as zero.
func (p *Physical) Read(pa Addr, buf []byte) error {
	if uint64(pa)+uint64(len(buf)) > p.Size() {
		return ErrOutOfRange
	}
	off := uint64(pa)
	out := buf
	for len(out) > 0 {
		f := off / p.frameSize
		fo := off % p.frameSize
		n := p.frameSize - fo
		if n > uint64(len(out)) {
			n = uint64(len(out))
		}
		if fb := p.frame(f, false); fb != nil {
			copy(out[:n], fb[fo:fo+n])
		} else {
			for i := range out[:n] {
				out[i] = 0
			}
		}
		out = out[n:]
		off += n
	}
	return nil
}

// WriteU64 stores a little-endian uint64 at pa.
func (p *Physical) WriteU64(pa Addr, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return p.Write(pa, b[:])
}

// ReadU64 loads a little-endian uint64 from pa.
func (p *Physical) ReadU64(pa Addr) (uint64, error) {
	var b [8]byte
	if err := p.Read(pa, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
