package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newPhys(t *testing.T, total, frame uint64) *Physical {
	t.Helper()
	p, err := NewPhysical(total, frame)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPhysicalGeometry(t *testing.T) {
	if _, err := NewPhysical(1024, 100); err == nil {
		t.Fatal("accepted non-divisible geometry")
	}
	if _, err := NewPhysical(0, 64); err == nil {
		t.Fatal("accepted zero size")
	}
	p := newPhys(t, 1024, 64)
	if p.NumFrames() != 16 || p.Size() != 1024 || p.FrameSize() != 64 {
		t.Fatalf("bad geometry: %d frames, %d bytes", p.NumFrames(), p.Size())
	}
}

func TestAllocAssignsOwnership(t *testing.T) {
	p := newPhys(t, 1024, 64)
	r, err := p.Alloc(FirstNF, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames != 4 {
		t.Fatalf("got %d frames", r.Frames)
	}
	for off := uint64(0); off < 4*64; off += 64 {
		if p.OwnerOf(r.Start+Addr(off)) != FirstNF {
			t.Fatalf("frame at +%d not owned", off)
		}
	}
	if p.OwnedBytes(FirstNF) != 256 {
		t.Fatalf("OwnedBytes = %d", p.OwnedBytes(FirstNF))
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := newPhys(t, 256, 64)
	if _, err := p.Alloc(FirstNF, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(FirstNF+1, 1); err == nil {
		t.Fatal("allocated from full memory")
	}
}

func TestAllocToFreeRejected(t *testing.T) {
	p := newPhys(t, 256, 64)
	if _, err := p.Alloc(Free, 1); err == nil {
		t.Fatal("allocated to Free owner")
	}
}

func TestAllocFindsFragmentedHole(t *testing.T) {
	p := newPhys(t, 64*8, 64)
	a, _ := p.Alloc(FirstNF, 2)
	b, _ := p.Alloc(FirstNF+1, 2)
	c, _ := p.Alloc(FirstNF+2, 2)
	_ = a
	_ = c
	if err := p.Release(FirstNF+1, b); err != nil {
		t.Fatal(err)
	}
	// The hole left by b is 2 frames; a 2-frame allocation must find it.
	r, err := p.Alloc(FirstNF+3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != b.Start {
		t.Fatalf("did not reuse hole: got %d want %d", r.Start, b.Start)
	}
}

func TestReleaseWrongOwnerRejected(t *testing.T) {
	p := newPhys(t, 256, 64)
	r, _ := p.Alloc(FirstNF, 2)
	if err := p.Release(FirstNF+1, r); err == nil {
		t.Fatal("released frames owned by someone else")
	}
	// Ownership must be untouched after the failed release.
	if p.OwnedBytes(FirstNF) != 128 {
		t.Fatal("failed release modified ownership")
	}
}

func TestReleaseScrubs(t *testing.T) {
	p := newPhys(t, 256, 64)
	r, _ := p.Alloc(FirstNF, 1)
	secret := []byte("translation rules live here")
	if err := p.Write(r.Start, secret); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(FirstNF, r); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if err := p.Read(r.Start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, len(secret))) {
		t.Fatalf("residue after scrub: %q", got)
	}
}

func TestReleaseAllScrubsEverything(t *testing.T) {
	p := newPhys(t, 1024, 64)
	r1, _ := p.Alloc(FirstNF, 2)
	r2, _ := p.Alloc(FirstNF, 3)
	p.Write(r1.Start, []byte{1})
	p.Write(r2.Start, []byte{2})
	n := p.ReleaseAll(FirstNF)
	if n != 5*64 {
		t.Fatalf("scrubbed %d bytes, want %d", n, 5*64)
	}
	if p.OwnedBytes(FirstNF) != 0 {
		t.Fatal("frames still owned after ReleaseAll")
	}
	var b [1]byte
	p.Read(r1.Start, b[:])
	if b[0] != 0 {
		t.Fatal("residue after ReleaseAll")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	p := newPhys(t, 1024, 64)
	data := []byte("spans multiple frames because it is longer than sixty-four bytes, yes")
	if err := p.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch")
	}
}

func TestReadUnbackedIsZero(t *testing.T) {
	p := newPhys(t, 1024, 64)
	b := make([]byte, 128)
	for i := range b {
		b[i] = 0xFF
	}
	if err := p.Read(0, b); err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("unbacked byte %d = %d", i, v)
		}
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	p := newPhys(t, 256, 64)
	if err := p.Write(250, make([]byte, 16)); err != ErrOutOfRange {
		t.Fatalf("write: got %v", err)
	}
	if err := p.Read(256, make([]byte, 1)); err != ErrOutOfRange {
		t.Fatalf("read: got %v", err)
	}
}

func TestU64RoundTrip(t *testing.T) {
	p := newPhys(t, 256, 64)
	// Straddle a frame boundary on purpose.
	if err := p.WriteU64(60, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadU64(60)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("got %#x", v)
	}
}

func TestOwnedRanges(t *testing.T) {
	p := newPhys(t, 64*10, 64)
	p.Alloc(FirstNF, 2)
	mid, _ := p.Alloc(FirstNF+1, 1)
	p.Alloc(FirstNF, 3)
	_ = mid
	rs := p.OwnedRanges(FirstNF)
	if len(rs) != 2 || rs[0].Frames != 2 || rs[1].Frames != 3 {
		t.Fatalf("ranges = %+v", rs)
	}
}

// Property: write-then-read round-trips at arbitrary (valid) offsets.
func TestReadWriteProperty(t *testing.T) {
	p := newPhys(t, 1<<16, 256)
	f := func(off uint16, data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		pa := Addr(off)
		if uint64(pa)+uint64(len(data)) > p.Size() {
			return true
		}
		if err := p.Write(pa, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := p.Read(pa, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocation never double-assigns a frame.
func TestSingleOwnerInvariant(t *testing.T) {
	p := newPhys(t, 64*64, 64)
	owners := []Owner{FirstNF, FirstNF + 1, FirstNF + 2}
	alloced := map[Owner][]Range{}
	for i := 0; i < 40; i++ {
		o := owners[i%len(owners)]
		if r, err := p.Alloc(o, uint64(1+i%3)); err == nil {
			alloced[o] = append(alloced[o], r)
		}
		if i%7 == 6 {
			if rs := alloced[o]; len(rs) > 0 {
				if err := p.Release(o, rs[0]); err != nil {
					t.Fatal(err)
				}
				alloced[o] = rs[1:]
			}
		}
		// Invariant: every frame of every live range still owned by its owner.
		for o2, rs := range alloced {
			for _, r := range rs {
				first := uint64(r.Start) / p.FrameSize()
				for f := first; f < first+r.Frames; f++ {
					if p.FrameOwner(f) != o2 {
						t.Fatalf("frame %d stolen from %d", f, o2)
					}
				}
			}
		}
	}
}

func TestArenaAccounting(t *testing.T) {
	var a Arena
	a.Alloc(SegHeap, 100)
	a.Alloc(SegText, 10)
	if a.Live() != 110 {
		t.Fatalf("live = %d", a.Live())
	}
	a.Free(SegHeap, 40)
	if a.Live() != 70 || a.LiveIn(SegHeap) != 60 {
		t.Fatalf("live = %d heap = %d", a.Live(), a.LiveIn(SegHeap))
	}
	if a.PeakIn(SegHeap) != 100 || a.Peak() != 110 {
		t.Fatalf("peaks: heap=%d total=%d", a.PeakIn(SegHeap), a.Peak())
	}
}

func TestArenaUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	var a Arena
	a.Free(SegHeap, 1)
}

func TestArenaSamples(t *testing.T) {
	var got []uint64
	a := Arena{Samples: func(live uint64) { got = append(got, live) }}
	a.Alloc(SegHeap, 5)
	a.Alloc(SegHeap, 5)
	a.Free(SegHeap, 3)
	want := []uint64{5, 10, 7}
	if len(got) != len(want) {
		t.Fatalf("samples = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("samples = %v, want %v", got, want)
		}
	}
}

func TestArenaProfile(t *testing.T) {
	var a Arena
	a.Alloc(SegText, 1)
	a.Alloc(SegData, 2)
	a.Alloc(SegCode, 3)
	a.Alloc(SegHeap, 4)
	pr := a.Profile()
	if pr.Text != 1 || pr.Data != 2 || pr.Code != 3 || pr.Heap != 4 || pr.Total() != 10 {
		t.Fatalf("profile = %+v", pr)
	}
}

func TestSegmentString(t *testing.T) {
	if SegHeap.String() != "heap&stack" || SegText.String() != "text" {
		t.Fatal("segment names wrong")
	}
}
