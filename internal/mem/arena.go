package mem

import "fmt"

// Arena does byte-level accounting for a network function's address space,
// broken into the four segments the paper profiles in Table 6 (text, data,
// code, heap&stack). It is how we reproduce the memory-profiling results:
// every NF data structure allocates through an Arena, so live and peak
// usage are exact and deterministic, including the transient spikes
// (hugepage staging, hash-map resizes) visible in Figure 7.
type Arena struct {
	segs [NumSegments]segment
	// Samples, if non-nil, receives (liveBytes) after every allocation
	// change; used to build the Figure 7 time series.
	Samples func(live uint64)
}

// Segment identifies one of the profiled address-space regions.
type Segment int

// Table 6 segments.
const (
	SegText Segment = iota // read-only executable
	SegData                // static data
	SegCode                // runtime/library code (the paper reports it separately)
	SegHeap                // heap & stack
	NumSegments
)

// String implements fmt.Stringer.
func (s Segment) String() string {
	switch s {
	case SegText:
		return "text"
	case SegData:
		return "data"
	case SegCode:
		return "code"
	case SegHeap:
		return "heap&stack"
	}
	return fmt.Sprintf("segment(%d)", int(s))
}

type segment struct {
	live uint64
	peak uint64
}

// Alloc records an allocation of n bytes in segment s.
func (a *Arena) Alloc(s Segment, n uint64) {
	seg := &a.segs[s]
	seg.live += n
	if seg.live > seg.peak {
		seg.peak = seg.live
	}
	if a.Samples != nil {
		a.Samples(a.Live())
	}
}

// Free records the release of n bytes in segment s. Freeing more than is
// live panics: that is an accounting bug in the caller.
func (a *Arena) Free(s Segment, n uint64) {
	seg := &a.segs[s]
	if n > seg.live {
		panic(fmt.Sprintf("mem: arena underflow in %v: free %d of %d", s, n, seg.live))
	}
	seg.live -= n
	if a.Samples != nil {
		a.Samples(a.Live())
	}
}

// Live returns the currently allocated bytes across all segments.
func (a *Arena) Live() uint64 {
	var n uint64
	for i := range a.segs {
		n += a.segs[i].live
	}
	return n
}

// LiveIn returns the currently allocated bytes in segment s.
func (a *Arena) LiveIn(s Segment) uint64 { return a.segs[s].live }

// PeakIn returns the peak allocation of segment s.
func (a *Arena) PeakIn(s Segment) uint64 { return a.segs[s].peak }

// Peak returns the sum of per-segment peaks. The paper sizes TLB coverage
// from maximum per-segment usage ("we profiled the maximum memory usage"),
// so segment peaks — not the global concurrent peak — are what Table 6
// reports.
func (a *Arena) Peak() uint64 {
	var n uint64
	for i := range a.segs {
		n += a.segs[i].peak
	}
	return n
}

// Profile is a point-in-time snapshot of segment peaks, in bytes.
type Profile struct {
	Text, Data, Code, Heap uint64
}

// Profile captures the per-segment peak usage.
func (a *Arena) Profile() Profile {
	return Profile{
		Text: a.segs[SegText].peak,
		Data: a.segs[SegData].peak,
		Code: a.segs[SegCode].peak,
		Heap: a.segs[SegHeap].peak,
	}
}

// Total returns the summed peak bytes of the profile.
func (p Profile) Total() uint64 { return p.Text + p.Data + p.Code + p.Heap }

// MB converts bytes to mebibytes as a float, for table printing.
func MB(b uint64) float64 { return float64(b) / (1 << 20) }
