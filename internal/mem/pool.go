package mem

import "fmt"

// Pooled is the reserved owner marking frames parked in the warm arena
// pool: scrubbed at teardown, zero-backed, waiting for the next launch.
// It sits at the top of the Owner space so it can never collide with an
// NF id under any realistic churn volume (ids grow from FirstNF and a
// device reboot resets them long before 0xFFFF).
const Pooled Owner = ^Owner(0)

// SetPoolCapacity bounds the warm arena at frames (0 disables pooling
// and drains anything currently parked back to the free list). The
// capacity is a device-layer policy knob — see device.WarmPoolFrames —
// not a property of the DRAM itself, which is why it defaults off.
func (p *Physical) SetPoolCapacity(frames uint64) {
	if frames > p.nframes {
		frames = p.nframes
	}
	p.poolCap = frames
	if p.poolCap == 0 {
		p.DrainPool()
	}
}

// PoolCapacity returns the configured warm-arena bound in frames.
func (p *Physical) PoolCapacity() uint64 { return p.poolCap }

// PoolFrames returns the number of frames currently parked in the warm
// arena.
func (p *Physical) PoolFrames() uint64 { return p.poolFrames }

// ReleaseAllPooled scrubs every frame owned by owner exactly like
// ReleaseAll — backing deleted, so the frames read back as zero — but
// parks up to the arena's remaining capacity under the Pooled owner
// instead of returning it to the general free list. The scrub still
// happens here, on the teardown path; pooling only moves the *reuse*
// off the launch critical path. Returns the bytes scrubbed (the
// Figure 6 nf_destroy quantity, pooled or not) and the frames parked.
func (p *Physical) ReleaseAllPooled(owner Owner) (scrubbed, pooled uint64) {
	if owner == Free || owner == Pooled {
		return 0, 0
	}
	for f := uint64(0); f < p.nframes; f++ {
		if p.owner[f] != owner {
			continue
		}
		delete(p.frames, f) // scrub: lazily-backed frames read back as zero
		scrubbed += p.frameSize
		if p.poolFrames < p.poolCap {
			p.owner[f] = Pooled
			p.poolFrames++
			pooled++
		} else {
			p.owner[f] = Free
			if f < p.freeHint {
				p.freeHint = f
			}
		}
	}
	if pooled > 0 {
		// Recomputing from the ownership map merges runs parked by
		// different NFs into maximal contiguous ranges.
		p.pool = p.OwnedRanges(Pooled)
	}
	return scrubbed, pooled
}

// AllocPooled allocates nframes for owner, serving from a parked warm
// run when one fits (hit) and falling back to the general allocator
// otherwise (miss). Exact-size runs are preferred — churn workloads
// launch uniformly sized functions, so exact fits dominate and the
// arena does not fragment — then the first run large enough, both in
// address order for determinism.
func (p *Physical) AllocPooled(owner Owner, nframes uint64) (Range, bool, error) {
	if owner == Free || owner == Pooled {
		return Range{}, false, fmt.Errorf("mem: cannot allocate to reserved owner %d", owner)
	}
	if nframes == 0 {
		return Range{}, false, fmt.Errorf("mem: bad allocation size %d", nframes)
	}
	pick := -1
	for i, r := range p.pool {
		if r.Frames == nframes {
			pick = i
			break
		}
		if pick < 0 && r.Frames > nframes {
			pick = i
		}
	}
	if pick < 0 {
		r, err := p.Alloc(owner, nframes)
		return r, false, err
	}
	r := p.pool[pick]
	first := uint64(r.Start) / p.frameSize
	for f := first; f < first+nframes; f++ {
		p.owner[f] = owner
	}
	p.poolFrames -= nframes
	if r.Frames == nframes {
		p.pool = append(p.pool[:pick], p.pool[pick+1:]...)
	} else {
		p.pool[pick] = Range{Start: r.Start + Addr(nframes*p.frameSize), Frames: r.Frames - nframes}
	}
	return Range{Start: r.Start, Frames: nframes}, true, nil
}

// AllocBytesPooled is AllocPooled sized in bytes, mirroring AllocBytes.
func (p *Physical) AllocBytesPooled(owner Owner, n uint64) (Range, bool, error) {
	frames := (n + p.frameSize - 1) / p.frameSize
	if frames == 0 {
		frames = 1
	}
	return p.AllocPooled(owner, frames)
}

// DrainPool returns every parked frame to the general free list and
// reports how many frames it drained. Reboot and pool-disable paths use
// it so no memory stays reserved for a policy that is no longer active.
func (p *Physical) DrainPool() uint64 {
	var n uint64
	for f := uint64(0); f < p.nframes; f++ {
		if p.owner[f] == Pooled {
			p.owner[f] = Free
			n++
			if f < p.freeHint {
				p.freeHint = f
			}
		}
	}
	p.pool = nil
	p.poolFrames = 0
	return n
}
