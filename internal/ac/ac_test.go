package ac

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"snic/internal/sim"
)

func compile(t *testing.T, pats ...string) *Automaton {
	t.Helper()
	bs := make([][]byte, len(pats))
	for i, p := range pats {
		bs[i] = []byte(p)
	}
	a, err := Compile(bs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func ends(ms []Match) []int {
	var out []int
	for _, m := range ms {
		out = append(out, m.End)
	}
	sort.Ints(out)
	return out
}

func TestSimpleMatch(t *testing.T) {
	a := compile(t, "he", "she", "his", "hers")
	ms := a.Scan([]byte("ushers"), nil)
	// Classic AC example: "she" at 4, "he" at 4, "hers" at 6.
	if len(ms) != 3 {
		t.Fatalf("matches = %+v", ms)
	}
	got := ends(ms)
	want := []int{4, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ends = %v, want %v", got, want)
		}
	}
}

func TestNoMatch(t *testing.T) {
	a := compile(t, "virus", "exploit")
	if a.Contains([]byte("innocuous payload")) {
		t.Fatal("false positive")
	}
	if ms := a.Scan([]byte("clean"), nil); len(ms) != 0 {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestOverlappingPatterns(t *testing.T) {
	a := compile(t, "aa", "aaa")
	ms := a.Scan([]byte("aaaa"), nil)
	// "aa" ends at 2,3,4; "aaa" ends at 3,4 => 5 matches.
	if len(ms) != 5 {
		t.Fatalf("got %d matches: %+v", len(ms), ms)
	}
}

func TestPatternIndexReported(t *testing.T) {
	a := compile(t, "foo", "bar")
	ms := a.Scan([]byte("xbar"), nil)
	if len(ms) != 1 || ms[0].Pattern != 1 || ms[0].End != 4 {
		t.Fatalf("ms = %+v", ms)
	}
}

func TestDuplicatePatterns(t *testing.T) {
	a := compile(t, "dup", "dup")
	ms := a.Scan([]byte("dup"), nil)
	if len(ms) != 2 {
		t.Fatalf("duplicate patterns reported %d matches", len(ms))
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	if _, err := Compile([][]byte{[]byte("ok"), {}}); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestContainsEarlyExit(t *testing.T) {
	a := compile(t, "x")
	if !a.Contains([]byte("aaax")) {
		t.Fatal("missed match")
	}
}

func TestBinaryPatterns(t *testing.T) {
	a, err := Compile([][]byte{{0x00, 0xFF, 0x00}, {0xDE, 0xAD}})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte{1, 0x00, 0xFF, 0x00, 2, 0xDE, 0xAD}
	ms := a.Scan(input, nil)
	if len(ms) != 2 {
		t.Fatalf("binary matches = %+v", ms)
	}
}

func TestStateWalk(t *testing.T) {
	a := compile(t, "abc")
	n, final := a.StateWalk([]byte("ab"))
	if n != 2 || final == 0 {
		t.Fatalf("walk = %d, %d", n, final)
	}
}

func TestMemoryBytesGrowsWithRules(t *testing.T) {
	small := compile(t, "a")
	big := compile(t, "abcdefgh", "ijklmnop", "qrstuvwx")
	if big.MemoryBytes() <= small.MemoryBytes() {
		t.Fatal("graph memory not monotone in rule volume")
	}
	if small.States() != 2 {
		t.Fatalf("states = %d", small.States())
	}
}

// naiveFind is the reference oracle: brute-force all occurrences.
func naiveFind(patterns [][]byte, input []byte) []int {
	var out []int
	for _, p := range patterns {
		for i := 0; i+len(p) <= len(input); i++ {
			if bytes.Equal(input[i:i+len(p)], p) {
				out = append(out, i+len(p))
			}
		}
	}
	sort.Ints(out)
	return out
}

// Property: the automaton agrees with brute force on random inputs over a
// small alphabet (small alphabets maximize overlap/failure-link stress).
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		nPat := 1 + rng.Intn(8)
		patterns := make([][]byte, nPat)
		for i := range patterns {
			p := make([]byte, 1+rng.Intn(5))
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			patterns[i] = p
		}
		input := make([]byte, rng.Intn(200))
		for i := range input {
			input[i] = byte('a' + rng.Intn(3))
		}
		a, err := Compile(patterns)
		if err != nil {
			return false
		}
		got := ends(a.Scan(input, nil))
		want := naiveFind(patterns, input)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScan1KBPayload(b *testing.B) {
	rng := sim.NewRand(1)
	patterns := make([][]byte, 1000)
	for i := range patterns {
		p := make([]byte, 8+rng.Intn(24))
		rng.Bytes(p)
		patterns[i] = p
	}
	a, err := Compile(patterns)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	rng.Bytes(payload)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Scan(payload, nil)
	}
}

func TestByteClasses(t *testing.T) {
	a := compile(t, "ab", "ba")
	// Two distinct pattern bytes + 1 unused class.
	if a.Classes() != 3 {
		t.Fatalf("classes = %d", a.Classes())
	}
	// Unused bytes share class 0 and never advance the automaton.
	if a.Contains([]byte("zzzz")) {
		t.Fatal("unused bytes matched")
	}
	if !a.Contains([]byte("zzabzz")) {
		t.Fatal("match missed amid unused bytes")
	}
}

func TestClassCompressionShrinksGraph(t *testing.T) {
	// Patterns over 4 distinct bytes: class-compressed table must be far
	// smaller than 256 columns per state.
	a := compile(t, "abcd", "bcda", "cdab")
	rawCols := uint64(a.States()) * 256 * 4
	if a.MemoryBytes() >= rawCols/8 {
		t.Fatalf("graph %d bytes vs raw %d: compression ineffective", a.MemoryBytes(), rawCols)
	}
}
