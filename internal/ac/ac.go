// Package ac implements the Aho–Corasick multi-pattern string-matching
// automaton [Aho & Corasick, CACM 1975] from scratch. It is the matching
// engine behind both the DPI network function (§5.1, which the paper backs
// with the aho_corasick Rust crate) and the DPI hardware accelerator
// (§4.3, a "regular-expression engine" that walks a finite-automata graph
// stored in DRAM).
//
// The automaton is a trie with breadth-first failure links, flattened into
// a dense goto table with *byte-class compression*: every byte value that
// appears in no pattern behaves identically from every state, so the
// alphabet collapses to (distinct pattern bytes + 1) classes. This is the
// same trick production matchers (and the Rust crate's DFA) use, and it is
// what keeps the 33 K-rule graph near the ~100 MB the paper reports in
// Table 7 rather than the ~0.5 GB a raw 256-way table would need.
package ac

import (
	"fmt"
	"sort"
)

// Automaton is a compiled pattern set.
type Automaton struct {
	// classOf maps a byte to its equivalence class.
	classOf [256]uint16
	// nclasses is the number of byte classes.
	nclasses int
	// next[state*nclasses+class] is the goto function with failure links
	// pre-resolved, so matching never backtracks.
	next []int32
	// out[state] lists pattern indices terminating at state.
	out       [][]int32
	npatterns int
}

// Match reports one pattern occurrence.
type Match struct {
	Pattern int // index into the compiled pattern list
	End     int // byte offset one past the match in the scanned input
}

// Compile builds the automaton for the given patterns. Empty patterns are
// rejected; duplicate patterns are allowed (each gets its own index).
func Compile(patterns [][]byte) (*Automaton, error) {
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("ac: pattern %d is empty", i)
		}
	}
	a := &Automaton{npatterns: len(patterns)}
	// Byte classes: class 0 = "appears in no pattern"; each distinct
	// pattern byte gets its own class.
	used := [256]bool{}
	for _, p := range patterns {
		for _, b := range p {
			used[b] = true
		}
	}
	nc := 1
	for b := 0; b < 256; b++ {
		if used[b] {
			a.classOf[b] = uint16(nc)
			nc++
		}
	}
	a.nclasses = nc

	type node struct {
		children map[uint16]int32 // by class
		fail     int32
		out      []int32
	}
	nodes := []*node{{children: map[uint16]int32{}}}
	// Phase 1: trie over classes.
	for pi, p := range patterns {
		cur := int32(0)
		for _, b := range p {
			cl := a.classOf[b]
			nxt, ok := nodes[cur].children[cl]
			if !ok {
				nxt = int32(len(nodes))
				nodes = append(nodes, &node{children: map[uint16]int32{}})
				nodes[cur].children[cl] = nxt
			}
			cur = nxt
		}
		nodes[cur].out = append(nodes[cur].out, int32(pi))
	}
	// Phase 2: BFS failure links. Children are visited in ascending class
	// order so the queue — and with it the out-list concatenation order —
	// is a pure function of the pattern set, not of map iteration.
	sortedChildren := func(n *node) []uint16 {
		cls := make([]uint16, 0, len(n.children))
		for cl := range n.children {
			cls = append(cls, cl)
		}
		sort.Slice(cls, func(i, j int) bool { return cls[i] < cls[j] })
		return cls
	}
	queue := make([]int32, 0, len(nodes))
	for _, cl := range sortedChildren(nodes[0]) {
		c := nodes[0].children[cl]
		nodes[c].fail = 0
		queue = append(queue, c)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, cl := range sortedChildren(nodes[u]) {
			v := nodes[u].children[cl]
			queue = append(queue, v)
			f := nodes[u].fail
			for {
				if w, ok := nodes[f].children[cl]; ok && w != v {
					nodes[v].fail = w
					break
				}
				if f == 0 {
					if w, ok := nodes[0].children[cl]; ok && w != v {
						nodes[v].fail = w
					} else {
						nodes[v].fail = 0
					}
					break
				}
				f = nodes[f].fail
			}
			nodes[v].out = append(nodes[v].out, nodes[nodes[v].fail].out...)
		}
	}
	// Phase 3: dense goto table over classes with failures resolved.
	a.next = make([]int32, len(nodes)*nc)
	a.out = make([][]int32, len(nodes))
	order := append([]int32{0}, queue...)
	for _, s := range order {
		n := nodes[s]
		a.out[s] = n.out
		row := int(s) * nc
		for cl := 0; cl < nc; cl++ {
			if c, ok := n.children[uint16(cl)]; ok {
				a.next[row+cl] = c
			} else if s == 0 {
				a.next[cl] = 0
			} else {
				a.next[row+cl] = a.next[int(n.fail)*nc+cl]
			}
		}
	}
	return a, nil
}

// States returns the number of automaton states.
func (a *Automaton) States() int { return len(a.out) }

// Classes returns the number of byte equivalence classes.
func (a *Automaton) Classes() int { return a.nclasses }

// NumPatterns returns the number of compiled patterns.
func (a *Automaton) NumPatterns() int { return a.npatterns }

// MemoryBytes estimates the DRAM footprint of the flattened graph: the
// class-compressed transition table, the byte-class map, and the output
// lists. This is the "Graph" entry of Table 7.
func (a *Automaton) MemoryBytes() uint64 {
	n := uint64(len(a.next))*4 + 256*2
	for _, o := range a.out {
		n += 8 + uint64(len(o))*4
	}
	return n
}

// Scan runs the automaton over input, appending matches to dst (which may
// be nil) and returning it. The traversal touches one table row per input
// byte — the access pattern the DPI accelerator model charges DRAM
// bandwidth for.
func (a *Automaton) Scan(input []byte, dst []Match) []Match {
	s := int32(0)
	nc := a.nclasses
	for i, b := range input {
		s = a.next[int(s)*nc+int(a.classOf[b])]
		if outs := a.out[s]; len(outs) > 0 {
			for _, p := range outs {
				dst = append(dst, Match{Pattern: int(p), End: i + 1})
			}
		}
	}
	return dst
}

// Contains reports whether any pattern occurs in input (early exit).
func (a *Automaton) Contains(input []byte) bool {
	s := int32(0)
	nc := a.nclasses
	for _, b := range input {
		s = a.next[int(s)*nc+int(a.classOf[b])]
		if len(a.out[s]) > 0 {
			return true
		}
	}
	return false
}

// StateWalk returns the state sequence length (equal to len(input)) and
// final state; used by the accelerator model to meter graph-cache traffic
// deterministically without allocating matches.
func (a *Automaton) StateWalk(input []byte) (visited int, final int32) {
	s := int32(0)
	nc := a.nclasses
	for _, b := range input {
		s = a.next[int(s)*nc+int(a.classOf[b])]
	}
	return len(input), s
}
