package attacks

import (
	"testing"

	"snic/internal/bus"

	"snic/internal/attest"
	"snic/internal/baseline"
	"snic/internal/cache"
	"snic/internal/sim"
	"snic/internal/snic"
	"snic/internal/trace"
)

func newLiquidIO(t *testing.T) *baseline.LiquidIO {
	t.Helper()
	l, err := baseline.NewLiquidIO(16<<20, baseline.SES, true)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newSNICPair(t *testing.T) (*snic.Device, snic.ID, snic.ID) {
	t.Helper()
	v, _ := attest.NewVendor("V", nil)
	d, err := snic.New(snic.Config{Cores: 4, MemBytes: 32 << 20}, v)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mask uint64) snic.ID {
		rep, err := d.Launch(snic.LaunchSpec{
			CoreMask: mask, Image: []byte("nf"), MemBytes: 1 << 20, DMACore: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ID
	}
	return d, mk(0b01), mk(0b10)
}

func TestPacketCorruptionSucceedsOnLiquidIO(t *testing.T) {
	res, err := PacketCorruptionLiquidIO(newLiquidIO(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("attack blocked on commodity NIC: %s", res.Detail)
	}
}

func TestRulesetTheftSucceedsOnLiquidIO(t *testing.T) {
	rng := sim.NewRand(1)
	var ruleset []byte
	for _, p := range trace.DPIPatterns(rng, 100) {
		ruleset = append(ruleset, p...)
		ruleset = append(ruleset, '\n')
	}
	res, err := RulesetTheftLiquidIO(newLiquidIO(t), ruleset)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("theft blocked on commodity NIC: %s", res.Detail)
	}
}

func TestTheftBlockedOnSNIC(t *testing.T) {
	d, victim, attacker := newSNICPair(t)
	res, err := TheftSNIC(d, victim, attacker, []byte("THREAT-SIGNATURE-DB-v7"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatalf("S-NIC leaked the secret: %s", res.Detail)
	}
}

func TestCorruptionBlockedOnSNIC(t *testing.T) {
	d, victim, attacker := newSNICPair(t)
	res, err := CorruptionSNIC(d, victim, attacker)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatalf("S-NIC allowed corruption: %s", res.Detail)
	}
}

func TestBusDoSCrashesAgilio(t *testing.T) {
	a, err := baseline.NewAgilio(16<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BusDoSAgilio(a, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("DoS failed on unarbitrated bus: %s", res.Detail)
	}
}

func TestSecureWorldSnoopsBlueField(t *testing.T) {
	b, err := baseline.NewBlueField(16<<20, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SecureWorldSnoopBlueField(b, []byte("tenant tls keys"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatal("secure world failed to read tenant state (model broken)")
	}
}

func TestPrimeProbeLeaksOnSharedCache(t *testing.T) {
	acc, err := PrimeProbe(cache.Shared, 256, 42)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("shared-cache prime+probe accuracy %.2f, want ~1.0", acc)
	}
}

func TestPrimeProbeBlindOnStaticPartition(t *testing.T) {
	acc, err := PrimeProbe(cache.Static, 256, 42)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.35 || acc > 0.65 {
		t.Fatalf("partitioned-cache prime+probe accuracy %.2f, want ~0.5 (chance)", acc)
	}
}

func TestCryptoContentionLeaks(t *testing.T) {
	a, _ := baseline.NewAgilio(16<<20, 2)
	if acc := CryptoContentionAgilio(a, 200, 7); acc < 0.95 {
		t.Fatalf("crypto contention accuracy %.2f, want ~1.0", acc)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Name: "x", Target: "y", Succeeded: true, Detail: "d"}
	if r.String() == "" || (Result{}).String() == "" {
		t.Fatal("empty render")
	}
}

func TestControlledChannelLeaksOnPagedBaseline(t *testing.T) {
	if acc := ControlledChannel(false, []byte("page fault oracle")); acc != 1.0 {
		t.Fatalf("baseline recovery = %v, want 1.0", acc)
	}
}

func TestControlledChannelClosedOnSNIC(t *testing.T) {
	if acc := ControlledChannel(true, []byte("page fault oracle")); acc != 0 {
		t.Fatalf("S-NIC recovery = %v, want 0 (no fault stream)", acc)
	}
}

func TestWatermarkDetectableOnFIFO(t *testing.T) {
	acc := Watermark(func(int) bus.Arbiter { return bus.NewFIFO() }, 64, 5)
	if acc < 0.9 {
		t.Fatalf("FIFO watermark accuracy %.2f, want ~1.0", acc)
	}
}

func TestWatermarkErasedByTemporalPartitioning(t *testing.T) {
	acc := Watermark(func(n int) bus.Arbiter { return bus.NewTemporal(n, 60, 10) }, 64, 5)
	if acc < 0.3 || acc > 0.7 {
		t.Fatalf("temporal watermark accuracy %.2f, want ~0.5 (chance)", acc)
	}
}
