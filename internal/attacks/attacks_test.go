package attacks

import (
	"testing"

	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/device"
)

func buildDevice(t *testing.T, model string) device.NIC {
	t.Helper()
	dev, err := device.New(device.Spec{Model: model, Cores: 4, MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestSuiteMatchesCapabilityPrediction is the central property of the
// polymorphic suite: on every registered model, every attack's observed
// outcome equals the prediction from the device's capability flags.
func TestSuiteMatchesCapabilityPrediction(t *testing.T) {
	for _, model := range device.Models() {
		t.Run(model, func(t *testing.T) {
			dev := buildDevice(t, model)
			results, err := RunAll(dev)
			if err != nil {
				t.Fatal(err)
			}
			suite := Suite()
			if len(results) != len(suite) {
				t.Fatalf("got %d results for %d attacks", len(results), len(suite))
			}
			for i, a := range suite {
				want := a.Expected(dev.Caps())
				got := results[i]
				if got.Name != a.Name || got.Target != model {
					t.Fatalf("result %d mislabelled: %+v", i, got)
				}
				if got.Succeeded != want {
					t.Errorf("%s vs %s: succeeded=%v, capability prediction %v (%s)",
						a.Name, model, got.Succeeded, want, got.Detail)
				}
			}
		})
	}
}

// TestSNICBlocksEverything and TestEveryAttackLandsSomewhere pin the
// paper's headline claims independently of the capability tables.
func TestSNICBlocksEverything(t *testing.T) {
	results, err := RunAll(buildDevice(t, "snic"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Succeeded {
			t.Errorf("%s succeeded against S-NIC: %s", r.Name, r.Detail)
		}
	}
}

func TestEveryAttackLandsSomewhere(t *testing.T) {
	landed := make(map[string]bool)
	for _, model := range device.Models() {
		if model == "snic" {
			continue
		}
		results, err := RunAll(buildDevice(t, model))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Succeeded {
				landed[r.Name] = true
			}
		}
	}
	for _, a := range Suite() {
		if !landed[a.Name] {
			t.Errorf("%s blocked on every baseline; the attack surface model is broken", a.Name)
		}
	}
}

// TestRequiresGate: an attack whose prerequisite capability is missing
// must report blocked without running.
func TestRequiresGate(t *testing.T) {
	dev := buildDevice(t, "liquidio-ses") // no demand paging
	for _, a := range Suite() {
		if a.Name != "controlled-channel" {
			continue
		}
		res, err := a.Run(dev)
		if err != nil {
			t.Fatal(err)
		}
		if res.Succeeded {
			t.Fatalf("controlled channel succeeded without demand paging: %s", res.Detail)
		}
	}
}

func TestPrimeProbeLeaksOnSharedCache(t *testing.T) {
	acc, err := PrimeProbe(cache.Shared, 256, 42)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("shared-cache prime+probe accuracy %.2f, want ~1.0", acc)
	}
}

func TestPrimeProbeBlindOnStaticPartition(t *testing.T) {
	acc, err := PrimeProbe(cache.Static, 256, 42)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.35 || acc > 0.65 {
		t.Fatalf("partitioned-cache prime+probe accuracy %.2f, want ~0.5 (chance)", acc)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Name: "x", Target: "y", Succeeded: true, Detail: "d"}
	if r.String() == "" || (Result{}).String() == "" {
		t.Fatal("empty render")
	}
}

func TestControlledChannelLeaksOnPagedBaseline(t *testing.T) {
	if acc := ControlledChannel(false, []byte("page fault oracle")); acc != 1.0 {
		t.Fatalf("baseline recovery = %v, want 1.0", acc)
	}
}

func TestControlledChannelClosedOnSNIC(t *testing.T) {
	if acc := ControlledChannel(true, []byte("page fault oracle")); acc != 0 {
		t.Fatalf("S-NIC recovery = %v, want 0 (no fault stream)", acc)
	}
}

func TestWatermarkDetectableOnFIFO(t *testing.T) {
	acc := Watermark(func(int) bus.Arbiter { return bus.NewFIFO() }, 64, 5)
	if acc < 0.9 {
		t.Fatalf("FIFO watermark accuracy %.2f, want ~1.0", acc)
	}
}

func TestWatermarkErasedByTemporalPartitioning(t *testing.T) {
	acc := Watermark(func(n int) bus.Arbiter { return bus.NewTemporal(n, 60, 10) }, 64, 5)
	if acc < 0.3 || acc > 0.7 {
		t.Fatalf("temporal watermark accuracy %.2f, want ~0.5 (chance)", acc)
	}
}
