// Package attacks reproduces the paper's concrete attacks (§3.3) against
// the commodity baseline models, and re-runs each against the S-NIC
// device to show the defense:
//
//   - Packet corruption (LiquidIO): scan the shared buffer allocator's
//     metadata via xkphys, find the victim NAT's packet buffers, corrupt
//     headers.
//   - DPI ruleset theft (LiquidIO): locate another function's ruleset
//     through the same metadata and copy it out.
//   - IO-bus denial of service (Agilio): saturate the unarbitrated bus
//     until the victim starves and the watchdog declares a hard crash.
//   - Cache prime+probe (any shared-L2 NIC): recover a victim's secret-
//     dependent access pattern from eviction timing.
//
// Every attack returns a Result, so the test suite and cmd/snicattack can
// assert "succeeds on baseline, blocked on S-NIC".
package attacks

import (
	"bytes"
	"fmt"

	"snic/internal/baseline"
	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/sim"
	"snic/internal/snic"
	"snic/internal/tlb"
)

// Result reports one attack run.
type Result struct {
	Name      string
	Target    string
	Succeeded bool
	Detail    string
}

func (r Result) String() string {
	verdict := "BLOCKED"
	if r.Succeeded {
		verdict = "SUCCEEDED"
	}
	return fmt.Sprintf("%-22s vs %-9s %s  (%s)", r.Name, r.Target, verdict, r.Detail)
}

// victimOwner / attackerOwner label the two tenants in the demos.
const (
	victimOwner   = mem.FirstNF
	attackerOwner = mem.FirstNF + 1
)

// PacketCorruptionLiquidIO runs the §3.3 MazuNAT packet-corruption attack.
func PacketCorruptionLiquidIO(l *baseline.LiquidIO) (Result, error) {
	res := Result{Name: "packet-corruption", Target: "LiquidIO"}
	// Victim: a NAT holding a packet in a shared-pool buffer.
	victim := pkt.Packet{
		Tuple: pkt.FiveTuple{
			SrcIP: 0x0A000001, DstIP: 0x08080808,
			SrcPort: 5555, DstPort: 80, Proto: pkt.ProtoTCP,
		},
		Payload: []byte("pre-translation payload"),
	}
	frame := victim.Marshal()
	buf, err := l.AllocBuf(victimOwner, uint32(len(frame)), baseline.TagPacket)
	if err != nil {
		return res, err
	}
	if err := l.Memory().Write(buf, frame); err != nil {
		return res, err
	}

	// Attacker: scan allocator metadata (plain DRAM reads via xkphys),
	// find foreign packet buffers, flip header bytes.
	for i := 0; i < l.MetaLen(); i++ {
		meta, err := l.ReadMeta(i)
		if err != nil {
			return res, err
		}
		if meta.Owner == attackerOwner || meta.Tag != baseline.TagPacket {
			continue
		}
		// Corrupt the IPv4 destination address inside the victim's frame.
		evil := []byte{0xDE, 0xAD, 0xBE, 0xEF}
		if err := l.XkphysWrite(attackerOwner, meta.Addr+pkt.EthHeaderLen+16, evil); err != nil {
			return res, err
		}
	}

	// Victim later reads its packet back: the NAT translation is wrecked.
	got := make([]byte, len(frame))
	if err := l.Memory().Read(buf, got); err != nil {
		return res, err
	}
	if _, err := pkt.Parse(got); err != nil {
		res.Succeeded = true
		res.Detail = fmt.Sprintf("victim frame no longer parses: %v", err)
		return res, nil
	}
	if !bytes.Equal(got, frame) {
		res.Succeeded = true
		res.Detail = "victim frame bytes modified"
	}
	return res, nil
}

// RulesetTheftLiquidIO runs the §3.3 DPI ruleset-stealing attack.
func RulesetTheftLiquidIO(l *baseline.LiquidIO, ruleset []byte) (Result, error) {
	res := Result{Name: "dpi-ruleset-theft", Target: "LiquidIO"}
	buf, err := l.AllocBuf(victimOwner, uint32(len(ruleset)), baseline.TagDPIRule)
	if err != nil {
		return res, err
	}
	if err := l.Memory().Write(buf, ruleset); err != nil {
		return res, err
	}
	// Attacker walks the metadata for rule buffers it does not own.
	for i := 0; i < l.MetaLen(); i++ {
		meta, err := l.ReadMeta(i)
		if err != nil {
			return res, err
		}
		if meta.Owner == attackerOwner || meta.Tag != baseline.TagDPIRule {
			continue
		}
		stolen := make([]byte, meta.Len)
		if err := l.XkphysRead(attackerOwner, meta.Addr, stolen); err != nil {
			return res, err
		}
		if bytes.Equal(stolen, ruleset) {
			res.Succeeded = true
			res.Detail = fmt.Sprintf("exfiltrated %d-byte ruleset (threat signatures exposed)", len(stolen))
			return res, nil
		}
	}
	res.Detail = "ruleset not located"
	return res, nil
}

// TheftSNIC attempts the same data theft against an S-NIC: the attacker
// NF scans every address its locked TLB can name and also asks the
// management path; neither reaches the victim's secret.
func TheftSNIC(d *snic.Device, victimID, attackerID snic.ID, secret []byte) (Result, error) {
	res := Result{Name: "dpi-ruleset-theft", Target: "S-NIC"}
	if err := d.NFWrite(victimID, 4096, secret); err != nil {
		return res, err
	}
	att := d.NF(attackerID)
	// 1. Exhaustive scan of the attacker's own mapped address space.
	span := att.TLB.TotalMapped()
	probe := make([]byte, len(secret))
	for va := uint64(0); va+uint64(len(secret)) <= span; va += 64 {
		if err := d.NFRead(attackerID, tlb.VAddr(va), probe); err != nil {
			continue
		}
		if bytes.Equal(probe, secret) {
			res.Succeeded = true
			res.Detail = fmt.Sprintf("secret visible at attacker VA %#x", va)
			return res, nil
		}
	}
	// 2. Any VA beyond the mapping is a fatal miss, not a window.
	if err := d.NFRead(attackerID, tlb.VAddr(span+4096), probe); err == nil {
		res.Succeeded = true
		res.Detail = "attacker read beyond its reservation"
		return res, nil
	}
	// 3. The management core cannot map the victim's pages either.
	v := d.NF(victimID)
	if err := d.MgmtMap(0, v.Mem.Start, d.Memory().FrameSize()); err == nil {
		res.Succeeded = true
		res.Detail = "NIC OS mapped tenant memory"
		return res, nil
	}
	res.Detail = "TLB lock + denylist leave no path to the secret"
	return res, nil
}

// CorruptionSNIC attempts cross-NF packet corruption on an S-NIC.
func CorruptionSNIC(d *snic.Device, victimID, attackerID snic.ID) (Result, error) {
	res := Result{Name: "packet-corruption", Target: "S-NIC"}
	frame := (&pkt.Packet{
		Tuple:   pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: pkt.ProtoTCP},
		Payload: []byte("victim packet"),
	}).Marshal()
	if err := d.NFWrite(victimID, 0, frame); err != nil {
		return res, err
	}
	att := d.NF(attackerID)
	evil := []byte{0xDE, 0xAD}
	// The attacker writes everywhere it can (its own memory) and tries
	// beyond; then we check the victim's frame is untouched.
	if err := d.NFWrite(attackerID, tlb.VAddr(att.TLB.TotalMapped()+64), evil); err == nil {
		res.Succeeded = true
		res.Detail = "attacker wrote outside its reservation"
		return res, nil
	}
	got := make([]byte, len(frame))
	if err := d.NFRead(victimID, 0, got); err != nil {
		return res, err
	}
	if !bytes.Equal(got, frame) {
		res.Succeeded = true
		res.Detail = "victim frame modified"
		return res, nil
	}
	res.Detail = "victim frame intact; single-owner RAM held"
	return res, nil
}

// BusDoSAgilio runs the §3.3 semaphore-loop bus DoS: the attacker island
// issues back-to-back transactions; the victim's next transaction waits
// past the watchdog and the NIC hard-crashes.
func BusDoSAgilio(a *baseline.Agilio, attackOps int) (Result, error) {
	res := Result{Name: "io-bus-dos", Target: "Agilio"}
	now := uint64(0)
	for i := 0; i < attackOps; i++ {
		done, err := a.BusOp(0, now)
		if err != nil {
			// The attacker itself tripped the watchdog — still a crash.
			res.Succeeded = true
			res.Detail = fmt.Sprintf("NIC crashed after %d attacker ops", i)
			return res, nil
		}
		// test_subsat loop: reissue immediately, ignoring completion.
		_ = done
	}
	if _, err := a.BusOp(1, 0); err != nil {
		res.Succeeded = true
		res.Detail = "victim op tripped the watchdog; power cycle required"
		return res, nil
	}
	if a.Crashed() {
		res.Succeeded = true
		res.Detail = "NIC crashed"
	} else {
		res.Detail = "victim still served"
	}
	return res, nil
}

// SecureWorldSnoopBlueField shows the §3.2 BlueField gap: the secure-world
// management OS reads a trustlet's private state directly.
func SecureWorldSnoopBlueField(b *baseline.BlueField, secret []byte) (Result, error) {
	res := Result{Name: "secure-os-snooping", Target: "BlueField"}
	r, err := b.CreateTrustlet(victimOwner, uint64(len(secret)))
	if err != nil {
		return res, err
	}
	if err := b.SecureWrite(r.Start, secret); err != nil {
		return res, err
	}
	// Normal world is blocked (TrustZone works as advertised)...
	buf := make([]byte, len(secret))
	if err := b.NormalRead(r.Start, buf); err == nil {
		return res, fmt.Errorf("normal world read secure memory")
	}
	// ...but the secure-world OS reads the tenant's secret wholesale.
	if err := b.SecureRead(r.Start, buf); err != nil {
		return res, err
	}
	if bytes.Equal(buf, secret) {
		res.Succeeded = true
		res.Detail = "secure-world management OS read tenant secret"
	}
	return res, nil
}

// PrimeProbe runs a cache prime+probe side channel: the victim touches
// one of two cache sets depending on each secret bit; the attacker primes
// both sets, lets the victim run, then probes and guesses the bit from
// which of its lines were evicted. It returns the attacker's accuracy
// over the given number of secret bits (≈1.0 on a shared cache, ≈0.5 —
// pure guessing — under S-NIC static partitioning).
func PrimeProbe(policy cache.Policy, bits int, seed uint64) (float64, error) {
	l2, err := cache.New(cache.Config{
		Name: "L2", Size: 64 << 10, LineSize: 64, Ways: 4,
		Policy: policy, Domains: 2,
	})
	if err != nil {
		return 0, err
	}
	const (
		attacker = 0
		victimD  = 1
	)
	setStride := uint64(l2.Sets()) * 64
	// Victim's two secret-dependent lines land in sets 3 and 7.
	victimLine := func(bit int) mem.Addr {
		if bit == 0 {
			return mem.Addr(3 * 64)
		}
		return mem.Addr(7 * 64)
	}
	// Attacker's priming lines for those sets (different tags).
	primeAddrs := func(set int) []mem.Addr {
		out := make([]mem.Addr, l2.Ways())
		for w := range out {
			out[w] = mem.Addr(uint64(set)*64 + uint64(w+1)*setStride + (1 << 30))
		}
		return out
	}
	rng := sim.NewRand(seed)
	coin := rng.Fork() // tie-break coin, decorrelated from the secret stream
	correct := 0
	for i := 0; i < bits; i++ {
		secret := rng.Intn(2)
		// Prime.
		for _, set := range []int{3, 7} {
			for _, a := range primeAddrs(set) {
				l2.Access(a, attacker, false)
			}
		}
		// Victim runs.
		l2.Access(victimLine(secret), victimD, false)
		// Probe: count misses per set.
		misses := map[int]int{}
		for _, set := range []int{3, 7} {
			for _, a := range primeAddrs(set) {
				if !l2.Access(a, attacker, false) {
					misses[set]++
				}
			}
		}
		guess := 0
		switch {
		case misses[7] > misses[3]:
			guess = 1
		case misses[7] == misses[3]:
			guess = coin.Intn(2) // no signal: coin flip
		}
		if guess == secret {
			correct++
		}
	}
	return float64(correct) / float64(bits), nil
}

// CryptoContentionAgilio measures the shared-crypto side channel: the
// attacker issues crypto ops and infers from its own queueing delay
// whether the victim used the accelerator in each round. Returns the
// attacker's accuracy over rounds.
func CryptoContentionAgilio(a *baseline.Agilio, rounds int, seed uint64) float64 {
	rng := sim.NewRand(seed)
	correct := 0
	now := uint64(0)
	for i := 0; i < rounds; i++ {
		victimActive := rng.Intn(2) == 1
		if victimActive {
			a.CryptoOp(now)
		}
		done, waited := a.CryptoOp(now)
		guess := waited > 0
		if guess == victimActive {
			correct++
		}
		now = done + 10000 // let the accelerator drain between rounds
	}
	return float64(correct) / float64(rounds)
}

// ControlledChannel reproduces the controlled-channel attack family the
// paper cites ([121], Xu et al.): an OS that demand-pages an isolated
// computation learns its secret-dependent page-access sequence from the
// fault stream. On a commodity NIC in SE-UM mode the kernel handles every
// NF TLB miss in software, so the channel exists; on S-NIC the locked TLB
// covers the whole reservation up front and no runtime fault ever reaches
// the NIC OS — a miss simply kills the function (§4.2).
//
// The victim reads page (2*i + bit) for each secret bit i. Returns the
// fraction of bits the "OS" recovers: 1.0 on the paged baseline, 0 under
// S-NIC (it observes nothing at all).
func ControlledChannel(snicMode bool, secret []byte) float64 {
	nPages := 2 * len(secret) * 8
	const page = 1 << 12

	if snicMode {
		// S-NIC: every page mapped and locked at launch. The victim runs;
		// the OS fault log stays empty.
		bank := tlb.NewBank(nPages)
		for p := 0; p < nPages; p++ {
			bank.Install(tlb.Entry{
				VA: tlb.VAddr(p * page), PA: mem.Addr(p * page),
				Size: page, Perm: tlb.PermRW,
			})
		}
		bank.Lock()
		faults := 0
		for i := 0; i < len(secret)*8; i++ {
			bit := int(secret[i/8]>>(i%8)) & 1
			if _, err := bank.Translate(tlb.VAddr((2*i+bit)*page), tlb.PermRead); err != nil {
				faults++ // would be fatal; also never happens
			}
		}
		_ = faults
		return 0 // the OS observed no fault sequence to decode
	}

	// Baseline SE-UM: the OS maps pages on demand and — as the attack
	// does — unmaps everything between victim steps so each access
	// faults. The fault address IS the secret.
	osView := make(map[int]bool) // pages currently mapped
	var faultLog []int
	access := func(pageIdx int) {
		if !osView[pageIdx] {
			faultLog = append(faultLog, pageIdx) // OS fault handler runs
			osView[pageIdx] = true
		}
	}
	recovered := make([]byte, len(secret))
	for i := 0; i < len(secret)*8; i++ {
		// OS "controls the channel": revoke all mappings before the step.
		osView = make(map[int]bool)
		bit := int(secret[i/8]>>(i%8)) & 1
		access(2*i + bit)
		// Decode from the fault stream.
		last := faultLog[len(faultLog)-1]
		if last%2 == 1 {
			recovered[i/8] |= 1 << (i % 8)
		}
	}
	match := 0
	for i := 0; i < len(secret)*8; i++ {
		if (recovered[i/8]>>(i%8))&1 == (secret[i/8]>>(i%8))&1 {
			match++
		}
	}
	return float64(match) / float64(len(secret)*8)
}

// Watermark runs the flow-watermarking attack of Bates et al. [11], which
// §4.5 credits temporal partitioning with eliminating: a sender "marks" a
// co-resident victim's traffic by modulating shared-bus pressure in a
// known bit pattern, and a downstream observer recovers the pattern from
// the victim's per-window packet timings. Returns the decoder's bit
// accuracy: ~1.0 over a FIFO bus, ~0.5 (chance) under temporal
// partitioning, where the victim's service schedule is independent of the
// attacker.
func Watermark(mk func(domains int) bus.Arbiter, bits int, seed uint64) float64 {
	arb := mk(2)
	rng := sim.NewRand(seed)
	coin := rng.Fork()
	const (
		opsPerWindow = 40
		opGap        = 30 // victim inter-op spacing (cycles)
		dur          = 8
	)
	var latencies []uint64
	pattern := make([]int, bits)
	vnow, anow := uint64(0), uint64(0)
	for w := 0; w < bits; w++ {
		pattern[w] = rng.Intn(2)
		start := vnow
		for op := 0; op < opsPerWindow; op++ {
			if pattern[w] == 1 {
				// Marked window: the attacker floods between victim ops.
				for j := 0; j < 3; j++ {
					if anow < vnow {
						anow = vnow
					}
					anow = arb.Request(1, anow, dur) + dur
				}
			}
			g := arb.Request(0, vnow, dur)
			vnow = g + dur + opGap
		}
		latencies = append(latencies, vnow-start)
		// Inter-window guard gap lets the bus drain so marks don't smear
		// into the next window (the attack paper synchronizes windows the
		// same way).
		vnow += 2000
		if anow < vnow {
			anow = vnow
		}
	}
	// Decode: threshold at the midpoint of the observed latency range.
	sorted := append([]uint64(nil), latencies...)
	sortU64(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	threshold := lo + (hi-lo)/2
	correct := 0
	for w, lat := range latencies {
		guess := 0
		switch {
		case lat > threshold:
			guess = 1
		case lat == threshold:
			// No spread at all (non-interfering bus): pure guessing.
			guess = coin.Intn(2)
		}
		if guess == pattern[w] {
			correct++
		}
	}
	return float64(correct) / float64(bits)
}

func sortU64(x []uint64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
