// Package attacks reproduces the paper's attacks (§3.2/§3.3) as a
// polymorphic suite over the device.NIC abstraction. Each Attack names
// the S-NIC defense capability that blocks it (Exploits) and, where
// relevant, the architectural property it needs to exist at all
// (Requires); running the same suite against every registered model
// yields the succeeds/blocked matrix:
//
//   - packet-corruption / dpi-ruleset-theft: raw-physical scans of
//     shared DRAM locate and modify (or exfiltrate) another function's
//     state — blocked by single-owner RAM.
//   - io-bus-dos: a flooding client starves a victim past the bus
//     watchdog and hard-crashes the NIC — blocked by temporal bus
//     partitioning.
//   - secure-os-snooping: the management/secure-world OS reads tenant
//     memory wholesale — blocked by the denylist on the management MMU.
//   - cache-prime+probe: eviction timing in a shared L2 leaks a
//     victim's access pattern — blocked by static cache partitioning.
//   - crypto-contention: queueing delay at a shared accelerator leaks
//     co-tenant activity — blocked by per-function accelerator state.
//   - controlled-channel: a demand-paging OS decodes secrets from the
//     fault stream — blocked by the locked TLB (needs demand paging to
//     exist in the first place).
//   - flow-watermarking: bus-pressure modulation marks a co-resident
//     flow's timing — blocked by temporal bus partitioning.
//
// Every attack returns a Result, so tests, the attack-matrix experiment
// and cmd/snicattack can all assert "succeeds on a commodity baseline,
// blocked on S-NIC" from the same code path.
package attacks

import (
	"bytes"
	"fmt"

	"snic/internal/bus"
	"snic/internal/cache"
	"snic/internal/device"
	"snic/internal/mem"
	"snic/internal/pkt"
	"snic/internal/pktio"
	"snic/internal/sim"
	"snic/internal/tlb"
)

// Result reports one attack run.
type Result struct {
	Name      string
	Target    string
	Succeeded bool
	Detail    string
}

func (r Result) String() string {
	verdict := "BLOCKED"
	if r.Succeeded {
		verdict = "SUCCEEDED"
	}
	return fmt.Sprintf("%-22s vs %-13s %s  (%s)", r.Name, r.Target, verdict, r.Detail)
}

// Attack is one entry of the suite. Exploits is the defense capability
// that blocks it; Requires is an architectural property without which
// the attack surface does not exist (e.g. controlled channels need a
// demand-paging OS).
type Attack struct {
	Name     string
	Exploits device.Capability
	Requires device.Capability
	run      func(dev device.NIC) (Result, error)
}

// Expected predicts the outcome against a device with the given
// capabilities: the attack succeeds iff its prerequisites are present
// and the blocking defense is absent.
func (a Attack) Expected(caps device.Capability) bool {
	return caps.Has(a.Requires) && !caps.Has(a.Exploits)
}

// Run executes the attack against dev. A device lacking the attack's
// prerequisites is reported as blocked ("not applicable") without
// running anything.
func (a Attack) Run(dev device.NIC) (Result, error) {
	if !dev.Caps().Has(a.Requires) {
		return Result{
			Name: a.Name, Target: dev.Model(),
			Detail: fmt.Sprintf("not applicable: device lacks %s", a.Requires),
		}, nil
	}
	res, err := a.run(dev)
	res.Name, res.Target = a.Name, dev.Model()
	return res, err
}

// Suite returns the full attack suite in report order.
func Suite() []Attack {
	return []Attack{
		{
			Name: "packet-corruption", Exploits: device.SingleOwnerRAM,
			run: func(dev device.NIC) (Result, error) {
				return withPair(dev, func(victim, attacker device.FuncID) (Result, error) {
					frame := (&pkt.Packet{
						Tuple: pkt.FiveTuple{
							SrcIP: 0x0A000001, DstIP: 0x08080808,
							SrcPort: 5555, DstPort: 80, Proto: pkt.ProtoTCP,
						},
						Payload: []byte("pre-translation payload"),
					}).Marshal()
					return Corruption(dev, victim, attacker, frame)
				})
			},
		},
		{
			Name: "dpi-ruleset-theft", Exploits: device.SingleOwnerRAM,
			run: func(dev device.NIC) (Result, error) {
				return withPair(dev, func(victim, attacker device.FuncID) (Result, error) {
					ruleset := []byte("alert tcp any any -> any 80 (threat signature db)")
					return Theft(dev, victim, attacker, ruleset)
				})
			},
		},
		{
			Name: "io-bus-dos", Exploits: device.ArbitratedBus,
			run: func(dev device.NIC) (Result, error) {
				return BusDoS(dev, 200000)
			},
		},
		{
			Name: "secure-os-snooping", Exploits: device.MgmtIsolated,
			run: func(dev device.NIC) (Result, error) {
				return withPair(dev, func(victim, _ device.FuncID) (Result, error) {
					return MgmtSnoop(dev, victim, []byte("tenant TLS session keys"))
				})
			},
		},
		{
			Name: "cache-prime+probe", Exploits: device.PartitionedCache,
			run: func(dev device.NIC) (Result, error) {
				acc, err := PrimeProbe(dev.CachePolicy(), 512, 0x9E)
				if err != nil {
					return Result{}, err
				}
				return Result{
					Succeeded: acc > 0.9,
					Detail:    fmt.Sprintf("attacker bit accuracy %.2f over 512 secret bits", acc),
				}, nil
			},
		},
		{
			Name: "crypto-contention", Exploits: device.PrivateAccel,
			run: func(dev device.NIC) (Result, error) {
				return withPair(dev, func(victim, attacker device.FuncID) (Result, error) {
					acc := CryptoContention(dev, victim, attacker, 256, 0xC0)
					return Result{
						Succeeded: acc > 0.9,
						Detail:    fmt.Sprintf("queueing-delay accuracy %.2f over 256 rounds", acc),
					}, nil
				})
			},
		},
		{
			Name: "controlled-channel", Exploits: device.LockedTLB, Requires: device.DemandPaging,
			run: func(dev device.NIC) (Result, error) {
				frac := ControlledChannel(dev.Caps().Has(device.LockedTLB), []byte("page-walk secret"))
				return Result{
					Succeeded: frac > 0.9,
					Detail:    fmt.Sprintf("fault stream recovered %.0f%% of secret bits", frac*100),
				}, nil
			},
		},
		{
			Name: "flow-watermarking", Exploits: device.ArbitratedBus,
			run: func(dev device.NIC) (Result, error) {
				acc := Watermark(dev.NewBusArbiter, 128, 0x77)
				return Result{
					Succeeded: acc > 0.75,
					Detail:    fmt.Sprintf("watermark decode accuracy %.2f over 128 windows", acc),
				}, nil
			},
		},
	}
}

// RunAll runs the whole suite against one device and collects the
// results in suite order.
func RunAll(dev device.NIC) ([]Result, error) {
	var out []Result
	for _, a := range Suite() {
		res, err := a.Run(dev)
		if err != nil {
			return out, fmt.Errorf("attacks: %s vs %s: %w", a.Name, dev.Model(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// withPair launches a victim (steering TCP/80 to itself) and an
// attacker function, runs fn, and tears both down so a suite run never
// exhausts a small device's cores. The footprint is kept small because
// several models (faithfully) never recycle torn-down reservations.
func withPair(dev device.NIC, fn func(victim, attacker device.FuncID) (Result, error)) (Result, error) {
	const funcBytes = 256 << 10
	victim, err := dev.Launch(device.FuncSpec{
		Name:     "victim",
		MemBytes: funcBytes,
		Rules:    []pktio.MatchSpec{{Proto: pkt.ProtoTCP, DstPortLo: 80, DstPortHi: 80}},
	})
	if err != nil {
		return Result{}, err
	}
	defer dev.Teardown(victim)
	attacker, err := dev.Launch(device.FuncSpec{Name: "mallory", MemBytes: funcBytes})
	if err != nil {
		return Result{}, err
	}
	defer dev.Teardown(attacker)
	return fn(victim, attacker)
}

// scanFor sweeps the device's whole physical address range from the
// attacker's vantage point, 4KB at a time (chunks overlap by
// len(sig)-1 bytes so a straddling match is still found). Probe faults
// are skipped: on a commodity NIC nothing faults, on S-NIC everything
// outside the attacker's own reservation does.
func scanFor(dev device.NIC, attacker device.FuncID, sig []byte) (mem.Addr, bool) {
	const chunk = 4096
	if len(sig) == 0 || len(sig) > chunk {
		return 0, false
	}
	buf := make([]byte, chunk+len(sig)-1)
	total := dev.MemBytes()
	for base := uint64(0); base < total; base += chunk {
		n := uint64(len(buf))
		if base+n > total {
			n = total - base
		}
		if n < uint64(len(sig)) {
			break
		}
		if err := dev.ProbeRead(attacker, mem.Addr(base), buf[:n]); err != nil {
			continue
		}
		if i := bytes.Index(buf[:n], sig); i >= 0 {
			return mem.Addr(base + uint64(i)), true
		}
	}
	return 0, false
}

// Theft plants a secret in the victim's memory and has the attacker
// scan raw physical memory for it (§3.3's DPI ruleset theft).
func Theft(dev device.NIC, victim, attacker device.FuncID, secret []byte) (Result, error) {
	res := Result{Name: "dpi-ruleset-theft", Target: dev.Model()}
	if err := dev.Write(victim, 4096, secret); err != nil {
		return res, err
	}
	if pa, ok := scanFor(dev, attacker, secret); ok {
		res.Succeeded = true
		res.Detail = fmt.Sprintf("exfiltrated %d-byte ruleset from PA %#x", len(secret), pa)
		return res, nil
	}
	res.Detail = "no raw-memory path reached the ruleset"
	return res, nil
}

// Corruption injects a frame steered to the victim, then has the
// attacker locate the buffered payload in device memory and flip bytes
// before the victim consumes it (§3.3's MazuNAT packet corruption).
func Corruption(dev device.NIC, victim, attacker device.FuncID, frame []byte) (Result, error) {
	res := Result{Name: "packet-corruption", Target: dev.Model()}
	to, err := dev.Inject(frame)
	if err != nil {
		return res, err
	}
	if to != victim {
		return res, fmt.Errorf("attacks: frame steered to function %d, want %d", to, victim)
	}
	p, err := pkt.Parse(frame)
	if err != nil {
		return res, err
	}
	if pa, ok := scanFor(dev, attacker, p.Payload); ok {
		// Found the buffered frame: wreck the payload in place.
		_ = dev.ProbeWrite(attacker, pa, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	}
	got, err := dev.Retrieve(victim)
	if err != nil {
		return res, err
	}
	if !bytes.Equal(got, frame) {
		res.Succeeded = true
		res.Detail = "victim frame corrupted in shared DRAM before delivery"
		return res, nil
	}
	res.Detail = "victim frame intact; single-owner RAM held"
	return res, nil
}

// BusDoS floods the shared bus from one client, then issues a single
// victim transaction: on an unarbitrated bus the victim's wait exceeds
// the watchdog and the NIC hard-crashes; under temporal partitioning
// the victim is served inside its own epochs. The attacker issues its
// ops back-to-back (each at its own completion time), so it never
// starves itself even on a partitioned bus.
func BusDoS(dev device.NIC, attackOps int) (Result, error) {
	res := Result{Name: "io-bus-dos", Target: dev.Model()}
	const victimClient, attackerClient = 0, 1
	now := uint64(0)
	for i := 0; i < attackOps; i++ {
		done, err := dev.BusOp(attackerClient, now)
		if err != nil {
			// The attacker itself tripped the watchdog — still a crash.
			res.Succeeded = true
			res.Detail = fmt.Sprintf("NIC crashed after %d attacker ops", i)
			return res, nil
		}
		now = done
	}
	if _, err := dev.BusOp(victimClient, 0); err != nil {
		res.Succeeded = true
		res.Detail = "victim transaction tripped the watchdog; power cycle required"
		return res, nil
	}
	res.Detail = "victim served within its reserved epochs"
	return res, nil
}

// MgmtSnoop plants a secret in the victim's memory and reads it back
// through the management path (§3.2's BlueField secure-world hole; on
// S-NIC the denylist refuses the mapping).
func MgmtSnoop(dev device.NIC, victim device.FuncID, secret []byte) (Result, error) {
	res := Result{Name: "secure-os-snooping", Target: dev.Model()}
	const off = 8192
	if err := dev.Write(victim, off, secret); err != nil {
		return res, err
	}
	r, ok := dev.Region(victim)
	if !ok {
		return res, device.ErrNoFunc
	}
	got := make([]byte, len(secret))
	if err := dev.MgmtRead(r.Start+off, got); err != nil {
		res.Detail = fmt.Sprintf("management mapping refused: %v", err)
		return res, nil
	}
	if bytes.Equal(got, secret) {
		res.Succeeded = true
		res.Detail = "management OS read the tenant's secret wholesale"
		return res, nil
	}
	res.Detail = "management read returned unrelated bytes"
	return res, nil
}

// CryptoContention measures the shared-accelerator side channel: the
// attacker issues accelerator ops and infers from its own queueing
// delay whether the victim used the unit in each round. Returns the
// attacker's accuracy over rounds (~1.0 on a shared unit, ~0.5 — pure
// guessing — with per-function accelerator state).
func CryptoContention(dev device.NIC, victim, attacker device.FuncID, rounds int, seed uint64) float64 {
	rng := sim.NewRand(seed)
	correct := 0
	now := uint64(0)
	for i := 0; i < rounds; i++ {
		victimActive := rng.Intn(2) == 1
		var vdone uint64
		if victimActive {
			vdone, _ = dev.AcceleratorOp(victim, now)
		}
		done, waited := dev.AcceleratorOp(attacker, now)
		guess := waited > 0
		if guess == victimActive {
			correct++
		}
		if vdone > done {
			done = vdone
		}
		now = done + 10000 // let the accelerator drain between rounds
	}
	return float64(correct) / float64(rounds)
}

// PrimeProbe runs a cache prime+probe side channel: the victim touches
// one of two cache sets depending on each secret bit; the attacker primes
// both sets, lets the victim run, then probes and guesses the bit from
// which of its lines were evicted. It returns the attacker's accuracy
// over the given number of secret bits (≈1.0 on a shared cache, ≈0.5 —
// pure guessing — under S-NIC static partitioning).
func PrimeProbe(policy cache.Policy, bits int, seed uint64) (float64, error) {
	l2, err := cache.New(cache.Config{
		Name: "L2", Size: 64 << 10, LineSize: 64, Ways: 4,
		Policy: policy, Domains: 2,
	})
	if err != nil {
		return 0, err
	}
	const (
		attacker = 0
		victimD  = 1
	)
	setStride := uint64(l2.Sets()) * 64
	// Victim's two secret-dependent lines land in sets 3 and 7.
	victimLine := func(bit int) mem.Addr {
		if bit == 0 {
			return mem.Addr(3 * 64)
		}
		return mem.Addr(7 * 64)
	}
	// Attacker's priming lines for those sets (different tags).
	primeAddrs := func(set int) []mem.Addr {
		out := make([]mem.Addr, l2.Ways())
		for w := range out {
			out[w] = mem.Addr(uint64(set)*64 + uint64(w+1)*setStride + (1 << 30))
		}
		return out
	}
	rng := sim.NewRand(seed)
	coin := rng.Fork() // tie-break coin, decorrelated from the secret stream
	correct := 0
	for i := 0; i < bits; i++ {
		secret := rng.Intn(2)
		// Prime.
		for _, set := range []int{3, 7} {
			for _, a := range primeAddrs(set) {
				l2.Access(a, attacker, false)
			}
		}
		// Victim runs.
		l2.Access(victimLine(secret), victimD, false)
		// Probe: count misses per set.
		misses := map[int]int{}
		for _, set := range []int{3, 7} {
			for _, a := range primeAddrs(set) {
				if !l2.Access(a, attacker, false) {
					misses[set]++
				}
			}
		}
		guess := 0
		switch {
		case misses[7] > misses[3]:
			guess = 1
		case misses[7] == misses[3]:
			guess = coin.Intn(2) // no signal: coin flip
		}
		if guess == secret {
			correct++
		}
	}
	return float64(correct) / float64(bits), nil
}

// ControlledChannel reproduces the controlled-channel attack family the
// paper cites ([121], Xu et al.): an OS that demand-pages an isolated
// computation learns its secret-dependent page-access sequence from the
// fault stream. On a commodity NIC in SE-UM mode the kernel handles every
// NF TLB miss in software, so the channel exists; on S-NIC the locked TLB
// covers the whole reservation up front and no runtime fault ever reaches
// the NIC OS — a miss simply kills the function (§4.2).
//
// The victim reads page (2*i + bit) for each secret bit i. Returns the
// fraction of bits the "OS" recovers: 1.0 on the paged baseline, 0 under
// S-NIC (it observes nothing at all).
func ControlledChannel(snicMode bool, secret []byte) float64 {
	nPages := 2 * len(secret) * 8
	const page = 1 << 12

	if snicMode {
		// S-NIC: every page mapped and locked at launch. The victim runs;
		// the OS fault log stays empty.
		bank := tlb.NewBank(nPages)
		for p := 0; p < nPages; p++ {
			bank.Install(tlb.Entry{
				VA: tlb.VAddr(p * page), PA: mem.Addr(p * page),
				Size: page, Perm: tlb.PermRW,
			})
		}
		bank.Lock()
		faults := 0
		for i := 0; i < len(secret)*8; i++ {
			bit := int(secret[i/8]>>(i%8)) & 1
			if _, err := bank.Translate(tlb.VAddr((2*i+bit)*page), tlb.PermRead); err != nil {
				faults++ // would be fatal; also never happens
			}
		}
		_ = faults
		return 0 // the OS observed no fault sequence to decode
	}

	// Baseline SE-UM: the OS maps pages on demand and — as the attack
	// does — unmaps everything between victim steps so each access
	// faults. The fault address IS the secret.
	osView := make(map[int]bool) // pages currently mapped
	var faultLog []int
	access := func(pageIdx int) {
		if !osView[pageIdx] {
			faultLog = append(faultLog, pageIdx) // OS fault handler runs
			osView[pageIdx] = true
		}
	}
	recovered := make([]byte, len(secret))
	for i := 0; i < len(secret)*8; i++ {
		// OS "controls the channel": revoke all mappings before the step.
		osView = make(map[int]bool)
		bit := int(secret[i/8]>>(i%8)) & 1
		access(2*i + bit)
		// Decode from the fault stream.
		last := faultLog[len(faultLog)-1]
		if last%2 == 1 {
			recovered[i/8] |= 1 << (i % 8)
		}
	}
	match := 0
	for i := 0; i < len(secret)*8; i++ {
		if (recovered[i/8]>>(i%8))&1 == (secret[i/8]>>(i%8))&1 {
			match++
		}
	}
	return float64(match) / float64(len(secret)*8)
}

// Watermark runs the flow-watermarking attack of Bates et al. [11], which
// §4.5 credits temporal partitioning with eliminating: a sender "marks" a
// co-resident victim's traffic by modulating shared-bus pressure in a
// known bit pattern, and a downstream observer recovers the pattern from
// the victim's per-window packet timings. Returns the decoder's bit
// accuracy: ~1.0 over a FIFO bus, ~0.5 (chance) under temporal
// partitioning, where the victim's service schedule is independent of the
// attacker.
func Watermark(mk func(domains int) bus.Arbiter, bits int, seed uint64) float64 {
	arb := mk(2)
	rng := sim.NewRand(seed)
	coin := rng.Fork()
	const (
		opsPerWindow = 40
		opGap        = 30 // victim inter-op spacing (cycles)
		dur          = 8
	)
	var latencies []uint64
	pattern := make([]int, bits)
	vnow, anow := uint64(0), uint64(0)
	for w := 0; w < bits; w++ {
		pattern[w] = rng.Intn(2)
		start := vnow
		for op := 0; op < opsPerWindow; op++ {
			if pattern[w] == 1 {
				// Marked window: the attacker floods between victim ops.
				for j := 0; j < 3; j++ {
					if anow < vnow {
						anow = vnow
					}
					anow = arb.Request(1, anow, dur) + dur
				}
			}
			g := arb.Request(0, vnow, dur)
			vnow = g + dur + opGap
		}
		latencies = append(latencies, vnow-start)
		// Inter-window guard gap lets the bus drain so marks don't smear
		// into the next window (the attack paper synchronizes windows the
		// same way).
		vnow += 2000
		if anow < vnow {
			anow = vnow
		}
	}
	// Decode: threshold at the midpoint of the observed latency range.
	sorted := append([]uint64(nil), latencies...)
	sortU64(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	threshold := lo + (hi-lo)/2
	correct := 0
	for w, lat := range latencies {
		guess := 0
		switch {
		case lat > threshold:
			guess = 1
		case lat == threshold:
			// No spread at all (non-interfering bus): pure guessing.
			guess = coin.Intn(2)
		}
		if guess == pattern[w] {
			correct++
		}
	}
	return float64(correct) / float64(bits)
}

func sortU64(x []uint64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
