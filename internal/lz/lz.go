// Package lz implements an LZ77 compressor with a 32 KB sliding-window
// dictionary — the engine of the ZIP hardware accelerator (Table 7 lists
// a 32 KB "Dict" as the accelerator's compression dictionary). It is a
// from-scratch implementation with a byte-oriented token format:
//
//	0x00 len  <len literal bytes>        literal run (len in 1..255)
//	0x01 d_hi d_lo l_hi l_lo             match: distance 1..32768, length 4..65535
//
// Compression quality is deliberately modest (greedy matching, hash-chain
// search) — what matters for the simulator is deterministic behaviour, a
// bounded dictionary, and realistic per-byte work, not ratio records.
package lz

import (
	"encoding/binary"
	"fmt"
)

// WindowSize is the dictionary size (Table 7's 32 KB Dict).
const WindowSize = 32 << 10

const (
	minMatch = 4
	maxMatch = 65535
	hashBits = 15
	tagLit   = 0x00
	tagMatch = 0x01
)

// Compress returns the compressed form of src.
func Compress(src []byte) []byte {
	var dst []byte
	var head [1 << hashBits]int32
	var prev []int32
	for i := range head {
		head[i] = -1
	}
	prev = make([]int32, len(src))
	hash := func(i int) uint32 {
		v := binary.LittleEndian.Uint32(src[i:])
		return (v * 2654435761) >> (32 - hashBits)
	}

	litStart := 0
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > 255 {
				n = 255
			}
			dst = append(dst, tagLit, byte(n))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}

	i := 0
	for i < len(src) {
		bestLen, bestDist := 0, 0
		if i+minMatch <= len(src) {
			h := hash(i)
			cand := head[h]
			prev[i] = cand
			head[h] = int32(i)
			for tries := 0; cand >= 0 && tries < 32; tries++ {
				dist := i - int(cand)
				if dist > WindowSize {
					break
				}
				l := matchLen(src, int(cand), i)
				if l > bestLen {
					bestLen, bestDist = l, dist
				}
				cand = prev[cand]
			}
		}
		if bestLen >= minMatch {
			flushLits(i)
			if bestLen > maxMatch {
				bestLen = maxMatch
			}
			dst = append(dst, tagMatch,
				byte(bestDist>>8), byte(bestDist),
				byte(bestLen>>8), byte(bestLen))
			// Insert hash entries for the match body so later matches can
			// reference it.
			end := i + bestLen
			for j := i + 1; j < end && j+minMatch <= len(src); j++ {
				h := hash(j)
				prev[j] = head[h]
				head[h] = int32(j)
			}
			i = end
			litStart = i
		} else {
			i++
		}
	}
	flushLits(len(src))
	return dst
}

func matchLen(src []byte, a, b int) int {
	n := 0
	for b+n < len(src) && src[a+n] == src[b+n] && n < maxMatch {
		n++
	}
	return n
}

// ErrCorrupt is returned when the compressed stream is malformed.
var ErrCorrupt = fmt.Errorf("lz: corrupt stream")

// Decompress inverts Compress.
func Decompress(comp []byte) ([]byte, error) {
	var out []byte
	i := 0
	for i < len(comp) {
		switch comp[i] {
		case tagLit:
			if i+2 > len(comp) {
				return nil, ErrCorrupt
			}
			n := int(comp[i+1])
			if n == 0 || i+2+n > len(comp) {
				return nil, ErrCorrupt
			}
			out = append(out, comp[i+2:i+2+n]...)
			i += 2 + n
		case tagMatch:
			if i+5 > len(comp) {
				return nil, ErrCorrupt
			}
			dist := int(comp[i+1])<<8 | int(comp[i+2])
			length := int(comp[i+3])<<8 | int(comp[i+4])
			if dist == 0 || dist > len(out) || length < minMatch {
				return nil, ErrCorrupt
			}
			start := len(out) - dist
			for j := 0; j < length; j++ {
				out = append(out, out[start+j])
			}
			i += 5
		default:
			return nil, ErrCorrupt
		}
	}
	return out, nil
}

// Ratio returns compressed/original size (1.0 means no compression gain).
func Ratio(original, compressed int) float64 {
	if original == 0 {
		return 1
	}
	return float64(compressed) / float64(original)
}
