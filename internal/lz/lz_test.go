package lz

import (
	"bytes"
	"testing"
	"testing/quick"

	"snic/internal/sim"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	c := Compress(src)
	out, err := Decompress(c)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(out))
	}
	return c
}

func TestEmpty(t *testing.T) {
	if c := roundTrip(t, nil); len(c) != 0 {
		t.Fatalf("empty input compressed to %d bytes", len(c))
	}
}

func TestShortLiteral(t *testing.T) {
	roundTrip(t, []byte("abc"))
}

func TestRepetitiveCompresses(t *testing.T) {
	src := bytes.Repeat([]byte("network function "), 1000)
	c := roundTrip(t, src)
	if len(c) >= len(src)/4 {
		t.Fatalf("repetitive data barely compressed: %d -> %d", len(src), len(c))
	}
}

func TestIncompressibleSurvives(t *testing.T) {
	rng := sim.NewRand(3)
	src := make([]byte, 10000)
	rng.Bytes(src)
	c := roundTrip(t, src)
	// Random data should expand only slightly (literal framing overhead).
	if len(c) > len(src)+len(src)/64+16 {
		t.Fatalf("random data expanded too much: %d -> %d", len(src), len(c))
	}
}

func TestOverlappingMatch(t *testing.T) {
	// "aaaa..." forces matches whose source overlaps their destination.
	roundTrip(t, bytes.Repeat([]byte{'a'}, 5000))
}

func TestWindowBoundary(t *testing.T) {
	// A repeat beyond the 32 KB window cannot be matched; one within can.
	rng := sim.NewRand(9)
	block := make([]byte, 1024)
	rng.Bytes(block)
	far := make([]byte, 0, WindowSize+3*1024)
	far = append(far, block...)
	filler := make([]byte, WindowSize+1024)
	rng.Bytes(filler)
	far = append(far, filler...)
	far = append(far, block...) // too far to match
	roundTrip(t, far)

	near := append(append(append([]byte{}, block...), make([]byte, 1024)...), block...)
	cNear := Compress(near)
	cFar := Compress(far)
	// Ratio of the near case must beat the far case.
	if Ratio(len(near), len(cNear)) >= Ratio(len(far), len(cFar)) {
		t.Fatalf("window not limiting matches: near %f far %f",
			Ratio(len(near), len(cNear)), Ratio(len(far), len(cFar)))
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{0x02},                         // unknown tag
		{0x00},                         // literal without length
		{0x00, 0x05, 'a'},              // literal shorter than declared
		{0x01, 0x00, 0x01},             // truncated match
		{0x01, 0x00, 0x05, 0x00, 0x08}, // distance beyond output
		{0x00, 0x00},                   // zero-length literal
	}
	for i, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16, repeatBias uint8) bool {
		rng := sim.NewRand(seed)
		size := int(n) % 8192
		src := make([]byte, size)
		alphabet := 1 + int(repeatBias)%8 // small alphabets create matches
		for i := range src {
			src[i] = byte('a' + rng.Intn(alphabet))
		}
		out, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress4K(b *testing.B) {
	src := bytes.Repeat([]byte("packet payload with some repetition "), 120)[:4096]
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}
