package exp

import (
	"reflect"
	"strings"
	"testing"

	"snic/internal/nf"
	"snic/internal/sim"
)

// renderAll runs every decomposed experiment at a small fixed scale on a
// pool of the given size and concatenates the rendered output. Any
// shared-state leak between jobs (a pool, device, arena, or cache/bus
// object reused across configuration points) or any draw from a
// scheduling-dependent RNG makes the output differ between worker
// counts.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	r := &Runner{Workers: workers}
	var b strings.Builder

	tbl, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(tbl.String())

	profiles, err := r.ProfileNFs(nf.TestScale(3), 2000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(Table6(profiles).String())
	b.WriteString(Table8(profiles).String())

	tbl, err = r.Table7(0)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(tbl.String())

	rows5a, err := r.Figure5a(smallFig5(), []uint64{64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig5("fig5a", rows5a).String())

	rows5b, err := r.Figure5b(smallFig5(), []int{3})
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig5("fig5b", rows5b).String())

	rows5d, err := r.Figure5Devices(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig5Dev(rows5d).String())

	rows6, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig6(rows6).String())

	series, err := r.Figure7(10, 2000, 20)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig7(series).String())

	rows8, err := r.Figure8(1000)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig8(rows8).String())

	fleetRows, err := r.FleetChurn(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFleet(fleetRows).String())

	churnRows, err := r.ChurnNF(goldenChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderChurn(churnRows).String())

	replay, err := r.ReplayCAIDA(goldenReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderReplay(replay).String())

	return b.String()
}

// TestWorkerCountInvariance is the engine's core guarantee: 1, 4, and 16
// workers must emit byte-identical results for every decomposed
// experiment. It also guards the one remaining piece of package-level
// mutable state the jobs share — the nf.Names table order — which every
// sweep reads concurrently and none may reorder or grow.
func TestWorkerCountInvariance(t *testing.T) {
	names := append([]string(nil), nf.Names...)
	base := renderAll(t, 1)
	for _, w := range []int{4, 16} {
		if got := renderAll(t, w); got != base {
			t.Fatalf("output with %d workers differs from serial run", w)
		}
	}
	if !reflect.DeepEqual(names, nf.Names) {
		t.Fatalf("a sweep mutated nf.Names: %v", nf.Names)
	}
}

// TestProfileJobsAreIndependent locks in the fix for the shared
// profiling pool: ProfileNFs used to thread one trace.Pool through all
// six NFs in table order, so each profile depended on its predecessors'
// draws. Now a job's profile must be reproducible in isolation from its
// (experiment, jobKey)-derived stream alone.
func TestProfileJobsAreIndependent(t *testing.T) {
	cfg := nf.TestScale(3)
	sweep, err := ProfileNFs(cfg, 2000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range sweep {
		rng := sim.DeriveRand(cfg.Seed+17, "profile", want.Name)
		got, err := profileNF(want.Name, cfg, 2000, 4000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: standalone profile %+v != sweep profile %+v", want.Name, got, want)
		}
	}
}

// TestFigure6JobsAreIndependent locks in the fix for the shared launch
// device: Figure6 used to launch all six NFs on one snic.Device, whose
// NF table would race under concurrent jobs. Each row must now be
// reproducible on a device of its own.
func TestFigure6JobsAreIndependent(t *testing.T) {
	sweep, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sweep {
		got, err := launchProfile(nil, i, want.NF)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: standalone launch %+v != sweep row %+v", want.NF, got, want)
		}
	}
}

// TestDeriveSeedStability pins the seeding scheme documented in
// EXPERIMENTS.md: job streams depend only on (base, experiment, jobKey).
func TestDeriveSeedStability(t *testing.T) {
	a := sim.DeriveSeed(1, "profile", "FW")
	if a != sim.DeriveSeed(1, "profile", "FW") {
		t.Fatal("derivation not stable")
	}
	for name, b := range map[string]uint64{
		"base":       sim.DeriveSeed(2, "profile", "FW"),
		"experiment": sim.DeriveSeed(1, "fig6", "FW"),
		"key":        sim.DeriveSeed(1, "profile", "DPI"),
		"boundary":   sim.DeriveSeed(1, "profileF", "W"),
	} {
		if a == b {
			t.Fatalf("seed insensitive to %s", name)
		}
	}
}
